// Package rfidtrack is a simulation library for studying — and improving —
// the read reliability of passive UHF (EPC Class-1 Gen-2) RFID tracking
// systems, reproducing "Reliability Techniques for RFID-Based Object
// Tracking Applications" (DSN 2007).
//
// The library spans the full stack the paper's measurements exercise:
//
//   - a physics-grounded radio channel (path loss, antenna patterns,
//     polarization, shadowing, fading, material and body losses, inter-tag
//     coupling, reader-to-reader interference) — package internal/rf;
//   - the Gen-2 air protocol (frames with CRCs, PIE timing, tag state
//     machines, the adaptive-Q anti-collision algorithm) — internal/gen2
//     and internal/tagsim;
//   - physical scenes of tagged boxes and walking people passing reader
//     portals — internal/world and internal/scenario;
//   - readers with TDMA antenna multiplexing, buffered read mode and an
//     AR400-style HTTP/XML interface — internal/reader, internal/readerapi;
//   - a tracking back-end with smoothing, constraint cleaning, storage and
//     rules — internal/backend;
//   - the paper's contribution: redundancy techniques and the read-
//     opportunity reliability model R_C = 1 − Π(1−P_i) — internal/redundancy
//     and internal/core;
//   - a harness that regenerates every table and figure of the paper —
//     internal/experiments.
//
// This file re-exports the pieces a downstream user composes; see
// examples/ for runnable programs and cmd/rfsim for the experiment CLI.
package rfidtrack

import (
	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/estimate"
	"rfidtrack/internal/experiments"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/landmarc"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/readerapi"
	"rfidtrack/internal/redundancy"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/scenario"
	"rfidtrack/internal/session"
	"rfidtrack/internal/world"
)

// Physical scene building.
type (
	// World is the physical scene: carriers, tags and antennas.
	World = world.World
	// Box is a tagged carton, optionally with blocking content.
	Box = world.Box
	// Person is a walking subject with badge tags.
	Person = world.Person
	// PhysicalTag is a tag placed in the scene.
	PhysicalTag = world.Tag
	// Mount places a tag on its carrier: offset, face normal, dipole axis
	// and gap to the content material.
	Mount = world.Mount
	// Antenna is a portal area antenna.
	Antenna = world.Antenna
	// Vec3 is a 3-D vector (meters).
	Vec3 = geom.Vec3
	// Pose is a position plus orientation.
	Pose = geom.Pose
	// LinePath is constant-velocity straight motion (a conveyor or walking
	// pass).
	LinePath = geom.LinePath
	// StaticPath holds a carrier still.
	StaticPath = geom.StaticPath
	// Material enumerates the contents that block or detune tags.
	Material = rf.Material
	// Calibration bundles every physical constant of the channel model.
	Calibration = rf.Calibration
)

// Materials.
const (
	Air       = rf.Air
	Cardboard = rf.Cardboard
	Plastic   = rf.Plastic
	Metal     = rf.Metal
	Liquid    = rf.Liquid
	Body      = rf.Body
)

// NewWorld returns an empty scene with the given calibration and seed.
func NewWorld(cal Calibration, seed uint64) *World { return world.New(cal, seed) }

// DefaultCalibration returns the constants calibrated against the paper's
// measurements (see internal/rf/calib.go for each value's rationale).
func DefaultCalibration() Calibration { return rf.DefaultCalibration() }

// V builds a Vec3.
func V(x, y, z float64) Vec3 { return geom.V(x, y, z) }

// NewPose builds a pose facing forward with the given up vector.
func NewPose(pos, forward, up Vec3) Pose { return geom.NewPose(pos, forward, up) }

// CrossingPass builds the canonical portal pass: travel along +X at speed,
// passing the portal at the given standoff, covering ±halfSpan at height z.
func CrossingPass(speed, standoff, halfSpan, z float64) LinePath {
	return geom.CrossingPass(speed, standoff, halfSpan, z)
}

// Readers and portals.
type (
	// Reader is an interrogator multiplexing 1-4 antennas.
	Reader = reader.Reader
	// ReaderOption configures a Reader.
	ReaderOption = reader.Option
	// ReadEvent is one tag observation.
	ReadEvent = reader.Event
	// Portal composes a world with the readers covering it.
	Portal = core.Portal
	// PortalBuilder constructs one portal replica for the parallel
	// measurement engine; every call must build an identical portal.
	PortalBuilder = core.Builder
	// PassResult is the outcome of one simulated pass.
	PassResult = core.PassResult
	// Reliability aggregates read/tracking reliability over trials.
	Reliability = core.Reliability
	// TrackingSystem is a complete deployment: named portals feeding one
	// back-end, with location queries and route-cleaned journeys.
	TrackingSystem = core.TrackingSystem
)

// NewTrackingSystem builds a deployment over the given pipeline (nil =
// default 2 s smoothing).
func NewTrackingSystem(p *Pipeline) *TrackingSystem { return core.NewTrackingSystem(p) }

// MeasureParallel measures n passes of the portal the builder constructs,
// fanned across a worker pool (workers <= 0 selects GOMAXPROCS). Results
// are bit-identical to sequential Portal.Measure for any worker count.
func MeasureParallel(build PortalBuilder, n, firstPass, workers int) (Reliability, error) {
	return core.MeasureParallel(build, n, firstPass, workers)
}

// NewReader builds a reader driving the given antennas.
func NewReader(name string, w *World, antennas []*Antenna, opts ...ReaderOption) (*Reader, error) {
	return reader.New(name, w, antennas, opts...)
}

// WithDenseMode enables Gen-2 dense-reader mode.
func WithDenseMode(on bool) ReaderOption { return reader.WithDenseMode(on) }

// WithAntennaDwell sets the antenna multiplexer dwell time in seconds.
func WithAntennaDwell(d float64) ReaderOption { return reader.WithAntennaDwell(d) }

// RoundConfig parameterizes the reader's Gen-2 inventory rounds: session,
// Q strategy, Select filtering, corruption injection.
type RoundConfig = gen2.Config

// DefaultRoundConfig returns the stock inventory configuration.
func DefaultRoundConfig() RoundConfig { return gen2.DefaultConfig() }

// WithRoundConfig overrides a reader's inventory round configuration.
func WithRoundConfig(cfg RoundConfig) ReaderOption { return reader.WithRoundConfig(cfg) }

// EPC identification.
type (
	// EPC is a 96-bit Electronic Product Code.
	EPC = epc.Code
	// SGTIN96 identifies trade items.
	SGTIN96 = epc.SGTIN96
	// SSCC96 identifies logistics units.
	SSCC96 = epc.SSCC96
	// GID96 is the general identifier scheme.
	GID96 = epc.GID96
)

// ParseEPC parses a 24-hex-digit EPC.
func ParseEPC(s string) (EPC, error) { return epc.ParseHex(s) }

// ParseEPCURI parses a pure-identity URI (urn:epc:id:...).
func ParseEPCURI(s string) (EPC, error) { return epc.ParseURI(s) }

// Redundancy analysis (the paper's Section 4 model).

// CombinedReliability is the paper's R_C = 1 − Π(1−P_i) for independent
// read opportunities.
func CombinedReliability(ps ...float64) float64 { return redundancy.Combined(ps...) }

// MinOpportunities returns how many independent opportunities of
// reliability p a target reliability needs (-1 if unreachable).
func MinOpportunities(p, target float64) int { return redundancy.MinOpportunities(p, target) }

// ReliabilityGap measures how far a composite falls short of the
// independence model — positive gaps expose correlated failures.
func ReliabilityGap(measured float64, ps ...float64) float64 {
	return redundancy.Gap(measured, ps...)
}

// Placement planning.
type (
	// PlacementCandidate is one purchasable read opportunity.
	PlacementCandidate = redundancy.Candidate
	// PlacementPlan is a chosen candidate set.
	PlacementPlan = redundancy.Plan
)

// PlanPlacement finds the cheapest candidate subset reaching the target
// reliability under the independence model.
func PlanPlacement(candidates []PlacementCandidate, target float64, maxPicks int) (PlacementPlan, error) {
	return redundancy.PlanPlacement(candidates, target, maxPicks)
}

// Population estimation (framed-ALOHA slot statistics).

// EstimatePopulation infers how many tags participated in an inventory
// round from its slot statistics.
func EstimatePopulation(res gen2.Result) (estimate.Estimate, error) {
	return estimate.FromRound(res)
}

// Temporal redundancy: merging independent reader sessions under an
// estimate-driven stopping rule (internal/session, DESIGN.md §15).
type (
	// SessionConfig parameterizes a session merge: the confirmation policy
	// (union or k-of-n) and the stopping rule's confidence target.
	SessionConfig = session.Config
	// SessionMerger accumulates independent inventory sessions.
	SessionMerger = session.Merger
	// SessionRound is one inventory round's slot statistics plus the EPCs
	// it identified.
	SessionRound = session.Round
	// SessionDecision is the stopping-rule verdict after a session.
	SessionDecision = session.Decision
)

// NewSessionMerger builds a merger for the given configuration.
func NewSessionMerger(cfg SessionConfig) (*SessionMerger, error) {
	return session.NewMerger(cfg)
}

// ParseConfirmPolicy parses a CLI confirmation policy: "union" or
// "K-of-N" (e.g. "2-of-3").
func ParseConfirmPolicy(s string) (k, n int, err error) {
	return session.ParseConfirm(s)
}

// Indoor localization (LANDMARC, active reference tags).
type (
	// LocationEstimator is a LANDMARC k-nearest-neighbour locator.
	LocationEstimator = landmarc.Estimator
	// RSSISignature is a tag's per-antenna RSSI vector.
	RSSISignature = landmarc.Measurement
)

// NewLocationEstimator returns a LANDMARC estimator with the given k.
func NewLocationEstimator(k int) *LocationEstimator { return landmarc.NewEstimator(k) }

// SurveyReferences builds a location estimator from reference tags placed
// in a world.
func SurveyReferences(w *World, refs []*PhysicalTag, antennas []*Antenna, k, pass, samples int) (*LocationEstimator, error) {
	return landmarc.Survey(w, refs, antennas, k, pass, samples)
}

// CollectSignature measures a tag's RSSI signature for localization.
func CollectSignature(w *World, tag *PhysicalTag, antennas []*Antenna, pass, samples int) RSSISignature {
	return landmarc.Collect(w, tag, antennas, pass, samples)
}

// Back-end processing.
type (
	// BackendEvent is a raw read delivered to the back-end.
	BackendEvent = backend.Event
	// Sighting is a smoothed presence interval.
	Sighting = backend.Sighting
	// Pipeline wires smoothing, storage and rules.
	Pipeline = backend.Pipeline
	// Rule is a sighting-triggered action (door, alarm, database update).
	Rule = backend.Rule
	// TrackStore is the in-memory tracking database.
	TrackStore = backend.Store
	// RouteConstraint infers sightings missed between portals on a known
	// route.
	RouteConstraint = backend.Route
	// GroupConstraint infers sightings for group members that travel
	// together.
	GroupConstraint = backend.Group
	// PipelineConfig sizes a sharded fleet-scale pipeline.
	PipelineConfig = backend.Config
)

// NewPipeline builds a back-end pipeline; a nil smoother defaults to a 2 s
// fixed window.
func NewPipeline(s backend.Smoother) *Pipeline { return backend.NewPipeline(s) }

// NewShardedPipeline builds an EPC-hash-sharded pipeline for fleet-scale
// batched ingestion (DESIGN.md §11).
func NewShardedPipeline(cfg PipelineConfig) *Pipeline { return backend.NewShardedPipeline(cfg) }

// NewWindowSmoother returns the classic fixed-window cleaner.
func NewWindowSmoother(window float64) *backend.WindowSmoother {
	return backend.NewWindowSmoother(window)
}

// NewAdaptiveSmoother returns the SMURF-style adaptive cleaner.
func NewAdaptiveSmoother() *backend.AdaptiveSmoother { return backend.NewAdaptiveSmoother() }

// Reader wire protocol (the AR400-style HTTP/XML interface).
type (
	// ReaderServer serves a reader over HTTP/XML.
	ReaderServer = readerapi.Server
	// ReaderClient polls a reader server.
	ReaderClient = readerapi.Client
)

// NewReaderServer wraps a reader for HTTP serving.
func NewReaderServer(src readerapi.Source) *ReaderServer { return readerapi.NewServer(src) }

// NewReaderClient returns a client for the server at base URL.
func NewReaderClient(base string) *ReaderClient { return readerapi.NewClient(base, nil) }

// Paper scenarios and experiments.
type (
	// ObjectConfig parameterizes the twelve-router-box experiments.
	ObjectConfig = scenario.ObjectConfig
	// HumanConfig parameterizes the walking-subject experiments.
	HumanConfig = scenario.HumanConfig
	// BoxLocation is a tag location on a box.
	BoxLocation = scenario.BoxLocation
	// HumanLocation is a badge location on a subject.
	HumanLocation = scenario.HumanLocation
	// ExperimentOptions parameterizes a reproduction run.
	ExperimentOptions = experiments.Options
	// ExperimentResult is a completed reproduction run.
	ExperimentResult = experiments.Result
)

// Scenario constructors.
var (
	// NewReadRangeScenario builds the Figure 2 grid at a distance.
	NewReadRangeScenario = scenario.ReadRange
	// NewObjectTrackingScenario builds the Table 1/3 cart of boxes.
	NewObjectTrackingScenario = scenario.ObjectTracking
	// NewHumanTrackingScenario builds the Table 2/4/5 walking subjects.
	NewHumanTrackingScenario = scenario.HumanTracking
)

// RunExperiment executes one paper experiment by id (see ExperimentIDs).
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opt)
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return experiments.IDs() }
