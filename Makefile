GO ?= go

.PHONY: all build vet test test-race test-short bench experiments examples fuzz cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments -o EXPERIMENTS.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/access-control
	$(GO) run ./examples/bookshelf
	$(GO) run ./examples/localization
	$(GO) run ./examples/commissioning

fuzz:
	$(GO) test -fuzz=FuzzParseURI -fuzztime=30s ./internal/epc
	$(GO) test -fuzz=FuzzDecodeSchemes -fuzztime=30s ./internal/epc
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/gen2

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
