GO ?= go

.PHONY: all check build vet test test-race test-short bench bench-diff alloc-guard metrics-lint scale-smoke experiments examples fuzz cover

all: build vet test

# check is the pre-merge gate: build, vet, the full test suite, the
# disabled-instrumentation allocation guard, the OpenMetrics exposition
# lint, the mega-scene scaling smoke test, then the race detector over
# the reduced-trial (-short) suite — golden experiment sweeps skip under
# -short, so the race pass stays affordable while still exercising the
# parallel measurement engine end to end.
check: build vet test alloc-guard metrics-lint scale-smoke
	$(GO) test -race -short ./...

# alloc-guard pins the hot-path allocation contracts: with no Collector
# attached ResolveLink must not allocate (DESIGN.md §8), the budget-terms
# cache's hit path must stay allocation-free with the cache enabled
# (DESIGN.md §9), the warmed batched grid resolver must resolve whole
# rounds at 0 allocs/op (DESIGN.md §13), the culled scale path must stay
# allocation-free once warm (DESIGN.md §14), and the sharded ingest
# steady state must stay at 0 allocs/op (DESIGN.md §11–12).
alloc-guard:
	$(GO) test -run 'TestResolveLinkZeroAllocWhenDisabled|TestResolveLinkCacheHitZeroAlloc|TestResolveLinkGridZeroAlloc|TestResolveLinkGridScaleZeroAlloc' -count=1 ./internal/world
	$(GO) test -run 'TestIngestBatchZeroAlloc' -count=1 ./internal/backend

# metrics-lint validates the live OpenMetrics exposition end to end: the
# strict well-formedness parser (internal/obs/omlint.go) is run against
# the bytes GET /metrics actually serves, with every counter, histogram,
# and gauge family populated (DESIGN.md §12).
metrics-lint:
	$(GO) test -run 'TestMetricsEndpointWellFormed|TestWriteOpenMetricsWellFormed|TestWriteOpenMetricsDeterministic' -count=1 ./internal/tracksvc ./internal/obs

# scale-smoke runs the mega-scene scaling gate: one inventory pass over a
# 10⁴-tag warehouse aisle, culled vs dense, byte-identical read streams
# (DESIGN.md §14). Race-free on purpose — the dense leg's obstruction
# scans are minutes under the race detector.
scale-smoke:
	$(GO) test -run 'TestMegaSceneScaleSmoke' -short -count=1 ./internal/scenario

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

# bench runs every benchmark and snapshots the parsed results to the
# current baseline file (see cmd/benchsnap) for machine-diffable tracking.
# Baselines are numbered per PR: BENCH_1.json is the parallel-engine
# snapshot, BENCH_2.json adds the link cache, BENCH_3.json the service
# resilience PR, BENCH_4.json the sharded ingestion pipeline (capacity
# benches: BenchmarkIngestBatch, BenchmarkStoreSharded, BenchmarkStoreQuery),
# BENCH_5.json the batched grid link resolution (BenchmarkResolveLinkGrid),
# BENCH_6.json the broad-phase link culling and mega-scene scaling PR
# (BenchmarkResolveLinkGridScale, with culled% fractions gated by
# bench-diff), BENCH_7.json the session-merge PR (BenchmarkSessionMerge).
BENCH_BASELINE ?= BENCH_7.json
bench:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchsnap -o $(BENCH_BASELINE)

# bench-diff re-runs the benchmarks into BENCH_new.json and compares them
# against the committed baseline; fails when any benchmark slows down past
# the threshold, a 0-alloc benchmark starts allocating, or a scaling
# benchmark's culled% fraction shrinks past the threshold (a loosened
# broad-phase bound letting dense work back in). A missing baseline skips
# the comparison with a pointer to `make bench`.
# BENCH_THRESHOLD is the allowed ns/op regression ratio: the default
# absorbs this class of virtualized box's run-to-run CPU variance
# (12-26% between idle runs); the allocation gate stays exact, which is
# what pins the ingest path's 0 allocs/op contract. Tighten on bare
# metal: `make bench-diff BENCH_THRESHOLD=0.10`.
BENCH_THRESHOLD ?= 0.35
bench-diff:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchsnap -q -o BENCH_new.json
	$(GO) run ./cmd/benchsnap -old $(BENCH_BASELINE) -new BENCH_new.json -threshold $(BENCH_THRESHOLD)

experiments:
	$(GO) run ./cmd/experiments -o EXPERIMENTS.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/access-control
	$(GO) run ./examples/bookshelf
	$(GO) run ./examples/localization
	$(GO) run ./examples/commissioning

fuzz:
	$(GO) test -fuzz=FuzzParseURI -fuzztime=30s ./internal/epc
	$(GO) test -fuzz=FuzzDecodeSchemes -fuzztime=30s ./internal/epc
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/gen2

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
