module rfidtrack

go 1.22
