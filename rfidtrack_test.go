package rfidtrack_test

// Tests of the public facade: everything a downstream consumer composes,
// exercised the way examples/ and cmd/ use it.

import (
	"fmt"
	"strings"
	"testing"

	"rfidtrack"
	"rfidtrack/internal/gen2"
)

func TestFacadeSceneToReliability(t *testing.T) {
	world := rfidtrack.NewWorld(rfidtrack.DefaultCalibration(), 42)
	antenna := world.AddAntenna("a1", rfidtrack.NewPose(
		rfidtrack.V(0, 0, 1), rfidtrack.V(0, 1, 0), rfidtrack.V(0, 0, 1)))
	box := world.AddBox("parcel",
		rfidtrack.CrossingPass(1, 1, 2, 1),
		rfidtrack.V(0.4, 0.4, 0.3), rfidtrack.Cardboard, rfidtrack.Air, rfidtrack.V(0, 0, 0))

	code, err := rfidtrack.ParseEPCURI("urn:epc:id:sgtin:0614141.812345.6789")
	if err != nil {
		t.Fatal(err)
	}
	world.AttachTag(box, "label", code, rfidtrack.Mount{
		Offset: rfidtrack.V(0, -0.2, 0),
		Normal: rfidtrack.V(0, -1, 0),
		Axis:   rfidtrack.V(0, 0, 1),
		Gap:    0.1,
	})

	r, err := rfidtrack.NewReader("r1", world, []*rfidtrack.Antenna{antenna},
		rfidtrack.WithDenseMode(false), rfidtrack.WithAntennaDwell(1))
	if err != nil {
		t.Fatal(err)
	}
	portal := &rfidtrack.Portal{World: world, Readers: []*rfidtrack.Reader{r}}
	rel := portal.Measure(10, 0)
	if rel.PerTag["label"].Rate() < 0.7 {
		t.Errorf("facade-built portal reliability = %v", rel.PerTag["label"])
	}
}

func TestFacadeEPCHelpers(t *testing.T) {
	code, err := rfidtrack.ParseEPC("3074257BF7194E4000001A85")
	if err != nil {
		t.Fatal(err)
	}
	if got := code.URI(); got != "urn:epc:id:sgtin:0614141.812345.6789" {
		t.Errorf("URI = %s", got)
	}
	if _, err := rfidtrack.ParseEPC("nope"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := rfidtrack.ParseEPCURI("urn:epc:id:unknown:1.2"); err == nil {
		t.Error("bad URI accepted")
	}
}

func TestFacadeRedundancyMath(t *testing.T) {
	if got := rfidtrack.CombinedReliability(0.75, 0.75); got != 0.9375 {
		t.Errorf("CombinedReliability = %v", got)
	}
	if got := rfidtrack.MinOpportunities(0.63, 0.99); got != 5 {
		t.Errorf("MinOpportunities = %v", got)
	}
	if got := rfidtrack.ReliabilityGap(0.86, 0.8, 0.8); got < 0.09 {
		t.Errorf("ReliabilityGap = %v", got)
	}
}

func TestFacadeScenariosAndExperiments(t *testing.T) {
	ids := rfidtrack.ExperimentIDs()
	if len(ids) < 13 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	res, err := rfidtrack.RunExperiment("table1", rfidtrack.ExperimentOptions{Seed: 1, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("experiment result malformed")
	}
	if _, err := rfidtrack.RunExperiment("bogus", rfidtrack.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}

	portal, err := rfidtrack.NewHumanTrackingScenario(rfidtrack.HumanConfig{
		Subjects:     1,
		TagLocations: []rfidtrack.HumanLocation{"front"},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(portal.World.Tags()); got != 1 {
		t.Errorf("scenario tags = %d", got)
	}
}

func TestFacadeBackend(t *testing.T) {
	p := rfidtrack.NewPipeline(rfidtrack.NewWindowSmoother(1))
	code, err := rfidtrack.ParseEPCURI("urn:epc:id:gid:1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	p.AddRule(rfidtrack.Rule{Action: func(rfidtrack.Sighting) { fired++ }})
	p.Ingest(rfidtrack.BackendEvent{EPC: code, Location: "dock", Time: 0})
	p.Flush(10)
	if fired != 1 {
		t.Errorf("rules fired %d times", fired)
	}
	if loc, ok := p.Store().LocationOf(code); !ok || loc.Name != "dock" {
		t.Errorf("location = %+v, %v", loc, ok)
	}
	// Adaptive smoother constructor also wires up.
	if rfidtrack.NewAdaptiveSmoother() == nil {
		t.Error("nil adaptive smoother")
	}
	// Constraints.
	route := rfidtrack.RouteConstraint{Portals: []string{"a", "b", "c"}, MaxGap: 10}
	cleaned := route.Clean([]rfidtrack.Sighting{
		{EPC: code, Location: "a", First: 0, Last: 1},
		{EPC: code, Location: "c", First: 5, Last: 6},
	})
	if len(cleaned) != 3 {
		t.Errorf("route cleaning produced %d sightings", len(cleaned))
	}
	group := rfidtrack.GroupConstraint{Members: []rfidtrack.EPC{code}, Quorum: 0.5, Window: 1}
	if got := group.Clean(nil); len(got) != 0 {
		t.Errorf("empty group clean = %v", got)
	}
}

func TestFacadeMaterials(t *testing.T) {
	cal := rfidtrack.DefaultCalibration()
	if cal.TransmissionLossDB(rfidtrack.Metal) <= cal.TransmissionLossDB(rfidtrack.Cardboard) {
		t.Error("material constants lost in re-export")
	}
	for _, m := range []rfidtrack.Material{
		rfidtrack.Air, rfidtrack.Cardboard, rfidtrack.Plastic,
		rfidtrack.Metal, rfidtrack.Liquid, rfidtrack.Body,
	} {
		if m.String() == "unknown" {
			t.Errorf("material %d unnamed", m)
		}
	}
}

func TestFacadeTrackingSystem(t *testing.T) {
	sys := rfidtrack.NewTrackingSystem(rfidtrack.NewPipeline(rfidtrack.NewWindowSmoother(5)))
	world := rfidtrack.NewWorld(rfidtrack.DefaultCalibration(), 3)
	ant := world.AddAntenna("a1", rfidtrack.NewPose(
		rfidtrack.V(0, 0, 1), rfidtrack.V(0, 1, 0), rfidtrack.V(0, 0, 1)))
	box := world.AddBox("b", rfidtrack.CrossingPass(1, 1, 2, 1),
		rfidtrack.V(0.3, 0.3, 0.3), rfidtrack.Cardboard, rfidtrack.Air, rfidtrack.V(0, 0, 0))
	code, err := rfidtrack.ParseEPCURI("urn:epc:id:grai:0614141.12345.7")
	if err != nil {
		t.Fatal(err)
	}
	world.AttachTag(box, "asset", code, rfidtrack.Mount{
		Offset: rfidtrack.V(0, -0.15, 0), Normal: rfidtrack.V(0, -1, 0),
		Axis: rfidtrack.V(0, 0, 1), Gap: 0.1,
	})
	r, err := rfidtrack.NewReader("r1", world, []*rfidtrack.Antenna{ant})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPortal("dock", &rfidtrack.Portal{World: world, Readers: []*rfidtrack.Reader{r}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.RunPass("dock", 0); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if loc, ok := sys.WhereIs(code); !ok || loc.Name != "dock" {
		t.Errorf("WhereIs = %+v, %v", loc, ok)
	}
	if inv := sys.Inventory(); len(inv) != 1 {
		t.Errorf("inventory = %v", inv)
	}
}

func TestFacadePlanningAndEstimation(t *testing.T) {
	plan, err := rfidtrack.PlanPlacement([]rfidtrack.PlacementCandidate{
		{Name: "front", P: 0.87, Cost: 1},
		{Name: "side", P: 0.83, Cost: 1},
		{Name: "top", P: 0.29, Cost: 1},
	}, 0.97, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 2 || plan.Reliability < 0.97 {
		t.Errorf("plan = %v", plan)
	}

	cfg := rfidtrack.DefaultRoundConfig()
	if !cfg.Adaptive || cfg.MaxSlots == 0 {
		t.Errorf("round config defaults = %+v", cfg)
	}

	// Population estimation from slot statistics.
	est, err := rfidtrack.EstimatePopulation(gen2.Result{Slots: 64, Empties: 30, Collisions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if est.N <= 0 || est.Basis != "empties" {
		t.Errorf("estimate = %+v", est)
	}

	// LANDMARC wrappers: a tiny two-reference line.
	loc := rfidtrack.NewLocationEstimator(2)
	if loc == nil {
		t.Fatal("nil estimator")
	}
	w := rfidtrack.NewWorld(rfidtrack.DefaultCalibration(), 8)
	corners := []rfidtrack.Vec3{rfidtrack.V(0, 0, 2), rfidtrack.V(4, 0, 2)}
	var ants []*rfidtrack.Antenna
	for i, c := range corners {
		ants = append(ants, w.AddAntenna(fmt.Sprintf("a%d", i),
			rfidtrack.NewPose(c, rfidtrack.V(2, 2, 1).Sub(c), rfidtrack.V(0, 0, 1))))
	}
	var refs []*rfidtrack.PhysicalTag
	for i := 0; i < 2; i++ {
		pos := rfidtrack.V(1+2*float64(i), 1, 1)
		mountBox := w.AddBox(fmt.Sprintf("m%d", i),
			rfidtrack.StaticPath{Pose: rfidtrack.NewPose(pos, rfidtrack.V(1, 0, 0), rfidtrack.V(0, 0, 1))},
			rfidtrack.V(0.05, 0.05, 0.05), rfidtrack.Plastic, rfidtrack.Air, rfidtrack.V(0, 0, 0))
		code, err := rfidtrack.ParseEPCURI(fmt.Sprintf("urn:epc:id:gid:1.1.%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, w.AttachActiveTag(mountBox, fmt.Sprintf("ref%d", i), code, rfidtrack.Mount{
			Normal: rfidtrack.V(0, 0, 1), Axis: rfidtrack.V(1, 0, 0), Gap: 0.1,
		}))
	}
	surveyed, err := rfidtrack.SurveyReferences(w, refs, ants, 2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	sig := rfidtrack.CollectSignature(w, refs[0], ants, 1, 4)
	got, _, err := surveyed.Locate(sig)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(refs[0].Pos(0)) > 1.5 {
		t.Errorf("located ref0 at %v, true %v", got, refs[0].Pos(0))
	}
}
