// Quickstart: build a portal, pass one tagged box through it, and measure
// its read reliability over repeated trials.
package main

import (
	"fmt"
	"log"

	"rfidtrack"
)

func main() {
	// A scene: one antenna at the origin (1 m high, facing +Y) and a
	// cardboard box carried past it at 1 m/s, 1 m away.
	world := rfidtrack.NewWorld(rfidtrack.DefaultCalibration(), 42)
	antenna := world.AddAntenna("dock-door", rfidtrack.NewPose(
		rfidtrack.V(0, 0, 1), rfidtrack.V(0, 1, 0), rfidtrack.V(0, 0, 1)))

	box := world.AddBox("parcel",
		rfidtrack.CrossingPass(1.0 /*m/s*/, 1.0 /*standoff*/, 2.5 /*half-span*/, 1.0 /*height*/),
		rfidtrack.V(0.4, 0.4, 0.3), // outer dimensions
		rfidtrack.Cardboard,        // shell
		rfidtrack.Air,              // empty: nothing blocks
		rfidtrack.V(0, 0, 0))

	// One label tag on the antenna-facing side, dipole vertical, nothing
	// conductive behind it.
	code, err := rfidtrack.ParseEPCURI("urn:epc:id:sgtin:0614141.812345.6789")
	if err != nil {
		log.Fatal(err)
	}
	world.AttachTag(box, "parcel/label", code, rfidtrack.Mount{
		Offset: rfidtrack.V(0, -0.2, 0),
		Normal: rfidtrack.V(0, -1, 0),
		Axis:   rfidtrack.V(0, 0, 1),
		Gap:    0.1,
	})

	reader, err := rfidtrack.NewReader("r1", world, []*rfidtrack.Antenna{antenna})
	if err != nil {
		log.Fatal(err)
	}
	portal := &rfidtrack.Portal{World: world, Readers: []*rfidtrack.Reader{reader}}

	// One pass, in detail.
	result := portal.RunPass(0)
	fmt.Printf("pass: %d inventory rounds over %.1f s, %d reads\n",
		result.Rounds, result.Duration, len(result.Events))
	for i, e := range result.Events {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(result.Events)-3)
			break
		}
		fmt.Printf("  t=%5.2fs  %s  antenna=%s  rssi=%.1f dBm\n",
			e.Time, e.EPC.URI(), e.Antenna, float64(e.RSSI))
	}

	// Reliability over twenty independent passes.
	rel := portal.Measure(20, 1)
	p := rel.PerTag["parcel/label"]
	fmt.Printf("\nread reliability over %d passes: %s\n", rel.Trials, p)

	// The paper's redundancy model: how many such tags would a 99.9%
	// tracking requirement need?
	n := rfidtrack.MinOpportunities(p.Rate(), 0.999)
	fmt.Printf("tags needed for 99.9%% tracking (independence model): %d\n", n)
}
