// Localization: the paper's cited active-RFID application (LANDMARC,
// reference [11]). A 6x6 m room gets four corner antennas and a grid of
// sixteen active reference tags; badges are then located by k-nearest-
// neighbour matching in RSSI space — room-level people tracking, the
// paper's human-tracking scenario taken to its active-tag future work.
package main

import (
	"fmt"
	"log"

	"rfidtrack"
)

func main() {
	world := rfidtrack.NewWorld(rfidtrack.DefaultCalibration(), 2026)

	// Four corner antennas, all aimed at the room center.
	corners := []rfidtrack.Vec3{
		rfidtrack.V(0, 0, 2), rfidtrack.V(6, 0, 2), rfidtrack.V(0, 6, 2), rfidtrack.V(6, 6, 2),
	}
	var antennas []*rfidtrack.Antenna
	center := rfidtrack.V(3, 3, 1)
	for i, c := range corners {
		antennas = append(antennas, world.AddAntenna(fmt.Sprintf("corner-%d", i+1),
			rfidtrack.NewPose(c, center.Sub(c), rfidtrack.V(0, 0, 1))))
	}

	// A 4x4 grid of active reference tags at known positions.
	attach := func(name string, pos rfidtrack.Vec3, uri string) *rfidtrack.PhysicalTag {
		mount := world.AddBox(name+"-mount",
			rfidtrack.StaticPath{Pose: rfidtrack.NewPose(pos, rfidtrack.V(1, 0, 0), rfidtrack.V(0, 0, 1))},
			rfidtrack.V(0.05, 0.05, 0.05), rfidtrack.Plastic, rfidtrack.Air, rfidtrack.V(0, 0, 0))
		code, err := rfidtrack.ParseEPCURI(uri)
		if err != nil {
			log.Fatal(err)
		}
		return world.AttachActiveTag(mount, name, code, rfidtrack.Mount{
			Normal: rfidtrack.V(0, 0, 1),
			Axis:   rfidtrack.V(1, 0, 0),
			Axis2:  rfidtrack.V(0, 1, 0),
			Gap:    0.1,
		})
	}
	var refs []*rfidtrack.PhysicalTag
	n := 0
	for gx := 0; gx < 4; gx++ {
		for gy := 0; gy < 4; gy++ {
			pos := rfidtrack.V(0.75+float64(gx)*1.5, 0.75+float64(gy)*1.5, 1)
			refs = append(refs, attach(fmt.Sprintf("ref-%02d", n), pos,
				fmt.Sprintf("urn:epc:id:gid:95100000.1.%d", n+1)))
			n++
		}
	}

	// Survey the room: record each reference tag's RSSI signature.
	estimator, err := rfidtrack.SurveyReferences(world, refs, antennas, 4, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surveyed %d reference tags across %d antennas\n\n", len(refs), len(antennas))

	// People with active badges stand at unknown positions; locate them.
	people := []struct {
		name string
		pos  rfidtrack.Vec3
	}{
		{"alice", rfidtrack.V(1.2, 2.0, 1)},
		{"bob", rfidtrack.V(4.6, 4.1, 1)},
		{"carol", rfidtrack.V(3.0, 0.9, 1)},
	}
	fmt.Printf("%-8s %-18s %-18s %s\n", "badge", "true position", "estimate", "error")
	for i, p := range people {
		badge := attach(p.name, p.pos, fmt.Sprintf("urn:epc:id:gid:95100000.2.%d", i+1))
		sig := rfidtrack.CollectSignature(world, badge, antennas, 10+i, 8)
		got, neighbours, err := estimator.Locate(sig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s (%.2f, %.2f)       (%.2f, %.2f)       %.2f m\n",
			p.name, p.pos.X, p.pos.Y, got.X, got.Y, got.Dist(p.pos))
		if i == 0 {
			fmt.Printf("         nearest references: %v, %v\n", neighbours[0], neighbours[1])
		}
	}
	fmt.Println("\n(k=4 weighted centroid in signal space; LANDMARC-class accuracy is 1-2 m,")
	fmt.Println(" enough for the paper's room-level human tracking)")
}
