// Bookshelf: the failure case the paper calls out — "current UHF tags
// would not work well for scenarios where tags are placed very close to
// each other and are perpendicular to the antenna, such as on book covers
// in a bookshelf." We build a shelf of tagged books, sweep the shelf
// packing density, and show both failure mechanisms (inter-tag coupling
// and the dipole null toward the antenna), then the fix.
package main

import (
	"fmt"
	"log"

	"rfidtrack"
)

// shelf builds a row of n books of the given thickness, packed side by
// side at 1 m from the antenna, with a label on every spine — so adjacent
// labels sit one book-thickness apart. perpendicular chooses the paper's
// failing orientation (dipole pointing at the antenna); otherwise spines
// are tagged with the dipole vertical.
func shelf(n int, thickness float64, perpendicular bool, seed uint64) (*rfidtrack.Portal, error) {
	world := rfidtrack.NewWorld(rfidtrack.DefaultCalibration(), seed)
	antenna := world.AddAntenna("aisle", rfidtrack.NewPose(
		rfidtrack.V(0, 0, 1.2), rfidtrack.V(0, 1, 0), rfidtrack.V(0, 0, 1)))

	// The shelf: one static carrier spanning the row of books.
	width := float64(n) * thickness
	books := world.AddBox("shelf",
		rfidtrack.StaticPath{Pose: rfidtrack.NewPose(rfidtrack.V(0, 1, 1.2), rfidtrack.V(1, 0, 0), rfidtrack.V(0, 0, 1)), Dur: 0},
		rfidtrack.V(width, 0.25, 0.3),
		rfidtrack.Cardboard, rfidtrack.Air, rfidtrack.V(0, 0, 0))

	axis := rfidtrack.V(0, 0, 1) // vertical along the spine: safe
	if perpendicular {
		axis = rfidtrack.V(0, 1, 0) // pointing into the shelf, at the antenna
	}
	for i := 0; i < n; i++ {
		x := (float64(i) - float64(n-1)/2) * thickness
		code, err := rfidtrack.ParseEPCURI(fmt.Sprintf("urn:epc:id:sgtin:0614141.700001.%d", i+1))
		if err != nil {
			return nil, err
		}
		world.AttachTag(books, fmt.Sprintf("book%02d", i), code, rfidtrack.Mount{
			Offset: rfidtrack.V(x, -0.125, 0),
			Normal: rfidtrack.V(0, -1, 0), // spine faces the aisle
			Axis:   axis,
			Gap:    0.1, // paper, not metal, behind the label
		})
	}
	reader, err := rfidtrack.NewReader("shelf-reader", world, []*rfidtrack.Antenna{antenna})
	if err != nil {
		return nil, err
	}
	return &rfidtrack.Portal{World: world, Readers: []*rfidtrack.Reader{reader}}, nil
}

func inventory(p *rfidtrack.Portal, sweeps int) float64 {
	rel := p.Measure(sweeps, 0)
	return rel.ReadSummary().Mean
}

func main() {
	const books = 12
	const sweeps = 20

	fmt.Printf("shelf inventory: %d tagged books, %d reader sweeps per configuration\n\n", books, sweeps)
	fmt.Println("books found (of 12) by book thickness and label orientation:")
	fmt.Printf("  %-12s %-22s %-22s\n", "thickness", "spine label, vertical", "label facing shelf back")
	for i, mm := range []float64{3, 6, 12, 25, 45} {
		safe, err := shelf(books, mm/1000, false, uint64(10+i))
		if err != nil {
			log.Fatal(err)
		}
		bad, err := shelf(books, mm/1000, true, uint64(20+i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-22.1f %-22.1f\n",
			fmt.Sprintf("%.0f mm", mm), inventory(safe, sweeps), inventory(bad, sweeps))
	}

	fmt.Println("\nfindings (matching the paper's Figure 4):")
	fmt.Println("  - thin, tightly packed books put adjacent labels within coupling")
	fmt.Println("    range: below ~20 mm the inventory collapses regardless of orientation;")
	fmt.Println("  - labels whose dipole points at the antenna (cases 1/5 in the paper)")
	fmt.Println("    sit in the pattern null and stay unreliable even when spaced out;")
	fmt.Println("  - vertical spine labels with >= 20-40 mm spacing inventory cleanly.")
}
