// Commissioning: provisioning a batch of blank tags at a commissioning
// station — the step before any of the paper's tracking scenarios can
// run. Each tag is singulated, its EPC bank rewritten with the real
// identity, passwords installed, the EPC bank locked, and one
// deliberately defective tag is killed. Exercises the Gen-2 access layer
// (Req_RN / Access / Write / Lock / Kill).
package main

import (
	"fmt"
	"log"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

func main() {
	rng := xrand.New(2026)

	// A tray of eight factory-blank tags (all-zero EPCs).
	tags := make([]*tagsim.Tag, 8)
	for i := range tags {
		tags[i] = tagsim.New(epc.Code{}, rng.Split(fmt.Sprintf("blank/%d", i)))
		tags[i].SetPower(true, 0)
	}

	const accessPwd, killPwd = 0x5EC0DE5, 0xDEADC0DE

	fmt.Println("commissioning station: 8 blank tags on the tray")
	for i, tag := range tags {
		// Singulate this tag alone (the station reads one tag at a time in
		// a shielded tunnel).
		rn, ok := tag.Query(tagsim.S0, tagsim.FlagA, 0, float64(i))
		if !ok {
			log.Fatalf("tag %d did not answer the query", i)
		}
		if _, ok := tag.ACK(rn.RN16); !ok {
			log.Fatalf("tag %d rejected ACK", i)
		}
		handle, err := tag.ReqRN(rn.RN16)
		if err != nil {
			log.Fatalf("tag %d: %v", i, err)
		}
		// Blank tags have a zero access password: we are already Secured.

		// 1. Install the real identity.
		identity, err := epc.SGTIN96{
			Filter: 1, CompanyDigits: 7, Company: 614141,
			ItemRef: 700100, Serial: uint64(5000 + i),
		}.Encode()
		if err != nil {
			log.Fatal(err)
		}
		if err := tag.WriteEPC(handle, identity); err != nil {
			log.Fatalf("tag %d: writing EPC: %v", i, err)
		}

		// 2. Install passwords (kill + access, one 8-byte reserved write).
		pw := []byte{
			killPwd >> 24, killPwd >> 16 & 0xFF, killPwd >> 8 & 0xFF, killPwd & 0xFF,
			accessPwd >> 24, accessPwd >> 16 & 0xFF, accessPwd >> 8 & 0xFF, accessPwd & 0xFF,
		}
		if err := tag.Write(handle, tagsim.BankReserved, 0, pw); err != nil {
			log.Fatalf("tag %d: writing passwords: %v", i, err)
		}

		// 3. Lock the EPC bank so the identity can only change through an
		// authenticated session.
		if err := tag.Lock(handle, tagsim.BankEPC, tagsim.Locked); err != nil {
			log.Fatalf("tag %d: locking: %v", i, err)
		}
		fmt.Printf("  tag %d -> %s (EPC locked)\n", i, tag.EPC().URI())
	}

	// Quality control: tag 3 failed its RF test; kill it so it can never
	// pollute a portal's reads.
	defective := tags[3]
	defective.Reset()
	defective.SetPower(true, 100)
	rn, _ := defective.Query(tagsim.S0, tagsim.FlagA, 0, 100)
	defective.ACK(rn.RN16)
	handle, err := defective.ReqRN(rn.RN16)
	if err != nil {
		log.Fatal(err)
	}
	// The access password is installed now: authenticate first.
	if err := defective.Access(handle, accessPwd); err != nil {
		log.Fatal(err)
	}
	if err := defective.KillWithPassword(handle, killPwd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQC: tag 3 failed RF test — killed (%v)\n", defective.Killed())

	// Verify the tray: killed tags are silent, live tags answer with their
	// commissioned identities.
	live := 0
	for _, tag := range tags {
		tag.Reset()
		tag.SetPower(true, 200)
		if _, ok := tag.Query(tagsim.S0, tagsim.FlagA, 0, 200); ok {
			live++
		}
	}
	fmt.Printf("final tray check: %d of 8 tags answer (1 killed)\n", live)
}
