// Access control: the paper's human-tracking application. Badge-carrying
// people walk through a doorway portal; the back-end opens the door for
// known badges and raises an alarm for strangers. We compare a single
// badge against the paper's recommendation (front + back badges and a
// second antenna) and drive the door/alarm rules from the event stream.
package main

import (
	"fmt"
	"log"

	"rfidtrack"
)

func main() {
	const trials = 25

	type config struct {
		label    string
		tags     []rfidtrack.HumanLocation
		antennas int
	}
	configs := []config{
		{"1 badge (front), 1 antenna", []rfidtrack.HumanLocation{"front"}, 1},
		{"1 badge (front), 2 antennas", []rfidtrack.HumanLocation{"front"}, 2},
		{"2 badges (front+back), 1 antenna", []rfidtrack.HumanLocation{"front", "back"}, 1},
		{"2 badges (front+back), 2 antennas", []rfidtrack.HumanLocation{"front", "back"}, 2},
	}
	fmt.Println("doorway identification reliability (two people abreast):")
	var best *rfidtrack.Portal
	for i, c := range configs {
		portal, err := rfidtrack.NewHumanTrackingScenario(rfidtrack.HumanConfig{
			Subjects:     2,
			TagLocations: c.tags,
			Antennas:     c.antennas,
			Seed:         uint64(300 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		rel := portal.Measure(trials, 0)
		fmt.Printf("  %-36s %5.1f%%\n", c.label, 100*rel.MeanCarrierReliability(nil))
		best = portal
	}

	// Drive the door logic from the best configuration's reads.
	authorized := map[rfidtrack.EPC]string{}
	for _, tag := range best.World.Tags() {
		authorized[tag.Code] = tag.Carrier().Name()
	}
	// A stranger's badge that is NOT in the authorized set.
	strangerCode, err := rfidtrack.ParseEPCURI("urn:epc:id:gid:95100000.999.1")
	if err != nil {
		log.Fatal(err)
	}

	pipeline := rfidtrack.NewPipeline(rfidtrack.NewWindowSmoother(1))
	var doorOpens, alarms int
	pipeline.AddRule(rfidtrack.Rule{
		Name:  "open door",
		Match: func(s rfidtrack.Sighting) bool { _, ok := authorized[s.EPC]; return ok },
		Action: func(s rfidtrack.Sighting) {
			doorOpens++
			fmt.Printf("  door opened for %s (badge %s)\n", authorized[s.EPC], s.EPC.URI())
		},
	})
	pipeline.AddRule(rfidtrack.Rule{
		Name:  "alarm",
		Match: func(s rfidtrack.Sighting) bool { _, ok := authorized[s.EPC]; return !ok },
		Action: func(s rfidtrack.Sighting) {
			alarms++
			fmt.Printf("  ALARM: unknown badge %s at the door\n", s.EPC.URI())
		},
	})

	fmt.Println("\none pass through the door:")
	pass := best.RunPass(trials + 1)
	for _, e := range pass.Events {
		pipeline.Ingest(rfidtrack.BackendEvent{
			EPC: e.EPC, Location: e.Reader, Antenna: e.Antenna, Time: e.Time,
		})
	}
	// Simulate the stranger tailgating: inject their badge read directly.
	pipeline.Ingest(rfidtrack.BackendEvent{
		EPC: strangerCode, Location: "r1", Antenna: "a1", Time: 99,
	})
	pipeline.Flush(1e9)

	fmt.Printf("\nsummary: %d door events, %d alarms\n", doorOpens, alarms)
	fmt.Println("(per the paper: two badges and a second antenna push doorway")
	fmt.Println(" identification to ~100%, viable even for passive tags)")
}
