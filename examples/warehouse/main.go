// Warehouse: the paper's motivating supply-chain scenario. A cart of
// twelve router boxes passes a dock-door portal; we compare single-tag
// case labeling against the paper's tag-level redundancy, then feed the
// winning configuration's reads through the tracking back-end with an
// accompany-constraint cleaner for the stragglers.
package main

import (
	"fmt"
	"log"
	"strings"

	"rfidtrack"
)

func main() {
	const trials = 20

	fmt.Println("single tag per case (by label location):")
	singles := map[rfidtrack.BoxLocation]float64{}
	for i, loc := range []rfidtrack.BoxLocation{"front", "side-closer", "side-farther", "top"} {
		portal, err := rfidtrack.NewObjectTrackingScenario(rfidtrack.ObjectConfig{
			TagLocations: []rfidtrack.BoxLocation{loc},
			Seed:         100 + uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		rel := portal.Measure(trials, 0)
		singles[loc] = rel.MeanCarrierReliability(nil)
		fmt.Printf("  %-14s %5.1f%%\n", loc, 100*singles[loc])
	}

	// The paper's fix: two tags per case on different faces.
	portal, err := rfidtrack.NewObjectTrackingScenario(rfidtrack.ObjectConfig{
		TagLocations: []rfidtrack.BoxLocation{"front", "side-closer"},
		Seed:         200,
	})
	if err != nil {
		log.Fatal(err)
	}
	rel := portal.Measure(trials, 0)
	redundant := rel.MeanCarrierReliability(nil)
	expected := rfidtrack.CombinedReliability(singles["front"], singles["side-closer"])
	fmt.Printf("\ntwo tags per case (front + side): %.1f%% measured, %.1f%% by the R_C model\n",
		100*redundant, 100*expected)

	// Stream one pass's raw reads through the back-end pipeline.
	pipeline := rfidtrack.NewPipeline(rfidtrack.NewWindowSmoother(2))
	var sightings []rfidtrack.Sighting
	pipeline.AddRule(rfidtrack.Rule{
		Name:   "arrival log",
		Action: func(s rfidtrack.Sighting) { sightings = append(sightings, s) },
	})
	pass := portal.RunPass(trials + 1)
	for _, e := range pass.Events {
		pipeline.Ingest(rfidtrack.BackendEvent{
			EPC: e.EPC, Location: e.Reader, Antenna: e.Antenna, Time: e.Time,
		})
	}
	pipeline.Flush(1e9)
	fmt.Printf("\nback-end: %d raw reads smoothed into %d case-arrival sightings\n",
		len(pass.Events), len(sightings))

	// Accompany-constraint cleaning: the twelve cases travel as one pallet;
	// if ≥70%% of the group passed the dock, infer any stragglers.
	group := rfidtrack.GroupConstraint{Quorum: 0.7, Window: 10}
	for _, tag := range portal.World.Tags() {
		if strings.HasSuffix(tag.Name, "/front") {
			group.Members = append(group.Members, tag.Code)
		}
	}
	cleaned := group.Clean(sightings)
	inferred := 0
	for _, s := range cleaned {
		if s.Inferred {
			inferred++
		}
	}
	fmt.Printf("accompany constraint: %d sightings after cleaning (%d inferred for missed cases)\n",
		len(cleaned), inferred)

	fmt.Printf("\nconclusion: tag-level redundancy lifted pallet tracking from %.0f%% to %.0f%%,\n",
		100*singles["front"], 100*redundant)
	fmt.Println("and the data-level cleaners catch part of the remainder — but only physical")
	fmt.Println("redundancy creates reads that never happened.")
}
