package rfidtrack_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun smoke-tests every example program end to end: each must
// build, run to completion within a minute, and print its headline.
// Skipped under -short (each example simulates dozens of portal passes).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped with -short")
	}
	expects := map[string]string{
		"quickstart":     "read reliability over",
		"warehouse":      "two tags per case",
		"access-control": "door opened for",
		"bookshelf":      "books found (of 12)",
		"localization":   "surveyed 16 reference tags",
		"commissioning":  "final tray check: 7 of 8",
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(expects) {
		t.Errorf("examples/ has %d entries but %d are smoke-tested", len(entries), len(expects))
	}
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, ok := expects[name]
			if !ok {
				t.Fatalf("no expectation registered for examples/%s", name)
			}
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			cmd.WaitDelay = time.Minute
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		})
	}
}
