package rfidtrack_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, each executing the corresponding experiment end to end and
// reporting the headline reliability numbers as custom metrics — so
// `go test -bench=.` regenerates every row the paper reports. Full-trial
// tables are printed by `go run ./cmd/experiments`; the benchmarks run the
// same code with reduced trial counts per iteration.
//
// Microbenchmarks of the hot paths (link resolution, inventory rounds,
// EPC codecs) follow the experiment benchmarks.

import (
	"testing"

	"rfidtrack"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/experiments"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/scenario"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/world"
	"rfidtrack/internal/xrand"
)

// benchTrials keeps per-iteration experiment cost moderate; the harness
// seeds by iteration so -benchtime accumulates fresh trials.
const benchTrials = 4

// runExperiment executes one registered experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Seed: uint64(i + 1), Trials: benchTrials})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig2ReadRange regenerates Figure 2: tags read out of a 20-tag
// grid at 1–9 m.
func BenchmarkFig2ReadRange(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig4InterTagOrientation regenerates Figure 4 (with the Figure 3
// orientations): 5 spacings × 6 orientations.
func BenchmarkFig4InterTagOrientation(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkTable1ObjectLocations regenerates Table 1: tag-location
// reliability on the twelve router boxes.
func BenchmarkTable1ObjectLocations(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2HumanLocations regenerates Table 2: badge locations on
// one and two walking subjects.
func BenchmarkTable2HumanLocations(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Fig5ObjectRedundancy regenerates Table 3: object
// tracking with redundant antennas and tags, measured vs. calculated.
func BenchmarkTable3Fig5ObjectRedundancy(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig5ObjectRedundancyBars regenerates the Figure 5 bar series.
func BenchmarkFig5ObjectRedundancyBars(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable4HumanRedundancy1Ant regenerates Table 4: redundant
// badges, one antenna.
func BenchmarkTable4HumanRedundancy1Ant(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5HumanRedundancy2Ant regenerates Table 5: redundant
// badges, two antennas.
func BenchmarkTable5HumanRedundancy2Ant(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig6OneSubject regenerates the Figure 6 bar series.
func BenchmarkFig6OneSubject(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7TwoSubjects regenerates the Figure 7 bar series.
func BenchmarkFig7TwoSubjects(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkReaderRedundancy regenerates the Section 4 negative result:
// two readers without dense-reader mode collapse; dense mode recovers.
func BenchmarkReaderRedundancy(b *testing.B) { runExperiment(b, "readers") }

// BenchmarkAblationShadowSplit and friends run the design-choice
// ablations DESIGN.md calls out.
func BenchmarkAblationsAll(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkExtensions runs the paper's future work: active tags,
// dual-dipole designs, population estimation, LANDMARC localization and
// the placement planner.
func BenchmarkExtensions(b *testing.B) { runExperiment(b, "extensions") }

// BenchmarkThroughput regenerates the stationary-population read-speed
// benchmark (the paper's reference [12] and its 0.02 s/tag budget).
func BenchmarkThroughput(b *testing.B) { runExperiment(b, "throughput") }

// BenchmarkPortalPass measures one complete simulated pass of the
// twelve-box cart (the unit of every experiment above): link resolution
// for every (tag, antenna, round), protocol rounds, event collection.
func BenchmarkPortalPass(b *testing.B) {
	portal, err := rfidtrack.NewObjectTrackingScenario(rfidtrack.ObjectConfig{
		TagLocations: []rfidtrack.BoxLocation{"front", "side-closer"},
		Antennas:     2,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	reads := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := portal.RunPass(i)
		reads += len(res.Events)
	}
	b.ReportMetric(float64(reads)/float64(b.N), "reads/pass")
}

// benchLinkScene builds the shared link-resolution microbenchmark scene:
// one moving metal-content box with a side tag and one portal antenna.
func benchLinkScene(b *testing.B) (*world.World, *world.Tag, *world.Antenna) {
	b.Helper()
	w := world.New(rf.DefaultCalibration(), 1)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	box := w.AddBox("box", geom.CrossingPass(1, 1, 2.5, 1),
		geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.38, 0.33, 0.15))
	code, err := epc.GID96{Manager: 1, Class: 1, Serial: 1}.Encode()
	if err != nil {
		b.Fatal(err)
	}
	tag := w.AttachTag(box, "tag", code, world.Mount{
		Offset: geom.V(0, -0.21, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	return w, tag, ant
}

// BenchmarkResolveLink measures one full link-budget resolution (both
// propagation paths, occlusion scan, coupling scan, random fields).
func BenchmarkResolveLink(b *testing.B) {
	w, tag, ant := benchLinkScene(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.ResolveLink(tag, ant, world.LinkContext{Time: 2.5, Pass: i & 1023, Round: i & 7})
	}
}

// BenchmarkResolveLinkCached isolates the budget-terms cache paths of one
// resolution (DESIGN.md §9): "hit" repeats one fully-warm context — the
// steady state of a static-scene measurement — and "miss" invalidates the
// scene every iteration, forcing the full deterministic recomputation plus
// cache maintenance.
func BenchmarkResolveLinkCached(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		w, tag, ant := benchLinkScene(b)
		ctx := world.LinkContext{Time: 2.5, Pass: 1, Round: 1}
		_ = w.ResolveLink(tag, ant, ctx)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = w.ResolveLink(tag, ant, ctx)
		}
	})
	b.Run("miss", func(b *testing.B) {
		w, tag, ant := benchLinkScene(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Invalidate()
			_ = w.ResolveLink(tag, ant, world.LinkContext{Time: 2.5, Pass: i & 1023, Round: i & 7})
		}
	})
}

// BenchmarkResolveLinkCacheOff is BenchmarkResolveLink with the cache
// disabled (the -linkcache=off escape hatch) — the A/B baseline the cached
// benchmarks are read against.
func BenchmarkResolveLinkCacheOff(b *testing.B) {
	w, tag, ant := benchLinkScene(b)
	w.SetLinkCache(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.ResolveLink(tag, ant, world.LinkContext{Time: 2.5, Pass: i & 1023, Round: i & 7})
	}
}

// BenchmarkResolveLinkObserved is BenchmarkResolveLink with a metrics
// collector attached — the delta against the plain benchmark is the price
// of enabled instrumentation (the disabled path is pinned at zero cost by
// TestResolveLinkZeroAllocWhenDisabled and make bench-diff).
func BenchmarkResolveLinkObserved(b *testing.B) {
	w, tag, ant := benchLinkScene(b)
	w.Observe(obs.NewMetrics().Shard())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.ResolveLink(tag, ant, world.LinkContext{Time: 2.5, Pass: i & 1023, Round: i & 7})
	}
}

// benchGridScene builds the batched-resolution scene: a cart of twelve
// metal-content boxes (one tag each) crossing a two-antenna portal — the
// Table 1/Table 3 shape, where one ResolveLinkGrid call covers what the
// per-link path does in tags × antennas separate resolutions.
func benchGridScene(b *testing.B) (*world.World, []*world.Antenna) {
	b.Helper()
	w := world.New(rf.DefaultCalibration(), 1)
	a1 := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	for i := 0; i < 12; i++ {
		box := w.AddBox("box", geom.CrossingPass(1, 1, 2.5, 1),
			geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.38, 0.33, 0.15))
		code, err := epc.GID96{Manager: 1, Class: 1, Serial: uint64(i + 1)}.Encode()
		if err != nil {
			b.Fatal(err)
		}
		w.AttachTag(box, "tag"+string(rune('a'+i)), code, world.Mount{
			Offset: geom.V(0, -0.21, float64(i%3)*0.07),
			Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
		})
	}
	return w, []*world.Antenna{a1, a2}
}

// BenchmarkResolveLinkGrid measures batched grid resolution of the
// 12-tag × 2-antenna scene — 24 links per op (DESIGN.md §13). "hit"
// repeats one fully-warm context (every cached layer replays); "miss"
// invalidates the scene each iteration, refilling the deterministic
// columns; "batchoff" is the per-link A/B baseline resolving the same 24
// links through ResolveLink one at a time.
func BenchmarkResolveLinkGrid(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		w, ants := benchGridScene(b)
		var g world.LinkGrid
		ctx := world.LinkContext{Time: 2.5, Pass: 1, Round: 1}
		w.ResolveLinkGrid(ants, ctx, &g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.ResolveLinkGrid(ants, ctx, &g)
		}
	})
	b.Run("miss", func(b *testing.B) {
		w, ants := benchGridScene(b)
		var g world.LinkGrid
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Invalidate()
			w.ResolveLinkGrid(ants, world.LinkContext{Time: 2.5, Pass: i & 1023, Round: i & 7}, &g)
		}
	})
	b.Run("batchoff", func(b *testing.B) {
		w, ants := benchGridScene(b)
		tags := w.Tags()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := world.LinkContext{Time: 2.5, Pass: i & 1023, Round: i & 7}
			for _, ant := range ants {
				for _, tag := range tags {
					_ = w.ResolveLink(tag, ant, ctx)
				}
			}
		}
	})
}

// benchAisleWorld builds a warehouse-aisle world for the scaling
// benchmarks, with a metrics collector attached so culled fractions are
// measurable (both variants pay the same instrumentation cost).
func benchAisleWorld(b *testing.B, tags int) (*world.World, []*world.Antenna, *obs.Metrics) {
	b.Helper()
	w, ants, err := scenario.WarehouseAisleWorld(scenario.WarehouseAisleConfig{Tags: tags, Antennas: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := obs.NewMetrics()
	w.Observe(m.Shard())
	return w, ants, m
}

// BenchmarkResolveLinkGridScale measures batched grid resolution over the
// mega-scene family (DESIGN.md §14): a warehouse aisle at 10³–10⁵ tags,
// two antennas, in the reader's steady state (warm deterministic and
// cull columns, rounds advancing within one pass — the per-round cost of
// a static inventory). The culled variants report the fraction of links the
// broad-phase culler skipped ("culled%", gated by make bench-diff); the
// culloff variants are the dense A/B baseline. No 100k dense variant: the
// O(tags × carriers) obstruction scan makes one dense column fill at that
// scale take minutes — which is exactly the wall the culler removes.
func BenchmarkResolveLinkGridScale(b *testing.B) {
	run := func(tags int, cull bool) func(*testing.B) {
		return func(b *testing.B) {
			w, ants, m := benchAisleWorld(b, tags)
			w.SetLinkCull(cull)
			var g world.LinkGrid
			warm := world.LinkContext{Time: 0.1, Pass: 1, Round: 0, Cull: true}
			w.ResolveLinkGrid(ants, warm, &g)
			base := m.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := world.LinkContext{Time: 0.1, Pass: 1, Round: i & 7, Cull: true}
				w.ResolveLinkGrid(ants, ctx, &g)
			}
			b.StopTimer()
			links := float64(tags * len(ants) * b.N)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/links, "ns/link")
			snap := m.Snapshot()
			total := snap.Counters["grid.links"] - base.Counters["grid.links"]
			culled := snap.Counters["grid.culled"] - base.Counters["grid.culled"]
			if total > 0 {
				b.ReportMetric(100*float64(culled)/float64(total), "culled%")
			}
		}
	}
	b.Run("aisle-1k", run(1000, true))
	b.Run("aisle-10k", run(10000, true))
	b.Run("aisle-100k", run(100000, true))
	b.Run("aisle-1k-culloff", run(1000, false))
	b.Run("aisle-10k-culloff", run(10000, false))
}

// BenchmarkInventoryRound measures a 20-tag Gen-2 inventory round with the
// adaptive Q algorithm (protocol only, no radio).
func BenchmarkInventoryRound(b *testing.B) {
	parent := xrand.New(1)
	tags := make([]*tagsim.Tag, 20)
	parts := make([]gen2.Participant, len(tags))
	for i := range tags {
		code, err := epc.GID96{Manager: 1, Class: 2, Serial: uint64(i)}.Encode()
		if err != nil {
			b.Fatal(err)
		}
		tags[i] = tagsim.New(code, parent.Split(string(rune('a'+i))))
	}
	cfg := gen2.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, tag := range tags {
			tag.Reset()
			tag.SetPower(true, 0)
			parts[j] = gen2.Participant{Tag: tag, ForwardOK: true, ReverseOK: true}
		}
		res := gen2.RunRound(cfg, parts, 0)
		if len(res.Reads) != len(tags) {
			b.Fatalf("round read %d/%d", len(res.Reads), len(tags))
		}
	}
}

// BenchmarkEPCEncodeDecode measures the SGTIN-96 codec round trip.
func BenchmarkEPCEncodeDecode(b *testing.B) {
	s := epc.SGTIN96{Filter: 3, CompanyDigits: 7, Company: 614141, ItemRef: 812345, Serial: 6789}
	for i := 0; i < b.N; i++ {
		c, err := s.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := epc.DecodeSGTIN96(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRC16 measures the bit-serial Gen-2 CRC-16 over an EPC reply.
func BenchmarkCRC16(b *testing.B) {
	frame := epc.NewBits(0x3074, 16)
	frame.Append(0xDEADBEEF, 32)
	frame.Append(0xCAFEBABE, 32)
	frame.Append(0x12345678, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = epc.CRC16(frame)
	}
}
