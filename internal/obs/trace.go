package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// DefaultTraceMaxEvents bounds a tracer's output unless overridden: a
// full experiment sweep emits a few hundred thousand round events, so the
// default cap keeps a runaway (or link-level) trace from filling a disk.
const DefaultTraceMaxEvents = 1 << 21

// Tracer writes one JSON object per line (JSONL) for pass, round, and —
// optionally — per-(tag, antenna) link events. The schema is documented
// in DESIGN.md §8. A Tracer is safe for concurrent use: workers
// interleave, so lines are ordered only within one pass's emitting
// goroutine; consumers sort by (pass, round) when order matters.
//
// Output is buffered and bounded: after the event cap the tracer drops
// events (counting them) and Close appends a final "truncated" record.
// A nil *Tracer is the disabled state.
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	links   bool
	max     int64
	n       int64
	dropped int64
	err     error
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// TraceLinks enables per-(tag, antenna) link events — roughly
// tags × rounds lines, large but the full picture of every read
// opportunity.
func TraceLinks() TracerOption {
	return func(t *Tracer) { t.links = true }
}

// TraceMaxEvents overrides the event cap (n <= 0 keeps the default).
func TraceMaxEvents(n int64) TracerOption {
	return func(t *Tracer) {
		if n > 0 {
			t.max = n
		}
	}
}

// NewTracer wraps w in a buffered, bounded JSONL tracer.
func NewTracer(w io.Writer, opts ...TracerOption) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16), max: DefaultTraceMaxEvents}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Links reports whether link-level events are enabled; hot paths check it
// before assembling per-tag event data.
func (t *Tracer) Links() bool { return t != nil && t.links }

// emit marshals one event and appends it as a line, honoring the cap.
func (t *Tracer) emit(v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if t.n >= t.max {
		t.dropped++
		return
	}
	buf, err := json.Marshal(v)
	if err != nil {
		t.err = err
		return
	}
	t.n++
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// PassBegin records the start of one simulated pass.
func (t *Tracer) PassBegin(pass int) {
	t.emit(struct {
		Ev   string `json:"ev"`
		Pass int    `json:"pass"`
	}{"pass_begin", pass})
}

// PassEnd records the completion of one pass with its summary.
func (t *Tracer) PassEnd(pass, rounds, events int, duration float64) {
	t.emit(struct {
		Ev       string  `json:"ev"`
		Pass     int     `json:"pass"`
		Rounds   int     `json:"rounds"`
		Events   int     `json:"events"`
		Duration float64 `json:"duration_s"`
	}{"pass_end", pass, rounds, events, duration})
}

// Round records one inventory round's summary.
func (t *Tracer) Round(pass, round int, reader, antenna string, at float64, s RoundStats, duration float64) {
	t.emit(struct {
		Ev          string  `json:"ev"`
		Pass        int     `json:"pass"`
		Round       int     `json:"round"`
		Reader      string  `json:"reader"`
		Antenna     string  `json:"antenna"`
		T           float64 `json:"t"`
		Slots       int     `json:"slots"`
		Empties     int     `json:"empties"`
		Singles     int     `json:"singles"`
		Collisions  int     `json:"collisions"`
		Captures    int     `json:"captures,omitempty"`
		CRCFailures int     `json:"crc_failures,omitempty"`
		QAdjusts    int     `json:"q_adjusts,omitempty"`
		Reads       int     `json:"reads"`
		Duration    float64 `json:"duration_s"`
	}{"round", pass, round, reader, antenna, at, s.Slots, s.Empties, s.Singles,
		s.Collisions, s.Captures, s.CRCFailures, s.QAdjusts, s.Reads, duration})
}

// Link records one (tag, antenna) link resolution outcome for the round.
// Emitted only when TraceLinks is enabled.
func (t *Tracer) Link(pass, round int, reader, antenna, tag string, rssiDBm float64, forwardOK, reverseOK, read bool) {
	t.emit(struct {
		Ev        string  `json:"ev"`
		Pass      int     `json:"pass"`
		Round     int     `json:"round"`
		Reader    string  `json:"reader"`
		Antenna   string  `json:"antenna"`
		Tag       string  `json:"tag"`
		RSSIDBm   float64 `json:"rssi_dbm"`
		ForwardOK bool    `json:"forward_ok"`
		ReverseOK bool    `json:"reverse_ok"`
		Read      bool    `json:"read"`
	}{"link", pass, round, reader, antenna, tag, rssiDBm, forwardOK, reverseOK, read})
}

// Cycle records one stage of a live poll cycle's lifecycle (DESIGN.md
// §12): the cycle ID is minted at the poll and carried through every
// stage, so grepping one ID out of the JSONL stream yields the full
// poll → parse → apply → close → visible chain with per-stage wall
// latency. Events counts the stage's payload (tags polled, events
// parsed/applied, sightings closed).
func (t *Tracer) Cycle(cycle uint64, stage, reader string, micros int64, events int) {
	t.emit(struct {
		Ev     string `json:"ev"`
		Cycle  uint64 `json:"cycle"`
		Stage  string `json:"stage"`
		Reader string `json:"reader"`
		Micros int64  `json:"micros"`
		Events int    `json:"events"`
	}{"cycle", cycle, stage, reader, micros, events})
}

// Dropped returns how many events the cap discarded so far.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Close flushes the buffer, appending a "truncated" record first when the
// cap dropped events, and returns the first write error encountered.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped > 0 && t.err == nil {
		if buf, err := json.Marshal(struct {
			Ev      string `json:"ev"`
			Dropped int64  `json:"dropped"`
		}{"truncated", t.dropped}); err == nil {
			t.w.Write(buf)
			t.w.WriteByte('\n')
		}
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
