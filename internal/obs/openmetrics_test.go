package obs

import (
	"strings"
	"testing"
)

// TestWriteOpenMetricsWellFormed renders a populated registry and runs
// the exposition through the strict parser: counters, histograms with
// sums, and labeled gauges must all come out lint-clean.
func TestWriteOpenMetricsWellFormed(t *testing.T) {
	live := NewLive()
	live.Add(CtrPollAttempts, 7)
	live.Inc(CtrBreakerOpens)
	live.Observe(HistPollMicros, 1500)
	live.Observe(HistPollMicros, 0)
	live.Observe(HistFreshnessMicros, 123456)

	reg := NewRegistry(live)
	reg.Gauge("ingest_queue_length", "Batches waiting in the ingest queue.",
		func() []Sample { return []Sample{{Value: 3}} })
	reg.Gauge("breaker_state", "Breaker state per reader (0 closed, 1 open, 2 half-open).",
		func() []Sample {
			return []Sample{
				{Labels: []Label{{"reader", "r-a"}}, Value: 0},
				{Labels: []Label{{"reader", "r-b"}}, Value: 1},
			}
		})

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := sb.String()
	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition does not lint:\n%s\nerror: %v", out, err)
	}

	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	ctr, ok := byName["rfidtrack_poll_attempts"]
	if !ok || ctr.Type != "counter" {
		t.Fatalf("missing counter family rfidtrack_poll_attempts: %+v", ctr)
	}
	if ctr.Samples[0].Value != 7 {
		t.Errorf("poll_attempts_total = %g, want 7", ctr.Samples[0].Value)
	}
	hist, ok := byName["rfidtrack_poll_micros"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("missing histogram family rfidtrack_poll_micros")
	}
	var sum, count float64
	for _, s := range hist.Samples {
		switch s.Name {
		case "rfidtrack_poll_micros_sum":
			sum = s.Value
		case "rfidtrack_poll_micros_count":
			count = s.Value
		}
	}
	if sum != 1500 || count != 2 {
		t.Errorf("poll_micros sum/count = %g/%g, want 1500/2", sum, count)
	}
	g := byName["rfidtrack_breaker_state"]
	if len(g.Samples) != 2 || g.Samples[1].Label("reader") != "r-b" || g.Samples[1].Value != 1 {
		t.Errorf("breaker_state samples wrong: %+v", g.Samples)
	}
}

// TestWriteOpenMetricsDeterministic pins the golden-testability contract:
// two renders of the same registry state are byte-identical, and family
// order is sorted by name.
func TestWriteOpenMetricsDeterministic(t *testing.T) {
	live := NewLive()
	live.Add(CtrIngestEvents, 42)
	live.Observe(HistIngestBatch, 64)
	reg := NewRegistry(live)
	reg.Gauge("uptime_seconds", "Seconds since service start.",
		func() []Sample { return []Sample{{Value: 5}} })

	render := func() string {
		var sb strings.Builder
		if err := reg.WriteOpenMetrics(&sb); err != nil {
			t.Fatalf("WriteOpenMetrics: %v", err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two renders differ:\n%s\n---\n%s", a, b)
	}
	var last string
	for _, line := range strings.Split(a, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if name < last {
			t.Fatalf("family %s out of order after %s", name, last)
		}
		last = name
	}
	if !strings.HasSuffix(a, "# EOF\n") {
		t.Fatalf("exposition missing # EOF terminator")
	}
}

// TestNilRegistryAndLive keeps the disabled states safe: a nil registry
// ignores Gauge, and a registry over a nil Live renders gauges only.
func TestNilRegistryAndLive(t *testing.T) {
	var nilReg *Registry
	nilReg.Gauge("x", "y", nil) // must not panic
	reg := NewRegistry(nil)
	reg.Gauge("only", "The only series.", func() []Sample { return []Sample{{Value: 1}} })
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	if err := Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("gauge-only exposition does not lint: %v", err)
	}
	if !strings.Contains(sb.String(), "rfidtrack_only 1") {
		t.Fatalf("missing gauge sample:\n%s", sb.String())
	}
}
