package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestNilMetricsAndCollector(t *testing.T) {
	var m *Metrics
	if c := m.Shard(); c != nil {
		t.Fatal("nil Metrics handed out a non-nil shard")
	}
	snap := m.Snapshot()
	if len(snap.Opportunities) != 0 || snap.WallTime != nil {
		t.Errorf("nil Metrics snapshot not empty: %+v", snap)
	}
	if snap.Counters["pass.count"] != 0 {
		t.Error("nil Metrics snapshot has counts")
	}
}

func TestCountersAndHistograms(t *testing.T) {
	m := NewMetrics()
	c := m.Shard()
	c.Inc(CtrLinkResolutions)
	c.Add(CtrLinkResolutions, 4)
	c.RoundDone(RoundStats{Slots: 16, Empties: 10, Singles: 5, Collisions: 1,
		Captures: 1, CRCFailures: 2, QAdjusts: 3, Reads: 5})
	c.PassDone(7, 2.5, 3*time.Millisecond)

	s := m.Snapshot()
	want := map[string]uint64{
		"link.resolutions":   5,
		"round.count":        1,
		"round.slots":        16,
		"round.empties":      10,
		"round.singles":      5,
		"round.collisions":   1,
		"round.captures":     1,
		"round.crc_failures": 2,
		"round.q_adjusts":    3,
		"round.reads":        5,
		"pass.count":         1,
	}
	for name, v := range want {
		if s.Counters[name] != v {
			t.Errorf("counter %s = %d, want %d", name, s.Counters[name], v)
		}
	}
	// 16 slots lands in the bucket with upper bound 31 (2^5 − 1).
	h := s.Histograms["round.slots"]
	if h.Count != 1 || len(h.Buckets) != 1 || h.Buckets[0].Le != "31" {
		t.Errorf("round.slots histogram = %+v", h)
	}
	// 2.5 s simulated = 2500 ms → bucket le 4095.
	if hs := s.Histograms["pass.sim_ms"]; hs.Count != 1 || hs.Buckets[0].Le != "4095" {
		t.Errorf("pass.sim_ms histogram = %+v", hs)
	}
	if s.WallTime == nil || s.WallTime.TotalSeconds <= 0 || s.WallTime.PassMicros.Count != 1 {
		t.Errorf("wall time not recorded: %+v", s.WallTime)
	}
	if got := s.Canonical(); got.WallTime != nil {
		t.Error("Canonical kept the wall-time section")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	m := NewMetrics()
	c := m.Shard()
	for _, v := range []uint64{0, 1, 2, 3, 4, 1 << 30} {
		c.Observe(HistRoundsPerPass, v)
	}
	h := m.Snapshot().Histograms["pass.rounds"]
	if h.Count != 6 {
		t.Fatalf("count = %d, want 6", h.Count)
	}
	// Buckets: 0→{0}, 1→{1}, 3→{2,3}, 7→{4}, +Inf→{2^30}.
	wantBuckets := []HistBucket{
		{Le: "0", Count: 1}, {Le: "1", Count: 1}, {Le: "3", Count: 2},
		{Le: "7", Count: 1}, {Le: "+Inf", Count: 1},
	}
	if !reflect.DeepEqual(h.Buckets, wantBuckets) {
		t.Errorf("buckets = %+v, want %+v", h.Buckets, wantBuckets)
	}
}

// TestShardMergeIsOrderIndependent is the layer-level determinism
// contract: the same events spread over any number of shards in any
// arrangement merge to the same snapshot.
func TestShardMergeIsOrderIndependent(t *testing.T) {
	record := func(c *Collector, i int) {
		c.RoundDone(RoundStats{Slots: 8 + i, Singles: 1, Reads: 1})
		c.Opportunity("tag-a", "a1", OutRead)
		c.Opportunity("tag-b", "a2", Outcome(i%int(numOutcomes)))
		c.PassDone(3, 1.0, 0)
	}
	snapshotWith := func(shardCount int) string {
		m := NewMetrics()
		shards := make([]*Collector, shardCount)
		for i := range shards {
			shards[i] = m.Shard()
		}
		for i := 0; i < 24; i++ {
			record(shards[i%shardCount], i)
		}
		buf, err := json.Marshal(m.Snapshot().Canonical())
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	want := snapshotWith(1)
	for _, n := range []int{2, 3, 8} {
		if got := snapshotWith(n); got != want {
			t.Errorf("%d shards merged differently:\n1: %s\n%d: %s", n, want, n, got)
		}
	}
}

func TestOpportunityRates(t *testing.T) {
	m := NewMetrics()
	c := m.Shard()
	for i := 0; i < 3; i++ {
		c.Opportunity("t", "a", OutRead)
	}
	c.Opportunity("t", "a", OutMissed)
	c.Opportunity("t", "a", OutForwardOnly)
	c.Opportunity("t", "a", OutDeaf)
	s := m.Snapshot()
	if len(s.Opportunities) != 1 {
		t.Fatalf("opportunities = %d, want 1", len(s.Opportunities))
	}
	o := s.Opportunities[0]
	if o.Rounds() != 6 || o.ReadRate() != 0.5 {
		t.Errorf("rounds=%d rate=%v, want 6 and 0.5", o.Rounds(), o.ReadRate())
	}
	if !math.IsNaN((OpportunitySnapshot{}).ReadRate()) {
		t.Error("empty series rate is not NaN")
	}
}

func TestOpportunitySortOrder(t *testing.T) {
	m := NewMetrics()
	c := m.Shard()
	c.Opportunity("b", "a2", OutRead)
	c.Opportunity("b", "a1", OutRead)
	c.Opportunity("a", "a9", OutRead)
	s := m.Snapshot()
	var got []string
	for _, o := range s.Opportunities {
		got = append(got, o.Tag+"/"+o.Antenna)
	}
	want := []string{"a/a9", "b/a1", "b/a2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}
