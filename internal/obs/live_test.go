package obs

import (
	"sync"
	"testing"
)

func TestLiveNilSafe(t *testing.T) {
	var l *Live
	l.Inc(CtrIngestBatches)
	l.Add(CtrIngestEvents, 10)
	l.Observe(HistIngestBatch, 5)
	if got := l.Get(CtrIngestEvents); got != 0 {
		t.Fatalf("nil Live Get = %d, want 0", got)
	}
	s := l.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil Live snapshot not empty: %+v", s)
	}
}

func TestLiveCountersAndSnapshot(t *testing.T) {
	l := NewLive()
	l.Inc(CtrIngestBatches)
	l.Add(CtrIngestEvents, 64)
	l.Observe(HistIngestBatch, 64)
	l.Observe(HistIngestMicros, 3)

	if got := l.Get(CtrIngestEvents); got != 64 {
		t.Fatalf("Get(ingest.events) = %d, want 64", got)
	}
	s := l.Snapshot()
	if s.Counters["ingest.batches"] != 1 {
		t.Fatalf("ingest.batches = %d, want 1", s.Counters["ingest.batches"])
	}
	if s.Counters["ingest.events"] != 64 {
		t.Fatalf("ingest.events = %d, want 64", s.Counters["ingest.events"])
	}
	h, ok := s.Histograms["ingest.batch_size"]
	if !ok || h.Count != 1 {
		t.Fatalf("ingest.batch_size histogram = %+v, ok=%v", h, ok)
	}
	// Every counter name must appear, even zero ones: the stats endpoint
	// promises a stable vocabulary.
	for _, name := range counterNames {
		if _, ok := s.Counters[name]; !ok {
			t.Fatalf("snapshot missing counter %q", name)
		}
	}
}

func TestLiveConcurrent(t *testing.T) {
	l := NewLive()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Inc(CtrIngestBatches)
				l.Add(CtrIngestEvents, 2)
				l.Observe(HistIngestBatch, 2)
			}
		}()
	}
	// Snapshot while writers are active: must not race (run under -race).
	for i := 0; i < 10; i++ {
		_ = l.Snapshot()
	}
	wg.Wait()
	if got := l.Get(CtrIngestBatches); got != workers*per {
		t.Fatalf("ingest.batches = %d, want %d", got, workers*per)
	}
	if got := l.Get(CtrIngestEvents); got != 2*workers*per {
		t.Fatalf("ingest.events = %d, want %d", got, 2*workers*per)
	}
}
