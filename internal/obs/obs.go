// Package obs is the measurement engine's instrumentation layer: sharded
// counters and fixed-bucket histograms, an optional JSONL round/event
// tracer, and run manifests.
//
// The contract is zero cost when disabled. Every hook in the hot path
// (world.ResolveLink, reader rounds, core passes) is guarded by a single
// nil check and performs no allocation, no atomic, and no call when the
// observer is nil — pinned by the allocation guard in
// internal/world/obs_alloc_test.go and by BenchmarkResolveLink.
//
// When enabled, each measurement worker writes into its own *Collector
// shard (collectors are not safe for concurrent use; sharing is the
// registry's job). Because a pass is a pure function of (configuration,
// seed, passID) and every deterministic metric is an order-independent
// integer sum, merging the shards yields the same Snapshot no matter how
// many workers ran or which worker simulated which pass. Wall-clock
// timings are the one inherently nondeterministic signal; they live in
// the snapshot's WallTime section, which Canonical strips so snapshots
// can be compared bit-for-bit across worker counts.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Counter identifies one scalar engine counter.
type Counter int

// The engine's scalar counters. Round counters accumulate over every
// inventory round of every pass; link.resolutions counts calls into
// world.ResolveLink (one per (tag, active antenna, round), foreign-carrier
// resolutions excluded). The poll.* and breaker.* counters are the
// service-side resilience counters written by tracksvc reader supervisors
// (DESIGN.md §10); unlike the engine counters they tally live HTTP
// traffic, so their values depend on real scheduling, not only the seed.
const (
	CtrPasses          Counter = iota // pass.count
	CtrRounds                         // round.count
	CtrSlots                          // round.slots
	CtrEmpties                        // round.empties
	CtrSingles                        // round.singles
	CtrCollisions                     // round.collisions
	CtrCaptures                       // round.captures
	CtrCRCFailures                    // round.crc_failures
	CtrQAdjusts                       // round.q_adjusts
	CtrReads                          // round.reads
	CtrLinkResolutions                // link.resolutions
	CtrGridBatches                    // grid.batches
	CtrGridLinks                      // grid.links
	CtrGridActiveLinks                // grid.active_links
	CtrGridCulled                     // grid.culled
	CtrPollAttempts                   // poll.attempts
	CtrPollFailures                   // poll.failures
	CtrPollRetries                    // poll.retries
	CtrBreakerOpens                   // breaker.opens
	CtrBreakerProbes                  // breaker.half_opens
	CtrBreakerCloses                  // breaker.closes
	CtrIngestBatches                  // ingest.batches
	CtrIngestEvents                   // ingest.events
	CtrIngestClosed                   // ingest.closed
	CtrIngestDropped                  // ingest.dropped_events
	CtrIngestStalls                   // ingest.stalls
	CtrConfirmHeld                    // confirm.held_events
	CtrConfirmReleased                // confirm.released_events
	CtrConfirmTags                    // confirm.confirmed_tags
	CtrConfirmExpired                 // confirm.expired_events

	numCounters
)

// Name returns the counter's stable snapshot key (e.g. "grid.batches") —
// the key Snapshot.Counters indexes by.
func (c Counter) Name() string { return counterNames[c] }

// counterNames are the stable snapshot keys, documented in DESIGN.md §8.
var counterNames = [numCounters]string{
	CtrPasses:          "pass.count",
	CtrRounds:          "round.count",
	CtrSlots:           "round.slots",
	CtrEmpties:         "round.empties",
	CtrSingles:         "round.singles",
	CtrCollisions:      "round.collisions",
	CtrCaptures:        "round.captures",
	CtrCRCFailures:     "round.crc_failures",
	CtrQAdjusts:        "round.q_adjusts",
	CtrReads:           "round.reads",
	CtrLinkResolutions: "link.resolutions",
	CtrGridBatches:     "grid.batches",
	CtrGridLinks:       "grid.links",
	CtrGridActiveLinks: "grid.active_links",
	CtrGridCulled:      "grid.culled",
	CtrPollAttempts:    "poll.attempts",
	CtrPollFailures:    "poll.failures",
	CtrPollRetries:     "poll.retries",
	CtrBreakerOpens:    "breaker.opens",
	CtrBreakerProbes:   "breaker.half_opens",
	CtrBreakerCloses:   "breaker.closes",
	CtrIngestBatches:   "ingest.batches",
	CtrIngestEvents:    "ingest.events",
	CtrIngestClosed:    "ingest.closed",
	CtrIngestDropped:   "ingest.dropped_events",
	CtrIngestStalls:    "ingest.stalls",
	CtrConfirmHeld:     "confirm.held_events",
	CtrConfirmReleased: "confirm.released_events",
	CtrConfirmTags:     "confirm.confirmed_tags",
	CtrConfirmExpired:  "confirm.expired_events",
}

// Histogram identifies one deterministic fixed-bucket histogram.
type Histogram int

// The engine's deterministic histograms. All values are integers bucketed
// by powers of two (bucket k holds values in [2^(k-1), 2^k − 1]).
const (
	HistRoundsPerPass Histogram = iota // pass.rounds
	HistSlotsPerRound                  // round.slots
	HistReadsPerRound                  // round.reads
	HistPassSimMillis                  // pass.sim_ms (simulated pass duration, ms)
	HistIngestBatch                    // ingest.batch_size (events per ingested batch)
	HistIngestMicros                   // ingest.batch_micros (wall µs per ingested batch)

	// The event-lifecycle stage latencies (DESIGN.md §12): one poll cycle
	// is poll (HTTP round trip) → parse (XML to events) → apply (pipeline
	// ingest + store commit), and freshness is the end-to-end distance
	// from the poll's start (the reader-observation proxy) to store
	// visibility. All wall-clock microseconds, so nondeterministic.
	HistPollMicros      // poll.micros
	HistParseMicros     // parse.micros
	HistApplyMicros     // apply.micros
	HistFreshnessMicros // freshness.micros

	numHistograms
)

var histogramNames = [numHistograms]string{
	HistRoundsPerPass:   "pass.rounds",
	HistSlotsPerRound:   "round.slots",
	HistReadsPerRound:   "round.reads",
	HistPassSimMillis:   "pass.sim_ms",
	HistIngestBatch:     "ingest.batch_size",
	HistIngestMicros:    "ingest.batch_micros",
	HistPollMicros:      "poll.micros",
	HistParseMicros:     "parse.micros",
	HistApplyMicros:     "apply.micros",
	HistFreshnessMicros: "freshness.micros",
}

// Outcome classifies one (tag, antenna) read opportunity — one inventory
// round in which the antenna illuminated the tag. These are the per-round
// counts behind the paper's per-link probabilities P_i, the inputs to
// R_C = 1 − Π(1−P_i).
type Outcome int

const (
	// OutRead: the tag was singulated and its EPC decoded this round.
	OutRead Outcome = iota
	// OutMissed: both link directions were decodable but the round ended
	// without a read (lost to arbitration, collisions, or CRC failure) —
	// the protocol-limited misses.
	OutMissed
	// OutForwardOnly: the tag heard the reader but its backscatter was not
	// decodable — the reverse-link-limited misses.
	OutForwardOnly
	// OutDeaf: the tag could not decode reader commands (unpowered or
	// forward link down) — the power-limited misses.
	OutDeaf

	numOutcomes
)

// RoundStats is the per-round summary the reader reports after each
// inventory round (a plain-data mirror of gen2.Result).
type RoundStats struct {
	Slots       int
	Empties     int
	Singles     int
	Collisions  int
	Captures    int
	CRCFailures int
	QAdjusts    int
	Reads       int
}

// histBuckets is the fixed bucket count of every histogram: bucket 0
// holds the value 0, bucket k in [1, histBuckets−2] holds values in
// [2^(k−1), 2^k − 1], and the last bucket is the overflow.
const histBuckets = 20

// hist is one power-of-two-bucketed histogram.
type hist struct {
	buckets [histBuckets]uint64
}

// bucketFor maps a value to its power-of-two bucket index.
func bucketFor(v uint64) int {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

func (h *hist) observe(v uint64) { h.buckets[bucketFor(v)]++ }

// opKey identifies one (tag, antenna) opportunity series.
type opKey struct {
	tag, antenna string
}

// Collector is one worker's shard: plain (non-atomic) counters written by
// exactly one goroutine at a time. A nil *Collector is the disabled
// state; hot paths guard every hook with a single nil check.
type Collector struct {
	counters [numCounters]uint64
	hists    [numHistograms]hist

	// Wall-clock timing: nondeterministic, merged into the snapshot's
	// WallTime section only.
	wallPassMicros hist
	wallTotalNS    uint64

	// Link-cache effectiveness. Hit/miss splits depend on how many worker
	// replicas ran (each replica warms its own cache), so they merge into
	// the snapshot's Cache section, which Canonical strips alongside
	// WallTime. The grid term counters are the batched path's analogue:
	// links served from a still-valid LinkGrid column vs links whose
	// column had to be refilled.
	linkCacheHits, linkCacheMisses uint64
	gridTermHits, gridTermFills    uint64

	opps map[opKey]*[numOutcomes]uint64
}

func newCollector() *Collector {
	return &Collector{opps: make(map[opKey]*[numOutcomes]uint64)}
}

// Inc adds one to a scalar counter.
func (c *Collector) Inc(ctr Counter) { c.counters[ctr]++ }

// Add adds n to a scalar counter.
func (c *Collector) Add(ctr Counter, n uint64) { c.counters[ctr] += n }

// Observe records one value into a histogram.
func (c *Collector) Observe(h Histogram, v uint64) { c.hists[h].observe(v) }

// LinkCacheHit counts one budget-terms cache hit in world.ResolveLink.
func (c *Collector) LinkCacheHit() { c.linkCacheHits++ }

// LinkCacheMiss counts one budget-terms cache miss (a full deterministic
// term computation).
func (c *Collector) LinkCacheMiss() { c.linkCacheMisses++ }

// GridTermHits counts n links served from a still-valid LinkGrid
// deterministic column (world.ResolveLinkGrid).
func (c *Collector) GridTermHits(n uint64) { c.gridTermHits += n }

// GridTermFills counts n links whose LinkGrid deterministic column had to
// be (re)computed.
func (c *Collector) GridTermFills(n uint64) { c.gridTermFills += n }

// PassDone records the completion of one simulated pass: the round count,
// the simulated duration, and the wall-clock time the pass took.
func (c *Collector) PassDone(rounds int, simDuration float64, wall time.Duration) {
	c.counters[CtrPasses]++
	c.hists[HistRoundsPerPass].observe(uint64(rounds))
	if simDuration > 0 {
		c.hists[HistPassSimMillis].observe(uint64(simDuration * 1e3))
	}
	if wall > 0 {
		c.wallPassMicros.observe(uint64(wall.Microseconds()))
		c.wallTotalNS += uint64(wall.Nanoseconds())
	}
}

// RoundDone folds one inventory round's statistics into the counters.
func (c *Collector) RoundDone(s RoundStats) {
	c.counters[CtrRounds]++
	c.counters[CtrSlots] += uint64(s.Slots)
	c.counters[CtrEmpties] += uint64(s.Empties)
	c.counters[CtrSingles] += uint64(s.Singles)
	c.counters[CtrCollisions] += uint64(s.Collisions)
	c.counters[CtrCaptures] += uint64(s.Captures)
	c.counters[CtrCRCFailures] += uint64(s.CRCFailures)
	c.counters[CtrQAdjusts] += uint64(s.QAdjusts)
	c.counters[CtrReads] += uint64(s.Reads)
	c.hists[HistSlotsPerRound].observe(uint64(s.Slots))
	c.hists[HistReadsPerRound].observe(uint64(s.Reads))
}

// Opportunity records the outcome of one (tag, antenna) read opportunity.
func (c *Collector) Opportunity(tag, antenna string, out Outcome) {
	k := opKey{tag: tag, antenna: antenna}
	row := c.opps[k]
	if row == nil {
		row = new([numOutcomes]uint64)
		c.opps[k] = row
	}
	row[out]++
}

// Metrics is the sharded registry: the measurement engine requests one
// Collector per worker via Shard and the owner merges them with Snapshot
// once measurement is done. A nil *Metrics hands out nil shards, keeping
// the whole pipeline disabled.
type Metrics struct {
	mu     sync.Mutex
	shards []*Collector
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Shard registers and returns a new collector shard. Safe to call from
// any goroutine; returns nil when the registry itself is nil.
func (m *Metrics) Shard() *Collector {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := newCollector()
	m.shards = append(m.shards, c)
	return c
}

// Snapshot merges every shard into one Snapshot. All deterministic
// metrics are integer sums, so the result is independent of shard count
// and of which worker recorded what. Call only after the measurement
// using the shards has finished (shards are not synchronized).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, int(numCounters)),
		Histograms: make(map[string]HistSnapshot, int(numHistograms)),
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	shards := append([]*Collector(nil), m.shards...)
	m.mu.Unlock()

	var counters [numCounters]uint64
	var hists [numHistograms]hist
	var wallPass hist
	var wallNS uint64
	var cacheHits, cacheMisses uint64
	var gridHits, gridFills uint64
	opps := make(map[opKey]*[numOutcomes]uint64)
	for _, c := range shards {
		cacheHits += c.linkCacheHits
		cacheMisses += c.linkCacheMisses
		gridHits += c.gridTermHits
		gridFills += c.gridTermFills
		for i := range counters {
			counters[i] += c.counters[i]
		}
		for i := range hists {
			for b := range hists[i].buckets {
				hists[i].buckets[b] += c.hists[i].buckets[b]
			}
		}
		for b := range wallPass.buckets {
			wallPass.buckets[b] += c.wallPassMicros.buckets[b]
		}
		wallNS += c.wallTotalNS
		for k, row := range c.opps {
			dst := opps[k]
			if dst == nil {
				dst = new([numOutcomes]uint64)
				opps[k] = dst
			}
			for i := range row {
				dst[i] += row[i]
			}
		}
	}

	for i, v := range counters {
		s.Counters[counterNames[i]] = v
	}
	for i := range hists {
		s.Histograms[histogramNames[i]] = snapHist(&hists[i])
	}
	for k, row := range opps {
		s.Opportunities = append(s.Opportunities, OpportunitySnapshot{
			Tag:         k.tag,
			Antenna:     k.antenna,
			Read:        row[OutRead],
			Missed:      row[OutMissed],
			ForwardOnly: row[OutForwardOnly],
			Deaf:        row[OutDeaf],
		})
	}
	sort.Slice(s.Opportunities, func(i, j int) bool {
		a, b := s.Opportunities[i], s.Opportunities[j]
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		return a.Antenna < b.Antenna
	})
	if wallNS > 0 {
		s.WallTime = &WallSnapshot{
			TotalSeconds: float64(wallNS) / 1e9,
			PassMicros:   snapHist(&wallPass),
		}
	}
	if cacheHits+cacheMisses+gridHits+gridFills > 0 {
		s.Cache = &CacheSnapshot{
			LinkHits:      cacheHits,
			LinkMisses:    cacheMisses,
			GridTermHits:  gridHits,
			GridTermFills: gridFills,
		}
	}
	return s
}
