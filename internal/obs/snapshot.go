package obs

import (
	"fmt"
	"math"
)

// Snapshot is the merged, serializable view of a Metrics registry.
// Everything outside WallTime is deterministic: for a fixed
// (configuration, seed, trial count) it is bit-identical no matter how
// many workers measured — the property TestMetricsMergeDeterminism pins.
type Snapshot struct {
	// Counters maps counter name (DESIGN.md §8) to its total.
	Counters map[string]uint64 `json:"counters"`
	// Histograms maps histogram name to its fixed power-of-two buckets.
	Histograms map[string]HistSnapshot `json:"histograms"`
	// Opportunities lists per-(tag, antenna) read-opportunity outcomes,
	// sorted by tag then antenna.
	Opportunities []OpportunitySnapshot `json:"opportunities,omitempty"`
	// WallTime is the nondeterministic section: wall-clock pass timings.
	WallTime *WallSnapshot `json:"wall_time,omitempty"`
	// Cache reports link-cache effectiveness. Like WallTime it is not
	// deterministic across worker counts — every worker replica warms its
	// own cache, so the hit/miss split depends on how trials were spread —
	// and Canonical strips it.
	Cache *CacheSnapshot `json:"cache,omitempty"`
}

// HistSnapshot is one histogram: bucket k counts values in
// [2^(k−1), 2^k − 1] (bucket 0 counts zeros, the last bucket overflows).
// Only non-empty buckets are emitted, labeled by their inclusive upper
// bound ("le") with "+Inf" for the overflow bucket.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	// Sum is the total of the raw observed values. Only Live tracks it
	// (the exposition's histogram _sum series); Collector snapshots leave
	// it zero — their bucket counts are the deterministic signal.
	Sum     uint64       `json:"sum,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	// Le is the bucket's inclusive upper bound ("0", "1", "3", "7", …,
	// "+Inf").
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// OpportunitySnapshot is the outcome tally of one (tag, antenna) series.
type OpportunitySnapshot struct {
	Tag         string `json:"tag"`
	Antenna     string `json:"antenna"`
	Read        uint64 `json:"read"`
	Missed      uint64 `json:"missed,omitempty"`
	ForwardOnly uint64 `json:"forward_only,omitempty"`
	Deaf        uint64 `json:"deaf,omitempty"`
}

// Rounds is the total opportunities in the series.
func (o OpportunitySnapshot) Rounds() uint64 {
	return o.Read + o.Missed + o.ForwardOnly + o.Deaf
}

// ReadRate is the per-round read probability of the series (the paper's
// per-opportunity P_i); NaN when the series is empty.
func (o OpportunitySnapshot) ReadRate() float64 {
	n := o.Rounds()
	if n == 0 {
		return math.NaN()
	}
	return float64(o.Read) / float64(n)
}

// WallSnapshot carries the wall-clock timings, the one section of a
// snapshot that is *not* deterministic across runs or worker counts.
type WallSnapshot struct {
	// TotalSeconds is the summed wall time of all measured passes (CPU
	// seconds of simulation, roughly workers × elapsed).
	TotalSeconds float64 `json:"total_seconds"`
	// PassMicros buckets each pass's wall time in microseconds.
	PassMicros HistSnapshot `json:"pass_micros"`
}

// CacheSnapshot tallies link-cache lookups in world.ResolveLink and
// deterministic-column reuse in world.ResolveLinkGrid. Hits replay
// precomputed budget terms; misses/fills computed them fresh (see
// DESIGN.md §9 and §13).
type CacheSnapshot struct {
	LinkHits   uint64 `json:"link_hits"`
	LinkMisses uint64 `json:"link_misses"`
	// GridTermHits/GridTermFills count links on the batched grid path
	// whose deterministic column was reused vs (re)computed.
	GridTermHits  uint64 `json:"grid_term_hits,omitempty"`
	GridTermFills uint64 `json:"grid_term_fills,omitempty"`
}

// HitRate is the fraction of lookups served from the cache; NaN when no
// lookups were recorded.
func (c CacheSnapshot) HitRate() float64 {
	n := c.LinkHits + c.LinkMisses
	if n == 0 {
		return math.NaN()
	}
	return float64(c.LinkHits) / float64(n)
}

// GridHitRate is the fraction of grid-path links served from a
// still-valid deterministic column; NaN when the grid path never ran.
func (c CacheSnapshot) GridHitRate() float64 {
	n := c.GridTermHits + c.GridTermFills
	if n == 0 {
		return math.NaN()
	}
	return float64(c.GridTermHits) / float64(n)
}

// Canonical returns the snapshot with the nondeterministic sections
// (WallTime, Cache) stripped — the form that is bit-identical across
// worker counts and safe to diff or golden-test.
func (s Snapshot) Canonical() Snapshot {
	s.WallTime = nil
	s.Cache = nil
	return s
}

// snapHist converts an internal histogram into its serialized form.
func snapHist(h *hist) HistSnapshot {
	var out HistSnapshot
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		out.Count += n
		out.Buckets = append(out.Buckets, HistBucket{Le: bucketLabel(i), Count: n})
	}
	return out
}

// bucketLabel renders bucket i's inclusive upper bound.
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	if i >= histBuckets-1 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", uint64(1)<<i-1)
}
