package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewMetrics()
	c := m.Shard()
	c.RoundDone(RoundStats{Slots: 4, Singles: 1, Reads: 1})
	c.Opportunity("t1", "a1", OutRead)
	c.PassDone(1, 0.5, time.Millisecond)
	snap := m.Snapshot()

	in := Manifest{
		Tool:            "test",
		Experiments:     []string{"fig2"},
		Seed:            7,
		Trials:          12,
		Workers:         4,
		GoVersion:       "go1.24.0",
		GitRevision:     GitRevision(),
		Start:           time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		DurationSeconds: 1.25,
		Timings:         map[string]float64{"fig2": 1.25},
		Metrics:         &snap,
	}
	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := WriteManifest(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tool != in.Tool || out.Seed != in.Seed || out.Workers != in.Workers ||
		!out.Start.Equal(in.Start) || out.Timings["fig2"] != 1.25 {
		t.Errorf("round trip mangled manifest: %+v", out)
	}
	if out.Metrics == nil || out.Metrics.Counters["round.count"] != 1 {
		t.Errorf("round trip lost metrics: %+v", out.Metrics)
	}
	if len(out.Metrics.Opportunities) != 1 || out.Metrics.Opportunities[0].Tag != "t1" {
		t.Errorf("round trip lost opportunities: %+v", out.Metrics.Opportunities)
	}
}

func TestReadManifestErrors(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); err == nil {
		t.Error("malformed manifest accepted")
	}
}

// GitRevision must never fail outright — "unknown" is the worst case.
func TestGitRevision(t *testing.T) {
	if GitRevision() == "" {
		t.Error("GitRevision returned empty string")
	}
}
