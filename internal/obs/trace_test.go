package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeLines parses a JSONL stream into generic maps, failing on any
// malformed line.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerEmitsSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TraceLinks())
	tr.PassBegin(3)
	tr.Round(3, 0, "r1", "a1", 0.5, RoundStats{Slots: 16, Singles: 2, Reads: 2}, 0.04)
	tr.Link(3, 0, "r1", "a1", "tag-x", -61.5, true, true, true)
	tr.PassEnd(3, 1, 2, 2.5)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for i, ev := range []string{"pass_begin", "round", "link", "pass_end"} {
		if lines[i]["ev"] != ev {
			t.Errorf("line %d ev = %v, want %s", i, lines[i]["ev"], ev)
		}
		if lines[i]["pass"] != float64(3) {
			t.Errorf("line %d pass = %v, want 3", i, lines[i]["pass"])
		}
	}
	round := lines[1]
	if round["slots"] != float64(16) || round["reads"] != float64(2) ||
		round["reader"] != "r1" || round["antenna"] != "a1" {
		t.Errorf("round event = %v", round)
	}
	link := lines[2]
	if link["tag"] != "tag-x" || link["rssi_dbm"] != -61.5 ||
		link["forward_ok"] != true || link["read"] != true {
		t.Errorf("link event = %v", link)
	}
}

func TestTracerCycleEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Cycle(9, "poll", "http://r1", 420, 3)
	tr.Cycle(9, "apply", "http://r1", 17, 3)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, stage := range []string{"poll", "apply"} {
		if lines[i]["ev"] != "cycle" || lines[i]["stage"] != stage ||
			lines[i]["cycle"] != float64(9) || lines[i]["reader"] != "http://r1" {
			t.Errorf("cycle line %d = %v", i, lines[i])
		}
	}
	if lines[0]["micros"] != float64(420) || lines[0]["events"] != float64(3) {
		t.Errorf("poll stage payload = %v", lines[0])
	}
}

func TestTracerLinksGating(t *testing.T) {
	var off *Tracer
	if off.Links() {
		t.Error("nil tracer reports links enabled")
	}
	if NewTracer(&bytes.Buffer{}).Links() {
		t.Error("default tracer reports links enabled")
	}
	if !NewTracer(&bytes.Buffer{}, TraceLinks()).Links() {
		t.Error("TraceLinks tracer reports links disabled")
	}
}

func TestTracerBoundedBuffering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, TraceMaxEvents(2))
	for i := 0; i < 5; i++ {
		tr.PassBegin(i)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 events + truncation marker", len(lines))
	}
	last := lines[2]
	if last["ev"] != "truncated" || last["dropped"] != float64(3) {
		t.Errorf("truncation marker = %v", last)
	}
}
