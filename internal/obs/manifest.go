package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"time"
)

// Manifest is the record written next to experiment output: everything
// needed to reproduce the run (config, seed, workers, revision) plus its
// timings and the full metric snapshot.
type Manifest struct {
	// Tool is the producing command ("experiments", "rfsim", …).
	Tool string `json:"tool"`
	// Experiments lists the experiment ids the run executed.
	Experiments []string `json:"experiments,omitempty"`
	Seed        uint64   `json:"seed"`
	// Trials is the per-experiment override (0 = paper defaults).
	Trials int `json:"trials"`
	// Workers is the requested pool size (0 = GOMAXPROCS).
	Workers     int    `json:"workers"`
	GoVersion   string `json:"go_version,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	// Start is the run's wall-clock start (UTC).
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	// Timings maps experiment id to its wall-clock seconds.
	Timings map[string]float64 `json:"timings,omitempty"`
	// Metrics is the merged metric snapshot (including WallTime).
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// GitRevision returns the VCS revision stamped into the binary by the Go
// toolchain ("-dirty" suffixed when the tree was modified), or "unknown"
// when the build carries no VCS metadata (go test binaries, go run).
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	return rev + dirty
}

// WriteManifest marshals the manifest as indented JSON to path.
func WriteManifest(path string, m Manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a manifest written by WriteManifest.
func ReadManifest(path string) (Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return Manifest{}, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return m, nil
}
