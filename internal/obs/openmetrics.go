package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// OpenMetrics exposition of the live metric set (DESIGN.md §12). The
// registry owns one *Live (counters + histograms) plus any number of
// gauge families sampled at scrape time, and renders them as the
// OpenMetrics text format with fully deterministic series ordering:
// families sort by exposition name, histogram buckets ascend, and gauge
// samplers contract to return their samples in a stable order. That
// determinism is what makes `GET /metrics` golden-testable and lets
// cmd/obsreport diff two scrapes series-by-series.

// ContentType is the HTTP Content-Type of the exposition.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricNamespace prefixes every exposed series.
const MetricNamespace = "rfidtrack"

// Label is one name="value" pair on a sample.
type Label struct {
	Key, Value string
}

// Sample is one gauge data point produced by a sampler.
type Sample struct {
	Labels []Label
	Value  float64
}

// gaugeFamily is one registered gauge metric; sample runs at scrape time.
type gaugeFamily struct {
	name   string // full exposition name (namespace included)
	help   string
	sample func() []Sample
}

// Registry assembles the exposition: the live counter/histogram set plus
// registered gauges. Safe for concurrent Gauge/WriteOpenMetrics calls.
type Registry struct {
	live *Live

	mu     sync.Mutex
	gauges []gaugeFamily
}

// NewRegistry builds a registry over live (nil live exposes gauges only).
func NewRegistry(live *Live) *Registry { return &Registry{live: live} }

// Live returns the registry's live metric set.
func (r *Registry) Live() *Live {
	if r == nil {
		return nil
	}
	return r.live
}

// Gauge registers a gauge family under name (unprefixed; the namespace is
// added here). The sampler runs on every scrape and must return its
// samples in a deterministic order — that order is the exposition order.
// Label cardinality is the sampler's responsibility: keep it bounded by
// configuration (readers, shards), never by data (EPCs).
func (r *Registry) Gauge(name, help string, sample func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeFamily{
		name:   MetricNamespace + "_" + name,
		help:   help,
		sample: sample,
	})
}

// counterHelp documents each live counter for the exposition HELP line.
var counterHelp = [numCounters]string{
	CtrPasses:          "Simulated portal passes completed.",
	CtrRounds:          "Gen-2 inventory rounds completed.",
	CtrSlots:           "Inventory slots opened across all rounds.",
	CtrEmpties:         "Empty inventory slots.",
	CtrSingles:         "Singleton (successful) inventory slots.",
	CtrCollisions:      "Collided inventory slots.",
	CtrCaptures:        "Collisions resolved by capture effect.",
	CtrCRCFailures:     "Tag replies discarded for CRC failure.",
	CtrQAdjusts:        "Gen-2 Q parameter adjustments.",
	CtrReads:           "Successful tag reads (EPC decoded).",
	CtrLinkResolutions: "Calls into world.ResolveLink.",
	CtrGridBatches:     "Batched grid resolutions (world.ResolveLinkGrid calls).",
	CtrGridLinks:       "Links resolved through the batched grid path.",
	CtrGridActiveLinks: "Grid links composed after broad-phase culling.",
	CtrGridCulled:      "Grid links skipped by the broad-phase culler.",
	CtrPollAttempts:    "Reader poll attempts, including retries.",
	CtrPollFailures:    "Reader poll attempts that failed.",
	CtrPollRetries:     "Reader poll retries after a failed attempt.",
	CtrBreakerOpens:    "Circuit breaker transitions to open.",
	CtrBreakerProbes:   "Circuit breaker half-open probe polls.",
	CtrBreakerCloses:   "Circuit breaker transitions back to closed.",
	CtrIngestBatches:   "Event batches ingested into the pipeline.",
	CtrIngestEvents:    "Raw read events ingested into the pipeline.",
	CtrIngestClosed:    "Sightings closed by the smoother.",
	CtrIngestDropped:   "Events shed by the full-queue drop policy.",
	CtrIngestStalls:    "Ingest submissions that found the queue full.",
	CtrConfirmHeld:     "Events held back pending k-of-n pass confirmation.",
	CtrConfirmReleased: "Held events released when their tag confirmed.",
	CtrConfirmTags:     "Tags confirmed by the k-of-n merge policy.",
	CtrConfirmExpired:  "Held events discarded by window expiry or buffer bounds.",
}

// histHelp documents each live histogram for the exposition HELP line.
var histHelp = [numHistograms]string{
	HistRoundsPerPass:   "Inventory rounds per simulated pass.",
	HistSlotsPerRound:   "Slots per inventory round.",
	HistReadsPerRound:   "Reads per inventory round.",
	HistPassSimMillis:   "Simulated pass duration in milliseconds.",
	HistIngestBatch:     "Events per ingested batch.",
	HistIngestMicros:    "Wall microseconds per ingested batch.",
	HistPollMicros:      "Wall microseconds per reader poll HTTP round trip.",
	HistParseMicros:     "Wall microseconds parsing one poll result into events.",
	HistApplyMicros:     "Wall microseconds applying one batch to the store.",
	HistFreshnessMicros: "Wall microseconds from poll start to store visibility.",
}

// expoName converts a snapshot key ("poll.attempts") into an exposition
// family name ("rfidtrack_poll_attempts").
func expoName(key string) string {
	return MetricNamespace + "_" + strings.NewReplacer(".", "_", "-", "_").Replace(key)
}

// histExpoNames are the histogram families' exposition names. They
// diverge from the snapshot keys where a mechanical mapping would
// collide with a counter family (round.slots / round.reads are both a
// running total and a per-round distribution).
var histExpoNames = [numHistograms]string{
	HistRoundsPerPass:   MetricNamespace + "_rounds_per_pass",
	HistSlotsPerRound:   MetricNamespace + "_slots_per_round",
	HistReadsPerRound:   MetricNamespace + "_reads_per_round",
	HistPassSimMillis:   MetricNamespace + "_pass_sim_ms",
	HistIngestBatch:     MetricNamespace + "_ingest_batch_size",
	HistIngestMicros:    MetricNamespace + "_ingest_batch_micros",
	HistPollMicros:      MetricNamespace + "_poll_micros",
	HistParseMicros:     MetricNamespace + "_parse_micros",
	HistApplyMicros:     MetricNamespace + "_apply_micros",
	HistFreshnessMicros: MetricNamespace + "_freshness_micros",
}

// family is one renderable exposition block.
type family struct {
	name string
	body func(w io.Writer) error
}

// WriteOpenMetrics renders the full exposition: every live counter as a
// counter family, every live histogram as a histogram family (cumulative
// buckets, _sum from Live's value sums, _count), every registered gauge,
// then the `# EOF` terminator. Series ordering is deterministic: families
// sort by name; buckets ascend; gauge samples keep sampler order.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	var fams []family
	if r != nil && r.live != nil {
		live := r.live
		for i := Counter(0); i < numCounters; i++ {
			fams = append(fams, counterFamily(live, i))
		}
		for i := Histogram(0); i < numHistograms; i++ {
			fams = append(fams, histogramFamily(live, i))
		}
	}
	if r != nil {
		r.mu.Lock()
		gauges := append([]gaugeFamily(nil), r.gauges...)
		r.mu.Unlock()
		for _, g := range gauges {
			fams = append(fams, gaugeFamilyBlock(g))
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.body(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func counterFamily(live *Live, ctr Counter) family {
	name := expoName(counterNames[ctr])
	return family{name: name, body: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s_total %d\n",
			name, counterHelp[ctr], name, name, live.Get(ctr))
		return err
	}}
}

func histogramFamily(live *Live, h Histogram) family {
	name := histExpoNames[h]
	return family{name: name, body: func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			name, histHelp[h], name); err != nil {
			return err
		}
		var cum uint64
		for b := 0; b < histBuckets; b++ {
			cum += live.hists[h][b].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				name, bucketLabel(b), cum); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
			name, live.sums[h].Load(), name, cum)
		return err
	}}
}

func gaugeFamilyBlock(g gaugeFamily) family {
	return family{name: g.name, body: func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n",
			g.name, g.help, g.name); err != nil {
			return err
		}
		for _, s := range g.sample() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				g.name, renderLabels(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
		return nil
	}}
}

// renderLabels renders a label set as {k="v",...}, escaping per the
// exposition format; an empty set renders as nothing.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// formatValue renders a float the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
