package obs

import (
	"strings"
	"testing"
)

// TestLintRejects feeds the linter the malformations it exists to catch.
func TestLintRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the expected error
	}{
		{
			name: "missing EOF",
			in:   "# HELP a_b X\n# TYPE a_b counter\na_b_total 1\n",
			want: "# EOF",
		},
		{
			name: "sample before TYPE",
			in:   "a_b_total 1\n# EOF\n",
			want: "before any TYPE",
		},
		{
			name: "duplicate series",
			in:   "# HELP a_b X\n# TYPE a_b gauge\na_b 1\na_b 2\n# EOF\n",
			want: "duplicate series",
		},
		{
			name: "family declared twice",
			in: "# HELP a_b X\n# TYPE a_b gauge\na_b 1\n" +
				"# HELP c_d X\n# TYPE c_d gauge\nc_d 1\n" +
				"# TYPE a_b gauge\n# EOF\n",
			want: "declared twice",
		},
		{
			name: "foreign sample suffix",
			in:   "# HELP a_b X\n# TYPE a_b counter\na_b 1\n# EOF\n",
			want: "does not belong",
		},
		{
			name: "non-monotone histogram",
			in: "# HELP h X\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
				"h_sum 9\nh_count 5\n# EOF\n",
			want: "not monotone",
		},
		{
			name: "missing +Inf bucket",
			in: "# HELP h X\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n# EOF\n",
			want: "+Inf",
		},
		{
			name: "count disagrees with +Inf",
			in: "# HELP h X\n# TYPE h histogram\n" +
				"h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 7\n# EOF\n",
			want: "disagrees",
		},
		{
			name: "bad value",
			in:   "# HELP a_b X\n# TYPE a_b gauge\na_b banana\n# EOF\n",
			want: "bad value",
		},
		{
			name: "content after EOF",
			in:   "# EOF\n# HELP a_b X\n",
			want: "after # EOF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("lint accepted malformed input:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseExpositionRoundTrip parses a small valid document and checks
// the family structure comes back intact.
func TestParseExpositionRoundTrip(t *testing.T) {
	in := "# HELP rfidtrack_reads Successful reads.\n" +
		"# TYPE rfidtrack_reads counter\n" +
		"rfidtrack_reads_total 12\n" +
		"# HELP rfidtrack_rate Read rate per reader.\n" +
		"# TYPE rfidtrack_rate gauge\n" +
		"rfidtrack_rate{reader=\"a\"} 0.5\n" +
		"rfidtrack_rate{reader=\"b\"} 0.75\n" +
		"# EOF\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	if fams[0].Name != "rfidtrack_reads" || fams[0].Samples[0].Value != 12 {
		t.Errorf("counter family wrong: %+v", fams[0])
	}
	if got := fams[1].Samples[1].Label("reader"); got != "b" {
		t.Errorf("label parse: got %q, want b", got)
	}
}
