package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A strict parser for the OpenMetrics text exposition, used two ways:
// `make metrics-lint` runs it over the service's real `GET /metrics`
// output to gate well-formedness in CI, and cmd/obsreport uses the
// parsed families to render and diff live scrapes. Strictness is the
// point — every violation it can detect (missing metadata, duplicate
// series, non-monotone histogram buckets, missing terminator) is a
// dashboard-breaking bug, so parse errors are lint failures.

// Family is one parsed metric family.
type Family struct {
	Name    string // family name, without sample suffixes
	Type    string // "counter", "gauge", "histogram", ...
	Help    string
	Samples []ParsedSample
}

// ParsedSample is one parsed series sample.
type ParsedSample struct {
	Name   string  // full sample name (with _total/_bucket/... suffix)
	Labels string  // raw label block without braces ("" when unlabeled)
	Value  float64 // NaN never appears in our expositions
}

// Label returns the value of the named label on the sample, or "".
func (s ParsedSample) Label(key string) string {
	for _, part := range strings.Split(s.Labels, ",") {
		if k, v, ok := strings.Cut(part, "="); ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// sampleSuffixes lists the sample-name suffixes each family type may use
// beyond the bare family name.
var sampleSuffixes = map[string][]string{
	"counter":   {"_total"},
	"gauge":     {""},
	"histogram": {"_bucket", "_sum", "_count"},
}

// ParseExposition parses and validates an OpenMetrics text exposition.
// It enforces: HELP/TYPE metadata before samples, one family per name,
// family-contiguous samples with type-legal suffixes, no duplicate
// series, cumulative non-decreasing histogram buckets in ascending le
// order with a final +Inf bucket equal to _count, and the `# EOF`
// terminator. Any violation returns an error naming the offending line.
func ParseExposition(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)

	var fams []Family
	byName := map[string]int{}
	seen := map[string]bool{} // sample name + labels → duplicate detection
	cur := -1                 // index into fams of the open family
	sawEOF := false
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		switch {
		case line == "# EOF":
			sawEOF = true
		case strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE "):
			kind := line[2:6]
			rest := line[7:]
			name, text, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed %s line", lineNo, kind)
			}
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			idx, exists := byName[name]
			if !exists {
				fams = append(fams, Family{Name: name})
				idx = len(fams) - 1
				byName[name] = idx
			}
			if idx != cur && exists {
				return nil, fmt.Errorf("line %d: family %s declared twice", lineNo, name)
			}
			cur = idx
			if kind == "HELP" {
				if fams[idx].Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				fams[idx].Help = text
			} else {
				if fams[idx].Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if _, ok := sampleSuffixes[text]; !ok {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, text)
				}
				fams[idx].Type = text
			}
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		case strings.TrimSpace(line) == "":
			return nil, fmt.Errorf("line %d: blank line", lineNo)
		default:
			s, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if cur < 0 {
				return nil, fmt.Errorf("line %d: sample %s before any TYPE line", lineNo, s.Name)
			}
			fam := &fams[cur]
			if fam.Type == "" {
				return nil, fmt.Errorf("line %d: sample %s in family %s with no TYPE", lineNo, s.Name, fam.Name)
			}
			if !suffixLegal(fam, s.Name) {
				return nil, fmt.Errorf("line %d: sample %s does not belong to %s family %s",
					lineNo, s.Name, fam.Type, fam.Name)
			}
			key := s.Name + "{" + s.Labels + "}"
			if seen[key] {
				return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
			}
			seen[key] = true
			fam.Samples = append(fam.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("exposition does not end with # EOF")
	}
	for i := range fams {
		if fams[i].Type == "histogram" {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// parseSampleLine splits `name{labels} value` (timestamps not accepted —
// our expositions never emit them).
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("malformed label block in %q", line)
		}
		s.Name = rest[:i]
		s.Labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("sample line %q has no value", line)
		}
	}
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func suffixLegal(fam *Family, sampleName string) bool {
	for _, suf := range sampleSuffixes[fam.Type] {
		if sampleName == fam.Name+suf {
			return true
		}
	}
	return false
}

// checkHistogram validates one histogram family: per label set (les
// stripped), buckets must appear in strictly ascending le order with
// non-decreasing cumulative counts, end at le="+Inf", and agree with the
// _count series.
func checkHistogram(fam *Family) error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	group := func(s ParsedSample) *series {
		var rest []string
		for _, part := range strings.Split(s.Labels, ",") {
			if part != "" && !strings.HasPrefix(part, "le=") {
				rest = append(rest, part)
			}
		}
		sort.Strings(rest)
		key := strings.Join(rest, ",")
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			g := group(s)
			le := s.Label("le")
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("%s: bad le %q", fam.Name, le)
				}
			}
			g.les = append(g.les, bound)
			g.counts = append(g.counts, s.Value)
		case fam.Name + "_count":
			g := group(s)
			g.count, g.hasCnt = s.Value, true
		}
	}
	for key, g := range groups {
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("%s{%s}: le bounds not ascending", fam.Name, key)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("%s{%s}: bucket counts not monotone", fam.Name, key)
			}
		}
		if n := len(g.les); n == 0 || !math.IsInf(g.les[n-1], 1) {
			return fmt.Errorf("%s{%s}: missing +Inf bucket", fam.Name, key)
		}
		if g.hasCnt && g.counts[len(g.counts)-1] != g.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %g disagrees with _count %g",
				fam.Name, key, g.counts[len(g.counts)-1], g.count)
		}
	}
	return nil
}

// Lint validates an exposition, discarding the parse.
func Lint(r io.Reader) error {
	_, err := ParseExposition(r)
	return err
}
