package obs

import "sync/atomic"

// Live is the always-on sibling of Collector: the same counter and
// histogram vocabulary, but atomic, so many goroutines may write while
// another snapshots — the shape the tracking service's ingest pipeline
// needs for GET /api/stats, where the counters are read mid-flight.
// Collector deliberately stays single-writer/snapshot-after-quiesce; Live
// pays the atomics only on paths that are already doing channel hops and
// lock acquisitions, where the cost disappears.
//
// A nil *Live is the disabled state: every method is a nil-safe no-op,
// mirroring the nil-*Collector contract.
type Live struct {
	counters [numCounters]atomic.Uint64
	hists    [numHistograms][histBuckets]atomic.Uint64
	// sums accumulate the raw observed values per histogram — Collector
	// does not track these (its deterministic histograms are compared
	// across worker counts, where bucket counts suffice), but the
	// OpenMetrics exposition needs a _sum series per histogram.
	sums [numHistograms]atomic.Uint64
}

// NewLive returns an empty live metric set.
func NewLive() *Live { return &Live{} }

// Inc adds one to a counter.
func (l *Live) Inc(ctr Counter) {
	if l != nil {
		l.counters[ctr].Add(1)
	}
}

// Add adds n to a counter.
func (l *Live) Add(ctr Counter, n uint64) {
	if l != nil {
		l.counters[ctr].Add(n)
	}
}

// Get reads a counter's current value.
func (l *Live) Get(ctr Counter) uint64 {
	if l == nil {
		return 0
	}
	return l.counters[ctr].Load()
}

// Observe records one value into a histogram, using the same
// power-of-two bucketing as Collector.
func (l *Live) Observe(h Histogram, v uint64) {
	if l == nil {
		return
	}
	i := bucketFor(v)
	l.hists[h][i].Add(1)
	l.sums[h].Add(v)
}

// Snapshot renders the current values in the same shape as
// Metrics.Snapshot. Safe to call while writers are active; each cell is
// read atomically (the snapshot as a whole is a near-instant in time, not
// a perfect cut — fine for operational stats).
func (l *Live) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, int(numCounters)),
		Histograms: make(map[string]HistSnapshot, int(numHistograms)),
	}
	if l == nil {
		return s
	}
	for i := Counter(0); i < numCounters; i++ {
		s.Counters[counterNames[i]] = l.counters[i].Load()
	}
	for i := Histogram(0); i < numHistograms; i++ {
		var h hist
		for b := 0; b < histBuckets; b++ {
			h.buckets[b] = l.hists[i][b].Load()
		}
		hs := snapHist(&h)
		hs.Sum = l.sums[i].Load()
		s.Histograms[histogramNames[i]] = hs
	}
	return s
}
