// Package xrand provides the deterministic randomness used by the
// simulator: explicitly seeded PCG streams, label-derived sub-streams so
// that independent parts of an experiment (each tag, each pass, each fading
// process) draw from independent reproducible sequences, and the radio-
// specific distributions (lognormal shadowing in dB, Rician fast fading).
//
// Nothing in this package reads the wall clock or global randomness: every
// experiment in the repository is reproducible bit-for-bit from its seed.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"strconv"
)

// streamInc is the fixed PCG increment every stream uses; the seed alone
// identifies a stream.
const streamInc = 0x9e3779b97f4a7c15

// Rand is a deterministic random stream.
type Rand struct {
	rng  *rand.Rand
	src  *rand.PCG
	seed uint64
}

// New returns a stream seeded by seed.
func New(seed uint64) *Rand {
	src := rand.NewPCG(seed, streamInc)
	return &Rand{
		rng:  rand.New(src),
		src:  src,
		seed: seed,
	}
}

// Reseed rewinds the stream in place to the exact state New(seed) would
// construct, without allocating. Hot paths that would otherwise build a
// fresh stream per label (random-field draws, per-pass tag streams) keep
// one Rand and reseed it; the drawn sequence is bit-identical to a freshly
// constructed stream's.
func (r *Rand) Reseed(seed uint64) {
	r.seed = seed
	r.src.Seed(seed, streamInc)
}

// Split derives an independent sub-stream identified by label. Equal
// (seed, label) pairs always yield the same stream; distinct labels yield
// streams that are independent for all practical purposes. Splitting does
// not consume state from the parent, so the order in which sub-streams are
// created cannot perturb results.
func (r *Rand) Split(label string) *Rand {
	h := fnv.New64a()
	// Mix the parent seed in first so the same label under different seeds
	// produces different streams.
	var b [8]byte
	s := r.seed
	for i := range b {
		b[i] = byte(s >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// SplitSeed returns the seed Split(label) would use without constructing
// the stream. Exposed so callers (and tests) can compare label identities.
func (r *Rand) SplitSeed(label string) uint64 {
	return r.Key().Str(label).Seed()
}

// FNV-64a constants (hash/fnv's, frozen here because Key must keep
// producing the exact byte-for-byte hashes Split computes).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Key incrementally builds the FNV-64a hash of a split label without
// allocating. Feeding a Key the same bytes Split's label contains yields
// the identical derived stream: Key is the zero-allocation spelling of
// Split(fmt.Sprintf(...)), which is why the hot paths that draw random
// fields per (pass, tag, antenna) use it. Key is a value; every method
// returns a new Key, so prefix states for label fragments that never
// change (e.g. "shadow.tag/p") can be computed once and reused.
type Key struct{ h uint64 }

// Key starts a label hash seeded by the stream's seed, exactly as Split
// does before folding in label bytes.
func (r *Rand) Key() Key {
	k := Key{fnvOffset64}
	s := r.seed
	for i := 0; i < 8; i++ {
		k = k.byteFold(byte(s >> (8 * i)))
	}
	return k
}

func (k Key) byteFold(b byte) Key {
	k.h = (k.h ^ uint64(b)) * fnvPrime64
	return k
}

// Str folds the bytes of s into the key.
func (k Key) Str(s string) Key {
	for i := 0; i < len(s); i++ {
		k = k.byteFold(s[i])
	}
	return k
}

// Int folds the decimal representation of n — the same bytes
// fmt.Sprintf("%d", n) produces — into the key.
func (k Key) Int(n int) Key {
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], int64(n), 10) {
		k = k.byteFold(b)
	}
	return k
}

// Seed returns the accumulated hash, the seed of the stream the key
// identifies.
func (k Key) Seed() uint64 { return k.h }

// Stream instantiates the sub-stream the key identifies. Equivalent to
// Split of the label whose bytes were folded into the key.
func (k Key) Stream() *Rand { return New(k.h) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// IntN returns a uniform value in [0, n). n must be > 0.
func (r *Rand) IntN(n int) int { return r.rng.IntN(n) }

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return r.rng.Uint32() }

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rng.Float64() < p
}

// Normal returns a draw from N(mean, sigma²).
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.rng.NormFloat64()
}

// ShadowingDB returns a lognormal shadowing term expressed directly in dB:
// a zero-mean Gaussian with the given standard deviation (dB). Sigma of
// zero or less disables shadowing.
func (r *Rand) ShadowingDB(sigmaDB float64) float64 {
	if sigmaDB <= 0 {
		return 0
	}
	return r.Normal(0, sigmaDB)
}

// RicianPowerDB draws the instantaneous power gain, in dB, of a Rician
// fading channel with K-factor k (linear ratio of specular to scattered
// power), normalized to unit mean power. Large K approaches a steady 0 dB
// channel; K=0 degenerates to Rayleigh fading.
func (r *Rand) RicianPowerDB(k float64) float64 {
	if k < 0 {
		k = 0
	}
	// Mean power nu^2 + 2 sigma^2 = 1 with nu^2 = k * 2 sigma^2.
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	nu := math.Sqrt(k / (k + 1))
	x := r.Normal(nu, sigma)
	y := r.Normal(0, sigma)
	p := x*x + y*y
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.rng.Shuffle(n, swap) }
