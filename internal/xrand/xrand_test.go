package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	d := New(42)
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependentOfOrderAndParentState(t *testing.T) {
	a := New(7)
	s1 := a.Split("tags")
	// Consume parent state and split again: must not change the sub-stream.
	for i := 0; i < 50; i++ {
		a.Float64()
	}
	s2 := a.Split("tags")
	for i := 0; i < 50; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatal("Split depends on parent stream state")
		}
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	a := New(7)
	s1 := a.Split("alpha")
	s2 := a.Split("beta")
	equal := 0
	for i := 0; i < 32; i++ {
		if s1.Float64() == s2.Float64() {
			equal++
		}
	}
	if equal == 32 {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestSplitDistinctSeeds(t *testing.T) {
	s1 := New(1).Split("x")
	s2 := New(2).Split("x")
	equal := 0
	for i := 0; i < 32; i++ {
		if s1.Float64() == s2.Float64() {
			equal++
		}
	}
	if equal == 32 {
		t.Fatal("same label under different seeds produced identical streams")
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-3) || !r.Bool(7) {
			t.Fatal("clamping broken")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(99)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestShadowingDisabled(t *testing.T) {
	r := New(5)
	if r.ShadowingDB(0) != 0 || r.ShadowingDB(-1) != 0 {
		t.Error("non-positive sigma should disable shadowing")
	}
}

func TestRicianUnitMeanPower(t *testing.T) {
	for _, k := range []float64{0, 1, 5, 20} {
		r := New(11)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += math.Pow(10, r.RicianPowerDB(k)/10)
		}
		mean := sum / n
		if math.Abs(mean-1) > 0.02 {
			t.Errorf("K=%v: mean linear power = %v, want ~1", k, mean)
		}
	}
}

func TestRicianLargeKIsSteady(t *testing.T) {
	r := New(12)
	for i := 0; i < 1000; i++ {
		db := r.RicianPowerDB(1e6)
		if math.Abs(db) > 0.5 {
			t.Fatalf("K=1e6 fading draw %v dB, want ~0", db)
		}
	}
}

func TestRicianNegativeKClamped(t *testing.T) {
	r := New(13)
	// Must not panic or produce NaN.
	for i := 0; i < 100; i++ {
		if math.IsNaN(r.RicianPowerDB(-5)) {
			t.Fatal("NaN from negative K")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestIntNRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}
