package xrand

import (
	"fmt"
	"testing"
)

// TestKeyMatchesSplit is the contract the world's random fields rest on:
// a Key fed the same bytes as a Split label must identify the identical
// stream. The labels here are the exact shapes internal/world builds.
func TestKeyMatchesSplit(t *testing.T) {
	r := New(12345)
	cases := []struct {
		label string
		key   Key
	}{
		{"", r.Key()},
		{"shadow.tag/p0/box000/front", r.Key().Str("shadow.tag/p").Int(0).Str("/box000/front")},
		{
			fmt.Sprintf("shadow.path/p%d/%s/%s", 17, "box210/top", "a2"),
			r.Key().Str("shadow.path/p").Int(17).Str("/").Str("box210/top").Str("/").Str("a2"),
		},
		{
			fmt.Sprintf("fade.dir/p%d/b%d/%s/%s", 999, 12, "t03", "a1"),
			r.Key().Str("fade.dir/p").Int(999).Str("/b").Int(12).Str("/").Str("t03").Str("/").Str("a1"),
		},
		{
			fmt.Sprintf("fade.int.scat/p%d/b%d/%s/%s", -3, 0, "grid07", "a1"),
			r.Key().Str("fade.int.scat/p").Int(-3).Str("/b").Int(0).Str("/").Str("grid07").Str("/").Str("a1"),
		},
	}
	for _, c := range cases {
		if got, want := c.key.Seed(), r.SplitSeed(c.label); got != want {
			t.Errorf("Key(%q) seed = %#x, Split seed = %#x", c.label, got, want)
		}
		a, b := c.key.Stream(), r.Split(c.label)
		for i := 0; i < 4; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("Key(%q) stream diverges from Split at draw %d: %v vs %v", c.label, i, x, y)
			}
		}
	}
}

// TestKeyIntDigits checks Int against every digit shape Sprintf produces.
func TestKeyIntDigits(t *testing.T) {
	r := New(7)
	for _, n := range []int{0, 1, -1, 9, 10, 99, 100, 12345, -12345, 1 << 40, -(1 << 40)} {
		label := fmt.Sprintf("x%dy", n)
		if got, want := r.Key().Str("x").Int(n).Str("y").Seed(), r.SplitSeed(label); got != want {
			t.Errorf("Int(%d): key seed %#x != split seed %#x", n, got, want)
		}
	}
}

// TestKeySeedSensitivity: the same label under different parent seeds must
// identify different streams (the seed bytes are folded in first).
func TestKeySeedSensitivity(t *testing.T) {
	a := New(1).Key().Str("same").Seed()
	b := New(2).Key().Str("same").Seed()
	if a == b {
		t.Error("identical key seeds for different parent seeds")
	}
}

// TestKeyPrefixReuse: extending a stored prefix must equal building the
// full label in one go (Key is a value type; no hidden shared state).
func TestKeyPrefixReuse(t *testing.T) {
	r := New(42)
	prefix := r.Key().Str("shadow.scat/p")
	k1 := prefix.Int(3).Str("/t00")
	k2 := prefix.Int(4).Str("/t00")
	if k1.Seed() == k2.Seed() {
		t.Error("different passes collided")
	}
	if got, want := k1.Seed(), r.SplitSeed("shadow.scat/p3/t00"); got != want {
		t.Errorf("prefix reuse seed %#x != direct %#x", got, want)
	}
}

// BenchmarkKeyBuild measures the allocation-free label path.
func BenchmarkKeyBuild(b *testing.B) {
	r := New(1)
	prefix := r.Key().Str("fade.dir/p")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = prefix.Int(i & 1023).Str("/b").Int(i & 7).Str("/").Str("box000/front").Str("/").Str("a1").Seed()
	}
}
