// Per-reader supervision: retry with exponential backoff and jitter, a
// circuit breaker, and multi-reader fan-in. This is the paper's
// reader-redundancy result carried into the live service: a portal covered
// by N readers keeps tracking as long as any one supervisor's poll loop is
// healthy, and a dead reader costs bounded time per cycle instead of
// hanging the back-end.

package tracksvc

import (
	"context"
	"sync/atomic"
	"time"

	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
	"rfidtrack/internal/xrand"
)

// BreakerState is one circuit-breaker state.
type BreakerState int32

const (
	// BreakerClosed: the reader is healthy; every tick polls it.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the reader exhausted its failure budget; polls are
	// skipped until OpenTimeout elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe poll is in flight; success closes the
	// breaker, failure reopens it.
	BreakerHalfOpen
)

// String names the state for the health endpoint and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// SupervisorConfig tunes one reader's supervision. The zero value selects
// the defaults noted per field (DESIGN.md §10).
type SupervisorConfig struct {
	// Interval is the poll cadence (default 1s).
	Interval time.Duration
	// RequestTimeout bounds each HTTP request (default
	// readerapi.DefaultTimeout). A cycle can therefore never block past
	// MaxAttempts×(RequestTimeout+backoff).
	RequestTimeout time.Duration
	// MaxAttempts is the number of tries per poll cycle, including the
	// first (default 3). Fatal (non-retryable) errors stop a cycle early.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; attempt k waits
	// BackoffBase×2^(k−1), capped at BackoffMax and scaled by jitter in
	// [0.5, 1) (defaults 50ms, 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed keys the deterministic jitter stream (xrand); equal seeds
	// replay equal backoff sequences.
	JitterSeed uint64
	// FailureThreshold is how many consecutive failed cycles open the
	// breaker (default 3).
	FailureThreshold int
	// OpenTimeout is how long an open breaker waits before a half-open
	// probe (default 2s).
	OpenTimeout time.Duration
	// Collector, when non-nil, receives the poll/breaker counters. Each
	// supervisor must get its own shard (obs.Metrics.Shard): collectors
	// are single-goroutine by contract.
	Collector *obs.Collector
	// OnStateChange, when non-nil, observes every breaker transition from
	// the supervisor goroutine — tests use it to pin transition sequences.
	OnStateChange func(reader string, from, to BreakerState)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = readerapi.DefaultTimeout
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2 * time.Second
	}
	return c
}

// supervisor is the per-reader state. Counters are atomics because the
// health endpoint reads them while the supervisor goroutine writes.
type supervisor struct {
	name   string
	client *readerapi.Client
	cfg    SupervisorConfig
	jitter *xrand.Rand // owned by the supervisor goroutine

	state       atomic.Int32
	consecutive atomic.Int64
	polls       atomic.Uint64 // poll attempts (including retries)
	failures    atomic.Uint64
	retries     atomic.Uint64
	opens       atomic.Uint64
	lastErr     atomic.Value // string; "" after a success
}

func (sup *supervisor) setState(to BreakerState) {
	from := BreakerState(sup.state.Swap(int32(to)))
	if from != to && sup.cfg.OnStateChange != nil {
		sup.cfg.OnStateChange(sup.name, from, to)
	}
}

// State returns the breaker state (concurrent-safe).
func (sup *supervisor) State() BreakerState { return BreakerState(sup.state.Load()) }

// register adds a supervisor to the service's health roster.
func (s *Service) register(sup *supervisor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sups = append(s.sups, sup)
}

// Supervise polls one reader until ctx is done, with per-request
// deadlines, retry with exponential backoff and jitter, and a circuit
// breaker. It blocks; run one goroutine per reader. All supervisors feed
// the same pipeline, so redundant readers fan in to one tag store and the
// portal keeps tracking while any reader survives.
func (s *Service) Supervise(ctx context.Context, name string, client *readerapi.Client, cfg SupervisorConfig) {
	cfg = cfg.withDefaults()
	sup := &supervisor{name: name, client: client, cfg: cfg, jitter: xrand.New(cfg.JitterSeed)}
	sup.lastErr.Store("")
	s.register(sup)

	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	var openedAt time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		switch sup.State() {
		case BreakerOpen:
			if time.Since(openedAt) < cfg.OpenTimeout {
				continue // still cooling off
			}
			sup.setState(BreakerHalfOpen)
			s.live.Inc(obs.CtrBreakerProbes)
			if c := cfg.Collector; c != nil {
				c.Inc(obs.CtrBreakerProbes)
			}
			// One probe, no retries: the breaker exists to shed load.
			if err := s.pollOnce(ctx, sup); err != nil {
				if ctx.Err() != nil {
					return
				}
				s.logf("tracksvc: %s: half-open probe failed: %v", name, err)
				sup.setState(BreakerOpen)
				openedAt = time.Now()
				continue
			}
			s.logf("tracksvc: %s: breaker closed, polling resumed", name)
			sup.consecutive.Store(0)
			sup.setState(BreakerClosed)
			s.live.Inc(obs.CtrBreakerCloses)
			if c := cfg.Collector; c != nil {
				c.Inc(obs.CtrBreakerCloses)
			}
		case BreakerClosed:
			if err := s.cycle(ctx, sup); err != nil {
				if ctx.Err() != nil {
					return
				}
				n := sup.consecutive.Add(1)
				s.logf("tracksvc: %s: poll cycle failed (%d consecutive): %v", name, n, err)
				if int(n) >= cfg.FailureThreshold || !readerapi.IsRetryable(err) {
					sup.setState(BreakerOpen)
					openedAt = time.Now()
					sup.opens.Add(1)
					s.live.Inc(obs.CtrBreakerOpens)
					if c := cfg.Collector; c != nil {
						c.Inc(obs.CtrBreakerOpens)
					}
				}
			} else {
				sup.consecutive.Store(0)
			}
		}
	}
}

// cycle runs one poll cycle: up to MaxAttempts attempts separated by
// backoff. Fatal errors (a definitive 4xx — the URL is wrong, not the
// reader sick) stop the cycle immediately.
func (s *Service) cycle(ctx context.Context, sup *supervisor) error {
	cfg := sup.cfg
	var err error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			sup.retries.Add(1)
			s.live.Inc(obs.CtrPollRetries)
			if c := cfg.Collector; c != nil {
				c.Inc(obs.CtrPollRetries)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(sup.backoff(attempt)):
			}
		}
		if err = s.pollOnce(ctx, sup); err == nil {
			return nil
		}
		if ctx.Err() != nil || !readerapi.IsRetryable(err) {
			return err
		}
	}
	return err
}

// backoff returns the pre-retry delay for attempt k (k ≥ 1):
// BackoffBase×2^(k−1) capped at BackoffMax, scaled by a jitter factor in
// [0.5, 1) drawn from the supervisor's deterministic stream.
func (sup *supervisor) backoff(attempt int) time.Duration {
	d := sup.cfg.BackoffBase << (attempt - 1)
	if d > sup.cfg.BackoffMax || d <= 0 { // <= 0: shift overflow
		d = sup.cfg.BackoffMax
	}
	return time.Duration(float64(d) * (0.5 + 0.5*sup.jitter.Float64()))
}

// pollOnce issues one deadline-bounded poll and ingests the result.
// Malformed EPCs inside an otherwise healthy response are logged, not
// counted against the reader — the transport worked. The cycle ID minted
// here before the request is the lifecycle identity every downstream
// stage (parse, apply, close, visible) traces under.
func (s *Service) pollOnce(ctx context.Context, sup *supervisor) error {
	sup.polls.Add(1)
	s.live.Inc(obs.CtrPollAttempts)
	if c := sup.cfg.Collector; c != nil {
		c.Inc(obs.CtrPollAttempts)
	}
	cycle := s.cycles.Add(1)
	polled := time.Now()
	rctx, cancel := context.WithTimeout(ctx, sup.cfg.RequestTimeout)
	defer cancel()
	list, err := sup.client.Poll(rctx)
	if err != nil {
		if ctx.Err() != nil {
			// The service is shutting down; the interrupted request is not
			// a reader failure.
			return err
		}
		sup.failures.Add(1)
		s.live.Inc(obs.CtrPollFailures)
		if c := sup.cfg.Collector; c != nil {
			c.Inc(obs.CtrPollFailures)
		}
		sup.lastErr.Store(err.Error())
		return err
	}
	pollMicros := time.Since(polled).Microseconds()
	s.live.Observe(obs.HistPollMicros, uint64(pollMicros))
	if s.tracer != nil {
		s.tracer.Cycle(cycle, "poll", sup.name, pollMicros, len(list.Tags))
	}
	sup.lastErr.Store("")
	if err := s.ingestList(list, cycle, polled); err != nil {
		s.logf("tracksvc: %s: %v", sup.name, err)
	}
	return nil
}

// ReaderHealth is one reader's entry in the health report.
type ReaderHealth struct {
	Name                string `json:"name"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int64  `json:"consecutive_failures"`
	Polls               uint64 `json:"polls"`
	Failures            uint64 `json:"failures"`
	Retries             uint64 `json:"retries"`
	BreakerOpens        uint64 `json:"breaker_opens"`
	LastError           string `json:"last_error,omitempty"`
}

// HealthResponse is the GET /api/health document. Status is "ok" when
// every supervised reader's breaker is closed (or none are supervised),
// "degraded" when some are not closed, and "down" when none are closed —
// the service-level mirror of the paper's R_C: the portal is alive while
// any redundant reader is. When the reliability monitor is enabled
// (WithSLO), SLO carries the live R_C estimate and its verdict, and a
// non-ok verdict downgrades an otherwise "ok" status to "degraded" — the
// readers may all answer polls while still missing tags.
type HealthResponse struct {
	Status    string         `json:"status"`
	Readers   []ReaderHealth `json:"readers"`
	Sightings int64          `json:"sightings"`
	SLO       *SLOStatus     `json:"slo,omitempty"`
}

// Health reports per-reader supervision state.
func (s *Service) Health() HealthResponse {
	s.mu.Lock()
	sups := append([]*supervisor(nil), s.sups...)
	s.mu.Unlock()

	resp := HealthResponse{Readers: []ReaderHealth{}, Sightings: s.Sightings()}
	closed := 0
	for _, sup := range sups {
		st := sup.State()
		if st == BreakerClosed {
			closed++
		}
		resp.Readers = append(resp.Readers, ReaderHealth{
			Name:                sup.name,
			Breaker:             st.String(),
			ConsecutiveFailures: sup.consecutive.Load(),
			Polls:               sup.polls.Load(),
			Failures:            sup.failures.Load(),
			Retries:             sup.retries.Load(),
			BreakerOpens:        sup.opens.Load(),
			LastError:           sup.lastErr.Load().(string),
		})
	}
	switch {
	case len(sups) == 0 || closed == len(sups):
		resp.Status = "ok"
	case closed > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "down"
	}
	if s.mon != nil {
		st := s.mon.Status()
		resp.SLO = &st
		if st.Verdict != VerdictOK && resp.Status == "ok" {
			resp.Status = "degraded"
		}
	}
	return resp
}
