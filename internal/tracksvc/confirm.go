// Confirmation merge for the live service: the k-of-n policy of
// internal/session applied at ingest time. Where the session.Merger works
// offline over whole inventory sessions, the confirmer is the streaming
// equivalent: a pass is a session, and an event only reaches the pipeline
// once its tag has been identified in at least k distinct passes of the
// last n. Until then events are held per tag in a bounded buffer and
// released in arrival order the moment the tag confirms — so a confirmed
// tag's history is complete, while a tag only ever sighted in one pass (a
// phantom read, a stray reflection) never pollutes the store.
package tracksvc

import (
	"sync"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/obs"
)

// confirmMaxHeld bounds the held-event buffer per pending tag. A real tag
// confirms within a pass or two, holding at most a handful of events; a
// buffer at the bound means a tag is being sighted over and over without
// ever clearing the policy, and the oldest evidence is the least likely
// to still be inside the window anyway.
const confirmMaxHeld = 32

// confirmer applies k-of-n pass confirmation to the ingest stream. Safe
// for concurrent use: polls from several supervised readers may ingest at
// once.
type confirmer struct {
	k      int // passes that must identify a tag (>= 2; 1 would be a no-op)
	window int // only the last window passes count; 0 = all passes

	live *obs.Live

	mu        sync.Mutex
	pending   map[epc.Code]*pendingTag
	confirmed map[epc.Code]bool
}

// pendingTag is one unconfirmed tag's evidence: the distinct passes that
// identified it and the events held back until confirmation. heldPass is
// parallel to held, recording each event's pass for window expiry.
type pendingTag struct {
	passes   []int // distinct pass IDs, ascending
	held     []backend.Event
	heldPass []int
}

func newConfirmer(k, window int, live *obs.Live) *confirmer {
	return &confirmer{
		k: k, window: window, live: live,
		pending:   make(map[epc.Code]*pendingTag),
		confirmed: make(map[epc.Code]bool),
	}
}

// offer routes one parsed event through the policy and appends whatever
// may be ingested now to out: the event itself for an already-confirmed
// tag, the whole held history when this event completes the confirmation,
// or nothing while the tag is still pending.
func (c *confirmer) offer(code epc.Code, pass int, ev backend.Event, out []backend.Event) []backend.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.confirmed[code] {
		return append(out, ev)
	}
	p := c.pending[code]
	if p == nil {
		p = &pendingTag{}
		c.pending[code] = p
	}

	// Window expiry, anchored to the newest pass seen for this tag: passes
	// at or below cut no longer count, and their held events are dropped —
	// the bound that keeps a perpetually-flickering tag from accumulating
	// state forever.
	if c.window > 0 {
		newest := pass
		if n := len(p.passes); n > 0 && p.passes[n-1] > newest {
			newest = p.passes[n-1]
		}
		cut := newest - c.window
		expired := 0
		for expired < len(p.passes) && p.passes[expired] <= cut {
			expired++
		}
		p.passes = p.passes[expired:]
		kept := 0
		for i, hp := range p.heldPass {
			if hp > cut {
				p.held[kept] = p.held[i]
				p.heldPass[kept] = hp
				kept++
			}
		}
		if dropped := len(p.held) - kept; dropped > 0 {
			c.live.Add(obs.CtrConfirmExpired, uint64(dropped))
		}
		p.held = p.held[:kept]
		p.heldPass = p.heldPass[:kept]
	}

	if !containsPass(p.passes, pass) {
		p.passes = insertPass(p.passes, pass)
	}
	if len(p.held) >= confirmMaxHeld {
		// Shed the oldest held event; the distinct-pass evidence stays.
		copy(p.held, p.held[1:])
		copy(p.heldPass, p.heldPass[1:])
		p.held = p.held[:len(p.held)-1]
		p.heldPass = p.heldPass[:len(p.heldPass)-1]
		c.live.Inc(obs.CtrConfirmExpired)
	}
	p.held = append(p.held, ev)
	p.heldPass = append(p.heldPass, pass)
	c.live.Inc(obs.CtrConfirmHeld)

	if len(p.passes) >= c.k {
		out = append(out, p.held...)
		c.live.Add(obs.CtrConfirmReleased, uint64(len(p.held)))
		c.live.Inc(obs.CtrConfirmTags)
		c.confirmed[code] = true
		delete(c.pending, code)
	}
	return out
}

// pendingStats reports the gauge view: tags awaiting confirmation and
// events currently held for them.
func (c *confirmer) pendingStats() (tags, held int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pending {
		held += len(p.held)
	}
	return len(c.pending), held
}

func containsPass(passes []int, p int) bool {
	for _, x := range passes {
		if x == p {
			return true
		}
	}
	return false
}

// insertPass keeps the distinct pass list ascending; polls arrive nearly
// in order, so the scan is effectively O(1).
func insertPass(passes []int, p int) []int {
	i := len(passes)
	for i > 0 && passes[i-1] > p {
		i--
	}
	passes = append(passes, 0)
	copy(passes[i+1:], passes[i:])
	passes[i] = p
	return passes
}
