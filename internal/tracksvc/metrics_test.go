package tracksvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/faultinject"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
)

// scrape hits the service's GET /metrics through the real handler and
// returns every parsed series as "name{labels}" → value, failing the
// test if the exposition does not lint.
func scrape(t *testing.T, svc *Service) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type = %q, want %q", got, obs.ContentType)
	}
	fams, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("GET /metrics does not lint: %v", err)
	}
	out := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			key := s.Name
			if s.Labels != "" {
				key += "{" + s.Labels + "}"
			}
			out[key] = s.Value
		}
	}
	return out
}

// TestMetricsEndpointWellFormed is the metrics-lint gate (`make
// metrics-lint`): a service with live traffic, an async ingest queue,
// supervised readers, and the reliability monitor must serve a valid,
// deterministically ordered OpenMetrics exposition covering the full
// counter, histogram, and gauge vocabulary.
func TestMetricsEndpointWellFormed(t *testing.T) {
	srv := httptest.NewServer(okTagListHandler())
	defer srv.Close()

	svc := New(nil, WithLogger(func(string, ...any) {}), WithSLO(SLOConfig{}))
	ctx, cancel := context.WithCancel(context.Background())
	svc.StartIngest(ctx, IngestConfig{QueueDepth: 8})
	done := make(chan struct{})
	go func() {
		svc.Supervise(ctx, "r1", readerapi.NewClient(srv.URL, nil), fastConfig())
		close(done)
	}()
	waitFor(t, 5*time.Second, "a poll to ingest", func() bool {
		return svc.live.Get(obs.CtrIngestEvents) > 0
	})
	cancel()
	<-done
	svc.IngestWait()

	series := scrape(t, svc)
	for _, want := range []string{
		"rfidtrack_poll_attempts_total",
		"rfidtrack_poll_retries_total",
		"rfidtrack_breaker_opens_total",
		"rfidtrack_ingest_batches_total",
		"rfidtrack_ingest_events_total",
		"rfidtrack_ingest_queue_capacity",
		"rfidtrack_ingest_queue_length",
		"rfidtrack_poll_micros_count",
		"rfidtrack_parse_micros_count",
		"rfidtrack_apply_micros_count",
		"rfidtrack_freshness_micros_count",
		"rfidtrack_reliability_estimate",
		"rfidtrack_reliability_target",
		"rfidtrack_reliability_verdict",
		`rfidtrack_breaker_state{reader="r1"}`,
		"rfidtrack_store_shard_tags{shard=\"0\"}",
	} {
		if _, ok := series[want]; !ok {
			keys := make([]string, 0, len(series))
			for k := range series {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Fatalf("series %s missing from /metrics; have:\n%s", want, strings.Join(keys, "\n"))
		}
	}
	if series["rfidtrack_ingest_events_total"] == 0 {
		t.Error("ingest_events_total = 0 after live traffic")
	}
	if series["rfidtrack_poll_micros_count"] == 0 {
		t.Error("poll_micros histogram empty after live polls")
	}
	if series["rfidtrack_freshness_micros_count"] == 0 {
		t.Error("freshness_micros histogram empty after live polls")
	}
	if got := series["rfidtrack_reliability_estimate"]; got != 1 {
		t.Errorf("reliability_estimate = %g, want 1 (single healthy reader)", got)
	}
}

// TestBreakerTransitionsObservedInMetrics drives the breaker through
// closed → open → half-open → closed with a deterministic fault plan and
// asserts the whole sequence from the exported series: the state gauge
// sampled at each transition plus the final transition counters.
func TestBreakerTransitionsObservedInMetrics(t *testing.T) {
	inj := faultinject.New(faultinject.Seq(
		faultinject.Drop, faultinject.Drop, faultinject.Drop, faultinject.Drop))
	srv := httptest.NewServer(inj.Middleware(okTagListHandler()))
	defer srv.Close()
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}

	svc := New(nil, WithLogger(func(string, ...any) {}))
	type sample struct {
		to    string
		state float64
	}
	var (
		samples []sample
		seen    = make(chan struct{}, 8)
	)
	cfg := fastConfig()
	cfg.OnStateChange = func(_ string, _, to BreakerState) {
		// Scrape synchronously inside the transition hook: the gauge must
		// already report the new state the moment observers can see it.
		st := scrape(t, svc)[`rfidtrack_breaker_state{reader="r1"}`]
		samples = append(samples, sample{to: to.String(), state: st})
		seen <- struct{}{}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		svc.Supervise(ctx, "r1", readerapi.NewClient(srv.URL, hc), cfg)
		close(done)
	}()
	for i := 0; i < 3; i++ {
		select {
		case <-seen:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for transition %d", i)
		}
	}
	cancel()
	<-done

	want := []sample{
		{to: "open", state: float64(BreakerOpen)},
		{to: "half-open", state: float64(BreakerHalfOpen)},
		{to: "closed", state: float64(BreakerClosed)},
	}
	for i, w := range want {
		if samples[i] != w {
			t.Fatalf("transition %d: gauge sampled %+v, want %+v (all: %+v)", i, samples[i], w, samples)
		}
	}
	final := scrape(t, svc)
	for series, min := range map[string]float64{
		"rfidtrack_breaker_opens_total":      1,
		"rfidtrack_breaker_half_opens_total": 1,
		"rfidtrack_breaker_closes_total":     1,
		"rfidtrack_poll_retries_total":       1,
		"rfidtrack_poll_failures_total":      4,
	} {
		if final[series] < min {
			t.Errorf("%s = %g, want >= %g", series, final[series], min)
		}
	}
}

// TestStatsResponseSchema pins the GET /api/stats document shape: the
// exact top-level key set and the ingest counter vocabulary, so
// dashboards built on it cannot be broken silently.
func TestStatsResponseSchema(t *testing.T) {
	svc := New(nil, WithLogger(func(string, ...any) {}))
	if err := svc.IngestTagList(tagList("dock", 0, "300833B2DDD9014000000001")); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.StartIngest(ctx, IngestConfig{}) // exercise the queue section too

	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/stats: status %d", rec.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats response is not a JSON object: %v", err)
	}
	wantKeys := []string{
		"uptime_seconds", "events_per_sec", "counters", "batch_size",
		"batch_micros", "pipeline_shards", "store_shards", "queue",
	}
	for _, k := range wantKeys {
		if _, ok := doc[k]; !ok {
			t.Errorf("stats response missing key %q", k)
		}
	}
	if len(doc) != len(wantKeys) {
		got := make([]string, 0, len(doc))
		for k := range doc {
			got = append(got, k)
		}
		sort.Strings(got)
		t.Errorf("stats response has %d keys, want %d: %v", len(doc), len(wantKeys), got)
	}
	var counters map[string]uint64
	if err := json.Unmarshal(doc["counters"], &counters); err != nil {
		t.Fatalf("counters section: %v", err)
	}
	for _, k := range []string{
		"ingest.batches", "ingest.events", "ingest.closed",
		"ingest.dropped_events", "ingest.stalls",
	} {
		if _, ok := counters[k]; !ok {
			t.Errorf("stats counters missing %q", k)
		}
	}
	var uptime float64
	if err := json.Unmarshal(doc["uptime_seconds"], &uptime); err != nil || uptime < 0 {
		t.Errorf("uptime_seconds = %v (err %v), want >= 0", uptime, err)
	}
}

// TestLifecycleTraceAllStages injects a single event through the full
// live chain — HTTP poll → parse → async queue → store apply — and
// asserts the JSONL trace carries one cycle ID through every stage.
func TestLifecycleTraceAllStages(t *testing.T) {
	srv := httptest.NewServer(okTagListHandler())
	defer srv.Close()

	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	svc := New(nil, WithLogger(func(string, ...any) {}), WithTracer(tracer))
	ctx, cancel := context.WithCancel(context.Background())
	svc.StartIngest(ctx, IngestConfig{})

	if err := svc.Poll(context.Background(), readerapi.NewClient(srv.URL, nil)); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	waitFor(t, 5*time.Second, "async apply", func() bool {
		return svc.live.Get(obs.CtrIngestBatches) > 0
	})
	cancel()
	svc.IngestWait()
	if err := tracer.Close(); err != nil {
		t.Fatalf("tracer: %v", err)
	}

	stages := map[string]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if m["ev"] == "cycle" {
			stages[m["stage"].(string)] = m
		}
	}
	var cycle any
	for _, stage := range []string{"poll", "parse", "apply", "close", "visible"} {
		m, ok := stages[stage]
		if !ok {
			t.Fatalf("trace missing lifecycle stage %q (have %v)", stage, stages)
		}
		if cycle == nil {
			cycle = m["cycle"]
		} else if m["cycle"] != cycle {
			t.Errorf("stage %q cycle = %v, want %v (one ID end to end)", stage, m["cycle"], cycle)
		}
		if m["reader"] == "" {
			t.Errorf("stage %q has no reader", stage)
		}
	}
	if stages["poll"]["events"] != float64(1) || stages["apply"]["events"] != float64(1) {
		t.Errorf("poll/apply payload counts wrong: %v / %v", stages["poll"], stages["apply"])
	}
	if v, ok := stages["visible"]["micros"].(float64); !ok || v < 0 {
		t.Errorf("visible stage freshness micros = %v", stages["visible"]["micros"])
	}
}
