package tracksvc

import (
	"math"
	"testing"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/epc"
)

// fakeClock lets SLO tests step time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func mustCode(t *testing.T, s string) epc.Code {
	t.Helper()
	c, err := epc.ParseHex(s)
	if err != nil {
		t.Fatalf("epc.Parse(%q): %v", s, err)
	}
	return c
}

func sloEvents(t *testing.T, reader string, epcs ...string) []backend.Event {
	t.Helper()
	out := make([]backend.Event, len(epcs))
	for i, e := range epcs {
		out[i] = backend.Event{EPC: mustCode(t, e), Location: reader}
	}
	return out
}

const (
	epcA = "300833B2DDD9014000000001"
	epcB = "300833B2DDD9014000000002"
	epcC = "300833B2DDD9014000000003"
	epcD = "300833B2DDD9014000000004"
)

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestMonitorRatesAndVerdicts walks the estimator through the verdict
// ladder: empty window → ok, full redundant coverage → ok, one weak
// reader covered by redundancy → degraded, combined shortfall →
// violating.
func TestMonitorRatesAndVerdicts(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := newMonitor(SLOConfig{Window: 10 * time.Second, Target: 0.9, now: clk.now})

	st := m.Status()
	if st.Verdict != VerdictOK || st.Reliability != 1 || st.Population != 0 {
		t.Fatalf("empty window: %+v, want ok/1/0", st)
	}

	// Both readers deliver the whole population: rates 1, R_C = 1, ok.
	m.ObserveEvents(sloEvents(t, "r1", epcA, epcB))
	m.ObserveEvents(sloEvents(t, "r2", epcA, epcB))
	st = m.Status()
	if st.Verdict != VerdictOK || st.Population != 2 || !approx(st.Reliability, 1) {
		t.Fatalf("full coverage: %+v, want ok, population 2, reliability 1", st)
	}
	if len(st.Readers) != 2 || st.Readers[0].Name != "r1" || st.Readers[1].Name != "r2" {
		t.Fatalf("readers not sorted by name: %+v", st.Readers)
	}

	// r2 misses half the population (rate 0.5 < target) but r1 still sees
	// everything, so combined R_C = 1 − (1−1)(1−0.5) = 1 ≥ target: the
	// redundancy masks the weak reader — degraded, not violating.
	m.ObserveEvents(sloEvents(t, "r1", epcC, epcD))
	m.ObserveEvents(sloEvents(t, "r2", epcC))
	st = m.Status()
	if st.Verdict != VerdictDegraded {
		t.Fatalf("weak reader under redundancy: verdict %q, want degraded (%+v)", st.Verdict, st)
	}
	if st.Population != 4 || !approx(st.Reliability, 1) {
		t.Fatalf("weak reader under redundancy: %+v, want population 4, reliability 1", st)
	}
	for _, r := range st.Readers {
		switch r.Name {
		case "r1":
			if !approx(r.Rate, 1) || r.Tags != 4 {
				t.Errorf("r1 rate = %+v, want 4 tags, rate 1", r)
			}
		case "r2":
			if !approx(r.Rate, 0.75) || r.Tags != 3 {
				t.Errorf("r2 rate = %+v, want 3 tags, rate 0.75", r)
			}
		}
	}

	// Fresh window where both readers miss tags: rates 0.5 each, combined
	// R_C = 1 − 0.5² = 0.75 < 0.9 → violating.
	clk.advance(11 * time.Second)
	m.ObserveEvents(sloEvents(t, "r1", epcA, epcB))
	m.ObserveEvents(sloEvents(t, "r2", epcC, epcD))
	st = m.Status()
	if st.Verdict != VerdictViolating || !approx(st.Reliability, 0.75) {
		t.Fatalf("split coverage: %+v, want violating, reliability 0.75", st)
	}
}

// TestMonitorWindowEviction checks the sliding window: stale stamps age
// out lazily at Status time, a silent reader's rate decays to zero and
// then its series disappears entirely.
func TestMonitorWindowEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	m := newMonitor(SLOConfig{Window: 10 * time.Second, Target: 0.9, now: clk.now})

	m.ObserveEvents(sloEvents(t, "r1", epcA, epcB))
	m.ObserveEvents(sloEvents(t, "r2", epcA, epcB))

	// r2 goes silent (breaker open, say); r1 keeps refreshing its stamps.
	clk.advance(6 * time.Second)
	m.ObserveEvents(sloEvents(t, "r1", epcA, epcB))

	// Past r2's stamps but not r1's refresh: r2 evicted, its rate gone,
	// and with only r1 at full coverage the verdict is ok again.
	clk.advance(6 * time.Second)
	st := m.Status()
	if st.Population != 2 {
		t.Fatalf("population = %d, want 2 (r1's refreshed stamps)", st.Population)
	}
	if len(st.Readers) != 1 || st.Readers[0].Name != "r1" {
		t.Fatalf("readers = %+v, want only r1 after r2 aged out", st.Readers)
	}
	if st.Verdict != VerdictOK || !approx(st.Reliability, 1) {
		t.Fatalf("after eviction: %+v, want ok/1", st)
	}

	// Everything ages out: back to the empty-window baseline.
	clk.advance(11 * time.Second)
	st = m.Status()
	if st.Population != 0 || len(st.Readers) != 0 || st.Verdict != VerdictOK {
		t.Fatalf("fully aged window: %+v, want empty/ok", st)
	}
}

// TestNilMonitorIsNoop pins the disabled-state contract: a service
// without WithSLO has a nil monitor, ObserveEvents on it is safe, and
// health carries no SLO section.
func TestNilMonitorIsNoop(t *testing.T) {
	var m *Monitor
	m.ObserveEvents(sloEvents(t, "r1", epcA)) // must not panic

	svc := New(nil)
	if svc.mon != nil {
		t.Fatal("monitor non-nil without WithSLO")
	}
	if h := svc.Health(); h.SLO != nil {
		t.Fatalf("health SLO section present without WithSLO: %+v", h.SLO)
	}
}

// TestHealthMergesSLOVerdict checks the /api/health merge: the SLO
// section rides along, and a non-ok verdict downgrades an otherwise
// "ok" service status — pollable readers can still be missing tags.
func TestHealthMergesSLOVerdict(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	svc := New(nil, WithSLO(SLOConfig{Window: 10 * time.Second, Target: 0.9, now: clk.now}))

	h := svc.Health()
	if h.Status != "ok" || h.SLO == nil || h.SLO.Verdict != VerdictOK {
		t.Fatalf("idle health = %+v, want ok with ok SLO section", h)
	}
	if h.SLO.Target != 0.9 || h.SLO.WindowSeconds != 10 {
		t.Fatalf("SLO config not reflected: %+v", h.SLO)
	}

	// Split coverage → violating verdict → status degraded even though no
	// supervised reader is unhealthy (there are none at all).
	svc.mon.ObserveEvents(sloEvents(t, "r1", epcA, epcB))
	svc.mon.ObserveEvents(sloEvents(t, "r2", epcC, epcD))
	h = svc.Health()
	if h.SLO == nil || h.SLO.Verdict != VerdictViolating {
		t.Fatalf("health SLO verdict = %+v, want violating", h.SLO)
	}
	if h.Status != "degraded" {
		t.Fatalf("status = %q, want degraded after SLO violation", h.Status)
	}
}

// TestIngestFeedsMonitor closes the loop with the real chain: events
// ingested through IngestTagList land in the monitor via the store-apply
// path, so the live estimate reflects store-visible deliveries.
func TestIngestFeedsMonitor(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	svc := New(nil, WithSLO(SLOConfig{Window: time.Minute, now: clk.now}))
	if err := svc.IngestTagList(tagList("dock", 0, epcA, epcB)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	st := svc.mon.Status()
	if st.Population != 2 || len(st.Readers) != 1 || st.Readers[0].Name != "dock" {
		t.Fatalf("monitor after ingest: %+v, want population 2 via reader dock", st)
	}
	if !approx(st.Readers[0].Rate, 1) {
		t.Fatalf("dock rate = %g, want 1", st.Readers[0].Rate)
	}
}
