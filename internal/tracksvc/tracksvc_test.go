package tracksvc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/readerapi"
	"rfidtrack/internal/scenario"
)

// TestFullChain exercises the complete deployment in-process: a simulated
// portal behind the HTTP/XML reader interface, the tracking service
// polling it, and the JSON API serving the resulting state — the paper's
// "infrastructure ... antennas, readers, and a back-end system".
func TestFullChain(t *testing.T) {
	portal, err := scenario.ObjectTracking(scenario.ObjectConfig{
		TagLocations: []scenario.BoxLocation{scenario.LocFront, scenario.LocSideIn},
		Antennas:     2,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run a few passes so the reader buffer fills.
	for pass := 0; pass < 3; pass++ {
		portal.RunPass(pass)
	}

	readerSrv := httptest.NewServer(readerapi.NewServer(portal.Readers[0]).Handler())
	defer readerSrv.Close()

	svc := New(backend.NewPipeline(backend.NewWindowSmoother(2)),
		WithLogger(func(string, ...any) {}))
	client := readerapi.NewClient(readerSrv.URL, readerSrv.Client())
	if err := svc.Poll(context.Background(), client); err != nil {
		t.Fatal(err)
	}
	// Events are in the pipeline; close everything out.
	svc.Pipeline().Flush(1e12)
	if svc.Sightings() == 0 {
		t.Fatal("no sightings after polling a busy reader")
	}

	apiSrv := httptest.NewServer(svc.Handler())
	defer apiSrv.Close()

	// /api/tags reports tracked tags at the portal.
	resp, err := apiSrv.Client().Get(apiSrv.URL + "/api/tags")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state StateResponse
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if len(state.Tags) == 0 || state.Sightings == 0 {
		t.Fatalf("state = %+v", state)
	}
	for _, tag := range state.Tags {
		if tag.Location != "r1" {
			t.Errorf("tag %s tracked at %q, want r1", tag.EPC, tag.Location)
		}
		if !strings.HasPrefix(tag.URI, "urn:epc:id:sgtin:") {
			t.Errorf("tag URI = %q", tag.URI)
		}
	}

	// /api/history returns that tag's sightings.
	resp2, err := apiSrv.Client().Get(apiSrv.URL + "/api/history?epc=" + state.Tags[0].EPC)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var history []backend.Sighting
	if err := json.NewDecoder(resp2.Body).Decode(&history); err != nil {
		t.Fatal(err)
	}
	if len(history) == 0 {
		t.Error("empty history for a tracked tag")
	}

	// Bad EPC: 400.
	resp3, err := apiSrv.Client().Get(apiSrv.URL + "/api/history?epc=zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad epc status = %d", resp3.StatusCode)
	}
}

func TestIngestTagListBadEPC(t *testing.T) {
	svc := New(nil, WithLogger(func(string, ...any) {}))
	err := svc.IngestTagList(readerapi.TagListXML{
		Tags: []readerapi.TagXML{
			{EPC: "not-hex", Reader: "r1"},
			{EPC: "35000000400000C00000000A", Reader: "r1", Time: 1},
		},
	})
	if err == nil {
		t.Error("bad EPC not reported")
	}
	// The good event still went through.
	svc.Pipeline().Flush(1e12)
	if svc.Sightings() != 1 {
		t.Errorf("sightings = %d, want 1", svc.Sightings())
	}
}

func TestPollLoopStopsOnContext(t *testing.T) {
	// A dead endpoint: the loop must keep running (logging errors) and
	// stop promptly on cancel.
	var logged int
	svc := New(nil, WithLogger(func(string, ...any) { logged++ }))
	client := readerapi.NewClient("http://127.0.0.1:1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		svc.PollLoop(ctx, client, time.Millisecond)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("poll loop did not stop")
	}
	if logged == 0 {
		t.Error("failed polls were not logged")
	}
}

func TestDrivePasses(t *testing.T) {
	portal, err := scenario.ObjectTracking(scenario.ObjectConfig{
		TagLocations: []scenario.BoxLocation{scenario.LocFront},
		Seed:         10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var passes int
	done := make(chan struct{})
	go func() {
		DrivePasses(ctx, portal, time.Millisecond, func(pass int, res core.PassResult) {
			passes++
			if pass == 2 {
				cancel()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("pass driver did not stop")
	}
	if passes < 3 {
		t.Errorf("driver ran %d passes before cancel at pass 2", passes)
	}
}
