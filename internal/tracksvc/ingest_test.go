package tracksvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
)

func tagList(reader string, pass int, epcs ...string) readerapi.TagListXML {
	list := readerapi.TagListXML{Reader: reader, Count: len(epcs)}
	for i, e := range epcs {
		list.Tags = append(list.Tags, readerapi.TagXML{
			EPC: e, Reader: reader, Antenna: "a1",
			Pass: pass, Time: float64(i) * 0.1,
		})
	}
	return list
}

// TestStatsEndpoint is the satellite-4 handler test: /api/stats must
// report the ingest counters, batch histogram, and shard occupancy.
func TestStatsEndpoint(t *testing.T) {
	svc := New(backend.NewShardedPipeline(backend.Config{Shards: 4}))
	if err := svc.IngestTagList(tagList("dock", 0,
		"300833B2DDD9014000000001",
		"300833B2DDD9014000000002",
		"300833B2DDD9014000000003",
	)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	svc.Pipeline().Flush(1e9)

	req := httptest.NewRequest("GET", "/api/stats", nil)
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /api/stats = %d, body %s", rec.Code, rec.Body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Counters["ingest.batches"] != 1 {
		t.Errorf("ingest.batches = %d, want 1", stats.Counters["ingest.batches"])
	}
	if stats.Counters["ingest.events"] != 3 {
		t.Errorf("ingest.events = %d, want 3", stats.Counters["ingest.events"])
	}
	if stats.BatchSize.Count != 1 {
		t.Errorf("batch_size count = %d, want 1", stats.BatchSize.Count)
	}
	if stats.PipelineShards != 4 {
		t.Errorf("pipeline_shards = %d, want 4", stats.PipelineShards)
	}
	if len(stats.StoreShards) != svc.Pipeline().Store().NumShards() {
		t.Errorf("store_shards has %d entries, want %d", len(stats.StoreShards), svc.Pipeline().Store().NumShards())
	}
	tags, sightings := 0, 0
	for _, sh := range stats.StoreShards {
		tags += sh.Tags
		sightings += sh.Sightings
	}
	if tags != 3 || sightings != 3 {
		t.Errorf("shard occupancy tags=%d sightings=%d, want 3/3", tags, sightings)
	}
	if stats.EventsPerSec <= 0 {
		t.Errorf("events_per_sec = %v, want > 0", stats.EventsPerSec)
	}
	if stats.Queue != nil {
		t.Errorf("queue stats present without StartIngest: %+v", stats.Queue)
	}
}

// TestAsyncIngest exercises the queued path end to end: batches submitted
// through the ingestor must land in the store after drain, and the stats
// document must expose the queue.
func TestAsyncIngest(t *testing.T) {
	svc := New(backend.NewShardedPipeline(backend.Config{Shards: 4}))
	ctx, cancel := context.WithCancel(context.Background())
	svc.StartIngest(ctx, IngestConfig{QueueDepth: 8, Workers: 1})

	if q := svc.Stats().Queue; q == nil || q.Depth != 8 || q.Workers != 1 {
		t.Fatalf("queue stats = %+v, want depth 8 workers 1", q)
	}
	for pass := 0; pass < 10; pass++ {
		epcs := make([]string, 5)
		for i := range epcs {
			epcs[i] = fmt.Sprintf("300833B2DDD90140%08X", pass*5+i)
		}
		if err := svc.IngestTagList(tagList("gate", pass, epcs...)); err != nil {
			t.Fatalf("IngestTagList pass %d: %v", pass, err)
		}
	}
	cancel()
	svc.IngestWait()
	svc.Pipeline().Flush(1e9)

	if got := len(svc.Pipeline().Store().Tags()); got != 50 {
		t.Fatalf("store has %d tags after drain, want 50", got)
	}
	stats := svc.Stats()
	if stats.Counters["ingest.events"] != 50 {
		t.Errorf("ingest.events = %d, want 50", stats.Counters["ingest.events"])
	}
	if stats.Counters["ingest.dropped_events"] != 0 {
		t.Errorf("dropped %d events on lossless path", stats.Counters["ingest.dropped_events"])
	}
}

// TestIngestDropWhenFull pins the shedding backpressure policy: with the
// queue saturated, submissions are counted as stalls and their events as
// dropped, and the submitter never blocks.
func TestIngestDropWhenFull(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	svc := New(backend.NewShardedPipeline(backend.Config{
		Shards:      1,
		NewSmoother: func() backend.Smoother { return blockingSmoother{block} },
	}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.StartIngest(ctx, IngestConfig{QueueDepth: 1, Workers: 1, DropWhenFull: true})

	// First batch occupies the worker (blocked in the smoother); second
	// fills the queue; everything after must be shed without blocking.
	for pass := 0; pass < 6; pass++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = svc.IngestTagList(tagList("dock", pass, "300833B2DDD9014000000001"))
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("submit blocked under DropWhenFull")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.live.Get(obs.CtrIngestDropped) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no drops recorded; stats %+v", svc.Stats().Counters)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	cancel()
	svc.IngestWait()
	stats := svc.Stats()
	if stats.Counters["ingest.stalls"] == 0 {
		t.Errorf("no stalls recorded under saturation")
	}
}

// blockingSmoother parks the ingest worker until the test releases it.
type blockingSmoother struct{ block chan struct{} }

func (b blockingSmoother) Observe(backend.Event) []backend.Sighting {
	<-b.block
	return nil
}
func (b blockingSmoother) Flush(float64) []backend.Sighting { return nil }
