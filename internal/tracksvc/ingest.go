package tracksvc

import (
	"context"
	"sync"

	"rfidtrack/internal/obs"
)

// IngestConfig sizes the async ingest pipeline (DESIGN.md §11): reader
// polls parse into event batches, batches cross a bounded queue, and
// worker goroutines route them shard-wise into the cleaning pipeline.
type IngestConfig struct {
	// QueueDepth bounds how many parsed batches may wait (0 = 256).
	QueueDepth int
	// Workers is how many goroutines drain the queue (0 = 1). One worker
	// preserves cross-batch arrival order end to end; more workers trade
	// that for parallel smoothing — per-EPC streams stay deterministic
	// only if no two in-flight batches share an EPC.
	Workers int
	// DropWhenFull selects the backpressure policy when the queue is full:
	// false (default) blocks the submitting poll loop — lossless, readers
	// slow down; true sheds the batch and counts its events as dropped —
	// lossy, readers never stall.
	DropWhenFull bool
}

// ingestor is the running async pipeline.
type ingestor struct {
	svc     *Service
	queue   chan *eventBatch
	workers int
	drop    bool
	done    chan struct{}  // closed when ctx fires; unblocks lossless submits
	drained chan struct{}  // closed once workers exited and the residue is ingested
	wg      sync.WaitGroup // worker goroutines
}

// StartIngest launches the async ingest pipeline. Until this is called,
// IngestTagList ingests synchronously; afterwards it enqueues and
// returns. When ctx is done the workers drain whatever is already queued,
// then exit; Wait blocks until that drain completes. Calling StartIngest
// twice replaces the queue for future submissions but does not stop the
// old workers — stop the first pipeline (cancel its ctx) before starting
// another.
func (s *Service) StartIngest(ctx context.Context, cfg IngestConfig) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	ing := &ingestor{
		svc:     s,
		queue:   make(chan *eventBatch, cfg.QueueDepth),
		workers: cfg.Workers,
		drop:    cfg.DropWhenFull,
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		ing.wg.Add(1)
		go ing.run()
	}
	go func() {
		<-ctx.Done()
		s.ing.CompareAndSwap(ing, nil) // new submissions go synchronous again
		close(ing.done)
		ing.wg.Wait()
		// A submit that loaded the ingestor before the swap may have
		// enqueued after the workers' final drain; sweep the residue so
		// the lossless policy stays lossless through shutdown.
		for {
			select {
			case bp := <-ing.queue:
				s.ingestNow(bp)
			default:
				close(ing.drained)
				return
			}
		}
	}()
	s.ingLast.Store(ing)
	s.ing.Store(ing)
}

// IngestWait blocks until the most recent async pipeline (if any) has
// processed everything submitted before its context was canceled. Only
// meaningful after that context is done.
func (s *Service) IngestWait() {
	if ing := s.ingLast.Load(); ing != nil {
		<-ing.drained
	}
}

// submit hands one parsed batch to the workers. The fast path is a
// non-blocking send; a full queue is backpressure, counted, and then
// either sheds the batch (drop policy) or blocks until the workers catch
// up (lossless policy).
func (i *ingestor) submit(b *eventBatch) {
	select {
	case i.queue <- b:
		i.reapAfterShutdown()
		return
	default:
	}
	i.svc.live.Inc(obs.CtrIngestStalls)
	if i.drop {
		i.svc.live.Add(obs.CtrIngestDropped, uint64(len(b.events)))
		b.events = b.events[:0]
		i.svc.batches.Put(b)
		return
	}
	select {
	case i.queue <- b:
		i.reapAfterShutdown()
	case <-i.done:
		// Shutting down: ingest inline rather than lose the batch.
		i.svc.ingestNow(b)
	}
}

// reapAfterShutdown closes the window between a successful enqueue and
// shutdown: a submitter that loaded the ingestor before the shutdown
// swap can land its batch in the buffered queue after the workers and
// the residue sweep have already drained it, leaving the batch stranded.
// done is closed strictly before the residue sweep starts, so if done is
// still open here our enqueue happened before the sweep and will be seen
// by it; if done is closed, the sweep may already be past, and the
// submitter drains the queue itself (receives are exclusive, so racing
// with workers or the sweep is harmless).
func (i *ingestor) reapAfterShutdown() {
	select {
	case <-i.done:
	default:
		return
	}
	for {
		select {
		case bp := <-i.queue:
			i.svc.ingestNow(bp)
		default:
			return
		}
	}
}

// run is one worker: drain batches until shutdown, then drain the
// residue so nothing queued is lost.
func (i *ingestor) run() {
	defer i.wg.Done()
	for {
		select {
		case bp := <-i.queue:
			i.svc.ingestNow(bp)
		case <-i.done:
			for {
				select {
				case bp := <-i.queue:
					i.svc.ingestNow(bp)
				default:
					return
				}
			}
		}
	}
}
