// The streaming reliability monitor: the paper's R_C confidence model
// turned into a live SLO. Offline, redundancy analysis computes
// R_C = 1 − Π(1−P_i) from per-reader read probabilities measured in the
// simulator; here the same combination runs over a sliding window of
// what the deployed readers actually delivered, so the service can say —
// continuously — whether the redundancy configuration is meeting the
// detection reliability the model promised (cf. the session-estimate
// stopping rules of Jacobsen et al., arXiv:0904.2441: decisions from
// live per-session detection estimates rather than static planning).
//
// Rates are population-relative: the tracked population is every EPC any
// reader delivered inside the window, and reader i's read rate is the
// fraction of that population reader i itself delivered. A reader whose
// breaker is open stops delivering, its window empties, and its rate
// decays to zero — no special-casing of failure modes is needed.

package tracksvc

import (
	"sort"
	"sync"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/obs"
)

// SLO verdicts, ordered by severity (the gauge value on /metrics).
const (
	VerdictOK        = "ok"        // combined reliability ≥ target, every reader ≥ target
	VerdictDegraded  = "degraded"  // combined ≥ target, but some reader < target
	VerdictViolating = "violating" // combined reliability < target
)

// SLOConfig tunes the streaming reliability monitor. The zero value
// selects the defaults noted per field.
type SLOConfig struct {
	// Window is the sliding estimation window (default 30s). Longer
	// windows smooth poll jitter; shorter ones react faster to failures.
	Window time.Duration
	// Target is the detection-reliability SLO in (0, 1] (default 0.99):
	// the combined estimate dropping below it is a violation, and any
	// single reader below it degrades the verdict.
	Target float64
	// now overrides the clock in tests.
	now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Target <= 0 || c.Target > 1 {
		c.Target = 0.99
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Monitor is the streaming reliability estimator. A nil *Monitor is the
// disabled state: ObserveEvents is a nil-safe no-op, keeping the ingest
// path's cost at one nil check when no SLO is configured.
type Monitor struct {
	window time.Duration
	target float64
	now    func() time.Time

	mu sync.Mutex
	// lastSeen stamps, evicted lazily once older than the window. Memory
	// is O(readers × live population) — bounded by the deployment, and
	// entries for vanished tags age out with the window.
	readers    map[string]map[epc.Code]time.Time
	population map[epc.Code]time.Time
}

func newMonitor(cfg SLOConfig) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		window:     cfg.Window,
		target:     cfg.Target,
		now:        cfg.now,
		readers:    make(map[string]map[epc.Code]time.Time),
		population: make(map[epc.Code]time.Time),
	}
}

// ObserveEvents folds one ingested batch into the window: each event
// stamps its (reader, EPC) pair and the population EPC at now. Called
// from the ingest path after store apply, so "delivered" means
// store-visible.
func (m *Monitor) ObserveEvents(events []backend.Event) {
	if m == nil || len(events) == 0 {
		return
	}
	at := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range events {
		ev := &events[i]
		rm := m.readers[ev.Location]
		if rm == nil {
			rm = make(map[epc.Code]time.Time)
			m.readers[ev.Location] = rm
		}
		rm[ev.EPC] = at
		m.population[ev.EPC] = at
	}
}

// ReaderRate is one reader's sliding-window detection estimate.
type ReaderRate struct {
	Name string  `json:"name"`
	Tags int     `json:"tags"` // distinct EPCs this reader delivered in the window
	Rate float64 `json:"rate"` // Tags / population (the live P_i estimate)
}

// SLOStatus is the reliability section of GET /api/health.
type SLOStatus struct {
	WindowSeconds float64      `json:"window_seconds"`
	Target        float64      `json:"target"`
	Population    int          `json:"population"`  // distinct EPCs seen in the window
	Reliability   float64      `json:"reliability"` // 1 − Π(1−rate_i), the live R_C estimate
	Verdict       string       `json:"verdict"`     // ok | degraded | violating
	Readers       []ReaderRate `json:"readers"`     // sorted by name
}

// Status evicts stale entries and computes the current estimate. An
// empty window (nothing tracked) reports reliability 1 and verdict ok:
// no tracked population means no detection promise being broken.
func (m *Monitor) Status() SLOStatus {
	st := SLOStatus{
		WindowSeconds: m.window.Seconds(),
		Target:        m.target,
		Reliability:   1,
		Verdict:       VerdictOK,
		Readers:       []ReaderRate{},
	}
	cutoff := m.now().Add(-m.window)
	m.mu.Lock()
	defer m.mu.Unlock()
	for code, at := range m.population {
		if at.Before(cutoff) {
			delete(m.population, code)
		}
	}
	for name, rm := range m.readers {
		for code, at := range rm {
			if at.Before(cutoff) {
				delete(rm, code)
			}
		}
		if len(rm) == 0 {
			delete(m.readers, name)
		}
	}
	st.Population = len(m.population)
	if st.Population == 0 {
		return st
	}
	missAll := 1.0
	degraded := false
	for name, rm := range m.readers {
		rate := float64(len(rm)) / float64(st.Population)
		st.Readers = append(st.Readers, ReaderRate{Name: name, Tags: len(rm), Rate: rate})
		missAll *= 1 - rate
		if rate < m.target {
			degraded = true
		}
	}
	sort.Slice(st.Readers, func(i, j int) bool { return st.Readers[i].Name < st.Readers[j].Name })
	st.Reliability = 1 - missAll
	switch {
	case st.Reliability < m.target:
		st.Verdict = VerdictViolating
	case degraded:
		st.Verdict = VerdictDegraded
	}
	return st
}

// verdictValue maps the verdict onto the /metrics gauge scale.
func verdictValue(v string) float64 {
	switch v {
	case VerdictDegraded:
		return 1
	case VerdictViolating:
		return 2
	}
	return 0
}

// registerGauges exports the monitor on the registry: per-reader rates
// (one series per data-plane reader name — cardinality bounded by the
// fleet), the combined estimate, the target, and the verdict.
func (m *Monitor) registerGauges(reg *obs.Registry) {
	reg.Gauge("reader_read_rate", "Sliding-window fraction of the tracked population each reader delivered.",
		func() []obs.Sample {
			st := m.Status()
			out := make([]obs.Sample, len(st.Readers))
			for i, r := range st.Readers {
				out[i] = obs.Sample{
					Labels: []obs.Label{{Key: "reader", Value: r.Name}},
					Value:  r.Rate,
				}
			}
			return out
		})
	reg.Gauge("reliability_estimate", "Live combined detection reliability estimate, 1-prod(1-rate_i).",
		func() []obs.Sample { return []obs.Sample{{Value: m.Status().Reliability}} })
	reg.Gauge("reliability_target", "Configured detection-reliability SLO target.",
		func() []obs.Sample { return []obs.Sample{{Value: m.target}} })
	reg.Gauge("reliability_verdict", "SLO verdict: 0 ok, 1 degraded, 2 violating.",
		func() []obs.Sample { return []obs.Sample{{Value: verdictValue(m.Status().Verdict)}} })
}
