// Package tracksvc is the back-end tracking service behind cmd/trackd: it
// polls readers over the AR400-style HTTP/XML interface, feeds the
// cleaning pipeline, and serves the tracking state as JSON. cmd/readerd's
// pass driver also lives here so the full chain is testable in-process.
package tracksvc

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
)

// Service is the tracking back-end.
type Service struct {
	pipeline  *backend.Pipeline
	sightings atomic.Int64
	logf      func(format string, args ...any)

	live    *obs.Live                // ingest counters behind GET /api/stats
	ing     atomic.Pointer[ingestor] // nil until StartIngest; then the async path
	ingLast atomic.Pointer[ingestor] // most recent ingestor, kept for IngestWait
	started time.Time
	batches sync.Pool // *[]backend.Event parse/ingest buffers

	mu   sync.Mutex
	sups []*supervisor // readers under supervision (supervisor.go)
}

// Option configures a Service.
type Option func(*Service)

// WithLogger overrides the error logger (default: log.Printf).
func WithLogger(logf func(string, ...any)) Option {
	return func(s *Service) { s.logf = logf }
}

// New builds a service over the given pipeline (nil = default pipeline).
func New(p *backend.Pipeline, opts ...Option) *Service {
	if p == nil {
		p = backend.NewPipeline(nil)
	}
	s := &Service{pipeline: p, logf: log.Printf, live: obs.NewLive(), started: time.Now()}
	s.batches.New = func() any { b := make([]backend.Event, 0, 64); return &b }
	for _, o := range opts {
		o(s)
	}
	s.pipeline.AddRule(backend.Rule{
		Name:   "count",
		Action: func(backend.Sighting) { s.sightings.Add(1) },
	})
	return s
}

// Pipeline exposes the underlying pipeline (for registering rules).
func (s *Service) Pipeline() *backend.Pipeline { return s.pipeline }

// Sightings returns how many sightings have closed so far.
func (s *Service) Sightings() int64 { return s.sightings.Load() }

// IngestTagList feeds one reader poll result into the pipeline as one
// batch. Event times from distinct passes are spread apart so sightings
// from different passes never merge. With an ingestor running
// (StartIngest), the parsed batch is handed to the async pipeline and
// this returns as soon as it is queued; otherwise the batch is ingested
// synchronously. Parse buffers are pooled, so steady-state polls do not
// allocate beyond what encoding/xml already did.
func (s *Service) IngestTagList(list readerapi.TagListXML) error {
	if len(list.Tags) == 0 {
		return nil
	}
	var firstErr error
	bp := s.batches.Get().(*[]backend.Event)
	batch := (*bp)[:0]
	for _, tag := range list.Tags {
		code, err := epc.ParseHex(tag.EPC)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("tracksvc: bad EPC %q: %w", tag.EPC, err)
			}
			continue
		}
		batch = append(batch, backend.Event{
			EPC:      code,
			Location: tag.Reader,
			Antenna:  tag.Antenna,
			Time:     float64(tag.Pass)*100 + tag.Time,
		})
	}
	*bp = batch
	if len(batch) == 0 {
		s.batches.Put(bp)
		return firstErr
	}
	if ing := s.ing.Load(); ing != nil {
		ing.submit(bp)
		return firstErr
	}
	s.ingestNow(bp)
	return firstErr
}

// ingestNow runs one parsed batch through the pipeline synchronously,
// records its counters, and recycles the buffer.
func (s *Service) ingestNow(bp *[]backend.Event) {
	batch := *bp
	start := time.Now()
	closed := s.pipeline.IngestBatch(batch)
	micros := time.Since(start).Microseconds()
	s.live.Inc(obs.CtrIngestBatches)
	s.live.Add(obs.CtrIngestEvents, uint64(len(batch)))
	s.live.Add(obs.CtrIngestClosed, uint64(closed))
	s.live.Observe(obs.HistIngestBatch, uint64(len(batch)))
	s.live.Observe(obs.HistIngestMicros, uint64(micros))
	*bp = batch[:0]
	s.batches.Put(bp)
}

// Poll drains one reader and ingests the result. The context bounds the
// request: canceling it interrupts an in-flight poll.
func (s *Service) Poll(ctx context.Context, client *readerapi.Client) error {
	list, err := client.Poll(ctx)
	if err != nil {
		return err
	}
	return s.IngestTagList(list)
}

// PollLoop drains a reader on the given interval until ctx is done — the
// plain loop with no retry or breaker; production deployments use
// Supervise (supervisor.go). The loop's context reaches each request, so
// cancellation interrupts an in-flight poll instead of waiting it out.
func (s *Service) PollLoop(ctx context.Context, client *readerapi.Client, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if err := s.Poll(ctx, client); err != nil {
			if ctx.Err() != nil {
				return
			}
			s.logf("tracksvc: poll: %v", err)
		}
	}
}

// TagState is one tracked tag in the JSON API.
type TagState struct {
	EPC      string  `json:"epc"`
	URI      string  `json:"uri"`
	Location string  `json:"location"`
	Since    float64 `json:"since"`
}

// StateResponse is the GET /api/tags document.
type StateResponse struct {
	Tags      []TagState `json:"tags"`
	Sightings int64      `json:"sightings"`
}

// StatsResponse is the GET /api/stats document: the live ingest counters
// (DESIGN.md §11), batch-size and batch-latency histograms, and per-shard
// store occupancy.
type StatsResponse struct {
	UptimeSeconds  float64             `json:"uptime_seconds"`
	EventsPerSec   float64             `json:"events_per_sec"`
	Counters       map[string]uint64   `json:"counters"`
	BatchSize      obs.HistSnapshot    `json:"batch_size"`
	BatchMicros    obs.HistSnapshot    `json:"batch_micros"`
	PipelineShards int                 `json:"pipeline_shards"`
	StoreShards    []backend.ShardStat `json:"store_shards"`
	Queue          *QueueStats         `json:"queue,omitempty"`
}

// QueueStats describes the async ingest queue, when one is running.
type QueueStats struct {
	Depth   int `json:"depth"`   // configured capacity
	Length  int `json:"length"`  // batches waiting right now
	Workers int `json:"workers"`
}

// Stats assembles the current ingest statistics. Safe to call while
// ingestion is in flight.
func (s *Service) Stats() StatsResponse {
	snap := s.live.Snapshot()
	resp := StatsResponse{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Counters:       make(map[string]uint64),
		BatchSize:      snap.Histograms["ingest.batch_size"],
		BatchMicros:    snap.Histograms["ingest.batch_micros"],
		PipelineShards: s.pipeline.Shards(),
		StoreShards:    s.pipeline.Store().ShardStats(),
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "ingest.") {
			resp.Counters[name] = v
		}
	}
	if resp.UptimeSeconds > 0 {
		resp.EventsPerSec = float64(resp.Counters["ingest.events"]) / resp.UptimeSeconds
	}
	if ing := s.ing.Load(); ing != nil {
		resp.Queue = &QueueStats{Depth: cap(ing.queue), Length: len(ing.queue), Workers: ing.workers}
	}
	return resp
}

// Handler returns the JSON API:
//
//	GET /api/tags               every tracked tag with its last location
//	GET /api/history?epc=HEX    a tag's sighting history (404 unknown EPC)
//	GET /api/health             per-reader supervision state
//	GET /api/stats              live ingest counters and shard occupancy
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tags", func(w http.ResponseWriter, _ *http.Request) {
		store := s.pipeline.Store()
		// Tags must encode as [], never null, when the store is empty.
		resp := StateResponse{Tags: []TagState{}, Sightings: s.Sightings()}
		for _, code := range store.Tags() {
			loc, _ := store.LocationOf(code)
			resp.Tags = append(resp.Tags, TagState{
				EPC: code.Hex(), URI: code.URI(),
				Location: loc.Name, Since: loc.Since,
			})
		}
		s.writeJSON(w, resp)
	})
	mux.HandleFunc("GET /api/history", func(w http.ResponseWriter, r *http.Request) {
		code, err := epc.ParseHex(r.URL.Query().Get("epc"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		store := s.pipeline.Store()
		if !store.Seen(code) {
			http.Error(w, "unknown EPC", http.StatusNotFound)
			return
		}
		history := store.History(code)
		if history == nil {
			history = []backend.Sighting{}
		}
		s.writeJSON(w, history)
	})
	mux.HandleFunc("GET /api/stats", func(w http.ResponseWriter, _ *http.Request) {
		s.writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, _ *http.Request) {
		health := s.Health()
		if health.Status == "down" {
			// The document still renders; the status code lets load
			// balancers and probes act without parsing it.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		s.writeJSON(w, health)
	})
	return mux
}

func (s *Service) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing more to do than note it.
		s.logf("tracksvc: encoding response: %v", err)
	}
}

// DrivePasses runs portal passes back to back until ctx is done, pacing
// them by interval in real time (cmd/readerd's loop). onPass, if non-nil,
// observes each result.
func DrivePasses(ctx context.Context, portal *core.Portal, interval time.Duration, onPass func(int, core.PassResult)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for pass := 0; ; pass++ {
		res := portal.RunPass(pass)
		if onPass != nil {
			onPass(pass, res)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
