// Package tracksvc is the back-end tracking service behind cmd/trackd: it
// polls readers over the AR400-style HTTP/XML interface, feeds the
// cleaning pipeline, and serves the tracking state as JSON. cmd/readerd's
// pass driver also lives here so the full chain is testable in-process.
package tracksvc

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
)

// Service is the tracking back-end.
type Service struct {
	pipeline  *backend.Pipeline
	sightings atomic.Int64
	logf      func(format string, args ...any)

	live    *obs.Live                // ingest counters behind GET /api/stats
	reg     *obs.Registry            // OpenMetrics exposition behind GET /metrics
	tracer  *obs.Tracer              // optional JSONL lifecycle tracer (nil = off)
	mon     *Monitor                 // optional streaming reliability monitor (nil = off)
	confirm *confirmer               // optional k-of-n pass confirmation (nil = union)
	ing     atomic.Pointer[ingestor] // nil until StartIngest; then the async path
	ingLast atomic.Pointer[ingestor] // most recent ingestor, kept for IngestWait
	cycles  atomic.Uint64            // lifecycle cycle IDs, minted per poll
	// started is the service's start instant. It is captured with
	// time.Now(), whose monotonic reading makes every time.Since(started)
	// below immune to wall-clock steps — uptime and events/sec in
	// GET /api/stats derive exclusively from it.
	started time.Time
	batches sync.Pool // *eventBatch parse/ingest buffers

	mu   sync.Mutex
	sups []*supervisor // readers under supervision (supervisor.go)
}

// eventBatch is one parsed poll result crossing the ingest pipeline,
// carrying its lifecycle identity: the cycle ID minted at the poll and
// the poll's start instant (the reader-observation proxy) from which
// freshness.micros is measured at store visibility.
type eventBatch struct {
	events []backend.Event
	cycle  uint64
	reader string
	polled time.Time
}

// Option configures a Service.
type Option func(*Service)

// WithLogger overrides the error logger (default: log.Printf).
func WithLogger(logf func(string, ...any)) Option {
	return func(s *Service) { s.logf = logf }
}

// WithTracer attaches a bounded JSONL tracer: every poll cycle's
// lifecycle stages (poll → parse → apply → close → visible) are emitted
// with the cycle ID minted at the poll, so one grep reconstructs an
// event's full path through the service. Nil keeps tracing off.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Service) { s.tracer = t }
}

// WithSLO enables the streaming reliability monitor (slo.go): sliding-
// window per-reader read rates, the combined R_C-style detection
// estimate, and the ok/degraded/violating verdict merged into
// GET /api/health and exported as gauges on GET /metrics.
func WithSLO(cfg SLOConfig) Option {
	return func(s *Service) { s.mon = newMonitor(cfg) }
}

// WithConfirm enables the k-of-n confirmation merge (confirm.go): an
// event only reaches the pipeline once its tag has been identified in at
// least k distinct reader passes of the last window (0 = all passes).
// k <= 1 is the union policy — every event flows straight through — and
// installs nothing. Parse policies from CLI syntax with
// session.ParseConfirm.
func WithConfirm(k, window int) Option {
	return func(s *Service) {
		if k > 1 {
			s.confirm = newConfirmer(k, window, s.live)
		}
	}
}

// New builds a service over the given pipeline (nil = default pipeline).
func New(p *backend.Pipeline, opts ...Option) *Service {
	if p == nil {
		p = backend.NewPipeline(nil)
	}
	s := &Service{pipeline: p, logf: log.Printf, live: obs.NewLive(), started: time.Now()}
	s.reg = obs.NewRegistry(s.live)
	s.batches.New = func() any { return &eventBatch{events: make([]backend.Event, 0, 64)} }
	for _, o := range opts {
		o(s)
	}
	s.registerGauges()
	s.pipeline.AddRule(backend.Rule{
		Name:   "count",
		Action: func(backend.Sighting) { s.sightings.Add(1) },
	})
	return s
}

// Metrics exposes the service's OpenMetrics registry (GET /metrics).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Pipeline exposes the underlying pipeline (for registering rules).
func (s *Service) Pipeline() *backend.Pipeline { return s.pipeline }

// Sightings returns how many sightings have closed so far.
func (s *Service) Sightings() int64 { return s.sightings.Load() }

// IngestTagList feeds one reader poll result into the pipeline as one
// batch. Event times from distinct passes are spread apart so sightings
// from different passes never merge. With an ingestor running
// (StartIngest), the parsed batch is handed to the async pipeline and
// this returns as soon as it is queued; otherwise the batch is ingested
// synchronously. Parse buffers are pooled, so steady-state polls do not
// allocate beyond what encoding/xml already did.
func (s *Service) IngestTagList(list readerapi.TagListXML) error {
	return s.ingestList(list, s.cycles.Add(1), time.Now())
}

// ingestList is IngestTagList with an explicit lifecycle identity: the
// poll paths mint the cycle before the HTTP request so the poll stage
// shares the ID, and polled is the freshness epoch.
func (s *Service) ingestList(list readerapi.TagListXML, cycle uint64, polled time.Time) error {
	if len(list.Tags) == 0 {
		return nil
	}
	var firstErr error
	parseStart := time.Now()
	b := s.batches.Get().(*eventBatch)
	batch := b.events[:0]
	for _, tag := range list.Tags {
		code, err := epc.ParseHex(tag.EPC)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("tracksvc: bad EPC %q: %w", tag.EPC, err)
			}
			continue
		}
		ev := backend.Event{
			EPC:      code,
			Location: tag.Reader,
			Antenna:  tag.Antenna,
			Time:     float64(tag.Pass)*100 + tag.Time,
		}
		if s.confirm != nil {
			// The confirmation merge may hold the event back (tag still
			// unconfirmed) or release a whole held history (this event
			// confirmed it); either way it decides what ingests now.
			batch = s.confirm.offer(code, tag.Pass, ev, batch)
		} else {
			batch = append(batch, ev)
		}
	}
	b.events, b.cycle, b.reader, b.polled = batch, cycle, list.Reader, polled
	if len(batch) == 0 {
		s.batches.Put(b)
		return firstErr
	}
	parseMicros := time.Since(parseStart).Microseconds()
	s.live.Observe(obs.HistParseMicros, uint64(parseMicros))
	if s.tracer != nil {
		s.tracer.Cycle(cycle, "parse", list.Reader, parseMicros, len(batch))
	}
	if ing := s.ing.Load(); ing != nil {
		ing.submit(b)
		return firstErr
	}
	s.ingestNow(b)
	return firstErr
}

// ingestNow runs one parsed batch through the pipeline synchronously,
// records its counters and lifecycle stages, and recycles the buffer.
func (s *Service) ingestNow(b *eventBatch) {
	batch := b.events
	start := time.Now()
	closed := s.pipeline.IngestBatch(batch)
	micros := time.Since(start).Microseconds()
	s.live.Inc(obs.CtrIngestBatches)
	s.live.Add(obs.CtrIngestEvents, uint64(len(batch)))
	s.live.Add(obs.CtrIngestClosed, uint64(closed))
	s.live.Observe(obs.HistIngestBatch, uint64(len(batch)))
	s.live.Observe(obs.HistIngestMicros, uint64(micros))
	s.live.Observe(obs.HistApplyMicros, uint64(micros))
	// Freshness: the batch's events are store-visible as of now; measure
	// back to the poll's start instant (monotonic difference).
	var freshMicros int64
	if !b.polled.IsZero() {
		freshMicros = time.Since(b.polled).Microseconds()
		s.live.Observe(obs.HistFreshnessMicros, uint64(freshMicros))
	}
	s.mon.ObserveEvents(batch)
	if s.tracer != nil {
		s.tracer.Cycle(b.cycle, "apply", b.reader, micros, len(batch))
		s.tracer.Cycle(b.cycle, "close", b.reader, micros, closed)
		if !b.polled.IsZero() {
			s.tracer.Cycle(b.cycle, "visible", b.reader, freshMicros, len(batch))
		}
	}
	b.events = batch[:0]
	s.batches.Put(b)
}

// Poll drains one reader and ingests the result. The context bounds the
// request: canceling it interrupts an in-flight poll.
func (s *Service) Poll(ctx context.Context, client *readerapi.Client) error {
	cycle := s.cycles.Add(1)
	polled := time.Now()
	list, err := client.Poll(ctx)
	pollMicros := time.Since(polled).Microseconds()
	s.live.Inc(obs.CtrPollAttempts)
	if err != nil {
		s.live.Inc(obs.CtrPollFailures)
		return err
	}
	s.live.Observe(obs.HistPollMicros, uint64(pollMicros))
	if s.tracer != nil {
		s.tracer.Cycle(cycle, "poll", list.Reader, pollMicros, len(list.Tags))
	}
	return s.ingestList(list, cycle, polled)
}

// PollLoop drains a reader on the given interval until ctx is done — the
// plain loop with no retry or breaker; production deployments use
// Supervise (supervisor.go). The loop's context reaches each request, so
// cancellation interrupts an in-flight poll instead of waiting it out.
func (s *Service) PollLoop(ctx context.Context, client *readerapi.Client, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if err := s.Poll(ctx, client); err != nil {
			if ctx.Err() != nil {
				return
			}
			s.logf("tracksvc: poll: %v", err)
		}
	}
}

// TagState is one tracked tag in the JSON API.
type TagState struct {
	EPC      string  `json:"epc"`
	URI      string  `json:"uri"`
	Location string  `json:"location"`
	Since    float64 `json:"since"`
}

// StateResponse is the GET /api/tags document.
type StateResponse struct {
	Tags      []TagState `json:"tags"`
	Sightings int64      `json:"sightings"`
}

// StatsResponse is the GET /api/stats document: the live ingest counters
// (DESIGN.md §11), batch-size and batch-latency histograms, and per-shard
// store occupancy.
type StatsResponse struct {
	UptimeSeconds  float64             `json:"uptime_seconds"`
	EventsPerSec   float64             `json:"events_per_sec"`
	Counters       map[string]uint64   `json:"counters"`
	BatchSize      obs.HistSnapshot    `json:"batch_size"`
	BatchMicros    obs.HistSnapshot    `json:"batch_micros"`
	PipelineShards int                 `json:"pipeline_shards"`
	StoreShards    []backend.ShardStat `json:"store_shards"`
	Queue          *QueueStats         `json:"queue,omitempty"`
}

// QueueStats describes the async ingest queue, when one is running.
type QueueStats struct {
	Depth   int `json:"depth"`  // configured capacity
	Length  int `json:"length"` // batches waiting right now
	Workers int `json:"workers"`
}

// Stats assembles the current ingest statistics. Safe to call while
// ingestion is in flight. Rates derive from one monotonic uptime reading
// (time.Since on the start instant), never from wall-clock subtraction,
// so an NTP step or suspend/resume cannot produce negative or inflated
// events/sec; the response shape is pinned by TestStatsResponseSchema.
func (s *Service) Stats() StatsResponse {
	snap := s.live.Snapshot()
	uptime := time.Since(s.started)
	resp := StatsResponse{
		UptimeSeconds:  uptime.Seconds(),
		Counters:       make(map[string]uint64),
		BatchSize:      snap.Histograms["ingest.batch_size"],
		BatchMicros:    snap.Histograms["ingest.batch_micros"],
		PipelineShards: s.pipeline.Shards(),
		StoreShards:    s.pipeline.Store().ShardStats(),
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "ingest.") || strings.HasPrefix(name, "confirm.") {
			resp.Counters[name] = v
		}
	}
	if uptime > 0 {
		resp.EventsPerSec = float64(resp.Counters["ingest.events"]) / uptime.Seconds()
	}
	if ing := s.ing.Load(); ing != nil {
		resp.Queue = &QueueStats{Depth: cap(ing.queue), Length: len(ing.queue), Workers: ing.workers}
	}
	return resp
}

// registerGauges wires the scrape-time gauge families into the registry.
// Every sampler returns its points in a deterministic order (shards by
// index, readers sorted by name) — the exposition-ordering contract.
// Label cardinality is bounded by configuration: one series per store
// shard and per supervised reader, never per tag (DESIGN.md §12).
func (s *Service) registerGauges() {
	s.reg.Gauge("uptime_seconds", "Seconds since service start (monotonic).",
		func() []obs.Sample {
			return []obs.Sample{{Value: time.Since(s.started).Seconds()}}
		})
	s.reg.Gauge("pipeline_shards", "Configured pipeline smoother shards.",
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(s.pipeline.Shards())}}
		})
	s.reg.Gauge("ingest_queue_capacity", "Async ingest queue capacity in batches (0 when synchronous).",
		func() []obs.Sample {
			if ing := s.ing.Load(); ing != nil {
				return []obs.Sample{{Value: float64(cap(ing.queue))}}
			}
			return []obs.Sample{{Value: 0}}
		})
	s.reg.Gauge("ingest_queue_length", "Batches waiting in the async ingest queue right now.",
		func() []obs.Sample {
			if ing := s.ing.Load(); ing != nil {
				return []obs.Sample{{Value: float64(len(ing.queue))}}
			}
			return []obs.Sample{{Value: 0}}
		})
	s.reg.Gauge("store_shard_tags", "Tracked tags per store shard.",
		func() []obs.Sample {
			stats := s.pipeline.Store().ShardStats()
			out := make([]obs.Sample, len(stats))
			for i, st := range stats {
				out[i] = obs.Sample{
					Labels: []obs.Label{{Key: "shard", Value: strconv.Itoa(i)}},
					Value:  float64(st.Tags),
				}
			}
			return out
		})
	s.reg.Gauge("store_shard_sightings", "Applied sightings per store shard.",
		func() []obs.Sample {
			stats := s.pipeline.Store().ShardStats()
			out := make([]obs.Sample, len(stats))
			for i, st := range stats {
				out[i] = obs.Sample{
					Labels: []obs.Label{{Key: "shard", Value: strconv.Itoa(i)}},
					Value:  float64(st.Sightings),
				}
			}
			return out
		})
	s.reg.Gauge("breaker_state", "Circuit breaker state per supervised reader (0 closed, 1 open, 2 half-open).",
		func() []obs.Sample {
			return s.readerSamples(func(sup *supervisor) float64 {
				return float64(sup.State())
			})
		})
	s.reg.Gauge("poll_consecutive_failures", "Consecutive failed poll cycles per supervised reader.",
		func() []obs.Sample {
			return s.readerSamples(func(sup *supervisor) float64 {
				return float64(sup.consecutive.Load())
			})
		})
	if s.confirm != nil {
		s.reg.Gauge("confirm_pending_tags", "Tags sighted but not yet k-of-n confirmed.",
			func() []obs.Sample {
				tags, _ := s.confirm.pendingStats()
				return []obs.Sample{{Value: float64(tags)}}
			})
		s.reg.Gauge("confirm_pending_events", "Events currently held for tags awaiting confirmation.",
			func() []obs.Sample {
				_, held := s.confirm.pendingStats()
				return []obs.Sample{{Value: float64(held)}}
			})
	}
	if s.mon != nil {
		s.mon.registerGauges(s.reg)
	}
}

// readerSamples renders one labeled sample per supervised reader, sorted
// by reader name for deterministic exposition order.
func (s *Service) readerSamples(value func(*supervisor) float64) []obs.Sample {
	s.mu.Lock()
	sups := append([]*supervisor(nil), s.sups...)
	s.mu.Unlock()
	sort.Slice(sups, func(i, j int) bool { return sups[i].name < sups[j].name })
	out := make([]obs.Sample, len(sups))
	for i, sup := range sups {
		out[i] = obs.Sample{
			Labels: []obs.Label{{Key: "reader", Value: sup.name}},
			Value:  value(sup),
		}
	}
	return out
}

// Handler returns the JSON API:
//
//	GET /api/tags               every tracked tag with its last location
//	GET /api/history?epc=HEX    a tag's sighting history (404 unknown EPC)
//	GET /api/health             per-reader supervision state and SLO verdict
//	GET /api/stats              live ingest counters and shard occupancy
//	GET /metrics                OpenMetrics exposition of the live metric set
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tags", func(w http.ResponseWriter, _ *http.Request) {
		store := s.pipeline.Store()
		// Tags must encode as [], never null, when the store is empty.
		resp := StateResponse{Tags: []TagState{}, Sightings: s.Sightings()}
		for _, code := range store.Tags() {
			loc, _ := store.LocationOf(code)
			resp.Tags = append(resp.Tags, TagState{
				EPC: code.Hex(), URI: code.URI(),
				Location: loc.Name, Since: loc.Since,
			})
		}
		s.writeJSON(w, resp)
	})
	mux.HandleFunc("GET /api/history", func(w http.ResponseWriter, r *http.Request) {
		code, err := epc.ParseHex(r.URL.Query().Get("epc"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		store := s.pipeline.Store()
		if !store.Seen(code) {
			http.Error(w, "unknown EPC", http.StatusNotFound)
			return
		}
		history := store.History(code)
		if history == nil {
			history = []backend.Sighting{}
		}
		s.writeJSON(w, history)
	})
	mux.HandleFunc("GET /api/stats", func(w http.ResponseWriter, _ *http.Request) {
		s.writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		if err := s.reg.WriteOpenMetrics(w); err != nil {
			s.logf("tracksvc: writing metrics: %v", err)
		}
	})
	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, _ *http.Request) {
		health := s.Health()
		if health.Status == "down" {
			// The document still renders; the status code lets load
			// balancers and probes act without parsing it.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		s.writeJSON(w, health)
	})
	return mux
}

func (s *Service) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing more to do than note it.
		s.logf("tracksvc: encoding response: %v", err)
	}
}

// DrivePasses runs portal passes back to back until ctx is done, pacing
// them by interval in real time (cmd/readerd's loop). onPass, if non-nil,
// observes each result.
func DrivePasses(ctx context.Context, portal *core.Portal, interval time.Duration, onPass func(int, core.PassResult)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for pass := 0; ; pass++ {
		res := portal.RunPass(pass)
		if onPass != nil {
			onPass(pass, res)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
