// Package tracksvc is the back-end tracking service behind cmd/trackd: it
// polls readers over the AR400-style HTTP/XML interface, feeds the
// cleaning pipeline, and serves the tracking state as JSON. cmd/readerd's
// pass driver also lives here so the full chain is testable in-process.
package tracksvc

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/readerapi"
)

// Service is the tracking back-end.
type Service struct {
	pipeline  *backend.Pipeline
	sightings atomic.Int64
	logf      func(format string, args ...any)

	mu   sync.Mutex
	sups []*supervisor // readers under supervision (supervisor.go)
}

// Option configures a Service.
type Option func(*Service)

// WithLogger overrides the error logger (default: log.Printf).
func WithLogger(logf func(string, ...any)) Option {
	return func(s *Service) { s.logf = logf }
}

// New builds a service over the given pipeline (nil = default pipeline).
func New(p *backend.Pipeline, opts ...Option) *Service {
	if p == nil {
		p = backend.NewPipeline(nil)
	}
	s := &Service{pipeline: p, logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.pipeline.AddRule(backend.Rule{
		Name:   "count",
		Action: func(backend.Sighting) { s.sightings.Add(1) },
	})
	return s
}

// Pipeline exposes the underlying pipeline (for registering rules).
func (s *Service) Pipeline() *backend.Pipeline { return s.pipeline }

// Sightings returns how many sightings have closed so far.
func (s *Service) Sightings() int64 { return s.sightings.Load() }

// IngestTagList feeds one reader poll result into the pipeline. Event
// times from distinct passes are spread apart so sightings from different
// passes never merge.
func (s *Service) IngestTagList(list readerapi.TagListXML) error {
	var firstErr error
	for _, tag := range list.Tags {
		code, err := epc.ParseHex(tag.EPC)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("tracksvc: bad EPC %q: %w", tag.EPC, err)
			}
			continue
		}
		s.pipeline.Ingest(backend.Event{
			EPC:      code,
			Location: tag.Reader,
			Antenna:  tag.Antenna,
			Time:     float64(tag.Pass)*100 + tag.Time,
		})
	}
	return firstErr
}

// Poll drains one reader and ingests the result. The context bounds the
// request: canceling it interrupts an in-flight poll.
func (s *Service) Poll(ctx context.Context, client *readerapi.Client) error {
	list, err := client.Poll(ctx)
	if err != nil {
		return err
	}
	return s.IngestTagList(list)
}

// PollLoop drains a reader on the given interval until ctx is done — the
// plain loop with no retry or breaker; production deployments use
// Supervise (supervisor.go). The loop's context reaches each request, so
// cancellation interrupts an in-flight poll instead of waiting it out.
func (s *Service) PollLoop(ctx context.Context, client *readerapi.Client, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if err := s.Poll(ctx, client); err != nil {
			if ctx.Err() != nil {
				return
			}
			s.logf("tracksvc: poll: %v", err)
		}
	}
}

// TagState is one tracked tag in the JSON API.
type TagState struct {
	EPC      string  `json:"epc"`
	URI      string  `json:"uri"`
	Location string  `json:"location"`
	Since    float64 `json:"since"`
}

// StateResponse is the GET /api/tags document.
type StateResponse struct {
	Tags      []TagState `json:"tags"`
	Sightings int64      `json:"sightings"`
}

// Handler returns the JSON API:
//
//	GET /api/tags               every tracked tag with its last location
//	GET /api/history?epc=HEX    a tag's sighting history (404 unknown EPC)
//	GET /api/health             per-reader supervision state
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/tags", func(w http.ResponseWriter, _ *http.Request) {
		store := s.pipeline.Store()
		// Tags must encode as [], never null, when the store is empty.
		resp := StateResponse{Tags: []TagState{}, Sightings: s.Sightings()}
		for _, code := range store.Tags() {
			loc, _ := store.LocationOf(code)
			resp.Tags = append(resp.Tags, TagState{
				EPC: code.Hex(), URI: code.URI(),
				Location: loc.Name, Since: loc.Since,
			})
		}
		s.writeJSON(w, resp)
	})
	mux.HandleFunc("GET /api/history", func(w http.ResponseWriter, r *http.Request) {
		code, err := epc.ParseHex(r.URL.Query().Get("epc"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		store := s.pipeline.Store()
		if !store.Seen(code) {
			http.Error(w, "unknown EPC", http.StatusNotFound)
			return
		}
		history := store.History(code)
		if history == nil {
			history = []backend.Sighting{}
		}
		s.writeJSON(w, history)
	})
	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, _ *http.Request) {
		health := s.Health()
		if health.Status == "down" {
			// The document still renders; the status code lets load
			// balancers and probes act without parsing it.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		s.writeJSON(w, health)
	})
	return mux
}

func (s *Service) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing more to do than note it.
		s.logf("tracksvc: encoding response: %v", err)
	}
}

// DrivePasses runs portal passes back to back until ctx is done, pacing
// them by interval in real time (cmd/readerd's loop). onPass, if non-nil,
// observes each result.
func DrivePasses(ctx context.Context, portal *core.Portal, interval time.Duration, onPass func(int, core.PassResult)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for pass := 0; ; pass++ {
		res := portal.RunPass(pass)
		if onPass != nil {
			onPass(pass, res)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
