package tracksvc

import (
	"testing"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/obs"
)

const confirmEPC = "300833B2DDD9014000000001"

func mustHex(t *testing.T, s string) epc.Code {
	t.Helper()
	code, err := epc.ParseHex(s)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestConfirmHoldsUntilSecondPass: under 2-of-all confirmation a tag seen
// in one pass stays out of the pipeline entirely; its second pass
// releases the whole held history at once.
func TestConfirmHoldsUntilSecondPass(t *testing.T) {
	svc := New(nil, WithConfirm(2, 0))
	code := mustHex(t, confirmEPC)

	if err := svc.IngestTagList(tagList("dock", 0, confirmEPC)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	stats := svc.Stats()
	if got := stats.Counters["ingest.events"]; got != 0 {
		t.Errorf("unconfirmed event reached the pipeline: ingest.events = %d", got)
	}
	if got := stats.Counters["confirm.held_events"]; got != 1 {
		t.Errorf("confirm.held_events = %d, want 1", got)
	}
	if svc.Pipeline().Store().Seen(code) {
		t.Error("store saw the tag before confirmation")
	}

	if err := svc.IngestTagList(tagList("dock", 1, confirmEPC)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	stats = svc.Stats()
	if got := stats.Counters["ingest.events"]; got != 2 {
		t.Errorf("ingest.events = %d, want 2 (held history released with the confirming event)", got)
	}
	if got := stats.Counters["confirm.confirmed_tags"]; got != 1 {
		t.Errorf("confirm.confirmed_tags = %d, want 1", got)
	}
	if got := stats.Counters["confirm.released_events"]; got != 2 {
		t.Errorf("confirm.released_events = %d, want 2", got)
	}
	if !svc.Pipeline().Store().Seen(code) {
		t.Error("store did not see the tag after confirmation")
	}

	// A confirmed tag's later events flow straight through.
	if err := svc.IngestTagList(tagList("dock", 2, confirmEPC)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	if got := svc.Stats().Counters["ingest.events"]; got != 3 {
		t.Errorf("ingest.events = %d, want 3 after a post-confirmation pass", got)
	}
}

// TestConfirmRepeatsWithinOnePassDoNotConfirm: k counts distinct passes,
// not raw sightings — five reads in one pass are one opportunity.
func TestConfirmRepeatsWithinOnePassDoNotConfirm(t *testing.T) {
	svc := New(nil, WithConfirm(2, 0))
	for i := 0; i < 5; i++ {
		if err := svc.IngestTagList(tagList("dock", 3, confirmEPC)); err != nil {
			t.Fatalf("IngestTagList: %v", err)
		}
	}
	stats := svc.Stats()
	if got := stats.Counters["ingest.events"]; got != 0 {
		t.Errorf("same-pass repeats confirmed the tag: ingest.events = %d", got)
	}
	if got := stats.Counters["confirm.held_events"]; got != 5 {
		t.Errorf("confirm.held_events = %d, want 5", got)
	}
}

// TestConfirmWindowExpiry: with 2-of-2, a pass that has slid out of the
// window no longer counts and its held events are discarded.
func TestConfirmWindowExpiry(t *testing.T) {
	svc := New(nil, WithConfirm(2, 2))
	for _, pass := range []int{0, 5} {
		if err := svc.IngestTagList(tagList("dock", pass, confirmEPC)); err != nil {
			t.Fatalf("IngestTagList: %v", err)
		}
	}
	stats := svc.Stats()
	if got := stats.Counters["ingest.events"]; got != 0 {
		t.Errorf("expired pass still counted toward confirmation: ingest.events = %d", got)
	}
	if got := stats.Counters["confirm.expired_events"]; got != 1 {
		t.Errorf("confirm.expired_events = %d, want 1 (pass 0's held event)", got)
	}
	// Pass 6 joins pass 5 inside the window: confirmed, and only the two
	// in-window events release.
	if err := svc.IngestTagList(tagList("dock", 6, confirmEPC)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	stats = svc.Stats()
	if got := stats.Counters["confirm.confirmed_tags"]; got != 1 {
		t.Errorf("confirm.confirmed_tags = %d, want 1", got)
	}
	if got := stats.Counters["ingest.events"]; got != 2 {
		t.Errorf("ingest.events = %d, want 2 (expired event must not release)", got)
	}
}

// TestConfirmUnionIsPassthrough: k = 1 is the union policy; WithConfirm
// installs nothing and events flow exactly as without the option.
func TestConfirmUnionIsPassthrough(t *testing.T) {
	svc := New(nil, WithConfirm(1, 0))
	if svc.confirm != nil {
		t.Fatal("union policy installed a confirmer")
	}
	if err := svc.IngestTagList(tagList("dock", 0, confirmEPC)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	if got := svc.Stats().Counters["ingest.events"]; got != 1 {
		t.Errorf("ingest.events = %d, want 1", got)
	}
}

// TestConfirmHeldBufferBounded: a tag that never confirms cannot
// accumulate events without bound.
func TestConfirmHeldBufferBounded(t *testing.T) {
	c := newConfirmer(2, 0, obs.NewLive())
	code := mustHex(t, confirmEPC)
	for i := 0; i < 3*confirmMaxHeld; i++ {
		if out := c.offer(code, 7, backend.Event{EPC: code, Time: float64(i)}, nil); len(out) != 0 {
			t.Fatalf("event %d released without confirmation", i)
		}
	}
	tags, held := c.pendingStats()
	if tags != 1 || held != confirmMaxHeld {
		t.Errorf("pendingStats = (%d tags, %d held), want (1, %d)", tags, held, confirmMaxHeld)
	}
	// Confirmation releases exactly the bound: the oldest held event is
	// shed to make room for the confirming one.
	out := c.offer(code, 8, backend.Event{EPC: code}, nil)
	if len(out) != confirmMaxHeld {
		t.Errorf("released %d events, want %d", len(out), confirmMaxHeld)
	}
}

// TestConfirmGaugesExposed: the pending-tags and held-events gauges ride
// the OpenMetrics exposition when confirmation is on.
func TestConfirmGaugesExposed(t *testing.T) {
	svc := New(nil, WithConfirm(2, 0))
	if err := svc.IngestTagList(tagList("dock", 0, confirmEPC)); err != nil {
		t.Fatalf("IngestTagList: %v", err)
	}
	series := scrape(t, svc)
	if got := series["rfidtrack_confirm_pending_tags"]; got != 1 {
		t.Errorf("rfidtrack_confirm_pending_tags = %g, want 1", got)
	}
	if got := series["rfidtrack_confirm_pending_events"]; got != 1 {
		t.Errorf("rfidtrack_confirm_pending_events = %g, want 1", got)
	}
	if got := series["rfidtrack_confirm_held_events_total"]; got != 1 {
		t.Errorf("rfidtrack_confirm_held_events_total = %g, want 1", got)
	}
}
