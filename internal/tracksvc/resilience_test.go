package tracksvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/faultinject"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/readerapi"
	"rfidtrack/internal/scenario"
)

// okTagListHandler answers every request with one valid tag read.
func okTagListHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		io.WriteString(w, `<taglist reader="r1" count="1">`+
			`<tag epc="35000000400000C00000000A" uri="urn:epc:id:sgtin:1.1.10" antenna="a1" reader="r1" rssi="-60" time="1" pass="0"/>`+
			`</taglist>`)
	})
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// transitionLog records breaker transitions concurrently.
type transitionLog struct {
	mu  sync.Mutex
	seq []string
}

func (l *transitionLog) hook(reader string, from, to BreakerState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq = append(l.seq, fmt.Sprintf("%s:%s->%s", reader, from, to))
}

func (l *transitionLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seq...)
}

// fastConfig is an aggressive supervisor tuning for tests: millisecond
// cadence, tiny backoff, quick breaker.
func fastConfig() SupervisorConfig {
	return SupervisorConfig{
		Interval:         time.Millisecond,
		RequestTimeout:   500 * time.Millisecond,
		MaxAttempts:      2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		FailureThreshold: 2,
		OpenTimeout:      5 * time.Millisecond,
	}
}

// TestBreakerTransitionsDeterministic pins the breaker state machine
// against a scripted fault plan: exactly four dropped requests with
// MaxAttempts=2 and FailureThreshold=2 are exactly two failed cycles —
// the breaker opens once, and the first half-open probe (request 5, clean
// again) closes it. The transition sequence is fully determined by the
// fault script.
func TestBreakerTransitionsDeterministic(t *testing.T) {
	inj := faultinject.New(faultinject.Seq(
		faultinject.Drop, faultinject.Drop, faultinject.Drop, faultinject.Drop))
	srv := httptest.NewServer(inj.Middleware(okTagListHandler()))
	defer srv.Close()
	// Fresh connection per request: connection reuse after a drop would
	// add client-side failures the fault script did not decide.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}

	var log transitionLog
	metrics := obs.NewMetrics()
	cfg := fastConfig()
	cfg.OnStateChange = log.hook
	cfg.Collector = metrics.Shard()

	svc := New(nil, WithLogger(func(string, ...any) {}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		svc.Supervise(ctx, "r1", readerapi.NewClient(srv.URL, hc), cfg)
		close(done)
	}()

	waitFor(t, 5*time.Second, "breaker to open and close again", func() bool {
		seq := log.snapshot()
		return len(seq) >= 3
	})
	cancel()
	<-done

	want := []string{"r1:closed->open", "r1:open->half-open", "r1:half-open->closed"}
	got := log.snapshot()[:3]
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("transition %d = %q, want %q (full: %v)", i, got[i], w, got)
		}
	}

	snap := metrics.Snapshot()
	if n := snap.Counters["breaker.opens"]; n != 1 {
		t.Errorf("breaker.opens = %d, want exactly 1", n)
	}
	if n := snap.Counters["breaker.closes"]; n != 1 {
		t.Errorf("breaker.closes = %d, want exactly 1", n)
	}
	if n := snap.Counters["poll.failures"]; n != 4 {
		t.Errorf("poll.failures = %d, want exactly 4 (the scripted drops)", n)
	}
	if n := snap.Counters["poll.retries"]; n != 2 {
		t.Errorf("poll.retries = %d, want exactly 2 (one per failed cycle)", n)
	}
	if health := svc.Health(); health.Status != "ok" {
		t.Errorf("health after recovery = %q, want ok", health.Status)
	}
}

// TestBreakerOpensImmediatelyOnFatalError: a definitive 4xx (wrong URL,
// not a sick reader) must not burn FailureThreshold cycles of retries.
func TestBreakerOpensImmediatelyOnFatalError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}))
	defer srv.Close()

	var log transitionLog
	cfg := fastConfig()
	cfg.FailureThreshold = 50 // must not matter
	cfg.OpenTimeout = time.Hour
	cfg.OnStateChange = log.hook

	svc := New(nil, WithLogger(func(string, ...any) {}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		svc.Supervise(ctx, "r1", readerapi.NewClient(srv.URL, srv.Client()), cfg)
		close(done)
	}()
	waitFor(t, 5*time.Second, "breaker to open on fatal error", func() bool {
		return len(log.snapshot()) >= 1
	})
	cancel()
	<-done

	if seq := log.snapshot(); seq[0] != "r1:closed->open" {
		t.Fatalf("first transition = %q", seq[0])
	}
	sup := svc.Health().Readers[0]
	if sup.Retries != 0 {
		t.Errorf("fatal error was retried %d times", sup.Retries)
	}
	if sup.Breaker != "open" {
		t.Errorf("breaker = %q, want open", sup.Breaker)
	}
}

// TestSupervisorNeverBlocksPastDeadline: a reader stalled far beyond the
// request deadline costs each poll attempt at most RequestTimeout, and
// cancellation stops the supervisor promptly even mid-request.
func TestSupervisorNeverBlocksPastDeadline(t *testing.T) {
	inj := faultinject.New(faultinject.EveryN(faultinject.Delay, 1),
		faultinject.WithLatency(time.Hour))
	srv := httptest.NewServer(inj.Middleware(okTagListHandler()))
	defer srv.Close()

	cfg := fastConfig()
	cfg.RequestTimeout = 20 * time.Millisecond

	svc := New(nil, WithLogger(func(string, ...any) {}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		svc.Supervise(ctx, "r1", readerapi.NewClient(srv.URL, srv.Client()), cfg)
		close(done)
	}()

	// The loop must keep making (failing) attempts: every one is cut at
	// the 20ms deadline instead of hanging on the 1h stall.
	waitFor(t, 5*time.Second, "multiple deadline-bounded attempts", func() bool {
		h := svc.Health()
		return len(h.Readers) == 1 && h.Readers[0].Failures >= 3
	})

	start := time.Now()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("supervisor did not stop after cancel")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel-to-stop took %v; an in-flight request was not interrupted", elapsed)
	}
}

// TestPollLoopUnderFaultInjection drives the plain PollLoop through every
// fault class and checks it logs, keeps running, and stops on cancel —
// never wedging on a single bad response.
func TestPollLoopUnderFaultInjection(t *testing.T) {
	cases := []struct {
		name string
		inj  *faultinject.Injector
	}{
		{"timeout", faultinject.New(faultinject.EveryN(faultinject.Delay, 1), faultinject.WithLatency(time.Hour))},
		{"5xx", faultinject.New(faultinject.EveryN(faultinject.Err5xx, 1))},
		{"malformed-xml", faultinject.New(faultinject.EveryN(faultinject.Corrupt, 1))},
		{"flapping", faultinject.New(faultinject.Flap(1, 1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.inj.Middleware(okTagListHandler()))
			defer srv.Close()

			var mu sync.Mutex
			logged := 0
			svc := New(nil, WithLogger(func(string, ...any) {
				mu.Lock()
				logged++
				mu.Unlock()
			}))
			// A short client timeout is the request deadline here; the
			// loop must never block past it on the stalled cases.
			client := readerapi.NewClient(srv.URL,
				&http.Client{Timeout: 20 * time.Millisecond})

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				svc.PollLoop(ctx, client, time.Millisecond)
				close(done)
			}()

			if tc.name == "flapping" {
				// Up requests ingest; down requests log. Both must happen.
				waitFor(t, 5*time.Second, "successful polls through the flap", func() bool {
					return svc.Sightings() >= 0 && tc.inj.Requests() >= 4
				})
			}
			waitFor(t, 5*time.Second, "failed polls to be logged", func() bool {
				mu.Lock()
				defer mu.Unlock()
				return logged >= 2
			})

			start := time.Now()
			cancel()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("poll loop did not stop")
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("cancel-to-stop took %v", elapsed)
			}
		})
	}
}

// TestFailoverRedundantReaders is the acceptance integration test: one
// portal covered by two redundant readers (the paper's reader-redundancy
// configuration), each behind its own fault injector. Killing one reader
// mid-run must keep GET /api/tags serving and the tag store advancing via
// the survivor; after the dead reader returns, its breaker closes and
// polling resumes.
func TestFailoverRedundantReaders(t *testing.T) {
	portal, err := scenario.ObjectTracking(scenario.ObjectConfig{
		TagLocations: []scenario.BoxLocation{scenario.LocFront, scenario.LocSideIn},
		Antennas:     2,
		Readers:      2,
		DenseMode:    true, // redundant readers jam each other otherwise
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(portal.Readers) != 2 {
		t.Fatalf("portal has %d readers, want 2", len(portal.Readers))
	}

	// Each reader behind its own injector — independent failure domains.
	injectors := make([]*faultinject.Injector, 2)
	servers := make([]*httptest.Server, 2)
	for i, r := range portal.Readers {
		injectors[i] = faultinject.New(faultinject.NonePlan())
		servers[i] = httptest.NewServer(injectors[i].Middleware(readerapi.NewServer(r).Handler()))
		defer servers[i].Close()
	}

	svc := New(backend.NewPipeline(backend.NewWindowSmoother(2)),
		WithLogger(func(string, ...any) {}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Drive portal passes continuously so the reader buffers keep filling.
	go DrivePasses(ctx, portal, time.Millisecond, func(int, core.PassResult) {})

	var log transitionLog
	for i, srvr := range servers {
		cfg := fastConfig()
		cfg.JitterSeed = uint64(i)
		cfg.OnStateChange = log.hook
		go svc.Supervise(ctx, portal.Readers[i].Name(), readerapi.NewClient(srvr.URL, srvr.Client()), cfg)
	}

	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := api.Client().Get(api.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s: decoding: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	readerHealth := func(name string) ReaderHealth {
		for _, r := range svc.Health().Readers {
			if r.Name == name {
				return r
			}
		}
		return ReaderHealth{}
	}

	// Phase 1: both readers healthy, sightings accumulate.
	waitFor(t, 10*time.Second, "initial sightings via both readers", func() bool {
		h := svc.Health()
		return len(h.Readers) == 2 && h.Status == "ok" && svc.Sightings() > 0
	})

	// Phase 2: kill reader 1 mid-run.
	dead := portal.Readers[0].Name()
	survivor := portal.Readers[1].Name()
	injectors[0].Kill()
	waitFor(t, 10*time.Second, "breaker to open on the killed reader", func() bool {
		return readerHealth(dead).Breaker == "open"
	})
	var health HealthResponse
	if code := getJSON("/api/health", &health); code != http.StatusOK {
		t.Fatalf("/api/health while degraded = %d", code)
	}
	if health.Status != "degraded" {
		t.Errorf("health status with one dead reader = %q, want degraded", health.Status)
	}

	// The store must keep advancing on the survivor alone, and /api/tags
	// must keep serving.
	base := svc.Sightings()
	survivorPolls := readerHealth(survivor).Polls
	waitFor(t, 10*time.Second, "tag store advancing via the survivor", func() bool {
		return svc.Sightings() > base && readerHealth(survivor).Polls > survivorPolls
	})
	var state StateResponse
	if code := getJSON("/api/tags", &state); code != http.StatusOK {
		t.Fatalf("/api/tags during failover = %d", code)
	}
	if len(state.Tags) == 0 {
		t.Error("no tags served during failover")
	}
	if got := readerHealth(survivor).Breaker; got != "closed" {
		t.Errorf("survivor breaker = %q, want closed", got)
	}

	// Phase 3: the dead reader returns; its breaker must close and its
	// polling resume.
	injectors[0].Revive()
	waitFor(t, 10*time.Second, "breaker to close after revival", func() bool {
		return readerHealth(dead).Breaker == "closed"
	})
	revivedPolls := readerHealth(dead).Polls
	waitFor(t, 10*time.Second, "revived reader polling again", func() bool {
		return readerHealth(dead).Polls > revivedPolls
	})
	waitFor(t, 10*time.Second, "health back to ok", func() bool {
		return svc.Health().Status == "ok"
	})

	// The killed reader went through open and back to closed.
	wantSub := []string{
		fmt.Sprintf("%s:closed->open", dead),
		fmt.Sprintf("%s:open->half-open", dead),
		fmt.Sprintf("%s:half-open->closed", dead),
	}
	seq := log.snapshot()
	i := 0
	for _, tr := range seq {
		if i < len(wantSub) && tr == wantSub[i] {
			i++
		}
	}
	if i != len(wantSub) {
		t.Errorf("transitions %v do not contain the recovery sequence %v", seq, wantSub)
	}
}

// TestHealthEndpointEmptyService: no supervised readers is still "ok" —
// trackd may run with plain PollLoops.
func TestHealthEndpointEmptyService(t *testing.T) {
	svc := New(nil, WithLogger(func(string, ...any) {}))
	api := httptest.NewServer(svc.Handler())
	defer api.Close()
	resp, err := api.Client().Get(api.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/health = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Readers == nil || len(h.Readers) != 0 {
		t.Errorf("empty-service health = %+v", h)
	}
}

// TestAPIEmptyAndUnknown pins the JSON-shape bugfixes: /api/tags encodes
// [] (not null) on an empty store, /api/history 404s for an unknown EPC.
func TestAPIEmptyAndUnknown(t *testing.T) {
	svc := New(nil, WithLogger(func(string, ...any) {}))
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	resp, err := api.Client().Get(api.URL + "/api/tags")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var state struct {
		Tags json.RawMessage `json:"tags"`
	}
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatal(err)
	}
	if string(state.Tags) == "null" {
		t.Errorf("/api/tags encoded tags as null on an empty store: %s", body)
	}

	resp, err = api.Client().Get(api.URL + "/api/history?epc=35000000400000C00000000A")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-EPC history = %d, want 404", resp.StatusCode)
	}
}
