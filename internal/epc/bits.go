// Package epc implements the Electronic Product Code encodings carried by
// Gen-2 tags: MSB-first bit strings, the Gen-2 CRC-5 and CRC-16, and the
// SGTIN-96 / SSCC-96 / GID-96 binary schemes with their pure-identity URI
// forms.
package epc

import (
	"fmt"
	"strings"
)

// Bits is a mutable MSB-first bit string, the unit of exchange on the Gen-2
// air interface (commands and replies are not byte aligned).
//
// The zero value is an empty bit string ready to use.
type Bits struct {
	data []byte
	n    int
}

// NewBits returns a bit string preloaded with the n low-order bits of v,
// MSB first.
func NewBits(v uint64, n int) *Bits {
	b := &Bits{}
	b.Append(v, n)
	return b
}

// BitsFromBytes returns a bit string covering all bits of p (a copy).
func BitsFromBytes(p []byte) *Bits {
	b := &Bits{data: append([]byte(nil), p...), n: len(p) * 8}
	return b
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Append appends the w low-order bits of v, MSB first. Widths outside
// [0, 64] panic: they are programming errors, not data errors.
func (b *Bits) Append(v uint64, w int) {
	if w < 0 || w > 64 {
		panic(fmt.Sprintf("epc: bit width %d out of range", w))
	}
	for i := w - 1; i >= 0; i-- {
		b.AppendBit(v>>uint(i)&1 == 1)
	}
}

// AppendBit appends one bit.
func (b *Bits) AppendBit(bit bool) {
	if b.n%8 == 0 {
		b.data = append(b.data, 0)
	}
	if bit {
		b.data[b.n/8] |= 1 << uint(7-b.n%8)
	}
	b.n++
}

// AppendBits appends all of o's bits.
func (b *Bits) AppendBits(o *Bits) {
	for i := 0; i < o.n; i++ {
		b.AppendBit(o.Bit(i))
	}
}

// Bit returns bit i (0 = first appended). Out-of-range indexes panic.
func (b *Bits) Bit(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("epc: bit index %d out of range [0,%d)", i, b.n))
	}
	return b.data[i/8]>>uint(7-i%8)&1 == 1
}

// Uint extracts w bits starting at offset as an unsigned integer, MSB
// first. Reading past the end or widths outside [0, 64] panic.
func (b *Bits) Uint(offset, w int) uint64 {
	if w < 0 || w > 64 {
		panic(fmt.Sprintf("epc: bit width %d out of range", w))
	}
	var v uint64
	for i := 0; i < w; i++ {
		v <<= 1
		if b.Bit(offset + i) {
			v |= 1
		}
	}
	return v
}

// Bytes returns the bit string packed MSB-first into bytes; the final byte
// is zero-padded. The returned slice is a copy.
func (b *Bits) Bytes() []byte {
	return append([]byte(nil), b.data...)
}

// String renders the bits as '0'/'1' characters.
func (b *Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Clone returns an independent copy.
func (b *Bits) Clone() *Bits {
	return &Bits{data: append([]byte(nil), b.data...), n: b.n}
}

// Equal reports whether two bit strings have identical length and content.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := 0; i < b.n; i++ {
		if b.Bit(i) != o.Bit(i) {
			return false
		}
	}
	return true
}
