package epc

import (
	"math/rand/v2"
	"testing"
)

// Bit-serial reference implementations: the registers the table-driven
// CRCs must clock identically.

func refCRC16Register(frame *Bits, preset uint16) uint16 {
	reg := preset
	for i := 0; i < frame.Len(); i++ {
		msb := reg&0x8000 != 0
		in := frame.Bit(i)
		reg <<= 1
		if msb != in {
			reg ^= crc16Poly
		}
	}
	return reg
}

func refCRC5(frame *Bits) uint8 {
	reg := CRC5Preset
	for i := 0; i < frame.Len(); i++ {
		msb := reg&0b10000 != 0
		in := frame.Bit(i)
		reg = (reg << 1) & 0b11111
		if msb != in {
			reg ^= crc5Poly
		}
	}
	return reg
}

func randomFrame(r *rand.Rand, nbits int) *Bits {
	b := &Bits{}
	for i := 0; i < nbits; i++ {
		b.AppendBit(r.Uint64()&1 == 1)
	}
	return b
}

// TestCRC16TableMatchesBitSerial sweeps every frame length across the
// byte-alignment residues (0..7 tail bits) with many random payloads.
func TestCRC16TableMatchesBitSerial(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for nbits := 0; nbits <= 130; nbits++ {
		for trial := 0; trial < 8; trial++ {
			frame := randomFrame(r, nbits)
			if got, want := crc16Register(frame, CRC16Preset), refCRC16Register(frame, CRC16Preset); got != want {
				t.Fatalf("len %d: table register %#04x != bit-serial %#04x (frame %s)",
					nbits, got, want, frame)
			}
		}
	}
	// And longer random frames (whole Gen-2 EPC replies and beyond).
	for trial := 0; trial < 200; trial++ {
		frame := randomFrame(r, 8+r.IntN(512))
		if got, want := CRC16(frame), ^refCRC16Register(frame, CRC16Preset); got != want {
			t.Fatalf("len %d: CRC16 %#04x != reference %#04x", frame.Len(), got, want)
		}
	}
}

// TestCRC5TableMatchesBitSerial sweeps nibble-alignment residues (0..3
// tail bits) the same way.
func TestCRC5TableMatchesBitSerial(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for nbits := 0; nbits <= 68; nbits++ {
		for trial := 0; trial < 8; trial++ {
			frame := randomFrame(r, nbits)
			if got, want := CRC5(frame), refCRC5(frame); got != want {
				t.Fatalf("len %d: table CRC5 %#02x != bit-serial %#02x (frame %s)",
					nbits, got, want, frame)
			}
		}
	}
}

// TestCRC5CheckMatchesReference: the in-place prefix register must agree
// with the historical rebuild-the-body check for intact and corrupted
// frames alike.
func TestCRC5CheckMatchesReference(t *testing.T) {
	refCheck := func(frameWithCRC *Bits) bool {
		n := frameWithCRC.Len()
		if n < 5 {
			return false
		}
		body := &Bits{}
		for i := 0; i < n-5; i++ {
			body.AppendBit(frameWithCRC.Bit(i))
		}
		return uint8(frameWithCRC.Uint(n-5, 5)) == refCRC5(body)
	}
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 400; trial++ {
		body := randomFrame(r, r.IntN(64))
		frame := body.Clone()
		frame.Append(uint64(CRC5(body)), 5)
		if r.Uint64()&1 == 1 && frame.Len() > 0 {
			// Flip a random bit half the time.
			flipped := &Bits{}
			k := r.IntN(frame.Len())
			for i := 0; i < frame.Len(); i++ {
				bit := frame.Bit(i)
				if i == k {
					bit = !bit
				}
				flipped.AppendBit(bit)
			}
			frame = flipped
		}
		if got, want := CRC5Check(frame), refCheck(frame); got != want {
			t.Fatalf("len %d: CRC5Check = %v, reference = %v", frame.Len(), got, want)
		}
	}
}

func BenchmarkCRC16Table(b *testing.B) {
	frame := randomFrame(rand.New(rand.NewPCG(7, 8)), 112)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CRC16(frame)
	}
}

func BenchmarkCRC5Table(b *testing.B) {
	frame := randomFrame(rand.New(rand.NewPCG(9, 10)), 22)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CRC5(frame)
	}
}
