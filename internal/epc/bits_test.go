package epc

import (
	"testing"
	"testing/quick"
)

func TestBitsAppendAndRead(t *testing.T) {
	b := &Bits{}
	b.Append(0b101, 3)
	b.Append(0xF0, 8)
	if b.Len() != 11 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.String(); got != "10111110000" {
		t.Fatalf("String = %q", got)
	}
	if got := b.Uint(0, 3); got != 0b101 {
		t.Errorf("Uint(0,3) = %b", got)
	}
	if got := b.Uint(3, 8); got != 0xF0 {
		t.Errorf("Uint(3,8) = %#x", got)
	}
}

func TestBitsZeroWidthAppend(t *testing.T) {
	b := &Bits{}
	b.Append(0xFFFF, 0)
	if b.Len() != 0 {
		t.Errorf("zero-width append changed length: %d", b.Len())
	}
}

func TestBitsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append(…, 65) did not panic")
		}
	}()
	(&Bits{}).Append(0, 65)
}

func TestBitsPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bit(5) on 3-bit string did not panic")
		}
	}()
	NewBits(0b101, 3).Bit(5)
}

func TestBitsFromBytesAndBytes(t *testing.T) {
	in := []byte{0xDE, 0xAD}
	b := BitsFromBytes(in)
	if b.Len() != 16 {
		t.Fatalf("Len = %d", b.Len())
	}
	out := b.Bytes()
	if out[0] != 0xDE || out[1] != 0xAD {
		t.Fatalf("Bytes = %x", out)
	}
	// Both directions are copies.
	in[0] = 0
	out[1] = 0
	if b.Uint(0, 8) != 0xDE || b.Uint(8, 8) != 0xAD {
		t.Fatal("Bits aliased caller memory")
	}
}

func TestBitsAppendBitsAndEqual(t *testing.T) {
	a := NewBits(0b1101, 4)
	b := NewBits(0b11, 2)
	a.AppendBits(b)
	want := NewBits(0b110111, 6)
	if !a.Equal(want) {
		t.Fatalf("AppendBits = %s, want %s", a, want)
	}
	if a.Equal(NewBits(0b110111, 7)) {
		t.Error("Equal ignored length")
	}
	if a.Equal(NewBits(0b110110, 6)) {
		t.Error("Equal ignored content")
	}
}

func TestBitsClone(t *testing.T) {
	a := NewBits(0b1010, 4)
	c := a.Clone()
	a.AppendBit(true)
	if c.Len() != 4 {
		t.Fatal("clone shares length with original")
	}
	c.AppendBit(false)
	c2 := c.Uint(0, 5)
	a2 := a.Uint(0, 5)
	if c2 == a2 {
		t.Fatal("clone shares storage with original")
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w % 65)
		masked := v
		if width < 64 {
			masked = v & ((1 << uint(width)) - 1)
		}
		b := &Bits{}
		b.Append(0b1, 1) // misalign deliberately
		b.Append(masked, width)
		return b.Uint(1, width) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
