package epc

import (
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// Standard check string "123456789": CRC-16/GENIBUS (the Gen-2 CRC:
	// CCITT poly, preset 0xFFFF, ones-complement output) yields 0xD64E.
	b := BitsFromBytes([]byte("123456789"))
	if got := CRC16(b); got != 0xD64E {
		t.Errorf("CRC16(123456789) = %#04x, want 0xD64E", got)
	}
}

func TestCRC16EmptyFrame(t *testing.T) {
	// Register never advances: result is ^preset.
	if got := CRC16(&Bits{}); got != ^CRC16Preset {
		t.Errorf("CRC16(empty) = %#04x, want %#04x", got, ^CRC16Preset)
	}
}

func TestCRC16ResidueRoundTrip(t *testing.T) {
	frame := NewBits(0b1011001110001111, 16)
	frame.Append(0x3A, 7) // deliberately not byte aligned
	crc := CRC16(frame)
	whole := frame.Clone()
	whole.Append(uint64(crc), 16)
	if !CRC16Check(whole) {
		t.Fatal("intact frame failed CRC16Check")
	}
}

func TestCRC16DetectsAnySingleBitError(t *testing.T) {
	frame := NewBits(0xDEADBEEF, 32)
	frame.Append(0x5, 3)
	whole := frame.Clone()
	whole.Append(uint64(CRC16(frame)), 16)
	for i := 0; i < whole.Len(); i++ {
		corrupt := &Bits{}
		for j := 0; j < whole.Len(); j++ {
			bit := whole.Bit(j)
			if j == i {
				bit = !bit
			}
			corrupt.AppendBit(bit)
		}
		if CRC16Check(corrupt) {
			t.Fatalf("single-bit error at %d not detected", i)
		}
	}
}

func TestCRC16CheckTooShort(t *testing.T) {
	if CRC16Check(NewBits(0x5, 3)) {
		t.Error("frames shorter than a CRC must fail")
	}
}

func TestCRC16RoundTripProperty(t *testing.T) {
	f := func(payload []byte, extra uint8) bool {
		frame := BitsFromBytes(payload)
		frame.Append(uint64(extra&0x7F), int(extra%8)) // ragged tail
		whole := frame.Clone()
		whole.Append(uint64(CRC16(frame)), 16)
		return CRC16Check(whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC5RoundTrip(t *testing.T) {
	// A Query command body is 17 bits before its CRC-5.
	frame := NewBits(0b10001000000010101, 17)
	crc := CRC5(frame)
	if crc > 0b11111 {
		t.Fatalf("CRC5 out of range: %#x", crc)
	}
	whole := frame.Clone()
	whole.Append(uint64(crc), 5)
	if !CRC5Check(whole) {
		t.Fatal("intact frame failed CRC5Check")
	}
}

func TestCRC5DetectsSingleBitErrors(t *testing.T) {
	frame := NewBits(0b10001010101010101, 17)
	whole := frame.Clone()
	whole.Append(uint64(CRC5(frame)), 5)
	for i := 0; i < whole.Len(); i++ {
		corrupt := &Bits{}
		for j := 0; j < whole.Len(); j++ {
			bit := whole.Bit(j)
			if j == i {
				bit = !bit
			}
			corrupt.AppendBit(bit)
		}
		if CRC5Check(corrupt) {
			t.Fatalf("single-bit error at %d not detected", i)
		}
	}
}

func TestCRC5CheckTooShort(t *testing.T) {
	if CRC5Check(NewBits(0x3, 4)) {
		t.Error("frames shorter than a CRC-5 must fail")
	}
}

func TestCRC5RoundTripProperty(t *testing.T) {
	f := func(v uint32, w uint8) bool {
		width := int(w%28) + 5
		frame := NewBits(uint64(v)&((1<<uint(width))-1), width)
		whole := frame.Clone()
		whole.Append(uint64(CRC5(frame)), 5)
		return CRC5Check(whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
