package epc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGRAI96RoundTrip(t *testing.T) {
	g := GRAI96{Filter: 3, CompanyDigits: 7, Company: 614141, AssetType: 12345, Serial: 400}
	c, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if c.Header() != HeaderGRAI96 {
		t.Fatalf("header = %#x", c.Header())
	}
	back, err := DecodeGRAI96(c)
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Errorf("roundtrip = %+v, want %+v", back, g)
	}
	if got, want := g.URI(), "urn:epc:id:grai:0614141.12345.400"; got != want {
		t.Errorf("URI = %s, want %s", got, want)
	}
	if got := c.URI(); got != g.URI() {
		t.Errorf("Code.URI dispatch = %s", got)
	}
}

func TestGRAI96Validation(t *testing.T) {
	base := GRAI96{Filter: 1, CompanyDigits: 7, Company: 614141, AssetType: 1, Serial: 1}
	tests := []struct {
		name string
		mut  func(*GRAI96)
	}{
		{"digits low", func(g *GRAI96) { g.CompanyDigits = 5 }},
		{"digits high", func(g *GRAI96) { g.CompanyDigits = 13 }},
		{"filter", func(g *GRAI96) { g.Filter = 9 }},
		{"company overflow", func(g *GRAI96) { g.Company = 10_000_000 }},
		{"asset type overflow", func(g *GRAI96) { g.AssetType = 100_000 }},
		{"serial overflow", func(g *GRAI96) { g.Serial = 1 << 38 }},
		{"asset type with 12-digit company", func(g *GRAI96) { g.CompanyDigits = 12; g.Company = 1; g.AssetType = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := base
			tt.mut(&g)
			if _, err := g.Encode(); !errors.Is(err, ErrBadEPC) {
				t.Errorf("err = %v, want ErrBadEPC", err)
			}
		})
	}
}

func TestGRAI96RoundTripProperty(t *testing.T) {
	f := func(filter, cd uint8, company, assetType, serial uint64) bool {
		digits := int(cd%7) + 6
		e := graiPartitions[12-digits]
		g := GRAI96{
			Filter:        filter % 8,
			CompanyDigits: digits,
			Company:       company % pow10(e.companyDigits),
			Serial:        serial % (1 << 38),
		}
		if e.refDigits > 0 {
			g.AssetType = assetType % pow10(e.refDigits)
		}
		c, err := g.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeGRAI96(c)
		return err == nil && back == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSGLN96RoundTrip(t *testing.T) {
	s := SGLN96{Filter: 1, CompanyDigits: 7, Company: 614141, LocationRef: 12345, Extension: 400}
	c, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if c.Header() != HeaderSGLN96 {
		t.Fatalf("header = %#x", c.Header())
	}
	back, err := DecodeSGLN96(c)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("roundtrip = %+v, want %+v", back, s)
	}
	if got, want := s.URI(), "urn:epc:id:sgln:0614141.12345.400"; got != want {
		t.Errorf("URI = %s, want %s", got, want)
	}
}

func TestSGLN96Validation(t *testing.T) {
	if _, err := (SGLN96{CompanyDigits: 7, Company: 1, Extension: 1 << 41}).Encode(); !errors.Is(err, ErrBadEPC) {
		t.Error("extension overflow accepted")
	}
	if _, err := (SGLN96{CompanyDigits: 12, Company: 1, LocationRef: 5}).Encode(); !errors.Is(err, ErrBadEPC) {
		t.Error("location ref with 12-digit company accepted")
	}
	if _, err := (SGLN96{CompanyDigits: 7, Company: 1, LocationRef: 100_000}).Encode(); !errors.Is(err, ErrBadEPC) {
		t.Error("location ref overflow accepted")
	}
}

func TestSGLN96RoundTripProperty(t *testing.T) {
	f := func(filter, cd uint8, company, locRef, ext uint64) bool {
		digits := int(cd%7) + 6
		e := sglnPartitions[12-digits]
		s := SGLN96{
			Filter:        filter % 8,
			CompanyDigits: digits,
			Company:       company % pow10(e.companyDigits),
			Extension:     ext % (1 << 41),
		}
		if e.refDigits > 0 {
			s.LocationRef = locRef % pow10(e.refDigits)
		}
		c, err := s.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeSGLN96(c)
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseURINewSchemes(t *testing.T) {
	for _, uri := range []string{
		"urn:epc:id:grai:0614141.12345.400",
		"urn:epc:id:sgln:0614141.12345.400",
	} {
		c, err := ParseURI(uri)
		if err != nil {
			t.Errorf("ParseURI(%q): %v", uri, err)
			continue
		}
		if got := c.URI(); got != uri {
			t.Errorf("roundtrip %q -> %q", uri, got)
		}
	}
	for _, bad := range []string{
		"urn:epc:id:grai:1.2",
		"urn:epc:id:sgln:1.2.3.4",
	} {
		if _, err := ParseURI(bad); !errors.Is(err, ErrBadEPC) {
			t.Errorf("ParseURI(%q) err = %v", bad, err)
		}
	}
}
