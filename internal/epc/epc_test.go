package epc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSGTIN96KnownEncoding(t *testing.T) {
	// The canonical TDS example: company 0614141 (7 digits), item 812345,
	// serial 6789, filter 3 (unit load) → partition 5.
	s := SGTIN96{Filter: 3, CompanyDigits: 7, Company: 614141, ItemRef: 812345, Serial: 6789}
	c, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Hex(), "3074257BF7194E4000001A85"; got != want {
		t.Errorf("Encode = %s, want %s", got, want)
	}
	back, err := DecodeSGTIN96(c)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("roundtrip = %+v, want %+v", back, s)
	}
	if got, want := s.URI(), "urn:epc:id:sgtin:0614141.812345.6789"; got != want {
		t.Errorf("URI = %s, want %s", got, want)
	}
}

func TestSGTIN96Validation(t *testing.T) {
	base := SGTIN96{Filter: 1, CompanyDigits: 7, Company: 614141, ItemRef: 812345, Serial: 1}
	tests := []struct {
		name string
		mut  func(*SGTIN96)
	}{
		{"company digits too small", func(s *SGTIN96) { s.CompanyDigits = 5 }},
		{"company digits too big", func(s *SGTIN96) { s.CompanyDigits = 13 }},
		{"filter overflow", func(s *SGTIN96) { s.Filter = 8 }},
		{"company overflow", func(s *SGTIN96) { s.Company = 10_000_000 }},
		{"item overflow", func(s *SGTIN96) { s.ItemRef = 1_000_000 }},
		{"serial overflow", func(s *SGTIN96) { s.Serial = 1 << 38 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			tt.mut(&s)
			if _, err := s.Encode(); !errors.Is(err, ErrBadEPC) {
				t.Errorf("err = %v, want ErrBadEPC", err)
			}
		})
	}
	if _, err := base.Encode(); err != nil {
		t.Errorf("base should encode: %v", err)
	}
}

func TestSGTIN96RoundTripProperty(t *testing.T) {
	f := func(filter uint8, cd uint8, company, item, serial uint64) bool {
		digits := int(cd%7) + 6 // 6..12
		e := sgtinPartitions[12-digits]
		s := SGTIN96{
			Filter:        filter % 8,
			CompanyDigits: digits,
			Company:       company % pow10(e.companyDigits),
			ItemRef:       item % pow10(e.refDigits),
			Serial:        serial % (1 << 38),
		}
		c, err := s.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeSGTIN96(c)
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSSCC96RoundTrip(t *testing.T) {
	s := SSCC96{Filter: 2, CompanyDigits: 7, Company: 614141, SerialRef: 1234567890}
	c, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if c.Header() != HeaderSSCC96 {
		t.Fatalf("header = %#x", c.Header())
	}
	back, err := DecodeSSCC96(c)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("roundtrip = %+v, want %+v", back, s)
	}
	if got, want := s.URI(), "urn:epc:id:sscc:0614141.1234567890"; got != want {
		t.Errorf("URI = %s, want %s", got, want)
	}
	// Reserved bits must be zero.
	if c.uint(72, 24) != 0 {
		t.Error("reserved bits not zero")
	}
}

func TestSSCC96RoundTripProperty(t *testing.T) {
	f := func(filter uint8, cd uint8, company, serial uint64) bool {
		digits := int(cd%7) + 6
		e := ssccPartitions[12-digits]
		max := pow10(e.refDigits)
		if lim := uint64(1) << uint(e.refBits); lim < max {
			max = lim
		}
		s := SSCC96{
			Filter:        filter % 8,
			CompanyDigits: digits,
			Company:       company % pow10(e.companyDigits),
			SerialRef:     serial % max,
		}
		c, err := s.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeSSCC96(c)
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGID96RoundTrip(t *testing.T) {
	g := GID96{Manager: 95100000, Class: 12345, Serial: 400}
	c, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeGID96(c)
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Errorf("roundtrip = %+v, want %+v", back, g)
	}
	if got, want := g.URI(), "urn:epc:id:gid:95100000.12345.400"; got != want {
		t.Errorf("URI = %s, want %s", got, want)
	}
}

func TestGID96Validation(t *testing.T) {
	for _, g := range []GID96{
		{Manager: 1 << 28},
		{Class: 1 << 24},
		{Serial: 1 << 36},
	} {
		if _, err := g.Encode(); !errors.Is(err, ErrBadEPC) {
			t.Errorf("%+v: err = %v, want ErrBadEPC", g, err)
		}
	}
}

func TestGID96RoundTripProperty(t *testing.T) {
	f := func(m, cl, s uint64) bool {
		g := GID96{Manager: m % (1 << 28), Class: cl % (1 << 24), Serial: s % (1 << 36)}
		c, err := g.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeGID96(c)
		return err == nil && back == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseHex(t *testing.T) {
	c, err := ParseHex("3074257BF7194E4000001A85")
	if err != nil {
		t.Fatal(err)
	}
	if c.Header() != HeaderSGTIN96 {
		t.Errorf("header = %#x", c.Header())
	}
	for _, bad := range []string{"", "zz", "3074257BF7194E4000001A", "3074257BF7194E4000001A85FF"} {
		if _, err := ParseHex(bad); !errors.Is(err, ErrBadEPC) {
			t.Errorf("ParseHex(%q) err = %v, want ErrBadEPC", bad, err)
		}
	}
}

func TestCodeBitsRoundTrip(t *testing.T) {
	c, _ := ParseHex("3074257BF7194E4000001A85")
	back, err := CodeFromBits(c.Bits())
	if err != nil || back != c {
		t.Errorf("bits roundtrip = %v, %v", back, err)
	}
	short := NewBits(1, 64)
	short.Append(0, 31)
	if _, err := CodeFromBits(short); !errors.Is(err, ErrBadEPC) {
		t.Error("CodeFromBits accepted 95 bits")
	}
}

func TestCodeURIDispatch(t *testing.T) {
	sg, _ := SGTIN96{Filter: 1, CompanyDigits: 6, Company: 123456, ItemRef: 1234567, Serial: 42}.Encode()
	if !strings.HasPrefix(sg.URI(), "urn:epc:id:sgtin:") {
		t.Errorf("sgtin URI = %s", sg.URI())
	}
	gid, _ := GID96{Manager: 1, Class: 2, Serial: 3}.Encode()
	if got, want := gid.URI(), "urn:epc:id:gid:1.2.3"; got != want {
		t.Errorf("gid URI = %s, want %s", got, want)
	}
	var unknown Code
	unknown[0] = 0xFF
	if !strings.HasPrefix(unknown.URI(), "urn:epc:raw:96.") {
		t.Errorf("unknown URI = %s", unknown.URI())
	}
}

func TestParseURI(t *testing.T) {
	tests := []string{
		"urn:epc:id:sgtin:0614141.812345.6789",
		"urn:epc:id:sscc:0614141.1234567890",
		"urn:epc:id:gid:95100000.12345.400",
	}
	for _, uri := range tests {
		c, err := ParseURI(uri)
		if err != nil {
			t.Errorf("ParseURI(%q): %v", uri, err)
			continue
		}
		if got := c.URI(); got != uri {
			t.Errorf("roundtrip %q -> %q", uri, got)
		}
	}
	for _, bad := range []string{
		"urn:epc:id:sgtin:1.2",     // wrong arity
		"urn:epc:id:sscc:1.2.3",    // wrong arity
		"urn:epc:id:unknown:1.2.3", // unknown scheme
		"http://example.com",       // not a URN
		"urn:epc:id:gid:x.2.3",     // non-numeric
		"urn:epc:id:sgtinmissing",  // no colon body
		"urn:epc:id:gid:1.2.3.4",   // wrong arity
	} {
		if _, err := ParseURI(bad); !errors.Is(err, ErrBadEPC) {
			t.Errorf("ParseURI(%q) err = %v, want ErrBadEPC", bad, err)
		}
	}
}
