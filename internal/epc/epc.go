package epc

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Code is a 96-bit EPC as stored in a tag's EPC memory bank.
type Code [12]byte

// Scheme headers (EPC Tag Data Standard).
const (
	HeaderSGTIN96 = 0x30
	HeaderSSCC96  = 0x31
	HeaderGID96   = 0x35
)

// ErrBadEPC is wrapped by all decode errors in this package.
var ErrBadEPC = errors.New("epc: invalid encoding")

// Header returns the 8-bit scheme header.
func (c Code) Header() uint8 { return c[0] }

// Hex returns the canonical upper-case hex form (24 digits).
func (c Code) Hex() string { return strings.ToUpper(hex.EncodeToString(c[:])) }

// String implements fmt.Stringer.
func (c Code) String() string { return c.Hex() }

// ParseHex parses a 24-digit hex EPC. It decodes into the Code directly
// (no intermediate buffer), so the ingest path can parse reader tag lists
// without allocating.
func ParseHex(s string) (Code, error) {
	var c Code
	s = strings.TrimSpace(s)
	if len(s) != 24 {
		return c, fmt.Errorf("%w: want 96 bits, got %d hex digits", ErrBadEPC, len(s))
	}
	for i := 0; i < 12; i++ {
		hi, ok1 := fromHexDigit(s[2*i])
		lo, ok2 := fromHexDigit(s[2*i+1])
		if !ok1 || !ok2 {
			return Code{}, fmt.Errorf("%w: invalid hex digit in %q", ErrBadEPC, s)
		}
		c[i] = hi<<4 | lo
	}
	return c, nil
}

func fromHexDigit(b byte) (byte, bool) {
	switch {
	case '0' <= b && b <= '9':
		return b - '0', true
	case 'a' <= b && b <= 'f':
		return b - 'a' + 10, true
	case 'A' <= b && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

// Compare orders codes bytewise: negative when c < o, zero when equal,
// positive when c > o. Because upper-case hex encoding is monotone in the
// underlying bytes, this is exactly the Hex()-string order without the
// two string allocations per comparison.
func (c Code) Compare(o Code) int {
	for i := range c {
		if c[i] != o[i] {
			if c[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Bits returns the code as a 96-bit string.
func (c Code) Bits() *Bits { return BitsFromBytes(c[:]) }

// CodeFromBits rebuilds a Code from a 96-bit string.
func CodeFromBits(b *Bits) (Code, error) {
	var c Code
	if b.Len() != 96 {
		return c, fmt.Errorf("%w: want 96 bits, got %d", ErrBadEPC, b.Len())
	}
	copy(c[:], b.Bytes())
	return c, nil
}

// uint extracts w bits starting at bit offset.
func (c Code) uint(offset, w int) uint64 { return c.Bits().Uint(offset, w) }

// partitionEntry describes one row of a TDS partition table.
type partitionEntry struct {
	companyBits, companyDigits int
	refBits, refDigits         int
}

// SGTIN-96 partition table: company prefix and (indicator + item reference).
var sgtinPartitions = [7]partitionEntry{
	{40, 12, 4, 1},
	{37, 11, 7, 2},
	{34, 10, 10, 3},
	{30, 9, 14, 4},
	{27, 8, 17, 5},
	{24, 7, 20, 6},
	{20, 6, 24, 7},
}

// SSCC-96 partition table: company prefix and (extension + serial reference).
var ssccPartitions = [7]partitionEntry{
	{40, 12, 18, 5},
	{37, 11, 21, 6},
	{34, 10, 24, 7},
	{30, 9, 28, 8},
	{27, 8, 31, 9},
	{24, 7, 34, 10},
	{20, 6, 38, 11},
}

func pow10(d int) uint64 {
	v := uint64(1)
	for i := 0; i < d; i++ {
		v *= 10
	}
	return v
}

// SGTIN96 identifies a trade item instance: the scheme the paper's
// case-level and item-level tagging scenarios use.
type SGTIN96 struct {
	Filter        uint8  // 3 bits: 1 = POS item, 2 = case, 3 = pallet, ...
	CompanyDigits int    // length of the GS1 company prefix, 6..12 digits
	Company       uint64 // company prefix value
	ItemRef       uint64 // indicator digit + item reference
	Serial        uint64 // 38-bit serial number
}

// Encode packs the SGTIN-96 into a Code.
func (s SGTIN96) Encode() (Code, error) {
	var c Code
	if s.CompanyDigits < 6 || s.CompanyDigits > 12 {
		return c, fmt.Errorf("%w: company prefix digits %d out of range [6,12]", ErrBadEPC, s.CompanyDigits)
	}
	p := 12 - s.CompanyDigits
	e := sgtinPartitions[p]
	if s.Filter > 7 {
		return c, fmt.Errorf("%w: filter %d exceeds 3 bits", ErrBadEPC, s.Filter)
	}
	if s.Company >= pow10(e.companyDigits) {
		return c, fmt.Errorf("%w: company %d exceeds %d digits", ErrBadEPC, s.Company, e.companyDigits)
	}
	if s.ItemRef >= pow10(e.refDigits) {
		return c, fmt.Errorf("%w: item reference %d exceeds %d digits", ErrBadEPC, s.ItemRef, e.refDigits)
	}
	if s.Serial >= 1<<38 {
		return c, fmt.Errorf("%w: serial %d exceeds 38 bits", ErrBadEPC, s.Serial)
	}
	b := &Bits{}
	b.Append(HeaderSGTIN96, 8)
	b.Append(uint64(s.Filter), 3)
	b.Append(uint64(p), 3)
	b.Append(s.Company, e.companyBits)
	b.Append(s.ItemRef, e.refBits)
	b.Append(s.Serial, 38)
	return CodeFromBits(b)
}

// DecodeSGTIN96 unpacks an SGTIN-96 Code.
func DecodeSGTIN96(c Code) (SGTIN96, error) {
	if c.Header() != HeaderSGTIN96 {
		return SGTIN96{}, fmt.Errorf("%w: header %#x is not SGTIN-96", ErrBadEPC, c.Header())
	}
	p := int(c.uint(11, 3))
	if p > 6 {
		return SGTIN96{}, fmt.Errorf("%w: partition %d out of range", ErrBadEPC, p)
	}
	e := sgtinPartitions[p]
	s := SGTIN96{
		Filter:        uint8(c.uint(8, 3)),
		CompanyDigits: e.companyDigits,
		Company:       c.uint(14, e.companyBits),
		ItemRef:       c.uint(14+e.companyBits, e.refBits),
		Serial:        c.uint(14+e.companyBits+e.refBits, 38),
	}
	if s.Company >= pow10(e.companyDigits) || s.ItemRef >= pow10(e.refDigits) {
		return SGTIN96{}, fmt.Errorf("%w: field exceeds its decimal capacity", ErrBadEPC)
	}
	return s, nil
}

// URI returns the pure-identity URI, e.g.
// urn:epc:id:sgtin:0614141.812345.6789.
func (s SGTIN96) URI() string {
	e := sgtinPartitions[12-s.CompanyDigits]
	return fmt.Sprintf("urn:epc:id:sgtin:%0*d.%0*d.%d",
		e.companyDigits, s.Company, e.refDigits, s.ItemRef, s.Serial)
}

// SSCC96 identifies a logistic unit (pallet/shipment).
type SSCC96 struct {
	Filter        uint8
	CompanyDigits int
	Company       uint64
	SerialRef     uint64 // extension digit + serial reference
}

// Encode packs the SSCC-96 into a Code.
func (s SSCC96) Encode() (Code, error) {
	var c Code
	if s.CompanyDigits < 6 || s.CompanyDigits > 12 {
		return c, fmt.Errorf("%w: company prefix digits %d out of range [6,12]", ErrBadEPC, s.CompanyDigits)
	}
	p := 12 - s.CompanyDigits
	e := ssccPartitions[p]
	if s.Filter > 7 {
		return c, fmt.Errorf("%w: filter %d exceeds 3 bits", ErrBadEPC, s.Filter)
	}
	if s.Company >= pow10(e.companyDigits) {
		return c, fmt.Errorf("%w: company %d exceeds %d digits", ErrBadEPC, s.Company, e.companyDigits)
	}
	if s.SerialRef >= pow10(e.refDigits) || s.SerialRef >= 1<<uint(e.refBits) {
		return c, fmt.Errorf("%w: serial reference %d exceeds %d digits", ErrBadEPC, s.SerialRef, e.refDigits)
	}
	b := &Bits{}
	b.Append(HeaderSSCC96, 8)
	b.Append(uint64(s.Filter), 3)
	b.Append(uint64(p), 3)
	b.Append(s.Company, e.companyBits)
	b.Append(s.SerialRef, e.refBits)
	b.Append(0, 24) // reserved
	return CodeFromBits(b)
}

// DecodeSSCC96 unpacks an SSCC-96 Code.
func DecodeSSCC96(c Code) (SSCC96, error) {
	if c.Header() != HeaderSSCC96 {
		return SSCC96{}, fmt.Errorf("%w: header %#x is not SSCC-96", ErrBadEPC, c.Header())
	}
	p := int(c.uint(11, 3))
	if p > 6 {
		return SSCC96{}, fmt.Errorf("%w: partition %d out of range", ErrBadEPC, p)
	}
	e := ssccPartitions[p]
	s := SSCC96{
		Filter:        uint8(c.uint(8, 3)),
		CompanyDigits: e.companyDigits,
		Company:       c.uint(14, e.companyBits),
		SerialRef:     c.uint(14+e.companyBits, e.refBits),
	}
	if s.Company >= pow10(e.companyDigits) || s.SerialRef >= pow10(e.refDigits) {
		return SSCC96{}, fmt.Errorf("%w: field exceeds its decimal capacity", ErrBadEPC)
	}
	return s, nil
}

// URI returns the pure-identity URI, e.g. urn:epc:id:sscc:0614141.1234567890.
func (s SSCC96) URI() string {
	e := ssccPartitions[12-s.CompanyDigits]
	return fmt.Sprintf("urn:epc:id:sscc:%0*d.%0*d",
		e.companyDigits, s.Company, e.refDigits, s.SerialRef)
}

// GID96 is the general-identifier scheme, used by the simulator for tags
// that are not tied to a GS1 company prefix (badge tags, test tags).
type GID96 struct {
	Manager uint64 // 28 bits
	Class   uint64 // 24 bits
	Serial  uint64 // 36 bits
}

// Encode packs the GID-96 into a Code.
func (g GID96) Encode() (Code, error) {
	var c Code
	if g.Manager >= 1<<28 {
		return c, fmt.Errorf("%w: manager %d exceeds 28 bits", ErrBadEPC, g.Manager)
	}
	if g.Class >= 1<<24 {
		return c, fmt.Errorf("%w: class %d exceeds 24 bits", ErrBadEPC, g.Class)
	}
	if g.Serial >= 1<<36 {
		return c, fmt.Errorf("%w: serial %d exceeds 36 bits", ErrBadEPC, g.Serial)
	}
	b := &Bits{}
	b.Append(HeaderGID96, 8)
	b.Append(g.Manager, 28)
	b.Append(g.Class, 24)
	b.Append(g.Serial, 36)
	return CodeFromBits(b)
}

// DecodeGID96 unpacks a GID-96 Code.
func DecodeGID96(c Code) (GID96, error) {
	if c.Header() != HeaderGID96 {
		return GID96{}, fmt.Errorf("%w: header %#x is not GID-96", ErrBadEPC, c.Header())
	}
	return GID96{
		Manager: c.uint(8, 28),
		Class:   c.uint(36, 24),
		Serial:  c.uint(60, 36),
	}, nil
}

// URI returns the pure-identity URI, e.g. urn:epc:id:gid:95100000.12345.400.
func (g GID96) URI() string {
	return fmt.Sprintf("urn:epc:id:gid:%d.%d.%d", g.Manager, g.Class, g.Serial)
}

// URI renders any known 96-bit scheme as a pure-identity URI, falling back
// to a raw form for unknown headers.
func (c Code) URI() string {
	switch c.Header() {
	case HeaderSGTIN96:
		if s, err := DecodeSGTIN96(c); err == nil {
			return s.URI()
		}
	case HeaderSSCC96:
		if s, err := DecodeSSCC96(c); err == nil {
			return s.URI()
		}
	case HeaderGID96:
		if g, err := DecodeGID96(c); err == nil {
			return g.URI()
		}
	case HeaderGRAI96:
		if g, err := DecodeGRAI96(c); err == nil {
			return g.URI()
		}
	case HeaderSGLN96:
		if s, err := DecodeSGLN96(c); err == nil {
			return s.URI()
		}
	}
	return "urn:epc:raw:96." + c.Hex()
}

// ParseURI parses a pure-identity URI of any scheme this package encodes
// and returns the corresponding Code.
func ParseURI(uri string) (Code, error) {
	var c Code
	rest, ok := strings.CutPrefix(uri, "urn:epc:id:")
	if !ok {
		return c, fmt.Errorf("%w: %q is not an EPC pure-identity URI", ErrBadEPC, uri)
	}
	scheme, body, ok := strings.Cut(rest, ":")
	if !ok {
		return c, fmt.Errorf("%w: missing scheme body in %q", ErrBadEPC, uri)
	}
	parts := strings.Split(body, ".")
	field := func(i int) (uint64, int, error) {
		v, err := strconv.ParseUint(parts[i], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: field %q: %v", ErrBadEPC, parts[i], err)
		}
		return v, len(parts[i]), nil
	}
	switch scheme {
	case "sgtin":
		if len(parts) != 3 {
			return c, fmt.Errorf("%w: sgtin wants 3 fields, got %d", ErrBadEPC, len(parts))
		}
		company, cd, err := field(0)
		if err != nil {
			return c, err
		}
		item, _, err := field(1)
		if err != nil {
			return c, err
		}
		serial, _, err := field(2)
		if err != nil {
			return c, err
		}
		return SGTIN96{Filter: 1, CompanyDigits: cd, Company: company, ItemRef: item, Serial: serial}.Encode()
	case "sscc":
		if len(parts) != 2 {
			return c, fmt.Errorf("%w: sscc wants 2 fields, got %d", ErrBadEPC, len(parts))
		}
		company, cd, err := field(0)
		if err != nil {
			return c, err
		}
		serial, _, err := field(1)
		if err != nil {
			return c, err
		}
		return SSCC96{Filter: 1, CompanyDigits: cd, Company: company, SerialRef: serial}.Encode()
	case "gid":
		if len(parts) != 3 {
			return c, fmt.Errorf("%w: gid wants 3 fields, got %d", ErrBadEPC, len(parts))
		}
		manager, _, err := field(0)
		if err != nil {
			return c, err
		}
		class, _, err := field(1)
		if err != nil {
			return c, err
		}
		serial, _, err := field(2)
		if err != nil {
			return c, err
		}
		return GID96{Manager: manager, Class: class, Serial: serial}.Encode()
	case "grai":
		if len(parts) != 3 {
			return c, fmt.Errorf("%w: grai wants 3 fields, got %d", ErrBadEPC, len(parts))
		}
		company, cd, err := field(0)
		if err != nil {
			return c, err
		}
		assetType, _, err := field(1)
		if err != nil {
			return c, err
		}
		serial, _, err := field(2)
		if err != nil {
			return c, err
		}
		return GRAI96{Filter: 1, CompanyDigits: cd, Company: company, AssetType: assetType, Serial: serial}.Encode()
	case "sgln":
		if len(parts) != 3 {
			return c, fmt.Errorf("%w: sgln wants 3 fields, got %d", ErrBadEPC, len(parts))
		}
		company, cd, err := field(0)
		if err != nil {
			return c, err
		}
		locRef, _, err := field(1)
		if err != nil {
			return c, err
		}
		ext, _, err := field(2)
		if err != nil {
			return c, err
		}
		return SGLN96{Filter: 1, CompanyDigits: cd, Company: company, LocationRef: locRef, Extension: ext}.Encode()
	default:
		return c, fmt.Errorf("%w: unsupported scheme %q", ErrBadEPC, scheme)
	}
}
