package epc

// Gen-2 link CRCs, computed bit-serially because air-interface frames are
// not byte aligned.
//
// CRC-16: ISO/IEC 13239 (CCITT polynomial x^16+x^12+x^5+1), preset 0xFFFF,
// and the value appended to a frame is the ones-complement of the register.
// A receiver that runs the register over frame+CRC sees the constant
// residue 0x1D0F on an intact frame.
//
// CRC-5: polynomial x^5+x^3+1, preset 0b01001, appended uninverted; the
// receiver recomputes over the frame body and compares.

// CRC16Preset is the Gen-2 CRC-16 register preset.
const CRC16Preset uint16 = 0xFFFF

// CRC16Residue is the register value after running over an intact
// frame including its appended CRC-16.
const CRC16Residue uint16 = 0x1D0F

const crc16Poly uint16 = 0x1021

// CRC16 returns the CRC-16 to append to the given frame bits (already
// ones-complemented, ready to transmit).
func CRC16(frame *Bits) uint16 {
	return ^crc16Register(frame, CRC16Preset)
}

// CRC16Check reports whether a received frame whose final 16 bits are a
// CRC-16 is intact.
func CRC16Check(frameWithCRC *Bits) bool {
	if frameWithCRC.Len() < 16 {
		return false
	}
	return crc16Register(frameWithCRC, CRC16Preset) == CRC16Residue
}

func crc16Register(frame *Bits, preset uint16) uint16 {
	reg := preset
	for i := 0; i < frame.Len(); i++ {
		msb := reg&0x8000 != 0
		in := frame.Bit(i)
		reg <<= 1
		if msb != in {
			reg ^= crc16Poly
		}
	}
	return reg
}

// CRC5Preset is the Gen-2 CRC-5 register preset.
const CRC5Preset uint8 = 0b01001

const crc5Poly uint8 = 0b01001 // x^5+x^3+1 with the x^5 term implicit

// CRC5 returns the 5-bit CRC to append to the given frame bits.
func CRC5(frame *Bits) uint8 {
	reg := CRC5Preset
	for i := 0; i < frame.Len(); i++ {
		msb := reg&0b10000 != 0
		in := frame.Bit(i)
		reg = (reg << 1) & 0b11111
		if msb != in {
			reg ^= crc5Poly
		}
	}
	return reg
}

// CRC5Check reports whether a received frame whose final 5 bits are a CRC-5
// is intact.
func CRC5Check(frameWithCRC *Bits) bool {
	n := frameWithCRC.Len()
	if n < 5 {
		return false
	}
	body := &Bits{}
	for i := 0; i < n-5; i++ {
		body.AppendBit(frameWithCRC.Bit(i))
	}
	return uint8(frameWithCRC.Uint(n-5, 5)) == CRC5(body)
}
