package epc

// Gen-2 link CRCs. Air-interface frames are not byte aligned, so each CRC
// runs table-driven over the frame's packed full bytes (CRC-16) or nibbles
// (CRC-5) and finishes the unaligned tail bit-serially — the same register
// sequence as a pure bit-serial implementation, byte-at-a-time.
//
// CRC-16: ISO/IEC 13239 (CCITT polynomial x^16+x^12+x^5+1), preset 0xFFFF,
// and the value appended to a frame is the ones-complement of the register.
// A receiver that runs the register over frame+CRC sees the constant
// residue 0x1D0F on an intact frame.
//
// CRC-5: polynomial x^5+x^3+1, preset 0b01001, appended uninverted; the
// receiver recomputes over the frame body and compares.

// CRC16Preset is the Gen-2 CRC-16 register preset.
const CRC16Preset uint16 = 0xFFFF

// CRC16Residue is the register value after running over an intact
// frame including its appended CRC-16.
const CRC16Residue uint16 = 0x1D0F

const crc16Poly uint16 = 0x1021

// crc16Table[b] is the register change from clocking byte b through the
// CCITT polynomial.
var crc16Table = func() (t [256]uint16) {
	for i := range t {
		reg := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if reg&0x8000 != 0 {
				reg = reg<<1 ^ crc16Poly
			} else {
				reg <<= 1
			}
		}
		t[i] = reg
	}
	return
}()

// CRC16 returns the CRC-16 to append to the given frame bits (already
// ones-complemented, ready to transmit).
func CRC16(frame *Bits) uint16 {
	return ^crc16Register(frame, CRC16Preset)
}

// CRC16Check reports whether a received frame whose final 16 bits are a
// CRC-16 is intact.
func CRC16Check(frameWithCRC *Bits) bool {
	if frameWithCRC.Len() < 16 {
		return false
	}
	return crc16Register(frameWithCRC, CRC16Preset) == CRC16Residue
}

func crc16Register(frame *Bits, preset uint16) uint16 {
	reg := preset
	full := frame.n / 8
	for _, b := range frame.data[:full] {
		reg = reg<<8 ^ crc16Table[byte(reg>>8)^b]
	}
	for i := full * 8; i < frame.n; i++ {
		msb := reg&0x8000 != 0
		reg <<= 1
		if msb != frame.Bit(i) {
			reg ^= crc16Poly
		}
	}
	return reg
}

// CRC5Preset is the Gen-2 CRC-5 register preset.
const CRC5Preset uint8 = 0b01001

const crc5Poly uint8 = 0b01001 // x^5+x^3+1 with the x^5 term implicit

// crc5Table[reg][nib] is the 5-bit register after clocking nibble nib (MSB
// first) through a register holding reg.
var crc5Table = func() (t [32][16]uint8) {
	for reg := 0; reg < 32; reg++ {
		for nib := 0; nib < 16; nib++ {
			r := uint8(reg)
			for bit := 3; bit >= 0; bit-- {
				msb := r&0b10000 != 0
				in := nib>>uint(bit)&1 == 1
				r = (r << 1) & 0b11111
				if msb != in {
					r ^= crc5Poly
				}
			}
			t[reg][nib] = r
		}
	}
	return
}()

// crc5Register runs the CRC-5 register over the first nbits of frame.
func crc5Register(frame *Bits, nbits int) uint8 {
	reg := CRC5Preset
	full := nbits / 4
	for i := 0; i < full; i++ {
		b := frame.data[i/2]
		var nib uint8
		if i%2 == 0 {
			nib = b >> 4
		} else {
			nib = b & 0x0F
		}
		reg = crc5Table[reg][nib]
	}
	for i := full * 4; i < nbits; i++ {
		msb := reg&0b10000 != 0
		reg = (reg << 1) & 0b11111
		if msb != frame.Bit(i) {
			reg ^= crc5Poly
		}
	}
	return reg
}

// CRC5 returns the 5-bit CRC to append to the given frame bits.
func CRC5(frame *Bits) uint8 {
	return crc5Register(frame, frame.Len())
}

// CRC5Check reports whether a received frame whose final 5 bits are a CRC-5
// is intact. The body is the frame's prefix, so the register runs over it
// in place — no copy.
func CRC5Check(frameWithCRC *Bits) bool {
	n := frameWithCRC.Len()
	if n < 5 {
		return false
	}
	return uint8(frameWithCRC.Uint(n-5, 5)) == crc5Register(frameWithCRC, n-5)
}
