package epc

import "fmt"

// Additional TDS schemes used by tracking deployments: GRAI-96 for
// returnable assets (the carts, totes and pallets the paper's portals
// watch) and SGLN-96 for the physical locations the back-end maps
// sightings onto.

// Scheme headers.
const (
	HeaderGRAI96 = 0x33
	HeaderSGLN96 = 0x32
)

// GRAI-96 partition table: company prefix and asset type.
var graiPartitions = [7]partitionEntry{
	{40, 12, 4, 0},
	{37, 11, 7, 1},
	{34, 10, 10, 2},
	{30, 9, 14, 3},
	{27, 8, 17, 4},
	{24, 7, 20, 5},
	{20, 6, 24, 6},
}

// SGLN-96 partition table: company prefix and location reference.
var sglnPartitions = [7]partitionEntry{
	{40, 12, 1, 0},
	{37, 11, 4, 1},
	{34, 10, 7, 2},
	{30, 9, 11, 3},
	{27, 8, 14, 4},
	{24, 7, 17, 5},
	{20, 6, 21, 6},
}

// GRAI96 identifies an individual returnable asset.
type GRAI96 struct {
	Filter        uint8
	CompanyDigits int
	Company       uint64
	AssetType     uint64
	Serial        uint64 // 38 bits
}

// Encode packs the GRAI-96 into a Code.
func (g GRAI96) Encode() (Code, error) {
	var c Code
	if g.CompanyDigits < 6 || g.CompanyDigits > 12 {
		return c, fmt.Errorf("%w: company prefix digits %d out of range [6,12]", ErrBadEPC, g.CompanyDigits)
	}
	p := 12 - g.CompanyDigits
	e := graiPartitions[p]
	if g.Filter > 7 {
		return c, fmt.Errorf("%w: filter %d exceeds 3 bits", ErrBadEPC, g.Filter)
	}
	if g.Company >= pow10(e.companyDigits) {
		return c, fmt.Errorf("%w: company %d exceeds %d digits", ErrBadEPC, g.Company, e.companyDigits)
	}
	if e.refDigits == 0 && g.AssetType != 0 {
		return c, fmt.Errorf("%w: asset type must be 0 with a 12-digit company prefix", ErrBadEPC)
	}
	if e.refDigits > 0 && g.AssetType >= pow10(e.refDigits) {
		return c, fmt.Errorf("%w: asset type %d exceeds %d digits", ErrBadEPC, g.AssetType, e.refDigits)
	}
	if g.Serial >= 1<<38 {
		return c, fmt.Errorf("%w: serial %d exceeds 38 bits", ErrBadEPC, g.Serial)
	}
	b := &Bits{}
	b.Append(HeaderGRAI96, 8)
	b.Append(uint64(g.Filter), 3)
	b.Append(uint64(p), 3)
	b.Append(g.Company, e.companyBits)
	b.Append(g.AssetType, e.refBits)
	b.Append(g.Serial, 38)
	return CodeFromBits(b)
}

// DecodeGRAI96 unpacks a GRAI-96 Code.
func DecodeGRAI96(c Code) (GRAI96, error) {
	if c.Header() != HeaderGRAI96 {
		return GRAI96{}, fmt.Errorf("%w: header %#x is not GRAI-96", ErrBadEPC, c.Header())
	}
	p := int(c.uint(11, 3))
	if p > 6 {
		return GRAI96{}, fmt.Errorf("%w: partition %d out of range", ErrBadEPC, p)
	}
	e := graiPartitions[p]
	g := GRAI96{
		Filter:        uint8(c.uint(8, 3)),
		CompanyDigits: e.companyDigits,
		Company:       c.uint(14, e.companyBits),
		AssetType:     c.uint(14+e.companyBits, e.refBits),
		Serial:        c.uint(14+e.companyBits+e.refBits, 38),
	}
	if g.Company >= pow10(e.companyDigits) || (e.refDigits > 0 && g.AssetType >= pow10(e.refDigits)) {
		return GRAI96{}, fmt.Errorf("%w: field exceeds its decimal capacity", ErrBadEPC)
	}
	if e.refDigits == 0 && g.AssetType != 0 {
		// A zero-digit asset-type field can only legally hold zero.
		return GRAI96{}, fmt.Errorf("%w: asset type bits set with a 12-digit company prefix", ErrBadEPC)
	}
	return g, nil
}

// URI returns the pure-identity URI, e.g. urn:epc:id:grai:0614141.12345.400.
func (g GRAI96) URI() string {
	e := graiPartitions[12-g.CompanyDigits]
	return fmt.Sprintf("urn:epc:id:grai:%0*d.%0*d.%d",
		e.companyDigits, g.Company, e.refDigits, g.AssetType, g.Serial)
}

// SGLN96 identifies a physical location (with an optional extension for
// sub-locations).
type SGLN96 struct {
	Filter        uint8
	CompanyDigits int
	Company       uint64
	LocationRef   uint64
	Extension     uint64 // 41 bits
}

// Encode packs the SGLN-96 into a Code.
func (s SGLN96) Encode() (Code, error) {
	var c Code
	if s.CompanyDigits < 6 || s.CompanyDigits > 12 {
		return c, fmt.Errorf("%w: company prefix digits %d out of range [6,12]", ErrBadEPC, s.CompanyDigits)
	}
	p := 12 - s.CompanyDigits
	e := sglnPartitions[p]
	if s.Filter > 7 {
		return c, fmt.Errorf("%w: filter %d exceeds 3 bits", ErrBadEPC, s.Filter)
	}
	if s.Company >= pow10(e.companyDigits) {
		return c, fmt.Errorf("%w: company %d exceeds %d digits", ErrBadEPC, s.Company, e.companyDigits)
	}
	if e.refDigits == 0 && s.LocationRef != 0 {
		return c, fmt.Errorf("%w: location reference must be 0 with a 12-digit company prefix", ErrBadEPC)
	}
	if e.refDigits > 0 && s.LocationRef >= pow10(e.refDigits) {
		return c, fmt.Errorf("%w: location reference %d exceeds %d digits", ErrBadEPC, s.LocationRef, e.refDigits)
	}
	if s.Extension >= 1<<41 {
		return c, fmt.Errorf("%w: extension %d exceeds 41 bits", ErrBadEPC, s.Extension)
	}
	b := &Bits{}
	b.Append(HeaderSGLN96, 8)
	b.Append(uint64(s.Filter), 3)
	b.Append(uint64(p), 3)
	b.Append(s.Company, e.companyBits)
	b.Append(s.LocationRef, e.refBits)
	b.Append(s.Extension, 41)
	return CodeFromBits(b)
}

// DecodeSGLN96 unpacks an SGLN-96 Code.
func DecodeSGLN96(c Code) (SGLN96, error) {
	if c.Header() != HeaderSGLN96 {
		return SGLN96{}, fmt.Errorf("%w: header %#x is not SGLN-96", ErrBadEPC, c.Header())
	}
	p := int(c.uint(11, 3))
	if p > 6 {
		return SGLN96{}, fmt.Errorf("%w: partition %d out of range", ErrBadEPC, p)
	}
	e := sglnPartitions[p]
	s := SGLN96{
		Filter:        uint8(c.uint(8, 3)),
		CompanyDigits: e.companyDigits,
		Company:       c.uint(14, e.companyBits),
		LocationRef:   c.uint(14+e.companyBits, e.refBits),
		Extension:     c.uint(14+e.companyBits+e.refBits, 41),
	}
	if s.Company >= pow10(e.companyDigits) || (e.refDigits > 0 && s.LocationRef >= pow10(e.refDigits)) {
		return SGLN96{}, fmt.Errorf("%w: field exceeds its decimal capacity", ErrBadEPC)
	}
	if e.refDigits == 0 && s.LocationRef != 0 {
		// A zero-digit location-reference field can only legally hold zero.
		return SGLN96{}, fmt.Errorf("%w: location reference bits set with a 12-digit company prefix", ErrBadEPC)
	}
	return s, nil
}

// URI returns the pure-identity URI, e.g. urn:epc:id:sgln:0614141.12345.400.
func (s SGLN96) URI() string {
	e := sglnPartitions[12-s.CompanyDigits]
	return fmt.Sprintf("urn:epc:id:sgln:%0*d.%0*d.%d",
		e.companyDigits, s.Company, e.refDigits, s.LocationRef, s.Extension)
}
