package epc

import (
	"testing"
)

// Fuzz targets: the decoders must never panic and every accepted input
// must round-trip consistently. `go test` runs the seed corpus; use
// `go test -fuzz=FuzzParseURI ./internal/epc` to explore further.

func FuzzParseHex(f *testing.F) {
	f.Add("3074257BF7194E4000001A85")
	f.Add("")
	f.Add("zz")
	f.Add("3074257bf7194e4000001a85")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseHex(s)
		if err != nil {
			return
		}
		// Accepted hex must round-trip through the canonical form.
		back, err := ParseHex(c.Hex())
		if err != nil || back != c {
			t.Fatalf("roundtrip broke: %q -> %v -> %v (%v)", s, c, back, err)
		}
	})
}

func FuzzParseURI(f *testing.F) {
	f.Add("urn:epc:id:sgtin:0614141.812345.6789")
	f.Add("urn:epc:id:sscc:0614141.1234567890")
	f.Add("urn:epc:id:gid:95100000.12345.400")
	f.Add("urn:epc:id:grai:0614141.12345.400")
	f.Add("urn:epc:id:sgln:0614141.12345.400")
	f.Add("urn:epc:id:sgtin:..")
	f.Add("urn:epc:id:gid:-1.2.3")
	f.Add("urn:epc:id:sgtin:99999999999999999999.1.1")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseURI(s)
		if err != nil {
			return
		}
		// Whatever parses must re-encode to a URI that parses to the same
		// code.
		uri := c.URI()
		back, err := ParseURI(uri)
		if err != nil {
			t.Fatalf("generated URI %q does not parse: %v", uri, err)
		}
		if back != c {
			t.Fatalf("roundtrip changed the code: %q -> %v vs %v", s, c, back)
		}
	})
}

func FuzzDecodeSchemes(f *testing.F) {
	sg, _ := SGTIN96{Filter: 1, CompanyDigits: 7, Company: 614141, ItemRef: 1, Serial: 1}.Encode()
	f.Add(sg[:])
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) != 12 {
			return
		}
		var c Code
		copy(c[:], raw)
		// None of the decoders may panic; successful decodes must re-encode
		// to the same bits.
		if s, err := DecodeSGTIN96(c); err == nil {
			if back, err := s.Encode(); err != nil || back != c {
				t.Fatalf("SGTIN re-encode mismatch: %v vs %v (%v)", c, back, err)
			}
		}
		if s, err := DecodeSSCC96(c); err == nil {
			back, err := s.Encode()
			if err != nil {
				t.Fatalf("SSCC re-encode failed: %v", err)
			}
			// The reserved 24 bits are zeroed on re-encode; compare the rest.
			if back.Hex()[:18] != c.Hex()[:18] {
				t.Fatalf("SSCC re-encode mismatch: %v vs %v", c, back)
			}
		}
		if g, err := DecodeGID96(c); err == nil {
			if back, err := g.Encode(); err != nil || back != c {
				t.Fatalf("GID re-encode mismatch: %v vs %v (%v)", c, back, err)
			}
		}
		if g, err := DecodeGRAI96(c); err == nil {
			if back, err := g.Encode(); err != nil || back != c {
				t.Fatalf("GRAI re-encode mismatch: %v vs %v (%v)", c, back, err)
			}
		}
		if s, err := DecodeSGLN96(c); err == nil {
			if back, err := s.Encode(); err != nil || back != c {
				t.Fatalf("SGLN re-encode mismatch: %v vs %v (%v)", c, back, err)
			}
		}
		_ = c.URI() // must never panic
	})
}
