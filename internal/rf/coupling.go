package rf

import (
	"math"

	"rfidtrack/internal/units"
)

// CouplingLossDB returns the mutual-coupling (detuning) loss suffered by a
// tag whose nearest parallel neighbour sits spacing meters away.
//
// Closely spaced parallel dipoles detune each other: the neighbour's
// antenna loads the tag's matching network and re-radiates out of phase.
// The effect falls off rapidly with spacing — the paper measures that
// 20–40 mm is the minimum safe distance — so we model the loss as an
// inverse-power decay from a near-contact maximum, calibrated so that the
// spacings the paper tested (0.3, 4, 10, 20, 40 mm) land on the measured
// reliability ladder.
//
// alignment in [0,1] scales the effect for non-parallel neighbours
// (crossed dipoles barely couple); 1 means parallel.
func (c Calibration) CouplingLossDB(spacing float64, alignment float64) units.DB {
	if spacing < 0 {
		spacing = 0
	}
	if alignment <= 0 {
		return 0
	}
	if alignment > 1 {
		alignment = 1
	}
	// Loss = Max / (1 + (s/s0)^k): half the maximum at s0, decaying with
	// exponent k. With Max≈22 dB, s0≈6 mm, k≈1.6 the curve gives
	// ~21.5 dB at 0.3 mm, ~12 dB at 4 mm, ~7 dB at 10 mm, ~3.5 dB at
	// 20 mm and ~1.5 dB at 40 mm.
	s0 := c.CouplingHalfDistance
	if s0 <= 0 {
		return 0
	}
	loss := float64(c.CouplingMaxLossDB) / (1 + math.Pow(spacing/s0, c.CouplingExponent))
	return units.DB(loss * alignment)
}

// NeighbourAlignment converts the angle between two tag dipole axes into
// the coupling alignment factor: |cos| of the angle, so parallel axes
// couple fully and crossed axes not at all.
func NeighbourAlignment(angle float64) float64 {
	return math.Abs(math.Cos(angle))
}
