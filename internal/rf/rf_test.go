package rf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/units"
)

func almost(a, b units.DB, tol float64) bool {
	return math.Abs(float64(a-b)) <= tol
}

func TestPatchPattern(t *testing.T) {
	p := DefaultCalibration().ReaderAntenna
	if got := p.GainDB(0); got != p.BoresightGainDBi {
		t.Errorf("boresight gain = %v", got)
	}
	// cos^5 power pattern: half power (-3 dB) near 29.5 degrees (~59 deg HPBW).
	hp := p.GainDB(29.5 * math.Pi / 180)
	if !almost(hp, p.BoresightGainDBi-3, 0.2) {
		t.Errorf("half-power gain = %v, want ~%v", hp, p.BoresightGainDBi-3)
	}
	// Monotone decreasing over the front hemisphere.
	prev := p.GainDB(0)
	for deg := 5.0; deg <= 90; deg += 5 {
		g := p.GainDB(deg * math.Pi / 180)
		if g > prev+1e-9 {
			t.Fatalf("pattern not monotone at %v deg", deg)
		}
		prev = g
	}
	// Behind the antenna: clamped to the back lobe.
	if got := p.GainDB(math.Pi); got != p.BoresightGainDBi+p.BackLobeDB {
		t.Errorf("back lobe = %v", got)
	}
}

func TestPatchGainToward(t *testing.T) {
	p := DefaultCalibration().ReaderAntenna
	pose := geom.NewPose(geom.V(0, 0, 0), geom.UnitY, geom.UnitZ)
	on := p.GainToward(pose, geom.V(0, 5, 0))
	off := p.GainToward(pose, geom.V(3, 5, 0))
	if on != p.BoresightGainDBi {
		t.Errorf("on-axis = %v", on)
	}
	if off >= on {
		t.Errorf("off-axis %v not below on-axis %v", off, on)
	}
}

func TestDipolePattern(t *testing.T) {
	d := DefaultCalibration().TagDipole
	if got := d.GainDB(math.Pi / 2); got != d.PeakGainDBi {
		t.Errorf("broadside = %v", got)
	}
	// Along the axis: bounded null.
	if got := d.GainDB(0); got != d.PeakGainDBi+d.MinRelDB {
		t.Errorf("axial = %v, want floor %v", got, d.PeakGainDBi+d.MinRelDB)
	}
	// Symmetric about broadside.
	if g1, g2 := d.GainDB(math.Pi/3), d.GainDB(math.Pi-math.Pi/3); !almost(g1, g2, 1e-9) {
		t.Errorf("asymmetric: %v vs %v", g1, g2)
	}
}

func TestDipoleGainToward(t *testing.T) {
	d := DefaultCalibration().TagDipole
	// Axis along X, target along Y: broadside.
	if got := d.GainToward(geom.UnitX, geom.V(0, 0, 0), geom.V(0, 2, 0)); got != d.PeakGainDBi {
		t.Errorf("broadside toward = %v", got)
	}
	// Target along the axis: floor.
	if got := d.GainToward(geom.UnitX, geom.V(0, 0, 0), geom.V(2, 0, 0)); got != d.PeakGainDBi+d.MinRelDB {
		t.Errorf("axial toward = %v", got)
	}
}

func TestPolarizationLoss(t *testing.T) {
	floor := units.DB(-15)
	dir := geom.UnitY
	if got := PolarizationLossDB(Circular, geom.UnitX, geom.UnitZ, dir, floor); got != 3 {
		t.Errorf("circular = %v, want flat 3 dB", got)
	}
	// Linear co-polarized: no loss.
	if got := PolarizationLossDB(Linear, geom.UnitX, geom.UnitX, dir, floor); !almost(got, 0, 1e-9) {
		t.Errorf("co-pol = %v", got)
	}
	// Linear crossed: clamped to the floor magnitude.
	if got := PolarizationLossDB(Linear, geom.UnitX, geom.UnitZ, dir, floor); got != 15 {
		t.Errorf("cross-pol = %v, want 15", got)
	}
	// 45 degrees: 3 dB.
	mid := geom.V(1, 0, 1)
	if got := PolarizationLossDB(Linear, geom.UnitX, mid, dir, floor); !almost(got, 3, 0.05) {
		t.Errorf("45deg = %v, want ~3", got)
	}
	// Axis along propagation: treated as crossed.
	if got := PolarizationLossDB(Linear, geom.UnitY, geom.UnitX, dir, floor); got != 15 {
		t.Errorf("axis-along-propagation = %v, want 15", got)
	}
}

func TestGrazingLoss(t *testing.T) {
	const max = units.DB(18)
	// Face-on: no penalty regardless of backing.
	if got := GrazingLossDB(1, 1, max); got != 0 {
		t.Errorf("face-on = %v", got)
	}
	// A free-space mount has no penalty even edge-on (the Figure-4
	// face-up orientations on plain cardboard read fine).
	if got := GrazingLossDB(0, 0, max); got != 0 {
		t.Errorf("free-space edge-on = %v", got)
	}
	// Flush on metal, edge-on: full cancellation depth.
	if got := GrazingLossDB(0, 1, max); got != max {
		t.Errorf("flush edge-on = %v, want %v", got, max)
	}
	// Symmetric in the sign of the incidence cosine (labels radiate both
	// ways through packaging).
	if GrazingLossDB(-0.4, 0.7, max) != GrazingLossDB(0.4, 0.7, max) {
		t.Error("grazing loss not symmetric in cosAlpha")
	}
	// Scales linearly in both factors and clamps out-of-range inputs.
	if got := GrazingLossDB(0.5, 0.5, max); !almost(got, 4.5, 1e-9) {
		t.Errorf("half/half = %v, want 4.5", got)
	}
	if GrazingLossDB(2, 1, max) != 0 || GrazingLossDB(0, 2, max) != max {
		t.Error("clamping broken")
	}
	if GrazingLossDB(0, -1, max) != 0 {
		t.Error("negative proximity fraction should clamp to 0")
	}
}

func TestProximityFraction(t *testing.T) {
	c := DefaultCalibration()
	if got := c.ProximityFraction(Metal, 0); got != 1 {
		t.Errorf("contact fraction = %v", got)
	}
	if got := c.ProximityFraction(Metal, c.Materials[Metal].ProximityRange); got != 0 {
		t.Errorf("at-range fraction = %v", got)
	}
	if got := c.ProximityFraction(Air, 0); got != 0 {
		t.Errorf("air fraction = %v", got)
	}
}

func TestMaterialProperties(t *testing.T) {
	c := DefaultCalibration()
	if c.TransmissionLossDB(Air) != 0 {
		t.Error("air should be transparent")
	}
	if c.TransmissionLossDB(Metal) < c.TransmissionLossDB(Cardboard) {
		t.Error("metal should block more than cardboard")
	}
	// Proximity detune decays with gap and vanishes at range.
	full := c.ProximityDetuneDB(Metal, 0)
	half := c.ProximityDetuneDB(Metal, c.Materials[Metal].ProximityRange/2)
	gone := c.ProximityDetuneDB(Metal, c.Materials[Metal].ProximityRange)
	if full != c.Materials[Metal].ProximityDetuneDB {
		t.Errorf("detune at contact = %v", full)
	}
	if !(half > 0 && half < full) {
		t.Errorf("detune at half range = %v, want in (0, %v)", half, full)
	}
	if gone != 0 {
		t.Errorf("detune at range = %v, want 0", gone)
	}
	if c.ProximityDetuneDB(Metal, -1) != full {
		t.Error("negative gap should clamp to contact")
	}
	if c.ProximityDetuneDB(Air, 0) != 0 {
		t.Error("air detunes nothing")
	}
}

func TestMaterialString(t *testing.T) {
	for m, want := range map[Material]string{
		Air: "air", Cardboard: "cardboard", Plastic: "plastic",
		Metal: "metal", Liquid: "liquid", Body: "body", Material(99): "unknown",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q", m, got)
		}
	}
	if Circular.String() != "circular" || Linear.String() != "linear" || Polarization(9).String() != "unknown" {
		t.Error("polarization strings broken")
	}
}

func TestCouplingCurve(t *testing.T) {
	c := DefaultCalibration()
	// Monotone decreasing in spacing.
	prev := c.CouplingLossDB(0, 1)
	for _, mm := range []float64{0.3, 4, 10, 20, 40, 100} {
		l := c.CouplingLossDB(mm/1000, 1)
		if l > prev+1e-9 {
			t.Fatalf("coupling not monotone at %v mm", mm)
		}
		prev = l
	}
	// The paper's ladder: near-contact must be crushing, 40 mm negligible.
	if l := c.CouplingLossDB(0.0003, 1); l < 15 {
		t.Errorf("0.3mm coupling = %v dB, want > 15", l)
	}
	if l := c.CouplingLossDB(0.040, 1); l > 3 {
		t.Errorf("40mm coupling = %v dB, want < 3", l)
	}
	// Alignment scales the effect; crossed neighbours do not couple.
	if c.CouplingLossDB(0.004, 0) != 0 {
		t.Error("zero alignment should kill coupling")
	}
	full := c.CouplingLossDB(0.004, 1)
	halfAligned := c.CouplingLossDB(0.004, 0.5)
	if !almost(halfAligned, units.DB(float64(full)/2), 1e-9) {
		t.Errorf("alignment scaling broken: %v vs %v", halfAligned, full)
	}
	if c.CouplingLossDB(0.004, 2) != full {
		t.Error("alignment should clamp to 1")
	}
	if c.CouplingLossDB(-1, 1) != c.CouplingLossDB(0, 1) {
		t.Error("negative spacing should clamp to contact")
	}
}

func TestNeighbourAlignment(t *testing.T) {
	if got := NeighbourAlignment(0); !almost(units.DB(got), 1, 1e-9) {
		t.Errorf("parallel = %v", got)
	}
	if got := NeighbourAlignment(math.Pi / 2); !almost(units.DB(got), 0, 1e-9) {
		t.Errorf("crossed = %v", got)
	}
	if got := NeighbourAlignment(math.Pi); !almost(units.DB(got), 1, 1e-9) {
		t.Errorf("antiparallel = %v", got)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(30).
		Add("antenna gain", 6).
		AddLoss("path loss", 31.7).
		AddLoss("polarization", 3)
	if got := b.Total(); !almost(units.DB(got-0), units.DB(1.3), 1e-9) {
		t.Errorf("total = %v, want 1.3 dBm", got)
	}
	s := b.String()
	for _, want := range []string{"tx", "antenna gain", "path loss", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("budget string missing %q:\n%s", want, s)
		}
	}
}

func TestLinkDecodability(t *testing.T) {
	c := DefaultCalibration()
	healthy := Link{
		TagPower:           -5,
		ReaderPower:        -60,
		TagInterference:    NoInterference,
		ReaderInterference: NoInterference,
	}
	if !healthy.TagPowered(c) || !healthy.ForwardDecodable(c) || !healthy.ReverseDecodable(c) || !healthy.Readable(c) {
		t.Fatal("healthy link should be readable")
	}

	dead := healthy
	dead.TagPower = -20 // below -11 dBm sensitivity
	if dead.TagPowered(c) || dead.Readable(c) {
		t.Error("unpowered tag should not read")
	}

	// Forward interference: tag powered but envelope swamped.
	jammed := healthy
	jammed.TagInterference = jammed.TagPower // 0 dB C/I < capture margin
	if !jammed.TagPowered(c) {
		t.Error("jammed tag is still powered")
	}
	if jammed.ForwardDecodable(c) || jammed.Readable(c) {
		t.Error("jammed tag should not decode commands")
	}

	// Reverse link below sensitivity.
	faint := healthy
	faint.ReaderPower = -80
	if faint.ReverseDecodable(c) || faint.Readable(c) {
		t.Error("sub-sensitivity backscatter should not decode")
	}

	// Reverse interference above the noise floor eats the SNR.
	rxJam := healthy
	rxJam.ReaderPower = -65
	rxJam.ReaderInterference = -70 // SINR 5 dB < 10 dB threshold
	if rxJam.ReverseDecodable(c) {
		t.Error("reader-side interference should block decoding")
	}
	// The same interference below the noise floor is harmless.
	rxOk := healthy
	rxOk.ReaderPower = -65
	rxOk.ReaderInterference = -100
	if !rxOk.ReverseDecodable(c) {
		t.Error("sub-noise interference should not block decoding")
	}
}

func TestCombineInterference(t *testing.T) {
	// Two equal carriers: +3 dB.
	got := CombineInterference(-50, -50)
	if !almost(units.DB(got-(-47)), 0, 0.02) {
		t.Errorf("equal combine = %v, want ~-47", got)
	}
	// Combining with nothing changes nothing.
	got = CombineInterference(-50, NoInterference)
	if !almost(units.DB(got-(-50)), 0, 0.01) {
		t.Errorf("combine with none = %v, want -50", got)
	}
}

func TestFreeSpaceMarginAnchors(t *testing.T) {
	c := DefaultCalibration()
	// The sanity anchors documented in calib.go: comfortably positive at
	// 1 m, zero-crossing between 4 and 6 m, clearly negative at 9 m.
	if m := c.FreeSpaceMarginDB(1); m < 10 || m > 18 {
		t.Errorf("margin(1m) = %v, want ~13.5", m)
	}
	m4, m6 := c.FreeSpaceMarginDB(4), c.FreeSpaceMarginDB(6)
	if !(m4 > 0 && m6 < 0) {
		t.Errorf("zero crossing not in (4m, 6m): margin(4)=%v margin(6)=%v", m4, m6)
	}
	if m := c.FreeSpaceMarginDB(9); m > -3 {
		t.Errorf("margin(9m) = %v, want < -3", m)
	}
}

func TestFreeSpaceMarginMonotoneProperty(t *testing.T) {
	c := DefaultCalibration()
	f := func(a, b float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 20))
		b = 0.1 + math.Abs(math.Mod(b, 20))
		if a > b {
			a, b = b, a
		}
		return c.FreeSpaceMarginDB(a) >= c.FreeSpaceMarginDB(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEIRPWithinRegulatoryBallpark(t *testing.T) {
	// 30 dBm - 1 dB cable + 6 dBi = 35 dBm EIRP, inside the FCC 36 dBm cap.
	c := DefaultCalibration()
	if got := c.EIRPDBm(); got != 35 {
		t.Errorf("EIRP = %v, want 35 dBm", got)
	}
}
