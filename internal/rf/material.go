package rf

import (
	"rfidtrack/internal/units"
)

// Material enumerates the materials the paper identifies as reliability
// factors: packaging, metals, liquids, and human bodies.
type Material int

// Material values.
const (
	Air Material = iota
	Cardboard
	Plastic
	Metal
	Liquid
	Body
)

// String implements fmt.Stringer.
func (m Material) String() string {
	switch m {
	case Air:
		return "air"
	case Cardboard:
		return "cardboard"
	case Plastic:
		return "plastic"
	case Metal:
		return "metal"
	case Liquid:
		return "liquid"
	case Body:
		return "body"
	default:
		return "unknown"
	}
}

// MaterialProperties captures how a material affects the link. The values
// live in the Calibration so experiments can ablate them.
type MaterialProperties struct {
	// TransmissionLossDB is the loss when the material sits between the
	// antenna and the tag (per blocking event, not per meter: at UHF, a
	// metal case or a torso is effectively opaque regardless of thickness,
	// while cardboard barely matters).
	TransmissionLossDB units.DB
	// ProximityDetuneDB is the worst-case loss from mounting a tag
	// directly against the material (ground-plane detuning for metal,
	// dielectric loading for liquid/body). It decays with the mounting gap.
	ProximityDetuneDB units.DB
	// ProximityRange is the gap in meters beyond which proximity detuning
	// is negligible.
	ProximityRange float64
	// ScatterLeakFactor is the fraction of the material's blocking loss
	// that still applies on the scattered (multipath) path: reflective
	// obstacles (metal) are routed around by reflections, absorbing ones
	// (bodies, liquids) also eat the ambient field.
	ScatterLeakFactor float64
}

// ScatterTransmissionLossDB returns the blocking loss a material imposes
// on the scattered path.
func (c Calibration) ScatterTransmissionLossDB(m Material) units.DB {
	p := c.Materials[m]
	return units.DB(float64(p.TransmissionLossDB) * p.ScatterLeakFactor)
}

// TransmissionLossDB returns the blocking loss for a signal crossing the
// material, given the calibrated property table.
func (c Calibration) TransmissionLossDB(m Material) units.DB {
	return c.Materials[m].TransmissionLossDB
}

// ProximityFraction returns how strongly the material detunes a tag
// mounted gap meters away, from 1 at contact decaying linearly to 0 at
// ProximityRange. Materials with no detuning always return 0.
func (c Calibration) ProximityFraction(m Material, gap float64) float64 {
	p := c.Materials[m]
	if p.ProximityDetuneDB <= 0 || p.ProximityRange <= 0 {
		return 0
	}
	if gap < 0 {
		gap = 0
	}
	if gap >= p.ProximityRange {
		return 0
	}
	return 1 - gap/p.ProximityRange
}

// ProximityDetuneDB returns the detuning loss for a tag mounted gap meters
// from the material, decaying linearly to zero at ProximityRange.
func (c Calibration) ProximityDetuneDB(m Material, gap float64) units.DB {
	return units.DB(float64(c.Materials[m].ProximityDetuneDB) * c.ProximityFraction(m, gap))
}
