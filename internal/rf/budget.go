package rf

import (
	"fmt"
	"strings"

	"rfidtrack/internal/units"
)

// Term is one named contribution to a link budget, in dB (gains positive,
// losses negative).
type Term struct {
	Name string
	DB   units.DB
}

// Budget is an itemized link budget: a transmit power plus a list of named
// gains and losses. Keeping the terms named makes simulated links
// explainable — `rfsim -explain` and several tests print them.
type Budget struct {
	Start units.DBm
	Terms []Term
}

// NewBudget starts a budget at the conducted transmit power.
func NewBudget(start units.DBm) *Budget {
	return &Budget{Start: start}
}

// Add appends a named term. Gains are positive, losses negative.
func (b *Budget) Add(name string, v units.DB) *Budget {
	b.Terms = append(b.Terms, Term{Name: name, DB: v})
	return b
}

// AddLoss appends a named loss given as a positive magnitude.
func (b *Budget) AddLoss(name string, loss units.DB) *Budget {
	return b.Add(name, -loss)
}

// Total returns the resulting power level.
func (b *Budget) Total() units.DBm {
	p := b.Start
	for _, t := range b.Terms {
		p = p.Plus(t.DB)
	}
	return p
}

// String renders the budget one term per line.
func (b *Budget) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8.2f dBm  tx\n", float64(b.Start))
	for _, t := range b.Terms {
		fmt.Fprintf(&sb, "%+8.2f dB   %s\n", float64(t.DB), t.Name)
	}
	fmt.Fprintf(&sb, "%8.2f dBm  total", float64(b.Total()))
	return sb.String()
}

// Link is the resolved state of one (antenna, tag) combination at one
// instant: the power delivered to the tag chip, the backscattered power
// returned to the reader, and the interference background at each end.
type Link struct {
	// TagPower is the power available to the tag chip (forward link).
	TagPower units.DBm
	// ReaderPower is the backscattered signal power at the reader receiver
	// (reverse link).
	ReaderPower units.DBm
	// TagInterference is the aggregate foreign-carrier power at the tag.
	TagInterference units.DBm
	// ReaderInterference is the aggregate foreign-carrier power reaching
	// the reader receiver after its own filtering.
	ReaderInterference units.DBm
	// Forward, when set, carries the itemized forward budget for
	// explanation output.
	Forward *Budget
	// Active marks a battery-powered tag: powering uses the active
	// receiver sensitivity and the reverse link is a one-way transmission
	// rather than backscatter.
	Active bool
}

// TagPowered reports whether the tag chip can operate: rectified energy
// for a passive tag, receiver sensitivity for an active one.
func (l Link) TagPowered(c Calibration) bool {
	if l.Active {
		return l.TagPower >= c.ActiveSensitivityDBm
	}
	return l.TagPower >= c.ChipSensitivityDBm
}

// ForwardDecodable reports whether the tag, once powered, can slice the
// reader's commands out of the aggregate carrier it sees. Passive tags are
// envelope detectors with no channel selectivity, so a comparable-power
// foreign carrier destroys the PIE envelope even when the tag has plenty
// of energy — the mechanism behind the paper's reader-redundancy failure.
func (l Link) ForwardDecodable(c Calibration) bool {
	if !l.TagPowered(c) {
		return false
	}
	sinr := float64(l.TagPower) - float64(l.TagInterference)
	return sinr >= float64(c.TagCaptureMarginDB)
}

// ReverseDecodable reports whether the reader can decode the tag's
// backscatter over thermal noise and foreign-carrier leakage.
func (l Link) ReverseDecodable(c Calibration) bool {
	if l.ReaderPower < c.ReaderSensitivityDBm {
		return false
	}
	// Interference below the noise floor is irrelevant.
	noise := c.ReaderNoiseFloorDBm
	eff := noise
	if l.ReaderInterference > eff {
		eff = l.ReaderInterference
	}
	sinr := float64(l.ReaderPower) - float64(eff)
	return sinr >= float64(c.ReaderSNRThresholdDB)
}

// Readable reports whether the complete command/reply exchange can succeed
// on this link at this instant.
func (l Link) Readable(c Calibration) bool {
	return l.ForwardDecodable(c) && l.ReverseDecodable(c)
}

// NoInterference is the interference level used when no foreign carrier is
// present: effectively -infinity dBm.
const NoInterference units.DBm = -300

// CombineInterference returns the aggregate of two interference powers
// (linear sum in milliwatts).
func CombineInterference(a, b units.DBm) units.DBm {
	return (a.Milliwatts() + b.Milliwatts()).DBm()
}
