package rf

import (
	"math"

	"rfidtrack/internal/units"
)

// CullBound is the calibration-level half of the conservative per-(tag,
// antenna) forward-power upper bound behind broad-phase link culling
// (DESIGN.md §14). The caller adds the pose-dependent pieces — the actual
// patch gain toward the tag, the actual free-space path loss, and the
// actual per-tag/per-path shadowing draws — and compares against the
// detection threshold minus CombineBonusDB. The bound drops every term
// that is provably a loss (polarization, grazing, obstruction, detuning,
// coupling) and replaces every remaining stochastic term by its maximum
// under the field-draw clamp, so for a valid calibration
//
//	TagPower ≤ max(directBound, scatterBound) + CombineBonusDB
//
// holds for every possible draw: a pair whose bound is below the chip (or
// active-receiver) sensitivity can never power up, decode, or be read.
type CullBound struct {
	// DirectFixedDB is the pose-independent prefix of the direct-path
	// bound: conducted power minus cable loss, plus the dipole's peak gain
	// (the actual dipole term never exceeds it while the polarization loss
	// is nonnegative) and the body-reflection bonus ceiling.
	DirectFixedDB float64
	// ScatterFixedDB is the same prefix for the scattered path, whose
	// deterministic sum uses the calibrated scatter gains verbatim.
	ScatterFixedDB float64
	// DirectOverlayDB bounds the direct path's per-(tag, antenna) fast
	// fading at the field-draw clamp. (The slow-fading shadows are added
	// from their actual draws by the caller.)
	DirectOverlayDB float64
	// ScatterOverlayDB bounds the scattered path's Rayleigh fading (K = 0)
	// at the field-draw clamp.
	ScatterOverlayDB float64
	// CombineBonusDB bounds the linear power combine: a ⊕ b ≤
	// max(a, b) + 10·log10(2) dB.
	CombineBonusDB float64
}

// NewCullBound precomputes the cull bound for a calibration and the
// world's field-draw clamp. ok is false when the calibration violates an
// assumption the bound's soundness rests on — a dropped term that could
// turn into a gain (negative material transmission loss, a positive
// cross-polarization floor or dipole pattern floor, a negative grazing
// depth) — in which case callers must not cull.
func NewCullBound(c *Calibration, clamp float64) (CullBound, bool) {
	if clamp <= 0 || c.CrossPolFloorDB > 0 || c.TagDipole.MinRelDB > 0 || c.GrazingMaxDB < 0 {
		return CullBound{}, false
	}
	for _, mp := range c.Materials {
		if mp.TransmissionLossDB < 0 || mp.ScatterLeakFactor < 0 {
			return CullBound{}, false
		}
	}
	reflect := math.Max(0, float64(c.BodyReflectionGainDB))
	fixed := float64(c.TxPowerDBm) - float64(c.CableLossDB) + reflect
	return CullBound{
		DirectFixedDB: fixed + float64(c.TagDipole.PeakGainDBi),
		ScatterFixedDB: fixed + float64(c.ScatterAntennaGainDB) -
			float64(c.ScatterLossDB) - 3,
		DirectOverlayDB:  RicianMaxDB(c.RicianK, clamp),
		ScatterOverlayDB: RicianMaxDB(0, clamp),
		CombineBonusDB:   10 * math.Log10(2),
	}, true
}

// RicianMaxDB returns the maximum Rician power gain (dB, K-factor k) the
// two-draw fading model can produce when each unit-normal draw is clamped
// to ±clamp: the in-phase component peaks at ν + σ·clamp and the
// quadrature at σ·clamp, so no realizable draw exceeds
// 10·log10((ν + σ·clamp)² + (σ·clamp)²).
func RicianMaxDB(k, clamp float64) float64 {
	if k < 0 {
		k = 0
	}
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	nu := math.Sqrt(k / (k + 1))
	x := nu + sigma*clamp
	y := sigma * clamp
	return 10 * math.Log10(x*x+y*y)
}

// CullThresholdDBm returns the detection threshold the cull bound is
// compared against for a tag: the rectification sensitivity for passive
// tags, the receiver sensitivity for active (battery-powered) ones. Below
// it, TagPowered — and therefore ForwardDecodable, ReverseDecodable, and
// every read — is false regardless of the reverse link.
func (c *Calibration) CullThresholdDBm(active bool) units.DBm {
	if active {
		return c.ActiveSensitivityDBm
	}
	return c.ChipSensitivityDBm
}
