// Package rf models the UHF radio link between a reader antenna and a
// passive tag: antenna patterns, polarization, path loss, shadowing and
// fast fading, material and body losses, inter-tag coupling, carrier
// interference between readers, and the assembled forward/reverse link
// budgets.
//
// This package is the substitution for the paper's physical testbed (see
// DESIGN.md §2): read reliability in the paper is governed by exactly the
// loss chain assembled here, evaluated against the tag chip's sensitivity.
// All tunable constants live in calib.go.
package rf

import (
	"math"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/units"
)

// PatchPattern models the reader's area (patch) antenna: a boresight gain
// with a smooth cosine-power roll-off and a bounded back lobe.
type PatchPattern struct {
	// BoresightGainDBi is the gain on the antenna axis.
	BoresightGainDBi units.DB
	// Exponent shapes the main lobe: power gain falls as
	// cos(theta)^Exponent. Exponent 3 gives roughly a 74° half-power
	// beamwidth, typical for the mid-2000s area antennas the paper used.
	Exponent float64
	// BackLobeDB bounds how far below boresight the pattern can fall
	// (a negative relative value such as -25).
	BackLobeDB units.DB
}

// GainDB returns the pattern gain toward a direction theta radians off
// boresight.
func (p PatchPattern) GainDB(theta float64) units.DB {
	c := math.Cos(theta)
	if c <= 0 {
		return p.BoresightGainDBi + p.BackLobeDB
	}
	rel := units.DB(10 * p.Exponent * math.Log10(c))
	if rel < p.BackLobeDB {
		rel = p.BackLobeDB
	}
	return p.BoresightGainDBi + rel
}

// GainToward returns the pattern gain from an antenna posed at pose toward
// the world point target.
func (p PatchPattern) GainToward(pose geom.Pose, target geom.Vec3) units.DB {
	dir := target.Sub(pose.Pos)
	return p.GainDB(geom.AngleBetween(pose.Forward, dir))
}

// DipolePattern models the tag's label dipole: a toroidal pattern with peak
// gain broadside to the dipole axis and a deep (but bounded) null along it.
// Real label antennas are meandered dipoles, so the axial null does not go
// to -infinity; MinRelDB bounds it.
type DipolePattern struct {
	PeakGainDBi units.DB
	MinRelDB    units.DB // pattern floor relative to peak (negative)
}

// GainDB returns the gain toward a direction psi radians away from the
// dipole axis (psi = π/2 is broadside, the peak).
func (d DipolePattern) GainDB(psi float64) units.DB {
	s := math.Sin(psi)
	rel := units.FromLinear(s * s)
	if rel < d.MinRelDB {
		rel = d.MinRelDB
	}
	return d.PeakGainDBi + rel
}

// GainToward returns the dipole gain from a tag whose axis is axis (world
// frame) at position pos toward the world point target.
func (d DipolePattern) GainToward(axis geom.Vec3, pos, target geom.Vec3) units.DB {
	dir := target.Sub(pos)
	return d.GainDB(geom.AngleBetween(axis, dir))
}

// Polarization enumerates the reader antenna's polarization. Passive label
// tags are linearly polarized along their dipole axis.
type Polarization int

// Polarization values.
const (
	// Circular reader antennas (the common portal choice, and the one that
	// matches the paper's orientation results) lose a flat 3 dB to any
	// linear tag but have no cross-polarized null in the tag's plane.
	Circular Polarization = iota + 1
	// Linear reader antennas lose nothing to an aligned tag but null out a
	// crossed one.
	Linear
)

// String implements fmt.Stringer.
func (p Polarization) String() string {
	switch p {
	case Circular:
		return "circular"
	case Linear:
		return "linear"
	default:
		return "unknown"
	}
}

// PolarizationLossDB returns the polarization mismatch loss (a positive dB
// loss) between a reader antenna and a linear tag dipole.
//
// readerAxis is the reader antenna's electrical axis (only meaningful for
// Linear), tagAxis the tag dipole axis, and dir the propagation direction;
// all in world coordinates. The mismatch is computed between the axes
// projected onto the plane transverse to propagation. crossPolFloorDB
// bounds the loss for crossed linear polarizations (real antennas leak).
func PolarizationLossDB(p Polarization, readerAxis, tagAxis, dir geom.Vec3, crossPolFloorDB units.DB) units.DB {
	if p == Circular {
		return 3
	}
	d := dir.Unit()
	proj := func(v geom.Vec3) geom.Vec3 {
		return v.Sub(d.Scale(v.Dot(d)))
	}
	ra := proj(readerAxis)
	ta := proj(tagAxis)
	if ra.Norm() < 1e-9 || ta.Norm() < 1e-9 {
		// One of the axes is along propagation: treat as fully crossed; the
		// pattern null handles the rest.
		return -crossPolFloorDB
	}
	c := math.Cos(geom.AngleBetween(ra, ta))
	loss := -units.FromLinear(c * c)
	if loss > -crossPolFloorDB {
		loss = -crossPolFloorDB
	}
	return loss
}

// GrazingLossDB models the ground-plane cancellation suffered by a label
// tag mounted close to a conductive surface and illuminated edge-on: the
// image currents in the metal cancel radiation along the horizon, so a tag
// lying flat on a metal case (the paper's "top of the box", 29%) dies at
// grazing incidence while the same tag face-on to the antenna barely
// notices the metal. A tag on plain cardboard (proximityFraction 0) is a
// nearly free-space dipole and has no edge-on penalty — which is why four
// of the paper's six Figure-4 orientations read fine.
//
// cosAlpha is the cosine of the angle between the tag's face normal and
// the direction toward the antenna (sign irrelevant: labels radiate
// through cardboard both ways); proximityFraction in [0,1] is how strongly
// the backing material detunes at the mount gap (0 = free space, 1 = flush
// on metal); maxDB is the full grazing cancellation depth.
func GrazingLossDB(cosAlpha, proximityFraction float64, maxDB units.DB) units.DB {
	a := math.Abs(cosAlpha)
	if a > 1 {
		a = 1
	}
	if proximityFraction < 0 {
		proximityFraction = 0
	} else if proximityFraction > 1 {
		proximityFraction = 1
	}
	return units.DB(float64(maxDB) * (1 - a) * proximityFraction)
}
