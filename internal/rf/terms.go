package rf

import "rfidtrack/internal/units"

// BudgetTerms is the deterministic half of a forward link budget: every
// dB term that is a pure function of scene pose (tag position and mount,
// antenna pose, obstacle and neighbour geometry) at one instant. Nothing
// here depends on the pass or round key — the random fields (shadowing,
// fading) are drawn separately and applied on top — so a resolved
// BudgetTerms can be cached and replayed across passes without perturbing
// any random stream (see world.ResolveLink and DESIGN.md §9).
type BudgetTerms struct {
	// Patch is the reader antenna's pattern gain toward the tag.
	Patch units.DB
	// FSPL is the free-space path loss of the tag–antenna distance.
	FSPL units.DB
	// Pol is the polarization mismatch loss of the better-coupled dipole.
	Pol units.DB
	// Dipole is that dipole's pattern gain toward the antenna.
	Dipole units.DB
	// Graze is the grazing-incidence cancellation loss.
	Graze units.DB
	// Obstruction and ScatterObstruction are the summed carrier blocking
	// losses of the direct and scattered paths.
	Obstruction        units.DB
	ScatterObstruction units.DB
	// Detune is the proximity detuning from the tagged carrier's content.
	Detune units.DB
	// Coupling is the mutual-coupling loss from neighbouring tags.
	Coupling units.DB
	// Reflect is the body-reflection bonus (human carriers only).
	Reflect units.DB
}
