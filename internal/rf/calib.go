package rf

import (
	"rfidtrack/internal/units"
)

// Calibration bundles every tunable physical constant in the simulator.
//
// Per DESIGN.md §5, calibration is allowed to target only the paper's
// *single-opportunity* reliabilities (Tables 1–2 and the endpoints of
// Figs. 2 and 4); all redundancy results must emerge from composition.
// Each value below carries its physical rationale.
type Calibration struct {
	// FreqHz is the carrier frequency. The paper's US deployment uses the
	// 902–928 MHz ISM band; we use the band centre.
	FreqHz float64
	// TxPowerDBm is the conducted reader power. The paper: "maximum power
	// output of 30 dBm (1 watt)".
	TxPowerDBm units.DBm
	// CableLossDB is the feedline loss between reader and antenna.
	CableLossDB units.DB

	// ReaderAntenna is the area (patch) antenna pattern: 6 dBi boresight
	// with a cos^5 power main lobe (~59 degree half-power beamwidth),
	// matching the spec sheets of mid-2000s portal area antennas.
	ReaderAntenna PatchPattern
	// ReaderPolarization: portal area antennas are circularly polarized,
	// which matches the paper's orientation results (in-plane rotation
	// barely matters; pointing the dipole at the antenna is fatal).
	ReaderPolarization Polarization
	// CrossPolFloorDB bounds the cross-polarization loss of a linear
	// reader antenna (leakage keeps it finite).
	CrossPolFloorDB units.DB

	// TagDipole is the label antenna pattern: a half-wave-like meandered
	// dipole, 2.15 dBi peak, with the axial null bounded at -15 dB
	// (meander arms radiate a little along the axis).
	TagDipole DipolePattern
	// GrazingMaxDB is the full depth of the ground-plane grazing
	// cancellation for a tag flush on metal seen edge-on (see
	// GrazingLossDB). The paper's top-of-the-router-box tags sit in this
	// regime.
	GrazingMaxDB units.DB

	// ChipSensitivityDBm is the minimum rectified power for the tag chip
	// to operate. -11 dBm is typical for 2006-era Gen-2 silicon (modern
	// chips reach -20; the paper's range results clearly reflect the
	// older generation).
	ChipSensitivityDBm units.DBm
	// BackscatterLossDB is the modulation/conversion loss between the
	// power incident on the tag and the re-radiated sideband.
	BackscatterLossDB units.DB
	// ReaderSensitivityDBm is the reader receiver sensitivity; monostatic
	// Gen-2 readers of the era decode backscatter to about -75 dBm.
	ReaderSensitivityDBm units.DBm
	// ReaderNoiseFloorDBm is the receiver noise floor in the backscatter
	// bandwidth.
	ReaderNoiseFloorDBm units.DBm
	// ReaderSNRThresholdDB is the post-detection SNR needed to decode FM0
	// backscatter.
	ReaderSNRThresholdDB units.DB

	// TagCaptureMarginDB is the forward-link carrier-to-interference ratio
	// a tag needs to slice PIE symbols out of the envelope. Tags have no
	// channel selectivity, so this is small but applies to the *aggregate*
	// foreign carrier power — the reader-redundancy failure mechanism.
	TagCaptureMarginDB units.DB
	// DenseModeReaderSuppressionDB is how much a dense-reader-mode pair of
	// readers suppresses mutual interference at the *reader* receiver
	// (spectral channelization keeps the foreign carrier out of the
	// backscatter sidebands; phase noise limits the rejection).
	DenseModeReaderSuppressionDB units.DB
	// DenseModeTagSuppressionDB is the effective rejection at the *tag*:
	// the beat between two channelized carriers lands above the tag's
	// envelope-detector data filter, so the tag partially ignores it.
	DenseModeTagSuppressionDB units.DB

	// Lab environments are rich in multipath: tags with no line of sight
	// are still illuminated by floor/wall/cart reflections. The scattered
	// component is modeled as a second path ScatterLossDB below the direct
	// one, with its own (larger) fading, a flattened antenna pattern, and
	// only partial sensitivity to obstructions. This is what keeps the
	// paper's far-side box tags at 63% instead of zero.
	ScatterLossDB units.DB
	// ScatterAntennaGainDB replaces the patch pattern gain on the
	// scattered path (reflections arrive from everywhere).
	ScatterAntennaGainDB units.DB
	// ScatterSigmaDB is the extra lognormal spread of the scattered path.
	ScatterSigmaDB float64
	// (Per-material scattered-path blocking lives in MaterialProperties
	// .ScatterLeakFactor: reflective obstacles are bypassed by multipath,
	// absorbing ones are not.)

	// SigmaTagDB is the standard deviation of the tag-local slow fading
	// component (dB), drawn once per tag per pass and shared by every
	// antenna observing that tag. It captures everything that travels with
	// the tag: mounting variation, local multipath around the object,
	// bending of the label. This shared component is what makes
	// antenna-level redundancy underperform the independence model in the
	// paper (Table 3) while tag-level redundancy matches it.
	SigmaTagDB float64
	// SigmaPathDB is the per-(tag, antenna) slow fading component (dB),
	// independent across antennas.
	SigmaPathDB float64
	// RicianK is the K-factor of the per-inventory-round fast fading
	// (specular-to-scattered power ratio). Portals have a strong direct
	// path, so K is high: deep per-read fades must be rare enough that the
	// paper's 100% single-read reliability at 1 m holds.
	RicianK float64
	// FadingCoherenceSeconds is the temporal coherence of the fast fading:
	// rounds within one coherence block see the same channel draw. At
	// ~1 m/s the channel decorrelates over roughly half a wavelength of
	// motion, i.e. a few hundred milliseconds — without this, a pass with
	// twenty inventory rounds would get twenty independent fading
	// lotteries and every marginal tag would eventually win one.
	FadingCoherenceSeconds float64

	// Materials is the property table for blocking and proximity detuning.
	Materials map[Material]MaterialProperties

	// Inter-tag mutual coupling curve (see CouplingLossDB).
	CouplingMaxLossDB    units.DB
	CouplingHalfDistance float64 // meters
	CouplingExponent     float64

	// Active-tag constants (the paper's future-work extension). An active
	// tag carries a battery: its receiver decodes reader commands far
	// below passive rectification thresholds, and it replies with a real
	// transmitter instead of backscatter.
	ActiveSensitivityDBm units.DBm
	ActiveTxPowerDBm     units.DBm

	// BodyReflectionGainDB is the constructive multipath bonus measured by
	// the paper for the closer of two adjacent subjects ("we attribute the
	// higher read reliabilities to signal reflections off the farther
	// subject"). Applied when another body stands within
	// BodyReflectionRange behind the tag.
	BodyReflectionGainDB units.DB
	BodyReflectionRange  float64 // meters
}

// DefaultCalibration returns the constants used for every experiment in
// EXPERIMENTS.md.
func DefaultCalibration() Calibration {
	return Calibration{
		FreqHz:      915e6,
		TxPowerDBm:  30,
		CableLossDB: 1,

		ReaderAntenna: PatchPattern{
			BoresightGainDBi: 6,
			Exponent:         5,
			BackLobeDB:       -25,
		},
		ReaderPolarization: Circular,
		CrossPolFloorDB:    -15,

		TagDipole: DipolePattern{
			PeakGainDBi: 2.15,
			MinRelDB:    -15,
		},
		GrazingMaxDB: 16,

		ChipSensitivityDBm:   -11,
		BackscatterLossDB:    6,
		ReaderSensitivityDBm: -75,
		ReaderNoiseFloorDBm:  -90,
		ReaderSNRThresholdDB: 10,

		TagCaptureMarginDB:           3,
		DenseModeReaderSuppressionDB: 75,
		DenseModeTagSuppressionDB:    20,

		ScatterLossDB:        4,
		ScatterAntennaGainDB: 1,
		ScatterSigmaDB:       3,

		SigmaTagDB:             4.5,
		SigmaPathDB:            2.5,
		RicianK:                12,
		FadingCoherenceSeconds: 0.35,

		Materials: map[Material]MaterialProperties{
			Air:       {},
			Cardboard: {TransmissionLossDB: 1, ProximityDetuneDB: 1, ProximityRange: 0.01, ScatterLeakFactor: 0.5},
			Plastic:   {TransmissionLossDB: 1.5, ProximityDetuneDB: 2, ProximityRange: 0.01, ScatterLeakFactor: 0.5},
			// A boxed product with a metal case is a leaky shield — seams,
			// plastic bezels and internal gaps pass ~-12 dB — but its case
			// is a strong ground plane for tags mounted against it.
			Metal: {TransmissionLossDB: 12, ProximityDetuneDB: 14, ProximityRange: 0.05, ScatterLeakFactor: 0.12},
			// Water-rich loads absorb strongly and detune nearby tags.
			Liquid: {TransmissionLossDB: 12, ProximityDetuneDB: 10, ProximityRange: 0.03, ScatterLeakFactor: 0.5},
			// A torso blocks most of the signal and detunes touching tags
			// (the paper: "tags should not touch the body").
			Body: {TransmissionLossDB: 18, ProximityDetuneDB: 9, ProximityRange: 0.05, ScatterLeakFactor: 0.55},
		},

		CouplingMaxLossDB:    22,
		CouplingHalfDistance: 0.006,
		CouplingExponent:     1.6,

		ActiveSensitivityDBm: -85,
		ActiveTxPowerDBm:     0,

		BodyReflectionGainDB: 1.5,
		BodyReflectionRange:  1.2,
	}
}

// EIRPDBm returns the boresight effective isotropic radiated power.
func (c Calibration) EIRPDBm() units.DBm {
	return c.TxPowerDBm.Plus(-c.CableLossDB).Plus(c.ReaderAntenna.BoresightGainDBi)
}

// FreeSpaceMarginDB returns the boresight forward-link margin (dB above
// chip sensitivity) for an ideally oriented tag at distance d with no
// losses other than free space, polarization and cable. Useful as a sanity
// anchor: ~13.5 dB at 1 m with the defaults, crossing zero near 4.7 m —
// matching the paper's "100% at 1 m, declining between 2 m and 9 m".
func (c Calibration) FreeSpaceMarginDB(d float64) units.DB {
	polLoss := units.DB(0)
	if c.ReaderPolarization == Circular {
		polLoss = 3
	}
	p := c.EIRPDBm().
		Plus(-units.FSPL(d, c.FreqHz)).
		Plus(-polLoss).
		Plus(c.TagDipole.PeakGainDBi)
	return units.DB(p - c.ChipSensitivityDBm)
}
