// Package landmarc implements LANDMARC-style indoor location sensing
// (Ni, Liu, Lau, Patil — the paper's reference [11] and its cited
// application of active RFID to human tracking): a grid of active
// *reference* tags at known positions shares the radio environment with
// the tags being tracked; a tag's position is estimated as the weighted
// centroid of its k nearest reference tags in *signal space* (per-antenna
// RSSI vectors), which cancels much of the environment's fading.
package landmarc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/world"
)

// ErrNoReferences is returned when locating without references.
var ErrNoReferences = errors.New("landmarc: no reference tags")

// FloorRSSI substitutes for antennas that did not hear a tag at all: the
// bottom of the receivers' dynamic range.
const FloorRSSI = -90.0

// Measurement is a tag's RSSI signature: mean received power per antenna
// name, in dBm.
type Measurement struct {
	ByAntenna map[string]float64
}

// rssi returns the measured value for an antenna, or the floor.
func (m Measurement) rssi(antenna string) float64 {
	if v, ok := m.ByAntenna[antenna]; ok {
		return v
	}
	return FloorRSSI
}

// antennas returns the union of antenna names in a and b, sorted.
func unionAntennas(a, b Measurement) []string {
	set := map[string]bool{}
	for name := range a.ByAntenna {
		set[name] = true
	}
	for name := range b.ByAntenna {
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SignalDistance is the Euclidean distance between two signatures in
// signal space (the paper's E_j).
func SignalDistance(a, b Measurement) float64 {
	var sum float64
	for _, name := range unionAntennas(a, b) {
		d := a.rssi(name) - b.rssi(name)
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Reference is one reference tag: a known position with its signature.
type Reference struct {
	Name   string
	Pos    geom.Vec3
	Signal Measurement
}

// Estimator locates tags against a set of references.
type Estimator struct {
	// K is the number of nearest references in the weighted centroid
	// (LANDMARC found k=4 optimal for their deployment). K is clamped to
	// the number of references.
	K    int
	refs []Reference
}

// NewEstimator returns an estimator using the k nearest references.
func NewEstimator(k int) *Estimator {
	if k <= 0 {
		k = 4
	}
	return &Estimator{K: k}
}

// AddReference registers a reference tag.
func (e *Estimator) AddReference(r Reference) { e.refs = append(e.refs, r) }

// References returns the registered reference count.
func (e *Estimator) References() int { return len(e.refs) }

// Neighbour is one reference with its signal-space distance and centroid
// weight, as returned by Locate for diagnostics.
type Neighbour struct {
	Reference Reference
	Distance  float64
	Weight    float64
}

// Locate estimates the position of a tag with the given signature, also
// returning the neighbours used.
func (e *Estimator) Locate(sig Measurement) (geom.Vec3, []Neighbour, error) {
	if len(e.refs) == 0 {
		return geom.Vec3{}, nil, ErrNoReferences
	}
	k := e.K
	if k > len(e.refs) {
		k = len(e.refs)
	}
	nn := make([]Neighbour, len(e.refs))
	for i, r := range e.refs {
		nn[i] = Neighbour{Reference: r, Distance: SignalDistance(sig, r.Signal)}
	}
	sort.Slice(nn, func(i, j int) bool { return nn[i].Distance < nn[j].Distance })
	nn = nn[:k]

	// Weights 1/E², normalized. An exact signal match dominates.
	const eps = 1e-9
	var wsum float64
	for i := range nn {
		nn[i].Weight = 1 / (nn[i].Distance*nn[i].Distance + eps)
		wsum += nn[i].Weight
	}
	var pos geom.Vec3
	for i := range nn {
		nn[i].Weight /= wsum
		pos = pos.Add(nn[i].Reference.Pos.Scale(nn[i].Weight))
	}
	return pos, nn, nil
}

// Collect measures a tag's RSSI signature in a world: the mean decodable
// reverse-link power at each antenna over the given number of fading
// samples. Antennas that never decode the tag are omitted (the estimator
// substitutes the floor).
func Collect(w *world.World, tag *world.Tag, antennas []*world.Antenna, pass, samples int) Measurement {
	if samples <= 0 {
		samples = 8
	}
	m := Measurement{ByAntenna: map[string]float64{}}
	for _, ant := range antennas {
		var sum float64
		heard := 0
		for s := 0; s < samples; s++ {
			// Spread samples across fading coherence blocks.
			t := float64(s) * math.Max(w.Cal.FadingCoherenceSeconds, 0.1)
			l := w.ResolveLink(tag, ant, world.LinkContext{Time: t, Pass: pass, Round: s})
			if l.Readable(w.Cal) {
				sum += float64(l.ReaderPower)
				heard++
			}
		}
		if heard > 0 {
			m.ByAntenna[ant.Name] = sum / float64(heard)
		}
	}
	return m
}

// CollectAll measures the signatures of many tags in one sweep. With
// batched resolution enabled it resolves the whole (tag × antenna) grid
// once per fading sample via world.ResolveLinkGrid — the survey cost
// drops from tags × antennas × samples separate resolutions to samples
// grid passes — and otherwise it degenerates to per-tag Collect calls.
// Either way each signature is bit-identical to Collect's: the per-link
// powers are equal and the per-antenna means accumulate in the same
// ascending-sample order.
func CollectAll(w *world.World, tags []*world.Tag, antennas []*world.Antenna, pass, samples int) []Measurement {
	if samples <= 0 {
		samples = 8
	}
	out := make([]Measurement, len(tags))
	if !w.LinkBatchEnabled() {
		for i, tag := range tags {
			out[i] = Collect(w, tag, antennas, pass, samples)
		}
		return out
	}
	sums := make([]float64, len(tags)*len(antennas))
	heard := make([]int, len(tags)*len(antennas))
	var g world.LinkGrid
	for s := 0; s < samples; s++ {
		t := float64(s) * math.Max(w.Cal.FadingCoherenceSeconds, 0.1)
		w.ResolveLinkGrid(antennas, world.LinkContext{Time: t, Pass: pass, Round: s}, &g)
		for ti, tag := range tags {
			for ai, ant := range antennas {
				if l := g.Link(ant, tag); l.Readable(w.Cal) {
					sums[ti*len(antennas)+ai] += float64(l.ReaderPower)
					heard[ti*len(antennas)+ai]++
				}
			}
		}
	}
	for ti := range tags {
		m := Measurement{ByAntenna: map[string]float64{}}
		for ai, ant := range antennas {
			if h := heard[ti*len(antennas)+ai]; h > 0 {
				m.ByAntenna[ant.Name] = sums[ti*len(antennas)+ai] / float64(h)
			}
		}
		out[ti] = m
	}
	return out
}

// Survey builds an estimator from a set of reference tags already placed
// in the world. The reference signatures are collected in one batched
// sweep (see CollectAll).
func Survey(w *world.World, refs []*world.Tag, antennas []*world.Antenna, k, pass, samples int) (*Estimator, error) {
	if len(refs) == 0 {
		return nil, ErrNoReferences
	}
	e := NewEstimator(k)
	sigs := CollectAll(w, refs, antennas, pass, samples)
	for i, tag := range refs {
		e.AddReference(Reference{
			Name:   tag.Name,
			Pos:    tag.Pos(0),
			Signal: sigs[i],
		})
	}
	return e, nil
}

// String implements fmt.Stringer for diagnostics.
func (n Neighbour) String() string {
	return fmt.Sprintf("%s E=%.2f w=%.2f", n.Reference.Name, n.Distance, n.Weight)
}
