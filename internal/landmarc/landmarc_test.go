package landmarc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

func sig(vals ...float64) Measurement {
	m := Measurement{ByAntenna: map[string]float64{}}
	for i, v := range vals {
		m.ByAntenna[fmt.Sprintf("a%d", i)] = v
	}
	return m
}

func TestSignalDistance(t *testing.T) {
	a := sig(-50, -60)
	b := sig(-53, -56)
	if got := SignalDistance(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("distance = %v, want 5", got)
	}
	if got := SignalDistance(a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	// Missing antennas fall to the floor.
	c := Measurement{ByAntenna: map[string]float64{"a0": -50}}
	d := Measurement{ByAntenna: map[string]float64{"a0": -50, "a1": FloorRSSI}}
	if got := SignalDistance(c, d); got != 0 {
		t.Errorf("floor-substituted distance = %v, want 0", got)
	}
}

func TestLocateExactReferenceMatch(t *testing.T) {
	e := NewEstimator(4)
	e.AddReference(Reference{Name: "r1", Pos: geom.V(0, 0, 0), Signal: sig(-40, -70)})
	e.AddReference(Reference{Name: "r2", Pos: geom.V(4, 0, 0), Signal: sig(-70, -40)})
	e.AddReference(Reference{Name: "r3", Pos: geom.V(2, 3, 0), Signal: sig(-55, -55)})

	pos, nn, err := e.Locate(sig(-40, -70))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Dist(geom.V(0, 0, 0)) > 0.01 {
		t.Errorf("exact match located at %v", pos)
	}
	if nn[0].Reference.Name != "r1" || nn[0].Weight < 0.99 {
		t.Errorf("nearest neighbour = %+v", nn[0])
	}
}

func TestLocateInterpolates(t *testing.T) {
	e := NewEstimator(2)
	e.AddReference(Reference{Name: "left", Pos: geom.V(0, 0, 0), Signal: sig(-40, -70)})
	e.AddReference(Reference{Name: "right", Pos: geom.V(4, 0, 0), Signal: sig(-70, -40)})
	// Exactly between the two signatures: the midpoint.
	pos, nn, err := e.Locate(sig(-55, -55))
	if err != nil {
		t.Fatal(err)
	}
	if pos.Dist(geom.V(2, 0, 0)) > 0.01 {
		t.Errorf("midpoint located at %v", pos)
	}
	if math.Abs(nn[0].Weight-0.5) > 0.01 {
		t.Errorf("weights = %v / %v, want ~0.5 each", nn[0].Weight, nn[1].Weight)
	}
}

func TestLocateKClamping(t *testing.T) {
	e := NewEstimator(10) // more than we have
	e.AddReference(Reference{Name: "r1", Pos: geom.V(0, 0, 0), Signal: sig(-40)})
	e.AddReference(Reference{Name: "r2", Pos: geom.V(1, 0, 0), Signal: sig(-50)})
	_, nn, err := e.Locate(sig(-45))
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 {
		t.Errorf("neighbours = %d, want clamped to 2", len(nn))
	}
	// Weights normalize.
	if math.Abs(nn[0].Weight+nn[1].Weight-1) > 1e-9 {
		t.Error("weights do not sum to 1")
	}
	// Default k.
	if NewEstimator(0).K != 4 {
		t.Error("default k != 4")
	}
}

func TestLocateNoReferences(t *testing.T) {
	if _, _, err := NewEstimator(4).Locate(sig(-50)); !errors.Is(err, ErrNoReferences) {
		t.Errorf("err = %v", err)
	}
	if _, err := Survey(nil, nil, nil, 4, 0, 1); !errors.Is(err, ErrNoReferences) {
		t.Errorf("survey err = %v", err)
	}
}

// roomWorld builds a 6x6 m room with four corner antennas and a 4x4 grid
// of active reference tags at 1 m height.
func roomWorld(seed uint64) (*world.World, []*world.Antenna, []*world.Tag) {
	w := world.New(rf.DefaultCalibration(), seed)
	var ants []*world.Antenna
	corners := []geom.Vec3{{X: 0, Y: 0, Z: 2}, {X: 6, Y: 0, Z: 2}, {X: 0, Y: 6, Z: 2}, {X: 6, Y: 6, Z: 2}}
	for i, c := range corners {
		ants = append(ants, w.AddAntenna(fmt.Sprintf("a%d", i),
			geom.NewPose(c, geom.V(3, 3, 1).Sub(c), geom.UnitZ)))
	}
	var refs []*world.Tag
	n := 0
	for gx := 0; gx < 4; gx++ {
		for gy := 0; gy < 4; gy++ {
			pos := geom.V(0.75+float64(gx)*1.5, 0.75+float64(gy)*1.5, 1)
			board := w.AddBox(fmt.Sprintf("ref-mount%d", n),
				geom.StaticPath{Pose: geom.NewPose(pos, geom.UnitX, geom.UnitZ)},
				geom.V(0.05, 0.05, 0.05), rf.Plastic, rf.Air, geom.Vec3{})
			code, err := epc.GID96{Manager: 7, Class: 1, Serial: uint64(n)}.Encode()
			if err != nil {
				panic(err)
			}
			refs = append(refs, w.AttachActiveTag(board, fmt.Sprintf("ref%02d", n), code, world.Mount{
				Normal: geom.UnitZ, Axis: geom.UnitX, Axis2: geom.UnitY, Gap: 0.1,
			}))
			n++
		}
	}
	return w, ants, refs
}

func TestLocalizationInSimulatedRoom(t *testing.T) {
	w, ants, refs := roomWorld(33)
	est, err := Survey(w, refs, ants, 4, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est.References() != 16 {
		t.Fatalf("surveyed %d references", est.References())
	}

	// Track tags at several positions; LANDMARC-class accuracy is around
	// 1-2 m median error for this density.
	targets := []geom.Vec3{
		{X: 1.5, Y: 1.5, Z: 1}, {X: 3, Y: 3, Z: 1}, {X: 4.5, Y: 2.25, Z: 1}, {X: 2.25, Y: 4.5, Z: 1},
	}
	var errs []float64
	for i, pos := range targets {
		board := w.AddBox(fmt.Sprintf("target-mount%d", i),
			geom.StaticPath{Pose: geom.NewPose(pos, geom.UnitX, geom.UnitZ)},
			geom.V(0.05, 0.05, 0.05), rf.Plastic, rf.Air, geom.Vec3{})
		code, err := epc.GID96{Manager: 7, Class: 2, Serial: uint64(i)}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		target := w.AttachActiveTag(board, fmt.Sprintf("target%d", i), code, world.Mount{
			Normal: geom.UnitZ, Axis: geom.UnitX, Axis2: geom.UnitY, Gap: 0.1,
		})
		got, _, err := est.Locate(Collect(w, target, ants, 1+i, 8))
		if err != nil {
			t.Fatal(err)
		}
		e := got.Dist(pos)
		errs = append(errs, e)
		if e > 3 {
			t.Errorf("target %d at %v located at %v (error %.2f m)", i, pos, got, e)
		}
	}
	sort.Float64s(errs)
	if med := errs[len(errs)/2]; med > 2 {
		t.Errorf("median localization error %.2f m, want LANDMARC-class (<2 m)", med)
	}
}

func TestNeighbourString(t *testing.T) {
	n := Neighbour{Reference: Reference{Name: "r1"}, Distance: 1.5, Weight: 0.25}
	if got := n.String(); got != "r1 E=1.50 w=0.25" {
		t.Errorf("String = %q", got)
	}
}
