package gen2

import (
	"fmt"
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

func makeParticipants(t *testing.T, n int, seed uint64) []Participant {
	t.Helper()
	parent := xrand.New(seed)
	parts := make([]Participant, n)
	for i := range parts {
		code, err := epc.GID96{Manager: 42, Class: 1, Serial: uint64(i)}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tag := tagsim.New(code, parent.Split(fmt.Sprintf("tag/%d", i)))
		tag.SetPower(true, 0)
		parts[i] = Participant{Tag: tag, ForwardOK: true, ReverseOK: true}
	}
	return parts
}

func TestRoundReadsAllHealthyTags(t *testing.T) {
	for _, n := range []int{1, 5, 20, 60} {
		parts := makeParticipants(t, n, uint64(n))
		res := RunRound(DefaultConfig(), parts, 0)
		if len(res.Reads) != n {
			t.Errorf("n=%d: read %d tags in one adaptive round", n, len(res.Reads))
		}
		seen := map[epc.Code]bool{}
		for _, r := range res.Reads {
			if seen[r.EPC] {
				t.Errorf("n=%d: duplicate read of %v", n, r.EPC)
			}
			seen[r.EPC] = true
		}
		if res.Singles != len(res.Reads) {
			t.Errorf("n=%d: singles %d != reads %d", n, res.Singles, len(res.Reads))
		}
	}
}

func TestRoundEmptyPopulation(t *testing.T) {
	res := RunRound(DefaultConfig(), nil, 0)
	if len(res.Reads) != 0 {
		t.Error("read tags out of thin air")
	}
	if res.Slots == 0 {
		t.Error("round should still consume slots")
	}
	if res.Duration <= 0 {
		t.Error("round should consume time")
	}
}

func TestRoundSkipsDeafTags(t *testing.T) {
	parts := makeParticipants(t, 4, 1)
	parts[2].ForwardOK = false
	res := RunRound(DefaultConfig(), parts, 0)
	if len(res.Reads) != 3 {
		t.Fatalf("reads = %d, want 3", len(res.Reads))
	}
	for _, r := range res.Reads {
		if r.Index == 2 {
			t.Error("deaf tag was read")
		}
	}
}

func TestRoundSkipsInaudibleTags(t *testing.T) {
	parts := makeParticipants(t, 4, 2)
	parts[1].ReverseOK = false
	res := RunRound(DefaultConfig(), parts, 0)
	if len(res.Reads) != 3 {
		t.Fatalf("reads = %d, want 3", len(res.Reads))
	}
	for _, r := range res.Reads {
		if r.Index == 1 {
			t.Error("inaudible tag was read")
		}
	}
}

func TestRoundTerminatesWithOnlyInaudibleTags(t *testing.T) {
	// A tag the reader can never hear must not hang the round.
	parts := makeParticipants(t, 3, 3)
	for i := range parts {
		parts[i].ReverseOK = false
	}
	res := RunRound(DefaultConfig(), parts, 0)
	if len(res.Reads) != 0 {
		t.Error("read inaudible tags")
	}
	if res.Slots >= 4096 {
		t.Errorf("round ran to the MaxSlots backstop (%d slots)", res.Slots)
	}
}

func TestInventoriedTagsDropOut(t *testing.T) {
	parts := makeParticipants(t, 10, 4)
	cfg := DefaultConfig()
	first := RunRound(cfg, parts, 0)
	if len(first.Reads) != 10 {
		t.Fatalf("first round read %d", len(first.Reads))
	}
	// Immediately after, every tag's S1 flag is B: an A-targeted round
	// finds nobody.
	second := RunRound(cfg, parts, first.Duration)
	if len(second.Reads) != 0 {
		t.Errorf("second round re-read %d tags before flag decay", len(second.Reads))
	}
	// After the S1 persistence window the flags decay and tags return.
	third := RunRound(cfg, parts, first.Duration+3)
	if len(third.Reads) != 10 {
		t.Errorf("third round read %d tags after decay, want 10", len(third.Reads))
	}
}

func TestFixedQRound(t *testing.T) {
	parts := makeParticipants(t, 3, 5)
	cfg := DefaultConfig()
	cfg.Adaptive = false
	cfg.InitialQ = 6
	res := RunRound(cfg, parts, 0)
	if res.Slots != 64 {
		t.Errorf("fixed round ran %d slots, want 64", res.Slots)
	}
	if len(res.Reads) != 3 {
		t.Errorf("fixed round read %d tags, want 3", len(res.Reads))
	}
}

func TestCaptureEffect(t *testing.T) {
	// Two tags always collide under Q=0 (both reply in slot 0 forever).
	// With one of them inaudible and capture on, the audible one is read.
	parts := makeParticipants(t, 2, 6)
	parts[1].ReverseOK = false
	cfg := DefaultConfig()
	cfg.Adaptive = false
	cfg.InitialQ = 0
	cfg.Capture = true
	res := RunRound(cfg, parts, 0)
	if len(res.Reads) != 1 || res.Reads[0].Index != 0 {
		t.Errorf("capture failed: %+v", res.Reads)
	}
	if res.Captures == 0 {
		t.Error("capture not counted")
	}
}

func TestNoCaptureMeansCollision(t *testing.T) {
	parts := makeParticipants(t, 2, 7)
	parts[1].ReverseOK = false
	cfg := DefaultConfig()
	cfg.Adaptive = false
	cfg.InitialQ = 0
	cfg.Capture = false
	res := RunRound(cfg, parts, 0)
	if len(res.Reads) != 0 {
		t.Errorf("reads = %+v, want none without capture", res.Reads)
	}
}

func TestRoundDurationScalesWithPopulation(t *testing.T) {
	small := RunRound(DefaultConfig(), makeParticipants(t, 2, 8), 0)
	large := RunRound(DefaultConfig(), makeParticipants(t, 40, 9), 0)
	if large.Duration <= small.Duration {
		t.Errorf("duration did not grow: %v vs %v", small.Duration, large.Duration)
	}
	// The paper's throughput anchor: reading a tag costs about 0.02 s.
	perTag := large.Duration / 40
	if perTag < 0.01 || perTag > 0.04 {
		t.Errorf("per-tag cost = %.4fs, want ~0.02s", perTag)
	}
}

func TestCollisionsHappenAtLowQ(t *testing.T) {
	parts := makeParticipants(t, 30, 10)
	cfg := DefaultConfig()
	cfg.InitialQ = 1 // far too small for 30 tags: collisions guaranteed
	res := RunRound(cfg, parts, 0)
	if res.Collisions == 0 {
		t.Error("no collisions with 30 tags at Q=1")
	}
	// The adaptive controller must still resolve everyone.
	if len(res.Reads) != 30 {
		t.Errorf("adaptive round read %d/30", len(res.Reads))
	}
	if res.FinalQ == 15 {
		t.Error("Q ran away to the ceiling")
	}
}

func TestQAlgorithm(t *testing.T) {
	a := NewQAlgorithm(4, 0.5)
	if a.Q() != 4 {
		t.Fatalf("initial Q = %d", a.Q())
	}
	a.OnCollision()
	if a.Q() != 5 {
		t.Errorf("Q after collision = %d, want 5 (4.5 rounds up)", a.Q())
	}
	for i := 0; i < 20; i++ {
		a.OnEmpty()
	}
	if a.Q() != 0 || !a.Exhausted() {
		t.Errorf("Q after many empties = %d, exhausted=%v", a.Q(), a.Exhausted())
	}
	// Floor and ceiling.
	a.OnEmpty()
	if a.Q() != 0 {
		t.Error("Q went below 0")
	}
	b := NewQAlgorithm(15, 0.5)
	b.OnCollision()
	b.OnCollision()
	if b.Q() != 15 {
		t.Error("Q went above 15")
	}
	// Zero/negative C defaults sanely.
	c := NewQAlgorithm(4, -1)
	c.OnEmpty()
	if c.Q() > 4 {
		t.Error("default C broken")
	}
}

func TestTimingAnchors(t *testing.T) {
	tm := DefaultTiming()
	// One successful singulation is ~2 ms of air time plus ~18 ms
	// controller overhead: the paper's 0.02 s per tag.
	s := tm.SuccessSlotSeconds()
	if s < 0.015 || s > 0.03 {
		t.Errorf("success slot = %.4fs, want ~0.02", s)
	}
	if tm.EmptySlotSeconds() >= tm.CollisionSlotSeconds() {
		t.Error("empty slot should be cheaper than a collision")
	}
	if tm.CollisionSlotSeconds() >= s {
		t.Error("collision should be cheaper than a full singulation")
	}
	if tm.QuerySeconds() <= 0 || tm.AdjustSeconds() <= 0 {
		t.Error("command times must be positive")
	}
	// Degenerate BLF must not divide by zero.
	bad := tm
	bad.BLFHz = 0
	if bad.TagReplySeconds(16) != 0 {
		t.Error("zero BLF should yield zero reply time")
	}
}
