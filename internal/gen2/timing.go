package gen2

// LinkTiming models the PIE / backscatter air timing plus the reader's
// controller overhead, so that inventory rounds consume realistic amounts
// of simulated time. The paper's caveat — redundancy only helps when there
// is "adequate time for all tags to be read, which is around .02 sec per
// tag" — falls out of these numbers: the air exchange for one singulation
// is ~2 ms and the remaining ~18 ms is reader firmware and backhaul, which
// the AR400-era equipment very much exhibited.
type LinkTiming struct {
	// TariSeconds is the reader data-0 symbol length (PIE reference).
	TariSeconds float64
	// ReaderPreambleSeconds precedes every reader command.
	ReaderPreambleSeconds float64
	// BLFHz is the tag backscatter link frequency (FM0 bit rate).
	BLFHz float64
	// T1 and T2 are the spec turnaround gaps; T3 is the extra wait the
	// reader allows before declaring an empty slot.
	T1Seconds, T2Seconds, T3Seconds float64
	// ControllerOverheadPerRead is firmware/backhaul time consumed per
	// successful singulation over and above air time.
	ControllerOverheadPerRead float64
	// ControllerOverheadPerSlot is per-slot scheduling overhead.
	ControllerOverheadPerSlot float64
	// ControllerOverheadPerRound is the fixed firmware cost of an
	// inventory cycle (antenna switching, buffer management). AR400-class
	// readers cycled at roughly 5-10 rounds per second.
	ControllerOverheadPerRound float64
}

// DefaultTiming returns values typical of the paper's era: Tari 12.5 µs,
// FM0 backscatter at 250 kHz, and controller overhead calibrated so that a
// successful read costs ≈20 ms end to end.
func DefaultTiming() LinkTiming {
	return LinkTiming{
		TariSeconds:                12.5e-6,
		ReaderPreambleSeconds:      62.5e-6,
		BLFHz:                      250e3,
		T1Seconds:                  62.5e-6,
		T2Seconds:                  80e-6,
		T3Seconds:                  100e-6,
		ControllerOverheadPerRead:  17.5e-3,
		ControllerOverheadPerSlot:  300e-6,
		ControllerOverheadPerRound: 120e-3,
	}
}

// ReaderCommandSeconds returns the air time of a reader command of the
// given bit length. PIE data-1 symbols are ~2 Tari and data-0 are 1 Tari;
// an even mix averages 1.5 Tari per bit.
func (t LinkTiming) ReaderCommandSeconds(bits int) float64 {
	return t.ReaderPreambleSeconds + float64(bits)*1.5*t.TariSeconds
}

// TagReplySeconds returns the air time of a tag backscatter of the given
// payload bit length (FM0: one bit per BLF cycle, plus a 6-bit preamble
// and the dummy terminating bit).
func (t LinkTiming) TagReplySeconds(bits int) float64 {
	if t.BLFHz <= 0 {
		return 0
	}
	return float64(bits+7) / t.BLFHz
}

// EmptySlotSeconds is the time an empty slot costs the round.
func (t LinkTiming) EmptySlotSeconds() float64 {
	return t.ReaderCommandSeconds(QueryRep{}.Bits()) + t.T1Seconds + t.T3Seconds +
		t.ControllerOverheadPerSlot
}

// CollisionSlotSeconds is the time a collided slot costs: the reader
// listens to the full RN16 window before giving up.
func (t LinkTiming) CollisionSlotSeconds() float64 {
	return t.ReaderCommandSeconds(QueryRep{}.Bits()) + t.T1Seconds +
		t.TagReplySeconds(16) + t.T2Seconds + t.ControllerOverheadPerSlot
}

// SuccessSlotSeconds is the complete singulation exchange: QueryRep, RN16,
// ACK, PC+EPC+CRC reply, plus controller overhead.
func (t LinkTiming) SuccessSlotSeconds() float64 {
	return t.ReaderCommandSeconds(QueryRep{}.Bits()) + t.T1Seconds +
		t.TagReplySeconds(16) + t.T2Seconds +
		t.ReaderCommandSeconds(ACK{}.Bits()) + t.T1Seconds +
		t.TagReplySeconds(16+96+16) + t.T2Seconds +
		t.ControllerOverheadPerSlot + t.ControllerOverheadPerRead
}

// QuerySeconds is the cost of issuing the round-opening Query, including
// the per-round controller overhead.
func (t LinkTiming) QuerySeconds() float64 {
	return t.ReaderCommandSeconds(Query{}.Bits()) + t.ControllerOverheadPerSlot +
		t.ControllerOverheadPerRound
}

// AdjustSeconds is the cost of a QueryAdjust.
func (t LinkTiming) AdjustSeconds() float64 {
	return t.ReaderCommandSeconds(QueryAdjust{}.Bits()) + t.ControllerOverheadPerSlot
}
