package gen2

import (
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

func TestTagSelectMatching(t *testing.T) {
	code, err := epc.GID96{Manager: 95100000, Class: 42, Serial: 7}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tag := tagsim.New(code, xrand.New(1))
	tag.SetPower(true, 0)

	// Match the 8-bit GID header at pointer 0.
	header := epc.NewBits(uint64(epc.HeaderGID96), 8)
	if !tag.Select(0, header) || !tag.Selected() {
		t.Error("header mask did not match a GID tag")
	}
	// A wrong mask deasserts SL.
	wrong := epc.NewBits(uint64(epc.HeaderSGTIN96), 8)
	if tag.Select(0, wrong) || tag.Selected() {
		t.Error("SGTIN mask matched a GID tag")
	}
	// Out-of-range masks never match.
	if tag.Select(90, header) {
		t.Error("mask past the EPC end matched")
	}
	if tag.Select(-1, header) {
		t.Error("negative pointer matched")
	}
	if tag.Select(0, nil) {
		t.Error("nil mask matched")
	}
	// Unpowered tags ignore Select.
	tag.SetPower(false, 1)
	if tag.Select(0, header) {
		t.Error("unpowered tag handled Select")
	}
}

func TestRoundWithSelectFiltersPopulation(t *testing.T) {
	parent := xrand.New(5)
	// Mixed population: 4 GID badges and 4 SGTIN case labels.
	var parts []Participant
	for i := 0; i < 4; i++ {
		code, err := epc.GID96{Manager: 1, Class: 1, Serial: uint64(i)}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tag := tagsim.New(code, parent.Split("gid"+string(rune('0'+i))))
		tag.SetPower(true, 0)
		parts = append(parts, Participant{Tag: tag, ForwardOK: true, ReverseOK: true})
	}
	for i := 0; i < 4; i++ {
		code, err := epc.SGTIN96{Filter: 1, CompanyDigits: 7, Company: 614141, ItemRef: 1, Serial: uint64(i)}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tag := tagsim.New(code, parent.Split("sgtin"+string(rune('0'+i))))
		tag.SetPower(true, 0)
		parts = append(parts, Participant{Tag: tag, ForwardOK: true, ReverseOK: true})
	}

	cfg := DefaultConfig()
	cfg.SelectMask = epc.NewBits(uint64(epc.HeaderSGTIN96), 8)
	cfg.SelectPointer = 0
	res := RunRound(cfg, parts, 0)
	if len(res.Reads) != 4 {
		t.Fatalf("selected round read %d tags, want the 4 SGTINs", len(res.Reads))
	}
	for _, r := range res.Reads {
		if r.EPC.Header() != epc.HeaderSGTIN96 {
			t.Errorf("read a filtered-out tag: %v", r.EPC.URI())
		}
	}
	// The GID badges were not inventoried: a follow-up unfiltered round
	// still finds them (SGTINs flipped their flag and drop out).
	res2 := RunRound(DefaultConfig(), parts, res.Duration)
	if len(res2.Reads) != 4 {
		t.Fatalf("follow-up round read %d tags, want the 4 GIDs", len(res2.Reads))
	}
	for _, r := range res2.Reads {
		if r.EPC.Header() != epc.HeaderGID96 {
			t.Errorf("unexpected tag in follow-up: %v", r.EPC.URI())
		}
	}
}

func TestReplyCorruptionRecovery(t *testing.T) {
	parts := makeParticipants(t, 10, 11)
	cfg := DefaultConfig()
	cfg.ReplyCorruptionProb = 0.4
	cfg.Rng = xrand.New(99)
	res := RunRound(cfg, parts, 0)
	// Heavy corruption costs retries but every tag is still read: the
	// NAK/re-arbitrate recovery path works.
	if len(res.Reads) != 10 {
		t.Fatalf("read %d/10 tags under corruption", len(res.Reads))
	}
	if res.CRCFailures == 0 {
		t.Error("no CRC failures at 40% corruption")
	}
	// The corrupted attempts cost time: the round is longer than clean.
	clean := RunRound(DefaultConfig(), makeParticipants(t, 10, 11), 0)
	if res.Duration <= clean.Duration {
		t.Errorf("corrupted round (%v) not longer than clean (%v)", res.Duration, clean.Duration)
	}
	// Without an Rng, the corruption knob is inert.
	inert := DefaultConfig()
	inert.ReplyCorruptionProb = 1
	res3 := RunRound(inert, makeParticipants(t, 5, 12), 0)
	if res3.CRCFailures != 0 || len(res3.Reads) != 5 {
		t.Error("corruption ran without an Rng")
	}
}

func TestCorruptionNeverLosesOrDuplicates(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		parts := makeParticipants(t, 12, 100+seed)
		cfg := DefaultConfig()
		cfg.ReplyCorruptionProb = 0.25
		cfg.Rng = xrand.New(seed)
		res := RunRound(cfg, parts, 0)
		seen := map[epc.Code]int{}
		for _, r := range res.Reads {
			seen[r.EPC]++
		}
		for code, n := range seen {
			if n > 1 {
				t.Fatalf("seed %d: %v read %d times in one round", seed, code, n)
			}
		}
		if len(seen) != 12 {
			t.Fatalf("seed %d: read %d/12 distinct tags", seed, len(seen))
		}
	}
}
