package gen2

import (
	"errors"
	"testing"
	"testing/quick"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
)

func TestQueryFrameRoundTrip(t *testing.T) {
	q := Query{DR: true, M: 2, TRext: true, Sel: 1, Session: tagsim.S2, Target: tagsim.FlagB, Q: 9}
	b := q.Encode()
	if b.Len() != q.Bits() {
		t.Fatalf("frame length %d, want %d", b.Len(), q.Bits())
	}
	cmd, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cmd.(Query)
	if !ok {
		t.Fatalf("decoded %T", cmd)
	}
	if got != q {
		t.Errorf("roundtrip = %+v, want %+v", got, q)
	}
}

func TestQueryCRC5Detection(t *testing.T) {
	b := Query{Q: 4}.Encode()
	// Flip a payload bit: decode must fail.
	corrupt := &epc.Bits{}
	for i := 0; i < b.Len(); i++ {
		bit := b.Bit(i)
		if i == 10 {
			bit = !bit
		}
		corrupt.AppendBit(bit)
	}
	if _, err := Decode(corrupt); !errors.Is(err, ErrBadFrame) {
		t.Errorf("corrupted Query decoded: %v", err)
	}
}

func TestQueryRepRoundTrip(t *testing.T) {
	for _, s := range []tagsim.Session{tagsim.S0, tagsim.S1, tagsim.S2, tagsim.S3} {
		b := QueryRep{Session: s}.Encode()
		cmd, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got := cmd.(QueryRep); got.Session != s {
			t.Errorf("session = %v, want %v", got.Session, s)
		}
	}
}

func TestQueryAdjustRoundTrip(t *testing.T) {
	for _, updn := range []int{-1, 0, 1} {
		b := QueryAdjust{Session: tagsim.S1, UpDn: updn}.Encode()
		if b.Len() != 9 {
			t.Fatalf("length %d", b.Len())
		}
		cmd, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		got := cmd.(QueryAdjust)
		if got.UpDn != updn || got.Session != tagsim.S1 {
			t.Errorf("roundtrip = %+v", got)
		}
	}
}

func TestACKRoundTrip(t *testing.T) {
	f := func(rn uint16) bool {
		cmd, err := Decode(ACK{RN16: rn}.Encode())
		if err != nil {
			return false
		}
		got, ok := cmd.(ACK)
		return ok && got.RN16 == rn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNAKRoundTrip(t *testing.T) {
	cmd, err := Decode(NAK{}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cmd.(NAK); !ok {
		t.Fatalf("decoded %T", cmd)
	}
}

func TestSelectRoundTrip(t *testing.T) {
	mask := epc.NewBits(0b10110011, 8)
	s := Select{Target: 4, Action: 2, MemBank: 1, Pointer: 32, Mask: mask, Truncate: true}
	b := s.Encode()
	if b.Len() != s.Bits() {
		t.Fatalf("frame length %d, want %d", b.Len(), s.Bits())
	}
	cmd, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := cmd.(Select)
	if got.Target != 4 || got.Action != 2 || got.MemBank != 1 || got.Pointer != 32 || !got.Truncate {
		t.Errorf("fields = %+v", got)
	}
	if !got.Mask.Equal(mask) {
		t.Errorf("mask = %s, want %s", got.Mask, mask)
	}
}

func TestSelectEmptyMask(t *testing.T) {
	b := Select{}.Encode()
	cmd, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmd.(Select); got.Mask.Len() != 0 {
		t.Errorf("mask length = %d", got.Mask.Len())
	}
}

func TestSelectCRC16Detection(t *testing.T) {
	b := Select{Pointer: 7}.Encode()
	corrupt := &epc.Bits{}
	for i := 0; i < b.Len(); i++ {
		bit := b.Bit(i)
		if i == 15 {
			bit = !bit
		}
		corrupt.AppendBit(bit)
	}
	if _, err := Decode(corrupt); !errors.Is(err, ErrBadFrame) {
		t.Errorf("corrupted Select decoded: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []*epc.Bits{
		epc.NewBits(0b11, 2),          // too short
		epc.NewBits(0b1000111, 7),     // Query prefix, wrong length
		epc.NewBits(0b11111111, 8),    // unknown 8-bit pattern
		epc.NewBits(0b1001000111, 10), // QueryAdjust wrong length
		epc.NewBits(0b0100, 4),        // ACK prefix, wrong length
	}
	for _, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("Decode(%s) err = %v, want ErrBadFrame", b, err)
		}
	}
}

func TestEPCReplyRoundTrip(t *testing.T) {
	code, _ := epc.GID96{Manager: 9, Class: 8, Serial: 7}.Encode()
	b := EncodeEPCReply(6<<11, code)
	pc, got, err := DecodeEPCReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if pc != 6<<11 || got != code {
		t.Errorf("roundtrip = %#x %v", pc, got)
	}
	// Corruption detection.
	corrupt := &epc.Bits{}
	for i := 0; i < b.Len(); i++ {
		bit := b.Bit(i)
		if i == 40 {
			bit = !bit
		}
		corrupt.AppendBit(bit)
	}
	if _, _, err := DecodeEPCReply(corrupt); !errors.Is(err, ErrBadFrame) {
		t.Error("corrupted EPC reply decoded")
	}
	if _, _, err := DecodeEPCReply(epc.NewBits(1, 20)); !errors.Is(err, ErrBadFrame) {
		t.Error("short EPC reply decoded")
	}
}

func TestQueryFrameRoundTripProperty(t *testing.T) {
	f := func(dr, trext bool, m, sel, sess, target, qv uint8) bool {
		q := Query{
			DR: dr, M: m % 4, TRext: trext, Sel: sel % 4,
			Session: tagsim.Session(sess % 4),
			Target:  tagsim.Flag(target % 2),
			Q:       qv % 16,
		}
		cmd, err := Decode(q.Encode())
		if err != nil {
			return false
		}
		got, ok := cmd.(Query)
		return ok && got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
