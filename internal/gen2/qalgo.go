package gen2

import "math"

// QAlgorithm is the reader-side adaptive slot-count controller from the
// Gen-2 specification (Annex D): a floating-point shadow of Q that rises
// on collisions and falls on empty slots, issuing a QueryAdjust whenever
// the rounded value changes.
type QAlgorithm struct {
	qfp float64
	c   float64
}

// NewQAlgorithm returns a controller starting at initialQ with the given
// adjustment constant (the spec suggests 0.1 ≤ C ≤ 0.5; smaller C for
// larger Q).
func NewQAlgorithm(initialQ uint8, c float64) *QAlgorithm {
	if c <= 0 {
		c = 0.3
	}
	return &QAlgorithm{qfp: float64(initialQ), c: c}
}

// Q returns the current integer slot-count exponent.
func (a *QAlgorithm) Q() uint8 {
	q := math.Round(a.qfp)
	if q < 0 {
		q = 0
	}
	if q > 15 {
		q = 15
	}
	return uint8(q)
}

// OnEmpty records an empty slot and reports whether Q changed.
func (a *QAlgorithm) OnEmpty() bool {
	old := a.Q()
	a.qfp = math.Max(0, a.qfp-a.c)
	return a.Q() != old
}

// OnCollision records a collided slot and reports whether Q changed.
func (a *QAlgorithm) OnCollision() bool {
	old := a.Q()
	a.qfp = math.Min(15, a.qfp+a.c)
	return a.Q() != old
}

// OnSingle records a successful singulation (Q unchanged per the spec).
func (a *QAlgorithm) OnSingle() {}

// Exhausted reports whether the controller has decayed to Q==0, the
// round-termination condition once slots come back empty.
func (a *QAlgorithm) Exhausted() bool { return a.qfp < 0.5 }
