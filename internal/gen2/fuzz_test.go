package gen2

import (
	"testing"

	"rfidtrack/internal/epc"
)

// FuzzDecodeFrame: the air-interface frame decoder must never panic, and
// every frame it accepts must re-encode to the identical bit string.
func FuzzDecodeFrame(f *testing.F) {
	seeds := []Command{
		Query{DR: true, M: 2, Session: 1, Q: 7},
		QueryRep{Session: 2},
		QueryAdjust{Session: 1, UpDn: 1},
		ACK{RN16: 0xBEEF},
		NAK{},
		Select{Target: 4, Action: 2, Pointer: 16, Mask: epc.NewBits(0xAB, 8)},
	}
	for _, cmd := range seeds {
		b := cmd.Encode()
		f.Add(b.Bytes(), uint8(b.Len()%256))
	}
	f.Add([]byte{0xFF}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, extraBits uint8) {
		// Reconstruct an arbitrary-length bit string from the bytes plus a
		// ragged tail.
		bits := epc.BitsFromBytes(raw)
		tail := int(extraBits % 8)
		full := &epc.Bits{}
		limit := bits.Len() - tail
		if limit < 0 {
			limit = bits.Len()
		}
		for i := 0; i < limit; i++ {
			full.AppendBit(bits.Bit(i))
		}
		cmd, err := Decode(full)
		if err != nil {
			return
		}
		re := cmd.Encode()
		if !re.Equal(full) {
			t.Fatalf("accepted frame did not re-encode identically:\n in: %s\nout: %s", full, re)
		}
		if cmd.Bits() != full.Len() {
			t.Fatalf("Bits() = %d, frame length %d", cmd.Bits(), full.Len())
		}
	})
}

// FuzzEPCReply: the EPC-reply decoder must reject corruption and
// round-trip what it accepts.
func FuzzEPCReply(f *testing.F) {
	code, _ := epc.GID96{Manager: 1, Class: 2, Serial: 3}.Encode()
	good := EncodeEPCReply(6<<11, code)
	f.Add(good.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := epc.BitsFromBytes(raw)
		pc, c, err := DecodeEPCReply(bits)
		if err != nil {
			return
		}
		re := EncodeEPCReply(pc, c)
		if !re.Equal(bits) {
			t.Fatalf("accepted reply did not re-encode identically")
		}
	})
}
