// Package gen2 implements the EPCglobal Class-1 Generation-2 air protocol
// as used by the paper's readers: bit-level command frames with their
// CRCs, PIE link timing, the reader-side Q anti-collision algorithm, and a
// slot-accurate inventory-round engine that drives tagsim tags over a
// per-round channel snapshot.
package gen2

import (
	"errors"
	"fmt"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
)

// ErrBadFrame is wrapped by all frame decode errors.
var ErrBadFrame = errors.New("gen2: invalid frame")

// Command is a reader-to-tag air command.
type Command interface {
	// Encode renders the complete frame including any CRC.
	Encode() *epc.Bits
	// Bits returns the frame length in bits (including CRC).
	Bits() int
}

// Query starts a new inventory round.
type Query struct {
	DR      bool  // divide ratio: false = 8, true = 64/3
	M       uint8 // tag miller cycles: 0=FM0, 1=M2, 2=M4, 3=M8
	TRext   bool  // extended tag preamble
	Sel     uint8 // which tags respond to Select: 2 bits
	Session tagsim.Session
	Target  tagsim.Flag
	Q       uint8 // slot-count exponent, 4 bits
}

// Encode implements Command.
func (q Query) Encode() *epc.Bits {
	b := epc.NewBits(0b1000, 4)
	b.Append(boolBit(q.DR), 1)
	b.Append(uint64(q.M&0b11), 2)
	b.Append(boolBit(q.TRext), 1)
	b.Append(uint64(q.Sel&0b11), 2)
	b.Append(uint64(q.Session&0b11), 2)
	b.Append(uint64(q.Target&0b1), 1)
	b.Append(uint64(q.Q&0b1111), 4)
	b.Append(uint64(epc.CRC5(b)), 5)
	return b
}

// Bits implements Command.
func (q Query) Bits() int { return 22 }

// QueryRep advances the round by one slot.
type QueryRep struct {
	Session tagsim.Session
}

// Encode implements Command.
func (q QueryRep) Encode() *epc.Bits {
	b := epc.NewBits(0b00, 2)
	b.Append(uint64(q.Session&0b11), 2)
	return b
}

// Bits implements Command.
func (q QueryRep) Bits() int { return 4 }

// QueryAdjust changes Q mid-round; participating tags re-draw their slots.
type QueryAdjust struct {
	Session tagsim.Session
	// UpDn is the Q adjustment: +1, 0 or -1.
	UpDn int
}

// Encode implements Command.
func (q QueryAdjust) Encode() *epc.Bits {
	b := epc.NewBits(0b1001, 4)
	b.Append(uint64(q.Session&0b11), 2)
	var code uint64
	switch {
	case q.UpDn > 0:
		code = 0b110
	case q.UpDn < 0:
		code = 0b011
	default:
		code = 0b000
	}
	b.Append(code, 3)
	return b
}

// Bits implements Command.
func (q QueryAdjust) Bits() int { return 9 }

// ACK acknowledges a singulated tag by echoing its RN16.
type ACK struct {
	RN16 uint16
}

// Encode implements Command.
func (a ACK) Encode() *epc.Bits {
	b := epc.NewBits(0b01, 2)
	b.Append(uint64(a.RN16), 16)
	return b
}

// Bits implements Command.
func (a ACK) Bits() int { return 18 }

// NAK returns all tags in Reply/Acknowledged to Arbitrate.
type NAK struct{}

// Encode implements Command.
func (NAK) Encode() *epc.Bits { return epc.NewBits(0b11000000, 8) }

// Bits implements Command.
func (NAK) Bits() int { return 8 }

// Select filters the tag population before inventory.
type Select struct {
	Target   uint8 // 3 bits: which flag the action manipulates
	Action   uint8 // 3 bits
	MemBank  uint8 // 2 bits
	Pointer  uint8 // simplified to 8 bits (the spec uses an EBV)
	Mask     *epc.Bits
	Truncate bool
}

// Encode implements Command.
func (s Select) Encode() *epc.Bits {
	b := epc.NewBits(0b1010, 4)
	b.Append(uint64(s.Target&0b111), 3)
	b.Append(uint64(s.Action&0b111), 3)
	b.Append(uint64(s.MemBank&0b11), 2)
	b.Append(uint64(s.Pointer), 8)
	mask := s.Mask
	if mask == nil {
		mask = &epc.Bits{}
	}
	b.Append(uint64(mask.Len()), 8)
	b.AppendBits(mask)
	b.Append(boolBit(s.Truncate), 1)
	b.Append(uint64(epc.CRC16(b)), 16)
	return b
}

// Bits implements Command.
func (s Select) Bits() int {
	n := 0
	if s.Mask != nil {
		n = s.Mask.Len()
	}
	return 4 + 3 + 3 + 2 + 8 + 8 + n + 1 + 16
}

// Decode parses a received frame back into a Command. It validates frame
// CRCs where the command carries one.
func Decode(b *epc.Bits) (Command, error) {
	if b.Len() < 4 {
		return nil, fmt.Errorf("%w: %d bits", ErrBadFrame, b.Len())
	}
	switch {
	case b.Uint(0, 2) == 0b00:
		if b.Len() != 4 {
			return nil, fmt.Errorf("%w: QueryRep wants 4 bits, got %d", ErrBadFrame, b.Len())
		}
		return QueryRep{Session: tagsim.Session(b.Uint(2, 2))}, nil
	case b.Uint(0, 2) == 0b01:
		if b.Len() != 18 {
			return nil, fmt.Errorf("%w: ACK wants 18 bits, got %d", ErrBadFrame, b.Len())
		}
		return ACK{RN16: uint16(b.Uint(2, 16))}, nil
	case b.Uint(0, 4) == 0b1000:
		if b.Len() != 22 {
			return nil, fmt.Errorf("%w: Query wants 22 bits, got %d", ErrBadFrame, b.Len())
		}
		if !epc.CRC5Check(b) {
			return nil, fmt.Errorf("%w: Query CRC-5 mismatch", ErrBadFrame)
		}
		return Query{
			DR:      b.Bit(4),
			M:       uint8(b.Uint(5, 2)),
			TRext:   b.Bit(7),
			Sel:     uint8(b.Uint(8, 2)),
			Session: tagsim.Session(b.Uint(10, 2)),
			Target:  tagsim.Flag(b.Uint(12, 1)),
			Q:       uint8(b.Uint(13, 4)),
		}, nil
	case b.Uint(0, 4) == 0b1001:
		if b.Len() != 9 {
			return nil, fmt.Errorf("%w: QueryAdjust wants 9 bits, got %d", ErrBadFrame, b.Len())
		}
		var updn int
		switch b.Uint(6, 3) {
		case 0b110:
			updn = 1
		case 0b011:
			updn = -1
		case 0b000:
			updn = 0
		default:
			return nil, fmt.Errorf("%w: QueryAdjust UpDn %03b", ErrBadFrame, b.Uint(6, 3))
		}
		return QueryAdjust{Session: tagsim.Session(b.Uint(4, 2)), UpDn: updn}, nil
	case b.Uint(0, 4) == 0b1010:
		if b.Len() < 45 {
			return nil, fmt.Errorf("%w: Select too short (%d bits)", ErrBadFrame, b.Len())
		}
		if !epc.CRC16Check(b) {
			return nil, fmt.Errorf("%w: Select CRC-16 mismatch", ErrBadFrame)
		}
		maskLen := int(b.Uint(20, 8))
		if b.Len() != 45+maskLen {
			return nil, fmt.Errorf("%w: Select mask length %d does not match frame", ErrBadFrame, maskLen)
		}
		mask := &epc.Bits{}
		for i := 0; i < maskLen; i++ {
			mask.AppendBit(b.Bit(28 + i))
		}
		return Select{
			Target:   uint8(b.Uint(4, 3)),
			Action:   uint8(b.Uint(7, 3)),
			MemBank:  uint8(b.Uint(10, 2)),
			Pointer:  uint8(b.Uint(12, 8)),
			Mask:     mask,
			Truncate: b.Bit(28 + maskLen),
		}, nil
	case b.Len() == 8 && b.Uint(0, 8) == 0b11000000:
		return NAK{}, nil
	}
	return nil, fmt.Errorf("%w: unknown prefix", ErrBadFrame)
}

// EncodeEPCReply renders a tag's ACK response (PC + EPC + CRC-16) as it
// appears on the air.
func EncodeEPCReply(pc uint16, code epc.Code) *epc.Bits {
	b := epc.NewBits(uint64(pc), 16)
	b.AppendBits(code.Bits())
	b.Append(uint64(epc.CRC16(b)), 16)
	return b
}

// DecodeEPCReply validates and parses a tag's ACK response.
func DecodeEPCReply(b *epc.Bits) (pc uint16, code epc.Code, err error) {
	if b.Len() != 16+96+16 {
		return 0, code, fmt.Errorf("%w: EPC reply wants 128 bits, got %d", ErrBadFrame, b.Len())
	}
	if !epc.CRC16Check(b) {
		return 0, code, fmt.Errorf("%w: EPC reply CRC-16 mismatch", ErrBadFrame)
	}
	pc = uint16(b.Uint(0, 16))
	body := &epc.Bits{}
	for i := 16; i < 112; i++ {
		body.AppendBit(b.Bit(i))
	}
	code, err = epc.CodeFromBits(body)
	return pc, code, err
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
