package gen2

import (
	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

// Participant is one candidate tag in an inventory round together with its
// channel state for the round. The world resolves ForwardOK/ReverseOK from
// the link budget before the round starts; fast fading is drawn per round,
// so the values hold for the whole round.
type Participant struct {
	Tag *tagsim.Tag
	// ForwardOK: the tag is powered and can decode reader commands.
	ForwardOK bool
	// ReverseOK: the reader can decode this tag's backscatter.
	ReverseOK bool
	// ReplyCorruption is this tag's own EPC-reply CRC-failure probability,
	// on top of Config.ReplyCorruptionProb — a marginal reverse link that
	// arbitrates audibly but decodes poorly (deep fade, detuned antenna).
	// The tag's RN16 still wins slots and its corrupted replies still
	// occupy them; only the EPC decode fails. Drawn from Config.Rng only
	// when the global draw passes, so a population with zero
	// ReplyCorruption consumes exactly the same random sequence as one
	// without the field.
	ReplyCorruption float64
}

// Read is one successful singulation.
type Read struct {
	// Index is the participant index that was read.
	Index int
	PC    uint16
	EPC   epc.Code
	// Slot is the slot ordinal (0-based) within the round.
	Slot int
}

// Result summarizes an inventory round.
type Result struct {
	Reads      []Read
	Slots      int
	Empties    int
	Singles    int
	Collisions int
	// Captures counts collided slots rescued by the capture effect.
	Captures int
	// CRCFailures counts EPC replies the reader discarded as corrupted
	// (followed by a NAK; the tag rejoins the round).
	CRCFailures int
	// QAdjusts counts the QueryAdjust commands the round issued (the
	// Q-algorithm's mid-round frame-size corrections).
	QAdjusts int
	// Duration is the simulated time the round consumed.
	Duration float64
	// FinalQ is the Q value when the round ended.
	FinalQ uint8
}

// Config parameterizes an inventory round.
type Config struct {
	Session tagsim.Session
	Target  tagsim.Flag
	// InitialQ is the starting slot-count exponent.
	InitialQ uint8
	// Adaptive enables the Q-algorithm (QueryAdjust); otherwise the round
	// runs a fixed 2^InitialQ slots.
	Adaptive bool
	// QC is the Q-algorithm adjustment constant (default 0.3).
	QC float64
	// MaxSlots bounds the round regardless of strategy (default 4096).
	MaxSlots int
	// Capture enables the near-far capture effect: a collided slot where
	// exactly one reply is decodable is treated as that tag's singulation.
	Capture bool
	// SelectMask, when non-nil, makes the reader open the round with a
	// Select command: only tags whose EPC matches the mask at SelectPointer
	// participate (their SL flag asserts; the Query targets SL).
	SelectMask    *epc.Bits
	SelectPointer int
	// ReplyCorruptionProb injects reverse-link bit errors: each EPC reply
	// independently fails its CRC-16 with this probability, the reader
	// NAKs, and the tag rejoins the round. Requires Rng.
	ReplyCorruptionProb float64
	// AbandonOnCRC changes the reader's CRC-failure policy: instead of
	// NAKing the tag back into arbitration, the reader moves to the next
	// slot. The acknowledged tag then commits at the next QueryRep —
	// toggling its inventoried flag and dropping out of the round unread
	// (spec-permitted reader behavior). Under this policy every tag
	// occupies at most one slot per frame, which keeps frame statistics on
	// the framed-ALOHA model that cardinality estimators assume; the cost
	// is that a garbled tag is lost for the whole session rather than
	// retried.
	AbandonOnCRC bool
	// Rng drives the corruption draws (nil disables corruption).
	Rng    *xrand.Rand
	Timing LinkTiming
}

// DefaultConfig returns the configuration used by the simulated readers:
// adaptive Q starting at 4, capture on, default timing.
func DefaultConfig() Config {
	return Config{
		Session:  tagsim.S1,
		Target:   tagsim.FlagA,
		InitialQ: 4,
		Adaptive: true,
		QC:       0.3,
		MaxSlots: 4096,
		Capture:  true,
		Timing:   DefaultTiming(),
	}
}

// Scratch holds the reusable working state of an inventory round. A
// caller running many rounds (the reader hot loop) keeps one Scratch and
// passes it to RunRoundScratch so per-slot reply books and the read list
// stop allocating; the zero value is ready to use. A Scratch must not be
// shared between concurrent rounds.
type Scratch struct {
	replies map[int]tagsim.Reply
	audible []int
	reads   []Read
}

// RunRound executes one complete inventory round at simulation time now
// and returns what the reader observed. Tag protocol state advances as a
// side effect, exactly as it would on air: tags that were read toggle
// their session flag and drop out of subsequent rounds until it decays.
func RunRound(cfg Config, parts []Participant, now float64) Result {
	return RunRoundScratch(cfg, parts, now, &Scratch{})
}

// RunRoundScratch is RunRound drawing its working state from sc. The
// returned Result's Reads slice is backed by the scratch: it is valid
// until the next round runs with the same Scratch, so callers that retain
// reads across rounds must copy them out.
func RunRoundScratch(cfg Config, parts []Participant, now float64, sc *Scratch) Result {
	if cfg.MaxSlots <= 0 {
		cfg.MaxSlots = 4096
	}
	if cfg.QC <= 0 {
		cfg.QC = 0.3
	}
	var res Result
	alg := NewQAlgorithm(cfg.InitialQ, cfg.QC)
	q := alg.Q()

	clock := now
	advance := func(d float64) {
		clock += d
		res.Duration += d
	}

	// Optional Select: filter the population before inventorying.
	selOnly := cfg.SelectMask != nil
	if selOnly {
		advance(cfg.Timing.ReaderCommandSeconds(Select{Mask: cfg.SelectMask}.Bits()) +
			cfg.Timing.ControllerOverheadPerSlot)
		for _, p := range parts {
			if p.ForwardOK {
				p.Tag.Select(cfg.SelectPointer, cfg.SelectMask)
			}
		}
	}

	// Round-opening Query. Replies collected from tags that can hear it.
	advance(cfg.Timing.QuerySeconds())
	if sc.replies == nil {
		sc.replies = make(map[int]tagsim.Reply)
	}
	replies := sc.replies
	clear(replies)
	reads := sc.reads[:0]
	for i, p := range parts {
		if !p.ForwardOK {
			continue
		}
		if r, ok := p.Tag.QuerySel(cfg.Session, cfg.Target, q, selOnly, clock); ok {
			replies[i] = r
		}
	}

	fixedSlots := 1 << uint(cfg.InitialQ)
	// Annex-D rounds do not simply stop when Q decays: the interrogator
	// issues a fresh Query and only gives up when a fresh round finds
	// silence. restarts bounds the pathological case of tags that keep
	// replying inaudibly.
	const maxRestarts = 8
	restarts := 0
	slotsSinceQuery, activitySinceQuery := 0, 0
	for res.Slots < cfg.MaxSlots {
		res.Slots++
		slotsSinceQuery++
		// Resolve the current slot. Map iteration order is irrelevant:
		// audible's elements are only consulted when it holds exactly one.
		audible := sc.audible[:0]
		for i := range replies {
			if parts[i].ReverseOK {
				audible = append(audible, i)
			}
		}
		sc.audible = audible
		qChanged := false
		observedEmpty := false
		switch {
		case len(replies) == 0 || len(audible) == 0:
			observedEmpty = true
			// Nothing decodable: the reader sees silence. (Tags that
			// replied inaudibly will back off on the next QueryRep.)
			res.Empties++
			advance(cfg.Timing.EmptySlotSeconds())
			if cfg.Adaptive {
				qChanged = alg.OnEmpty()
			}
		case len(audible) == 1 && (len(replies) == 1 || cfg.Capture):
			// Clean singulation (or capture of the dominant reply).
			i := audible[0]
			if len(replies) > 1 {
				res.Captures++
			}
			rn := replies[i].RN16
			advance(cfg.Timing.SuccessSlotSeconds())
			if er, ok := parts[i].Tag.ACK(rn); ok && parts[i].ReverseOK {
				corrupt := cfg.Rng != nil && cfg.Rng.Bool(cfg.ReplyCorruptionProb)
				if !corrupt && parts[i].ReplyCorruption > 0 && cfg.Rng != nil {
					corrupt = cfg.Rng.Bool(parts[i].ReplyCorruption)
				}
				if corrupt {
					// The EPC reply failed its CRC-16. Policy decides what
					// happens to the tag: NAK it back into the round to try
					// again later, or abandon the slot — the tag stays
					// acknowledged and commits (flag toggle, drops out
					// unread) at the next QueryRep.
					res.CRCFailures++
					if !cfg.AbandonOnCRC {
						parts[i].Tag.NAK()
						advance(cfg.Timing.ReaderCommandSeconds(NAK{}.Bits()))
					}
				} else {
					res.Singles++
					activitySinceQuery++
					reads = append(reads, Read{
						Index: i,
						PC:    er.PC,
						EPC:   er.Code,
						Slot:  res.Slots - 1,
					})
				}
			}
			if cfg.Adaptive {
				alg.OnSingle()
			}
		default:
			// Multiple decodable replies garble each other. The reader saw
			// the garble: that is activity, not silence.
			res.Collisions++
			activitySinceQuery++
			advance(cfg.Timing.CollisionSlotSeconds())
			if cfg.Adaptive {
				qChanged = alg.OnCollision()
			}
		}

		// Termination and restart. The reader can only act on what it
		// observed: when the Q controller decays to zero on a silent slot,
		// it issues a fresh Query (tags still arbitrating re-draw and
		// re-join), and gives up once a fresh round yields nothing — or
		// after bounded restarts (tags replying inaudibly are invisible and
		// would otherwise spin the round forever).
		if cfg.Adaptive {
			if alg.Exhausted() && observedEmpty {
				// Silence only counts once a *fresh* Query has gone
				// unanswered — no reads and no observed collisions since it
				// was issued. The first exhaustion may just mean the round
				// started with too small a Q while tags still arbitrate.
				if restarts > 0 && activitySinceQuery == 0 && slotsSinceQuery >= 1 {
					break
				}
				if restarts >= maxRestarts {
					break
				}
				restarts++
				slotsSinceQuery, activitySinceQuery = 0, 0
				q = alg.Q()
				advance(cfg.Timing.QuerySeconds())
				clear(replies)
				for i, p := range parts {
					if !p.ForwardOK {
						continue
					}
					if r, ok := p.Tag.QuerySel(cfg.Session, cfg.Target, q, selOnly, clock); ok {
						replies[i] = r
					}
				}
				continue
			}
		} else if res.Slots >= fixedSlots {
			break
		}

		// Advance the round: QueryAdjust when Q moved, QueryRep otherwise.
		clear(replies)
		if cfg.Adaptive && qChanged {
			q = alg.Q()
			res.QAdjusts++
			advance(cfg.Timing.AdjustSeconds())
			for i, p := range parts {
				if !p.ForwardOK {
					continue
				}
				if r, ok := p.Tag.QueryAdjust(cfg.Session, q, clock); ok {
					replies[i] = r
				}
			}
		} else {
			for i, p := range parts {
				if !p.ForwardOK {
					continue
				}
				if r, ok := p.Tag.QueryRep(cfg.Session, clock); ok {
					replies[i] = r
				}
			}
		}
	}
	res.FinalQ = alg.Q()
	sc.reads = reads
	res.Reads = reads
	return res
}
