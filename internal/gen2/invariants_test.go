package gen2

import (
	"fmt"
	"testing"
	"testing/quick"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

// TestRoundInvariantsProperty drives rounds over randomized populations
// and channel states and checks the invariants every round must satisfy:
//
//   - every read is of a participant with both link directions up;
//   - no tag is read twice in one round;
//   - slot accounting is consistent (slots = empties+singles+collisions,
//     noting CRC-failed singulations still count their slot as a single
//     attempt in the collision/empty sense... they consume a slot too);
//   - time moves forward and scales with slots.
func TestRoundInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8, fwdMask, revMask uint16, adaptive, capture bool) bool {
		n := int(nRaw)%24 + 1
		parent := xrand.New(seed)
		parts := make([]Participant, n)
		for i := range parts {
			code, err := epc.GID96{Manager: 3, Class: 9, Serial: uint64(i)}.Encode()
			if err != nil {
				return false
			}
			tag := tagsim.New(code, parent.Split(fmt.Sprintf("t%d", i)))
			tag.SetPower(true, 0)
			parts[i] = Participant{
				Tag:       tag,
				ForwardOK: fwdMask>>(i%16)&1 == 1,
				ReverseOK: revMask>>(i%16)&1 == 1,
			}
		}
		cfg := DefaultConfig()
		cfg.Adaptive = adaptive
		cfg.Capture = capture
		cfg.InitialQ = qRaw % 8
		res := RunRound(cfg, parts, 0)

		seen := map[int]bool{}
		for _, r := range res.Reads {
			p := parts[r.Index]
			if !p.ForwardOK || !p.ReverseOK {
				return false // read through a dead link
			}
			if seen[r.Index] {
				return false // duplicate read
			}
			seen[r.Index] = true
			if r.EPC != p.Tag.EPC() {
				return false // wrong EPC attributed
			}
			if r.Slot < 0 || r.Slot >= res.Slots {
				return false // slot ordinal out of range
			}
		}
		if res.Empties+res.Singles+res.Collisions+res.CRCFailures != res.Slots {
			return false // slot accounting broken
		}
		if res.Duration <= 0 || res.Slots <= 0 {
			return false
		}
		if res.Slots > cfg.MaxSlots {
			return false
		}
		// Every healthy participant must be read by an adaptive round when
		// the population has no forward-only (inaudible) repliers: those
		// collide invisibly with healthy tags and can legitimately starve
		// them — the paper's false-negative mechanism. (Fixed small Q can
		// also legitimately leave tags unread.)
		inaudible := false
		for _, p := range parts {
			if p.ForwardOK && !p.ReverseOK {
				inaudible = true
			}
		}
		if adaptive && !inaudible {
			for i, p := range parts {
				if p.ForwardOK && p.ReverseOK && !seen[i] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
