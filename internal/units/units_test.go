package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearRoundTrip(t *testing.T) {
	tests := []struct {
		db  DB
		lin float64
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-10, 0.1},
		{3, 1.9953},
		{-3, 0.50119},
	}
	for _, tt := range tests {
		if got := tt.db.Linear(); !almost(got, tt.lin, 1e-3) {
			t.Errorf("DB(%v).Linear() = %v, want %v", tt.db, got, tt.lin)
		}
		if got := FromLinear(tt.lin); !almost(float64(got), float64(tt.db), 1e-3) {
			t.Errorf("FromLinear(%v) = %v, want %v", tt.lin, got, tt.db)
		}
	}
}

func TestFromLinearNonPositive(t *testing.T) {
	for _, ratio := range []float64{0, -1, -1e9} {
		if got := FromLinear(ratio); !math.IsInf(float64(got), -1) {
			t.Errorf("FromLinear(%v) = %v, want -Inf", ratio, got)
		}
	}
}

func TestDBmMilliwatts(t *testing.T) {
	tests := []struct {
		dbm DBm
		mw  float64
	}{
		{0, 1},
		{30, 1000}, // the paper's 1 W reader output
		{-30, 0.001},
		{10, 10},
	}
	for _, tt := range tests {
		if got := tt.dbm.Milliwatts(); !almost(float64(got), tt.mw, tt.mw*1e-9) {
			t.Errorf("DBm(%v).Milliwatts() = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := Milliwatt(tt.mw).DBm(); !almost(float64(got), float64(tt.dbm), 1e-9) {
			t.Errorf("Milliwatt(%v).DBm() = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
}

func TestPlus(t *testing.T) {
	p := DBm(30).Plus(DB(-31.7)).Plus(DB(6))
	if !almost(float64(p), 4.3, 1e-9) {
		t.Errorf("30 dBm - 31.7 dB + 6 dB = %v, want 4.3 dBm", p)
	}
}

func TestWavelengthUHF(t *testing.T) {
	// 915 MHz ISM band: lambda ~ 32.76 cm.
	if got := Wavelength(915e6); !almost(got, 0.3276, 1e-3) {
		t.Errorf("Wavelength(915 MHz) = %v, want ~0.3276", got)
	}
}

func TestFSPLReferenceValues(t *testing.T) {
	// Known values for 915 MHz: ~31.7 dB at 1 m, +6 dB per distance doubling.
	if got := FSPL(1, 915e6); !almost(float64(got), 31.7, 0.1) {
		t.Errorf("FSPL(1m) = %v, want ~31.7", got)
	}
	d1 := FSPL(2, 915e6)
	d2 := FSPL(4, 915e6)
	if !almost(float64(d2-d1), 6.02, 0.01) {
		t.Errorf("doubling distance added %v dB, want ~6.02", d2-d1)
	}
}

func TestFSPLNearFieldClamp(t *testing.T) {
	got := FSPL(0, 915e6)
	if math.IsInf(float64(got), 0) || math.IsNaN(float64(got)) || got < 0 {
		t.Errorf("FSPL(0) = %v, want finite non-negative", got)
	}
	if FSPL(1e-9, 915e6) != got {
		t.Errorf("sub-near-field distances should clamp to the same loss")
	}
}

func TestFSPLMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(a)
		b = math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return FSPL(a, 915e6) <= FSPL(b, 915e6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		d := DB(math.Mod(x, 100)) // keep in a numerically comfortable range
		back := FromLinear(d.Linear())
		return almost(float64(back), float64(d), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
