// Package units provides the small set of radio-engineering unit types and
// conversions used throughout the simulator: decibels, decibel-milliwatts,
// linear power, frequency and wavelength.
//
// Powers are carried as dBm and gains/losses as dB so that link budgets are
// sums; conversions to linear milliwatts exist for the few places (SINR,
// fading) where powers must actually be added.
package units

import "math"

// DB is a dimensionless ratio expressed in decibels. Positive values are
// gains, negative values are losses.
type DB float64

// DBm is an absolute power level referenced to one milliwatt.
type DBm float64

// Milliwatt is a linear power.
type Milliwatt float64

// SpeedOfLight is the propagation speed of radio waves in vacuum, in m/s.
const SpeedOfLight = 299_792_458.0

// Linear converts a decibel ratio to its linear equivalent.
func (d DB) Linear() float64 { return math.Pow(10, float64(d)/10) }

// FromLinear converts a linear power ratio to decibels. Ratios that are zero
// or negative map to -inf, which composes correctly in link budgets (the
// link is simply dead).
func FromLinear(ratio float64) DB {
	if ratio <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(ratio))
}

// Plus offsets an absolute power by a gain or loss.
func (p DBm) Plus(g DB) DBm { return p + DBm(g) }

// Milliwatts converts an absolute dBm power to linear milliwatts.
func (p DBm) Milliwatts() Milliwatt {
	return Milliwatt(math.Pow(10, float64(p)/10))
}

// DBm converts a linear power to dBm. Zero or negative power maps to -inf
// dBm.
func (m Milliwatt) DBm() DBm {
	if m <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(float64(m)))
}

// Wavelength returns the wavelength in meters of a carrier at freqHz.
func Wavelength(freqHz float64) float64 {
	return SpeedOfLight / freqHz
}

// FSPL returns the free-space path loss (as a positive dB loss) over
// distance d meters at frequency freqHz, per the Friis transmission
// equation. Distances below a tenth of a wavelength are clamped to the
// near-field boundary so the model never reports negative loss.
func FSPL(d, freqHz float64) DB {
	lambda := Wavelength(freqHz)
	min := lambda / (2 * math.Pi) // reactive near-field boundary
	if d < min {
		d = min
	}
	return DB(20 * math.Log10(4*math.Pi*d/lambda))
}
