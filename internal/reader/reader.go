// Package reader models the interrogator (the paper's Matrix AR400 class
// of device): one to four antennas multiplexed by TDMA, continuous
// (buffered) read mode, optional dense-reader mode, and inventory rounds
// executed against the world's channel state.
package reader

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/estimate"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/units"
	"rfidtrack/internal/world"
)

// Event is one tag observation, the unit the back-end consumes.
type Event struct {
	EPC     epc.Code
	PC      uint16
	Reader  string
	Antenna string
	// Time is the simulation time of the read.
	Time float64
	// RSSI is the backscatter power at the receiver.
	RSSI units.DBm
	// Pass tags the trial the event belongs to.
	Pass int
}

// Option configures a Reader.
type Option func(*Reader)

// WithDenseMode enables dense-reader mode (the Gen-2 option the paper's
// readers lacked).
func WithDenseMode(on bool) Option {
	return func(r *Reader) { r.dense = on }
}

// WithRoundConfig overrides the inventory round configuration.
func WithRoundConfig(cfg gen2.Config) Option {
	return func(r *Reader) { r.cfg = cfg }
}

// WithAntennaDwell overrides how long the reader stays on one antenna
// before multiplexing to the next (seconds).
func WithAntennaDwell(d float64) Option {
	return func(r *Reader) {
		if d > 0 {
			r.dwell = d
		}
	}
}

// WithFrameAdaptive switches anti-collision from the in-round Q-algorithm
// to Vogt-style frame sizing (the paper's reference [18]): each round runs
// a fixed frame whose size comes from a population estimate of the
// previous round's slot statistics.
func WithFrameAdaptive() Option {
	return func(r *Reader) {
		r.frameAdaptive = true
		r.cfg.Adaptive = false
		r.lastEstimate = float64(int(1) << r.cfg.InitialQ)
	}
}

// Reader is one interrogator with its attached antennas.
type Reader struct {
	name     string
	world    *world.World
	antennas []*world.Antenna
	dense    bool
	cfg      gen2.Config
	// dwell is how long the multiplexer stays on one antenna. Era readers
	// switched on the order of a second, not per round — which is why the
	// paper saw a slight *decrease* from a second antenna when blocking
	// was not an issue: each antenna only covers part of the pass window.
	dwell float64

	// frameAdaptive selects Vogt-style frame sizing (see
	// WithFrameAdaptive); lastEstimate carries the population estimate
	// between rounds.
	frameAdaptive bool
	lastEstimate  float64

	// parts, links, events and scratch are per-round working state reused
	// across RunRound calls; rounds on one reader run from a single
	// goroutine.
	parts   []gen2.Participant
	links   []units.DBm
	events  []Event
	scratch gen2.Scratch

	// grid is the reader-owned scratch behind batched link resolution
	// (world.ResolveLinkGrid); gridAnt is the one-element antenna list
	// handed to it each round. Owned by the round goroutine, like the
	// world itself.
	grid    world.LinkGrid
	gridAnt [1]*world.Antenna

	// obs and tracer, when non-nil, receive round summaries and
	// per-(tag, antenna) opportunity outcomes (see Observe). readMark is
	// observation scratch, sized like parts.
	obs      *obs.Collector
	tracer   *obs.Tracer
	readMark []bool

	mu     sync.Mutex
	round  int
	buffer []Event
}

// DefaultAntennaDwell is the multiplexer dwell used unless overridden.
const DefaultAntennaDwell = 2.5

// New builds a reader driving the given antennas (1–4, per the hardware the
// paper describes).
func New(name string, w *world.World, antennas []*world.Antenna, opts ...Option) (*Reader, error) {
	if len(antennas) == 0 || len(antennas) > 4 {
		return nil, fmt.Errorf("reader: %q wants 1-4 antennas, got %d", name, len(antennas))
	}
	r := &Reader{
		name:     name,
		world:    w,
		antennas: antennas,
		cfg:      gen2.DefaultConfig(),
		dwell:    DefaultAntennaDwell,
	}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Name returns the reader's name.
func (r *Reader) Name() string { return r.name }

// BeginPass rewinds the per-pass protocol state — the round counter (which
// keys fading blocks when coherence is round-based) and the frame-adaptive
// population estimate — so every measurement pass starts from the same
// reader state regardless of how many passes ran before it. The buffered
// events are left alone; harnesses drain them per pass.
func (r *Reader) BeginPass() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.round = 0
	if r.frameAdaptive {
		r.lastEstimate = float64(int(1) << r.cfg.InitialQ)
	}
}

// Observe attaches (or, with nil arguments, detaches) instrumentation:
// the collector takes round statistics and read-opportunity outcomes,
// the tracer round (and optionally link) events. The collector must be
// private to the goroutine running this reader's rounds; the tracer may
// be shared (it synchronizes internally).
func (r *Reader) Observe(c *obs.Collector, tr *obs.Tracer) {
	r.obs = c
	r.tracer = tr
}

// DenseMode reports whether dense-reader mode is enabled.
func (r *Reader) DenseMode() bool { return r.dense }

// Antennas returns the antennas the reader multiplexes.
func (r *Reader) Antennas() []*world.Antenna { return r.antennas }

// AntennaAt returns the antenna the multiplexer drives at time t — which
// is also the antenna radiating CW at that moment in continuous mode, the
// one foreign readers see as an interferer. The schedule is a stateless
// function of time so passes replay identically.
func (r *Reader) AntennaAt(t float64) *world.Antenna {
	if t < 0 {
		t = 0
	}
	idx := int(t/r.dwell) % len(r.antennas)
	return r.antennas[idx]
}

// RunRound executes one inventory round at time t of pass passID over the
// next antenna in the TDMA schedule. foreign lists other readers' active
// antennas. Events are appended to the buffered-mode store and returned
// together with the round's full slot statistics (duration, empties,
// singles, collisions, CRC failures — the inputs cardinality estimation
// and session-merge stopping rules consume). Both the returned event
// slice and the Reads inside the result are reader-owned scratch, valid
// until this reader's next round; callers that keep them across rounds
// must copy (the buffered store already holds event copies).
func (r *Reader) RunRound(passID int, t float64, foreign []world.ForeignEmitter) ([]Event, gen2.Result) {
	ant := r.AntennaAt(t)
	r.mu.Lock()
	round := r.round
	r.round++
	r.mu.Unlock()

	cal := r.world.Cal
	tags := r.world.Tags()
	if cap(r.parts) < len(tags) {
		r.parts = make([]gen2.Participant, len(tags))
		r.links = make([]units.DBm, len(tags))
	}
	parts := r.parts[:len(tags)]
	links := r.links[:len(tags)]
	// Broad-phase culling is safe whenever nothing downstream reads the
	// raw powers of undetectable links: the round consumes decodability
	// predicates, and RSSI is only attached to tags actually read. Link
	// tracing is the one consumer that records every pair's raw RSSI, so
	// it forces dense resolution.
	ctx := world.LinkContext{
		Time: t, Pass: passID, Round: round, Foreign: foreign,
		Cull: r.tracer == nil || !r.tracer.Links(),
	}
	if r.world.LinkBatchEnabled() {
		// Batched path: one grid resolution covers the whole tag column at
		// this instant, walking the budget memo once per (antenna, instant)
		// instead of once per link. Bit-identical to the loop below.
		r.gridAnt[0] = ant
		r.world.ResolveLinkGrid(r.gridAnt[:], ctx, &r.grid)
		for i, tag := range tags {
			l := r.grid.Link(ant, tag)
			tag.Proto.SetPower(l.TagPowered(cal), t)
			parts[i] = gen2.Participant{
				Tag:       tag.Proto,
				ForwardOK: l.ForwardDecodable(cal),
				ReverseOK: l.ReverseDecodable(cal),
			}
			links[i] = l.ReaderPower
		}
	} else {
		for i, tag := range tags {
			l := r.world.ResolveLink(tag, ant, ctx)
			tag.Proto.SetPower(l.TagPowered(cal), t)
			parts[i] = gen2.Participant{
				Tag:       tag.Proto,
				ForwardOK: l.ForwardDecodable(cal),
				ReverseOK: l.ReverseDecodable(cal),
			}
			links[i] = l.ReaderPower
		}
	}

	cfg := r.cfg
	if r.frameAdaptive {
		cfg.InitialQ = r.frameQ()
	}
	res := gen2.RunRoundScratch(cfg, parts, t, &r.scratch)
	if r.frameAdaptive {
		r.updateEstimate(res)
	}
	events := r.events[:0]
	for _, read := range res.Reads {
		events = append(events, Event{
			EPC:     read.EPC,
			PC:      read.PC,
			Reader:  r.name,
			Antenna: ant.Name,
			Time:    t, // the round start; sub-round timing is below event resolution
			RSSI:    links[read.Index],
			Pass:    passID,
		})
	}

	if r.obs != nil || r.tracer != nil {
		r.observeRound(passID, round, t, ant, parts, links, &res)
	}

	r.events = events
	r.mu.Lock()
	r.buffer = append(r.buffer, events...)
	r.mu.Unlock()
	return events, res
}

// observeRound reports one finished round to the attached collector and
// tracer: the round summary, plus one read-opportunity outcome per
// (tag, active antenna) — the per-link counts behind the paper's P_i.
// Only reached when instrumentation is attached; the disabled path stays
// allocation-free.
func (r *Reader) observeRound(passID, round int, t float64, ant *world.Antenna,
	parts []gen2.Participant, links []units.DBm, res *gen2.Result) {
	stats := obs.RoundStats{
		Slots:       res.Slots,
		Empties:     res.Empties,
		Singles:     res.Singles,
		Collisions:  res.Collisions,
		Captures:    res.Captures,
		CRCFailures: res.CRCFailures,
		QAdjusts:    res.QAdjusts,
		Reads:       len(res.Reads),
	}
	if cap(r.readMark) < len(parts) {
		r.readMark = make([]bool, len(parts))
	}
	mark := r.readMark[:len(parts)]
	clear(mark)
	for _, read := range res.Reads {
		mark[read.Index] = true
	}
	tags := r.world.Tags()
	if c := r.obs; c != nil {
		c.RoundDone(stats)
		for i := range parts {
			out := obs.OutDeaf
			switch {
			case mark[i]:
				out = obs.OutRead
			case parts[i].ForwardOK && parts[i].ReverseOK:
				out = obs.OutMissed
			case parts[i].ForwardOK:
				out = obs.OutForwardOnly
			}
			c.Opportunity(tags[i].Name, ant.Name, out)
		}
	}
	if tr := r.tracer; tr != nil {
		tr.Round(passID, round, r.name, ant.Name, t, stats, res.Duration)
		if tr.Links() {
			for i := range parts {
				tr.Link(passID, round, r.name, ant.Name, tags[i].Name,
					float64(links[i]), parts[i].ForwardOK, parts[i].ReverseOK, mark[i])
			}
		}
	}
}

// frameQ converts the running population estimate into the next round's
// frame exponent (optimal framed ALOHA sets the frame size near the
// population size).
func (r *Reader) frameQ() uint8 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := math.Max(r.lastEstimate, 1)
	q := math.Round(math.Log2(n))
	if q < 1 {
		q = 1
	}
	if q > 15 {
		q = 15
	}
	return uint8(q)
}

// updateEstimate folds one round's slot statistics into the population
// estimate. Only a saturated statistic (every slot collided — the frame
// carried no upper-bound information) justifies doubling; a malformed or
// empty round says nothing about the population, so it leaves the
// estimate alone, floored by the reads the round actually made.
func (r *Reader) updateEstimate(res gen2.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	est, err := estimate.FromRound(res)
	switch {
	case errors.Is(err, estimate.ErrSaturated):
		r.lastEstimate *= 2
	case err != nil:
		r.lastEstimate = math.Max(r.lastEstimate, float64(len(res.Reads)))
	default:
		const alpha = 0.5
		n := math.Max(est.N, float64(len(res.Reads)))
		r.lastEstimate = (1-alpha)*r.lastEstimate + alpha*n
	}
	if r.lastEstimate > 1<<15 {
		r.lastEstimate = 1 << 15
	}
}

// Buffer returns a copy of the buffered events (continuous read mode).
func (r *Reader) Buffer() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.buffer...)
}

// DrainBuffer returns the buffered events and clears the store, the
// "read and purge" poll the paper's Java software performed over HTTP.
func (r *Reader) DrainBuffer() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.buffer
	r.buffer = nil
	return out
}

// DistinctEPCs returns the sorted set of distinct EPCs currently buffered.
func (r *Reader) DistinctEPCs() []epc.Code {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := make(map[epc.Code]bool, len(r.buffer))
	for _, e := range r.buffer {
		set[e.EPC] = true
	}
	out := make([]epc.Code, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hex() < out[j].Hex() })
	return out
}
