package reader

import (
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

func testCode(serial uint64) epc.Code {
	c, err := epc.GID96{Manager: 2, Class: 2, Serial: serial}.Encode()
	if err != nil {
		panic(err)
	}
	return c
}

// staticScene builds a world with n well-placed tags at 1 m and one
// antenna, returning both.
func staticScene(t *testing.T, n int, seed uint64) (*world.World, *world.Antenna) {
	t.Helper()
	w := world.New(rf.DefaultCalibration(), seed)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	for i := 0; i < n; i++ {
		x := float64(i%5)*0.125 - 0.25
		z := 1 + float64(i/5)*0.2 - 0.2
		box := w.AddBox("box"+string(rune('A'+i)),
			geom.StaticPath{Pose: geom.NewPose(geom.V(x, 1, z), geom.UnitX, geom.UnitZ)},
			geom.V(0.1, 0.1, 0.1), rf.Cardboard, rf.Air, geom.Vec3{})
		w.AttachTag(box, "tag"+string(rune('A'+i)), testCode(uint64(i)), world.Mount{
			Offset: geom.V(0, -0.05, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.05,
		})
	}
	return w, ant
}

func TestReaderValidation(t *testing.T) {
	w, ant := staticScene(t, 1, 1)
	if _, err := New("r", w, nil); err == nil {
		t.Error("reader with no antennas accepted")
	}
	five := []*world.Antenna{ant, ant, ant, ant, ant}
	if _, err := New("r", w, five); err == nil {
		t.Error("reader with five antennas accepted")
	}
	r, err := New("r", w, []*world.Antenna{ant})
	if err != nil || r.Name() != "r" || r.DenseMode() {
		t.Errorf("basic reader: %v %v", r, err)
	}
}

func TestRunRoundReadsTags(t *testing.T) {
	w, ant := staticScene(t, 6, 2)
	r, err := New("r1", w, []*world.Antenna{ant})
	if err != nil {
		t.Fatal(err)
	}
	events, res := r.RunRound(0, 0, nil)
	if len(events) != 6 {
		t.Fatalf("read %d/6 tags at 1 m boresight", len(events))
	}
	if res.Duration <= 0 {
		t.Error("round consumed no time")
	}
	if res.Empties+res.Singles+res.Collisions+res.CRCFailures != res.Slots {
		t.Errorf("returned round statistics break the slot invariant: %+v", res)
	}
	for _, e := range events {
		if e.Reader != "r1" || e.Antenna != "a1" {
			t.Errorf("event attribution: %+v", e)
		}
		if e.RSSI < -80 || e.RSSI > 0 {
			t.Errorf("implausible RSSI %v", e.RSSI)
		}
	}
}

func TestTDMAAntennaRotation(t *testing.T) {
	w, a1 := staticScene(t, 2, 3)
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	r, err := New("r1", w, []*world.Antenna{a1, a2}, WithAntennaDwell(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// The multiplexer schedule is a stateless function of time: dwell on
	// each antenna in turn, wrapping around.
	if r.AntennaAt(0) != a1 || r.AntennaAt(0.49) != a1 {
		t.Error("first dwell should be on a1")
	}
	if r.AntennaAt(0.51) != a2 {
		t.Error("second dwell should be on a2")
	}
	if r.AntennaAt(1.1) != a1 {
		t.Error("schedule did not wrap")
	}
	if r.AntennaAt(-1) != a1 {
		t.Error("negative time should clamp to the first dwell")
	}
	events, _ := r.RunRound(0, 0.6, nil)
	for _, e := range events {
		if e.Antenna != "a2" {
			t.Errorf("round at t=0.6 attributed to %s, want a2", e.Antenna)
		}
	}
}

func TestBufferedMode(t *testing.T) {
	w, ant := staticScene(t, 3, 4)
	r, _ := New("r1", w, []*world.Antenna{ant})
	r.RunRound(0, 0, nil)
	if len(r.Buffer()) != 3 {
		t.Fatalf("buffer has %d events", len(r.Buffer()))
	}
	if got := len(r.DistinctEPCs()); got != 3 {
		t.Fatalf("distinct EPCs = %d", got)
	}
	drained := r.DrainBuffer()
	if len(drained) != 3 || len(r.Buffer()) != 0 {
		t.Error("drain did not empty the buffer")
	}
	// Buffer() returns a copy, not an alias.
	r.RunRound(0, 3, nil)
	b := r.Buffer()
	if len(b) == 0 {
		t.Fatal("no events after second round")
	}
	b[0].Reader = "mutated"
	if r.Buffer()[0].Reader == "mutated" {
		t.Error("Buffer aliases internal storage")
	}
}

func TestForeignReaderJamsReads(t *testing.T) {
	w, a1 := staticScene(t, 6, 5)
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	r1, _ := New("r1", w, []*world.Antenna{a1})

	// Clean baseline.
	clean, _ := r1.RunRound(0, 0, nil)
	if len(clean) != 6 {
		t.Fatalf("clean round read %d/6", len(clean))
	}

	// Same round with a non-dense foreign reader radiating from across the
	// portal: reads must collapse (reader-to-reader interference, the
	// paper's negative result).
	for _, tag := range w.Tags() {
		tag.Proto.Reset()
	}
	jammed, _ := r1.RunRound(1, 0, []world.ForeignEmitter{{Antenna: a2}})
	if len(jammed) != 0 {
		t.Errorf("jammed round still read %d tags", len(jammed))
	}

	// Dense mode on both ends restores operation.
	for _, tag := range w.Tags() {
		tag.Proto.Reset()
	}
	dense, _ := r1.RunRound(2, 0, []world.ForeignEmitter{{Antenna: a2, DenseModeBoth: true}})
	if len(dense) < 5 {
		t.Errorf("dense-mode round read only %d/6", len(dense))
	}
}

func TestWithRoundConfig(t *testing.T) {
	w, ant := staticScene(t, 2, 6)
	cfg := gen2.DefaultConfig()
	cfg.Adaptive = false
	cfg.InitialQ = 5
	r, _ := New("r1", w, []*world.Antenna{ant}, WithRoundConfig(cfg), WithDenseMode(true))
	if !r.DenseMode() {
		t.Error("option WithDenseMode ignored")
	}
	events, res := r.RunRound(0, 0, nil)
	if len(events) != 2 {
		t.Errorf("fixed-Q round read %d/2", len(events))
	}
	// 32 fixed slots cost measurably more than an adaptive round for 2 tags.
	if res.Duration < 0.01 {
		t.Errorf("fixed 32-slot round took only %v", res.Duration)
	}
}

func TestFrameAdaptiveStrategy(t *testing.T) {
	// A dense static population: the Vogt strategy must converge its frame
	// size and read everyone across a few rounds.
	w, ant := staticScene(t, 24, 7)
	r, err := New("r1", w, []*world.Antenna{ant}, WithFrameAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	read := map[string]bool{}
	for round := 0; round < 6; round++ {
		events, _ := r.RunRound(0, float64(round), nil)
		for _, e := range events {
			read[e.EPC.Hex()] = true
		}
	}
	if len(read) != 24 {
		t.Errorf("frame-adaptive reader found %d/24 tags", len(read))
	}
	// The frame exponent must have adapted into a sane band for ~24 tags
	// (log2(24) ≈ 4.6) once the estimate settles.
	if q := r.frameQ(); q < 2 || q > 8 {
		t.Errorf("converged frame Q = %d, want near log2(population)", q)
	}
}

func TestFrameAdaptiveSaturationGrowth(t *testing.T) {
	r := &Reader{cfg: gen2.DefaultConfig(), frameAdaptive: true, lastEstimate: 4}
	// A fully collided round has no information: the estimate must grow.
	r.updateEstimate(gen2.Result{Slots: 4, Collisions: 4})
	if r.lastEstimate != 8 {
		t.Errorf("estimate after saturation = %v, want doubled", r.lastEstimate)
	}
	// And it must not grow without bound.
	r.lastEstimate = 1 << 15
	r.updateEstimate(gen2.Result{Slots: 4, Collisions: 4})
	if r.lastEstimate > 1<<15 {
		t.Errorf("estimate unbounded: %v", r.lastEstimate)
	}
	// frameQ clamps.
	if q := r.frameQ(); q != 15 {
		t.Errorf("frameQ at ceiling = %d", q)
	}
	r.lastEstimate = 0.5
	if q := r.frameQ(); q != 1 {
		t.Errorf("frameQ at floor = %d", q)
	}
}

func TestUpdateEstimateErrorHandling(t *testing.T) {
	// Only a saturated statistic justifies doubling the estimate: an
	// all-collided frame genuinely says "population above frame size". An
	// empty or malformed round carries no population information at all
	// and must leave the estimate alone (floored by reads actually made),
	// not silently double it.
	cases := []struct {
		name string
		res  gen2.Result
		init float64
		want float64
	}{
		{
			name: "saturated doubles",
			res:  gen2.Result{Slots: 8, Collisions: 8},
			init: 16, want: 32,
		},
		{
			name: "no slots leaves estimate",
			res:  gen2.Result{},
			init: 16, want: 16,
		},
		{
			name: "invalid round leaves estimate",
			res:  gen2.Result{Slots: 8, Empties: 12},
			init: 16, want: 16,
		},
		{
			name: "invalid round floored by reads",
			res:  gen2.Result{Slots: 8, Empties: 12, Reads: make([]gen2.Read, 24)},
			init: 16, want: 24,
		},
		{
			name: "clean round smooths",
			res:  gen2.Result{Slots: 8, Empties: 8},
			init: 16, want: 8, // 0.5*16 + 0.5*max(0, 0 reads)
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Reader{cfg: gen2.DefaultConfig(), frameAdaptive: true, lastEstimate: tc.init}
			r.updateEstimate(tc.res)
			if r.lastEstimate != tc.want {
				t.Errorf("estimate = %v, want %v", r.lastEstimate, tc.want)
			}
		})
	}
}
