package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rfidtrack/internal/obs"
)

// TestMeasureMetricsDeterminism is the engine-level half of the
// observability contract: the merged metric snapshot (minus wall time) is
// bit-identical for any worker count, just like the reliability results.
func TestMeasureMetricsDeterminism(t *testing.T) {
	const trials, firstPass = 24, 3
	snapshotWith := func(workers int) (obs.Snapshot, Reliability) {
		m := obs.NewMetrics()
		rel, err := MeasureParallelOpts(richPortal, trials, firstPass,
			MeasureOpts{Workers: workers, Metrics: m})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return m.Snapshot().Canonical(), rel
	}
	want, wantRel := snapshotWith(1)
	if want.Counters["pass.count"] != trials {
		t.Fatalf("pass.count = %d, want %d", want.Counters["pass.count"], trials)
	}
	if want.Counters["round.count"] == 0 || want.Counters["link.resolutions"] == 0 {
		t.Fatalf("metrics empty: %+v", want.Counters)
	}
	for _, workers := range []int{2, 8} {
		got, gotRel := snapshotWith(workers)
		if !reflect.DeepEqual(want, got) {
			a, _ := json.Marshal(want)
			b, _ := json.Marshal(got)
			t.Errorf("workers=%d snapshot diverges:\n1: %s\n%d: %s", workers, a, workers, b)
		}
		if !reflect.DeepEqual(wantRel, gotRel) {
			t.Errorf("workers=%d reliability diverges under instrumentation", workers)
		}
	}
}

// TestMeasureMetricsConsistency sanity-checks the engine's counters
// against the structure of the scene: every pass is counted, every round
// resolves one link per (tag, active antenna), and each (tag, antenna)
// opportunity series sums to that antenna's rounds.
func TestMeasureMetricsConsistency(t *testing.T) {
	const trials = 8
	m := obs.NewMetrics()
	if _, err := MeasureParallelOpts(richPortal, trials, 0,
		MeasureOpts{Workers: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	// richPortal: 3 tags, 2 readers with 1 antenna each → each round
	// resolves 3 links, and each (tag, antenna) pair appears.
	if got, want := s.Counters["link.resolutions"], 3*s.Counters["round.count"]; got != want {
		t.Errorf("link.resolutions = %d, want 3×rounds = %d", got, want)
	}
	if len(s.Opportunities) != 6 {
		t.Fatalf("opportunity series = %d, want 3 tags × 2 antennas", len(s.Opportunities))
	}
	var oppRounds uint64
	for _, o := range s.Opportunities {
		oppRounds += o.Rounds()
	}
	if oppRounds != 3*s.Counters["round.count"] {
		t.Errorf("opportunity outcomes %d != 3×rounds %d", oppRounds, 3*s.Counters["round.count"])
	}
	if s.Histograms["pass.rounds"].Count != trials {
		t.Errorf("pass.rounds count = %d, want %d", s.Histograms["pass.rounds"].Count, trials)
	}
	if s.WallTime == nil || s.WallTime.PassMicros.Count != trials {
		t.Errorf("wall-time section missing or short: %+v", s.WallTime)
	}
}

// TestMeasureTrace drives a measurement with the tracer attached and
// checks the JSONL stream is well-formed and complete per pass.
func TestMeasureTrace(t *testing.T) {
	const trials = 4
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	if _, err := MeasureParallelOpts(richPortal, trials, 0,
		MeasureOpts{Workers: 1, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	begins, ends, rounds := 0, 0, 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Ev     string `json:"ev"`
			Rounds int    `json:"rounds"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		switch ev.Ev {
		case "pass_begin":
			begins++
		case "pass_end":
			ends++
		case "round":
			rounds++
		default:
			t.Fatalf("unexpected event %q", ev.Ev)
		}
	}
	if begins != trials || ends != trials {
		t.Errorf("pass events = %d begin / %d end, want %d each", begins, ends, trials)
	}
	if rounds == 0 {
		t.Error("no round events traced")
	}
}

// TestMeasureInstrumentedMatchesBare: attaching metrics and tracing must
// not change measured reliability.
func TestMeasureInstrumentedMatchesBare(t *testing.T) {
	want, err := MeasureParallel(richPortal, 12, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	got, err := MeasureParallelOpts(richPortal, 12, 0, MeasureOpts{
		Workers: 2, Metrics: obs.NewMetrics(), Tracer: obs.NewTracer(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("instrumentation changed measured reliability")
	}
}
