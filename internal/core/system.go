package core

import (
	"fmt"
	"sort"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/epc"
)

// TrackingSystem is the complete deployment the paper's introduction
// describes: multiple portals (each a read zone with its readers) feeding
// one back-end, which smooths raw reads into sightings, keeps the
// tracking database, and runs the application rules.
type TrackingSystem struct {
	portals  map[string]*Portal
	order    []string
	pipeline *backend.Pipeline
	// clock is the running deployment time; each pass advances it so
	// sightings from successive passes never merge.
	clock float64
}

// NewTrackingSystem builds a system over the given pipeline (nil =
// default pipeline with a 2 s smoothing window).
func NewTrackingSystem(pipeline *backend.Pipeline) *TrackingSystem {
	if pipeline == nil {
		pipeline = backend.NewPipeline(nil)
	}
	return &TrackingSystem{
		portals:  make(map[string]*Portal),
		pipeline: pipeline,
	}
}

// AddPortal registers a named portal. Names must be unique.
func (s *TrackingSystem) AddPortal(name string, p *Portal) error {
	if _, dup := s.portals[name]; dup {
		return fmt.Errorf("core: duplicate portal %q", name)
	}
	s.portals[name] = p
	s.order = append(s.order, name)
	return nil
}

// Pipeline exposes the back-end (for rules and the store).
func (s *TrackingSystem) Pipeline() *backend.Pipeline { return s.pipeline }

// PortalNames returns the registered portal names in insertion order.
func (s *TrackingSystem) PortalNames() []string {
	return append([]string(nil), s.order...)
}

// RunPass simulates one pass at the named portal and feeds every read
// into the back-end, stamping events onto the deployment clock. It
// returns the pass result and the sightings the pass closed.
func (s *TrackingSystem) RunPass(portalName string, passID int) (PassResult, []backend.Sighting, error) {
	p, ok := s.portals[portalName]
	if !ok {
		return PassResult{}, nil, fmt.Errorf("core: unknown portal %q (have %v)", portalName, s.PortalNames())
	}
	res := p.RunPass(passID)
	var closed []backend.Sighting
	for _, e := range res.Events {
		closed = append(closed, s.pipeline.Ingest(backend.Event{
			EPC:      e.EPC,
			Location: portalName,
			Antenna:  e.Antenna,
			Time:     s.clock + e.Time,
		})...)
	}
	// Advance the deployment clock well past the pass so the next pass's
	// sightings never merge with this one's.
	s.clock += res.Duration + 60
	return res, closed, nil
}

// Flush closes all open sightings.
func (s *TrackingSystem) Flush() []backend.Sighting {
	return s.pipeline.Flush(s.clock + 1e6)
}

// WhereIs returns a tag's last tracked location.
func (s *TrackingSystem) WhereIs(code epc.Code) (backend.Location, bool) {
	return s.pipeline.Store().LocationOf(code)
}

// Journey returns a tag's sighting history, optionally cleaned against a
// route constraint (nil route = raw history).
func (s *TrackingSystem) Journey(code epc.Code, route *backend.Route) []backend.Sighting {
	h := s.pipeline.Store().History(code)
	if route != nil {
		h = route.Clean(h)
	}
	return h
}

// Inventory lists every tag the system has tracked, sorted by EPC.
func (s *TrackingSystem) Inventory() []epc.Code {
	codes := s.pipeline.Store().Tags()
	sort.Slice(codes, func(i, j int) bool { return codes[i].Hex() < codes[j].Hex() })
	return codes
}
