package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// richPortal builds a two-box, three-tag, two-reader portal — enough
// moving parts (interference, multiple carriers, shared fading blocks) to
// catch any cross-pass state leaking between workers.
func richPortal() (*Portal, error) {
	w := world.New(rf.DefaultCalibration(), 99)
	a1 := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	b1 := w.AddBox("box1", geom.CrossingPass(1, 1, 2, 1),
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	b2 := w.AddBox("box2", geom.CrossingPass(1, 1.2, 2, 1),
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Metal, geom.V(0.2, 0.2, 0.2))
	w.AttachTag(b1, "t1", testCode(11), world.Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	w.AttachTag(b2, "t2", testCode(12), world.Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.02,
	})
	w.AttachTag(b2, "t3", testCode(13), world.Mount{
		Offset: geom.V(0.15, 0, 0), Normal: geom.UnitX, Axis: geom.UnitZ, Gap: 0.02,
	})
	r1, err := reader.New("r1", w, []*world.Antenna{a1})
	if err != nil {
		return nil, err
	}
	r2, err := reader.New("r2", w, []*world.Antenna{a2})
	if err != nil {
		return nil, err
	}
	return &Portal{World: w, Readers: []*reader.Reader{r1, r2}}, nil
}

// TestMeasureParallelMatchesSequential is the engine's determinism
// contract: for any worker count, MeasureParallel must produce results —
// including the per-pass TagsReadPerPass series — bit-identical to
// sequential Measure on one portal.
func TestMeasureParallelMatchesSequential(t *testing.T) {
	const trials, firstPass = 24, 3
	seq, err := richPortal()
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Measure(trials, firstPass)
	for _, workers := range []int{1, 2, 8} {
		got, err := MeasureParallel(richPortal, trials, firstPass, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: parallel result diverges from sequential\nseq: %+v\npar: %+v",
				workers, want, got)
		}
	}
}

// TestMeasureParallelDefaultWorkers: workers <= 0 selects GOMAXPROCS and
// must still match.
func TestMeasureParallelDefaultWorkers(t *testing.T) {
	seq, err := richPortal()
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Measure(8, 0)
	got, err := MeasureParallel(richPortal, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("default worker count diverges from sequential")
	}
}

// TestSequentialMeasureIsRepeatable: a second Measure on the same portal
// must repeat the first bit-for-bit (pass purity — no state carried
// between trials or between whole measurements).
func TestSequentialMeasureIsRepeatable(t *testing.T) {
	p, err := richPortal()
	if err != nil {
		t.Fatal(err)
	}
	a := p.Measure(10, 0)
	b := p.Measure(10, 0)
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated Measure on one portal diverged: state leaked between trials")
	}
}

// TestMeasureParallelBuilderError: a failing builder surfaces its error.
func TestMeasureParallelBuilderError(t *testing.T) {
	boom := errors.New("boom")
	_, err := MeasureParallel(func() (*Portal, error) { return nil, boom }, 4, 0, 2)
	if !errors.Is(err, boom) {
		t.Errorf("builder error not propagated: %v", err)
	}
	_, err = MeasureParallel(func() (*Portal, error) { return nil, boom }, 4, 0, 1)
	if !errors.Is(err, boom) {
		t.Errorf("builder error not propagated on sequential path: %v", err)
	}
}

// marginalPortal puts the tag far enough out that passes succeed only
// sometimes — per-pass outcomes then expose the random draws directly.
func marginalPortal() (*Portal, error) {
	w := world.New(rf.DefaultCalibration(), 17)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	box := w.AddBox("box", geom.CrossingPass(1, 5, 2, 1),
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	w.AttachTag(box, "tag", testCode(21), world.Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	r, err := reader.New("r1", w, []*world.Antenna{ant})
	if err != nil {
		return nil, err
	}
	return &Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// TestMeasureParallelFirstPassOffset: disjoint firstPass windows must
// yield different draws (the pass index really keys the randomness).
func TestMeasureParallelFirstPassOffset(t *testing.T) {
	a, err := MeasureParallel(marginalPortal, 40, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureParallel(marginalPortal, 40, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.TagsReadPerPass, b.TagsReadPerPass) {
		t.Error("different firstPass windows produced identical per-pass series")
	}
	// And the marginal series must itself be deterministic per window.
	c, err := MeasureParallel(marginalPortal, 40, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("marginal portal: workers=2 and workers=8 diverge")
	}
}

func BenchmarkMeasureSequential(b *testing.B) {
	p, err := richPortal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Measure(4, 0)
	}
}

func BenchmarkMeasureParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MeasureParallel(richPortal, 4, 0, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
