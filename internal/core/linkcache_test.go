package core

import (
	"reflect"
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// staticPortal is a stationary two-tag scene: every resolution lands on
// the same quantized pose instant, so once a worker replica's cache is
// warm every lookup is a hit — the maximum-sharing-pressure case for the
// per-replica ownership rule.
func staticPortal() (*Portal, error) {
	w := world.New(rf.DefaultCalibration(), 7)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	box := w.AddBox("box", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 2, 1), geom.UnitX, geom.UnitZ), Dur: 4},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	w.AttachTag(box, "t1", testCode(31), world.Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	w.AttachTag(box, "t2", testCode(32), world.Mount{
		Offset: geom.V(0.1, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.05,
	})
	r, err := reader.New("r1", w, []*world.Antenna{ant})
	if err != nil {
		return nil, err
	}
	return &Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// invalidatingPortal is richPortal with a post-construction mutation: the
// builder warms the cache, then moves a box through the mutator API, so
// every replica exercises the pose-epoch invalidation path (stale entries
// discarded on the first resolution of the measurement proper).
func invalidatingPortal() (*Portal, error) {
	p, err := richPortal()
	if err != nil {
		return nil, err
	}
	w := p.World
	tags, ants := w.Tags(), w.Antennas()
	_ = w.ResolveLink(tags[0], ants[0], world.LinkContext{Time: 1, Pass: 0, Round: 0})
	w.SetBoxPath(tags[0].Carrier().(*world.Box), geom.CrossingPass(1, 1.1, 2, 1))
	return p, nil
}

// TestMeasureParallelCachedRace is the concurrency regression test for the
// link cache: eight workers on a fully-cached static scene and on an
// invalidating moving scene, run under `make check`'s -race. A cache (or
// position memo, or draw scratch) shared across replicas shows up here as
// a data race; the results must also still match sequential.
func TestMeasureParallelCachedRace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build Builder
	}{
		{"static", staticPortal},
		{"invalidating", invalidatingPortal},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			want := seq.Measure(24, 0)
			got, err := MeasureParallel(tc.build, 24, 0, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("workers=8 diverges from sequential on %s scene", tc.name)
			}
		})
	}
}

// TestMeasureParallelCacheOffMatches: DisableLinkCache must change
// nothing — for every worker count the uncached measurement is
// bit-identical to the cached one.
func TestMeasureParallelCacheOffMatches(t *testing.T) {
	want, err := MeasureParallelOpts(richPortal, 16, 0, MeasureOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := MeasureParallelOpts(richPortal, 16, 0, MeasureOpts{
			Workers:          workers,
			DisableLinkCache: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d with cache off diverges from cached sequential", workers)
		}
	}
}
