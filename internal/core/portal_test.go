package core

import (
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

func testCode(serial uint64) epc.Code {
	c, err := epc.GID96{Manager: 3, Class: 3, Serial: serial}.Encode()
	if err != nil {
		panic(err)
	}
	return c
}

// movingPortal builds a portal with one antenna and a tagged box passing
// at 1 m/s at 1 m distance, the paper's canonical geometry.
func movingPortal(t *testing.T, seed uint64) (*Portal, *world.Tag) {
	t.Helper()
	w := world.New(rf.DefaultCalibration(), seed)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	box := w.AddBox("box", geom.CrossingPass(1, 1, 2, 1),
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	tag := w.AttachTag(box, "tag", testCode(1), world.Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	r, err := reader.New("r1", w, []*world.Antenna{ant})
	if err != nil {
		t.Fatal(err)
	}
	return &Portal{World: w, Readers: []*reader.Reader{r}}, tag
}

func TestRunPassReadsMovingTag(t *testing.T) {
	p, tag := movingPortal(t, 1)
	res := p.RunPass(0)
	if !res.ReadTag(tag.Code) {
		t.Error("well-placed moving tag not read")
	}
	if res.Rounds < 3 {
		t.Errorf("only %d rounds in a 4 s pass", res.Rounds)
	}
	if res.Duration <= 0 {
		t.Error("pass consumed no time")
	}
	if len(res.Events) == 0 {
		t.Error("no events recorded")
	}
}

func TestRecordRoundsCapturesStatistics(t *testing.T) {
	p, _ := movingPortal(t, 9)
	// Off by default: the hot path records nothing.
	res := p.RunPass(0)
	if len(res.RoundResults) != 0 || len(res.RoundEPCs) != 0 {
		t.Fatalf("round recording on by default: %d results", len(res.RoundResults))
	}
	p.RecordRounds = true
	res = p.RunPass(0)
	if len(res.RoundResults) != res.Rounds || len(res.RoundEPCs) != res.Rounds {
		t.Fatalf("recorded %d results / %d epc lists for %d rounds",
			len(res.RoundResults), len(res.RoundEPCs), res.Rounds)
	}
	totalEPCs := 0
	for i, rr := range res.RoundResults {
		if rr.Reads != nil {
			t.Error("recorded round retains reader-owned Reads scratch")
		}
		if rr.Empties+rr.Singles+rr.Collisions+rr.CRCFailures != rr.Slots {
			t.Errorf("round %d breaks the slot invariant: %+v", i, rr)
		}
		totalEPCs += len(res.RoundEPCs[i])
	}
	if totalEPCs != len(res.Events) {
		t.Errorf("per-round EPCs total %d, events %d", totalEPCs, len(res.Events))
	}
}

func TestPassesAreIndependent(t *testing.T) {
	p, _ := movingPortal(t, 2)
	a := p.RunPass(0)
	b := p.RunPass(0) // same pass id: identical draws
	if len(a.Events) != len(b.Events) {
		t.Errorf("same pass id produced %d vs %d events", len(a.Events), len(b.Events))
	}
	c := p.RunPass(1)
	// Different pass id: different shadowing; at minimum it must run.
	if c.Rounds == 0 {
		t.Error("pass 1 did not run")
	}
}

func TestMeasure(t *testing.T) {
	p, tag := movingPortal(t, 3)
	rel := p.Measure(20, 0)
	if rel.Trials != 20 {
		t.Fatalf("trials = %d", rel.Trials)
	}
	pr, ok := rel.PerTag[tag.Name]
	if !ok || pr.Trials != 20 {
		t.Fatalf("per-tag stats missing: %+v", rel.PerTag)
	}
	if pr.Rate() < 0.8 {
		t.Errorf("boresight moving tag reliability = %v, want high", pr.Rate())
	}
	cr := rel.PerCarrier["box"]
	if cr.Trials != 20 || cr.Successes < pr.Successes {
		t.Errorf("carrier tracking (%+v) must be at least tag reliability (%+v)", cr, pr)
	}
	if len(rel.TagsReadPerPass) != 20 {
		t.Errorf("per-pass series length %d", len(rel.TagsReadPerPass))
	}
	if s := rel.ReadSummary(); s.N != 20 || s.Mean < 0.8 {
		t.Errorf("summary = %+v", s)
	}
	if rel.MeanTagReliability(nil) != pr.Rate() {
		t.Error("mean over single tag should equal its rate")
	}
	if rel.MeanCarrierReliability(nil) != cr.Rate() {
		t.Error("mean over single carrier should equal its rate")
	}
	if got := rel.TagNames(); len(got) != 1 || got[0] != "tag" {
		t.Errorf("tag names = %v", got)
	}
	if got := rel.CarrierNames(); len(got) != 1 || got[0] != "box" {
		t.Errorf("carrier names = %v", got)
	}
}

func TestMeasureFilters(t *testing.T) {
	p, _ := movingPortal(t, 4)
	rel := p.Measure(5, 0)
	none := rel.MeanTagReliability(func(string) bool { return false })
	if none != 0 {
		t.Errorf("empty filter mean = %v", none)
	}
}

func TestStaticSceneSingleCycle(t *testing.T) {
	w := world.New(rf.DefaultCalibration(), 5)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	box := w.AddBox("box", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.2, 0.2, 0.2), rf.Cardboard, rf.Air, geom.Vec3{})
	w.AttachTag(box, "tag", testCode(2), world.Mount{
		Offset: geom.V(0, -0.1, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.05,
	})
	r, _ := reader.New("r1", w, []*world.Antenna{ant})
	p := &Portal{World: w, Readers: []*reader.Reader{r}}
	res := p.RunPass(0)
	// A static scene is a single read: exactly one round per reader.
	if res.Rounds != 1 {
		t.Errorf("static pass ran %d rounds, want 1", res.Rounds)
	}
	if !res.ReadTag(w.Tags()[0].Code) {
		t.Error("static boresight tag not read")
	}
}

func TestTwoReadersInterfere(t *testing.T) {
	w := world.New(rf.DefaultCalibration(), 6)
	a1 := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	box := w.AddBox("box", geom.CrossingPass(1, 1, 2, 1),
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	w.AttachTag(box, "tag", testCode(3), world.Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	r1, _ := reader.New("r1", w, []*world.Antenna{a1})
	r2, _ := reader.New("r2", w, []*world.Antenna{a2})
	p := &Portal{World: w, Readers: []*reader.Reader{r1, r2}}
	rel := p.Measure(20, 0)
	twoReader := rel.PerTag["tag"].Rate()

	// Baseline: one reader alone.
	p1, _ := movingPortal(t, 6)
	base := p1.Measure(20, 0).PerTag["tag"].Rate()
	if twoReader >= base {
		t.Errorf("two non-dense readers (%v) should underperform one (%v)", twoReader, base)
	}
}
