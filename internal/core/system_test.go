package core

import (
	"testing"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// buildSystem wires two portals (dock and gate) watching the same tagged
// box design into one tracking system.
func buildSystem(t *testing.T) (*TrackingSystem, *world.Tag, *world.Tag) {
	t.Helper()
	// A 5 s window: a portal pass can read a tag at entry and exit a few
	// seconds apart, and those must merge into one sighting.
	sys := NewTrackingSystem(backend.NewPipeline(backend.NewWindowSmoother(5)))

	mk := func(seed uint64) (*Portal, *world.Tag) {
		w := world.New(rf.DefaultCalibration(), seed)
		ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
		box := w.AddBox("box", geom.CrossingPass(1, 1, 2, 1),
			geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
		tag := w.AttachTag(box, "label", testCode(seed), world.Mount{
			Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.1,
		})
		r, err := reader.New("r1", w, []*world.Antenna{ant})
		if err != nil {
			t.Fatal(err)
		}
		return &Portal{World: w, Readers: []*reader.Reader{r}}, tag
	}
	dock, tagA := mk(21)
	gate, tagB := mk(21) // same seed: same EPC moves dock -> gate
	if err := sys.AddPortal("dock", dock); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPortal("gate", gate); err != nil {
		t.Fatal(err)
	}
	return sys, tagA, tagB
}

func TestTrackingSystemJourney(t *testing.T) {
	sys, tagA, _ := buildSystem(t)
	if got := sys.PortalNames(); len(got) != 2 || got[0] != "dock" || got[1] != "gate" {
		t.Fatalf("portal names = %v", got)
	}

	// The same EPC passes the dock, then the gate.
	if _, _, err := sys.RunPass("dock", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.RunPass("gate", 1); err != nil {
		t.Fatal(err)
	}
	sys.Flush()

	loc, ok := sys.WhereIs(tagA.Code)
	if !ok || loc.Name != "gate" {
		t.Errorf("WhereIs = %+v, %v; want gate", loc, ok)
	}
	journey := sys.Journey(tagA.Code, nil)
	if len(journey) != 2 || journey[0].Location != "dock" || journey[1].Location != "gate" {
		t.Errorf("journey = %+v", journey)
	}
	// Sightings from the two passes must not have merged.
	if journey[0].Last >= journey[1].First {
		t.Error("passes merged into one sighting")
	}
	inv := sys.Inventory()
	if len(inv) != 1 || inv[0] != tagA.Code {
		t.Errorf("inventory = %v", inv)
	}
}

func TestTrackingSystemRouteCleaning(t *testing.T) {
	sys, tagA, _ := buildSystem(t)
	sys.RunPass("dock", 0)
	sys.RunPass("gate", 1)
	sys.Flush()
	// A route with a phantom middle portal: Journey with the constraint
	// reconstructs it.
	route := &backend.Route{Portals: []string{"dock", "belt", "gate"}, MaxGap: 1e6}
	journey := sys.Journey(tagA.Code, route)
	if len(journey) != 3 || journey[1].Location != "belt" || !journey[1].Inferred {
		t.Errorf("cleaned journey = %+v", journey)
	}
}

func TestTrackingSystemErrors(t *testing.T) {
	sys, _, _ := buildSystem(t)
	if _, _, err := sys.RunPass("nowhere", 0); err == nil {
		t.Error("unknown portal accepted")
	}
	if err := sys.AddPortal("dock", nil); err == nil {
		t.Error("duplicate portal accepted")
	}
	// Unknown tag.
	if _, ok := sys.WhereIs(testCode(999)); ok {
		t.Error("phantom tag located")
	}
	// Nil pipeline defaults.
	if NewTrackingSystem(nil).Pipeline() == nil {
		t.Error("nil pipeline not defaulted")
	}
}

func TestTrackingSystemRules(t *testing.T) {
	sys, tagA, _ := buildSystem(t)
	var arrivals int
	sys.Pipeline().AddRule(backend.Rule{
		Name:   "count gate arrivals",
		Match:  func(s backend.Sighting) bool { return s.Location == "gate" },
		Action: func(backend.Sighting) { arrivals++ },
	})
	sys.RunPass("gate", 0)
	sys.Flush()
	if arrivals == 0 {
		t.Error("gate rule never fired")
	}
	_ = tagA
}
