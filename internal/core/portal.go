// Package core composes the substrates into the system the paper studies:
// a tracking portal (world + readers) that runs passes of tagged objects
// or people, and the reliability measurement the paper's tables are built
// from — per-tag read reliability and per-carrier (object/human) tracking
// reliability over repeated trials.
package core

import (
	"math"
	"sort"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/stats"
	"rfidtrack/internal/world"
)

// Portal is one read zone: a world plus the reader(s) covering it.
type Portal struct {
	World   *world.World
	Readers []*reader.Reader
}

// PassResult is the outcome of one trial.
type PassResult struct {
	Events   []reader.Event
	ReadEPCs map[epc.Code]bool
	Rounds   int
	Duration float64
}

// ReadTag reports whether the pass read the given EPC at least once.
func (p PassResult) ReadTag(c epc.Code) bool { return p.ReadEPCs[c] }

// RunPass simulates one complete trial: every carrier traverses its path
// while all readers run inventory rounds concurrently (each reader's CW is
// interference for the others). Tag protocol state is reset first so
// trials are independent.
func (p *Portal) RunPass(passID int) PassResult {
	res := PassResult{ReadEPCs: make(map[epc.Code]bool)}
	for _, tag := range p.World.Tags() {
		tag.Proto.Reset()
	}

	duration := 0.0
	for _, c := range p.World.Carriers() {
		switch cc := c.(type) {
		case *world.Box:
			duration = math.Max(duration, cc.Path.Duration())
		case *world.Person:
			duration = math.Max(duration, cc.Path.Duration())
		}
	}
	if duration <= 0 {
		// Static scene (the read-range grid): a single read cycle.
		duration = 1e-9
	}

	t := 0.0
	for t <= duration {
		cycle := 0.0
		for i, r := range p.Readers {
			foreign := p.foreignFor(i, t)
			events, d := r.RunRound(passID, t, foreign)
			for _, e := range events {
				res.Events = append(res.Events, e)
				res.ReadEPCs[e.EPC] = true
			}
			res.Rounds++
			cycle = math.Max(cycle, d)
		}
		if cycle <= 0 {
			break
		}
		t += cycle
		res.Duration = t
		if duration == 1e-9 {
			// Static scene: exactly one cycle per pass.
			break
		}
	}
	return res
}

// foreignFor lists the CW emitters reader i suffers from: every other
// reader's currently active antenna. Dense-reader mode only helps when
// both ends implement it.
func (p *Portal) foreignFor(i int, t float64) []world.ForeignEmitter {
	var out []world.ForeignEmitter
	for j, other := range p.Readers {
		if j == i {
			continue
		}
		out = append(out, world.ForeignEmitter{
			Antenna:       other.AntennaAt(t),
			DenseModeBoth: p.Readers[i].DenseMode() && other.DenseMode(),
		})
	}
	return out
}

// Reliability aggregates repeated trials the way the paper reports them.
type Reliability struct {
	// Trials is the number of passes measured.
	Trials int
	// PerTag is the read reliability of each tag (by tag name).
	PerTag map[string]stats.Proportion
	// PerCarrier is the tracking reliability of each carrier: a carrier is
	// tracked when at least one of its tags is read (the paper's
	// system-level definition).
	PerCarrier map[string]stats.Proportion
	// TagsReadPerPass is the number of distinct tags read in each pass
	// (the quantity Figures 2 and 4 plot).
	TagsReadPerPass []float64
}

// Measure runs n independent passes and aggregates reliability. Passes are
// numbered from firstPass so different conditions of one experiment can
// use disjoint shadowing draws.
func (p *Portal) Measure(n, firstPass int) Reliability {
	rel := Reliability{
		Trials:     n,
		PerTag:     make(map[string]stats.Proportion),
		PerCarrier: make(map[string]stats.Proportion),
	}
	tags := p.World.Tags()
	for trial := 0; trial < n; trial++ {
		res := p.RunPass(firstPass + trial)
		distinct := 0
		for _, tag := range tags {
			pr := rel.PerTag[tag.Name]
			pr.Trials++
			if res.ReadTag(tag.Code) {
				pr.Successes++
				distinct++
			}
			rel.PerTag[tag.Name] = pr
		}
		for _, c := range p.World.Carriers() {
			if len(c.Tags()) == 0 {
				continue
			}
			pr := rel.PerCarrier[c.Name()]
			pr.Trials++
			for _, tag := range c.Tags() {
				if res.ReadTag(tag.Code) {
					pr.Successes++
					break
				}
			}
			rel.PerCarrier[c.Name()] = pr
		}
		rel.TagsReadPerPass = append(rel.TagsReadPerPass, float64(distinct))
	}
	return rel
}

// MeanTagReliability averages the per-tag read reliability over tags whose
// names pass the filter (nil matches every tag).
func (r Reliability) MeanTagReliability(filter func(name string) bool) float64 {
	var ps []float64
	for name, pr := range r.PerTag {
		if filter == nil || filter(name) {
			ps = append(ps, pr.Rate())
		}
	}
	return stats.Mean(ps)
}

// MeanCarrierReliability averages the per-carrier tracking reliability
// over carriers whose names pass the filter (nil matches all).
func (r Reliability) MeanCarrierReliability(filter func(name string) bool) float64 {
	var ps []float64
	for name, pr := range r.PerCarrier {
		if filter == nil || filter(name) {
			ps = append(ps, pr.Rate())
		}
	}
	return stats.Mean(ps)
}

// TagNames returns the measured tag names, sorted.
func (r Reliability) TagNames() []string {
	names := make([]string, 0, len(r.PerTag))
	for n := range r.PerTag {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CarrierNames returns the measured carrier names, sorted.
func (r Reliability) CarrierNames() []string {
	names := make([]string, 0, len(r.PerCarrier))
	for n := range r.PerCarrier {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReadSummary summarizes TagsReadPerPass (the Figure 2 / Figure 4 series).
func (r Reliability) ReadSummary() stats.Summary {
	return stats.Summarize(r.TagsReadPerPass)
}
