// Package core composes the substrates into the system the paper studies:
// a tracking portal (world + readers) that runs passes of tagged objects
// or people, and the reliability measurement the paper's tables are built
// from — per-tag read reliability and per-carrier (object/human) tracking
// reliability over repeated trials.
package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/stats"
	"rfidtrack/internal/world"
)

// Portal is one read zone: a world plus the reader(s) covering it.
type Portal struct {
	World   *world.World
	Readers []*reader.Reader

	// RecordRounds, when set, makes every pass keep per-round slot
	// statistics and identified EPCs in the PassResult (RoundResults /
	// RoundEPCs) — the inputs session-merge stopping rules consume. Off by
	// default: the hot measurement path should not pay for copies nobody
	// reads.
	RecordRounds bool

	// obs and tracer, when non-nil, instrument every pass (see Observe).
	obs    *obs.Collector
	tracer *obs.Tracer

	// foreign is per-round scratch for foreignFor; passes on one portal run
	// from a single goroutine.
	foreign []world.ForeignEmitter
}

// Observe attaches instrumentation to the portal and propagates it to
// the world (link-resolution counts) and every reader (round summaries,
// opportunity outcomes). The collector shard must be private to the
// goroutine running this portal's passes; the tracer may be shared. Nil
// arguments detach, restoring the zero-cost disabled path.
func (p *Portal) Observe(c *obs.Collector, tr *obs.Tracer) {
	p.obs = c
	p.tracer = tr
	p.World.Observe(c)
	for _, r := range p.Readers {
		r.Observe(c, tr)
	}
}

// PassResult is the outcome of one trial.
type PassResult struct {
	Events   []reader.Event
	ReadEPCs map[epc.Code]bool
	Rounds   int
	Duration float64

	// RoundResults and RoundEPCs are the per-round slot statistics and
	// identified EPCs, parallel slices, populated only when the portal's
	// RecordRounds is set. The Reads inside each RoundResult are detached
	// (nil): the statistics are what estimators consume, and the raw reads
	// are reader-owned scratch.
	RoundResults []gen2.Result
	RoundEPCs    [][]epc.Code
}

// ReadTag reports whether the pass read the given EPC at least once.
func (p PassResult) ReadTag(c epc.Code) bool { return p.ReadEPCs[c] }

// RunPass simulates one complete trial: every carrier traverses its path
// while all readers run inventory rounds concurrently (each reader's CW is
// interference for the others). Tag protocol and reader round state are
// re-keyed to the pass first, so a pass is a pure function of
// (configuration, seed, passID) — trials are independent and replay
// identically whether they run in sequence or spread across workers.
func (p *Portal) RunPass(passID int) PassResult {
	var res PassResult
	p.runPassInto(passID, &res)
	return res
}

// runPassInto is RunPass writing into caller-owned storage: the event
// slice and the read-EPC set are truncated and reused, so a measurement
// loop allocates per-pass state once instead of once per trial.
func (p *Portal) runPassInto(passID int, res *PassResult) {
	var start time.Time
	if p.obs != nil {
		start = time.Now()
	}
	if p.tracer != nil {
		p.tracer.PassBegin(passID)
	}
	if res.ReadEPCs == nil {
		res.ReadEPCs = make(map[epc.Code]bool)
	} else {
		clear(res.ReadEPCs)
	}
	res.Events = res.Events[:0]
	res.Rounds = 0
	res.Duration = 0
	res.RoundResults = res.RoundResults[:0]
	res.RoundEPCs = res.RoundEPCs[:0]
	for _, tag := range p.World.Tags() {
		tag.Proto.ResetForPass(passID)
	}
	for _, r := range p.Readers {
		r.BeginPass()
	}

	duration := 0.0
	for _, c := range p.World.Carriers() {
		switch cc := c.(type) {
		case *world.Box:
			duration = math.Max(duration, cc.Path.Duration())
		case *world.Person:
			duration = math.Max(duration, cc.Path.Duration())
		}
	}
	if duration <= 0 {
		// Static scene (the read-range grid): a single read cycle.
		duration = 1e-9
	}

	t := 0.0
	for t <= duration {
		cycle := 0.0
		for i, r := range p.Readers {
			foreign := p.foreignFor(i, t)
			events, rr := r.RunRound(passID, t, foreign)
			for _, e := range events {
				res.Events = append(res.Events, e)
				res.ReadEPCs[e.EPC] = true
			}
			if p.RecordRounds {
				stats := rr
				stats.Reads = nil // reader-owned scratch; keep statistics only
				res.RoundResults = append(res.RoundResults, stats)
				var epcs []epc.Code
				if n := len(res.RoundEPCs); n < cap(res.RoundEPCs) {
					epcs = res.RoundEPCs[:n+1][n][:0]
				}
				for _, e := range events {
					epcs = append(epcs, e.EPC)
				}
				res.RoundEPCs = append(res.RoundEPCs, epcs)
			}
			res.Rounds++
			cycle = math.Max(cycle, rr.Duration)
		}
		if cycle <= 0 {
			break
		}
		t += cycle
		res.Duration = t
		if duration == 1e-9 {
			// Static scene: exactly one cycle per pass.
			break
		}
	}

	if p.obs != nil {
		p.obs.PassDone(res.Rounds, res.Duration, time.Since(start))
	}
	if p.tracer != nil {
		p.tracer.PassEnd(passID, res.Rounds, len(res.Events), res.Duration)
	}
}

// foreignFor lists the CW emitters reader i suffers from: every other
// reader's currently active antenna. Dense-reader mode only helps when
// both ends implement it.
func (p *Portal) foreignFor(i int, t float64) []world.ForeignEmitter {
	out := p.foreign[:0]
	for j, other := range p.Readers {
		if j == i {
			continue
		}
		out = append(out, world.ForeignEmitter{
			Antenna:       other.AntennaAt(t),
			DenseModeBoth: p.Readers[i].DenseMode() && other.DenseMode(),
		})
	}
	p.foreign = out
	return out
}

// Reliability aggregates repeated trials the way the paper reports them.
type Reliability struct {
	// Trials is the number of passes measured.
	Trials int
	// PerTag is the read reliability of each tag (by tag name).
	PerTag map[string]stats.Proportion
	// PerCarrier is the tracking reliability of each carrier: a carrier is
	// tracked when at least one of its tags is read (the paper's
	// system-level definition).
	PerCarrier map[string]stats.Proportion
	// TagsReadPerPass is the number of distinct tags read in each pass
	// (the quantity Figures 2 and 4 plot).
	TagsReadPerPass []float64
}

// passOutcome is the part of a pass the reliability aggregation needs:
// which tags (by World.Tags() index) were read at least once.
type passOutcome struct {
	tagRead []bool
}

// recordOutcome condenses a pass result into an outcome slot.
func (p *Portal) recordOutcome(res *PassResult, out *passOutcome) {
	tags := p.World.Tags()
	if cap(out.tagRead) < len(tags) {
		out.tagRead = make([]bool, len(tags))
	}
	out.tagRead = out.tagRead[:len(tags)]
	for i, tag := range tags {
		out.tagRead[i] = res.ReadTag(tag.Code)
	}
}

// aggregate folds per-pass outcomes, in pass order, into the Reliability
// the paper's tables report. Outcomes are indexed by trial, so the result
// is identical no matter which worker produced each pass or in what order
// passes finished.
func (p *Portal) aggregate(outcomes []passOutcome) Reliability {
	rel := Reliability{
		Trials:     len(outcomes),
		PerTag:     make(map[string]stats.Proportion),
		PerCarrier: make(map[string]stats.Proportion),
	}
	tags := p.World.Tags()
	index := make(map[*world.Tag]int, len(tags))
	for i, tag := range tags {
		index[tag] = i
	}
	for _, out := range outcomes {
		distinct := 0
		for i, tag := range tags {
			pr := rel.PerTag[tag.Name]
			pr.Trials++
			if out.tagRead[i] {
				pr.Successes++
				distinct++
			}
			rel.PerTag[tag.Name] = pr
		}
		for _, c := range p.World.Carriers() {
			if len(c.Tags()) == 0 {
				continue
			}
			pr := rel.PerCarrier[c.Name()]
			pr.Trials++
			for _, tag := range c.Tags() {
				if out.tagRead[index[tag]] {
					pr.Successes++
					break
				}
			}
			rel.PerCarrier[c.Name()] = pr
		}
		rel.TagsReadPerPass = append(rel.TagsReadPerPass, float64(distinct))
	}
	return rel
}

// Measure runs n independent passes and aggregates reliability. Passes are
// numbered from firstPass so different conditions of one experiment can
// use disjoint shadowing draws. Per-pass event buffers are reused across
// trials.
func (p *Portal) Measure(n, firstPass int) Reliability {
	outcomes := make([]passOutcome, n)
	var res PassResult
	for trial := 0; trial < n; trial++ {
		p.runPassInto(firstPass+trial, &res)
		p.recordOutcome(&res, &outcomes[trial])
	}
	return p.aggregate(outcomes)
}

// Builder constructs one portal replica. The parallel measurement engine
// calls it once per worker; every invocation must build an identical
// portal (same configuration, same seed), because each worker simulates a
// disjoint subset of passes against its own replica. Anything that mutates
// the scene after construction (repositioned tags, activated tags) belongs
// inside the builder, not after it.
type Builder func() (*Portal, error)

// MeasureOpts parameterizes MeasureParallelOpts.
type MeasureOpts struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, collects engine counters and histograms: each
	// worker replica writes its own shard, and the merged snapshot is
	// identical for any worker count (every deterministic metric is an
	// order-independent integer sum over pass-pure events).
	Metrics *obs.Metrics
	// Tracer, when non-nil, receives pass/round (and optionally link)
	// events from every worker. Lines from concurrent workers interleave;
	// sort by (pass, round) to reconstruct per-pass order.
	Tracer *obs.Tracer
	// DisableLinkCache turns off every replica's deterministic budget-terms
	// cache (the -linkcache=off escape hatch). Results are bit-identical
	// with the cache on or off; the switch exists for A/B benchmarking.
	DisableLinkCache bool
	// DisableLinkBatch steers every replica's readers back to per-link
	// ResolveLink calls instead of batched world.ResolveLinkGrid
	// resolution (the -linkbatch=off escape hatch). Results are
	// bit-identical either way.
	DisableLinkBatch bool
	// DisableLinkCull turns off every replica's broad-phase link culling
	// (the -linkcull=off escape hatch, DESIGN.md §14): every (tag,
	// antenna) pair is resolved densely. Reads are bit-identical either
	// way.
	DisableLinkCull bool
}

// MeasureParallel is Measure fanned across a worker pool. Each worker gets
// its own portal replica from build (workers share no mutable tag, reader,
// or world state), pulls pass indices from a shared counter, and writes
// its outcome into the trial's slot; the slots are then aggregated in pass
// order. Because every pass is a pure function of (configuration, seed,
// passID), the result — including TagsReadPerPass — is bit-identical to
// sequential Measure for any worker count.
//
// workers <= 0 selects GOMAXPROCS. One worker (or n <= 1) degenerates to
// the sequential path on a single replica.
func MeasureParallel(build Builder, n, firstPass, workers int) (Reliability, error) {
	return MeasureParallelOpts(build, n, firstPass, MeasureOpts{Workers: workers})
}

// MeasureParallelOpts is MeasureParallel with instrumentation: portal
// replicas are observed with per-worker metric shards and the shared
// tracer before any pass runs.
func MeasureParallelOpts(build Builder, n, firstPass int, o MeasureOpts) (Reliability, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		p, err := build()
		if err != nil {
			return Reliability{}, err
		}
		if o.DisableLinkCache {
			p.World.SetLinkCache(false)
		}
		if o.DisableLinkBatch {
			p.World.SetLinkBatch(false)
		}
		if o.DisableLinkCull {
			p.World.SetLinkCull(false)
		}
		if o.Metrics != nil || o.Tracer != nil {
			p.Observe(o.Metrics.Shard(), o.Tracer)
		}
		return p.Measure(n, firstPass), nil
	}
	portals := make([]*Portal, workers)
	for i := range portals {
		p, err := build()
		if err != nil {
			return Reliability{}, err
		}
		if o.DisableLinkCache {
			p.World.SetLinkCache(false)
		}
		if o.DisableLinkBatch {
			p.World.SetLinkBatch(false)
		}
		if o.DisableLinkCull {
			p.World.SetLinkCull(false)
		}
		if o.Metrics != nil || o.Tracer != nil {
			p.Observe(o.Metrics.Shard(), o.Tracer)
		}
		portals[i] = p
	}
	outcomes := make([]passOutcome, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(p *Portal) {
			defer wg.Done()
			var res PassResult
			for {
				trial := int(next.Add(1)) - 1
				if trial >= n {
					return
				}
				p.runPassInto(firstPass+trial, &res)
				p.recordOutcome(&res, &outcomes[trial])
			}
		}(portals[w])
	}
	wg.Wait()
	return portals[0].aggregate(outcomes), nil
}

// MeanTagReliability averages the per-tag read reliability over tags whose
// names pass the filter (nil matches every tag).
func (r Reliability) MeanTagReliability(filter func(name string) bool) float64 {
	var ps []float64
	for name, pr := range r.PerTag {
		if filter == nil || filter(name) {
			ps = append(ps, pr.Rate())
		}
	}
	return stats.Mean(ps)
}

// MeanCarrierReliability averages the per-carrier tracking reliability
// over carriers whose names pass the filter (nil matches all).
func (r Reliability) MeanCarrierReliability(filter func(name string) bool) float64 {
	var ps []float64
	for name, pr := range r.PerCarrier {
		if filter == nil || filter(name) {
			ps = append(ps, pr.Rate())
		}
	}
	return stats.Mean(ps)
}

// TagNames returns the measured tag names, sorted.
func (r Reliability) TagNames() []string {
	names := make([]string, 0, len(r.PerTag))
	for n := range r.PerTag {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CarrierNames returns the measured carrier names, sorted.
func (r Reliability) CarrierNames() []string {
	names := make([]string, 0, len(r.PerCarrier))
	for n := range r.PerCarrier {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReadSummary summarizes TagsReadPerPass (the Figure 2 / Figure 4 series).
func (r Reliability) ReadSummary() stats.Summary {
	return stats.Summarize(r.TagsReadPerPass)
}
