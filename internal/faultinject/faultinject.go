// Package faultinject makes the reader→tracker service chain testable
// under failure: it injects delays, dropped connections, 5xx responses,
// corrupted XML, and up/down flapping into the AR400-style HTTP interface,
// deterministically from a seed or a scripted plan.
//
// Two injection points cover both halves of the chain:
//
//   - Transport wraps an http.RoundTripper, so a readerapi.Client can be
//     handed a faulty network without any server cooperation;
//   - Middleware wraps an http.Handler, so a readerapi.Server (or
//     cmd/readerd via its -fault flag) can misbehave on the wire exactly
//     like a sick physical reader.
//
// Every decision is a pure function of (plan, request index), never of
// the wall clock, so a test that polls a faulty reader sees the identical
// fault sequence on every run — the property the tracksvc breaker tests
// rely on. The one mutable control is the Kill/Revive switch, which
// overrides the plan with Drop while down: integration tests use it to
// kill a redundant reader mid-run and later bring it back.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rfidtrack/internal/xrand"
)

// Fault is one injected behavior applied to a single request.
type Fault int

const (
	// None passes the request through untouched.
	None Fault = iota
	// Delay stalls the request by the injector's Latency before serving
	// it, honoring the request context — long enough a Latency turns into
	// a client-side timeout.
	Delay
	// Drop severs the exchange with no HTTP response: the client sees a
	// transport error (connection reset / EOF).
	Drop
	// Err5xx answers 503 Service Unavailable without invoking the handler.
	Err5xx
	// Corrupt serves the real response but truncates the body mid-way and
	// flips a byte — well-formed HTTP carrying broken XML.
	Corrupt
)

// String names the fault for specs and logs.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Err5xx:
		return "5xx"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Plan decides the fault for the n-th request (n counts from 1). Decide
// must be a pure function of n so fault sequences replay exactly.
type Plan interface {
	Decide(n uint64) Fault
}

// planFunc adapts a function to a Plan.
type planFunc func(n uint64) Fault

func (f planFunc) Decide(n uint64) Fault { return f(n) }

// NonePlan never faults — the identity plan.
func NonePlan() Plan { return planFunc(func(uint64) Fault { return None }) }

// EveryN applies f to every n-th request (the n-th, 2n-th, ...); other
// requests pass through.
func EveryN(f Fault, n uint64) Plan {
	if n == 0 {
		n = 1
	}
	return planFunc(func(i uint64) Fault {
		if i%n == 0 {
			return f
		}
		return None
	})
}

// Seq replays the given faults once, in order, then passes everything
// through — a scripted failure episode.
func Seq(faults ...Fault) Plan {
	seq := append([]Fault(nil), faults...)
	return planFunc(func(i uint64) Fault {
		if i == 0 || i > uint64(len(seq)) {
			return None
		}
		return seq[i-1]
	})
}

// Flap alternates a healthy phase of `up` requests with a dead phase of
// `down` requests (Drop), repeating — the flapping reader of the breaker
// tests.
func Flap(up, down uint64) Plan {
	if up == 0 && down == 0 {
		return NonePlan()
	}
	period := up + down
	return planFunc(func(i uint64) Fault {
		if (i-1)%period < up {
			return None
		}
		return Drop
	})
}

// Random draws each request's fault independently from the given
// per-fault probabilities (the remainder passes through), keyed by (seed,
// request index) so the sequence is reproducible regardless of timing.
func Random(seed uint64, pDelay, pDrop, p5xx, pCorrupt float64) Plan {
	base := xrand.New(seed)
	return planFunc(func(i uint64) Fault {
		u := base.Key().Str("faultinject").Int(int(i)).Stream().Float64()
		switch {
		case u < pDelay:
			return Delay
		case u < pDelay+pDrop:
			return Drop
		case u < pDelay+pDrop+p5xx:
			return Err5xx
		case u < pDelay+pDrop+p5xx+pCorrupt:
			return Corrupt
		}
		return None
	})
}

// Injector applies a Plan to requests, counting them across both
// injection points. Safe for concurrent use.
type Injector struct {
	plan    Plan
	n       atomic.Uint64
	downed  atomic.Bool
	latency time.Duration
}

// Option configures an Injector.
type Option func(*Injector)

// WithLatency sets the stall applied by Delay faults (default 100ms).
func WithLatency(d time.Duration) Option {
	return func(i *Injector) { i.latency = d }
}

// New builds an injector over plan (nil = NonePlan).
func New(plan Plan, opts ...Option) *Injector {
	if plan == nil {
		plan = NonePlan()
	}
	inj := &Injector{plan: plan, latency: 100 * time.Millisecond}
	for _, o := range opts {
		o(inj)
	}
	return inj
}

// Kill takes the simulated reader down: every request Drops until Revive.
func (inj *Injector) Kill() { inj.downed.Store(true) }

// Revive brings the reader back; the plan resumes deciding.
func (inj *Injector) Revive() { inj.downed.Store(false) }

// Down reports whether the reader is currently killed.
func (inj *Injector) Down() bool { return inj.downed.Load() }

// Requests returns how many requests the injector has decided so far.
func (inj *Injector) Requests() uint64 { return inj.n.Load() }

// next assigns the next request its fault.
func (inj *Injector) next() Fault {
	n := inj.n.Add(1)
	if inj.downed.Load() {
		return Drop
	}
	return inj.plan.Decide(n)
}

// dropErr is the transport-level failure Drop produces client-side.
type dropErr struct{}

func (dropErr) Error() string   { return "faultinject: connection dropped" }
func (dropErr) Timeout() bool   { return false }
func (dropErr) Temporary() bool { return true }

// Transport wraps inner (nil = http.DefaultTransport) with the injector.
func (inj *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return roundTripper{inj: inj, inner: inner}
}

type roundTripper struct {
	inj   *Injector
	inner http.RoundTripper
}

func (rt roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	switch rt.inj.next() {
	case Drop:
		return nil, dropErr{}
	case Err5xx:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("faultinject: unavailable")),
			Request: req,
		}, nil
	case Delay:
		select {
		case <-time.After(rt.inj.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case Corrupt:
		resp, err := rt.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		mangled := mangle(body)
		resp.Body = io.NopCloser(bytes.NewReader(mangled))
		resp.ContentLength = int64(len(mangled))
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return rt.inner.RoundTrip(req)
}

// Middleware wraps next with the injector, server-side.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch inj.next() {
		case Drop:
			// net/http treats ErrAbortHandler as "cut the connection
			// without replying" — the client observes EOF/reset.
			panic(http.ErrAbortHandler)
		case Err5xx:
			http.Error(w, "faultinject: unavailable", http.StatusServiceUnavailable)
			return
		case Delay:
			select {
			case <-time.After(inj.latency):
			case <-r.Context().Done():
				return
			}
		case Corrupt:
			rec := &recorder{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			copyHeader(w.Header(), rec.header)
			w.Header().Del("Content-Length")
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			w.WriteHeader(code)
			w.Write(mangle(rec.body.Bytes()))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// recorder buffers a handler's response so Corrupt can mangle it.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// mangle truncates the body past the midpoint and flips a byte, so XML
// decoding reliably fails while the HTTP exchange itself stays valid.
func mangle(body []byte) []byte {
	if len(body) == 0 {
		return []byte{'<'}
	}
	out := append([]byte(nil), body[:len(body)/2+1]...)
	out[len(out)-1] ^= 0x5a
	return out
}

// Parse builds an injector from a compact spec, for CLI flags:
//
//	none
//	delay:every=3,latency=200ms
//	drop:every=4
//	5xx:every=2
//	corrupt:every=2
//	flap:up=8,down=4
//	random:seed=1,delay=0.1,drop=0.1,5xx=0.1,corrupt=0.1
//
// Omitted parameters default to every=1, latency=100ms, seed=1 and
// probability 0.
func Parse(spec string) (*Injector, error) {
	mode, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	params := map[string]string{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: bad parameter %q in %q", kv, spec)
			}
			params[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getUint := func(key string, def uint64) (uint64, error) {
		s, ok := params[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseUint(s, 10, 64)
	}
	getFloat := func(key string) (float64, error) {
		s, ok := params[key]
		if !ok {
			return 0, nil
		}
		return strconv.ParseFloat(s, 64)
	}

	var opts []Option
	if s, ok := params["latency"]; ok {
		d, err := time.ParseDuration(s)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad latency in %q: %w", spec, err)
		}
		opts = append(opts, WithLatency(d))
	}

	switch mode {
	case "", "none":
		return New(NonePlan(), opts...), nil
	case "delay", "drop", "5xx", "corrupt":
		fault := map[string]Fault{"delay": Delay, "drop": Drop, "5xx": Err5xx, "corrupt": Corrupt}[mode]
		every, err := getUint("every", 1)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad every in %q: %w", spec, err)
		}
		return New(EveryN(fault, every), opts...), nil
	case "flap":
		up, err := getUint("up", 1)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad up in %q: %w", spec, err)
		}
		down, err := getUint("down", 1)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad down in %q: %w", spec, err)
		}
		return New(Flap(up, down), opts...), nil
	case "random":
		seed, err := getUint("seed", 1)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad seed in %q: %w", spec, err)
		}
		var ps [4]float64
		for i, key := range []string{"delay", "drop", "5xx", "corrupt"} {
			if ps[i], err = getFloat(key); err != nil {
				return nil, fmt.Errorf("faultinject: bad %s in %q: %w", key, spec, err)
			}
		}
		return New(Random(seed, ps[0], ps[1], ps[2], ps[3]), opts...), nil
	}
	return nil, fmt.Errorf("faultinject: unknown mode %q (want none|delay|drop|5xx|corrupt|flap|random)", mode)
}
