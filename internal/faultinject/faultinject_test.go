package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/readerapi"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		io.WriteString(w, `<taglist reader="r1" count="0"></taglist>`)
	})
}

func TestPlansAreDeterministic(t *testing.T) {
	plans := map[string]Plan{
		"every3":  EveryN(Drop, 3),
		"flap":    Flap(5, 3),
		"seq":     Seq(Delay, Drop, Err5xx, Corrupt),
		"random":  Random(7, 0.1, 0.2, 0.1, 0.1),
		"random2": Random(7, 0.1, 0.2, 0.1, 0.1),
	}
	for name, p := range plans {
		for n := uint64(1); n <= 50; n++ {
			if a, b := p.Decide(n), p.Decide(n); a != b {
				t.Fatalf("%s: Decide(%d) unstable: %v vs %v", name, n, a, b)
			}
		}
	}
	// Identical seeds give identical sequences.
	for n := uint64(1); n <= 200; n++ {
		if a, b := plans["random"].Decide(n), plans["random2"].Decide(n); a != b {
			t.Fatalf("Random(7) diverged at %d: %v vs %v", n, a, b)
		}
	}
}

func TestFlapSchedule(t *testing.T) {
	p := Flap(2, 1)
	want := []Fault{None, None, Drop, None, None, Drop}
	for i, w := range want {
		if got := p.Decide(uint64(i + 1)); got != w {
			t.Errorf("Flap(2,1).Decide(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestSeqThenClean(t *testing.T) {
	p := Seq(Drop, Err5xx)
	if p.Decide(1) != Drop || p.Decide(2) != Err5xx || p.Decide(3) != None {
		t.Errorf("Seq schedule wrong: %v %v %v", p.Decide(1), p.Decide(2), p.Decide(3))
	}
}

func TestMiddlewareFaults(t *testing.T) {
	ctx := context.Background()

	// 5xx then clean.
	inj := New(Seq(Err5xx))
	srv := httptest.NewServer(inj.Middleware(okHandler()))
	defer srv.Close()
	c := readerapi.NewClient(srv.URL, srv.Client())
	_, err := c.Poll(ctx)
	var re *readerapi.RequestError
	if !errors.As(err, &re) || re.Kind != readerapi.KindServer {
		t.Fatalf("injected 5xx surfaced as %v", err)
	}
	if _, err := c.Poll(ctx); err != nil {
		t.Fatalf("second poll after the 5xx episode: %v", err)
	}

	// Drop: transport-level failure, no HTTP response.
	injDrop := New(Seq(Drop))
	srvDrop := httptest.NewServer(injDrop.Middleware(okHandler()))
	defer srvDrop.Close()
	cDrop := readerapi.NewClient(srvDrop.URL, srvDrop.Client())
	_, err = cDrop.Poll(ctx)
	if !errors.As(err, &re) || re.Kind != readerapi.KindNetwork {
		t.Fatalf("injected drop surfaced as %v", err)
	}
	if _, err := cDrop.Poll(ctx); err != nil {
		t.Fatalf("poll after drop: %v", err)
	}

	// Corrupt: valid HTTP, broken XML.
	injCorrupt := New(Seq(Corrupt))
	srvCorrupt := httptest.NewServer(injCorrupt.Middleware(okHandler()))
	defer srvCorrupt.Close()
	cCorrupt := readerapi.NewClient(srvCorrupt.URL, srvCorrupt.Client())
	_, err = cCorrupt.Poll(ctx)
	if !errors.As(err, &re) || re.Kind != readerapi.KindDecode {
		t.Fatalf("injected corruption surfaced as %v", err)
	}

	// Delay: long enough to trip a short request deadline.
	injDelay := New(Seq(Delay), WithLatency(5*time.Second))
	srvDelay := httptest.NewServer(injDelay.Middleware(okHandler()))
	defer srvDelay.Close()
	cDelay := readerapi.NewClient(srvDelay.URL, srvDelay.Client())
	tctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cDelay.Poll(tctx)
	if !errors.As(err, &re) || re.Kind != readerapi.KindTimeout {
		t.Fatalf("injected delay surfaced as %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("delayed poll was not cut at the deadline (%v elapsed)", time.Since(start))
	}
}

func TestTransportFaults(t *testing.T) {
	ctx := context.Background()
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	inj := New(Seq(Drop, Err5xx, Corrupt))
	hc := &http.Client{Transport: inj.Transport(nil), Timeout: 2 * time.Second}
	c := readerapi.NewClient(srv.URL, hc)

	var re *readerapi.RequestError
	_, err := c.Poll(ctx)
	if !errors.As(err, &re) || re.Kind != readerapi.KindNetwork {
		t.Fatalf("transport drop surfaced as %v", err)
	}
	_, err = c.Poll(ctx)
	if !errors.As(err, &re) || re.Kind != readerapi.KindServer {
		t.Fatalf("transport 5xx surfaced as %v", err)
	}
	_, err = c.Poll(ctx)
	if !errors.As(err, &re) || re.Kind != readerapi.KindDecode {
		t.Fatalf("transport corruption surfaced as %v", err)
	}
	if _, err := c.Poll(ctx); err != nil {
		t.Fatalf("clean poll after the episode: %v", err)
	}
}

func TestKillRevive(t *testing.T) {
	ctx := context.Background()
	inj := New(NonePlan())
	srv := httptest.NewServer(inj.Middleware(okHandler()))
	defer srv.Close()
	c := readerapi.NewClient(srv.URL, srv.Client())

	if _, err := c.Poll(ctx); err != nil {
		t.Fatalf("healthy poll: %v", err)
	}
	inj.Kill()
	if !inj.Down() {
		t.Fatal("Kill did not mark the injector down")
	}
	if _, err := c.Poll(ctx); err == nil {
		t.Fatal("poll against a killed reader succeeded")
	}
	inj.Revive()
	if _, err := c.Poll(ctx); err != nil {
		t.Fatalf("poll after revive: %v", err)
	}
}

func TestParse(t *testing.T) {
	good := []string{
		"none", "", "delay:every=3,latency=200ms", "drop:every=4", "5xx",
		"corrupt:every=2", "flap:up=8,down=4", "random:seed=2,drop=0.5",
	}
	for _, spec := range good {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
	bad := []string{"explode", "flap:up=x", "delay:latency=fast", "random:seed=1,drop=?", "drop:every"}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}

	// A parsed flap injector follows the flap schedule.
	inj, err := Parse("flap:up=1,down=1")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(inj.Middleware(okHandler()))
	defer srv.Close()
	c := readerapi.NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	if _, err := c.Poll(ctx); err != nil {
		t.Fatalf("up request failed: %v", err)
	}
	if _, err := c.Poll(ctx); err == nil {
		t.Fatal("down request succeeded")
	}
	if _, err := c.Poll(ctx); err != nil {
		t.Fatalf("next up request failed: %v", err)
	}
}

func TestMangleBreaksXML(t *testing.T) {
	doc := `<taglist reader="r1" count="1"><tag epc="35000000400000C00000000A"/></taglist>`
	m := mangle([]byte(doc))
	if string(m) == doc {
		t.Fatal("mangle returned the document unchanged")
	}
	if strings.Contains(string(m), "</taglist>") {
		t.Fatal("mangle kept the closing tag; truncation expected")
	}
}
