package estimate

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

func TestFromEmptiesInvertsExpectation(t *testing.T) {
	// Plug the exact expectation back in: z = f·e^(-n/f) must recover n.
	for _, tc := range []struct{ f, n int }{{64, 10}, {128, 50}, {256, 256}, {512, 100}} {
		z := float64(tc.f) * math.Exp(-float64(tc.n)/float64(tc.f))
		got, err := FromEmpties(tc.f, int(math.Round(z)))
		if err != nil {
			t.Fatalf("f=%d n=%d: %v", tc.f, tc.n, err)
		}
		if rel := math.Abs(got-float64(tc.n)) / float64(tc.n); rel > 0.1 {
			t.Errorf("f=%d n=%d: estimate %.1f (%.0f%% off)", tc.f, tc.n, got, rel*100)
		}
	}
}

func TestFromEmptiesEdges(t *testing.T) {
	if _, err := FromEmpties(0, 0); !errors.Is(err, ErrNoSlots) {
		t.Error("zero slots accepted")
	}
	if _, err := FromEmpties(16, -1); err == nil {
		t.Error("negative empties accepted")
	}
	if _, err := FromEmpties(16, 17); err == nil {
		t.Error("empties > slots accepted")
	}
	if _, err := FromEmpties(16, 0); !errors.Is(err, ErrSaturated) {
		t.Error("saturation not reported")
	}
	// Every slot empty: zero tags.
	if n, err := FromEmpties(16, 16); err != nil || n != 0 {
		t.Errorf("all-empty = %v, %v", n, err)
	}
}

func TestFromCollisionsInvertsExpectation(t *testing.T) {
	for _, tc := range []struct{ f, n int }{{64, 20}, {128, 100}, {256, 400}} {
		rho := float64(tc.n) / float64(tc.f)
		c := float64(tc.f) * (1 - (1+rho)*math.Exp(-rho))
		got, err := FromCollisions(tc.f, int(math.Round(c)))
		if err != nil {
			t.Fatalf("f=%d n=%d: %v", tc.f, tc.n, err)
		}
		if rel := math.Abs(got-float64(tc.n)) / float64(tc.n); rel > 0.15 {
			t.Errorf("f=%d n=%d: estimate %.1f (%.0f%% off)", tc.f, tc.n, got, rel*100)
		}
	}
}

func TestFromCollisionsEdges(t *testing.T) {
	if _, err := FromCollisions(0, 0); !errors.Is(err, ErrNoSlots) {
		t.Error("zero slots accepted")
	}
	if n, err := FromCollisions(32, 0); err != nil || n != 0 {
		t.Errorf("no collisions = %v, %v", n, err)
	}
	if _, err := FromCollisions(32, 32); !errors.Is(err, ErrSaturated) {
		t.Error("all-collided not reported as saturated")
	}
	if _, err := FromCollisions(32, 40); err == nil {
		t.Error("collisions > slots accepted")
	}
}

func TestFromSingletons(t *testing.T) {
	// Low load: rho=0.5 -> fraction 0.303.
	f := 128
	singles := int(math.Round(0.5 * math.Exp(-0.5) * float64(f)))
	got, err := FromSingletons(f, singles, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5*float64(f)) > 0.1*float64(f) {
		t.Errorf("low-load estimate = %v, want ~%v", got, 0.5*float64(f))
	}
	// High load: rho=3 -> fraction 0.149; the high branch must be chosen.
	singles = int(math.Round(3 * math.Exp(-3) * float64(f)))
	got, err = FromSingletons(f, singles, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3*float64(f)) > 0.2*3*float64(f) {
		t.Errorf("high-load estimate = %v, want ~%v", got, 3*float64(f))
	}
	// Above-peak observations clamp to the peak.
	if got, err := FromSingletons(100, 50, false); err != nil || got != 100 {
		t.Errorf("above-peak = %v, %v", got, err)
	}
	// Zero singles.
	if got, err := FromSingletons(100, 0, false); err != nil || got != 0 {
		t.Errorf("zero singles low-load = %v, %v", got, err)
	}
	if _, err := FromSingletons(100, 0, true); !errors.Is(err, ErrSaturated) {
		t.Error("zero singles high-load should be saturated")
	}
	if _, err := FromSingletons(0, 0, false); !errors.Is(err, ErrNoSlots) {
		t.Error("zero slots accepted")
	}
}

func TestEstimatorsAgainstRealRounds(t *testing.T) {
	// Monte-Carlo with the actual Gen-2 engine: fixed-Q rounds (so the
	// frame statistics match the framed-ALOHA model) over real tags.
	parent := xrand.New(7)
	for _, n := range []int{8, 24, 60} {
		var estSum float64
		const rounds = 30
		used := 0
		for r := 0; r < rounds; r++ {
			parts := make([]gen2.Participant, n)
			for i := range parts {
				code, err := epc.GID96{Manager: 9, Class: uint64(n), Serial: uint64(r*1000 + i)}.Encode()
				if err != nil {
					t.Fatal(err)
				}
				tag := tagsim.New(code, parent.Split(fmt.Sprintf("t/%d/%d/%d", n, r, i)))
				tag.SetPower(true, 0)
				parts[i] = gen2.Participant{Tag: tag, ForwardOK: true, ReverseOK: true}
			}
			cfg := gen2.DefaultConfig()
			cfg.Adaptive = false
			cfg.InitialQ = 7 // 128-slot frame
			res := gen2.RunRound(cfg, parts, 0)
			// Only the first frame's statistics fit the model; reads shrink
			// the population as the round proceeds, so allow generous error.
			est, err := FromRound(res)
			if err != nil {
				continue
			}
			estSum += est.N
			used++
		}
		if used == 0 {
			t.Fatalf("n=%d: no usable rounds", n)
		}
		mean := estSum / float64(used)
		if rel := math.Abs(mean-float64(n)) / float64(n); rel > 0.35 {
			t.Errorf("n=%d: mean estimate %.1f (%.0f%% off)", n, mean, rel*100)
		}
	}
}

func TestFromRoundBasisSelection(t *testing.T) {
	// Empties available: ZE used.
	e, err := FromRound(gen2.Result{Slots: 64, Empties: 30, Collisions: 10})
	if err != nil || e.Basis != "empties" {
		t.Errorf("basis = %+v, %v", e, err)
	}
	// No empties: falls back to collisions.
	e, err = FromRound(gen2.Result{Slots: 64, Empties: 0, Collisions: 20})
	if err != nil || e.Basis != "collisions" {
		t.Errorf("fallback basis = %+v, %v", e, err)
	}
	if _, err := FromRound(gen2.Result{}); !errors.Is(err, ErrNoSlots) {
		t.Error("empty result accepted")
	}
	if s := e.String(); s == "" {
		t.Error("empty string")
	}
}

func TestFromRoundCountsCRCFailuresAsOccupied(t *testing.T) {
	// A CRC-failed slot held at least one reply: the slot invariant
	// Empties+Singles+Collisions+CRCFailures == Slots counts it as
	// occupied. When the collision-estimator fallback runs it must fold
	// CRC failures in as collision-equivalent load, or the estimate is
	// biased low whenever replies corrupt.
	res := gen2.Result{Slots: 64, Empties: 0, Singles: 14, Collisions: 20, CRCFailures: 30}
	est, err := FromRound(res)
	if err != nil {
		t.Fatal(err)
	}
	if est.Basis != "collisions" {
		t.Fatalf("basis = %q, want collisions fallback", est.Basis)
	}
	want, err := FromCollisions(64, 50) // collisions + CRC-failed slots
	if err != nil {
		t.Fatal(err)
	}
	if est.N != want {
		t.Errorf("estimate = %.2f, want %.2f (CRC slots counted as occupied)", est.N, want)
	}
	low, err := FromCollisions(64, 20) // what ignoring CRCFailures would give
	if err != nil {
		t.Fatal(err)
	}
	if est.N <= low {
		t.Errorf("estimate %.2f not above the CRC-blind value %.2f", est.N, low)
	}
}

func TestFromRoundPropagatesInvalidInput(t *testing.T) {
	// A malformed round (empties > slots) is not saturation; the collision
	// fallback must not mask it.
	_, err := FromRound(gen2.Result{Slots: 64, Empties: 70, Collisions: 10})
	if err == nil {
		t.Fatal("malformed round accepted via collision fallback")
	}
	if errors.Is(err, ErrSaturated) || errors.Is(err, ErrNoSlots) {
		t.Errorf("invalid input surfaced as %v, want a plain validation error", err)
	}
	// Genuine saturation still reaches the fallback, and a saturated
	// fallback still reports ErrSaturated.
	_, err = FromRound(gen2.Result{Slots: 64, Empties: 0, Collisions: 64})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("all-collided round = %v, want ErrSaturated", err)
	}
}

func TestFromSingletonsBoundaries(t *testing.T) {
	// Target at the f(1) peak (1/e ≈ 0.3679): both branches must converge
	// on ρ ≈ 1, i.e. n̂ ≈ slots.
	const slots = 1000
	singles := int(math.Floor(float64(slots) / math.E)) // 367: just under the peak
	low, err := FromSingletons(slots, singles, false)
	if err != nil {
		t.Fatal(err)
	}
	high, err := FromSingletons(slots, singles, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(low-slots) > 0.15*slots || math.Abs(high-slots) > 0.15*slots {
		t.Errorf("peak-target estimates = %.1f (low), %.1f (high), want ~%d", low, high, slots)
	}
	if low > high {
		t.Errorf("low branch %.1f above high branch %.1f at the peak", low, high)
	}
	// Above the theoretical maximum the sample is extreme; both branches
	// report the peak load rather than failing.
	for _, hl := range []bool{false, true} {
		got, err := FromSingletons(slots, singles+2, hl)
		if err != nil || got != slots {
			t.Errorf("above-peak highLoad=%v = %v, %v; want %d, nil", hl, got, err, slots)
		}
	}
	if _, err := FromSingletons(slots, -1, false); err == nil {
		t.Error("negative singles accepted")
	}
	if _, err := FromSingletons(slots, slots+1, false); err == nil {
		t.Error("singles > slots accepted")
	}
}

func TestFromSingletonsRoundTripProperty(t *testing.T) {
	// Round-trip property against the model the estimator inverts: n tags
	// uniformly choosing among f slots (one framed-ALOHA frame) → count
	// slot occupancies → singleton estimate within tolerance, across loads
	// on both sides of the ρ=1 ambiguity. The branch is picked from
	// whether collisions outnumber empties, as a consumer would. (The full
	// Gen-2 engine lets colliding tags re-contend inside the frame, which
	// deliberately departs from the static model; see
	// TestEstimatorsAgainstRealRounds for the engine-level check.)
	rng := xrand.New(11)
	const f = 128
	for _, rho := range []float64{0.25, 0.75, 1.5, 2, 3} {
		n := int(math.Round(rho * f))
		var estSum float64
		used := 0
		const rounds = 40
		occ := make([]int, f)
		for r := 0; r < rounds; r++ {
			draw := rng.Split(fmt.Sprintf("bins/%d/%d", n, r))
			clear(occ)
			for i := 0; i < n; i++ {
				occ[draw.IntN(f)]++
			}
			empties, singles, collisions := 0, 0, 0
			for _, c := range occ {
				switch {
				case c == 0:
					empties++
				case c == 1:
					singles++
				default:
					collisions++
				}
			}
			est, err := FromSingletons(f, singles, collisions > empties)
			if err != nil {
				continue
			}
			estSum += est
			used++
		}
		if used == 0 {
			t.Fatalf("rho=%.2f: no usable rounds", rho)
		}
		mean := estSum / float64(used)
		if rel := math.Abs(mean-float64(n)) / float64(n); rel > 0.35 {
			t.Errorf("rho=%.2f n=%d: mean singleton estimate %.1f (%.0f%% off)", rho, n, mean, rel*100)
		}
	}
}

func TestZeroEstimatorMonotoneProperty(t *testing.T) {
	// Fewer empty slots must never decrease the estimate.
	f := func(a, b uint8) bool {
		slots := 64
		e1 := int(a)%slots + 1
		e2 := int(b)%slots + 1
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		n1, err1 := FromEmpties(slots, e1)
		n2, err2 := FromEmpties(slots, e2)
		return err1 == nil && err2 == nil && n1 >= n2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
