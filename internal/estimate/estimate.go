// Package estimate implements framed-slotted-ALOHA cardinality estimation
// (the fast estimation schemes of Kodialam & Nandagopal, the paper's
// reference [9]): inferring how many tags are present from one inventory
// round's slot statistics — empties, singletons, collisions — without
// singulating everyone. Useful both as a reader-side Q seed and as a
// cheap presence count for portals too busy to read every tag.
package estimate

import (
	"errors"
	"fmt"
	"math"

	"rfidtrack/internal/gen2"
)

// Estimation errors.
var (
	// ErrNoSlots is returned for rounds with no slot observations.
	ErrNoSlots = errors.New("estimate: no slots observed")
	// ErrSaturated is returned when the statistic carries no upper-bound
	// information (e.g. every slot collided).
	ErrSaturated = errors.New("estimate: statistic saturated")
)

// FromEmpties is the zero estimator (ZE): with n tags uniformly choosing
// among f slots, E[empty fraction] = (1-1/f)^n ≈ e^(-n/f), so
// n̂ = -f·ln(z/f).
func FromEmpties(slots, empties int) (float64, error) {
	if slots <= 0 {
		return 0, ErrNoSlots
	}
	if empties < 0 || empties > slots {
		return 0, fmt.Errorf("estimate: %d empties out of %d slots", empties, slots)
	}
	if empties == 0 {
		return 0, fmt.Errorf("%w: no empty slots", ErrSaturated)
	}
	f := float64(slots)
	return -f * math.Log(float64(empties)/f), nil
}

// FromCollisions is the collision estimator (CE): with load ρ = n/f,
// E[collision fraction] = 1 − (1+ρ)e^(−ρ). The expectation is monotone in
// ρ, so it inverts by bisection.
func FromCollisions(slots, collisions int) (float64, error) {
	if slots <= 0 {
		return 0, ErrNoSlots
	}
	if collisions < 0 || collisions > slots {
		return 0, fmt.Errorf("estimate: %d collisions out of %d slots", collisions, slots)
	}
	if collisions == slots {
		return 0, fmt.Errorf("%w: every slot collided", ErrSaturated)
	}
	target := float64(collisions) / float64(slots)
	if target == 0 {
		return 0, nil
	}
	frac := func(rho float64) float64 { return 1 - (1+rho)*math.Exp(-rho) }
	lo, hi := 0.0, 1.0
	for frac(hi) < target {
		hi *= 2
		if hi > 1e6 {
			return 0, fmt.Errorf("%w: collision fraction %.3f not invertible", ErrSaturated, target)
		}
	}
	for i := 0; i < 128; i++ {
		mid := (lo + hi) / 2
		if frac(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2 * float64(slots), nil
}

// FromSingletons inverts E[singleton fraction] = ρ·e^(−ρ). The curve
// peaks at ρ=1 (fraction 1/e), so the observation is ambiguous; pick the
// branch using whether collisions outnumber empties (high load) or not.
func FromSingletons(slots, singles int, highLoad bool) (float64, error) {
	if slots <= 0 {
		return 0, ErrNoSlots
	}
	if singles < 0 || singles > slots {
		return 0, fmt.Errorf("estimate: %d singles out of %d slots", singles, slots)
	}
	target := float64(singles) / float64(slots)
	if target > 1/math.E {
		// Above the theoretical maximum: the sample is extreme; report the
		// peak load.
		return float64(slots), nil
	}
	if target == 0 {
		if highLoad {
			return 0, fmt.Errorf("%w: no singletons under high load", ErrSaturated)
		}
		return 0, nil
	}
	f := func(rho float64) float64 { return rho * math.Exp(-rho) }
	var lo, hi float64
	if highLoad {
		lo, hi = 1, 1
		for f(hi) > target {
			hi *= 2
			if hi > 1e6 {
				return 0, ErrSaturated
			}
		}
		for i := 0; i < 128; i++ {
			mid := (lo + hi) / 2
			if f(mid) > target {
				lo = mid
			} else {
				hi = mid
			}
		}
	} else {
		lo, hi = 0, 1
		for i := 0; i < 128; i++ {
			mid := (lo + hi) / 2
			if f(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	return (lo + hi) / 2 * float64(slots), nil
}

// Estimate is a combined population estimate from one round.
type Estimate struct {
	// N is the estimated tag count.
	N float64
	// Basis names the statistic the estimate used.
	Basis string
}

// FromRound estimates the population that participated in an inventory
// round from its slot statistics, preferring the zero estimator and
// falling back to collisions only when the zero statistic is saturated
// (no slot stayed empty); any other FromEmpties error means the round
// itself is malformed and is propagated, not masked.
//
// A CRC-failed slot held at least one reply — gen2's slot invariant
// counts it in Slots alongside empties/singles/collisions — so for the
// collision estimator it is an occupied, unidentified slot and is folded
// in as collision-equivalent. (The zero estimator already accounts for it
// correctly: a CRC-failed slot is simply not empty.)
func FromRound(res gen2.Result) (Estimate, error) {
	if res.Slots <= 0 {
		return Estimate{}, ErrNoSlots
	}
	n, err := FromEmpties(res.Slots, res.Empties)
	if err == nil {
		return Estimate{N: n, Basis: "empties"}, nil
	}
	if !errors.Is(err, ErrSaturated) {
		return Estimate{}, err
	}
	n, err = FromCollisions(res.Slots, res.Collisions+res.CRCFailures)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{N: n, Basis: "collisions"}, nil
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("~%.1f tags (from %s)", e.N, e.Basis)
}
