// Package readerapi implements the wire interface the paper's software
// used: "Our software sends commands to the reader over its HTTP interface
// and the reader responds with a list of tags in XML format." It provides
// an AR400-style HTTP server wrapping a reader, and a polling client for
// the back-end.
package readerapi

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/reader"
)

// Source is the reader capability the server exposes. *reader.Reader
// satisfies it.
type Source interface {
	Name() string
	Buffer() []reader.Event
	DrainBuffer() []reader.Event
	DistinctEPCs() []epc.Code
}

var _ Source = (*reader.Reader)(nil)

// TagXML is one tag entry in a tag-list response.
type TagXML struct {
	XMLName xml.Name `xml:"tag"`
	EPC     string   `xml:"epc,attr"`
	URI     string   `xml:"uri,attr"`
	Antenna string   `xml:"antenna,attr"`
	Reader  string   `xml:"reader,attr"`
	RSSI    float64  `xml:"rssi,attr"`
	Time    float64  `xml:"time,attr"`
	Pass    int      `xml:"pass,attr"`
}

// TagListXML is the reader's tag-list response document.
type TagListXML struct {
	XMLName xml.Name `xml:"taglist"`
	Reader  string   `xml:"reader,attr"`
	Count   int      `xml:"count,attr"`
	Tags    []TagXML `xml:"tag"`
}

// StatusXML is the reader status document.
type StatusXML struct {
	XMLName  xml.Name `xml:"status"`
	Reader   string   `xml:"reader,attr"`
	Buffered int      `xml:"buffered,attr"`
	Distinct int      `xml:"distinct,attr"`
}

// Server serves the AR400-style API for one reader.
type Server struct {
	mu  sync.Mutex
	src Source
}

// NewServer wraps a reader source.
func NewServer(src Source) *Server { return &Server{src: src} }

// Handler returns the HTTP handler:
//
//	GET  /api/status          reader status
//	GET  /api/taglist         buffered events as an XML tag list
//	POST /api/taglist/purge   drain the buffer, returning what was drained
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /api/taglist", s.handleTagList)
	mux.HandleFunc("POST /api/taglist/purge", s.handlePurge)
	return mux
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	buffered := len(s.src.Buffer())
	distinct := len(s.src.DistinctEPCs())
	name := s.src.Name()
	s.mu.Unlock()
	writeXML(w, StatusXML{Reader: name, Buffered: buffered, Distinct: distinct})
}

func (s *Server) handleTagList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	events := s.src.Buffer()
	name := s.src.Name()
	s.mu.Unlock()
	writeXML(w, toTagList(name, events))
}

func (s *Server) handlePurge(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	events := s.src.DrainBuffer()
	name := s.src.Name()
	s.mu.Unlock()
	writeXML(w, toTagList(name, events))
}

func toTagList(name string, events []reader.Event) TagListXML {
	list := TagListXML{Reader: name, Count: len(events)}
	for _, e := range events {
		list.Tags = append(list.Tags, TagXML{
			EPC:     e.EPC.Hex(),
			URI:     e.EPC.URI(),
			Antenna: e.Antenna,
			Reader:  e.Reader,
			RSSI:    float64(e.RSSI),
			Time:    e.Time,
			Pass:    e.Pass,
		})
	}
	return list
}

func writeXML(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	// Encoding errors after the header is sent can only be logged by the
	// caller's middleware; the encoder itself reports them here.
	_ = enc.Encode(doc)
	_ = enc.Close()
}

// DefaultTimeout bounds a whole client request (dial, write, read) when
// NewClient is handed a nil *http.Client. A reader that stops answering
// must surface as a timeout error, never as a hung poll loop.
const DefaultTimeout = 5 * time.Second

// ErrorKind classifies a client request failure for retry policy.
type ErrorKind int

const (
	// KindNetwork: the transport failed (refused, reset, EOF). Retryable —
	// the reader may be restarting.
	KindNetwork ErrorKind = iota
	// KindTimeout: the request deadline or context expired. Retryable.
	KindTimeout
	// KindCanceled: the caller's context was canceled. Not retryable — the
	// caller is shutting down, not the reader failing.
	KindCanceled
	// KindServer: the reader answered 5xx or 429. Retryable.
	KindServer
	// KindClient: the reader answered another 4xx — a misdirected or
	// malformed request. Fatal: retrying the identical request cannot help.
	KindClient
	// KindDecode: the response body was not the expected XML (truncated or
	// corrupted in flight). Retryable — the next poll re-reads the buffer.
	KindDecode
)

// String names the kind for logs and health reports.
func (k ErrorKind) String() string {
	switch k {
	case KindNetwork:
		return "network"
	case KindTimeout:
		return "timeout"
	case KindCanceled:
		return "canceled"
	case KindServer:
		return "server"
	case KindClient:
		return "client"
	case KindDecode:
		return "decode"
	}
	return "unknown"
}

// RequestError is the typed failure of one client request.
type RequestError struct {
	Kind   ErrorKind
	Op     string // "poll", "get /api/status", ...
	Status int    // HTTP status for KindServer/KindClient, else 0
	Err    error  // underlying cause, nil for pure status errors
}

func (e *RequestError) Error() string {
	msg := fmt.Sprintf("readerapi: %s: %s", e.Op, e.Kind)
	if e.Status != 0 {
		msg += fmt.Sprintf(" (HTTP %d)", e.Status)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *RequestError) Unwrap() error { return e.Err }

// Retryable reports whether the same request may succeed if repeated:
// everything except a definitive 4xx rejection or the caller's own
// cancellation.
func (e *RequestError) Retryable() bool {
	return e.Kind != KindClient && e.Kind != KindCanceled
}

// IsRetryable reports whether err is a retryable request failure. Nil and
// errors that did not come from this client are not retryable.
func IsRetryable(err error) bool {
	var re *RequestError
	return errors.As(err, &re) && re.Retryable()
}

// classify wraps a transport-level error.
func classify(op string, err error) *RequestError {
	kind := KindNetwork
	switch {
	case errors.Is(err, context.Canceled):
		kind = KindCanceled
	case errors.Is(err, context.DeadlineExceeded):
		kind = KindTimeout
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			kind = KindTimeout
		}
	}
	return &RequestError{Kind: kind, Op: op, Err: err}
}

// classifyStatus wraps a non-200 HTTP response.
func classifyStatus(op string, status int) *RequestError {
	kind := KindClient
	if status >= 500 || status == http.StatusTooManyRequests {
		kind = KindServer
	}
	return &RequestError{Kind: kind, Op: op, Status: status}
}

// Client polls a readerapi server.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient installs a private client
// with DefaultTimeout — never http.DefaultClient, whose missing timeout
// turns one stalled reader into a stalled poll loop.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{base: base, http: httpClient}
}

// Base returns the server base URL the client polls.
func (c *Client) Base() string { return c.base }

// Status fetches the reader status.
func (c *Client) Status(ctx context.Context) (StatusXML, error) {
	var out StatusXML
	err := c.do(ctx, http.MethodGet, "/api/status", &out)
	return out, err
}

// TagList fetches the buffered tag list without draining it.
func (c *Client) TagList(ctx context.Context) (TagListXML, error) {
	var out TagListXML
	err := c.do(ctx, http.MethodGet, "/api/taglist", &out)
	return out, err
}

// Poll drains the reader buffer — the paper's software polling loop. The
// context bounds the whole request; canceling it interrupts an in-flight
// poll.
func (c *Client) Poll(ctx context.Context) (TagListXML, error) {
	var out TagListXML
	err := c.do(ctx, http.MethodPost, "/api/taglist/purge", &out)
	return out, err
}

func (c *Client) do(ctx context.Context, method, path string, out any) error {
	op := fmt.Sprintf("%s %s", method, path)
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
	if err != nil {
		return &RequestError{Kind: KindClient, Op: op, Err: err}
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "text/xml")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return classify(op, err)
	}
	defer resp.Body.Close()
	return decodeXML(op, resp, out)
}

func decodeXML(op string, resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		return classifyStatus(op, resp.StatusCode)
	}
	if err := xml.NewDecoder(resp.Body).Decode(out); err != nil {
		// A deadline can also fire mid-body; report it as the timeout it is.
		if re := classify(op, err); re.Kind != KindNetwork {
			return re
		}
		return &RequestError{Kind: KindDecode, Op: op, Err: err}
	}
	return nil
}
