// Package readerapi implements the wire interface the paper's software
// used: "Our software sends commands to the reader over its HTTP interface
// and the reader responds with a list of tags in XML format." It provides
// an AR400-style HTTP server wrapping a reader, and a polling client for
// the back-end.
package readerapi

import (
	"encoding/xml"
	"fmt"
	"net/http"
	"sync"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/reader"
)

// Source is the reader capability the server exposes. *reader.Reader
// satisfies it.
type Source interface {
	Name() string
	Buffer() []reader.Event
	DrainBuffer() []reader.Event
	DistinctEPCs() []epc.Code
}

var _ Source = (*reader.Reader)(nil)

// TagXML is one tag entry in a tag-list response.
type TagXML struct {
	XMLName xml.Name `xml:"tag"`
	EPC     string   `xml:"epc,attr"`
	URI     string   `xml:"uri,attr"`
	Antenna string   `xml:"antenna,attr"`
	Reader  string   `xml:"reader,attr"`
	RSSI    float64  `xml:"rssi,attr"`
	Time    float64  `xml:"time,attr"`
	Pass    int      `xml:"pass,attr"`
}

// TagListXML is the reader's tag-list response document.
type TagListXML struct {
	XMLName xml.Name `xml:"taglist"`
	Reader  string   `xml:"reader,attr"`
	Count   int      `xml:"count,attr"`
	Tags    []TagXML `xml:"tag"`
}

// StatusXML is the reader status document.
type StatusXML struct {
	XMLName  xml.Name `xml:"status"`
	Reader   string   `xml:"reader,attr"`
	Buffered int      `xml:"buffered,attr"`
	Distinct int      `xml:"distinct,attr"`
}

// Server serves the AR400-style API for one reader.
type Server struct {
	mu  sync.Mutex
	src Source
}

// NewServer wraps a reader source.
func NewServer(src Source) *Server { return &Server{src: src} }

// Handler returns the HTTP handler:
//
//	GET  /api/status          reader status
//	GET  /api/taglist         buffered events as an XML tag list
//	POST /api/taglist/purge   drain the buffer, returning what was drained
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /api/taglist", s.handleTagList)
	mux.HandleFunc("POST /api/taglist/purge", s.handlePurge)
	return mux
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	buffered := len(s.src.Buffer())
	distinct := len(s.src.DistinctEPCs())
	name := s.src.Name()
	s.mu.Unlock()
	writeXML(w, StatusXML{Reader: name, Buffered: buffered, Distinct: distinct})
}

func (s *Server) handleTagList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	events := s.src.Buffer()
	name := s.src.Name()
	s.mu.Unlock()
	writeXML(w, toTagList(name, events))
}

func (s *Server) handlePurge(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	events := s.src.DrainBuffer()
	name := s.src.Name()
	s.mu.Unlock()
	writeXML(w, toTagList(name, events))
}

func toTagList(name string, events []reader.Event) TagListXML {
	list := TagListXML{Reader: name, Count: len(events)}
	for _, e := range events {
		list.Tags = append(list.Tags, TagXML{
			EPC:     e.EPC.Hex(),
			URI:     e.EPC.URI(),
			Antenna: e.Antenna,
			Reader:  e.Reader,
			RSSI:    float64(e.RSSI),
			Time:    e.Time,
			Pass:    e.Pass,
		})
	}
	return list
}

func writeXML(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	// Encoding errors after the header is sent can only be logged by the
	// caller's middleware; the encoder itself reports them here.
	_ = enc.Encode(doc)
	_ = enc.Close()
}

// Client polls a readerapi server.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for the default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// Status fetches the reader status.
func (c *Client) Status() (StatusXML, error) {
	var out StatusXML
	err := c.get("/api/status", &out)
	return out, err
}

// TagList fetches the buffered tag list without draining it.
func (c *Client) TagList() (TagListXML, error) {
	var out TagListXML
	err := c.get("/api/taglist", &out)
	return out, err
}

// Poll drains the reader buffer — the paper's software polling loop.
func (c *Client) Poll() (TagListXML, error) {
	resp, err := c.http.Post(c.base+"/api/taglist/purge", "text/xml", nil)
	if err != nil {
		return TagListXML{}, fmt.Errorf("readerapi: poll: %w", err)
	}
	defer resp.Body.Close()
	var out TagListXML
	if err := decodeXML(resp, &out); err != nil {
		return TagListXML{}, err
	}
	return out, nil
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("readerapi: get %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeXML(resp, out)
}

func decodeXML(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readerapi: server returned %s", resp.Status)
	}
	if err := xml.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("readerapi: decoding response: %w", err)
	}
	return nil
}
