package readerapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// liveReader builds a reader over a small static scene and runs one round
// so its buffer is populated.
func liveReader(t *testing.T) *reader.Reader {
	t.Helper()
	w := world.New(rf.DefaultCalibration(), 5)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	for i := 0; i < 3; i++ {
		box := w.AddBox("box"+string(rune('A'+i)),
			geom.StaticPath{Pose: geom.NewPose(geom.V(float64(i)*0.3-0.3, 1, 1), geom.UnitX, geom.UnitZ)},
			geom.V(0.2, 0.2, 0.2), rf.Cardboard, rf.Air, geom.Vec3{})
		c, err := epc.GID96{Manager: 5, Class: 5, Serial: uint64(i)}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		w.AttachTag(box, "tag"+string(rune('A'+i)), c, world.Mount{
			Offset: geom.V(0, -0.1, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.05,
		})
	}
	r, err := reader.New("r1", w, []*world.Antenna{ant})
	if err != nil {
		t.Fatal(err)
	}
	r.RunRound(0, 0, nil)
	return r
}

func TestServerEndToEnd(t *testing.T) {
	r := liveReader(t)
	srv := httptest.NewServer(NewServer(r).Handler())
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	status, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Reader != "r1" || status.Buffered != 3 || status.Distinct != 3 {
		t.Errorf("status = %+v", status)
	}

	list, err := c.TagList(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if list.Count != 3 || len(list.Tags) != 3 {
		t.Fatalf("taglist = %+v", list)
	}
	for _, tag := range list.Tags {
		if tag.Reader != "r1" || tag.Antenna != "a1" {
			t.Errorf("attribution: %+v", tag)
		}
		if !strings.HasPrefix(tag.URI, "urn:epc:id:gid:") {
			t.Errorf("URI = %q", tag.URI)
		}
		if len(tag.EPC) != 24 {
			t.Errorf("EPC hex = %q", tag.EPC)
		}
		if tag.RSSI >= 0 || tag.RSSI < -90 {
			t.Errorf("RSSI = %v", tag.RSSI)
		}
	}

	// TagList does not drain.
	if again, _ := c.TagList(ctx); again.Count != 3 {
		t.Error("TagList drained the buffer")
	}

	// Poll drains: the paper's software poll loop.
	drained, err := c.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if drained.Count != 3 {
		t.Errorf("poll drained %d", drained.Count)
	}
	empty, err := c.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 {
		t.Errorf("second poll returned %d", empty.Count)
	}
}

func TestServerContentTypeAndXMLWellFormed(t *testing.T) {
	r := liveReader(t)
	srv := httptest.NewServer(NewServer(r).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/api/taglist")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/xml") {
		t.Errorf("content type = %q", ct)
	}
	var list TagListXML
	if err := decodeXML("GET /api/taglist", resp, &list); err != nil {
		t.Fatalf("response not well-formed XML: %v", err)
	}
}

func TestServerMethodRouting(t *testing.T) {
	r := liveReader(t)
	srv := httptest.NewServer(NewServer(r).Handler())
	defer srv.Close()

	// Purge requires POST.
	resp, err := srv.Client().Get(srv.URL + "/api/taglist/purge")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET purge = %d, want 405", resp.StatusCode)
	}
	// Unknown path.
	resp, err = srv.Client().Get(srv.URL + "/api/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}
}

func TestClientErrors(t *testing.T) {
	ctx := context.Background()
	// A server that always 500s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Status(ctx); err == nil {
		t.Error("Status on a failing server should error")
	}
	if _, err := c.Poll(ctx); err == nil {
		t.Error("Poll on a failing server should error")
	}
	// Unreachable server.
	dead := NewClient("http://127.0.0.1:1", nil)
	if _, err := dead.TagList(ctx); err == nil {
		t.Error("TagList on a dead server should error")
	}
}

// kindOf extracts the RequestError kind, failing the test otherwise.
func kindOf(t *testing.T, err error) ErrorKind {
	t.Helper()
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *RequestError", err, err)
	}
	return re.Kind
}

func TestClientDefaultTimeoutInstalled(t *testing.T) {
	c := NewClient("http://example.invalid", nil)
	if c.http == http.DefaultClient {
		t.Fatal("nil httpClient fell back to http.DefaultClient")
	}
	if c.http.Timeout != DefaultTimeout {
		t.Fatalf("default client timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
}

func TestClientErrorTaxonomy(t *testing.T) {
	ctx := context.Background()

	status := func(code int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "nope", code)
		}))
	}

	// 5xx: retryable server error.
	s5 := status(http.StatusServiceUnavailable)
	defer s5.Close()
	_, err := NewClient(s5.URL, s5.Client()).Poll(ctx)
	if k := kindOf(t, err); k != KindServer {
		t.Errorf("503 kind = %v, want server", k)
	}
	if !IsRetryable(err) {
		t.Error("503 should be retryable")
	}

	// 4xx: fatal client error.
	s4 := status(http.StatusNotFound)
	defer s4.Close()
	_, err = NewClient(s4.URL, s4.Client()).Poll(ctx)
	if k := kindOf(t, err); k != KindClient {
		t.Errorf("404 kind = %v, want client", k)
	}
	if IsRetryable(err) {
		t.Error("404 should be fatal")
	}

	// Malformed XML: retryable decode error.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("<taglist><tag epc=")) // truncated mid-attribute
	}))
	defer bad.Close()
	_, err = NewClient(bad.URL, bad.Client()).Poll(ctx)
	if k := kindOf(t, err); k != KindDecode {
		t.Errorf("corrupt body kind = %v, want decode", k)
	}
	if !IsRetryable(err) {
		t.Error("decode errors should be retryable")
	}

	// Unreachable server: retryable network error.
	_, err = NewClient("http://127.0.0.1:1", nil).Poll(ctx)
	if k := kindOf(t, err); k != KindNetwork {
		t.Errorf("refused kind = %v, want network", k)
	}

	// Deadline exceeded: retryable timeout.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer slow.Close()
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	_, err = NewClient(slow.URL, slow.Client()).Poll(tctx)
	if k := kindOf(t, err); k != KindTimeout {
		t.Errorf("deadline kind = %v, want timeout", k)
	}
	if !IsRetryable(err) {
		t.Error("timeouts should be retryable")
	}

	// Caller cancellation: not a reader failure, not retryable.
	cctx, cancelNow := context.WithCancel(ctx)
	cancelNow()
	_, err = NewClient(slow.URL, slow.Client()).Poll(cctx)
	if k := kindOf(t, err); k != KindCanceled {
		t.Errorf("canceled kind = %v, want canceled", k)
	}
	if IsRetryable(err) {
		t.Error("cancellation should not be retryable")
	}
}

// TestPollCancellationInterruptsInFlight pins the PollLoop bugfix: a
// canceled context must abort an in-flight request promptly instead of
// waiting out the server.
func TestPollCancellationInterruptsInFlight(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewClient(srv.URL, srv.Client()).Poll(ctx)
	if err == nil {
		t.Fatal("poll against a hung server returned nil after cancel")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to interrupt the poll", elapsed)
	}
}
