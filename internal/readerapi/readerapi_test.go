package readerapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// liveReader builds a reader over a small static scene and runs one round
// so its buffer is populated.
func liveReader(t *testing.T) *reader.Reader {
	t.Helper()
	w := world.New(rf.DefaultCalibration(), 5)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	for i := 0; i < 3; i++ {
		box := w.AddBox("box"+string(rune('A'+i)),
			geom.StaticPath{Pose: geom.NewPose(geom.V(float64(i)*0.3-0.3, 1, 1), geom.UnitX, geom.UnitZ)},
			geom.V(0.2, 0.2, 0.2), rf.Cardboard, rf.Air, geom.Vec3{})
		c, err := epc.GID96{Manager: 5, Class: 5, Serial: uint64(i)}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		w.AttachTag(box, "tag"+string(rune('A'+i)), c, world.Mount{
			Offset: geom.V(0, -0.1, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.05,
		})
	}
	r, err := reader.New("r1", w, []*world.Antenna{ant})
	if err != nil {
		t.Fatal(err)
	}
	r.RunRound(0, 0, nil)
	return r
}

func TestServerEndToEnd(t *testing.T) {
	r := liveReader(t)
	srv := httptest.NewServer(NewServer(r).Handler())
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	status, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.Reader != "r1" || status.Buffered != 3 || status.Distinct != 3 {
		t.Errorf("status = %+v", status)
	}

	list, err := c.TagList()
	if err != nil {
		t.Fatal(err)
	}
	if list.Count != 3 || len(list.Tags) != 3 {
		t.Fatalf("taglist = %+v", list)
	}
	for _, tag := range list.Tags {
		if tag.Reader != "r1" || tag.Antenna != "a1" {
			t.Errorf("attribution: %+v", tag)
		}
		if !strings.HasPrefix(tag.URI, "urn:epc:id:gid:") {
			t.Errorf("URI = %q", tag.URI)
		}
		if len(tag.EPC) != 24 {
			t.Errorf("EPC hex = %q", tag.EPC)
		}
		if tag.RSSI >= 0 || tag.RSSI < -90 {
			t.Errorf("RSSI = %v", tag.RSSI)
		}
	}

	// TagList does not drain.
	if again, _ := c.TagList(); again.Count != 3 {
		t.Error("TagList drained the buffer")
	}

	// Poll drains: the paper's software poll loop.
	drained, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if drained.Count != 3 {
		t.Errorf("poll drained %d", drained.Count)
	}
	empty, err := c.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 {
		t.Errorf("second poll returned %d", empty.Count)
	}
}

func TestServerContentTypeAndXMLWellFormed(t *testing.T) {
	r := liveReader(t)
	srv := httptest.NewServer(NewServer(r).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/api/taglist")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/xml") {
		t.Errorf("content type = %q", ct)
	}
	var list TagListXML
	if err := decodeXML(resp, &list); err != nil {
		t.Fatalf("response not well-formed XML: %v", err)
	}
}

func TestServerMethodRouting(t *testing.T) {
	r := liveReader(t)
	srv := httptest.NewServer(NewServer(r).Handler())
	defer srv.Close()

	// Purge requires POST.
	resp, err := srv.Client().Get(srv.URL + "/api/taglist/purge")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET purge = %d, want 405", resp.StatusCode)
	}
	// Unknown path.
	resp, err = srv.Client().Get(srv.URL + "/api/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}
}

func TestClientErrors(t *testing.T) {
	// A server that always 500s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Status(); err == nil {
		t.Error("Status on a failing server should error")
	}
	if _, err := c.Poll(); err == nil {
		t.Error("Poll on a failing server should error")
	}
	// Unreachable server.
	dead := NewClient("http://127.0.0.1:1", nil)
	if _, err := dead.TagList(); err == nil {
		t.Error("TagList on a dead server should error")
	}
}
