// Package stats provides the sample statistics the paper reports — means,
// upper and lower quartiles — plus confidence-interval helpers used by the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"

	"rfidtrack/internal/xrand"
)

// Summary describes a sample the way the paper's figures do: average with
// lower and upper quartiles, plus the extremes and spread.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Q1     float64 // lower quartile
	Median float64
	Q3     float64 // upper quartile
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample returns the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	std := 0.0
	if len(sorted) > 1 {
		v := (sumSq - n*mean*mean) / (n - 1)
		if v > 0 {
			std = math.Sqrt(v)
		}
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f q1=%.3f med=%.3f q3=%.3f [%.3f, %.3f]",
		s.N, s.Mean, s.Q1, s.Median, s.Q3, s.Min, s.Max)
}

// Quantile returns the q-quantile (q in [0,1]) of an already sorted sample
// using linear interpolation between closest ranks (the "R-7" definition
// used by most statistics packages). An empty sample returns 0; q is
// clamped to [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion is a Bernoulli sample: successes out of trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the observed success rate, or 0 for an empty sample.
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval for the proportion at the given
// z value (1.96 for 95%). The Wilson interval behaves sensibly at the
// extremes (0% and 100% observed), which RFID reliability measurements hit
// constantly.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Rate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// String implements fmt.Stringer.
func (p Proportion) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", p.Successes, p.Trials, 100*p.Rate())
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Bootstrap computes a percentile bootstrap confidence interval for the
// mean of xs: resamples draws with replacement, deterministic under the
// given rng. Returns (lo, hi) at the given confidence in (0,1). Degenerate
// inputs return the sample mean for both ends.
func Bootstrap(xs []float64, resamples int, confidence float64, rng *xrand.Rand) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || resamples < 2 || confidence <= 0 || confidence >= 1 || rng == nil {
		return m, m
	}
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.IntN(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
