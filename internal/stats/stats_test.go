package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rfidtrack/internal/xrand"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almost(s.Mean, 5) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample std of this classic sample is sqrt(32/7).
	if !almost(s.Std, math.Sqrt(32.0/7.0)) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("range = [%v, %v]", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5) {
		t.Errorf("Median = %v", s.Median)
	}
	if !almost(s.Q1, 4) {
		t.Errorf("Q1 = %v", s.Q1)
	}
	if !almost(s.Q3, 5.5) {
		t.Errorf("Q3 = %v", s.Q3)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Q1 != 3 || s.Q3 != 3 {
		t.Errorf("single = %+v", s)
	}
	// Summarize must not mutate its input.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
		{-1, 1}, {2, 5}, // clamped
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almost(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 29, Trials: 100}
	if !almost(p.Rate(), 0.29) {
		t.Errorf("Rate = %v", p.Rate())
	}
	if (Proportion{}).Rate() != 0 {
		t.Error("empty proportion rate should be 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	lo, hi := p.Wilson(1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v, %v] should contain the point estimate", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval [%v, %v] too wide for n=100", lo, hi)
	}
	// Extremes stay in [0, 1] and are non-degenerate.
	lo, hi = Proportion{Successes: 0, Trials: 20}.Wilson(1.96)
	if lo != 0 || hi <= 0 || hi > 1 {
		t.Errorf("0%% interval = [%v, %v]", lo, hi)
	}
	lo, hi = Proportion{Successes: 20, Trials: 20}.Wilson(1.96)
	if hi != 1 || lo >= 1 || lo < 0 {
		t.Errorf("100%% interval = [%v, %v]", lo, hi)
	}
	lo, hi = Proportion{}.Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v], want [0, 1]", lo, hi)
	}
}

func TestWilsonCoversTruthProperty(t *testing.T) {
	// For moderate n, the interval must always contain the observed rate.
	f := func(s uint8, extra uint8) bool {
		trials := int(s)%50 + 1
		successes := int(extra) % (trials + 1)
		p := Proportion{Successes: successes, Trials: trials}
		lo, hi := p.Wilson(1.96)
		r := p.Rate()
		return lo <= r+1e-9 && r <= hi+1e-9 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean broken")
	}
}

func TestBootstrap(t *testing.T) {
	rng := xrand.New(7)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Normal(10, 2)
	}
	lo, hi := Bootstrap(xs, 500, 0.95, xrand.New(8))
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("interval [%v, %v] does not contain the mean %v", lo, hi, m)
	}
	// ~95% CI for n=200, sigma=2: half-width near 2*2/sqrt(200) ~ 0.28.
	if w := hi - lo; w < 0.2 || w > 1.5 {
		t.Errorf("interval width = %v, implausible", w)
	}
	// Deterministic under the same rng seed.
	lo2, hi2 := Bootstrap(xs, 500, 0.95, xrand.New(8))
	if lo2 != lo || hi2 != hi {
		t.Error("bootstrap not deterministic under a fixed seed")
	}
	// Degenerate inputs collapse to the mean.
	if l, h := Bootstrap([]float64{5}, 100, 0.95, xrand.New(1)); l != 5 || h != 5 {
		t.Errorf("single sample = [%v, %v]", l, h)
	}
	if l, h := Bootstrap(xs, 0, 0.95, xrand.New(1)); l != m || h != m {
		t.Errorf("zero resamples = [%v, %v]", l, h)
	}
	if l, h := Bootstrap(xs, 100, 0.95, nil); l != m || h != m {
		t.Errorf("nil rng = [%v, %v]", l, h)
	}
}
