package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/report"
	"rfidtrack/internal/session"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

// Session-merge experiment fixtures. Every frame is fixed-size
// (2^sessionFrameQ slots, no in-round Q adaptation), sized for the
// deployment's rated capacity of sessionCalibrationTags — the reader
// does not know the actual population, so it cannot size frames for it.
// Each tag's reverse link fades for a whole (session, antenna) with
// probability 1−sessionDetectability: the tag still arbitrates and its
// replies occupy slots, but every EPC decode fails CRC — the
// unreliable-identification premise of Jacobsen et al. On top of that,
// any reply corrupts at sessionCorruption. The reader abandons
// CRC-failed tags (gen2.Config.AbandonOnCRC), so each tag occupies at
// most one slot per frame and the frame statistics stay on the
// framed-ALOHA model the estimator assumes. No single session is
// complete, which is the regime where temporal redundancy matters. The
// fixed baseline is calibrated at the rated capacity — what a
// provisioner without an estimator must cover; the observed populations
// are all smaller, which is exactly where estimate-driven stopping wins
// (Jacobsen Tables 3-5).
const (
	sessionMaxSessions     = 32
	sessionCorruption      = 0.10
	sessionDetectability   = 0.75
	sessionTrialsDefault   = 40
	sessionCalibrationTags = 320
	sessionFrameQ          = 10
)

// sessionPolicy is one merge policy under test.
type sessionPolicy struct {
	name    string
	confirm int
}

// sessionOutcome condenses one trial: when the estimate-driven rule
// stopped, whether the merge was actually complete then, and when the
// merge first became complete (ground truth, for the fixed baseline).
// All counts are in reader passes; a pass runs one session per antenna.
type sessionOutcome struct {
	stop            int     // pass the stopping rule fired (or exhausted)
	completeAtStop  bool    // all tags policy-confirmed when it fired
	firstComplete   int     // first pass with all tags confirmed; 0 = never
	estimate        float64 // population estimate at stop
	confidenceAtTop float64 // rule's own confidence at stop
}

// SessionMerge is the temporal-redundancy experiment (Jacobsen et al.,
// arXiv:0904.2441, the trend of Tables 3–5): merging independent
// inventory sessions under an estimate-driven stopping rule reaches a
// target confidence with fewer sessions than fixed worst-case
// provisioning. For each merge policy × population × antenna count, the
// fixed baseline is the session count a provisioner without an estimator
// must commit to — calibrated so the target fraction of trials complete
// at the deployment's rated capacity (sessionCalibrationTags) — while
// the estimate-stopped merge ends each trial as soon as its own
// confidence clears the same target for the population actually present.
func SessionMerge(opt Options) (*Result, error) {
	trials := opt.trials(sessionTrialsDefault)
	confidence := opt.SessionConfidence
	if confidence == 0 {
		confidence = session.DefaultConfidence
	}
	populations := []int{16, 40, 80}
	antennas := []int{1, 2}
	policies := []sessionPolicy{
		{name: "union", confirm: 1},
		{name: "2-of-all", confirm: 2},
	}

	table := report.Table{
		Title: fmt.Sprintf("Session merging — estimate-stopped vs fixed provisioning, in reader passes "+
			"(one session per antenna per pass; target confidence %.0f%%)", 100*confidence),
		Columns: []string{"policy", "tags", "antennas", "fixed passes", "fixed conf",
			"est-stop mean", "est-stop conf", "mean estimate"},
	}
	res := &Result{
		ID:     "sessions",
		Title:  "Temporal redundancy: independent reader sessions with estimate-driven stopping",
		Tables: []report.Table{},
	}

	trendOK := true
	var trendRows, totalRows int
	for _, pol := range policies {
		// Measure every population for this policy first, plus the
		// calibration population: the fixed baseline is the count a
		// deployment without an estimator commits to for its rated
		// worst-case capacity, then applies to whatever population
		// actually shows up.
		outcomes := map[int][]sessionOutcome{}
		for _, n := range append([]int{sessionCalibrationTags}, populations...) {
			for _, ants := range antennas {
				key := n*10 + ants
				outcomes[key] = runSessionTrials(opt, trials, n, ants, pol.confirm, confidence)
			}
		}
		for _, ants := range antennas {
			fixed := fixedSessionBaseline(outcomes[sessionCalibrationTags*10+ants], confidence)
			for _, n := range populations {
				out := outcomes[n*10+ants]
				var stopSum, estSum float64
				completeAtStop, completeAtFixed := 0, 0
				for _, o := range out {
					stopSum += float64(o.stop)
					estSum += o.estimate
					if o.completeAtStop {
						completeAtStop++
					}
					if o.firstComplete > 0 && o.firstComplete <= fixed {
						completeAtFixed++
					}
				}
				meanStop := stopSum / float64(len(out))
				fixedConf := float64(completeAtFixed) / float64(len(out))
				stopConf := float64(completeAtStop) / float64(len(out))
				table.AddRow(
					pol.name,
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", ants),
					fmt.Sprintf("%d", fixed),
					fmt.Sprintf("%.0f%%", 100*fixedConf),
					fmt.Sprintf("%.1f", meanStop),
					fmt.Sprintf("%.0f%%", 100*stopConf),
					fmt.Sprintf("%.1f", estSum/float64(len(out))))
				totalRows++
				if meanStop < float64(fixed) {
					trendRows++
				} else {
					trendOK = false
				}
			}
		}
	}
	res.Tables = append(res.Tables, table)
	if trendOK {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"trend reproduced (Jacobsen Tables 3-5): estimate-stopped merging used fewer sessions than "+
				"fixed worst-case provisioning in %d/%d conditions at equal target confidence",
			trendRows, totalRows))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE DEVIATION: estimate-stopped merging beat the fixed baseline in only %d/%d conditions",
			trendRows, totalRows))
	}
	return res, nil
}

// runSessionTrials measures the condition across opt.Workers workers.
// Each trial is a pure function of (seed, condition, trial index) — the
// per-trial rng root is derived from a label, never from shared mutable
// state — so the outcome slice is bit-identical for any worker count.
func runSessionTrials(opt Options, trials, n, ants, confirm int, confidence float64) []sessionOutcome {
	out := make([]sessionOutcome, trials)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				trial := int(next.Add(1)) - 1
				if trial >= trials {
					return
				}
				out[trial] = runSessionTrial(opt.Seed, trial, n, ants, confirm, confidence)
			}
		}()
	}
	wg.Wait()
	return out
}

// runSessionTrial merges sessions for one trial until exhaustion,
// recording when the estimate-driven rule would stop and when the merge
// actually completed (ground truth the rule cannot see).
func runSessionTrial(seed uint64, trial, n, ants, confirm int, confidence float64) sessionOutcome {
	root := xrand.New(seed + 7000).Split(fmt.Sprintf("sessions/%d/%d/%d/%d", n, ants, confirm, trial))
	m, err := session.NewMerger(session.Config{
		Confirm:     confirm,
		Confidence:  confidence,
		MaxSessions: sessionMaxSessions * ants,
	})
	if err != nil {
		panic(err) // static config; unreachable
	}
	tags := make([]*tagsim.Tag, n)
	for i := range tags {
		code, err := epc.GID96{Manager: 13, Class: uint64(n), Serial: uint64(trial*1000 + i)}.Encode()
		if err != nil {
			panic(err)
		}
		tags[i] = tagsim.New(code, root.Split(fmt.Sprintf("tag/%d", i)))
	}
	parts := make([]gen2.Participant, n)
	var o sessionOutcome
	var d session.Decision
	for s := 1; s <= sessionMaxSessions; s++ {
		// One reader pass: each antenna runs one fixed frame over fresh
		// inventoried flags, and each frame is an independent merge
		// session — exactly the iid identification opportunity the
		// merger's binomial model assumes. The stopping rule is consulted
		// at pass boundaries only: a pass is atomic in a deployment.
		for a := 0; a < ants; a++ {
			det := root.Split(fmt.Sprintf("detect/%d/%d", s, a))
			for i, tag := range tags {
				if a == 0 {
					tag.ResetForPass(s)
				}
				tag.SetPower(true, 0)
				// A tag fades for the whole (session, antenna): its reverse
				// link stays too marginal to decode, so every EPC reply fails
				// CRC. The tag still arbitrates and occupies slots — frame
				// statistics see it (as CRC-failed occupancy), reads never do.
				// This is why FromRound must count CRC slots as occupied: an
				// estimator that ignored them would be blind to exactly the
				// tags temporal redundancy exists to recover.
				var fade float64
				if det.Float64() >= sessionDetectability {
					fade = 1
				}
				parts[i] = gen2.Participant{Tag: tag, ForwardOK: true, ReverseOK: true, ReplyCorruption: fade}
			}
			cfg := gen2.DefaultConfig()
			cfg.Adaptive = false
			cfg.InitialQ = sessionFrameQ
			cfg.ReplyCorruptionProb = sessionCorruption
			cfg.AbandonOnCRC = true
			// Each antenna inventories its own Gen-2 session (standard
			// multi-antenna practice): antenna 0's flag toggles — including
			// abandoned CRC-failed tags — don't rob antenna 1 of its shot at
			// the same tag under an independent fade.
			cfg.Session = tagsim.S2 + tagsim.Session(a%2)
			cfg.Rng = root.Split(fmt.Sprintf("noise/%d/%d", s, a))
			rr := gen2.RunRound(cfg, parts, 0)
			epcs := make([]epc.Code, 0, len(rr.Reads))
			for _, r := range rr.Reads {
				epcs = append(epcs, r.EPC)
			}
			if d, err = m.AddSession(session.Round{Stats: rr, EPCs: epcs}); err != nil {
				panic(err) // engine rounds satisfy the slot invariant
			}
		}
		if o.firstComplete == 0 && d.Confirmed == n {
			o.firstComplete = s
		}
		if o.stop == 0 && d.Stop {
			o.stop = s
			o.completeAtStop = d.Confirmed == n
			o.estimate = d.Estimate
			o.confidenceAtTop = d.Confidence
		}
		if o.stop != 0 && o.firstComplete != 0 {
			break
		}
	}
	if o.stop == 0 {
		// Exhaustion always sets Stop on the last session; defensive.
		o.stop = sessionMaxSessions
	}
	return o
}

// fixedSessionBaseline calibrates the worst-case fixed session count: the
// smallest S for which at least the target fraction of calibration trials
// were complete within S sessions. Trials that never completed push the
// baseline to the exhaustion cap.
func fixedSessionBaseline(calibration []sessionOutcome, confidence float64) int {
	firsts := make([]int, len(calibration))
	for i, o := range calibration {
		if o.firstComplete == 0 {
			firsts[i] = sessionMaxSessions
		} else {
			firsts[i] = o.firstComplete
		}
	}
	sort.Ints(firsts)
	idx := int(math.Ceil(confidence*float64(len(firsts)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(firsts) {
		idx = len(firsts) - 1
	}
	return firsts[idx]
}
