package experiments

import "testing"

// TestWorkersDeterminism is the harness-level spelling of the measurement
// engine's contract: a whole experiment — every table cell derived from
// per-tag, per-carrier, and per-pass aggregates — renders identically for
// any worker-pool size.
func TestWorkersDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			base := Options{Seed: 424242, Trials: 8, Workers: 1}
			want, err := Run(id, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				opt := base
				opt.Workers = workers
				got, err := Run(id, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got.String() != want.String() {
					t.Errorf("workers=%d output differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, want.String(), workers, got.String())
				}
			}
		})
	}
}
