package experiments

import (
	"fmt"

	"rfidtrack/internal/core"
	"rfidtrack/internal/report"
	"rfidtrack/internal/scenario"
)

// fig4Spacings are the inter-tag distances the paper tested, in meters.
var fig4Spacings = []float64{0.0003, 0.004, 0.010, 0.020, 0.040}

// Fig4InterTag reproduces Figure 4 (with the Figure 3 orientations): ten
// parallel tags on a cardboard box carted past the antenna, for five
// inter-tag spacings and six orientations, at least ten passes each. The
// paper finds tags need 20–40 mm spacing and that orientations 1 and 5
// (dipole pointing at the antenna) are far worse than the rest.
func Fig4InterTag(opt Options) (*Result, error) {
	trials := opt.trials(10)
	table := report.Table{
		Title:   "Figure 4 — tags read (of 10) by orientation and inter-tag distance",
		Columns: []string{"orientation", "0.3 mm", "4 mm", "10 mm", "20 mm", "40 mm"},
	}
	quartiles := report.Table{
		Title:   "Figure 4 — lower/upper quartiles",
		Columns: []string{"orientation", "0.3 mm", "4 mm", "10 mm", "20 mm", "40 mm"},
	}
	means := make(map[scenario.Orientation][]float64)
	for o := scenario.Orient1; o <= scenario.Orient6; o++ {
		row := []string{fmt.Sprintf("case %d", o)}
		qrow := []string{fmt.Sprintf("case %d", o)}
		for si, spacing := range fig4Spacings {
			rel, err := opt.measure(func() (*core.Portal, error) {
				return scenario.InterTag(spacing, o, opt.Seed+uint64(o)*100+uint64(si))
			}, trials, 0)
			if err != nil {
				return nil, err
			}
			s := rel.ReadSummary()
			row = append(row, report.Num(s.Mean))
			qrow = append(qrow, fmt.Sprintf("%s/%s", report.Num(s.Q1), report.Num(s.Q3)))
			means[o] = append(means[o], s.Mean)
		}
		table.Rows = append(table.Rows, row)
		quartiles.Rows = append(quartiles.Rows, qrow)
	}
	res := &Result{
		ID:     "fig4",
		Title:  "Inter-tag distance and tag orientation (10 tags on a cart)",
		Tables: []report.Table{table, quartiles},
	}

	// Shape checks: the perpendicular orientations (1 and 5) must be the
	// worst at every spacing, and the good orientations must be near 10/10
	// by 20–40 mm while collapsing at near-contact spacing.
	goodAt40 := minOver(means, []scenario.Orientation{2, 3, 4, 6}, 4)
	badAt40 := maxOver(means, []scenario.Orientation{1, 5}, 4)
	goodAtContact := maxOver(means, []scenario.Orientation{2, 3, 4, 6}, 0)
	switch {
	case goodAt40 < 9:
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE DEVIATION: good orientations read %.1f/10 at 40 mm (paper: ~10)", goodAt40))
	case badAt40 > goodAt40:
		res.Notes = append(res.Notes,
			"SHAPE DEVIATION: perpendicular orientations not worst at 40 mm")
	case goodAtContact > 6:
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE DEVIATION: near-contact spacing still reads %.1f/10 (paper: heavy interference)", goodAtContact))
	default:
		res.Notes = append(res.Notes,
			"shape reproduced: 20–40 mm minimum safe spacing; orientations 1 and 5 (dipole toward antenna) are the unreliable ones")
	}
	return res, nil
}

func minOver(m map[scenario.Orientation][]float64, os []scenario.Orientation, idx int) float64 {
	best := 10.0
	for _, o := range os {
		if v := m[o][idx]; v < best {
			best = v
		}
	}
	return best
}

func maxOver(m map[scenario.Orientation][]float64, os []scenario.Orientation, idx int) float64 {
	worst := 0.0
	for _, o := range os {
		if v := m[o][idx]; v > worst {
			worst = v
		}
	}
	return worst
}
