package experiments

import (
	"fmt"
	"math"

	"rfidtrack/internal/core"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/redundancy"
	"rfidtrack/internal/report"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/scenario"
)

// Ablations exercises the design choices DESIGN.md calls out:
//
//  1. the tag-local/path-local shadowing split (remove it and the paper's
//     antenna-redundancy correlation gap disappears);
//  2. fading temporal coherence (make fading i.i.d. per round and every
//     marginal tag wins a fading lottery during the pass);
//  3. the read-time budget (more tags per box and faster belts exhaust
//     the ~0.02 s/tag budget, the paper's explicit caveat);
//  4. the adaptive Q algorithm vs. fixed-Q rounds.
func Ablations(opt Options) (*Result, error) {
	res := &Result{ID: "ablations", Title: "Design-choice ablations"}

	t1, err := ablateShadowSplit(opt)
	if err != nil {
		return nil, err
	}
	t2, err := ablateCoherence(opt)
	if err != nil {
		return nil, err
	}
	t3, err := ablateReadBudget(opt)
	if err != nil {
		return nil, err
	}
	t4, err := ablateQAlgorithm(opt)
	if err != nil {
		return nil, err
	}
	res.Tables = []report.Table{*t1, *t2, *t3, *t4}
	res.Notes = append(res.Notes,
		"each table removes one modeling ingredient and shows which paper observation breaks without it")
	return res, nil
}

// ablateShadowSplit compares the measured-vs-computed gap for antenna
// redundancy with the calibrated shadowing split against a variant that
// moves all slow-fading variance into the per-path component.
func ablateShadowSplit(opt Options) (*report.Table, error) {
	trials := opt.trials(12)
	table := &report.Table{
		Title:   "Ablation 1 — tag-local shadowing split (2 antennas, side tag)",
		Columns: []string{"variant", "R_M", "R_C", "gap (R_C−R_M)"},
	}
	base := rf.DefaultCalibration()
	variants := []struct {
		label string
		mut   func(*rf.Calibration)
	}{
		{fmt.Sprintf("calibrated split (tag σ=%.1f, path σ=%.1f)", base.SigmaTagDB, base.SigmaPathDB),
			func(*rf.Calibration) {}},
		{fmt.Sprintf("no shared component (tag σ=0, path σ=%.1f)", math.Hypot(base.SigmaTagDB, base.SigmaPathDB)),
			func(c *rf.Calibration) {
				total := math.Hypot(c.SigmaTagDB, c.SigmaPathDB)
				c.SigmaTagDB = 0
				c.SigmaPathDB = total
			}},
	}
	for i, v := range variants {
		cal := rf.DefaultCalibration()
		v.mut(&cal)
		// Singles under this variant.
		pin, err := objectLocationReliability(opt, &cal, scenario.LocSideIn, trials, 900+uint64(i)*10)
		if err != nil {
			return nil, err
		}
		pout, err := objectLocationReliability(opt, &cal, scenario.LocSideOut, trials, 901+uint64(i)*10)
		if err != nil {
			return nil, err
		}
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.ObjectTracking(scenario.ObjectConfig{
				TagLocations: []scenario.BoxLocation{scenario.LocSideIn},
				Antennas:     2, Calibration: &cal, Seed: opt.Seed + 902 + uint64(i)*10,
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		rm := rel.MeanCarrierReliability(nil)
		rc := redundancy.Combined(pin, pout)
		table.AddRow(v.label, report.Percent(rm), report.Percent(rc),
			fmt.Sprintf("%+.0f pts", 100*(rc-rm)))
	}
	return table, nil
}

func objectLocationReliability(opt Options, cal *rf.Calibration, loc scenario.BoxLocation, trials int, seedOff uint64) (float64, error) {
	rel, err := opt.measure(func() (*core.Portal, error) {
		return scenario.ObjectTracking(scenario.ObjectConfig{
			TagLocations: []scenario.BoxLocation{loc},
			Antennas:     1, Calibration: cal, Seed: opt.Seed + seedOff,
		})
	}, trials, 0)
	if err != nil {
		return 0, err
	}
	return rel.MeanTagReliability(nil), nil
}

// ablateCoherence shows what i.i.d. per-round fading does to a marginal
// location: every pass becomes a sequence of independent lotteries and
// the reliability inflates far beyond the paper's measurements.
func ablateCoherence(opt Options) (*report.Table, error) {
	trials := opt.trials(12)
	table := &report.Table{
		Title:   "Ablation 2 — fading temporal coherence (far-side tag)",
		Columns: []string{"variant", "reliability"},
	}
	variants := []struct {
		label string
		mut   func(*rf.Calibration)
	}{
		{"coherent fading (0.35 s blocks)", func(*rf.Calibration) {}},
		{"i.i.d. fading per round", func(c *rf.Calibration) { c.FadingCoherenceSeconds = 0 }},
	}
	for i, v := range variants {
		cal := rf.DefaultCalibration()
		v.mut(&cal)
		p, err := objectLocationReliability(opt, &cal, scenario.LocSideOut, trials, 920+uint64(i))
		if err != nil {
			return nil, err
		}
		table.AddRow(v.label, report.Percent(p))
	}
	return table, nil
}

// ablateReadBudget sweeps belt speed with four tags on every box: the
// pass shrinks while the inventory load grows, exhausting the paper's
// "~0.02 s per tag" budget.
func ablateReadBudget(opt Options) (*report.Table, error) {
	trials := opt.trials(12)
	table := &report.Table{
		Title:   "Ablation 3 — read-time budget (12 boxes × 4 tags, by belt speed)",
		Columns: []string{"belt speed", "pass window", "tracking reliability"},
	}
	for i, speed := range []float64{0.5, 1, 2, 4} {
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.ObjectTracking(scenario.ObjectConfig{
				TagLocations: scenario.BoxLocations(),
				Antennas:     1,
				Speed:        speed,
				Seed:         opt.Seed + 940 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		table.AddRow(
			fmt.Sprintf("%.1f m/s", speed),
			fmt.Sprintf("%.1f s", 5.0/speed),
			report.Percent(rel.MeanCarrierReliability(nil)))
	}
	return table, nil
}

// ablateQAlgorithm compares the adaptive Q controller against fixed-Q
// rounds on a dense population (48 tags).
func ablateQAlgorithm(opt Options) (*report.Table, error) {
	trials := opt.trials(12)
	table := &report.Table{
		Title:   "Ablation 4 — anti-collision strategy (12 boxes × 4 tags)",
		Columns: []string{"strategy", "tracking reliability"},
	}
	strategies := []struct {
		label string
		cfg   func() gen2.Config
	}{
		{"adaptive Q (Gen-2 annex)", func() gen2.Config { return gen2.DefaultConfig() }},
		{"fixed Q=2 (too small: collisions)", func() gen2.Config {
			c := gen2.DefaultConfig()
			c.Adaptive = false
			c.InitialQ = 2
			return c
		}},
		{"fixed Q=8 (too large: idle slots)", func() gen2.Config {
			c := gen2.DefaultConfig()
			c.Adaptive = false
			c.InitialQ = 8
			return c
		}},
	}
	run := func(label string, opts ...reader.Option) error {
		seed := opt.Seed + 960 + uint64(len(table.Rows))
		rel, err := opt.measure(func() (*core.Portal, error) {
			portal, err := scenario.ObjectTracking(scenario.ObjectConfig{
				TagLocations: scenario.BoxLocations(),
				Antennas:     1,
				Seed:         seed,
			})
			if err != nil {
				return nil, err
			}
			// Swap in a reader running the strategy under test. The swap
			// happens inside the builder so every worker replica runs it.
			r, err := reader.New("r1", portal.World, portal.World.Antennas(), opts...)
			if err != nil {
				return nil, err
			}
			portal.Readers = []*reader.Reader{r}
			return portal, nil
		}, trials, 0)
		if err != nil {
			return err
		}
		table.AddRow(label, report.Percent(rel.MeanCarrierReliability(nil)))
		return nil
	}
	for _, s := range strategies {
		if err := run(s.label, reader.WithRoundConfig(s.cfg())); err != nil {
			return nil, err
		}
	}
	// Vogt-style frame sizing (reference [18]): estimate the population
	// from the previous round's slots, set the next frame to match.
	if err := run("frame-adaptive (Vogt, est. from slot stats)", reader.WithFrameAdaptive()); err != nil {
		return nil, err
	}
	return table, nil
}
