package experiments

import (
	"encoding/json"
	"testing"

	"rfidtrack/internal/obs"
)

// TestMetricsMergeDeterminism is the harness-level spelling of the
// observability contract, mirroring TestWorkersDeterminism: an entire
// experiment's merged metric snapshot — counters, histograms, and every
// per-(tag, antenna) opportunity series — is bit-identical for any
// worker-pool size once the nondeterministic wall-time section is
// stripped.
func TestMetricsMergeDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			snapshotWith := func(workers int) string {
				m := obs.NewMetrics()
				opt := Options{Seed: 424242, Trials: 6, Workers: workers, Metrics: m}
				if _, err := Run(id, opt); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				snap := m.Snapshot()
				if snap.Counters["pass.count"] == 0 || len(snap.Opportunities) == 0 {
					t.Fatalf("workers=%d collected no metrics: %+v", workers, snap.Counters)
				}
				buf, err := json.Marshal(snap.Canonical())
				if err != nil {
					t.Fatal(err)
				}
				return string(buf)
			}
			want := snapshotWith(1)
			for _, workers := range []int{2, 8} {
				if got := snapshotWith(workers); got != want {
					t.Errorf("workers=%d metric snapshot differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}
