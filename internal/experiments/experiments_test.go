package experiments

import (
	"strings"
	"testing"
)

// fast are the options used throughout: few trials, fixed seed. The shape
// checks embedded in the runners still operate; the heavyweight assertions
// on actual values live in the integration test for table1/table2.
var fast = Options{Seed: 1, Trials: 6}

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatal("IDs out of sync with Registry")
	}
	for _, want := range []string{"fig2", "fig4", "table1", "table2", "table3", "table4", "table5", "fig5", "fig6", "fig7", "readers", "ablations", "extensions", "throughput"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	// Stable order.
	again := IDs()
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatal("IDs order not stable")
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nonsense", fast); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestOptionsTrials(t *testing.T) {
	if got := (Options{}).trials(12); got != 12 {
		t.Errorf("default trials = %d", got)
	}
	if got := (Options{Trials: 3}).trials(12); got != 3 {
		t.Errorf("override trials = %d", got)
	}
}

// TestOptionsValidate: invalid worker pools and trial overrides must be
// rejected with a clear error instead of silently reinterpreted.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opt     Options
		wantErr string // "" means valid
	}{
		{"zero value", Options{}, ""},
		{"defaults", Options{Seed: 1, Trials: 12, Workers: 4}, ""},
		{"zero workers selects GOMAXPROCS", Options{Workers: 0}, ""},
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"very negative workers", Options{Workers: -64}, "Workers"},
		{"negative trials", Options{Trials: -3}, "Trials"},
		{"both negative reports workers first", Options{Workers: -1, Trials: -1}, "Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.opt)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name %s", err, tc.wantErr)
			}
		})
	}
	// Run enforces validation before dispatch.
	if _, err := Run("fig2", Options{Workers: -2}); err == nil {
		t.Error("Run accepted negative Workers")
	}
	if _, err := Run("fig2", Options{Trials: -2}); err == nil {
		t.Error("Run accepted negative Trials")
	}
}

// TestMeasureRejectsZeroTrials: a zero resolved trial count must error
// out rather than silently measuring nothing.
func TestMeasureRejectsZeroTrials(t *testing.T) {
	_, err := (Options{}).measure(nil, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "trial count") {
		t.Errorf("zero-trial measure error = %v", err)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2ReadRange(Options{Seed: 1, Trials: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 9 {
		t.Fatalf("fig2 rows = %d, want 9 distances", len(res.Tables[0].Rows))
	}
	assertShapeReproduced(t, res)
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4InterTag(Options{Seed: 1, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 6 {
		t.Fatalf("fig4 rows = %d, want 6 orientations", len(res.Tables[0].Rows))
	}
	assertShapeReproduced(t, res)
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1ObjectLocations(Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 4 locations + the 6-face average.
	if len(res.Tables[0].Rows) != 5 {
		t.Fatalf("table1 rows = %d", len(res.Tables[0].Rows))
	}
	assertShapeReproduced(t, res)
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2HumanLocations(Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 4 {
		t.Fatalf("table2 rows = %d", len(res.Tables[0].Rows))
	}
	assertShapeReproduced(t, res)
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3ObjectRedundancy(Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 5 {
		t.Fatalf("table3 rows = %d", len(res.Tables[0].Rows))
	}
}

func TestTable4And5Run(t *testing.T) {
	for _, f := range []Runner{Table4HumanRedundancy1Ant, Table5HumanRedundancy2Ant} {
		res, err := f(fast)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", res.ID)
		}
	}
}

func TestFigs567Run(t *testing.T) {
	for _, f := range []Runner{Fig5ObjectRedundancy, Fig6OneSubject, Fig7TwoSubjects} {
		res, err := f(fast)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tables[0].Rows) < 4 {
			t.Fatalf("%s rows = %d", res.ID, len(res.Tables[0].Rows))
		}
	}
}

func TestReaderRedundancyShape(t *testing.T) {
	res, err := ReaderRedundancy(Options{Seed: 1, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertShapeReproduced(t, res)
}

func TestExtensionsRun(t *testing.T) {
	res, err := Extensions(Options{Seed: 1, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 5 {
		t.Fatalf("extensions tables = %d, want 5", len(res.Tables))
	}
	// Active tags must dominate passive in every row of extension 1.
	for _, row := range res.Tables[0].Rows {
		if len(row) == 3 && row[1] > row[2] && row[2] != "100%" {
			t.Errorf("active (%s) not better than passive (%s) for %s", row[2], row[1], row[0])
		}
	}
}

func TestThroughputShape(t *testing.T) {
	res, err := Throughput(Options{Seed: 1, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 6 {
		t.Fatalf("throughput rows = %d", len(res.Tables[0].Rows))
	}
	assertShapeReproduced(t, res)
}

func TestAblationsRun(t *testing.T) {
	res, err := Ablations(Options{Seed: 1, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 4 {
		t.Fatalf("ablations tables = %d, want 4", len(res.Tables))
	}
}

func TestResultString(t *testing.T) {
	res, err := Fig2ReadRange(Options{Seed: 1, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"== fig2", "Figure 2", "note:"} {
		if !strings.Contains(s, want) {
			t.Errorf("result string missing %q", want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Table1ObjectLocations(Options{Seed: 7, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1ObjectLocations(Options{Seed: 7, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different results")
	}
	c, err := Table1ObjectLocations(Options{Seed: 8, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical results")
	}
}

// assertShapeReproduced fails the test when a runner flagged a shape
// deviation from the paper.
func assertShapeReproduced(t *testing.T, res *Result) {
	t.Helper()
	for _, n := range res.Notes {
		if strings.Contains(n, "SHAPE DEVIATION") {
			t.Errorf("%s: %s", res.ID, n)
		}
	}
}
