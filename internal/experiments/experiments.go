// Package experiments is the reproduction harness: one runner per table
// and figure of the paper (plus the design-choice ablations DESIGN.md
// calls out), each emitting the same rows the paper reports with the
// paper's published value alongside the measured one.
package experiments

import (
	"fmt"
	"maps"
	"sort"

	"rfidtrack/internal/core"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/report"
)

// Options parameterizes a run.
type Options struct {
	// Seed drives every random draw; equal seeds reproduce results
	// bit-for-bit.
	Seed uint64
	// Trials overrides each experiment's paper-default trial count when
	// positive. More trials tighten the estimates beyond what the paper's
	// small samples could. Negative values are rejected by Validate.
	Trials int
	// Workers is the measurement worker-pool size: trials of one condition
	// fan out across this many portal replicas. Zero (the default) selects
	// GOMAXPROCS. Results are bit-identical for every worker count; see
	// core.MeasureParallel. Negative values are rejected by Validate.
	Workers int
	// Metrics, when non-nil, collects engine counters, histograms, and
	// per-(tag, antenna) opportunity outcomes across every measurement of
	// the run. The merged snapshot's deterministic sections are
	// bit-identical for any Workers value (see obs.Snapshot.Canonical).
	Metrics *obs.Metrics
	// Tracer, when non-nil, receives JSONL pass/round (and optionally
	// link) events from every measurement.
	Tracer *obs.Tracer
	// DisableLinkCache turns off the deterministic budget-terms cache in
	// every portal replica (the CLIs' -linkcache=off). Results are
	// bit-identical either way; the switch exists for A/B benchmarking.
	DisableLinkCache bool
	// DisableLinkBatch steers every portal replica back to per-link
	// ResolveLink calls instead of batched grid resolution (the CLIs'
	// -linkbatch=off). Results are bit-identical either way.
	DisableLinkBatch bool
	// DisableLinkCull turns off broad-phase link culling in every portal
	// replica (the CLIs' -linkcull=off). Reads are bit-identical either
	// way.
	DisableLinkCull bool
	// SessionConfidence is the stopping target for the session-merge
	// experiment family (the CLIs' -session-confidence): the estimated
	// probability that no tag remains unconfirmed when the merge stops.
	// Zero selects session.DefaultConfidence. Values outside [0, 1) are
	// rejected by Validate.
	SessionConfidence float64
}

// Validate rejects option values that would otherwise be silently
// reinterpreted: negative worker pools and negative trial overrides.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be >= 0 (0 selects GOMAXPROCS), got %d", o.Workers)
	}
	if o.Trials < 0 {
		return fmt.Errorf("experiments: Trials must be >= 0 (0 selects each experiment's paper default), got %d", o.Trials)
	}
	if o.SessionConfidence < 0 || o.SessionConfidence >= 1 {
		return fmt.Errorf("experiments: SessionConfidence must be in [0, 1) (0 selects the default), got %v", o.SessionConfidence)
	}
	return nil
}

func (o Options) trials(paperDefault int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return paperDefault
}

// measure runs trials passes of the portal the builder constructs through
// the parallel measurement engine, honoring o.Workers and attaching the
// run's instrumentation. A non-positive trial count is an error: a silent
// zero-trial measurement would report empty reliability as if measured.
func (o Options) measure(build core.Builder, trials, firstPass int) (core.Reliability, error) {
	if trials <= 0 {
		return core.Reliability{}, fmt.Errorf("experiments: trial count must be positive, got %d", trials)
	}
	return core.MeasureParallelOpts(build, trials, firstPass, core.MeasureOpts{
		Workers:          o.Workers,
		Metrics:          o.Metrics,
		Tracer:           o.Tracer,
		DisableLinkCache: o.DisableLinkCache,
		DisableLinkBatch: o.DisableLinkBatch,
		DisableLinkCull:  o.DisableLinkCull,
	})
}

// Result is a completed experiment.
type Result struct {
	ID     string
	Title  string
	Tables []report.Table
	Notes  []string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += "\n" + t.String()
	}
	for _, n := range r.Notes {
		out += "\n" + "note: " + n + "\n"
	}
	return out
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// registry is the package-level immutable experiment table, built once at
// init. Lookups read it directly; Registry hands callers a copy so nothing
// outside the package can mutate the shared map.
var registry = map[string]Runner{
	"fig2":       Fig2ReadRange,
	"fig4":       Fig4InterTag,
	"table1":     Table1ObjectLocations,
	"table2":     Table2HumanLocations,
	"table3":     Table3ObjectRedundancy,
	"fig5":       Fig5ObjectRedundancy,
	"table4":     Table4HumanRedundancy1Ant,
	"table5":     Table5HumanRedundancy2Ant,
	"fig6":       Fig6OneSubject,
	"fig7":       Fig7TwoSubjects,
	"readers":    ReaderRedundancy,
	"ablations":  Ablations,
	"extensions": Extensions,
	"throughput": Throughput,
	"sessions":   SessionMerge,
}

// registryIDs is the sorted id list, computed once.
var registryIDs = func() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}()

// Registry returns a copy of the experiment registry keyed by id. Mutating
// the returned map does not affect the package's own table.
func Registry() map[string]Runner {
	return maps.Clone(registry)
}

// IDs returns the registered experiment ids in a stable order.
func IDs() []string {
	return append([]string(nil), registryIDs...)
}

// Run executes one experiment by id.
func Run(id string, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opt)
}

// RunAll executes every experiment in stable id order.
func RunAll(opt Options) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
