package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/estimate"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/landmarc"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/redundancy"
	"rfidtrack/internal/report"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/scenario"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/world"
	"rfidtrack/internal/xrand"
)

// Extensions runs the paper's stated future work and the cited-substrate
// algorithms built on this simulator:
//
//  1. active tags ("future extensions of this work involve experimenting
//     with active tags") on the worst human-tracking cases;
//  2. dual-dipole tag designs ("tag reliability for different tag
//     designs") on the fatal Figure-3 orientations;
//  3. population estimation from slot statistics (reference [9]);
//  4. LANDMARC active-tag localization (reference [11]);
//  5. the placement planner built on the paper's R_C model.
func Extensions(opt Options) (*Result, error) {
	res := &Result{ID: "extensions", Title: "Future-work extensions"}
	t1, err := extActiveTags(opt)
	if err != nil {
		return nil, err
	}
	t2, err := extDualDipole(opt)
	if err != nil {
		return nil, err
	}
	t3, err := extEstimation(opt)
	if err != nil {
		return nil, err
	}
	t4, err := extLandmarc(opt)
	if err != nil {
		return nil, err
	}
	t5, err := extPlanner(opt)
	if err != nil {
		return nil, err
	}
	res.Tables = []report.Table{*t1, *t2, *t3, *t4, *t5}
	return res, nil
}

// extActiveTags re-runs the worst human-tracking cases with battery
// (active) tags in place of passive labels.
func extActiveTags(opt Options) (*report.Table, error) {
	trials := opt.trials(20)
	table := &report.Table{
		Title:   "Extension 1 — passive vs active tags (worst human cases)",
		Columns: []string{"case", "passive", "active"},
	}
	cases := []struct {
		label    string
		subjects int
		loc      scenario.HumanLocation
		who      string
	}{
		{"far-side badge, 1 subject", 1, scenario.HumanSideOut, ""},
		{"farther subject, front badge", 2, scenario.HumanFront, "farther/"},
	}
	for i, c := range cases {
		passive, err := humanCaseReliability(opt, c.subjects, c.loc, c.who, false, trials, 1000+uint64(i)*10)
		if err != nil {
			return nil, err
		}
		active, err := humanCaseReliability(opt, c.subjects, c.loc, c.who, true, trials, 1001+uint64(i)*10)
		if err != nil {
			return nil, err
		}
		table.AddRow(c.label, report.Percent(passive), report.Percent(active))
	}
	return table, nil
}

// humanCaseReliability builds a human-tracking portal and, when active is
// set, swaps every badge for an active tag at the same mount.
func humanCaseReliability(opt Options, subjects int, loc scenario.HumanLocation, who string, active bool, trials int, seedOff uint64) (float64, error) {
	// The active-tag rebuild happens inside the builder so every worker
	// replica carries the same swapped tags.
	rel, err := opt.measure(func() (*core.Portal, error) {
		portal, err := scenario.HumanTracking(scenario.HumanConfig{
			Subjects: subjects, TagLocations: []scenario.HumanLocation{loc},
			Antennas: 1, Seed: opt.Seed + seedOff,
		})
		if err != nil {
			return nil, err
		}
		if active {
			return rebuildWithActiveTags(portal, opt.Seed+seedOff)
		}
		return portal, nil
	}, trials, 0)
	if err != nil {
		return 0, err
	}
	return rel.MeanTagReliability(func(n string) bool {
		return who == "" || strings.HasPrefix(n, who)
	}), nil
}

// rebuildWithActiveTags reconstructs a portal's world with every passive
// tag replaced by an active one at the identical mount.
func rebuildWithActiveTags(p *core.Portal, seed uint64) (*core.Portal, error) {
	w := world.New(p.World.Cal, seed)
	carrierMap := map[world.Carrier]world.Carrier{}
	for _, c := range p.World.Carriers() {
		switch cc := c.(type) {
		case *world.Box:
			carrierMap[c] = w.AddBox(cc.Name(), cc.Path, cc.Size, cc.Surface, cc.Content, cc.ContentSize)
		case *world.Person:
			carrierMap[c] = w.AddPerson(cc.Name(), cc.Path, cc.Height, cc.Radius)
		}
	}
	for _, tag := range p.World.Tags() {
		w.AttachActiveTag(carrierMap[tag.Carrier()], tag.Name, tag.Code, tag.Mount)
	}
	var ants []*world.Antenna
	for _, a := range p.World.Antennas() {
		ants = append(ants, w.AddAntenna(a.Name, a.Pose))
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// extDualDipole re-runs the fatal Figure-3 orientations (dipole pointing
// at the antenna) with dual-dipole tags.
func extDualDipole(opt Options) (*report.Table, error) {
	trials := opt.trials(10)
	table := &report.Table{
		Title:   "Extension 2 — dual-dipole tags on the fatal orientations (tags read of 10, 20 mm spacing)",
		Columns: []string{"orientation", "single dipole", "dual dipole"},
	}
	for _, o := range []scenario.Orientation{scenario.Orient1, scenario.Orient5} {
		sRel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.InterTag(0.020, o, opt.Seed+1100+uint64(o))
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		sMean := sRel.ReadSummary().Mean

		// The dual-dipole mutation happens inside the builder so every
		// worker replica gets the second dipole.
		dRel, err := opt.measure(func() (*core.Portal, error) {
			dual, err := scenario.InterTag(0.020, o, opt.Seed+1100+uint64(o))
			if err != nil {
				return nil, err
			}
			// Give every tag a second, orthogonal dipole in its face plane
			// (through the mutator so the budget-terms cache is invalidated).
			for _, tag := range dual.World.Tags() {
				m := tag.Mount
				m.Axis2 = m.Normal.Cross(m.Axis).Unit()
				dual.World.SetTagMount(tag, m)
			}
			return dual, nil
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		dMean := dRel.ReadSummary().Mean
		table.AddRow(fmt.Sprintf("case %d", o), report.Num(sMean), report.Num(dMean))
	}
	return table, nil
}

// extEstimation compares slot-statistics population estimates against the
// true count across population sizes.
func extEstimation(opt Options) (*report.Table, error) {
	table := &report.Table{
		Title:   "Extension 3 — population estimation from one 128-slot frame",
		Columns: []string{"true tags", "mean estimate", "mean |error|"},
	}
	parent := xrand.New(opt.Seed + 1200)
	for _, n := range []int{8, 32, 96} {
		var sum, errSum float64
		const rounds = 20
		used := 0
		for r := 0; r < rounds; r++ {
			parts := make([]gen2.Participant, n)
			for i := range parts {
				code, err := epc.GID96{Manager: 8, Class: uint64(n), Serial: uint64(r*1000 + i)}.Encode()
				if err != nil {
					return nil, err
				}
				tag := tagsim.New(code, parent.Split(fmt.Sprintf("est/%d/%d/%d", n, r, i)))
				tag.SetPower(true, 0)
				parts[i] = gen2.Participant{Tag: tag, ForwardOK: true, ReverseOK: true}
			}
			cfg := gen2.DefaultConfig()
			cfg.Adaptive = false
			cfg.InitialQ = 7
			res := gen2.RunRound(cfg, parts, 0)
			est, err := estimate.FromRound(res)
			if err != nil {
				continue
			}
			sum += est.N
			if d := est.N - float64(n); d >= 0 {
				errSum += d
			} else {
				errSum -= d
			}
			used++
		}
		if used == 0 {
			table.AddRow(fmt.Sprintf("%d", n), "saturated", "-")
			continue
		}
		table.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", sum/float64(used)),
			fmt.Sprintf("%.1f", errSum/float64(used)))
	}
	return table, nil
}

// extLandmarc measures LANDMARC localization error in a simulated room.
func extLandmarc(opt Options) (*report.Table, error) {
	table := &report.Table{
		Title:   "Extension 4 — LANDMARC localization (6x6 m room, 16 references, 4 antennas)",
		Columns: []string{"k", "median error", "max error"},
	}
	w := world.New(rf.DefaultCalibration(), opt.Seed+1300)
	var ants []*world.Antenna
	corners := []geom.Vec3{{X: 0, Y: 0, Z: 2}, {X: 6, Y: 0, Z: 2}, {X: 0, Y: 6, Z: 2}, {X: 6, Y: 6, Z: 2}}
	for i, c := range corners {
		ants = append(ants, w.AddAntenna(fmt.Sprintf("a%d", i),
			geom.NewPose(c, geom.V(3, 3, 1).Sub(c), geom.UnitZ)))
	}
	attach := func(name string, pos geom.Vec3, class, serial uint64) (*world.Tag, error) {
		mountBox := w.AddBox(name+"-mount",
			geom.StaticPath{Pose: geom.NewPose(pos, geom.UnitX, geom.UnitZ)},
			geom.V(0.05, 0.05, 0.05), rf.Plastic, rf.Air, geom.Vec3{})
		code, err := epc.GID96{Manager: 7, Class: class, Serial: serial}.Encode()
		if err != nil {
			return nil, err
		}
		return w.AttachActiveTag(mountBox, name, code, world.Mount{
			Normal: geom.UnitZ, Axis: geom.UnitX, Axis2: geom.UnitY, Gap: 0.1,
		}), nil
	}
	var refs []*world.Tag
	n := 0
	for gx := 0; gx < 4; gx++ {
		for gy := 0; gy < 4; gy++ {
			tag, err := attach(fmt.Sprintf("ref%02d", n), geom.V(0.75+float64(gx)*1.5, 0.75+float64(gy)*1.5, 1), 1, uint64(n))
			if err != nil {
				return nil, err
			}
			refs = append(refs, tag)
			n++
		}
	}
	targets := []geom.Vec3{
		{X: 1.5, Y: 1.5, Z: 1}, {X: 3, Y: 3, Z: 1}, {X: 4.5, Y: 2.25, Z: 1},
		{X: 2.25, Y: 4.5, Z: 1}, {X: 5, Y: 5, Z: 1},
	}
	var targetTags []*world.Tag
	for i, pos := range targets {
		tag, err := attach(fmt.Sprintf("target%d", i), pos, 2, uint64(i))
		if err != nil {
			return nil, err
		}
		targetTags = append(targetTags, tag)
	}
	for _, k := range []int{1, 4, 8} {
		est, err := landmarc.Survey(w, refs, ants, k, 0, 8)
		if err != nil {
			return nil, err
		}
		var errsM []float64
		for i, tag := range targetTags {
			got, _, err := est.Locate(landmarc.Collect(w, tag, ants, 1+i, 8))
			if err != nil {
				return nil, err
			}
			errsM = append(errsM, got.Dist(targets[i]))
		}
		sort.Float64s(errsM)
		table.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f m", errsM[len(errsM)/2]),
			fmt.Sprintf("%.2f m", errsM[len(errsM)-1]))
	}
	return table, nil
}

// extPlanner demonstrates the placement planner on the paper's Table 1
// singles.
func extPlanner(opt Options) (*report.Table, error) {
	trials := opt.trials(12)
	singles, err := measureObjectSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	pool := []redundancy.Candidate{
		{Name: "front", P: singles[scenario.LocFront], Cost: 1},
		{Name: "back", P: singles[scenario.LocFront], Cost: 1},
		{Name: "side-closer", P: singles[scenario.LocSideIn], Cost: 1},
		{Name: "side-farther", P: singles[scenario.LocSideOut], Cost: 1},
		{Name: "top", P: singles[scenario.LocTop], Cost: 1},
		{Name: "bottom", P: singles[scenario.LocTop], Cost: 1},
	}
	table := &report.Table{
		Title:   "Extension 5 — placement planning from measured singles (unit tag cost)",
		Columns: []string{"target", "plan", "predicted R_C"},
	}
	for _, target := range []float64{0.95, 0.99, 0.999} {
		plan, err := redundancy.PlanPlacement(pool, target, 0)
		if err != nil {
			table.AddRow(report.Percent(target), "unreachable", "-")
			continue
		}
		names := make([]string, len(plan.Chosen))
		for i, c := range plan.Chosen {
			names[i] = c.Name
		}
		sort.Strings(names)
		table.AddRow(report.Percent(target), strings.Join(names, " + "), report.Percent(plan.Reliability))
	}
	return table, nil
}
