package experiments

import (
	"strings"
	"testing"
)

// TestSessionMergeDeterminism: the session-merge experiment — both merge
// policies, every population × antenna condition, and the calibration
// runs behind the fixed baseline — renders identically for any
// worker-pool size. Trial outcomes are pure functions of
// (seed, condition, trial), so the fan-out order cannot leak in.
func TestSessionMergeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("session sweep is slow under -short")
	}
	base := Options{Seed: 424242, Trials: 3, Workers: 1}
	want, err := Run("sessions", base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		opt := base
		opt.Workers = workers
		got, err := Run("sessions", opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Errorf("workers=%d output differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, want.String(), workers, got.String())
		}
	}
}

// TestSessionMergeTrend pins the experiment's headline claim at reduced
// trial count: estimate-driven stopping must beat fixed worst-case
// provisioning in every condition, and the run must say so.
func TestSessionMergeTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("session sweep is slow under -short")
	}
	res, err := Run("sessions", Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "trend reproduced") {
		t.Errorf("session merge did not reproduce the Jacobsen trend:\n%s\n%s", res.String(), joined)
	}
}

// TestSessionConfidenceValidation: the CLI-facing knob rejects values the
// stopping rule cannot honor.
func TestSessionConfidenceValidation(t *testing.T) {
	if err := (Options{SessionConfidence: 1}).Validate(); err == nil {
		t.Error("confidence 1 accepted (the rule could never stop)")
	}
	if err := (Options{SessionConfidence: -0.1}).Validate(); err == nil {
		t.Error("negative confidence accepted")
	}
	if err := (Options{SessionConfidence: 0.95}).Validate(); err != nil {
		t.Errorf("valid confidence rejected: %v", err)
	}
}
