package experiments

import (
	"fmt"

	"rfidtrack/internal/core"
	"rfidtrack/internal/report"
	"rfidtrack/internal/scenario"
)

// Fig2ReadRange reproduces Figure 2: twenty tags in a plane grid facing a
// single antenna, one read per trial, forty trials per distance from 1 m
// to 9 m. The paper reports 100% at 1 m with a gradual decline between
// 2 m and 9 m.
func Fig2ReadRange(opt Options) (*Result, error) {
	trials := opt.trials(40)
	table := report.Table{
		Title:   "Figure 2 — read reliability vs. antenna distance (tags read of 20)",
		Columns: []string{"distance", "mean", "lower quartile", "upper quartile", "reliability"},
	}
	series := make([]float64, 0, 9)
	for d := 1; d <= 9; d++ {
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.ReadRange(float64(d), opt.Seed+uint64(d)*1000)
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		s := rel.ReadSummary()
		table.AddRow(
			fmt.Sprintf("%d m", d),
			report.Num(s.Mean),
			report.Num(s.Q1),
			report.Num(s.Q3),
			report.Percent(s.Mean/20),
		)
		series = append(series, s.Mean/20)
	}
	res := &Result{
		ID:     "fig2",
		Title:  "Read range (20-tag grid, single reads)",
		Tables: []report.Table{table},
	}
	// The paper's shape: saturated at 1 m, monotone-ish gradual decline.
	if series[0] > 0.97 && series[8] < 0.35 {
		res.Notes = append(res.Notes,
			"shape reproduced: ~100% at 1 m declining gradually toward 9 m (paper: 100% at 1 m, gradual drop 2–9 m)")
	} else {
		res.Notes = append(res.Notes,
			fmt.Sprintf("SHAPE DEVIATION: 1 m=%s, 9 m=%s (paper: 100%% at 1 m, near-floor at 9 m)",
				report.Percent(series[0]), report.Percent(series[8])))
	}
	return res, nil
}
