package experiments

import (
	"fmt"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/gen2"
	"rfidtrack/internal/report"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/xrand"
)

// Throughput reproduces the related-work benchmark the paper cites
// ([12], Ramakrishnan & Deavours: "read speed for a population of
// stationary tags"): time to fully inventory a stationary population as
// it grows, with the per-tag cost the paper's Section 4 budget rests on
// ("around .02 sec per tag").
func Throughput(opt Options) (*Result, error) {
	trials := opt.trials(10)
	table := report.Table{
		Title:   "Read throughput — full inventory of a stationary population (adaptive Q)",
		Columns: []string{"tags", "inventory time", "per tag", "slots", "collision slots"},
	}
	parent := xrand.New(opt.Seed + 2000)
	perTag := map[int]float64{}
	for _, n := range []int{1, 5, 10, 20, 40, 80} {
		var totalDur, totalSlots, totalColl float64
		for trial := 0; trial < trials; trial++ {
			parts := make([]gen2.Participant, n)
			for i := range parts {
				code, err := epc.GID96{Manager: 11, Class: uint64(n), Serial: uint64(trial*1000 + i)}.Encode()
				if err != nil {
					return nil, err
				}
				tag := tagsim.New(code, parent.Split(fmt.Sprintf("tp/%d/%d/%d", n, trial, i)))
				tag.SetPower(true, 0)
				parts[i] = gen2.Participant{Tag: tag, ForwardOK: true, ReverseOK: true}
			}
			res := gen2.RunRound(gen2.DefaultConfig(), parts, 0)
			if len(res.Reads) != n {
				return nil, fmt.Errorf("throughput: read %d/%d tags", len(res.Reads), n)
			}
			totalDur += res.Duration
			totalSlots += float64(res.Slots)
			totalColl += float64(res.Collisions)
		}
		meanDur := totalDur / float64(trials)
		perTag[n] = meanDur / float64(n)
		table.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f s", meanDur),
			fmt.Sprintf("%.1f ms", 1000*perTag[n]),
			fmt.Sprintf("%.1f", totalSlots/float64(trials)),
			fmt.Sprintf("%.1f", totalColl/float64(trials)))
	}
	res := &Result{
		ID:     "throughput",
		Title:  "Inventory read speed vs population size",
		Tables: []report.Table{table},
	}
	// The paper's budget anchor: ~0.02 s per tag, roughly flat with
	// population (the adaptive Q keeps collision overhead bounded).
	if perTag[20] >= 0.01 && perTag[20] <= 0.04 && perTag[80] < 2.5*perTag[20] {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"anchor reproduced: ~%.0f ms per tag at 20 tags, staying near-linear to 80 (the paper's '.02 sec per tag' budget)",
			1000*perTag[20]))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE DEVIATION: per-tag cost %.1f ms at 20 tags (want ~20 ms)", 1000*perTag[20]))
	}
	return res, nil
}
