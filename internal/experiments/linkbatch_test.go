package experiments

import "testing"

// TestLinkBatchEquivalence pins the batched grid resolver's guarantee
// (DESIGN.md §13): rendering any experiment with -linkbatch=off — links
// resolved one at a time — at any worker count reproduces the batched
// workers=1 output byte for byte. Same scene coverage as the link-cache
// twin: the static read-range grid (fig2), the moving object cart
// (table1, table3), and the walking subjects (table2).
func TestLinkBatchEquivalence(t *testing.T) {
	for _, id := range []string{"fig2", "table1", "table2", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			base := Options{Seed: 99, Trials: 4, Workers: 1}
			want, err := Run(id, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, off := range []bool{false, true} {
					if workers == 1 && !off {
						continue // the baseline itself
					}
					opt := base
					opt.Workers = workers
					opt.DisableLinkBatch = off
					got, err := Run(id, opt)
					if err != nil {
						t.Fatalf("workers=%d batchOff=%v: %v", workers, off, err)
					}
					if got.String() != want.String() {
						t.Errorf("workers=%d batchOff=%v output differs from batched workers=1:\n--- want ---\n%s\n--- got ---\n%s",
							workers, off, want.String(), got.String())
					}
				}
			}
		})
	}
}
