package experiments

import (
	"fmt"
	"strings"

	"rfidtrack/internal/core"
	"rfidtrack/internal/redundancy"
	"rfidtrack/internal/report"
	"rfidtrack/internal/scenario"
)

// paperTable1 is the paper's Table 1 (read reliability for tags on
// objects).
var paperTable1 = map[scenario.BoxLocation]float64{
	scenario.LocFront:   0.87,
	scenario.LocSideIn:  0.83,
	scenario.LocSideOut: 0.63,
	scenario.LocTop:     0.29,
}

// measureObjectSingles measures the per-location single-tag, single-
// antenna reliabilities of the twelve-box experiment.
func measureObjectSingles(opt Options, trials int) (map[scenario.BoxLocation]float64, error) {
	out := make(map[scenario.BoxLocation]float64, 4)
	for i, loc := range scenario.BoxLocations() {
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.ObjectTracking(scenario.ObjectConfig{
				TagLocations: []scenario.BoxLocation{loc},
				Antennas:     1,
				Seed:         opt.Seed + 10 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		out[loc] = rel.MeanTagReliability(nil)
	}
	return out, nil
}

// Table1ObjectLocations reproduces Table 1: twelve router boxes on a cart,
// one tag per box at each candidate location, twelve passes.
func Table1ObjectLocations(opt Options) (*Result, error) {
	trials := opt.trials(12)
	singles, err := measureObjectSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	table := report.Table{
		Title:   "Table 1 — read reliability for tags on objects",
		Columns: []string{"tag location", "measured", "paper"},
	}
	for _, loc := range scenario.BoxLocations() {
		table.AddRow(string(loc), report.Percent(singles[loc]), report.Percent(paperTable1[loc]))
	}
	// The paper averages over all six faces assuming front≈back and
	// top≈bottom.
	avg := (2*singles[scenario.LocFront] + singles[scenario.LocSideIn] +
		singles[scenario.LocSideOut] + 2*singles[scenario.LocTop]) / 6
	table.AddRow("average (6 faces)", report.Percent(avg), report.Percent(0.63))

	res := &Result{
		ID:     "table1",
		Title:  "Tag location on objects (12 router boxes)",
		Tables: []report.Table{table},
	}
	if singles[scenario.LocTop] < singles[scenario.LocSideOut] &&
		singles[scenario.LocSideOut] < singles[scenario.LocSideIn] &&
		singles[scenario.LocFront] > 0.7 {
		res.Notes = append(res.Notes,
			"shape reproduced: top is catastrophic, far side well below near side, front/near-side good — avoiding the worst location dominates")
	} else {
		res.Notes = append(res.Notes, "SHAPE DEVIATION: location ordering differs from the paper")
	}
	return res, nil
}

// objectRedundancyRow is one Table 3 configuration.
type objectRedundancyRow struct {
	label    string
	antennas int
	tags     []scenario.BoxLocation
	// calc computes R_C from the measured singles.
	calc  func(s map[scenario.BoxLocation]float64) float64
	paper [2]float64 // measured, calculated in the paper
}

// Table3ObjectRedundancy reproduces Table 3: redundancy for object
// tracking — two antennas per portal, two tags per object, and both.
// R_C is computed from this run's measured singles exactly as the paper
// computes it from its Section 3 measurements.
func Table3ObjectRedundancy(opt Options) (*Result, error) {
	trials := opt.trials(12)
	singles, err := measureObjectSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	pf := singles[scenario.LocFront]
	pin := singles[scenario.LocSideIn]
	pout := singles[scenario.LocSideOut]

	rows := []objectRedundancyRow{
		{
			label: "2 antennas, 1 tag: front", antennas: 2,
			tags: []scenario.BoxLocation{scenario.LocFront},
			// The front face offers the same opportunity to both antennas.
			calc:  func(map[scenario.BoxLocation]float64) float64 { return redundancy.Combined(pf, pf) },
			paper: [2]float64{0.92, 0.98},
		},
		{
			label: "2 antennas, 1 tag: side", antennas: 2,
			tags: []scenario.BoxLocation{scenario.LocSideIn},
			// A side tag faces one antenna and is shadowed from the other.
			calc:  func(map[scenario.BoxLocation]float64) float64 { return redundancy.Combined(pin, pout) },
			paper: [2]float64{0.79, 0.94},
		},
		{
			label: "1 antenna, 2 tags: front + side (good)", antennas: 1,
			tags:  []scenario.BoxLocation{scenario.LocFront, scenario.LocSideIn},
			calc:  func(map[scenario.BoxLocation]float64) float64 { return redundancy.Combined(pf, pin) },
			paper: [2]float64{0.97, 0.98},
		},
		{
			label: "1 antenna, 2 tags: front + side (bad)", antennas: 1,
			tags:  []scenario.BoxLocation{scenario.LocFront, scenario.LocSideOut},
			calc:  func(map[scenario.BoxLocation]float64) float64 { return redundancy.Combined(pf, pout) },
			paper: [2]float64{0.96, 0.95},
		},
		{
			label: "2 antennas, 2 tags: front + side", antennas: 2,
			tags: []scenario.BoxLocation{scenario.LocFront, scenario.LocSideIn},
			calc: func(map[scenario.BoxLocation]float64) float64 {
				return redundancy.Combined(pf, pf, pin, pout)
			},
			paper: [2]float64{1.00, 0.999},
		},
	}

	table := report.Table{
		Title:   "Table 3 — redundancy for object tracking",
		Columns: []string{"configuration", "R_M (measured)", "R_C (calculated)", "paper R_M", "paper R_C"},
	}
	measured := make(map[string]float64, len(rows))
	for i, row := range rows {
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.ObjectTracking(scenario.ObjectConfig{
				TagLocations: row.tags,
				Antennas:     row.antennas,
				Seed:         opt.Seed + 100 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		rm := rel.MeanCarrierReliability(nil)
		rc := row.calc(singles)
		measured[row.label] = rm
		table.AddRow(row.label,
			report.Percent(rm), report.Percent(rc),
			report.Percent(row.paper[0]), report.Percent(row.paper[1]))
	}

	res := &Result{
		ID:     "table3",
		Title:  "Object tracking with redundancy",
		Tables: []report.Table{table},
	}
	// The paper's two structural findings: tag-level redundancy tracks the
	// independence model closely, antenna-level redundancy falls short of
	// it (correlated failures through the shared tag).
	antGap := redundancy.Gap(measured["2 antennas, 1 tag: side"], pin, pout)
	tagGap := redundancy.Gap(measured["1 antenna, 2 tags: front + side (good)"], pf, pin)
	if antGap > tagGap && tagGap < 0.08 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"shape reproduced: tag redundancy ≈ independence model (gap %.0f pts) while antenna redundancy underperforms it (gap %.0f pts) — the paper's Table 3 asymmetry",
			100*tagGap, 100*antGap))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"SHAPE DEVIATION: antenna gap %.0f pts vs tag gap %.0f pts (paper: antenna ≫ tag)",
			100*antGap, 100*tagGap))
	}
	return res, nil
}

// Fig5ObjectRedundancy reproduces Figure 5: the measured-vs-calculated
// bars for the four object-tracking configurations.
func Fig5ObjectRedundancy(opt Options) (*Result, error) {
	trials := opt.trials(12)
	singles, err := measureObjectSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	pf := singles[scenario.LocFront]
	pin := singles[scenario.LocSideIn]
	pout := singles[scenario.LocSideOut]
	// The paper's "1 antenna, 1 tag" bar is the average object-tracking
	// reliability over the usable locations (~80% in the paper).
	base := (pf + pin + pout) / 3

	type bar struct {
		label    string
		antennas int
		tags     []scenario.BoxLocation
		rc       float64
	}
	bars := []bar{
		{"1 antenna, 1 tag", 1, []scenario.BoxLocation{scenario.LocFront}, base},
		{"2 antennas, 1 tag", 2, []scenario.BoxLocation{scenario.LocFront},
			(redundancy.Combined(pf, pf) + redundancy.Combined(pin, pout)) / 2},
		{"1 antenna, 2 tags", 1, []scenario.BoxLocation{scenario.LocFront, scenario.LocSideIn},
			(redundancy.Combined(pf, pin) + redundancy.Combined(pf, pout)) / 2},
		{"2 antennas, 2 tags", 2, []scenario.BoxLocation{scenario.LocFront, scenario.LocSideIn},
			redundancy.Combined(pf, pf, pin, pout)},
	}
	table := report.Table{
		Title:   "Figure 5 — object tracking with redundancy (measured vs calculated)",
		Columns: []string{"configuration", "measured", "calculated", "paper measured"},
	}
	paperMeasured := []float64{0.80, 0.86, 0.97, 1.00}
	var ms []float64
	for i, b := range bars {
		var rm float64
		if i == 0 {
			// Average over single-tag locations, like the paper's baseline.
			rm = base
		} else {
			rel, err := opt.measure(func() (*core.Portal, error) {
				return scenario.ObjectTracking(scenario.ObjectConfig{
					TagLocations: b.tags, Antennas: b.antennas, Seed: opt.Seed + 200 + uint64(i),
				})
			}, trials, 0)
			if err != nil {
				return nil, err
			}
			rm = rel.MeanCarrierReliability(nil)
		}
		ms = append(ms, rm)
		table.AddRow(b.label, report.Percent(rm), report.Percent(b.rc), report.Percent(paperMeasured[i]))
	}
	res := &Result{
		ID:     "fig5",
		Title:  "Object tracking with redundancy (bar series)",
		Tables: []report.Table{table},
	}
	if ms[2] > ms[1] && ms[3] >= ms[2] && ms[2]-ms[0] > 0.1 {
		res.Notes = append(res.Notes,
			"shape reproduced: tags-per-object beats antennas-per-portal; two tags lift tracking to near-1 (paper: 80% → 97%)")
	} else {
		res.Notes = append(res.Notes, "SHAPE DEVIATION: redundancy ordering differs from the paper")
	}
	return res, nil
}

// ReaderRedundancy reproduces the paper's Section 4 negative result:
// adding a second reader to the portal without dense-reader mode
// severely reduces reliability (reader-to-reader interference), while
// dense-reader mode (the Gen-2 option the paper's readers lacked)
// restores it.
func ReaderRedundancy(opt Options) (*Result, error) {
	trials := opt.trials(12)
	type cfg struct {
		label string
		oc    scenario.ObjectConfig
	}
	cfgs := []cfg{
		{"1 reader, 1 antenna", scenario.ObjectConfig{Antennas: 1, Readers: 1}},
		{"1 reader, 2 antennas (TDMA)", scenario.ObjectConfig{Antennas: 2, Readers: 1}},
		{"2 readers, no dense mode", scenario.ObjectConfig{Antennas: 2, Readers: 2}},
		{"2 readers, dense mode", scenario.ObjectConfig{Antennas: 2, Readers: 2, DenseMode: true}},
	}
	table := report.Table{
		Title:   "Reader-level redundancy (front tags, 12 boxes)",
		Columns: []string{"configuration", "tracking reliability"},
	}
	vals := make([]float64, len(cfgs))
	for i, c := range cfgs {
		c.oc.TagLocations = []scenario.BoxLocation{scenario.LocFront}
		c.oc.Seed = opt.Seed + 300 + uint64(i)
		oc := c.oc
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.ObjectTracking(oc)
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		vals[i] = rel.MeanCarrierReliability(nil)
		table.AddRow(c.label, report.Percent(vals[i]))
	}
	res := &Result{
		ID:     "readers",
		Title:  "Reader redundancy and dense-reader mode",
		Tables: []report.Table{table},
	}
	if vals[2] < vals[0]*0.6 && vals[3] > vals[2] {
		res.Notes = append(res.Notes, strings.Join([]string{
			"shape reproduced: a second non-dense reader severely reduces reliability",
			"(paper: 'read reliability was severely reduced … reader-to-reader RF interference');",
			"dense-reader mode recovers it",
		}, " "))
	} else {
		res.Notes = append(res.Notes, "SHAPE DEVIATION: reader interference collapse not reproduced")
	}
	return res, nil
}
