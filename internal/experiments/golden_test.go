package experiments

import (
	"math"
	"testing"

	"rfidtrack/internal/scenario"
	"rfidtrack/internal/stats"
	"rfidtrack/internal/xrand"
)

// Golden regression tests: the calibrated simulator's single-opportunity
// reliabilities must stay within bands of the paper's published values.
// These run more trials than the paper did (to suppress sampling noise)
// and are skipped under -short.

// band asserts |got - want| <= tol, in percentage points.
func band(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol/100 {
		t.Errorf("%s = %.0f%%, want %.0f%% ± %.0f pts", name, 100*got, 100*want, tol)
	}
}

func TestGoldenTable1Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("golden calibration check; skipped with -short")
	}
	singles, err := measureObjectSingles(Options{Seed: 12345}, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: front 87, side-closer 83, side-farther 63, top 29.
	band(t, "front", singles[scenario.LocFront], 0.87, 12)
	band(t, "side-closer", singles[scenario.LocSideIn], 0.83, 12)
	band(t, "side-farther", singles[scenario.LocSideOut], 0.63, 15)
	band(t, "top", singles[scenario.LocTop], 0.29, 15)
}

func TestGoldenTable2Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("golden calibration check; skipped with -short")
	}
	s, err := measureHumanSingles(Options{Seed: 54321}, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: F/B 75, side-closer 90, side-farther 10; two-subject farther
	// average 38.
	band(t, "front/back", fb(s.one), 0.75, 15)
	band(t, "side-closer", s.one[scenario.HumanSideIn], 0.90, 12)
	band(t, "side-farther", s.one[scenario.HumanSideOut], 0.10, 12)
	fartherAvg := (2*fb(s.farther) + s.farther[scenario.HumanSideIn] + s.farther[scenario.HumanSideOut]) / 4
	band(t, "two-subject farther avg", fartherAvg, 0.38, 15)
	// The reflection quirk: the closer subject's F/B must not fall below a
	// lone subject's.
	if fb(s.closer) < fb(s.one)-0.08 {
		t.Errorf("closer subject (%.0f%%) fell below lone subject (%.0f%%)",
			100*fb(s.closer), 100*fb(s.one))
	}
}

func TestGoldenReliabilityConfidence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden calibration check; skipped with -short")
	}
	// The bootstrap CI over per-pass read counts for the Fig. 2 grid at
	// 1 m must sit at the top of the scale (the paper's 100% cell).
	portal, err := scenario.ReadRange(1, 777)
	if err != nil {
		t.Fatal(err)
	}
	rel := portal.Measure(40, 0)
	lo, hi := stats.Bootstrap(rel.TagsReadPerPass, 400, 0.95, xrand.New(1))
	if lo < 19 || hi > 20 {
		t.Errorf("1 m read-count CI [%v, %v], want pinned near 20/20", lo, hi)
	}
}
