package experiments

import "testing"

// TestLinkCullEquivalence pins the broad-phase culler's guarantee
// (DESIGN.md §14): rendering any experiment with -linkcull=off — every
// (tag, antenna) pair resolved densely — at any worker count reproduces
// the culled workers=1 output byte for byte. Culling may only skip pairs
// whose conservative upper bound already proves them undetectable, and
// the pass-pure keyed RNG means skipping a pair's draws never shifts any
// other pair's, so the rendered tables cannot move. Same scene coverage
// as the link-cache and link-batch twins: the static read-range grid
// (fig2), the moving object cart (table1, table3), and the walking
// subjects (table2).
func TestLinkCullEquivalence(t *testing.T) {
	for _, id := range []string{"fig2", "table1", "table2", "table3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			base := Options{Seed: 99, Trials: 4, Workers: 1}
			want, err := Run(id, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, off := range []bool{false, true} {
					if workers == 1 && !off {
						continue // the baseline itself
					}
					opt := base
					opt.Workers = workers
					opt.DisableLinkCull = off
					got, err := Run(id, opt)
					if err != nil {
						t.Fatalf("workers=%d cullOff=%v: %v", workers, off, err)
					}
					if got.String() != want.String() {
						t.Errorf("workers=%d cullOff=%v output differs from culled workers=1:\n--- want ---\n%s\n--- got ---\n%s",
							workers, off, want.String(), got.String())
					}
				}
			}
		})
	}
}
