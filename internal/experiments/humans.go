package experiments

import (
	"fmt"
	"strings"

	"rfidtrack/internal/core"
	"rfidtrack/internal/redundancy"
	"rfidtrack/internal/report"
	"rfidtrack/internal/scenario"
)

// humanSingles holds the measured single-opportunity reliabilities for
// human tracking: per location, for a lone subject and for each of two
// parallel subjects.
type humanSingles struct {
	// one[loc]: single-subject reliability.
	one map[scenario.HumanLocation]float64
	// closer[loc], farther[loc]: two-subject reliabilities.
	closer  map[scenario.HumanLocation]float64
	farther map[scenario.HumanLocation]float64
}

// locations used throughout (back mirrors front by symmetry; both are
// measured).
var humanLocs = scenario.HumanLocations()

func measureHumanSingles(opt Options, trials int) (humanSingles, error) {
	s := humanSingles{
		one:     map[scenario.HumanLocation]float64{},
		closer:  map[scenario.HumanLocation]float64{},
		farther: map[scenario.HumanLocation]float64{},
	}
	for i, loc := range humanLocs {
		rel1, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: 1, TagLocations: []scenario.HumanLocation{loc},
				Antennas: 1, Seed: opt.Seed + 400 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return s, err
		}
		s.one[loc] = rel1.MeanTagReliability(nil)

		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: 2, TagLocations: []scenario.HumanLocation{loc},
				Antennas: 1, Seed: opt.Seed + 420 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return s, err
		}
		s.closer[loc] = rel.MeanTagReliability(func(n string) bool { return strings.HasPrefix(n, "closer/") })
		s.farther[loc] = rel.MeanTagReliability(func(n string) bool { return strings.HasPrefix(n, "farther/") })
	}
	return s, nil
}

// fb averages the front and back locations (the paper reports them as one
// "Front / Back" row).
func fb(m map[scenario.HumanLocation]float64) float64 {
	return (m[scenario.HumanFront] + m[scenario.HumanBack]) / 2
}

// Table2HumanLocations reproduces Table 2: read reliability for waist
// badges on one or two walking subjects, per location, twenty passes.
func Table2HumanLocations(opt Options) (*Result, error) {
	trials := opt.trials(20)
	s, err := measureHumanSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	table := report.Table{
		Title: "Table 2 — read reliability for tags on humans",
		Columns: []string{"tag location",
			"one subject", "paper",
			"two: closer", "paper", "two: farther", "paper"},
	}
	paper := map[string][3]float64{
		"front/back":   {0.75, 0.90, 0.50},
		"side-closer":  {0.90, 0.90, 0.50},
		"side-farther": {0.10, 0.30, 0.00},
	}
	rows := []struct {
		label                string
		one, closer, farther float64
	}{
		{"front/back", fb(s.one), fb(s.closer), fb(s.farther)},
		{"side-closer", s.one[scenario.HumanSideIn], s.closer[scenario.HumanSideIn], s.farther[scenario.HumanSideIn]},
		{"side-farther", s.one[scenario.HumanSideOut], s.closer[scenario.HumanSideOut], s.farther[scenario.HumanSideOut]},
	}
	var avgOne, avgCloser, avgFarther float64
	for _, r := range rows {
		p := paper[r.label]
		table.AddRow(r.label,
			report.Percent(r.one), report.Percent(p[0]),
			report.Percent(r.closer), report.Percent(p[1]),
			report.Percent(r.farther), report.Percent(p[2]))
		w := 1.0
		if r.label == "front/back" {
			w = 2 // front and back each count in the paper's 4-location average
		}
		avgOne += w * r.one
		avgCloser += w * r.closer
		avgFarther += w * r.farther
	}
	table.AddRow("average",
		report.Percent(avgOne/4), report.Percent(0.63),
		report.Percent(avgCloser/4), report.Percent(0.75),
		report.Percent(avgFarther/4), report.Percent(0.38))

	res := &Result{
		ID:     "table2",
		Title:  "Tag location on humans (walking subjects)",
		Tables: []report.Table{table},
	}
	reflectionQuirk := fb(s.closer) >= fb(s.one)
	blocked := s.one[scenario.HumanSideOut] < 0.35 && avgFarther/4 < avgOne/4
	switch {
	case !blocked:
		res.Notes = append(res.Notes, "SHAPE DEVIATION: body blocking too weak (far side should be near-dead)")
	case !reflectionQuirk:
		res.Notes = append(res.Notes, "SHAPE DEVIATION: the closer subject's reflection bonus did not reproduce")
	default:
		res.Notes = append(res.Notes, strings.Join([]string{
			"shape reproduced: far-side badge near-dead; a second subject lowers the farther subject",
			"but raises the closer one (reflections off the farther subject, the paper's quirk)",
		}, " "))
	}
	return res, nil
}

// humanRedundancyConfig is one Table 4/5 row.
type humanRedundancyConfig struct {
	label string
	tags  []scenario.HumanLocation
}

func humanRedundancyConfigs(includeSingles bool) []humanRedundancyConfig {
	var out []humanRedundancyConfig
	if includeSingles {
		out = append(out,
			humanRedundancyConfig{"1 tag: front/back", []scenario.HumanLocation{scenario.HumanFront}},
			humanRedundancyConfig{"1 tag: side", []scenario.HumanLocation{scenario.HumanSideIn}},
		)
	}
	out = append(out,
		humanRedundancyConfig{"2 tags: front+back", []scenario.HumanLocation{scenario.HumanFront, scenario.HumanBack}},
		humanRedundancyConfig{"2 tags: sides", []scenario.HumanLocation{scenario.HumanSideIn, scenario.HumanSideOut}},
		humanRedundancyConfig{"4 tags: f/b/sides", humanLocs},
	)
	return out
}

// rcOneAntenna computes R_C for a tag set from per-location singles.
func rcOneAntenna(singles map[scenario.HumanLocation]float64, tags []scenario.HumanLocation) float64 {
	ps := make([]float64, len(tags))
	for i, loc := range tags {
		ps[i] = singles[loc]
	}
	return redundancy.Combined(ps...)
}

// rcTwoAntennas computes R_C with the portal's two facing antennas: each
// tag is one opportunity per antenna, with the roles of the two sides (and
// of closer/farther subjects) swapped for the far antenna.
func rcTwoAntennas(near, far map[scenario.HumanLocation]float64, tags []scenario.HumanLocation) float64 {
	swap := map[scenario.HumanLocation]scenario.HumanLocation{
		scenario.HumanFront:   scenario.HumanFront,
		scenario.HumanBack:    scenario.HumanBack,
		scenario.HumanSideIn:  scenario.HumanSideOut,
		scenario.HumanSideOut: scenario.HumanSideIn,
	}
	var ps []float64
	for _, loc := range tags {
		ps = append(ps, near[loc], far[swap[loc]])
	}
	return redundancy.Combined(ps...)
}

// Table4HumanRedundancy1Ant reproduces Table 4: redundant tags per
// subject with a single antenna, for one and two subjects.
func Table4HumanRedundancy1Ant(opt Options) (*Result, error) {
	trials := opt.trials(20)
	s, err := measureHumanSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	paper := map[string][4]float64{
		// one-subject R_M, R_C; two-subject avg R_M, avg R_C
		"2 tags: front+back": {1.00, 0.94, 0.95, 0.88},
		"2 tags: sides":      {0.93, 0.91, 0.70, 0.72},
		"4 tags: f/b/sides":  {1.00, 0.995, 1.00, 0.94},
	}
	table := report.Table{
		Title: "Table 4 — human tracking with redundant tags, 1 antenna",
		Columns: []string{"configuration",
			"1 subj R_M", "R_C", "paper R_M/R_C",
			"2 subj R_M", "R_C", "paper R_M/R_C"},
	}
	var shapeOK = true
	for i, cfg := range humanRedundancyConfigs(false) {
		rel1, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: 1, TagLocations: cfg.tags, Antennas: 1, Seed: opt.Seed + 500 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		rm1 := rel1.MeanCarrierReliability(nil)
		rc1 := rcOneAntenna(s.one, cfg.tags)

		rel2, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: 2, TagLocations: cfg.tags, Antennas: 1, Seed: opt.Seed + 520 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		rm2 := rel2.MeanCarrierReliability(nil)
		rc2 := (rcOneAntenna(s.closer, cfg.tags) + rcOneAntenna(s.farther, cfg.tags)) / 2

		pp := paper[cfg.label]
		table.AddRow(cfg.label,
			report.Percent(rm1), report.Percent(rc1),
			report.Percent(pp[0])+"/"+report.Percent(pp[1]),
			report.Percent(rm2), report.Percent(rc2),
			report.Percent(pp[2])+"/"+report.Percent(pp[3]))
		if rm1 < rcOneAntenna(s.one, cfg.tags)-0.15 {
			shapeOK = false
		}
	}
	res := &Result{
		ID:     "table4",
		Title:  "Human tracking with redundant tags (1 antenna)",
		Tables: []report.Table{table},
	}
	if shapeOK {
		res.Notes = append(res.Notes,
			"shape reproduced: tag-level redundancy tracks the independence model; four tags reach ≈100% even for two subjects")
	} else {
		res.Notes = append(res.Notes, "SHAPE DEVIATION: measured redundancy falls well short of the model")
	}
	return res, nil
}

// Table5HumanRedundancy2Ant reproduces Table 5: one to four tags per
// subject with two facing antennas.
func Table5HumanRedundancy2Ant(opt Options) (*Result, error) {
	trials := opt.trials(20)
	s, err := measureHumanSingles(opt, trials)
	if err != nil {
		return nil, err
	}
	paper := map[string][4]float64{
		"1 tag: front/back":  {0.80, 0.94, 0.90, 0.95},
		"1 tag: side":        {0.90, 0.91, 0.80, 0.78},
		"2 tags: front+back": {1.00, 0.996, 1.00, 0.998},
		"2 tags: sides":      {1.00, 0.992, 0.95, 0.97},
		"4 tags: f/b/sides":  {1.00, 1.00, 1.00, 0.999},
	}
	table := report.Table{
		Title: "Table 5 — human tracking, 2 antennas",
		Columns: []string{"configuration",
			"1 subj R_M", "R_C", "paper R_M/R_C",
			"2 subj R_M", "R_C", "paper R_M/R_C"},
	}
	for i, cfg := range humanRedundancyConfigs(true) {
		rel1, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: 1, TagLocations: cfg.tags, Antennas: 2, Seed: opt.Seed + 600 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		rm1 := rel1.MeanCarrierReliability(nil)
		// A lone subject sits between the facing antennas: both see it with
		// single-subject reliabilities, sides swapped for the far antenna.
		rc1 := rcTwoAntennas(s.one, s.one, cfg.tags)

		rel2, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: 2, TagLocations: cfg.tags, Antennas: 2, Seed: opt.Seed + 620 + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, err
		}
		rm2 := rel2.MeanCarrierReliability(nil)
		// With two subjects, whoever is closer to one antenna is farther
		// from the other: each subject combines closer- and farther-role
		// opportunities (this is what makes the paper's two-subject
		// two-antenna numbers high).
		rc2 := (rcTwoAntennas(s.closer, s.farther, cfg.tags) +
			rcTwoAntennas(s.farther, s.closer, cfg.tags)) / 2

		pp := paper[cfg.label]
		table.AddRow(cfg.label,
			report.Percent(rm1), report.Percent(rc1),
			report.Percent(pp[0])+"/"+report.Percent(pp[1]),
			report.Percent(rm2), report.Percent(rc2),
			report.Percent(pp[2])+"/"+report.Percent(pp[3]))
	}
	res := &Result{
		ID:     "table5",
		Title:  "Human tracking with redundant tags (2 antennas)",
		Tables: []report.Table{table},
	}
	res.Notes = append(res.Notes,
		"two tags + two antennas reach ≈100% — the paper's 'simple reliability techniques … can significantly improve RFID system reliability to near 100%'")
	return res, nil
}

// figBars runs the six redundancy configurations the Figure 6/7 bar
// charts compare: {1,2,4} tags × {1,2} antennas.
func figBars(opt Options, subjects, trials int, seedBase uint64) (*report.Table, []float64, error) {
	s, err := measureHumanSingles(opt, trials)
	if err != nil {
		return nil, nil, err
	}
	type bar struct {
		label    string
		tags     []scenario.HumanLocation
		antennas int
	}
	bars := []bar{
		{"1 tag, 1 antenna", []scenario.HumanLocation{scenario.HumanFront}, 1},
		{"1 tag, 2 antennas", []scenario.HumanLocation{scenario.HumanFront}, 2},
		{"2 tags, 1 antenna", []scenario.HumanLocation{scenario.HumanFront, scenario.HumanBack}, 1},
		{"2 tags, 2 antennas", []scenario.HumanLocation{scenario.HumanFront, scenario.HumanBack}, 2},
		{"4 tags, 1 antenna", humanLocs, 1},
		{"4 tags, 2 antennas", humanLocs, 2},
	}
	table := &report.Table{
		Columns: []string{"configuration", "measured", "calculated"},
	}
	var measured []float64
	for i, b := range bars {
		rel, err := opt.measure(func() (*core.Portal, error) {
			return scenario.HumanTracking(scenario.HumanConfig{
				Subjects: subjects, TagLocations: b.tags, Antennas: b.antennas,
				Seed: seedBase + uint64(i),
			})
		}, trials, 0)
		if err != nil {
			return nil, nil, err
		}
		rm := rel.MeanCarrierReliability(nil)
		var rc float64
		switch {
		case subjects == 1 && b.antennas == 1:
			rc = rcOneAntenna(s.one, b.tags)
		case subjects == 1 && b.antennas == 2:
			rc = rcTwoAntennas(s.one, s.one, b.tags)
		case subjects == 2 && b.antennas == 1:
			rc = (rcOneAntenna(s.closer, b.tags) + rcOneAntenna(s.farther, b.tags)) / 2
		default:
			rc = (rcTwoAntennas(s.closer, s.farther, b.tags) +
				rcTwoAntennas(s.farther, s.closer, b.tags)) / 2
		}
		measured = append(measured, rm)
		table.AddRow(b.label, report.Percent(rm), report.Percent(rc))
	}
	return table, measured, nil
}

// Fig6OneSubject reproduces Figure 6: tracking reliability of one subject
// across the redundancy configurations.
func Fig6OneSubject(opt Options) (*Result, error) {
	trials := opt.trials(20)
	table, ms, err := figBars(opt, 1, trials, opt.Seed+700)
	if err != nil {
		return nil, err
	}
	table.Title = "Figure 6 — tracking of one subject (measured vs calculated)"
	res := &Result{ID: "fig6", Title: "Human tracking redundancy, one subject", Tables: []report.Table{*table}}
	res.Notes = append(res.Notes, figShapeNote(ms))
	return res, nil
}

// Fig7TwoSubjects reproduces Figure 7: tracking reliability with two
// subjects walking in parallel.
func Fig7TwoSubjects(opt Options) (*Result, error) {
	trials := opt.trials(20)
	table, ms, err := figBars(opt, 2, trials, opt.Seed+800)
	if err != nil {
		return nil, err
	}
	table.Title = "Figure 7 — tracking of two subjects (measured vs calculated)"
	res := &Result{ID: "fig7", Title: "Human tracking redundancy, two subjects", Tables: []report.Table{*table}}
	res.Notes = append(res.Notes, figShapeNote(ms))
	return res, nil
}

func figShapeNote(ms []float64) string {
	// ms order: 1t1a, 1t2a, 2t1a, 2t2a, 4t1a, 4t2a.
	if ms[2] >= ms[1]-0.05 && ms[4] >= ms[2] && ms[5] >= 0.95 {
		return fmt.Sprintf(
			"shape reproduced: tags-per-person ≥ antennas-per-portal; 4 tags or 2 tags × 2 antennas reach ≈100%% (1t1a=%s → 4t2a=%s)",
			report.Percent(ms[0]), report.Percent(ms[5]))
	}
	return "SHAPE DEVIATION: redundancy ladder ordering differs from the paper"
}
