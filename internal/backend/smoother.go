package backend

// Smoothers turn raw read events into presence sightings. Both smoothers
// here keep their per-event cost amortized O(1) in the number of open
// sightings: instead of scanning every open sighting for lapses on each
// event (O(open) per read — ruinous with fleet-scale tag populations),
// they keep an expiry-ordered min-heap of (key, deadline) entries and
// sweep only the entries whose deadline has actually passed. Heap entries
// go stale when a sighting's Last advances; a popped stale entry is simply
// re-pushed at its live deadline, so each pop either closes a sighting or
// strictly advances one deadline — classic lazy timer-queue amortization.

// Smoother turns raw read events into sightings.
type Smoother interface {
	// Observe feeds one event and returns any sightings it closed.
	Observe(ev Event) []Sighting
	// Flush closes every open sighting as of time now.
	Flush(now float64) []Sighting
}

// batchSmoother is the allocation-free flavor the batched ingest path
// prefers: closed sightings are appended to a caller-owned scratch buffer
// instead of a freshly allocated slice.
type batchSmoother interface {
	ObserveAppend(ev Event, dst []Sighting) []Sighting
	FlushAppend(now float64, dst []Sighting) []Sighting
}

// expiryEntry schedules one open sighting's earliest possible close.
type expiryEntry struct {
	key sightingKey
	at  float64
}

// expiryQueue is a binary min-heap on at, implemented directly (not via
// container/heap) so pushes and pops never box through interface{}.
type expiryQueue []expiryEntry

func (q *expiryQueue) push(e expiryEntry) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].at <= h[i].at {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (q *expiryQueue) pop() expiryEntry {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l].at < h[min].at {
			min = l
		}
		if r < n && h[r].at < h[min].at {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// sightingPool is a freelist of open-sighting records shared by both
// smoothers, so steady-state close/reopen churn recycles structs instead
// of allocating.
type sightingPool []*Sighting

func (p *sightingPool) get() *Sighting {
	if n := len(*p); n > 0 {
		sg := (*p)[n-1]
		*p = (*p)[:n-1]
		return sg
	}
	return new(Sighting)
}

func (p *sightingPool) put(sg *Sighting) { *p = append(*p, sg) }

// WindowSmoother merges reads of a tag at a location that fall within a
// fixed window, closing the sighting when the tag stays silent longer.
// This is the classic fixed-window RFID cleaning stage.
type WindowSmoother struct {
	// Window is the maximum silent gap inside one sighting, seconds.
	Window float64

	open map[sightingKey]*Sighting
	exp  expiryQueue
	free sightingPool
}

var (
	_ Smoother      = (*WindowSmoother)(nil)
	_ batchSmoother = (*WindowSmoother)(nil)
)

// NewWindowSmoother returns a smoother with the given window (seconds).
func NewWindowSmoother(window float64) *WindowSmoother {
	return &WindowSmoother{Window: window, open: make(map[sightingKey]*Sighting)}
}

// sweep closes every open sighting whose window has lapsed by time now,
// appending them to dst.
func (s *WindowSmoother) sweep(now float64, dst []Sighting) []Sighting {
	for len(s.exp) > 0 && s.exp[0].at < now {
		e := s.exp.pop()
		open, ok := s.open[e.key]
		if !ok {
			continue // stale: closed (and possibly reopened) since scheduling
		}
		deadline := open.Last + s.Window
		if deadline < now {
			dst = append(dst, *open)
			delete(s.open, e.key)
			s.free.put(open)
		} else {
			s.exp.push(expiryEntry{e.key, deadline})
		}
	}
	return dst
}

// ObserveAppend implements batchSmoother: closed sightings are appended
// to dst, which the caller owns and reuses across calls.
func (s *WindowSmoother) ObserveAppend(ev Event, dst []Sighting) []Sighting {
	base := len(dst)
	dst = s.sweep(ev.Time, dst)
	k := sightingKey{ev.EPC, ev.Location}
	if open, ok := s.open[k]; ok {
		if ev.Time-open.Last > s.Window {
			// The key's own sighting lapsed (only reachable when the event
			// stream is not time-ordered); close it and reopen in place.
			dst = append(dst, *open)
			*open = Sighting{EPC: ev.EPC, Location: ev.Location, First: ev.Time, Last: ev.Time, Reads: 1}
			s.exp.push(expiryEntry{k, ev.Time + s.Window})
		} else {
			open.Last = ev.Time
			open.Reads++
		}
	} else {
		sg := s.free.get()
		*sg = Sighting{EPC: ev.EPC, Location: ev.Location, First: ev.Time, Last: ev.Time, Reads: 1}
		s.open[k] = sg
		s.exp.push(expiryEntry{k, ev.Time + s.Window})
	}
	sortSightingsTail(dst, base)
	return dst
}

// Observe implements Smoother.
func (s *WindowSmoother) Observe(ev Event) []Sighting { return s.ObserveAppend(ev, nil) }

// FlushAppend implements batchSmoother. Flushing closes every open
// sighting unconditionally, whatever its deadline.
func (s *WindowSmoother) FlushAppend(_ float64, dst []Sighting) []Sighting {
	base := len(dst)
	for k, open := range s.open {
		dst = append(dst, *open)
		delete(s.open, k)
		s.free.put(open)
	}
	s.exp = s.exp[:0]
	sortSightingsTail(dst, base)
	return dst
}

// Flush implements Smoother.
func (s *WindowSmoother) Flush(now float64) []Sighting { return s.FlushAppend(now, nil) }

// AdaptiveSmoother is a SMURF-style cleaner: the per-tag window adapts to
// the observed read rate, growing for weakly-read tags (so sporadic reads
// still merge into one sighting) and shrinking for strongly-read tags (so
// transitions are detected quickly).
type AdaptiveSmoother struct {
	// MinWindow and MaxWindow bound the adaptive window, seconds.
	MinWindow, MaxWindow float64
	// Slack multiplies the smoothed inter-read interval to get the window.
	Slack float64

	open     map[sightingKey]*Sighting
	interval map[sightingKey]float64 // EWMA of inter-read gaps
	exp      expiryQueue
	free     sightingPool
}

var (
	_ Smoother      = (*AdaptiveSmoother)(nil)
	_ batchSmoother = (*AdaptiveSmoother)(nil)
)

// NewAdaptiveSmoother returns an adaptive smoother with sane defaults for
// portal traffic.
func NewAdaptiveSmoother() *AdaptiveSmoother {
	return &AdaptiveSmoother{
		MinWindow: 0.5,
		MaxWindow: 10,
		Slack:     3,
		open:      make(map[sightingKey]*Sighting),
		interval:  make(map[sightingKey]float64),
	}
}

// windowFor returns the current window for a tag.
func (s *AdaptiveSmoother) windowFor(k sightingKey) float64 {
	iv, ok := s.interval[k]
	if !ok || iv <= 0 {
		return s.MaxWindow // no estimate yet: be generous
	}
	w := iv * s.Slack
	if w < s.MinWindow {
		w = s.MinWindow
	}
	if w > s.MaxWindow {
		w = s.MaxWindow
	}
	return w
}

// sweep closes every open sighting whose adaptive window has lapsed by
// time now. Scheduled deadlines can be stale in either direction (the
// window shrinks as the read-rate estimate improves); each pop re-checks
// against the live window, re-pushing entries that are not yet due.
func (s *AdaptiveSmoother) sweep(now float64, dst []Sighting) []Sighting {
	for len(s.exp) > 0 && s.exp[0].at < now {
		e := s.exp.pop()
		open, ok := s.open[e.key]
		if !ok {
			continue
		}
		deadline := open.Last + s.windowFor(e.key)
		if deadline < now {
			dst = append(dst, *open)
			delete(s.open, e.key)
			s.free.put(open)
		} else {
			s.exp.push(expiryEntry{e.key, deadline})
		}
	}
	return dst
}

// ObserveAppend implements batchSmoother.
func (s *AdaptiveSmoother) ObserveAppend(ev Event, dst []Sighting) []Sighting {
	base := len(dst)
	dst = s.sweep(ev.Time, dst)
	k := sightingKey{ev.EPC, ev.Location}
	if open, ok := s.open[k]; ok {
		if ev.Time-open.Last > s.windowFor(k) {
			// The adaptive window can shrink below a scheduled deadline, so
			// the key's own lapse must be checked here, not only in the
			// sweep — otherwise a shrunk window would merge across a gap the
			// live window rejects.
			dst = append(dst, *open)
			*open = Sighting{EPC: ev.EPC, Location: ev.Location, First: ev.Time, Last: ev.Time, Reads: 1}
			s.exp.push(expiryEntry{k, ev.Time + s.windowFor(k)})
		} else {
			gap := ev.Time - open.Last
			const alpha = 0.3
			if prev, ok := s.interval[k]; ok {
				s.interval[k] = (1-alpha)*prev + alpha*gap
			} else {
				s.interval[k] = gap
			}
			open.Last = ev.Time
			open.Reads++
		}
	} else {
		sg := s.free.get()
		*sg = Sighting{EPC: ev.EPC, Location: ev.Location, First: ev.Time, Last: ev.Time, Reads: 1}
		s.open[k] = sg
		s.exp.push(expiryEntry{k, ev.Time + s.windowFor(k)})
	}
	sortSightingsTail(dst, base)
	return dst
}

// Observe implements Smoother.
func (s *AdaptiveSmoother) Observe(ev Event) []Sighting { return s.ObserveAppend(ev, nil) }

// FlushAppend implements batchSmoother. Flushing closes every open
// sighting unconditionally, whatever its deadline.
func (s *AdaptiveSmoother) FlushAppend(_ float64, dst []Sighting) []Sighting {
	base := len(dst)
	for k, open := range s.open {
		dst = append(dst, *open)
		delete(s.open, k)
		s.free.put(open)
	}
	s.exp = s.exp[:0]
	sortSightingsTail(dst, base)
	return dst
}

// Flush implements Smoother.
func (s *AdaptiveSmoother) Flush(now float64) []Sighting { return s.FlushAppend(now, nil) }
