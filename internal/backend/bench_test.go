package backend

import (
	"fmt"
	"testing"

	"rfidtrack/internal/epc"
)

// benchBatch builds one reusable batch of n events over a fixed tag
// population at the given time, spread across locations.
func benchBatch(n, tags int, at float64) []Event {
	locs := []string{"dock", "gate", "belt", "yard"}
	batch := make([]Event, n)
	for i := range batch {
		t := i % tags
		batch[i] = Event{
			EPC:      epc.Code{0x30, 1, 2, 3, byte(t >> 16), byte(t >> 8), byte(t), 7, 8, 9, 10, 11},
			Location: locs[t%len(locs)],
			Antenna:  "a1",
			Time:     at + float64(i)*1e-6,
		}
	}
	return batch
}

// BenchmarkIngestBatch is the capacity bench behind the fleet-scale
// acceptance bar: one 256-event batch per op over a 512-tag population
// with a window wide enough that sightings merge rather than close — the
// pure smoothing steady state, which must not allocate (0 allocs/op;
// gated by make bench-diff).
func BenchmarkIngestBatch(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := NewShardedPipeline(Config{
				Shards:      shards,
				NewSmoother: func() Smoother { return NewWindowSmoother(1e18) },
			})
			const batchSize, tags = 256, 512
			batch := benchBatch(batchSize, tags, 0)
			p.IngestBatch(batch) // warm maps, heap, pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.IngestBatch(batch)
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)*batchSize/s, "events/s")
			}
		})
	}
}

// BenchmarkIngestBatchChurn exercises the full close/reopen path: each
// op's batch is one window beyond the previous, so every key closes and
// reopens every op, applying closed sightings to the store.
func BenchmarkIngestBatchChurn(b *testing.B) {
	p := NewShardedPipeline(Config{
		Shards:      4,
		NewSmoother: func() Smoother { return NewWindowSmoother(2) },
	})
	const batchSize, tags = 256, 256
	batch := benchBatch(batchSize, tags, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shift := float64(i) * 10
		for j := range batch {
			batch[j].Time = shift + float64(j)*1e-6
		}
		p.IngestBatch(batch)
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*batchSize/s, "events/s")
	}
}

// BenchmarkStoreSharded measures Apply across shard counts over a large
// tag population with per-tag increasing First times (the in-order case
// the pipeline produces: binary insertion lands at the end).
func BenchmarkStoreSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := NewStoreShards(shards)
			const tags = 1 << 16
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := i % tags
				s.Apply(Sighting{
					EPC:      epc.Code{0x30, 1, 2, 3, byte(t >> 16), byte(t >> 8), byte(t), 7, 8, 9, 10, 11},
					Location: "dock",
					First:    float64(i),
					Last:     float64(i) + 1,
					Reads:    3,
				})
			}
		})
	}
}

// BenchmarkStoreQuery pins the satellite-2 contract: Tags and History
// read from maintained indexes — no re-sort, no per-comparison string
// conversions — so query cost is copy/merge only.
func BenchmarkStoreQuery(b *testing.B) {
	s := NewStore()
	const tags, perTag = 10000, 10
	var probe epc.Code
	for t := 0; t < tags; t++ {
		code := epc.Code{0x30, 1, 2, 3, byte(t >> 16), byte(t >> 8), byte(t), 7, 8, 9, 10, 11}
		if t == tags/2 {
			probe = code
		}
		for k := 0; k < perTag; k++ {
			s.Apply(Sighting{EPC: code, Location: "dock", First: float64(k) * 10, Last: float64(k)*10 + 1, Reads: 2})
		}
	}
	b.Run("tags", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := len(s.Tags()); got != tags {
				b.Fatalf("Tags() = %d", got)
			}
		}
	})
	b.Run("history", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := len(s.History(probe)); got != perTag {
				b.Fatalf("History() = %d", got)
			}
		}
	})
}

// BenchmarkWindowSmootherManyOpen is the satellite-1 proof: Observe cost
// must not scale with the number of concurrently open sightings. The old
// implementation scanned every open sighting per event (O(open)); the
// expiry-queue sweep is amortized O(1), so the 16384-open case must run
// at the same per-op cost as the 16-open case.
func BenchmarkWindowSmootherManyOpen(b *testing.B) {
	for _, open := range []int{16, 16384} {
		b.Run(fmt.Sprintf("open=%d", open), func(b *testing.B) {
			s := NewWindowSmoother(1e18)
			for t := 0; t < open; t++ {
				s.Observe(Event{
					EPC:      epc.Code{0x30, 1, 2, 3, byte(t >> 16), byte(t >> 8), byte(t), 7, 8, 9, 10, 11},
					Location: "dock", Time: float64(t) * 1e-3,
				})
			}
			hot := Event{EPC: epc.Code{0x30, 1, 2, 3, 0, 0, 0, 7, 8, 9, 10, 11}, Location: "dock", Time: 100}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hot.Time += 1e-6
				s.ObserveAppend(hot, nil)
			}
		})
	}
}
