package backend_test

import (
	"testing"

	"rfidtrack/internal/backend"
	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// TestRouteCleaningOverSimulatedPortals drives a tagged box down a belt
// past three portals, with the middle portal's antenna mis-aimed so it
// systematically misses — and shows the route constraint reconstructing
// the missed sighting from the simulator's real event stream.
func TestRouteCleaningOverSimulatedPortals(t *testing.T) {
	w := world.New(rf.DefaultCalibration(), 17)

	// Three portals along the belt at x = 0, 8, 16; the middle antenna is
	// turned away from the belt (a mis-installed portal).
	a1 := w.AddAntenna("in", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	// The middle portal is mis-installed: pushed 6 m back from the belt
	// and aimed away, far outside even the scattered field's reach.
	a2 := w.AddAntenna("mid", geom.NewPose(geom.V(8, -6, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	a3 := w.AddAntenna("out", geom.NewPose(geom.V(16, 0, 1), geom.UnitY, geom.UnitZ))

	box := w.AddBox("case", geom.LinePath{
		Start: geom.NewPose(geom.V(-2, 1, 1), geom.UnitX, geom.UnitZ),
		Vel:   geom.UnitX.Scale(1),
		Dur:   20,
	}, geom.V(0.4, 0.4, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	code, err := epc.SGTIN96{Filter: 2, CompanyDigits: 7, Company: 614141, ItemRef: 1, Serial: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w.AttachTag(box, "case/label", code, world.Mount{
		Offset: geom.V(0, -0.2, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.1,
	})

	// One reader per portal, dense mode everywhere (a properly installed
	// multi-portal site).
	mkReader := func(name string, ant *world.Antenna) *reader.Reader {
		r, err := reader.New(name, w, []*world.Antenna{ant}, reader.WithDenseMode(true))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	portal := &core.Portal{World: w, Readers: []*reader.Reader{
		mkReader("portal-in", a1), mkReader("portal-mid", a2), mkReader("portal-out", a3),
	}}

	res := portal.RunPass(0)
	pipeline := backend.NewPipeline(backend.NewWindowSmoother(2))
	for _, e := range res.Events {
		pipeline.Ingest(backend.Event{
			EPC: e.EPC, Location: e.Reader, Antenna: e.Antenna, Time: e.Time,
		})
	}
	pipeline.Flush(1e9)

	history := pipeline.Store().History(code)
	seen := map[string]bool{}
	for _, s := range history {
		seen[s.Location] = true
	}
	if !seen["portal-in"] || !seen["portal-out"] {
		t.Fatalf("end portals missed the case: %+v", history)
	}
	if seen["portal-mid"] {
		t.Fatal("the mis-aimed portal read the case; the test premise broke")
	}

	// Route cleaning: in -> mid -> out with plausible belt timing.
	route := backend.Route{
		Portals: []string{"portal-in", "portal-mid", "portal-out"},
		MaxGap:  15,
	}
	cleaned := route.Clean(history)
	var inferred *backend.Sighting
	for i := range cleaned {
		if cleaned[i].Location == "portal-mid" {
			inferred = &cleaned[i]
		}
	}
	if inferred == nil {
		t.Fatal("route constraint did not reconstruct the missed portal")
	}
	if !inferred.Inferred {
		t.Error("reconstructed sighting not marked inferred")
	}
	// The inferred time falls between the real sightings.
	if inferred.First <= history[0].Last || inferred.First >= history[len(history)-1].First {
		t.Errorf("inferred time %v outside the travel window", inferred.First)
	}
}
