package backend

import (
	"math/bits"
	"sort"
	"sync"

	"rfidtrack/internal/epc"
)

// Location is a tag's tracked position.
type Location struct {
	Name  string
	Since float64
}

// DefaultStoreShards is the shard count NewStore uses. Power of two;
// sized so a single box absorbing thousands of portals spreads lock
// traffic far below contention while keeping per-shard bookkeeping cheap.
const DefaultStoreShards = 32

// hashEPC is FNV-1a over the 12 code bytes — the shard router for both
// the store and the pipeline, allocation-free.
func hashEPC(c epc.Code) uint32 {
	h := uint32(2166136261)
	for _, b := range c {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// storeShard is one lock's worth of the tracking database. Query results
// come from maintained indexes: the shard's tag index is kept sorted as
// tags appear, and each tag's history is kept sorted as sightings apply,
// so Tags and History never re-sort on read.
type storeShard struct {
	mu        sync.RWMutex
	last      map[epc.Code]Location
	history   map[epc.Code][]Sighting
	index     []epc.Code // every tag in the shard, sorted bytewise
	sightings int
}

// Store is the in-memory tracking database: last known location plus full
// sighting history per tag, EPC-hash-sharded with one lock per shard.
// Safe for concurrent use; writers to distinct shards never contend.
type Store struct {
	shards []storeShard
	mask   uint32
}

// NewStore returns an empty store with DefaultStoreShards shards.
func NewStore() *Store { return NewStoreShards(DefaultStoreShards) }

// NewStoreShards returns an empty store with n shards, rounded up to a
// power of two (minimum 1).
func NewStoreShards(n int) *Store {
	n = ceilPow2(n)
	s := &Store{shards: make([]storeShard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].last = make(map[epc.Code]Location)
		s.shards[i].history = make(map[epc.Code][]Sighting)
	}
	return s
}

// NumShards reports the store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

func (s *Store) shardFor(code epc.Code) *storeShard {
	return &s.shards[hashEPC(code)&s.mask]
}

// insertIndex adds a newly seen tag to the shard's sorted index.
func (sh *storeShard) insertIndex(code epc.Code) {
	i := sort.Search(len(sh.index), func(i int) bool { return sh.index[i].Compare(code) >= 0 })
	sh.index = append(sh.index, epc.Code{})
	copy(sh.index[i+1:], sh.index[i:])
	sh.index[i] = code
}

// Apply records a closed sighting. The tag's history is kept sorted by
// (First, Location) via binary insertion, so History never re-sorts.
func (s *Store) Apply(sight Sighting) {
	sh := s.shardFor(sight.EPC)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.last[sight.EPC]
	if !ok {
		sh.insertIndex(sight.EPC)
	}
	if !ok || sight.Last >= cur.Since {
		sh.last[sight.EPC] = Location{Name: sight.Location, Since: sight.Last}
	}
	h := sh.history[sight.EPC]
	i := sort.Search(len(h), func(i int) bool {
		if h[i].First != sight.First {
			return h[i].First > sight.First
		}
		return h[i].Location > sight.Location
	})
	h = append(h, Sighting{})
	copy(h[i+1:], h[i:])
	h[i] = sight
	sh.history[sight.EPC] = h
	sh.sightings++
}

// Seen reports whether the store has ever recorded a sighting of the tag
// — the membership test behind the tracking API's 404 for unknown EPCs.
func (s *Store) Seen(code epc.Code) bool {
	sh := s.shardFor(code)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.last[code]
	return ok
}

// LocationOf returns the last known location of a tag.
func (s *Store) LocationOf(code epc.Code) (Location, bool) {
	sh := s.shardFor(code)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	loc, ok := sh.last[code]
	return loc, ok
}

// History returns a copy of a tag's sighting history, oldest first. The
// history is maintained in order at Apply time, so this is one copy — no
// per-query sort.
func (s *Store) History(code epc.Code) []Sighting {
	sh := s.shardFor(code)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	h := sh.history[code]
	if h == nil {
		return nil
	}
	return append([]Sighting(nil), h...)
}

// Tags returns every tag the store has seen, sorted by EPC. Shard indexes
// are already sorted, so this is a k-way merge — no per-query sort and no
// per-comparison string conversions.
func (s *Store) Tags() []epc.Code {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].index)
	}
	out := make([]epc.Code, 0, total)
	pos := make([]int, len(s.shards))
	for len(out) < total {
		min := -1
		for i := range s.shards {
			if pos[i] >= len(s.shards[i].index) {
				continue
			}
			if min < 0 || s.shards[i].index[pos[i]].Compare(s.shards[min].index[pos[min]]) < 0 {
				min = i
			}
		}
		out = append(out, s.shards[min].index[pos[min]])
		pos[min]++
	}
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
	return out
}

// ShardStat is one shard's occupancy in the stats API.
type ShardStat struct {
	Tags      int `json:"tags"`
	Sightings int `json:"sightings"`
}

// ShardStats reports per-shard occupancy — the skew diagnostic behind
// GET /api/stats.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out[i] = ShardStat{Tags: len(sh.last), Sightings: sh.sightings}
		sh.mu.RUnlock()
	}
	return out
}
