package backend

import (
	"sync"
	"testing"
	"time"

	"rfidtrack/internal/epc"
)

func code(serial uint64) epc.Code {
	c, err := epc.GID96{Manager: 4, Class: 4, Serial: serial}.Encode()
	if err != nil {
		panic(err)
	}
	return c
}

func TestWindowSmootherMergesAndCloses(t *testing.T) {
	s := NewWindowSmoother(1.0)
	e := func(serial uint64, loc string, at float64) Event {
		return Event{EPC: code(serial), Location: loc, Time: at}
	}
	if got := s.Observe(e(1, "dock", 0)); len(got) != 0 {
		t.Fatalf("first read closed %d sightings", len(got))
	}
	// Reads within the window merge.
	s.Observe(e(1, "dock", 0.5))
	s.Observe(e(1, "dock", 1.2))
	// A read after a >window silence closes the old sighting.
	closed := s.Observe(e(1, "dock", 3.0))
	if len(closed) != 1 {
		t.Fatalf("closed %d sightings, want 1", len(closed))
	}
	got := closed[0]
	if got.First != 0 || got.Last != 1.2 || got.Reads != 3 {
		t.Errorf("sighting = %+v", got)
	}
	// The new sighting is open; flush closes it.
	flushed := s.Flush(10)
	if len(flushed) != 1 || flushed[0].First != 3.0 || flushed[0].Reads != 1 {
		t.Errorf("flush = %+v", flushed)
	}
	if len(s.Flush(11)) != 0 {
		t.Error("second flush should be empty")
	}
}

func TestExpiryQueuePopsAscending(t *testing.T) {
	// Push deadlines in an adversarial order (a fixed LCG permutation so
	// the run is deterministic) and require pops to come back sorted —
	// this pins the sift-down walking the whole heap, not just one level.
	var q expiryQueue
	const n = 257
	seed := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		q.push(expiryEntry{key: sightingKey{code: code(uint64(i)), loc: "dock"}, at: float64(seed % 1000)})
	}
	prev := -1.0
	for i := 0; i < n; i++ {
		e := q.pop()
		if e.at < prev {
			t.Fatalf("pop %d returned at=%v after %v; heap order broken", i, e.at, prev)
		}
		prev = e.at
	}
	if len(q) != 0 {
		t.Fatalf("queue not empty after %d pops: %d left", n, len(q))
	}
}

func TestWindowSmootherSweepClosesAllLapsed(t *testing.T) {
	// Many tags go silent at staggered times; one late event must close
	// every lapsed sighting at once, including ones buried deep in the
	// expiry heap — not just whichever happens to sit at the root.
	s := NewWindowSmoother(1.0)
	const n = 64
	for i := uint64(0); i < n; i++ {
		s.Observe(Event{EPC: code(i), Location: "dock", Time: float64(i) * 0.01})
	}
	closed := s.Observe(Event{EPC: code(n), Location: "dock", Time: 100})
	if len(closed) != n {
		t.Fatalf("sweep closed %d sightings, want %d", len(closed), n)
	}
	for i := 1; i < len(closed); i++ {
		if closed[i].First < closed[i-1].First {
			t.Fatalf("closures out of order at %d: %+v", i, closed)
		}
	}
}

func TestWindowSmootherSeparatesTagsAndLocations(t *testing.T) {
	s := NewWindowSmoother(1.0)
	s.Observe(Event{EPC: code(1), Location: "dock", Time: 0})
	s.Observe(Event{EPC: code(2), Location: "dock", Time: 0.1})
	s.Observe(Event{EPC: code(1), Location: "gate", Time: 0.2})
	closed := s.Flush(5)
	if len(closed) != 3 {
		t.Fatalf("flush closed %d sightings, want 3", len(closed))
	}
	// Sorted by first-seen.
	if closed[0].Location != "dock" || closed[0].EPC != code(1) {
		t.Errorf("sort order: %+v", closed)
	}
}

func TestAdaptiveSmootherWindowAdapts(t *testing.T) {
	s := NewAdaptiveSmoother()
	k := sightingKey{code(1), "dock"}
	// No estimate yet: generous window.
	if got := s.windowFor(k); got != s.MaxWindow {
		t.Errorf("initial window = %v, want max", got)
	}
	// A strongly-read tag (10 reads/s) shrinks its window toward the floor.
	for i := 0; i < 50; i++ {
		s.Observe(Event{EPC: code(1), Location: "dock", Time: float64(i) * 0.1})
	}
	wFast := s.windowFor(k)
	if wFast >= 2 {
		t.Errorf("fast-read window = %v, want small", wFast)
	}
	// A weakly-read tag keeps a longer window: a 1.5 s silence must not
	// split its sighting while the same gap would split a fast tag's.
	s2 := NewAdaptiveSmoother()
	for i := 0; i < 10; i++ {
		s2.Observe(Event{EPC: code(2), Location: "dock", Time: float64(i) * 1.2})
	}
	if got := s2.Observe(Event{EPC: code(2), Location: "dock", Time: 13.5}); len(got) != 0 {
		t.Errorf("weak tag sighting split by a 1.5s gap: %+v", got)
	}
	closed := s2.Flush(20)
	if len(closed) != 1 || closed[0].Reads != 11 {
		t.Errorf("weak tag history = %+v", closed)
	}
}

func TestAdaptiveSmootherBounds(t *testing.T) {
	s := NewAdaptiveSmoother()
	// Hammer with sub-millisecond reads: window must clamp at MinWindow.
	for i := 0; i < 100; i++ {
		s.Observe(Event{EPC: code(1), Location: "dock", Time: float64(i) * 0.0001})
	}
	if got := s.windowFor(sightingKey{code(1), "dock"}); got != s.MinWindow {
		t.Errorf("window = %v, want clamped to %v", got, s.MinWindow)
	}
}

func TestStore(t *testing.T) {
	st := NewStore()
	st.Apply(Sighting{EPC: code(1), Location: "dock", First: 0, Last: 1})
	st.Apply(Sighting{EPC: code(1), Location: "gate", First: 5, Last: 6})
	st.Apply(Sighting{EPC: code(2), Location: "dock", First: 2, Last: 3})

	loc, ok := st.LocationOf(code(1))
	if !ok || loc.Name != "gate" || loc.Since != 6 {
		t.Errorf("location = %+v, %v", loc, ok)
	}
	if _, ok := st.LocationOf(code(9)); ok {
		t.Error("unknown tag has a location")
	}
	h := st.History(code(1))
	if len(h) != 2 || h[0].Location != "dock" || h[1].Location != "gate" {
		t.Errorf("history = %+v", h)
	}
	// History returns a copy.
	h[0].Location = "mutated"
	if st.History(code(1))[0].Location == "mutated" {
		t.Error("history aliases internal storage")
	}
	tags := st.Tags()
	if len(tags) != 2 {
		t.Errorf("tags = %v", tags)
	}
	// An out-of-order (older) sighting must not regress the last location.
	st.Apply(Sighting{EPC: code(1), Location: "dock", First: 1.5, Last: 2})
	if loc, _ := st.LocationOf(code(1)); loc.Name != "gate" {
		t.Errorf("stale sighting regressed location to %v", loc.Name)
	}
}

func TestPipelineRules(t *testing.T) {
	p := NewPipeline(NewWindowSmoother(0.5))
	var alarms []Sighting
	p.AddRule(Rule{
		Name:   "alarm on gate",
		Match:  func(s Sighting) bool { return s.Location == "gate" },
		Action: func(s Sighting) { alarms = append(alarms, s) },
	})
	var all int
	p.AddRule(Rule{Name: "count", Action: func(Sighting) { all++ }})

	p.Ingest(Event{EPC: code(1), Location: "gate", Time: 0})
	p.Ingest(Event{EPC: code(1), Location: "dock", Time: 5}) // closes the gate sighting
	p.Flush(10)

	if len(alarms) != 1 || alarms[0].Location != "gate" {
		t.Errorf("alarms = %+v", alarms)
	}
	if all != 2 {
		t.Errorf("rule ran %d times, want 2", all)
	}
	if loc, ok := p.Store().LocationOf(code(1)); !ok || loc.Name != "dock" {
		t.Errorf("store location = %+v", loc)
	}
}

func TestPipelineRulePanicDoesNotWedgeShard(t *testing.T) {
	p := NewPipeline(NewWindowSmoother(0.5))
	p.AddRule(Rule{Name: "boom", Action: func(Sighting) { panic("boom") }})
	panicked := false
	func() {
		defer func() { panicked = recover() != nil }()
		p.Ingest(Event{EPC: code(1), Location: "dock", Time: 0})
		p.Ingest(Event{EPC: code(1), Location: "dock", Time: 5}) // closes → rule panics
	}()
	if !panicked {
		t.Fatal("rule panic did not propagate")
	}
	// The shard lock must have been released on the way out: further
	// ingest and flush on the same shard must not deadlock.
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Both calls may fire the rule again; only wedging is a failure.
		func() {
			defer func() { recover() }()
			p.IngestBatch([]Event{{EPC: code(1), Location: "gate", Time: 6}})
		}()
		func() {
			defer func() { recover() }()
			p.Flush(20)
		}()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shard wedged after rule panic")
	}
}

func TestPipelineDefaultSmoother(t *testing.T) {
	p := NewPipeline(nil)
	p.Ingest(Event{EPC: code(1), Location: "dock", Time: 0})
	if got := p.Flush(5); len(got) != 1 {
		t.Errorf("default pipeline flushed %d", len(got))
	}
}

func TestRouteCleanInfersSkippedPortal(t *testing.T) {
	r := Route{Portals: []string{"dock", "belt", "gate"}, MaxGap: 10}
	history := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 1},
		{EPC: code(1), Location: "gate", First: 8, Last: 9},
	}
	out := r.Clean(history)
	if len(out) != 3 {
		t.Fatalf("cleaned history has %d entries, want 3", len(out))
	}
	mid := out[1]
	if mid.Location != "belt" || !mid.Inferred {
		t.Errorf("inferred sighting = %+v", mid)
	}
	if mid.First <= 1 || mid.First >= 8 {
		t.Errorf("inferred time %v not inside the gap", mid.First)
	}
}

func TestRouteCleanRespectsMaxGap(t *testing.T) {
	r := Route{Portals: []string{"dock", "belt", "gate"}, MaxGap: 2}
	history := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 1},
		{EPC: code(1), Location: "gate", First: 100, Last: 101}, // way too slow
	}
	if out := r.Clean(history); len(out) != 2 {
		t.Errorf("inference made despite the gap: %+v", out)
	}
}

func TestRouteCleanNoInferenceCases(t *testing.T) {
	r := Route{Portals: []string{"dock", "belt", "gate"}, MaxGap: 10}
	// Adjacent portals: nothing missing.
	adj := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 1},
		{EPC: code(1), Location: "belt", First: 2, Last: 3},
	}
	if out := r.Clean(adj); len(out) != 2 {
		t.Errorf("adjacent portals triggered inference: %+v", out)
	}
	// Off-route locations are ignored.
	off := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 1},
		{EPC: code(1), Location: "elsewhere", First: 2, Last: 3},
	}
	if out := r.Clean(off); len(out) != 2 {
		t.Errorf("off-route location triggered inference: %+v", out)
	}
	// Empty inputs.
	if out := r.Clean(nil); len(out) != 0 {
		t.Errorf("empty history cleaned to %+v", out)
	}
	if out := (Route{Portals: []string{"only"}}).Clean(adj); len(out) != 2 {
		t.Errorf("degenerate route changed history: %+v", out)
	}
}

func TestRouteCleanMultipleSkips(t *testing.T) {
	r := Route{Portals: []string{"a", "b", "c", "d"}, MaxGap: 10}
	history := []Sighting{
		{EPC: code(1), Location: "a", First: 0, Last: 0},
		{EPC: code(1), Location: "d", First: 9, Last: 9},
	}
	out := r.Clean(history)
	if len(out) != 4 {
		t.Fatalf("cleaned history has %d entries, want 4", len(out))
	}
	if out[1].Location != "b" || out[2].Location != "c" {
		t.Errorf("inferred order: %v, %v", out[1].Location, out[2].Location)
	}
	if !(out[0].Last < out[1].First && out[1].First < out[2].First && out[2].First < out[3].First) {
		t.Error("inferred times not interpolated in order")
	}
}

func TestGroupCleanInfersMissingMember(t *testing.T) {
	g := Group{
		Members: []epc.Code{code(1), code(2), code(3), code(4)},
		Quorum:  0.7,
		Window:  2,
	}
	all := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 0.5},
		{EPC: code(2), Location: "dock", First: 0.3, Last: 0.8},
		{EPC: code(3), Location: "dock", First: 1.0, Last: 1.2},
		// code(4) missed — 3/4 = 75% ≥ quorum: infer it.
	}
	out := g.Clean(all)
	if len(out) != 4 {
		t.Fatalf("cleaned stream has %d entries, want 4", len(out))
	}
	var found bool
	for _, s := range out {
		if s.EPC == code(4) {
			found = true
			if !s.Inferred || s.Location != "dock" {
				t.Errorf("inferred member = %+v", s)
			}
		}
	}
	if !found {
		t.Error("missing member not inferred")
	}
}

func TestGroupCleanBelowQuorum(t *testing.T) {
	g := Group{
		Members: []epc.Code{code(1), code(2), code(3), code(4)},
		Quorum:  0.7,
		Window:  2,
	}
	all := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 0.5},
		{EPC: code(2), Location: "dock", First: 0.3, Last: 0.8},
		// 2/4 = 50% < 70%: no inference.
	}
	if out := g.Clean(all); len(out) != 2 {
		t.Errorf("below-quorum inference: %+v", out)
	}
}

func TestGroupCleanWindowMatters(t *testing.T) {
	g := Group{
		Members: []epc.Code{code(1), code(2)},
		Quorum:  0.9,
		Window:  1,
	}
	// Both members seen, but 10 s apart: not one passage.
	all := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 0.2},
		{EPC: code(2), Location: "dock", First: 10, Last: 10.2},
	}
	out := g.Clean(all)
	// Each window alone has 1/2 = 50% < 90%: no inference; and no
	// duplicates for already-seen members.
	if len(out) != 2 {
		t.Errorf("window ignored: %+v", out)
	}
}

func TestGroupCleanNoDuplicateInference(t *testing.T) {
	g := Group{
		Members: []epc.Code{code(1), code(2)},
		Quorum:  0.5,
		Window:  2,
	}
	all := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 0.5},
		{EPC: code(2), Location: "dock", First: 0.6, Last: 0.9},
	}
	out := g.Clean(all)
	if len(out) != 2 {
		t.Errorf("inferred a member that was already seen: %+v", out)
	}
	// Degenerate groups are no-ops.
	if got := (Group{}).Clean(all); len(got) != 2 {
		t.Error("empty group changed the stream")
	}
}

func TestGroupCleanNonMembersUntouched(t *testing.T) {
	g := Group{Members: []epc.Code{code(1), code(2)}, Quorum: 0.5, Window: 2}
	all := []Sighting{
		{EPC: code(1), Location: "dock", First: 0, Last: 0.5},
		{EPC: code(9), Location: "dock", First: 0.1, Last: 0.6}, // stranger
	}
	out := g.Clean(all)
	// Member 1 seen -> quorum 50% met -> member 2 inferred; stranger kept.
	if len(out) != 3 {
		t.Fatalf("cleaned stream = %+v", out)
	}
}

func TestPipelineConcurrentIngest(t *testing.T) {
	// The pipeline and store are shared by poll loops and API handlers;
	// hammer them from several goroutines (run under -race in CI).
	p := NewPipeline(NewWindowSmoother(0.1))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Ingest(Event{
					EPC:      code(uint64(g)),
					Location: "dock",
					Time:     float64(i),
				})
				if i%10 == 0 {
					p.Store().Tags()
					p.Store().LocationOf(code(uint64(g)))
				}
			}
		}(g)
	}
	wg.Wait()
	p.Flush(1e9)
	if got := len(p.Store().Tags()); got != 8 {
		t.Errorf("tracked %d tags, want 8", got)
	}
	for g := 0; g < 8; g++ {
		h := p.Store().History(code(uint64(g)))
		var reads int
		for _, s := range h {
			reads += s.Reads
		}
		if reads != 200 {
			t.Errorf("tag %d: %d reads recorded, want 200", g, reads)
		}
	}
}
