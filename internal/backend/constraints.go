package backend

import (
	"sort"

	"rfidtrack/internal/epc"
)

// Route is the "route constraint" of Inoue et al.: objects move along a
// known sequence of portals, so a missed read at an intermediate portal
// can be inferred when the portals before and after it both saw the tag.
type Route struct {
	// Portals is the ordered portal sequence of the route.
	Portals []string
	// MaxGap is the maximum plausible travel time between two adjacent
	// portals; an inference is only made when the observed bracketing
	// sightings are closer together than the accumulated gap allows.
	MaxGap float64
}

// indexOf returns the route position of a portal, or -1.
func (r Route) indexOf(portal string) int {
	for i, p := range r.Portals {
		if p == portal {
			return i
		}
	}
	return -1
}

// Clean scans one tag's sighting history and inserts inferred sightings
// for intermediate portals the route says must have been traversed. The
// input must belong to a single tag; the result is sorted by time.
func (r Route) Clean(history []Sighting) []Sighting {
	if len(r.Portals) < 2 || len(history) == 0 {
		return append([]Sighting(nil), history...)
	}
	out := append([]Sighting(nil), history...)
	sortSightings(out)
	var inferred []Sighting
	for i := 0; i < len(out)-1; i++ {
		a, b := out[i], out[i+1]
		ia, ib := r.indexOf(a.Location), r.indexOf(b.Location)
		if ia < 0 || ib < 0 || ib <= ia+1 {
			continue // not on the route, or adjacent: nothing skipped
		}
		skipped := ib - ia
		if r.MaxGap > 0 && b.First-a.Last > float64(skipped)*r.MaxGap {
			continue // too slow: the object may have left the route
		}
		// Interpolate one sighting per skipped portal.
		span := b.First - a.Last
		for j := ia + 1; j < ib; j++ {
			frac := float64(j-ia) / float64(skipped)
			t := a.Last + span*frac
			inferred = append(inferred, Sighting{
				EPC:      a.EPC,
				Location: r.Portals[j],
				First:    t,
				Last:     t,
				Inferred: true,
			})
		}
	}
	out = append(out, inferred...)
	sortSightings(out)
	return out
}

// Group is the "accompany constraint": a set of tags known to travel
// together (the cases of one pallet, a person's badges). When at least
// Quorum of the group is sighted at a portal within Window seconds, the
// missing members are inferred to have been there too.
type Group struct {
	Members []epc.Code
	// Quorum is the fraction of members (0,1] whose observation triggers
	// inference for the rest.
	Quorum float64
	// Window is how far apart the members' sightings may be, seconds.
	Window float64
}

// Clean scans a mixed sighting stream and returns it with inferred
// sightings appended for group members missed at portals where the group
// quorum passed. The result is sorted by time.
func (g Group) Clean(all []Sighting) []Sighting {
	out := append([]Sighting(nil), all...)
	sortSightings(out)
	if len(g.Members) == 0 || g.Quorum <= 0 {
		return out
	}
	member := make(map[epc.Code]bool, len(g.Members))
	for _, m := range g.Members {
		member[m] = true
	}
	// Collect group sightings per location.
	byLoc := make(map[string][]Sighting)
	for _, s := range out {
		if member[s.EPC] {
			byLoc[s.Location] = append(byLoc[s.Location], s)
		}
	}
	var inferred []Sighting
	for loc, ss := range byLoc {
		sort.Slice(ss, func(i, j int) bool { return ss[i].First < ss[j].First })
		// Slide a window over the location's sightings; the first window
		// that meets quorum yields inferences for absent members.
		for lo := 0; lo < len(ss); lo++ {
			seen := map[epc.Code]Sighting{}
			hi := lo
			for ; hi < len(ss) && ss[hi].First-ss[lo].First <= g.Window; hi++ {
				if _, dup := seen[ss[hi].EPC]; !dup {
					seen[ss[hi].EPC] = ss[hi]
				}
			}
			if float64(len(seen)) < g.Quorum*float64(len(g.Members)) {
				continue
			}
			// Quorum met: infer everyone missing in this window.
			mid := (ss[lo].First + ss[hi-1].Last) / 2
			for _, m := range g.Members {
				if _, ok := seen[m]; ok {
					continue
				}
				if sightedNear(out, m, loc, mid, g.Window) {
					continue
				}
				inferred = append(inferred, Sighting{
					EPC:      m,
					Location: loc,
					First:    mid,
					Last:     mid,
					Inferred: true,
				})
			}
			break
		}
	}
	out = append(out, inferred...)
	sortSightings(out)
	return out
}

// sightedNear reports whether code already has a sighting at loc within
// window of t.
func sightedNear(all []Sighting, code epc.Code, loc string, t, window float64) bool {
	for _, s := range all {
		if s.EPC == code && s.Location == loc &&
			s.First-window <= t && t <= s.Last+window {
			return true
		}
	}
	return false
}
