package backend

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rfidtrack/internal/epc"
)

// genEvents builds a deterministic fleet of tag streams: tags pass
// through rotating portals, several time-ordered reads per pass, with
// inter-pass gaps wide enough to close each sighting. Per-tag (hence
// per-key) streams are time-ordered; Last times are distinct per tag so
// last-location resolution has no ties.
func genEvents(tags, passes int) [][]Event {
	locs := []string{"dock", "gate", "belt", "yard"}
	perTag := make([][]Event, tags)
	for t := 0; t < tags; t++ {
		code := epc.Code{0x30, 1, 2, 3, byte(t >> 16), byte(t >> 8), byte(t), 7, 8, 9, 10, 11}
		for p := 0; p < passes; p++ {
			base := float64(p)*10 + float64(t%7)*0.01
			loc := locs[(t+p)%len(locs)]
			for r := 0; r < 3; r++ {
				perTag[t] = append(perTag[t], Event{
					EPC: code, Location: loc, Antenna: "a1",
					Time: base + float64(r)*0.5,
				})
			}
		}
	}
	return perTag
}

type storeState struct {
	tags      []epc.Code
	locations map[epc.Code]Location
	histories map[epc.Code][]Sighting
}

func snapshotStore(s *Store) storeState {
	st := storeState{
		tags:      s.Tags(),
		locations: make(map[epc.Code]Location),
		histories: make(map[epc.Code][]Sighting),
	}
	for _, code := range st.tags {
		loc, _ := s.LocationOf(code)
		st.locations[code] = loc
		st.histories[code] = s.History(code)
	}
	return st
}

// TestShardedIngestMatchesSequential is the determinism regression test
// (DESIGN.md §11): N goroutines ingesting interleaved batches into a
// sharded pipeline must leave the store byte-identical to a single
// goroutine ingesting the same events one at a time. Runs under -race in
// make check.
func TestShardedIngestMatchesSequential(t *testing.T) {
	const tags, passes, workers = 64, 5, 8
	perTag := genEvents(tags, passes)

	// Reference: single shard, single-event ingest, tag-major order.
	ref := NewPipeline(NewWindowSmoother(2))
	for _, stream := range perTag {
		for _, ev := range stream {
			ref.Ingest(ev)
		}
	}
	ref.Flush(1e9)
	want := snapshotStore(ref.Store())

	for _, shards := range []int{1, 4, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			p := NewShardedPipeline(Config{
				Shards:      shards,
				NewSmoother: func() Smoother { return NewWindowSmoother(2) },
				StoreShards: 8,
			})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Each worker owns a disjoint set of tags (preserving
					// per-EPC order) and feeds them in small interleaved
					// batches.
					const batchSize = 7
					var batch []Event
					for t := w; t < tags; t += workers {
						for _, ev := range perTag[t] {
							batch = append(batch, ev)
							if len(batch) == batchSize {
								p.IngestBatch(batch)
								batch = batch[:0]
							}
						}
					}
					p.IngestBatch(batch)
				}(w)
			}
			wg.Wait()
			p.Flush(1e9)
			got := snapshotStore(p.Store())

			if !reflect.DeepEqual(got.tags, want.tags) {
				t.Fatalf("tag sets differ: got %d tags, want %d", len(got.tags), len(want.tags))
			}
			for _, code := range want.tags {
				if got.locations[code] != want.locations[code] {
					t.Errorf("tag %s location = %+v, want %+v", code.Hex(), got.locations[code], want.locations[code])
				}
				if !reflect.DeepEqual(got.histories[code], want.histories[code]) {
					t.Errorf("tag %s history differs:\n got %+v\nwant %+v", code.Hex(), got.histories[code], want.histories[code])
				}
			}
		})
	}
}

func TestShardConfigRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	}
	for _, c := range cases {
		p := NewShardedPipeline(Config{Shards: c.in})
		if got := p.Shards(); got != c.want {
			t.Errorf("Shards(%d) rounds to %d, want %d", c.in, got, c.want)
		}
		s := NewStoreShards(c.in)
		if got := s.NumShards(); got != c.want {
			t.Errorf("NewStoreShards(%d) = %d shards, want %d", c.in, got, c.want)
		}
	}
}

func TestShardStats(t *testing.T) {
	s := NewStoreShards(4)
	for t2 := 0; t2 < 20; t2++ {
		code := epc.Code{byte(t2), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
		s.Apply(Sighting{EPC: code, Location: "dock", First: 1, Last: 2, Reads: 3})
		s.Apply(Sighting{EPC: code, Location: "gate", First: 3, Last: 4, Reads: 1})
	}
	stats := s.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(stats))
	}
	tags, sightings := 0, 0
	for _, st := range stats {
		tags += st.Tags
		sightings += st.Sightings
	}
	if tags != 20 || sightings != 40 {
		t.Fatalf("totals tags=%d sightings=%d, want 20/40", tags, sightings)
	}
}

// TestHashRoutingStable pins that shard routing is a pure function of the
// EPC: the same code always lands on the same shard, and the router uses
// every shard for a spread population.
func TestHashRoutingStable(t *testing.T) {
	used := map[uint32]bool{}
	for i := 0; i < 4096; i++ {
		code := epc.Code{byte(i >> 8), byte(i), 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
		s := hashEPC(code) & 15
		if s2 := hashEPC(code) & 15; s2 != s {
			t.Fatalf("routing not stable for %s", code.Hex())
		}
		used[s] = true
	}
	if len(used) != 16 {
		t.Errorf("only %d of 16 shards used by 4096 spread EPCs", len(used))
	}
}
