package backend

import (
	"sync"
	"sync/atomic"
)

// Rule is a predicate/action pair evaluated on every closed sighting —
// the paper's "opening a door, setting off an alarm". Rules run with the
// closing shard's lock held and may fire concurrently from different
// shards, so they must be concurrency-safe and must not call back into
// the pipeline's ingest or flush paths.
type Rule struct {
	Name   string
	Match  func(Sighting) bool
	Action func(Sighting)
}

// Config sizes a sharded pipeline.
type Config struct {
	// Shards is the pipeline (smoother) shard count, rounded up to a power
	// of two. 0 means one shard.
	Shards int
	// NewSmoother builds one shard's smoother (nil = 2 s fixed window).
	// Each shard owns its own instance; because events route by EPC hash,
	// every (EPC, location) key always lands on the same shard, so
	// per-shard smoothing closes exactly the sightings a single global
	// smoother would (see DESIGN.md §11 for the determinism contract).
	NewSmoother func() Smoother
	// StoreShards overrides the store's shard count (0 = DefaultStoreShards).
	StoreShards int
}

// pipeShard is one lock's worth of the cleaning pipeline: a smoother plus
// the reusable closed-sighting scratch the batched path appends into.
// Padded to a cache line so neighboring shard locks do not false-share.
type pipeShard struct {
	mu       sync.Mutex
	smoother Smoother
	closed   []Sighting
	_        [64]byte
}

// batchScratch is one IngestBatch call's per-shard routing buffers,
// pooled so concurrent callers reuse grown buffers instead of allocating.
type batchScratch struct {
	perShard [][]Event
}

// Pipeline wires smoothing, storage and rules together, EPC-hash-sharded:
// one smoother and one lock per shard, events routed shard-wise, and the
// steady-state batched ingest path allocation-free.
type Pipeline struct {
	store   *Store
	shards  []pipeShard
	mask    uint32
	scratch sync.Pool

	rulesMu sync.Mutex
	rules   atomic.Pointer[[]Rule]
}

// NewPipeline builds a single-shard pipeline around one smoother — the
// small-deployment (and test) configuration. A nil smoother defaults to a
// 2 s fixed window. The store underneath is sharded regardless.
func NewPipeline(s Smoother) *Pipeline {
	if s == nil {
		s = NewWindowSmoother(2)
	}
	return NewShardedPipeline(Config{Shards: 1, NewSmoother: func() Smoother { return s }})
}

// NewShardedPipeline builds a pipeline from cfg.
func NewShardedPipeline(cfg Config) *Pipeline {
	n := ceilPow2(cfg.Shards)
	mk := cfg.NewSmoother
	if mk == nil {
		mk = func() Smoother { return NewWindowSmoother(2) }
	}
	storeShards := cfg.StoreShards
	if storeShards <= 0 {
		storeShards = DefaultStoreShards
	}
	p := &Pipeline{
		store:  NewStoreShards(storeShards),
		shards: make([]pipeShard, n),
		mask:   uint32(n - 1),
	}
	for i := range p.shards {
		p.shards[i].smoother = mk()
	}
	p.scratch.New = func() any {
		return &batchScratch{perShard: make([][]Event, n)}
	}
	return p
}

// Store exposes the tracking database.
func (p *Pipeline) Store() *Store { return p.store }

// Shards reports the pipeline's smoother shard count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// AddRule registers a rule; rules run in registration order.
func (p *Pipeline) AddRule(r Rule) {
	p.rulesMu.Lock()
	defer p.rulesMu.Unlock()
	old := p.ruleset()
	next := make([]Rule, len(old)+1)
	copy(next, old)
	next[len(old)] = r
	p.rules.Store(&next)
}

// ruleset returns the current rule snapshot without locking or copying.
func (p *Pipeline) ruleset() []Rule {
	if rp := p.rules.Load(); rp != nil {
		return *rp
	}
	return nil
}

func (p *Pipeline) commit(closed []Sighting, rules []Rule) {
	for i := range closed {
		p.store.Apply(closed[i])
		for _, r := range rules {
			if r.Match == nil || r.Match(closed[i]) {
				if r.Action != nil {
					r.Action(closed[i])
				}
			}
		}
	}
}

// ingestShard feeds one shard's slice of a batch through its smoother and
// commits the closed sightings, reusing the shard's scratch buffer. The
// commit happens under the shard lock: the scratch must not escape, and
// per-shard ordering of store applies and rule firings is preserved.
func (p *Pipeline) ingestShard(sh *pipeShard, events []Event) int {
	rules := p.ruleset()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	closed := sh.closed[:0]
	if bs, ok := sh.smoother.(batchSmoother); ok {
		for i := range events {
			closed = bs.ObserveAppend(events[i], closed)
		}
	} else {
		for i := range events {
			closed = append(closed, sh.smoother.Observe(events[i])...)
		}
	}
	sh.closed = closed[:0]
	p.commit(closed, rules)
	return len(closed)
}

// IngestBatch processes a batch of raw events, routing each to its EPC
// shard, and returns how many sightings closed. This is the fleet-scale
// ingest path: per-shard event buffers, closed-sighting scratch and
// smoother state are all reused, so the steady state allocates nothing
// (pinned by BenchmarkIngestBatch). Batches from concurrent callers
// proceed in parallel on disjoint shards.
func (p *Pipeline) IngestBatch(events []Event) int {
	if len(events) == 0 {
		return 0
	}
	if len(p.shards) == 1 {
		return p.ingestShard(&p.shards[0], events)
	}
	sc := p.scratch.Get().(*batchScratch)
	for i := range events {
		s := hashEPC(events[i].EPC) & p.mask
		sc.perShard[s] = append(sc.perShard[s], events[i])
	}
	closed := 0
	for i := range sc.perShard {
		if len(sc.perShard[i]) == 0 {
			continue
		}
		closed += p.ingestShard(&p.shards[i], sc.perShard[i])
		sc.perShard[i] = sc.perShard[i][:0]
	}
	p.scratch.Put(sc)
	return closed
}

// Ingest processes one raw event and returns any sightings it closed
// (after applying them to the store and running rules). Single-event
// convenience over IngestBatch; the returned slice is freshly allocated.
func (p *Pipeline) Ingest(ev Event) []Sighting {
	sh := &p.shards[hashEPC(ev.EPC)&p.mask]
	rules := p.ruleset()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var closed []Sighting
	if bs, ok := sh.smoother.(batchSmoother); ok {
		closed = bs.ObserveAppend(ev, nil)
	} else {
		closed = sh.smoother.Observe(ev)
	}
	p.commit(closed, rules)
	return closed
}

// Flush closes all open sightings as of now, across every shard.
func (p *Pipeline) Flush(now float64) []Sighting {
	rules := p.ruleset()
	var all []Sighting
	for i := range p.shards {
		all = append(all, p.flushShard(&p.shards[i], now, rules)...)
	}
	sortSightings(all)
	return all
}

// flushShard flushes one shard under its lock and commits the closures.
func (p *Pipeline) flushShard(sh *pipeShard, now float64, rules []Rule) []Sighting {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var closed []Sighting
	if bs, ok := sh.smoother.(batchSmoother); ok {
		closed = bs.FlushAppend(now, nil)
	} else {
		closed = sh.smoother.Flush(now)
	}
	p.commit(closed, rules)
	return closed
}
