package backend

import (
	"runtime/debug"
	"testing"
)

// TestIngestBatchZeroAlloc pins the ingest hot path's allocation
// contract (DESIGN.md §12) as a unit test so `make alloc-guard` catches
// a regression without running the full benchmark suite: once the maps,
// heap, and pools are warm, the smoothing steady state must not allocate
// per batch. GC is paused for the measurement — a collection mid-run
// empties the routing-buffer sync.Pools, whose refill is pool behavior,
// not an ingest-path regression.
func TestIngestBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates (and sync.Pool deliberately drops puts under -race)")
	}
	p := NewShardedPipeline(Config{
		Shards:      4,
		NewSmoother: func() Smoother { return NewWindowSmoother(1e18) },
	})
	batch := benchBatch(256, 512, 0)
	p.IngestBatch(batch) // warm maps, heap, pools
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if avg := testing.AllocsPerRun(100, func() { p.IngestBatch(batch) }); avg != 0 {
		t.Fatalf("IngestBatch allocates %.1f allocs/op in steady state, want 0", avg)
	}
}
