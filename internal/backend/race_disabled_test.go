//go:build !race

package backend

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation (and sync.Pool bypassing) allocates on
// paths that are allocation-free in production builds.
const raceEnabled = false
