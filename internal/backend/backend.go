// Package backend implements the paper's "back-end system … with edge
// servers, application servers, and databases": read-event ingestion,
// smoothing/deduplication of the raw read stream into presence sightings,
// an in-memory tracking store, and the rule hooks ("the logic can be as
// simple as opening a door, setting off an alarm, updating a database").
//
// It also implements the related-work cleaning baselines the paper cites:
// an adaptive (SMURF-style) smoothing window [Jeffery et al., VLDB'06] and
// the route/accompany constraint correction of Inoue et al. [ARES'06] —
// the data-level alternatives to the paper's physical redundancy.
package backend

import (
	"sort"
	"sync"

	"rfidtrack/internal/epc"
)

// Event is one raw tag observation as delivered by a reader. Times are
// seconds on the deployment's clock.
type Event struct {
	EPC      epc.Code
	Location string // the portal/reader that saw the tag
	Antenna  string
	Time     float64
}

// Sighting is a smoothed presence interval: "this tag was at this portal
// from First to Last". Inferred marks sightings reconstructed by
// constraint cleaning rather than observed.
type Sighting struct {
	EPC      epc.Code
	Location string
	First    float64
	Last     float64
	Reads    int
	Inferred bool
}

type sightingKey struct {
	code epc.Code
	loc  string
}

// Smoother turns raw read events into sightings.
type Smoother interface {
	// Observe feeds one event and returns any sightings it closed.
	Observe(ev Event) []Sighting
	// Flush closes every open sighting as of time now.
	Flush(now float64) []Sighting
}

// WindowSmoother merges reads of a tag at a location that fall within a
// fixed window, closing the sighting when the tag stays silent longer.
// This is the classic fixed-window RFID cleaning stage.
type WindowSmoother struct {
	// Window is the maximum silent gap inside one sighting, seconds.
	Window float64

	open map[sightingKey]*Sighting
}

var _ Smoother = (*WindowSmoother)(nil)

// NewWindowSmoother returns a smoother with the given window (seconds).
func NewWindowSmoother(window float64) *WindowSmoother {
	return &WindowSmoother{Window: window, open: make(map[sightingKey]*Sighting)}
}

// Observe implements Smoother.
func (s *WindowSmoother) Observe(ev Event) []Sighting {
	var closed []Sighting
	// Close any sightings whose window has lapsed by this event's time.
	for k, open := range s.open {
		if ev.Time-open.Last > s.Window {
			closed = append(closed, *open)
			delete(s.open, k)
		}
	}
	k := sightingKey{ev.EPC, ev.Location}
	if open, ok := s.open[k]; ok {
		open.Last = ev.Time
		open.Reads++
	} else {
		s.open[k] = &Sighting{
			EPC: ev.EPC, Location: ev.Location,
			First: ev.Time, Last: ev.Time, Reads: 1,
		}
	}
	sortSightings(closed)
	return closed
}

// Flush implements Smoother.
func (s *WindowSmoother) Flush(now float64) []Sighting {
	var closed []Sighting
	for k, open := range s.open {
		_ = now
		closed = append(closed, *open)
		delete(s.open, k)
	}
	sortSightings(closed)
	return closed
}

// AdaptiveSmoother is a SMURF-style cleaner: the per-tag window adapts to
// the observed read rate, growing for weakly-read tags (so sporadic reads
// still merge into one sighting) and shrinking for strongly-read tags (so
// transitions are detected quickly).
type AdaptiveSmoother struct {
	// MinWindow and MaxWindow bound the adaptive window, seconds.
	MinWindow, MaxWindow float64
	// Slack multiplies the smoothed inter-read interval to get the window.
	Slack float64

	open     map[sightingKey]*Sighting
	interval map[sightingKey]float64 // EWMA of inter-read gaps
}

var _ Smoother = (*AdaptiveSmoother)(nil)

// NewAdaptiveSmoother returns an adaptive smoother with sane defaults for
// portal traffic.
func NewAdaptiveSmoother() *AdaptiveSmoother {
	return &AdaptiveSmoother{
		MinWindow: 0.5,
		MaxWindow: 10,
		Slack:     3,
		open:      make(map[sightingKey]*Sighting),
		interval:  make(map[sightingKey]float64),
	}
}

// windowFor returns the current window for a tag.
func (s *AdaptiveSmoother) windowFor(k sightingKey) float64 {
	iv, ok := s.interval[k]
	if !ok || iv <= 0 {
		return s.MaxWindow // no estimate yet: be generous
	}
	w := iv * s.Slack
	if w < s.MinWindow {
		w = s.MinWindow
	}
	if w > s.MaxWindow {
		w = s.MaxWindow
	}
	return w
}

// Observe implements Smoother.
func (s *AdaptiveSmoother) Observe(ev Event) []Sighting {
	var closed []Sighting
	for k, open := range s.open {
		if ev.Time-open.Last > s.windowFor(k) {
			closed = append(closed, *open)
			delete(s.open, k)
		}
	}
	k := sightingKey{ev.EPC, ev.Location}
	if open, ok := s.open[k]; ok {
		gap := ev.Time - open.Last
		const alpha = 0.3
		if prev, ok := s.interval[k]; ok {
			s.interval[k] = (1-alpha)*prev + alpha*gap
		} else {
			s.interval[k] = gap
		}
		open.Last = ev.Time
		open.Reads++
	} else {
		s.open[k] = &Sighting{
			EPC: ev.EPC, Location: ev.Location,
			First: ev.Time, Last: ev.Time, Reads: 1,
		}
	}
	sortSightings(closed)
	return closed
}

// Flush implements Smoother.
func (s *AdaptiveSmoother) Flush(float64) []Sighting {
	var closed []Sighting
	for k, open := range s.open {
		closed = append(closed, *open)
		delete(s.open, k)
	}
	sortSightings(closed)
	return closed
}

func sortSightings(ss []Sighting) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].First != ss[j].First {
			return ss[i].First < ss[j].First
		}
		if ss[i].EPC != ss[j].EPC {
			return ss[i].EPC.Hex() < ss[j].EPC.Hex()
		}
		return ss[i].Location < ss[j].Location
	})
}

// Location is a tag's tracked position.
type Location struct {
	Name  string
	Since float64
}

// Store is the in-memory tracking database: last known location plus full
// sighting history per tag. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	last    map[epc.Code]Location
	history map[epc.Code][]Sighting
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		last:    make(map[epc.Code]Location),
		history: make(map[epc.Code][]Sighting),
	}
}

// Apply records a closed sighting.
func (s *Store) Apply(sight Sighting) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.last[sight.EPC]
	if !ok || sight.Last >= cur.Since {
		s.last[sight.EPC] = Location{Name: sight.Location, Since: sight.Last}
	}
	s.history[sight.EPC] = append(s.history[sight.EPC], sight)
}

// Seen reports whether the store has ever recorded a sighting of the tag
// — the membership test behind the tracking API's 404 for unknown EPCs.
func (s *Store) Seen(code epc.Code) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.last[code]
	return ok
}

// LocationOf returns the last known location of a tag.
func (s *Store) LocationOf(code epc.Code) (Location, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.last[code]
	return loc, ok
}

// History returns a copy of a tag's sighting history, oldest first.
func (s *Store) History(code epc.Code) []Sighting {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := append([]Sighting(nil), s.history[code]...)
	sortSightings(h)
	return h
}

// Tags returns every tag the store has seen, sorted by EPC.
func (s *Store) Tags() []epc.Code {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]epc.Code, 0, len(s.last))
	for c := range s.last {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hex() < out[j].Hex() })
	return out
}

// Rule is a predicate/action pair evaluated on every closed sighting —
// the paper's "opening a door, setting off an alarm".
type Rule struct {
	Name   string
	Match  func(Sighting) bool
	Action func(Sighting)
}

// Pipeline wires smoothing, storage and rules together.
type Pipeline struct {
	mu       sync.Mutex
	smoother Smoother
	store    *Store
	rules    []Rule
}

// NewPipeline builds a pipeline. A nil smoother defaults to a 2 s fixed
// window.
func NewPipeline(s Smoother) *Pipeline {
	if s == nil {
		s = NewWindowSmoother(2)
	}
	return &Pipeline{smoother: s, store: NewStore()}
}

// Store exposes the tracking database.
func (p *Pipeline) Store() *Store { return p.store }

// AddRule registers a rule; rules run in registration order.
func (p *Pipeline) AddRule(r Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, r)
}

// Ingest processes one raw event and returns any sightings it closed
// (after applying them to the store and running rules).
func (p *Pipeline) Ingest(ev Event) []Sighting {
	p.mu.Lock()
	closed := p.smoother.Observe(ev)
	rules := append([]Rule(nil), p.rules...)
	p.mu.Unlock()
	p.commit(closed, rules)
	return closed
}

// Flush closes all open sightings as of now.
func (p *Pipeline) Flush(now float64) []Sighting {
	p.mu.Lock()
	closed := p.smoother.Flush(now)
	rules := append([]Rule(nil), p.rules...)
	p.mu.Unlock()
	p.commit(closed, rules)
	return closed
}

func (p *Pipeline) commit(closed []Sighting, rules []Rule) {
	for _, s := range closed {
		p.store.Apply(s)
		for _, r := range rules {
			if r.Match == nil || r.Match(s) {
				if r.Action != nil {
					r.Action(s)
				}
			}
		}
	}
}
