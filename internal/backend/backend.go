// Package backend implements the paper's "back-end system … with edge
// servers, application servers, and databases": read-event ingestion,
// smoothing/deduplication of the raw read stream into presence sightings,
// an in-memory tracking store, and the rule hooks ("the logic can be as
// simple as opening a door, setting off an alarm, updating a database").
//
// It also implements the related-work cleaning baselines the paper cites:
// an adaptive (SMURF-style) smoothing window [Jeffery et al., VLDB'06] and
// the route/accompany constraint correction of Inoue et al. [ARES'06] —
// the data-level alternatives to the paper's physical redundancy.
//
// The package is built for fleet-scale ingestion (DESIGN.md §11): both the
// tracking Store and the cleaning Pipeline are EPC-hash-sharded with one
// lock per shard, events are ingested in batches routed shard-wise
// (IngestBatch), and the steady-state ingest path performs no allocations
// — smoothers reuse closed-sighting scratch and a Sighting freelist, the
// batch router reuses per-shard buffers, and lapse detection is amortized
// O(1) per event via an expiry-ordered sweep instead of a scan over every
// open sighting.
package backend

import (
	"sort"

	"rfidtrack/internal/epc"
)

// Event is one raw tag observation as delivered by a reader. Times are
// seconds on the deployment's clock.
type Event struct {
	EPC      epc.Code
	Location string // the portal/reader that saw the tag
	Antenna  string
	Time     float64
}

// Sighting is a smoothed presence interval: "this tag was at this portal
// from First to Last". Inferred marks sightings reconstructed by
// constraint cleaning rather than observed.
type Sighting struct {
	EPC      epc.Code
	Location string
	First    float64
	Last     float64
	Reads    int
	Inferred bool
}

type sightingKey struct {
	code epc.Code
	loc  string
}

// sightingLess is the canonical sighting order: first-seen time, then EPC
// (bytewise — identical to hex order), then location.
func sightingLess(a, b *Sighting) bool {
	if a.First != b.First {
		return a.First < b.First
	}
	if c := a.EPC.Compare(b.EPC); c != 0 {
		return c < 0
	}
	return a.Location < b.Location
}

func sortSightings(ss []Sighting) { sortSightingsTail(ss, 0) }

// sortSightingsTail sorts ss[from:] in place. Small tails — the closed
// set of one observation, almost always zero or one sightings — use an
// insertion sort so the ingest hot path never pays sort.Slice's closure
// allocation; large tails (flushes) fall back to sort.Slice.
func sortSightingsTail(ss []Sighting, from int) {
	if len(ss)-from > 16 {
		tail := ss[from:]
		sort.Slice(tail, func(i, j int) bool { return sightingLess(&tail[i], &tail[j]) })
		return
	}
	for i := from + 1; i < len(ss); i++ {
		for j := i; j > from && sightingLess(&ss[j], &ss[j-1]); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
