package redundancy

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestCombinedPaperExamples(t *testing.T) {
	// Values computable from the paper's Table 2 singles, as they appear
	// in the R_C columns of Tables 4 and 5.
	tests := []struct {
		ps   []float64
		want float64
	}{
		{[]float64{0.75, 0.75}, 0.9375},               // 2 tags front/back, 1 subject -> 94%
		{[]float64{0.9, 0.1}, 0.91},                   // 2 tags on the sides -> 91%
		{[]float64{0.9, 0.9}, 0.99},                   // closer subject, 2 F/B tags -> 99%
		{[]float64{0.5, 0.5}, 0.75},                   // farther subject, 2 F/B tags -> 75%
		{[]float64{0.75, 0.75, 0.9, 0.1}, 0.99437500}, // 4 tags, 1 subject -> 99.5%
	}
	for _, tt := range tests {
		if got := Combined(tt.ps...); !almost(got, tt.want) {
			t.Errorf("Combined(%v) = %v, want %v", tt.ps, got, tt.want)
		}
	}
}

func TestCombinedEdgeCases(t *testing.T) {
	if Combined() != 0 {
		t.Error("no opportunities should mean zero reliability")
	}
	if Combined(1, 0, 0.5) != 1 {
		t.Error("a perfect opportunity dominates")
	}
	if Combined(0, 0, 0) != 0 {
		t.Error("all-zero should be zero")
	}
	// Clamping.
	if Combined(-5) != 0 || Combined(7) != 1 {
		t.Error("clamping broken")
	}
}

func TestCombinedProperties(t *testing.T) {
	// Monotone: adding an opportunity never hurts; result bounded by [max p, 1].
	f := func(raw []float64, extra float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, p := range raw {
			ps = append(ps, math.Abs(math.Mod(p, 1)))
		}
		base := Combined(ps...)
		e := math.Abs(math.Mod(extra, 1))
		grown := Combined(append(ps, e)...)
		if grown < base-1e-12 || grown > 1 {
			return false
		}
		for _, p := range ps {
			if base < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpportunities(t *testing.T) {
	table := map[string]map[string]float64{
		"front": {"a1": 0.9, "a2": 0.8},
		"side":  {"a1": 0.7},
	}
	ops := Opportunities(table)
	if len(ops) != 3 {
		t.Fatalf("got %d opportunities", len(ops))
	}
	// Sorted by tag then antenna.
	if ops[0].Label() != "front@a1" || ops[1].Label() != "front@a2" || ops[2].Label() != "side@a1" {
		t.Errorf("order: %v %v %v", ops[0].Label(), ops[1].Label(), ops[2].Label())
	}
	got := CombinedOpportunities(ops)
	want := Combined(0.9, 0.8, 0.7)
	if !almost(got, want) {
		t.Errorf("CombinedOpportunities = %v, want %v", got, want)
	}
}

func TestMinOpportunities(t *testing.T) {
	tests := []struct {
		p, target float64
		want      int
	}{
		{0.63, 0.99, 5}, // the paper's human-tracking average
		{0.63, 0.95, 4}, // "virtually 100% with four tags"
		{0.8, 0.97, 3},  // object tracking: 2 tags reach 96%, 3 reach 99.2%
		{0.5, 0.75, 2},
		{0.9, 0.9, 1},
		{1, 0.999, 1},
		{0.5, 0, 0},
		{0, 0.5, -1}, // unreachable
		{0.5, 1, -1}, // unreachable
		{0.5, -3, 0}, // clamped target
	}
	for _, tt := range tests {
		if got := MinOpportunities(tt.p, tt.target); got != tt.want {
			t.Errorf("MinOpportunities(%v, %v) = %d, want %d", tt.p, tt.target, got, tt.want)
		}
	}
}

func TestMinOpportunitiesSufficiencyProperty(t *testing.T) {
	f := func(pr, tr float64) bool {
		p := 0.05 + 0.9*math.Abs(math.Mod(pr, 1))
		target := 0.05 + 0.9*math.Abs(math.Mod(tr, 1))
		n := MinOpportunities(p, target)
		if n < 1 {
			return false
		}
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = p
		}
		if Combined(ps...) < target-1e-9 {
			return false // n opportunities must suffice
		}
		if n > 1 {
			// n-1 must not suffice (minimality).
			if Combined(ps[:n-1]...) >= target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGap(t *testing.T) {
	// Independent opportunities: measured matches computed, gap ~ 0.
	if g := Gap(0.9375, 0.75, 0.75); !almost(g, 0) {
		t.Errorf("independent gap = %v", g)
	}
	// Correlated failures (the paper's 2-antenna object case: measured 86%
	// vs computed 96%): positive gap.
	if g := Gap(0.86, 0.8, 0.8); g < 0.09 {
		t.Errorf("correlated gap = %v, want ~0.1", g)
	}
}
