// Package redundancy implements the paper's analytical model for composite
// read opportunities (Section 4):
//
//	R_C = 1 − (1−P_1)(1−P_2)…(1−P_n)
//
// where each P_i is the measured reliability of one (tag, antenna) read
// opportunity, assumed independent — plus planning helpers built on it
// (how many opportunities a target reliability needs, and comparison of
// measured vs. computed reliability, whose gap exposes correlated
// failures).
package redundancy

import (
	"fmt"
	"math"
	"sort"
)

// Opportunity is one (tag, antenna) combination together with its
// single-opportunity reliability.
type Opportunity struct {
	Tag     string
	Antenna string
	P       float64
}

// Label renders the opportunity for reports.
func (o Opportunity) Label() string { return fmt.Sprintf("%s@%s", o.Tag, o.Antenna) }

// Combined returns the paper's R_C for a set of independent opportunity
// reliabilities. Values are clamped to [0, 1].
func Combined(ps ...float64) float64 {
	miss := 1.0
	for _, p := range ps {
		p = clamp01(p)
		miss *= 1 - p
	}
	return 1 - miss
}

// CombinedOpportunities is Combined over a slice of Opportunities.
func CombinedOpportunities(ops []Opportunity) float64 {
	miss := 1.0
	for _, o := range ops {
		miss *= 1 - clamp01(o.P)
	}
	return 1 - miss
}

// Opportunities enumerates every (tag, antenna) combination from a
// per-tag-per-antenna reliability table: the paper's definition "every
// combination of tag and antenna in the same area is a read opportunity".
func Opportunities(perTagAntenna map[string]map[string]float64) []Opportunity {
	var out []Opportunity
	for tag, m := range perTagAntenna {
		for ant, p := range m {
			out = append(out, Opportunity{Tag: tag, Antenna: ant, P: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tag != out[j].Tag {
			return out[i].Tag < out[j].Tag
		}
		return out[i].Antenna < out[j].Antenna
	})
	return out
}

// MinOpportunities returns the smallest number of independent
// opportunities of reliability p needed to reach the target reliability.
// It returns 0 for a non-positive target and -1 when the target is
// unreachable (p <= 0 or target >= 1 with p < 1).
func MinOpportunities(p, target float64) int {
	target = clamp01(target)
	if target == 0 {
		return 0
	}
	p = clamp01(p)
	if p == 0 {
		return -1
	}
	if p == 1 {
		return 1
	}
	if target == 1 {
		return -1
	}
	// 1-(1-p)^n >= target  =>  n >= log(1-target)/log(1-p)
	n := math.Log(1-target) / math.Log(1-p)
	return int(math.Ceil(n - 1e-12))
}

// Gap quantifies how far a measured composite reliability falls short of
// the independence model: positive when correlated failures are present
// (the paper's antenna-redundancy case), near zero when opportunities
// really are independent (the tag-redundancy case).
func Gap(measured float64, ps ...float64) float64 {
	return Combined(ps...) - measured
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
