package redundancy

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Planning errors.
var (
	// ErrUnreachable is returned when no candidate subset reaches the
	// target reliability.
	ErrUnreachable = errors.New("redundancy: target reliability unreachable")
	// ErrBadCandidate is returned for malformed candidates.
	ErrBadCandidate = errors.New("redundancy: invalid candidate")
)

// Candidate is one possible read opportunity to buy: a tag location (or
// an extra antenna) with its measured single reliability and its cost in
// whatever unit the deployment cares about (tag price, placement labor).
type Candidate struct {
	Name string
	P    float64
	Cost float64
}

// Plan is a chosen set of candidates.
type Plan struct {
	Chosen      []Candidate
	Reliability float64
	Cost        float64
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	names := make([]string, len(p.Chosen))
	for i, c := range p.Chosen {
		names[i] = c.Name
	}
	return fmt.Sprintf("%v -> %.2f%% for %.2f", names, 100*p.Reliability, p.Cost)
}

// PlanPlacement finds the cheapest subset of candidates whose combined
// independent reliability reaches target, using at most maxPicks
// candidates (0 = no limit). Each candidate may be used once — two tags
// in the same spot are not independent. Exhaustive branch-and-bound:
// candidate counts in real deployments are small (a box has six faces).
func PlanPlacement(candidates []Candidate, target float64, maxPicks int) (Plan, error) {
	if target <= 0 {
		return Plan{}, nil
	}
	if target >= 1 {
		return Plan{}, fmt.Errorf("%w: target 1.0 needs a perfect opportunity", ErrUnreachable)
	}
	for _, c := range candidates {
		if c.P < 0 || c.P > 1 {
			return Plan{}, fmt.Errorf("%w: %s has reliability %v", ErrBadCandidate, c.Name, c.P)
		}
		if c.Cost < 0 {
			return Plan{}, fmt.Errorf("%w: %s has negative cost", ErrBadCandidate, c.Name)
		}
	}
	if maxPicks <= 0 || maxPicks > len(candidates) {
		maxPicks = len(candidates)
	}
	// Work in log space: each candidate contributes gain_i = -ln(1-p_i);
	// the target needs total gain >= need.
	need := -math.Log(1 - target)
	type item struct {
		c    Candidate
		gain float64
	}
	items := make([]item, 0, len(candidates))
	for _, c := range candidates {
		g := math.Inf(1)
		if c.P < 1 {
			g = -math.Log(1 - c.P)
		}
		items = append(items, item{c: c, gain: g})
	}
	// Sort by gain density so branch-and-bound prunes early; zero-cost
	// candidates sort first.
	sort.Slice(items, func(i, j int) bool {
		di := density(items[i].gain, items[i].c.Cost)
		dj := density(items[j].gain, items[j].c.Cost)
		if di != dj {
			return di > dj
		}
		return items[i].c.Cost < items[j].c.Cost
	})
	// Suffix sums of remaining achievable gain for pruning.
	suffixGain := make([]float64, len(items)+1)
	for i := len(items) - 1; i >= 0; i-- {
		suffixGain[i] = suffixGain[i+1] + items[i].gain
	}

	best := Plan{Cost: math.Inf(1)}
	var chosen []int
	var dfs func(i int, gain, cost float64)
	dfs = func(i int, gain, cost float64) {
		if gain >= need-1e-12 {
			if cost < best.Cost || (cost == best.Cost && len(chosen) < len(best.Chosen)) {
				best = Plan{Cost: cost}
				for _, idx := range chosen {
					best.Chosen = append(best.Chosen, items[idx].c)
				}
			}
			return
		}
		if i >= len(items) || len(chosen) >= maxPicks {
			return
		}
		if cost > best.Cost {
			// Strictly worse than the incumbent. Equal cost must keep
			// searching: a completion through free candidates can tie the
			// incumbent's cost with fewer picks, and the tie-break above
			// prefers it.
			return
		}
		if gain+suffixGain[i] < need-1e-12 {
			return // even taking everything left cannot reach the target
		}
		// Take items[i].
		chosen = append(chosen, i)
		dfs(i+1, gain+items[i].gain, cost+items[i].c.Cost)
		chosen = chosen[:len(chosen)-1]
		// Skip items[i].
		dfs(i+1, gain, cost)
	}
	dfs(0, 0, 0)

	if math.IsInf(best.Cost, 1) {
		gains := make([]float64, len(items))
		for i, it := range items {
			gains[i] = it.gain
		}
		return Plan{}, fmt.Errorf("%w: best achievable is %.2f%%",
			ErrUnreachable, 100*bestAchievable(gains, maxPicks))
	}
	ps := make([]float64, len(best.Chosen))
	for i, c := range best.Chosen {
		ps[i] = c.P
	}
	best.Reliability = Combined(ps...)
	return best, nil
}

func density(gain, cost float64) float64 {
	if cost <= 0 {
		return math.Inf(1)
	}
	return gain / cost
}

// bestAchievable returns the highest reliability any allowed subset gives
// (the top-gain maxPicks candidates).
func bestAchievable(gains []float64, maxPicks int) float64 {
	gains = append([]float64(nil), gains...)
	sort.Sort(sort.Reverse(sort.Float64Slice(gains)))
	var total float64
	for i := 0; i < len(gains) && i < maxPicks; i++ {
		total += gains[i]
	}
	return 1 - math.Exp(-total)
}
