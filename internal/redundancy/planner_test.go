package redundancy

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// paperBox is the paper's Table 1 as a candidate pool with unit costs.
func paperBox() []Candidate {
	return []Candidate{
		{Name: "front", P: 0.87, Cost: 1},
		{Name: "back", P: 0.87, Cost: 1},
		{Name: "side-closer", P: 0.83, Cost: 1},
		{Name: "side-farther", P: 0.63, Cost: 1},
		{Name: "top", P: 0.29, Cost: 1},
		{Name: "bottom", P: 0.29, Cost: 1},
	}
}

func TestPlanPicksBestLocationsFirst(t *testing.T) {
	// With unit costs, hitting 97% needs the two best faces — exactly the
	// paper's "two tags instead of one: 80% -> 97%".
	plan, err := PlanPlacement(paperBox(), 0.97, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 2 {
		t.Fatalf("plan used %d tags, want 2: %v", len(plan.Chosen), plan)
	}
	for _, c := range plan.Chosen {
		if c.P < 0.83 {
			t.Errorf("plan picked a weak location: %v", plan)
		}
	}
	if plan.Reliability < 0.97 {
		t.Errorf("plan reliability %v below target", plan.Reliability)
	}
	if plan.Cost != 2 {
		t.Errorf("plan cost = %v", plan.Cost)
	}
}

func TestPlanRespectsCosts(t *testing.T) {
	// A cheap mediocre pair can beat one expensive good tag.
	candidates := []Candidate{
		{Name: "premium", P: 0.95, Cost: 10},
		{Name: "cheap-a", P: 0.80, Cost: 1},
		{Name: "cheap-b", P: 0.80, Cost: 1},
	}
	plan, err := PlanPlacement(candidates, 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two cheap tags: 1-(0.2)^2 = 96% ≥ 95% at cost 2, beating cost 10.
	if plan.Cost != 2 || len(plan.Chosen) != 2 {
		t.Errorf("plan = %v, want the two cheap tags", plan)
	}
}

func TestPlanMaxPicks(t *testing.T) {
	// Capped at one tag, only the premium one reaches the target.
	candidates := []Candidate{
		{Name: "premium", P: 0.95, Cost: 10},
		{Name: "cheap-a", P: 0.80, Cost: 1},
		{Name: "cheap-b", P: 0.80, Cost: 1},
	}
	plan, err := PlanPlacement(candidates, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 1 || plan.Chosen[0].Name != "premium" {
		t.Errorf("plan = %v", plan)
	}
}

func TestPlanUnreachable(t *testing.T) {
	_, err := PlanPlacement(paperBox(), 0.9999999999, 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
	// Degenerate pools.
	if _, err := PlanPlacement(nil, 0.5, 0); !errors.Is(err, ErrUnreachable) {
		t.Errorf("empty pool err = %v", err)
	}
	// A perfect candidate makes even target→1 awkward; targets of exactly
	// 1 are rejected outright.
	if _, err := PlanPlacement(paperBox(), 1, 0); !errors.Is(err, ErrUnreachable) {
		t.Errorf("target 1 err = %v", err)
	}
}

func TestPlanTrivialTargets(t *testing.T) {
	plan, err := PlanPlacement(paperBox(), 0, 0)
	if err != nil || len(plan.Chosen) != 0 {
		t.Errorf("zero target plan = %v, %v", plan, err)
	}
	plan, err = PlanPlacement(paperBox(), -1, 0)
	if err != nil || len(plan.Chosen) != 0 {
		t.Errorf("negative target plan = %v, %v", plan, err)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := PlanPlacement([]Candidate{{Name: "x", P: 1.5}}, 0.5, 0); !errors.Is(err, ErrBadCandidate) {
		t.Error("bad reliability accepted")
	}
	if _, err := PlanPlacement([]Candidate{{Name: "x", P: 0.5, Cost: -1}}, 0.4, 0); !errors.Is(err, ErrBadCandidate) {
		t.Error("negative cost accepted")
	}
}

func TestPlanPerfectCandidate(t *testing.T) {
	plan, err := PlanPlacement([]Candidate{
		{Name: "perfect", P: 1, Cost: 5},
		{Name: "meh", P: 0.5, Cost: 1},
	}, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 1 || plan.Chosen[0].Name != "perfect" {
		t.Errorf("plan = %v", plan)
	}
	if plan.Reliability != 1 {
		t.Errorf("reliability = %v", plan.Reliability)
	}
}

func TestPlanString(t *testing.T) {
	plan, err := PlanPlacement(paperBox(), 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "front") && !strings.Contains(s, "back") {
		t.Errorf("plan string = %q", s)
	}
}

func TestPlanZeroCostTieBreakPrefersFewerPicks(t *testing.T) {
	// All candidates are free, so every reaching plan ties on cost and the
	// documented tie-break — fewer picks at equal cost — must decide. A
	// prune at cost >= incumbent kills every sibling branch the moment the
	// first zero-cost plan lands, so the single-tag plan below is only
	// found if equal-cost nodes keep searching.
	candidates := []Candidate{
		{Name: "weak-1", P: 0.5, Cost: 0},
		{Name: "weak-2", P: 0.5, Cost: 0},
		{Name: "weak-3", P: 0.5, Cost: 0},
		{Name: "strong", P: 0.9, Cost: 0},
	}
	// Three weaks combine to 0.875 >= 0.87; strong alone reaches 0.9.
	plan, err := PlanPlacement(candidates, 0.87, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 0 {
		t.Errorf("plan cost = %v, want 0", plan.Cost)
	}
	if len(plan.Chosen) != 1 || plan.Chosen[0].Name != "strong" {
		t.Errorf("plan = %v, want the single strong candidate", plan)
	}
}

func TestPlanEqualCostTieBreakThroughFreeCompletion(t *testing.T) {
	// Mixed costs: the two-pick plan {paid, free} ties the incumbent
	// three-pick plan's cost, but its path passes through a node at
	// exactly the incumbent cost before taking the free candidate — the
	// spot the old >= prune cut off.
	candidates := []Candidate{
		{Name: "cheap-1", P: 0.6, Cost: 1},
		{Name: "cheap-2", P: 0.6, Cost: 1},
		{Name: "cheap-3", P: 0.6, Cost: 1},
		{Name: "paid", P: 0.9, Cost: 3},
		{Name: "free", P: 0.3, Cost: 0},
	}
	// {cheap×3}: 0.936, cost 3. {paid, free}: 0.93, cost 3, fewer picks.
	// {paid} alone: 0.9 < target. {free, cheap×2}: 0.888 < target.
	plan, err := PlanPlacement(candidates, 0.92, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 3 {
		t.Errorf("plan cost = %v, want 3", plan.Cost)
	}
	if len(plan.Chosen) != 2 {
		t.Errorf("plan = %v, want the two-pick equal-cost plan", plan)
	}
}

func TestPlanOptimalityAgainstBruteForce(t *testing.T) {
	f := func(ps [6]uint8, costs [6]uint8, targetRaw uint8) bool {
		candidates := make([]Candidate, 6)
		for i := range candidates {
			candidates[i] = Candidate{
				Name: string(rune('a' + i)),
				P:    float64(ps[i]%99) / 100,
				Cost: float64(costs[i]%9) + 1,
			}
		}
		target := float64(targetRaw%95) / 100
		plan, err := PlanPlacement(candidates, target, 0)

		// Brute force over all 64 subsets, with the same epsilon the
		// planner's log-space comparison implies (1-(1-p) loses a few ulps,
		// e.g. Combined(0.21) = 0.20999999999999996 for target 0.21).
		const eps = 1e-9
		bestCost := math.Inf(1)
		reachable := false
		for mask := 0; mask < 64; mask++ {
			var pvals []float64
			cost := 0.0
			for i := 0; i < 6; i++ {
				if mask>>i&1 == 1 {
					pvals = append(pvals, candidates[i].P)
					cost += candidates[i].Cost
				}
			}
			if Combined(pvals...) >= target-eps || target <= 0 {
				reachable = true
				if cost < bestCost {
					bestCost = cost
				}
			}
		}
		if !reachable {
			return errors.Is(err, ErrUnreachable)
		}
		if err != nil {
			return false
		}
		// The plan must reach the target (within eps) and never cost more
		// than the brute-force optimum.
		return plan.Reliability >= target-eps && plan.Cost <= bestCost+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
