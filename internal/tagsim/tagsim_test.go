package tagsim

import (
	"testing"
	"testing/quick"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/xrand"
)

func newTag(t *testing.T, label string) *Tag {
	t.Helper()
	code, err := epc.GID96{Manager: 1, Class: 2, Serial: 3}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return New(code, xrand.New(7).Split(label))
}

// singulate drives a full successful exchange for a lone tag and returns
// the EPC reply.
func singulate(t *testing.T, tag *Tag, now float64) Reply {
	t.Helper()
	tag.SetPower(true, now)
	// Q=0: the lone tag must answer the Query immediately.
	r, ok := tag.Query(S0, FlagA, 0, now)
	if !ok {
		t.Fatal("lone tag with Q=0 did not reply to Query")
	}
	er, ok := tag.ACK(r.RN16)
	if !ok || !er.HasEPC {
		t.Fatal("ACK with correct RN16 did not yield EPC")
	}
	return er
}

func TestSingulationHappyPath(t *testing.T) {
	tag := newTag(t, "happy")
	er := singulate(t, tag, 0)
	if er.Code != tag.EPC() {
		t.Errorf("EPC reply = %v, want %v", er.Code, tag.EPC())
	}
	if er.PC != tag.PC() || er.PC>>11 != 6 {
		t.Errorf("PC word = %#x, want EPC length 6 words", er.PC)
	}
	if tag.State() != StateAcknowledged {
		t.Errorf("state = %v, want acknowledged", tag.State())
	}
	// The following QueryRep commits the inventory: flag toggles to B and
	// the tag stops participating in A-targeted rounds.
	if _, ok := tag.QueryRep(S0, 0.01); ok {
		t.Error("acknowledged tag should not reply to QueryRep")
	}
	if got := tag.Flag(S0, 0.01); got != FlagB {
		t.Errorf("flag after commit = %v, want B", got)
	}
	if _, ok := tag.Query(S0, FlagA, 0, 0.02); ok {
		t.Error("inventoried tag replied to A-targeted Query")
	}
	if _, ok := tag.Query(S0, FlagB, 0, 0.03); !ok {
		t.Error("inventoried tag should reply to B-targeted Query")
	}
}

func TestUnpoweredTagIsSilent(t *testing.T) {
	tag := newTag(t, "dark")
	if _, ok := tag.Query(S0, FlagA, 0, 0); ok {
		t.Error("unpowered tag replied")
	}
	if _, ok := tag.QueryRep(S0, 0); ok {
		t.Error("unpowered tag replied to QueryRep")
	}
	if _, ok := tag.ACK(0); ok {
		t.Error("unpowered tag replied to ACK")
	}
}

func TestSlotCountdown(t *testing.T) {
	tag := newTag(t, "slots")
	tag.SetPower(true, 0)
	// With a large Q the tag almost surely draws a nonzero slot; drive
	// QueryReps until it replies and check it happens within the window.
	_, ok := tag.Query(S0, FlagA, 8, 0)
	replies := 0
	if ok {
		replies++
	}
	steps := 0
	for replies == 0 && steps < 1<<9 {
		steps++
		if _, ok := tag.QueryRep(S0, 0); ok {
			replies++
		}
	}
	if replies == 0 {
		t.Fatal("tag never replied within 2^9 QueryReps")
	}
	if tag.State() != StateReply {
		t.Errorf("state = %v, want reply", tag.State())
	}
}

func TestWrongSessionIgnored(t *testing.T) {
	tag := newTag(t, "sess")
	tag.SetPower(true, 0)
	tag.Query(S2, FlagA, 4, 0)
	if _, ok := tag.QueryRep(S1, 0); ok {
		t.Error("tag answered QueryRep for a session it is not in")
	}
	if _, ok := tag.QueryAdjust(S3, 2, 0); ok {
		t.Error("tag answered QueryAdjust for a session it is not in")
	}
}

func TestWrongRN16(t *testing.T) {
	tag := newTag(t, "rn16")
	tag.SetPower(true, 0)
	r, ok := tag.Query(S0, FlagA, 0, 0)
	if !ok {
		t.Fatal("no reply")
	}
	if _, ok := tag.ACK(r.RN16 + 1); ok {
		t.Error("tag accepted a wrong RN16")
	}
	if tag.State() != StateArbitrate {
		t.Errorf("state after foreign ACK = %v, want arbitrate", tag.State())
	}
}

func TestUnacknowledgedReplyBacksOff(t *testing.T) {
	tag := newTag(t, "backoff")
	tag.SetPower(true, 0)
	// Drive until the first reply in a Q=3 round.
	replied := false
	if _, ok := tag.Query(S0, FlagA, 3, 0); ok {
		replied = true
	}
	for i := 0; !replied && i < 8; i++ {
		if _, ok := tag.QueryRep(S0, 0); ok {
			replied = true
		}
	}
	if !replied {
		t.Fatal("tag never replied in the round")
	}
	// Reader moves on without ACK (collision). The tag must rejoin the
	// round — i.e. reply again within the next window — and must not count
	// itself inventoried.
	rejoined := false
	for i := 0; i < 16; i++ {
		if _, ok := tag.QueryRep(S0, 0); ok {
			rejoined = true
			break
		}
	}
	if !rejoined {
		t.Error("skipped tag never rejoined the round")
	}
	if got := tag.Flag(S0, 0); got != FlagA {
		t.Errorf("flag = %v, want A (not inventoried)", got)
	}
}

func TestNAK(t *testing.T) {
	tag := newTag(t, "nak")
	tag.SetPower(true, 0)
	r, _ := tag.Query(S0, FlagA, 0, 0)
	tag.ACK(r.RN16)
	tag.NAK()
	if tag.State() != StateArbitrate {
		t.Errorf("state after NAK = %v, want arbitrate", tag.State())
	}
	if got := tag.Flag(S0, 0); got != FlagA {
		t.Errorf("flag after NAK = %v, want A", got)
	}
}

func TestQueryAdjustRedraw(t *testing.T) {
	tag := newTag(t, "adjust")
	tag.SetPower(true, 0)
	tag.Query(S0, FlagA, 8, 0)
	// Adjust down to Q=0: every participating tag must reply at once.
	if _, ok := tag.QueryAdjust(S0, 0, 0); !ok {
		t.Error("tag did not reply after QueryAdjust to Q=0")
	}
}

func TestS0FlagResetsOnPowerLoss(t *testing.T) {
	tag := newTag(t, "s0")
	singulate(t, tag, 0)
	tag.QueryRep(S0, 0.01) // commit
	tag.SetPower(false, 1)
	tag.SetPower(true, 1.001)
	if got := tag.Flag(S0, 1.001); got != FlagA {
		t.Errorf("S0 flag after power cycle = %v, want A", got)
	}
}

func TestS1FlagDecaysOnTimer(t *testing.T) {
	tag := newTag(t, "s1")
	tag.SetPower(true, 0)
	r, _ := tag.Query(S1, FlagA, 0, 0)
	tag.ACK(r.RN16)
	tag.QueryRep(S1, 0.01)
	if got := tag.Flag(S1, 0.02); got != FlagB {
		t.Fatalf("flag right after commit = %v, want B", got)
	}
	// Still B inside the persistence window, even while powered.
	if got := tag.Flag(S1, 1.5); got != FlagB {
		t.Errorf("flag at 1.5s = %v, want B", got)
	}
	// Decays after S1Decay (2s default) regardless of power.
	if got := tag.Flag(S1, 2.5); got != FlagA {
		t.Errorf("flag at 2.5s = %v, want A", got)
	}
}

func TestS2FlagSurvivesShortPowerGap(t *testing.T) {
	tag := newTag(t, "s2")
	tag.SetPower(true, 0)
	r, _ := tag.Query(S2, FlagA, 0, 0)
	tag.ACK(r.RN16)
	tag.QueryRep(S2, 0.01)
	tag.SetPower(false, 0.02)
	tag.SetPower(true, 0.5) // short gap: survives
	if got := tag.Flag(S2, 0.5); got != FlagB {
		t.Errorf("S2 flag after short gap = %v, want B", got)
	}
	tag.SetPower(false, 1)
	tag.SetPower(true, 4) // long gap: decays
	if got := tag.Flag(S2, 4); got != FlagA {
		t.Errorf("S2 flag after long gap = %v, want A", got)
	}
}

func TestKill(t *testing.T) {
	tag := newTag(t, "kill")
	tag.SetPower(true, 0)
	tag.Kill()
	if !tag.Killed() || tag.State() != StateKilled {
		t.Error("kill did not take")
	}
	tag.SetPower(true, 1)
	if tag.Powered() {
		t.Error("killed tag claims to be powered")
	}
	if _, ok := tag.Query(S0, FlagA, 0, 1); ok {
		t.Error("killed tag replied")
	}
}

func TestStateStrings(t *testing.T) {
	states := map[State]string{
		StateReady: "ready", StateArbitrate: "arbitrate", StateReply: "reply",
		StateAcknowledged: "acknowledged", StateOpen: "open",
		StateSecured: "secured", StateKilled: "killed", State(42): "state(42)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if S2.String() != "S2" || FlagA.String() != "A" || FlagB.String() != "B" {
		t.Error("session/flag strings broken")
	}
}

func TestSlotDrawWithinWindowProperty(t *testing.T) {
	f := func(seed uint64, q uint8) bool {
		q = q % 16
		tag := New(epc.Code{}, xrand.New(seed))
		tag.SetPower(true, 0)
		tag.Query(S0, FlagA, q, 0)
		// The tag is either replying (slot 0) or arbitrating with a slot
		// strictly inside the window.
		switch tag.State() {
		case StateReply:
			return true
		case StateArbitrate:
			return tag.slot < 1<<uint(q)
		default:
			return false
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinSingulationOfMany(t *testing.T) {
	// A population of tags under a fixed-Q round-robin driver must all be
	// inventoried eventually (collisions resolved by backoff).
	parent := xrand.New(99)
	const n = 16
	tags := make([]*Tag, n)
	for i := range tags {
		code, _ := epc.GID96{Manager: 1, Class: 2, Serial: uint64(i)}.Encode()
		tags[i] = New(code, parent.Split("tag/"+string(rune('a'+i))))
		tags[i].SetPower(true, 0)
	}
	read := map[epc.Code]bool{}
	now := 0.0
	for round := 0; round < 60 && len(read) < n; round++ {
		replies := map[int]Reply{}
		for i, tag := range tags {
			if r, ok := tag.Query(S0, FlagA, 4, now); ok {
				replies[i] = r
			}
		}
		for slot := 0; slot < 1<<4; slot++ {
			if len(replies) == 1 {
				for i, r := range replies {
					if er, ok := tags[i].ACK(r.RN16); ok {
						read[er.Code] = true
					}
				}
			}
			// All colliding or missed tags see the next QueryRep.
			replies = map[int]Reply{}
			for i, tag := range tags {
				if r, ok := tag.QueryRep(S0, now); ok {
					replies[i] = r
				}
			}
			now += 0.001
		}
		now += 0.01
	}
	if len(read) != n {
		t.Fatalf("only %d/%d tags inventoried", len(read), n)
	}
}

func TestSetPersistence(t *testing.T) {
	tag := newTag(t, "persist")
	tag.SetPersistence(Persistence{S1Decay: 0.5, S23Unpowered: 0.5})
	tag.SetPower(true, 0)
	r, _ := tag.Query(S1, FlagA, 0, 0)
	tag.ACK(r.RN16)
	tag.QueryRep(S1, 0.01)
	// With the shortened decay the flag is gone by 0.6 s.
	if got := tag.Flag(S1, 0.6); got != FlagA {
		t.Errorf("flag at 0.6s = %v, want decayed to A", got)
	}
}

func TestQueryAdjustCommitsAcknowledged(t *testing.T) {
	tag := newTag(t, "adjcommit")
	tag.SetPower(true, 0)
	r, _ := tag.Query(S0, FlagA, 0, 0)
	tag.ACK(r.RN16)
	// A QueryAdjust arriving while Acknowledged commits the inventory.
	if _, ok := tag.QueryAdjust(S0, 3, 0.01); ok {
		t.Error("acknowledged tag replied to QueryAdjust")
	}
	if got := tag.Flag(S0, 0.02); got != FlagB {
		t.Errorf("flag = %v, want committed to B", got)
	}
	// Unpowered tags ignore QueryAdjust; so do tags in another session.
	tag.SetPower(false, 1)
	if _, ok := tag.QueryAdjust(S0, 3, 1); ok {
		t.Error("unpowered tag replied to QueryAdjust")
	}
}

func TestNAKWhileIdle(t *testing.T) {
	tag := newTag(t, "nakidle")
	// NAK on an unpowered or idle tag is a no-op, not a panic.
	tag.NAK()
	tag.SetPower(true, 0)
	tag.NAK()
	if tag.State() != StateReady {
		t.Errorf("state = %v", tag.State())
	}
}
