// Package tagsim models the protocol side of a passive Gen-2 tag: the
// inventory state machine (Ready / Arbitrate / Reply / Acknowledged / Open
// / Secured / Killed), the four session inventoried flags with their
// persistence classes, the slot counter, and RN16 generation.
//
// The radio side (whether the tag is powered and can hear the reader) is
// resolved by internal/world; this package assumes the caller only invokes
// command handlers for tags that actually received the command.
package tagsim

import (
	"fmt"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/xrand"
)

// State is the Gen-2 tag inventory state.
type State int

// Gen-2 tag states.
const (
	StateReady State = iota
	StateArbitrate
	StateReply
	StateAcknowledged
	StateOpen
	StateSecured
	StateKilled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateArbitrate:
		return "arbitrate"
	case StateReply:
		return "reply"
	case StateAcknowledged:
		return "acknowledged"
	case StateOpen:
		return "open"
	case StateSecured:
		return "secured"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Session identifies one of the four Gen-2 inventory sessions.
type Session int

// Gen-2 sessions. Their inventoried flags persist differently across power
// loss: S0 resets immediately, S1 decays on a timer even while powered,
// S2/S3 survive short power gaps.
const (
	S0 Session = iota
	S1
	S2
	S3
)

// String implements fmt.Stringer.
func (s Session) String() string { return fmt.Sprintf("S%d", int(s)) }

// Flag is a session's inventoried flag value.
type Flag int

// Inventoried flag values.
const (
	FlagA Flag = iota
	FlagB
)

// String implements fmt.Stringer.
func (f Flag) String() string {
	if f == FlagA {
		return "A"
	}
	return "B"
}

// Persistence is the flag persistence configuration. Values follow the
// Gen-2 spec minimums.
type Persistence struct {
	// S1Decay is how long an S1 flag holds before decaying back to A,
	// powered or not.
	S1Decay float64
	// S23Unpowered is how long S2/S3 flags survive without power.
	S23Unpowered float64
}

// DefaultPersistence returns spec-typical values.
func DefaultPersistence() Persistence {
	return Persistence{S1Decay: 2.0, S23Unpowered: 2.0}
}

// Tag is the protocol state of one physical tag. All times are simulation
// seconds. Tag is not safe for concurrent use; the simulator drives each
// tag from a single goroutine.
type Tag struct {
	code epc.Code
	pc   uint16 // protocol-control word backscattered with the EPC
	rng  *xrand.Rand
	base *xrand.Rand
	// passRng is the tag's reusable per-pass stream: ResetForPass reseeds
	// it in place instead of constructing a new stream every pass.
	passRng *xrand.Rand
	persist Persistence

	state   State
	q       uint8
	slot    uint32
	rn16    uint16
	session Session

	powered     bool
	powerLostAt float64

	flags     [4]Flag
	flagSetAt [4]float64
	selected  bool
	killed    bool

	handle uint16
	mem    Memory
}

// New returns a tag carrying the given EPC. The rng should be a dedicated
// sub-stream (e.g. parent.Split("tag/"+name)).
func New(code epc.Code, rng *xrand.Rand) *Tag {
	return &Tag{
		code: code,
		// PC word: EPC length in words (6 for 96 bits) in the top 5 bits.
		pc:      uint16(6) << 11,
		rng:     rng,
		base:    rng,
		persist: DefaultPersistence(),
		mem:     defaultMemory(),
	}
}

// Reset returns the tag to factory state (unpowered, all flags A, state
// Ready) without disturbing its random stream. The experiment harness
// calls this between independent trials; a killed tag stays killed.
func (t *Tag) Reset() {
	if t.killed {
		return
	}
	t.state = StateReady
	t.powered = false
	t.powerLostAt = 0
	t.flags = [4]Flag{}
	t.flagSetAt = [4]float64{}
	t.selected = false
	t.slot = 0
	t.rn16 = 0
}

// ResetForPass is Reset plus a re-keying of the tag's random stream to a
// sub-stream derived from (base stream, pass). It makes each measurement
// pass a pure function of (configuration, seed, pass index) — slot draws no
// longer depend on how many draws earlier passes consumed — which is what
// lets the measurement engine run passes on any worker in any order and
// still merge to bit-identical results (see core.MeasureParallel).
func (t *Tag) ResetForPass(pass int) {
	t.Reset()
	if t.killed {
		return
	}
	seed := t.base.Key().Str("pass/").Int(pass).Seed()
	if t.passRng == nil {
		t.passRng = xrand.New(seed)
	} else {
		t.passRng.Reseed(seed)
	}
	t.rng = t.passRng
}

// Select matches mask against the tag's EPC memory starting at bit
// pointer and asserts (or deasserts) the SL flag accordingly, returning
// whether it matched. A mask running past the end of the EPC never
// matches. Unpowered tags ignore the command.
func (t *Tag) Select(pointer int, mask *epc.Bits) bool {
	if !t.operational() {
		return false
	}
	bits := t.code.Bits()
	if pointer < 0 || mask == nil || pointer+mask.Len() > bits.Len() {
		t.selected = false
		return false
	}
	match := true
	for i := 0; i < mask.Len(); i++ {
		if bits.Bit(pointer+i) != mask.Bit(i) {
			match = false
			break
		}
	}
	t.selected = match
	return match
}

// Selected reports the SL flag.
func (t *Tag) Selected() bool { return t.selected }

// SetPersistence overrides the flag persistence configuration.
func (t *Tag) SetPersistence(p Persistence) { t.persist = p }

// EPC returns the tag's EPC.
func (t *Tag) EPC() epc.Code { return t.code }

// PC returns the protocol-control word.
func (t *Tag) PC() uint16 { return t.pc }

// State returns the current inventory state.
func (t *Tag) State() State { return t.state }

// Killed reports whether the tag has been permanently silenced.
func (t *Tag) Killed() bool { return t.killed }

// Powered reports whether the tag currently rectifies enough energy to
// operate.
func (t *Tag) Powered() bool { return t.powered }

// Flag returns the inventoried flag for a session at time now, applying
// persistence decay lazily.
func (t *Tag) Flag(s Session, now float64) Flag {
	t.decayFlags(now)
	return t.flags[s]
}

// SetPower updates the tag's powered state at time now. Losing power
// resets the inventory state machine and starts the persistence clocks;
// regaining power applies any decay that happened while dark.
func (t *Tag) SetPower(on bool, now float64) {
	if t.killed {
		t.powered = false
		return
	}
	if t.powered == on {
		t.decayFlags(now)
		return
	}
	if !on {
		t.powered = false
		t.powerLostAt = now
		t.state = StateReady
		// S0 has no persistence at all.
		t.flags[S0] = FlagA
		return
	}
	// Apply any decay accumulated while dark before flipping the flag,
	// since decayFlags only counts dark time while unpowered.
	t.decayFlags(now)
	t.powered = true
	t.state = StateReady
}

// decayFlags applies S1 timer decay and S2/S3 unpowered decay.
func (t *Tag) decayFlags(now float64) {
	if t.flags[S1] == FlagB && now-t.flagSetAt[S1] > t.persist.S1Decay {
		t.flags[S1] = FlagA
	}
	if !t.powered {
		dark := now - t.powerLostAt
		if dark > t.persist.S23Unpowered {
			t.flags[S2] = FlagA
			t.flags[S3] = FlagA
		}
	}
}

// Reply is a tag response on the air interface.
type Reply struct {
	// RN16 is set for Query/QueryRep/QueryAdjust replies.
	RN16 uint16
	// EPC responses (to ACK) carry the PC word and the code.
	PC   uint16
	Code epc.Code
	// HasEPC distinguishes an EPC reply from an RN16 reply.
	HasEPC bool
}

// Query handles a Query command at time now. It begins a new inventory
// round: tags whose session flag matches target participate, drawing a
// slot in [0, 2^q). A tag that draws slot zero backscatters an RN16
// immediately. Returns the reply and whether the tag responded.
func (t *Tag) Query(s Session, target Flag, q uint8, now float64) (Reply, bool) {
	return t.QuerySel(s, target, q, false, now)
}

// QuerySel is Query with the Sel filter: when selOnly is set, only tags
// whose SL flag is asserted (by a prior Select) participate.
func (t *Tag) QuerySel(s Session, target Flag, q uint8, selOnly bool, now float64) (Reply, bool) {
	if !t.operational() {
		return Reply{}, false
	}
	if selOnly && !t.selected {
		t.commitIfAcknowledged(now)
		t.state = StateReady
		return Reply{}, false
	}
	t.decayFlags(now)
	t.session = s
	t.q = q
	// A Query always ends any prior round: an acknowledged tag commits its
	// flag toggle first (it was successfully inventoried).
	t.commitIfAcknowledged(now)
	if t.flags[s] != target {
		t.state = StateReady
		return Reply{}, false
	}
	t.slot = t.drawSlot(q)
	if t.slot == 0 {
		return t.backscatterRN16(), true
	}
	t.state = StateArbitrate
	return Reply{}, false
}

// QueryRep handles a QueryRep (advance one slot) at time now.
func (t *Tag) QueryRep(s Session, now float64) (Reply, bool) {
	if !t.operational() || s != t.session {
		return Reply{}, false
	}
	t.decayFlags(now)
	switch t.state {
	case StateAcknowledged:
		// Successful singulation: toggle the session flag and drop out.
		t.commitIfAcknowledged(now)
		return Reply{}, false
	case StateReply:
		// We replied but were never acknowledged (collision or reverse-link
		// loss). Back off into the remainder of the round.
		t.state = StateArbitrate
		t.slot = t.drawSlot(t.q)
		if t.slot == 0 {
			return t.backscatterRN16(), true
		}
		return Reply{}, false
	case StateArbitrate:
		if t.slot > 0 {
			t.slot--
		}
		if t.slot == 0 {
			return t.backscatterRN16(), true
		}
		return Reply{}, false
	default:
		return Reply{}, false
	}
}

// QueryAdjust handles a QueryAdjust: like QueryRep but the Q value changes
// and every participating tag re-draws its slot.
func (t *Tag) QueryAdjust(s Session, q uint8, now float64) (Reply, bool) {
	if !t.operational() || s != t.session {
		return Reply{}, false
	}
	t.decayFlags(now)
	switch t.state {
	case StateAcknowledged:
		t.commitIfAcknowledged(now)
		return Reply{}, false
	case StateArbitrate, StateReply:
		t.q = q
		t.slot = t.drawSlot(q)
		if t.slot == 0 {
			return t.backscatterRN16(), true
		}
		t.state = StateArbitrate
		return Reply{}, false
	default:
		return Reply{}, false
	}
}

// ACK handles an ACK carrying rn16. A tag in Reply state whose RN16
// matches backscatters its PC+EPC and moves to Acknowledged.
func (t *Tag) ACK(rn16 uint16) (Reply, bool) {
	if !t.operational() || t.state != StateReply || rn16 != t.rn16 {
		if t.state == StateReply {
			// Wrong RN16: the ACK was for someone else; return to arbitrate.
			t.state = StateArbitrate
		}
		return Reply{}, false
	}
	t.state = StateAcknowledged
	return Reply{RN16: t.rn16, PC: t.pc, Code: t.code, HasEPC: true}, true
}

// NAK returns the tag to Arbitrate without toggling its flag.
func (t *Tag) NAK() {
	if !t.operational() {
		return
	}
	if t.state == StateReply || t.state == StateAcknowledged {
		t.state = StateArbitrate
	}
}

// Kill permanently silences the tag.
func (t *Tag) Kill() {
	t.killed = true
	t.state = StateKilled
	t.powered = false
}

func (t *Tag) operational() bool { return t.powered && !t.killed }

func (t *Tag) commitIfAcknowledged(now float64) {
	if t.state != StateAcknowledged {
		return
	}
	s := t.session
	if t.flags[s] == FlagA {
		t.flags[s] = FlagB
	} else {
		t.flags[s] = FlagA
	}
	t.flagSetAt[s] = now
	t.state = StateReady
}

func (t *Tag) drawSlot(q uint8) uint32 {
	if q == 0 {
		return 0
	}
	if q > 15 {
		q = 15
	}
	return uint32(t.rng.IntN(1 << uint(q)))
}

func (t *Tag) backscatterRN16() Reply {
	t.rn16 = uint16(t.rng.Uint32())
	t.state = StateReply
	return Reply{RN16: t.rn16}
}
