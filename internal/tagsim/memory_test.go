package tagsim

import (
	"bytes"
	"errors"
	"testing"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/xrand"
)

// openSession singulates a tag and opens the access layer, returning the
// handle.
func openSession(t *testing.T, tag *Tag) uint16 {
	t.Helper()
	tag.SetPower(true, 0)
	r, ok := tag.Query(S0, FlagA, 0, 0)
	if !ok {
		t.Fatal("no RN16 reply")
	}
	if _, ok := tag.ACK(r.RN16); !ok {
		t.Fatal("ACK failed")
	}
	handle, err := tag.ReqRN(r.RN16)
	if err != nil {
		t.Fatalf("ReqRN: %v", err)
	}
	return handle
}

func TestReqRNOpensAccessLayer(t *testing.T) {
	tag := newTag(t, "reqrn")
	handle := openSession(t, tag)
	// Zero access password: straight to Secured.
	if tag.State() != StateSecured {
		t.Errorf("state = %v, want secured (zero access password)", tag.State())
	}
	if handle == 0 && tag.State() != StateSecured {
		t.Error("no handle issued")
	}
}

func TestReqRNRequiresAcknowledged(t *testing.T) {
	tag := newTag(t, "reqrn2")
	tag.SetPower(true, 0)
	if _, err := tag.ReqRN(0); !errors.Is(err, ErrNotSingulated) {
		t.Errorf("err = %v", err)
	}
	// Wrong RN16.
	r, _ := tag.Query(S0, FlagA, 0, 0)
	tag.ACK(r.RN16)
	if _, err := tag.ReqRN(r.RN16 + 1); !errors.Is(err, ErrBadHandle) {
		t.Errorf("err = %v", err)
	}
}

func TestAccessPasswordFlow(t *testing.T) {
	tag := newTag(t, "access")
	tag.SetMemory(Memory{AccessPassword: 0xDEADBEEF, TID: []byte{1}, User: make([]byte, 8)})
	handle := openSession(t, tag)
	// Non-zero password: lands in Open.
	if tag.State() != StateOpen {
		t.Fatalf("state = %v, want open", tag.State())
	}
	// Reserved bank unreadable before Access.
	if _, err := tag.Read(handle, BankReserved, 0, 8); !errors.Is(err, ErrNotSecured) {
		t.Errorf("reserved read in open = %v", err)
	}
	// Wrong password bounces the tag out.
	if err := tag.Access(handle, 0x12345678); !errors.Is(err, ErrBadPassword) {
		t.Errorf("err = %v", err)
	}
	if tag.State() != StateArbitrate {
		t.Errorf("state after bad password = %v", tag.State())
	}
	// Re-singulate and do it right.
	tag.Reset()
	handle = openSession(t, tag)
	if err := tag.Access(handle, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if tag.State() != StateSecured {
		t.Errorf("state = %v, want secured", tag.State())
	}
	// Wrong handle.
	if err := tag.Access(handle+1, 0xDEADBEEF); !errors.Is(err, ErrBadHandle) {
		t.Errorf("err = %v", err)
	}
}

func TestReadBanks(t *testing.T) {
	tag := newTag(t, "read")
	tag.SetMemory(Memory{
		KillPassword:   0x11223344,
		AccessPassword: 0,
		TID:            []byte{0xE2, 0x80},
		User:           []byte{9, 8, 7, 6},
	})
	handle := openSession(t, tag)

	// EPC bank returns the code bytes.
	got, err := tag.Read(handle, BankEPC, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := tag.EPC()
	if !bytes.Equal(got, want[:]) {
		t.Errorf("EPC bank = %x", got)
	}
	// TID.
	if got, err := tag.Read(handle, BankTID, 0, 2); err != nil || !bytes.Equal(got, []byte{0xE2, 0x80}) {
		t.Errorf("TID = %x, %v", got, err)
	}
	// Reserved (secured): passwords big-endian.
	got, err = tag.Read(handle, BankReserved, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4], []byte{0x11, 0x22, 0x33, 0x44}) {
		t.Errorf("kill password bytes = %x", got[:4])
	}
	// Bounds.
	if _, err := tag.Read(handle, BankUser, 2, 10); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-range read = %v", err)
	}
	if _, err := tag.Read(handle, Bank(9), 0, 1); !errors.Is(err, ErrBounds) {
		t.Errorf("bad bank = %v", err)
	}
	// Wrong handle.
	if _, err := tag.Read(handle+1, BankUser, 0, 1); !errors.Is(err, ErrBadHandle) {
		t.Errorf("wrong handle = %v", err)
	}
	// Read returns a copy.
	got, _ = tag.Read(handle, BankUser, 0, 4)
	got[0] = 0xFF
	if again, _ := tag.Read(handle, BankUser, 0, 4); again[0] == 0xFF {
		t.Error("Read aliases tag memory")
	}
}

func TestWriteUserAndEPC(t *testing.T) {
	tag := newTag(t, "write")
	handle := openSession(t, tag)
	if err := tag.Write(handle, BankUser, 4, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got, _ := tag.Read(handle, BankUser, 4, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("user readback = %x", got)
	}
	// Re-commission the EPC.
	newCode, err := epc.SGTIN96{Filter: 1, CompanyDigits: 7, Company: 614141, ItemRef: 9, Serial: 9}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := tag.WriteEPC(handle, newCode); err != nil {
		t.Fatal(err)
	}
	if tag.EPC() != newCode {
		t.Errorf("EPC after write = %v", tag.EPC())
	}
	// TID is read-only.
	if err := tag.Write(handle, BankTID, 0, []byte{0}); !errors.Is(err, ErrLocked) {
		t.Errorf("TID write = %v", err)
	}
	// Reserved writes must be the full 8 bytes.
	if err := tag.Write(handle, BankReserved, 0, []byte{1}); !errors.Is(err, ErrBounds) {
		t.Errorf("short reserved write = %v", err)
	}
	if err := tag.Write(handle, BankReserved, 0, []byte{0, 0, 0, 1, 0, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if m := tag.MemoryImage(); m.KillPassword != 1 || m.AccessPassword != 2 {
		t.Errorf("passwords = %x/%x", m.KillPassword, m.AccessPassword)
	}
	// Bounds on user.
	if err := tag.Write(handle, BankUser, 30, []byte{1, 2, 3, 4}); !errors.Is(err, ErrBounds) {
		t.Errorf("oob user write = %v", err)
	}
}

func TestLockSemantics(t *testing.T) {
	tag := newTag(t, "lock")
	tag.SetMemory(Memory{AccessPassword: 0xAA, TID: []byte{1}, User: make([]byte, 8)})
	handle := openSession(t, tag)
	// In Open: lock refused.
	if err := tag.Lock(handle, BankUser, Locked); !errors.Is(err, ErrNotSecured) {
		t.Errorf("lock in open = %v", err)
	}
	if err := tag.Access(handle, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := tag.Lock(handle, BankUser, Locked); err != nil {
		t.Fatal(err)
	}
	// Locked bank still writable in Secured.
	if err := tag.Write(handle, BankUser, 0, []byte{5}); err != nil {
		t.Errorf("secured write to locked bank = %v", err)
	}
	// But not from Open: re-singulate without Access.
	tag.Reset()
	handle = openSession(t, tag)
	if tag.State() != StateOpen {
		t.Fatal("expected open")
	}
	if err := tag.Write(handle, BankUser, 0, []byte{5}); !errors.Is(err, ErrLocked) {
		t.Errorf("open write to locked bank = %v", err)
	}
	// Perma-lock is irreversible.
	if err := tag.Access(handle, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := tag.Lock(handle, BankUser, PermaLocked); err != nil {
		t.Fatal(err)
	}
	if err := tag.Lock(handle, BankUser, Unlocked); !errors.Is(err, ErrLocked) {
		t.Errorf("unlocking perma-locked = %v", err)
	}
	if err := tag.Write(handle, BankUser, 0, []byte{5}); !errors.Is(err, ErrLocked) {
		t.Errorf("write to perma-locked = %v", err)
	}
	// Bad bank.
	if err := tag.Lock(handle, Bank(7), Locked); !errors.Is(err, ErrBounds) {
		t.Errorf("lock bad bank = %v", err)
	}
}

func TestKillWithPassword(t *testing.T) {
	tag := newTag(t, "killpwd")
	tag.SetMemory(Memory{KillPassword: 0xC0FFEE, TID: []byte{1}, User: make([]byte, 4)})
	handle := openSession(t, tag)
	// Wrong password: refused, tag bounced.
	if err := tag.KillWithPassword(handle, 1); !errors.Is(err, ErrBadPassword) {
		t.Errorf("wrong kill password = %v", err)
	}
	tag.Reset()
	handle = openSession(t, tag)
	if err := tag.KillWithPassword(handle, 0xC0FFEE); err != nil {
		t.Fatal(err)
	}
	if !tag.Killed() {
		t.Error("tag survived a valid kill")
	}
	// Killed tags never come back.
	tag.Reset()
	tag.SetPower(true, 10)
	if _, ok := tag.Query(S0, FlagA, 0, 10); ok {
		t.Error("killed tag replied")
	}
}

func TestKillZeroPasswordForbidden(t *testing.T) {
	tag := newTag(t, "killzero")
	handle := openSession(t, tag)
	if err := tag.KillWithPassword(handle, 0); !errors.Is(err, ErrKillForbidden) {
		t.Errorf("zero kill password = %v", err)
	}
	if tag.Killed() {
		t.Error("tag died despite disabled kill")
	}
}

func TestBankString(t *testing.T) {
	for b, want := range map[Bank]string{
		BankReserved: "reserved", BankEPC: "epc", BankTID: "tid",
		BankUser: "user", Bank(9): "bank(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q", b, got)
		}
	}
}

func TestAccessAfterPowerLoss(t *testing.T) {
	// Losing power tears down the access session.
	tag := newTag(t, "powerloss")
	handle := openSession(t, tag)
	tag.SetPower(false, 1)
	tag.SetPower(true, 1.1)
	if _, err := tag.Read(handle, BankUser, 0, 1); !errors.Is(err, ErrNotSingulated) {
		t.Errorf("read after power loss = %v", err)
	}
}

func TestMemoryDefaultTID(t *testing.T) {
	tag := New(epc.Code{}, xrand.New(1))
	m := tag.MemoryImage()
	if len(m.TID) == 0 || m.TID[0] != 0xE2 {
		t.Errorf("default TID = %x, want ISO 15963 class E2", m.TID)
	}
	if len(m.User) == 0 {
		t.Error("no default user memory")
	}
	// MemoryImage is a copy.
	m.User[0] = 0xFF
	if tag.MemoryImage().User[0] == 0xFF {
		t.Error("MemoryImage aliases tag memory")
	}
}
