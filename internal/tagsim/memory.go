package tagsim

import (
	"errors"
	"fmt"

	"rfidtrack/internal/epc"
)

// The Gen-2 access layer: once a tag is singulated (Acknowledged), the
// reader can open a session against its memory with Req_RN, authenticate
// with Access, and then Read/Write/Lock/Kill. This file implements the
// four memory banks, the handle protocol, password checks and lock
// semantics.

// Bank identifies a Gen-2 memory bank.
type Bank int

// Gen-2 memory banks.
const (
	BankReserved Bank = iota // kill + access passwords
	BankEPC                  // CRC, PC, EPC
	BankTID                  // tag/vendor identification
	BankUser                 // free-form application data
)

// String implements fmt.Stringer.
func (b Bank) String() string {
	switch b {
	case BankReserved:
		return "reserved"
	case BankEPC:
		return "epc"
	case BankTID:
		return "tid"
	case BankUser:
		return "user"
	default:
		return fmt.Sprintf("bank(%d)", int(b))
	}
}

// Access-layer errors.
var (
	// ErrNotSingulated: the command needs an open access session.
	ErrNotSingulated = errors.New("tagsim: tag not in access state")
	// ErrBadHandle: the RN16 handle does not match.
	ErrBadHandle = errors.New("tagsim: wrong handle")
	// ErrBadPassword: password mismatch.
	ErrBadPassword = errors.New("tagsim: wrong password")
	// ErrLocked: the bank refuses the operation in this state.
	ErrLocked = errors.New("tagsim: memory locked")
	// ErrBounds: address range outside the bank.
	ErrBounds = errors.New("tagsim: address out of range")
	// ErrNotSecured: the command requires the Secured state.
	ErrNotSecured = errors.New("tagsim: tag not secured")
	// ErrKillForbidden: kill with a zero kill password is refused (spec).
	ErrKillForbidden = errors.New("tagsim: zero kill password")
)

// LockState is a bank's lock configuration.
type LockState int

// Lock states (simplified from the spec's pwd-write/perma bits).
const (
	Unlocked LockState = iota
	// Locked: writable only in the Secured state.
	Locked
	// PermaLocked: never writable again.
	PermaLocked
)

// Memory is a tag's non-volatile storage.
type Memory struct {
	KillPassword   uint32
	AccessPassword uint32
	TID            []byte
	User           []byte
	Locks          [4]LockState
}

// defaultMemory builds factory-state memory: a vendor TID and 16 words of
// user memory.
func defaultMemory() Memory {
	return Memory{
		// E2 = ISO/IEC 15963 class, then a made-up mask-designer/model.
		TID:  []byte{0xE2, 0x80, 0x11, 0x05},
		User: make([]byte, 32),
	}
}

// SetMemory replaces the tag's memory image (test and provisioning hook).
func (t *Tag) SetMemory(m Memory) { t.mem = m }

// MemoryImage returns a copy of the tag's memory.
func (t *Tag) MemoryImage() Memory {
	m := t.mem
	m.TID = append([]byte(nil), t.mem.TID...)
	m.User = append([]byte(nil), t.mem.User...)
	return m
}

// ReqRN opens the access layer on a singulated tag: the tag issues a new
// handle and moves to Open (or straight to Secured when its access
// password is zero, per the spec).
func (t *Tag) ReqRN(rn16 uint16) (handle uint16, err error) {
	if !t.operational() || t.state != StateAcknowledged {
		return 0, ErrNotSingulated
	}
	if rn16 != t.rn16 {
		return 0, ErrBadHandle
	}
	t.handle = uint16(t.rng.Uint32())
	if t.mem.AccessPassword == 0 {
		t.state = StateSecured
	} else {
		t.state = StateOpen
	}
	return t.handle, nil
}

// Access authenticates with the access password, promoting Open→Secured.
func (t *Tag) Access(handle uint16, password uint32) error {
	if !t.operational() || (t.state != StateOpen && t.state != StateSecured) {
		return ErrNotSingulated
	}
	if handle != t.handle {
		return ErrBadHandle
	}
	if password != t.mem.AccessPassword {
		// The spec has the tag go silent; we model it as returning to
		// arbitrate so the reader must re-singulate.
		t.state = StateArbitrate
		return ErrBadPassword
	}
	t.state = StateSecured
	return nil
}

// bankBytes returns the addressable bytes of a bank.
func (t *Tag) bankBytes(b Bank) ([]byte, error) {
	switch b {
	case BankReserved:
		return []byte{
			byte(t.mem.KillPassword >> 24), byte(t.mem.KillPassword >> 16),
			byte(t.mem.KillPassword >> 8), byte(t.mem.KillPassword),
			byte(t.mem.AccessPassword >> 24), byte(t.mem.AccessPassword >> 16),
			byte(t.mem.AccessPassword >> 8), byte(t.mem.AccessPassword),
		}, nil
	case BankEPC:
		c := t.code
		return c[:], nil
	case BankTID:
		return t.mem.TID, nil
	case BankUser:
		return t.mem.User, nil
	default:
		return nil, fmt.Errorf("%w: bank %d", ErrBounds, b)
	}
}

// Read returns count bytes from a bank at offset. Requires an open access
// session; the Reserved bank additionally requires Secured.
func (t *Tag) Read(handle uint16, bank Bank, offset, count int) ([]byte, error) {
	if !t.operational() || (t.state != StateOpen && t.state != StateSecured) {
		return nil, ErrNotSingulated
	}
	if handle != t.handle {
		return nil, ErrBadHandle
	}
	if bank == BankReserved && t.state != StateSecured {
		return nil, ErrNotSecured
	}
	data, err := t.bankBytes(bank)
	if err != nil {
		return nil, err
	}
	if offset < 0 || count < 0 || offset+count > len(data) {
		return nil, fmt.Errorf("%w: [%d,%d) of %d bytes", ErrBounds, offset, offset+count, len(data))
	}
	return append([]byte(nil), data[offset:offset+count]...), nil
}

// Write stores data into a bank at offset. Locked banks require Secured;
// perma-locked banks refuse. TID is read-only (factory programmed).
func (t *Tag) Write(handle uint16, bank Bank, offset int, data []byte) error {
	if !t.operational() || (t.state != StateOpen && t.state != StateSecured) {
		return ErrNotSingulated
	}
	if handle != t.handle {
		return ErrBadHandle
	}
	if bank == BankTID {
		return fmt.Errorf("%w: TID is factory programmed", ErrLocked)
	}
	switch t.mem.Locks[bank] {
	case PermaLocked:
		return fmt.Errorf("%w: %s perma-locked", ErrLocked, bank)
	case Locked:
		if t.state != StateSecured {
			return fmt.Errorf("%w: %s requires secured state", ErrLocked, bank)
		}
	}
	switch bank {
	case BankReserved:
		if offset != 0 || len(data) != 8 {
			return fmt.Errorf("%w: reserved bank writes the full 8 bytes", ErrBounds)
		}
		t.mem.KillPassword = beUint32(data[0:4])
		t.mem.AccessPassword = beUint32(data[4:8])
	case BankEPC:
		if offset < 0 || offset+len(data) > len(t.code) {
			return fmt.Errorf("%w: [%d,%d) of %d bytes", ErrBounds, offset, offset+len(data), len(t.code))
		}
		copy(t.code[offset:], data)
	case BankUser:
		if offset < 0 || offset+len(data) > len(t.mem.User) {
			return fmt.Errorf("%w: [%d,%d) of %d bytes", ErrBounds, offset, offset+len(data), len(t.mem.User))
		}
		copy(t.mem.User[offset:], data)
	}
	return nil
}

// Lock changes a bank's lock state. Requires Secured. Perma-locking is
// irreversible; unlocking a perma-locked bank fails.
func (t *Tag) Lock(handle uint16, bank Bank, state LockState) error {
	if !t.operational() || t.state != StateSecured {
		return ErrNotSecured
	}
	if handle != t.handle {
		return ErrBadHandle
	}
	if bank < BankReserved || bank > BankUser {
		return fmt.Errorf("%w: bank %d", ErrBounds, bank)
	}
	if t.mem.Locks[bank] == PermaLocked && state != PermaLocked {
		return fmt.Errorf("%w: %s perma-locked", ErrLocked, bank)
	}
	t.mem.Locks[bank] = state
	return nil
}

// KillWithPassword permanently silences the tag. Requires Secured and a
// matching non-zero kill password (a zero kill password disables the kill
// feature, per the spec).
func (t *Tag) KillWithPassword(handle uint16, password uint32) error {
	if !t.operational() || t.state != StateSecured {
		return ErrNotSecured
	}
	if handle != t.handle {
		return ErrBadHandle
	}
	if t.mem.KillPassword == 0 {
		return ErrKillForbidden
	}
	if password != t.mem.KillPassword {
		t.state = StateArbitrate
		return ErrBadPassword
	}
	t.Kill()
	return nil
}

// WriteEPC is the provisioning helper commissioning systems use: rewrite
// the EPC bank with a new code through an authenticated session.
func (t *Tag) WriteEPC(handle uint16, code epc.Code) error {
	return t.Write(handle, BankEPC, 0, code[:])
}

func beUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
