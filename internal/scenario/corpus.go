// Corpus: a blackbox net of application scenes over the whole stack.
//
// Where scenario.go rebuilds the paper's own experiments, the corpus
// describes the deployments the paper's techniques target — dock doors,
// conveyors, security portals, asset tracking — each measured under a few
// redundancy configurations. The pinned envelopes (mean tag and carrier
// reliability, tags-read-per-pass range) live in one golden file
// (testdata/corpus_golden.json) that any engine change must reproduce
// exactly: the corpus is the regression net that catches a behaviour
// change no unit test looks for, because every number funnels through
// carriers, mounts, the batched link grid, the Gen2 rounds, and the
// measurement engine at once.
package scenario

import (
	"fmt"
	"math"

	"rfidtrack/internal/core"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/session"
	"rfidtrack/internal/world"
)

// CorpusCase is one (application scenario, redundancy configuration) cell
// of the regression net.
type CorpusCase struct {
	// Scenario names the deployment (warehouse-dock-door, conveyor, ...).
	Scenario string
	// Config names the redundancy configuration under test.
	Config string
	// Build constructs the portal; the measurement engine may call it once
	// per worker replica.
	Build core.Builder
	// Sessions, when non-nil, additionally measures the case under a
	// temporal-redundancy merge: each pass is one independent session fed
	// round-by-round (Portal.RecordRounds) into a session.Merger, and the
	// envelope gains the merge columns.
	Sessions *SessionSpec
}

// SessionSpec configures a corpus case's session merge.
type SessionSpec struct {
	// Confirm / Window choose the merge policy (see session.Config).
	Confirm int
	Window  int
}

// corpusSessionCap bounds a corpus merge. Scenes with low per-session
// reliability (the conveyor's detuned lid mount) honestly never reach the
// default 99% confidence, so the cap is a real operating limit there, not
// just a runaway guard.
const corpusSessionCap = 8

// policyName renders the spec's merge policy for the envelope.
func (s *SessionSpec) policyName() string {
	if s.Confirm <= 1 {
		return "union"
	}
	if s.Window <= 0 {
		return fmt.Sprintf("%d-of-all", s.Confirm)
	}
	return fmt.Sprintf("%d-of-%d", s.Confirm, s.Window)
}

// Envelope is the pinned reliability envelope of one corpus case: the
// scene shape plus the aggregate numbers a regression would move. Floats
// are rounded (see round9) so the golden file is stable text while still
// pinning results to better than any physical effect.
type Envelope struct {
	Scenario string `json:"scenario"`
	Config   string `json:"config"`
	Tags     int    `json:"tags"`
	Carriers int    `json:"carriers"`
	// MeanTag / MeanCarrier are the mean per-tag read and per-carrier
	// tracking reliabilities over the corpus trials.
	MeanTag     float64 `json:"mean_tag_reliability"`
	MeanCarrier float64 `json:"mean_carrier_reliability"`
	// Reads* summarize distinct tags read per pass.
	ReadsMean float64 `json:"mean_tags_read_per_pass"`
	ReadsMin  float64 `json:"min_tags_read_per_pass"`
	ReadsMax  float64 `json:"max_tags_read_per_pass"`
	// Session-merge columns, present only for cases with a SessionSpec
	// (omitempty keeps every pre-session envelope byte-identical).
	Merge         string  `json:"merge_policy,omitempty"`
	SessionsMean  float64 `json:"mean_sessions_to_stop,omitempty"`
	ConfirmedMean float64 `json:"mean_confirmed_tags,omitempty"`
}

// CorpusTrials is the per-case trial count the golden envelopes pin.
// Small on purpose: the corpus is a regression net, not a study — it
// wants bit-stable numbers fast, not tight confidence intervals.
const CorpusTrials = 6

// Corpus returns every corpus case, in golden-file order, for the given
// seed. The golden envelopes are pinned at seed 1.
func Corpus(seed uint64) []CorpusCase {
	var cases []CorpusCase
	add := func(scenario, config string, build core.Builder) {
		cases = append(cases, CorpusCase{Scenario: scenario, Config: config, Build: build})
	}

	// Warehouse dock door: a forklift pallet of metal-content cartons
	// through a wide doorway. The classic Table 3 story retold at pallet
	// scale: one antenna misses the far column, the second antenna and the
	// second tag each claw back coverage.
	add("warehouse-dock-door", "1ant-1tag", func() (*core.Portal, error) {
		return warehouseDockDoor(1, []BoxLocation{LocFront}, seed)
	})
	add("warehouse-dock-door", "2ant-1tag", func() (*core.Portal, error) {
		return warehouseDockDoor(2, []BoxLocation{LocFront}, seed)
	})
	add("warehouse-dock-door", "2ant-2tag", func() (*core.Portal, error) {
		return warehouseDockDoor(2, []BoxLocation{LocFront, LocTop}, seed)
	})

	// Conveyor: single-file cartons past a side-mounted antenna. The
	// single label sits on the lid (the strongly detuned mount), belt
	// speed shrinks the read window, and the second (front) tag is the
	// cheap fix.
	add("conveyor", "fast-1tag", func() (*core.Portal, error) {
		return conveyor(3.0, []BoxLocation{LocTop}, seed)
	})
	add("conveyor", "fast-2tag", func() (*core.Portal, error) {
		return conveyor(3.0, []BoxLocation{LocTop, LocFront}, seed)
	})
	add("conveyor", "slow-1tag", func() (*core.Portal, error) {
		return conveyor(1.0, []BoxLocation{LocTop}, seed)
	})

	// Retail portal: a shopper pushing a cart of mixed goods past the
	// exit, a second shopper alongside. Dense mode with two readers is the
	// store's actual deployment question.
	add("retail-portal", "1ant", func() (*core.Portal, error) {
		return retailPortal(1, false, seed)
	})
	add("retail-portal", "2ant", func() (*core.Portal, error) {
		return retailPortal(2, false, seed)
	})
	add("retail-portal", "2ant-dense", func() (*core.Portal, error) {
		return retailPortal(2, true, seed)
	})

	// Library gate: a patron carrying a stack of tagged books through a
	// narrow gate. Benign materials (no metal), so the gate mostly fights
	// orientation and body shadowing.
	add("library-gate", "1ant", func() (*core.Portal, error) {
		return libraryGate(1, seed)
	})
	add("library-gate", "2ant", func() (*core.Portal, error) {
		return libraryGate(2, seed)
	})

	// Hospital asset tracking: a nurse pushing an equipment cart (metal,
	// the hard case) with a badge. Dual-dipole asset labels and an active
	// beacon are the two upgrades the corpus prices.
	add("hospital-asset", "passive", func() (*core.Portal, error) {
		return hospitalAsset(false, false, seed)
	})
	add("hospital-asset", "dual-dipole", func() (*core.Portal, error) {
		return hospitalAsset(true, false, seed)
	})
	add("hospital-asset", "active-beacon", func() (*core.Portal, error) {
		return hospitalAsset(false, true, seed)
	})

	// Warehouse aisle (the mega-scene family of megascene.go at corpus
	// size): static pallet stacks down a rack run, overhead antennas each
	// owning a stretch. The corpus-sized instance pins the generator's
	// geometry and the monotone antenna-coverage story; the 10⁴–10⁵-tag
	// instances live in the scaling benchmarks.
	add("warehouse-aisle", "1ant", func() (*core.Portal, error) {
		return WarehouseAisle(WarehouseAisleConfig{Tags: 96, Antennas: 1, Seed: seed})
	})
	add("warehouse-aisle", "2ant", func() (*core.Portal, error) {
		return WarehouseAisle(WarehouseAisleConfig{Tags: 96, Antennas: 2, Seed: seed})
	})
	add("warehouse-aisle", "4ant", func() (*core.Portal, error) {
		return WarehouseAisle(WarehouseAisleConfig{Tags: 96, Antennas: 4, Seed: seed})
	})

	// Temporal redundancy over the corpus scenes: the same deployments
	// measured under a session merge (one pass = one session), pinning the
	// whole session stack — Portal.RecordRounds, estimate.FromRound over
	// live engine rounds, and the stopping rule — against real scene
	// physics rather than synthetic frames. Appended after the original
	// cases so the pre-session golden prefix is untouched.
	addS := func(scenario, config string, spec SessionSpec, build core.Builder) {
		cases = append(cases, CorpusCase{Scenario: scenario, Config: config, Build: build, Sessions: &spec})
	}
	addS("warehouse-dock-door", "2ant-2tag-merge-union", SessionSpec{Confirm: 1}, func() (*core.Portal, error) {
		return warehouseDockDoor(2, []BoxLocation{LocFront, LocTop}, seed)
	})
	addS("conveyor", "slow-1tag-merge-union", SessionSpec{Confirm: 1}, func() (*core.Portal, error) {
		return conveyor(1.0, []BoxLocation{LocTop}, seed)
	})
	addS("library-gate", "2ant-merge-2of3", SessionSpec{Confirm: 2, Window: 3}, func() (*core.Portal, error) {
		return libraryGate(2, seed)
	})

	return cases
}

// MeasureEnvelope runs a corpus case for CorpusTrials passes and folds
// the result into its envelope. Results are bit-identical for any worker
// count (see core.MeasureParallel), which is what lets the golden file
// pin exact floats.
func MeasureEnvelope(c CorpusCase, workers int) (Envelope, error) {
	rel, err := core.MeasureParallelOpts(c.Build, CorpusTrials, 1, core.MeasureOpts{Workers: workers})
	if err != nil {
		return Envelope{}, fmt.Errorf("corpus %s/%s: %w", c.Scenario, c.Config, err)
	}
	sum := rel.ReadSummary()
	env := Envelope{
		Scenario:    c.Scenario,
		Config:      c.Config,
		Tags:        len(rel.PerTag),
		Carriers:    len(rel.PerCarrier),
		MeanTag:     round9(rel.MeanTagReliability(nil)),
		MeanCarrier: round9(rel.MeanCarrierReliability(nil)),
		ReadsMean:   round9(sum.Mean),
		ReadsMin:    sum.Min,
		ReadsMax:    sum.Max,
	}
	if c.Sessions != nil {
		env.Merge = c.Sessions.policyName()
		if env.SessionsMean, env.ConfirmedMean, err = measureSessions(c); err != nil {
			return Envelope{}, err
		}
	}
	return env, nil
}

// measureSessions runs the case's session merge: CorpusTrials independent
// merges, each feeding whole passes (one pass = one session) round by
// round into a session.Merger until its stopping rule fires or
// corpusSessionCap passes are spent. The merges run sequentially on one
// portal — each is a pure function of (build, pass ids), so the envelope
// stays bit-stable for any worker count.
func measureSessions(c CorpusCase) (sessionsMean, confirmedMean float64, err error) {
	fail := func(err error) (float64, float64, error) {
		return 0, 0, fmt.Errorf("corpus %s/%s: %w", c.Scenario, c.Config, err)
	}
	p, err := c.Build()
	if err != nil {
		return fail(err)
	}
	p.RecordRounds = true
	var sessSum, confSum float64
	for trial := 0; trial < CorpusTrials; trial++ {
		m, err := session.NewMerger(session.Config{
			Confirm:     c.Sessions.Confirm,
			Window:      c.Sessions.Window,
			MaxSessions: corpusSessionCap,
		})
		if err != nil {
			return fail(err)
		}
		var d session.Decision
		for s := 0; s < corpusSessionCap; s++ {
			res := p.RunPass(1 + trial*corpusSessionCap + s)
			rounds := make([]session.Round, len(res.RoundResults))
			for i := range res.RoundResults {
				rounds[i] = session.Round{Stats: res.RoundResults[i], EPCs: res.RoundEPCs[i]}
			}
			if d, err = m.AddSession(rounds...); err != nil {
				return fail(err)
			}
			if d.Stop {
				break
			}
		}
		sessSum += float64(d.Sessions)
		confSum += float64(d.Confirmed)
	}
	n := float64(CorpusTrials)
	return round9(sessSum / n), round9(confSum / n), nil
}

// round9 rounds to 9 decimals: far below anything physical, far above
// JSON round-trip noise.
func round9(x float64) float64 { return math.Round(x*1e9) / 1e9 }

// warehouseDockDoor: a 2×2×2 pallet of router-class cartons through a
// doorway wider than the paper's portal (antennas 3 m apart, far column
// at 1.55 m from a1).
func warehouseDockDoor(antennas int, locs []BoxLocation, seed uint64) (*core.Portal, error) {
	w := world.New(rf.DefaultCalibration(), seed)
	ants := []*world.Antenna{
		w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, antennaHeight), geom.UnitY, geom.UnitZ)),
	}
	if antennas >= 2 {
		ants = append(ants, w.AddAntenna("a2",
			geom.NewPose(geom.V(0, 3.2, antennaHeight), geom.UnitY.Scale(-1), geom.UnitZ)))
	}
	serial := uint64(0)
	for row := 0; row < 2; row++ {
		for col := 0; col < 2; col++ {
			for layer := 0; layer < 2; layer++ {
				name := fmt.Sprintf("pallet%d%d%d", row, col, layer)
				// Columns at 1.2 m and 2.0 m from a1: the far column is at the
				// edge of a single antenna's reach, which is exactly what the
				// second antenna (1.2 m from ITS near column) repairs.
				path := geom.LinePath{
					Start: geom.NewPose(geom.V(-passHalfSpan+float64(row)*0.5, 1.2+float64(col)*0.8, 0.55+float64(layer)*0.25), geom.UnitX, geom.UnitZ),
					Vel:   geom.UnitX.Scale(passSpeed),
					Dur:   2 * passHalfSpan / passSpeed,
				}
				box := w.AddBox(name, path, routerBoxSize, rf.Cardboard, rf.Metal, routerContentSize)
				for _, loc := range locs {
					m, err := boxMount(loc)
					if err != nil {
						return nil, err
					}
					serial++
					w.AttachTag(box, name+"/"+string(loc), sgtin(400, serial), m)
				}
			}
		}
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// conveyor: five single-file cartons past one side antenna at 0.8 m.
func conveyor(speed float64, locs []BoxLocation, seed uint64) (*core.Portal, error) {
	w := world.New(rf.DefaultCalibration(), seed)
	ants := []*world.Antenna{
		w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 0.9), geom.UnitY, geom.UnitZ)),
	}
	serial := uint64(0)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("carton%d", i)
		path := geom.LinePath{
			Start: geom.NewPose(geom.V(-passHalfSpan+float64(i)*0.6, 0.8, 0.9), geom.UnitX, geom.UnitZ),
			Vel:   geom.UnitX.Scale(speed),
			Dur:   2 * passHalfSpan / speed,
		}
		box := w.AddBox(name, path, routerBoxSize, rf.Cardboard, rf.Metal, routerContentSize)
		for _, loc := range locs {
			m, err := boxMount(loc)
			if err != nil {
				return nil, err
			}
			serial++
			w.AttachTag(box, name+"/"+string(loc), sgtin(500, serial), m)
		}
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// retailPortal: a shopper pushing a cart of mixed goods (one metal-content
// carton, one benign carton), a second shopper walking alongside, through
// the paper's portal geometry. Dense mode splits the two antennas across
// two readers.
func retailPortal(antennas int, dense bool, seed uint64) (*core.Portal, error) {
	w := world.New(rf.DefaultCalibration(), seed)
	ants := addPortalAntennas(w, antennas)

	cartPath := func(dy, dz float64) geom.LinePath {
		return geom.LinePath{
			Start: geom.NewPose(geom.V(-passHalfSpan, passStandoff+dy, dz), geom.UnitX, geom.UnitZ),
			Vel:   geom.UnitX.Scale(passSpeed),
			Dur:   2 * passHalfSpan / passSpeed,
		}
	}
	goods := w.AddBox("goods", cartPath(0, 0.6), geom.V(0.5, 0.35, 0.3), rf.Cardboard, rf.Metal, geom.V(0.4, 0.28, 0.22))
	w.AttachTag(goods, "goods/front", sgtin(600, 1), world.Mount{
		Offset: geom.V(0, -0.177, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: frontMountGap,
	})
	soft := w.AddBox("softgoods", cartPath(0, 0.95), geom.V(0.5, 0.35, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	w.AttachTag(soft, "softgoods/front", sgtin(600, 2), world.Mount{
		Offset: geom.V(0, -0.177, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.1,
	})
	shopperPath := geom.LinePath{
		Start: geom.NewPose(geom.V(-passHalfSpan-0.6, passStandoff+0.35, 0), geom.UnitX, geom.UnitZ),
		Vel:   geom.UnitX.Scale(passSpeed),
		Dur:   (2*passHalfSpan + 0.6) / passSpeed,
	}
	shopper := w.AddPerson("shopper", shopperPath, subjectHeight, subjectRadius)
	m, err := humanMount(HumanFront)
	if err != nil {
		return nil, err
	}
	w.AttachTag(shopper, "shopper/front", gid(7, 1), m)

	if dense && antennas >= 2 {
		r1, err := reader.New("r1", w, ants[:1], reader.WithDenseMode(true))
		if err != nil {
			return nil, err
		}
		r2, err := reader.New("r2", w, ants[1:], reader.WithDenseMode(true))
		if err != nil {
			return nil, err
		}
		return &core.Portal{World: w, Readers: []*reader.Reader{r1, r2}}, nil
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// libraryGate: a patron carrying three tagged books through a narrow
// (1.2 m) gate. Books are benign cardboard; the patron's body is the only
// obstruction.
func libraryGate(antennas int, seed uint64) (*core.Portal, error) {
	w := world.New(rf.DefaultCalibration(), seed)
	ants := []*world.Antenna{
		w.AddAntenna("g1", geom.NewPose(geom.V(0, 0, 1.1), geom.UnitY, geom.UnitZ)),
	}
	if antennas >= 2 {
		ants = append(ants, w.AddAntenna("g2",
			geom.NewPose(geom.V(0, 1.2, 1.1), geom.UnitY.Scale(-1), geom.UnitZ)))
	}
	path := geom.LinePath{
		Start: geom.NewPose(geom.V(-passHalfSpan, 0.6, 0), geom.UnitX, geom.UnitZ),
		Vel:   geom.UnitX.Scale(passSpeed),
		Dur:   2 * passHalfSpan / passSpeed,
	}
	patron := w.AddPerson("patron", path, subjectHeight, subjectRadius)
	// A stack of books carried on the patron's far-side hip (toward g2):
	// the body shadows them from g1, which is the whole case for the
	// second gate antenna.
	for i := 0; i < 3; i++ {
		w.AttachTag(patron, fmt.Sprintf("book%d", i), sgtin(700, uint64(i+1)), world.Mount{
			Offset: geom.V(0.05, 0.24, 1.0+float64(i)*0.04),
			Normal: geom.UnitY, Axis: geom.UnitX, Gap: 0.04,
		})
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// hospitalAsset: a nurse pushing an equipment cart — a metal-content case
// (infusion pump class) with an asset label — with a staff badge, through
// a two-antenna corridor portal. dualDipole upgrades the asset label to
// an orientation-insensitive dual-dipole design; activeBeacon adds a
// battery-powered beacon to the cart.
func hospitalAsset(dualDipole, activeBeacon bool, seed uint64) (*core.Portal, error) {
	w := world.New(rf.DefaultCalibration(), seed)
	ants := addPortalAntennas(w, 2)
	path := geom.LinePath{
		Start: geom.NewPose(geom.V(-passHalfSpan, passStandoff, 0.85), geom.UnitX, geom.UnitZ),
		Vel:   geom.UnitX.Scale(passSpeed),
		Dur:   2 * passHalfSpan / passSpeed,
	}
	cart := w.AddBox("cart", path, geom.V(0.5, 0.45, 0.35), rf.Cardboard, rf.Metal, geom.V(0.42, 0.38, 0.28))
	// The asset label was slapped on the leading face with its dipole
	// pointing down the corridor — at both antennas' bearings, the bad
	// Orient1-style placement. The dual-dipole upgrade adds the vertical
	// second dipole that rescues it.
	mount := world.Mount{
		Offset: geom.V(0.252, 0, 0), Normal: geom.UnitX, Axis: geom.UnitY, Gap: 0.03,
	}
	if dualDipole {
		mount.Axis2 = geom.UnitZ
	}
	w.AttachTag(cart, "cart/asset", gid(8, 1), mount)
	if activeBeacon {
		w.AttachActiveTag(cart, "cart/beacon", gid(8, 2), world.Mount{
			Offset: geom.V(0, -0.227, 0.19), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.03,
		})
	}
	nursePath := geom.LinePath{
		Start: geom.NewPose(geom.V(-passHalfSpan-0.7, passStandoff+0.3, 0), geom.UnitX, geom.UnitZ),
		Vel:   geom.UnitX.Scale(passSpeed),
		Dur:   (2*passHalfSpan + 0.7) / passSpeed,
	}
	nurse := w.AddPerson("nurse", nursePath, subjectHeight, subjectRadius)
	m, err := humanMount(HumanFront)
	if err != nil {
		return nil, err
	}
	w.AttachTag(nurse, "nurse/badge", gid(9, 1), m)
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}
