package scenario

import (
	"reflect"
	"testing"

	"rfidtrack/internal/core"
)

// TestWarehouseAisleConfig pins the generator's validation surface.
func TestWarehouseAisleConfig(t *testing.T) {
	bad := []WarehouseAisleConfig{
		{Tags: 0},
		{Tags: -5},
		{Tags: 10, TagsPerPallet: -1},
		{Tags: 10, PalletPitch: -0.5},
		{Tags: 10, Antennas: 5},
		{Tags: 10, Antennas: -1},
	}
	for _, cfg := range bad {
		if _, err := WarehouseAisle(cfg); err == nil {
			t.Errorf("WarehouseAisle(%+v): want error, got nil", cfg)
		}
	}
	if _, err := WarehouseAisle(WarehouseAisleConfig{Tags: 1}); err != nil {
		t.Errorf("minimal config: %v", err)
	}
}

// TestWarehouseAisleTagCount checks the generator hits the requested tag
// count exactly — including a partially-filled last pallet — with unique
// tag names and the requested antenna fan.
func TestWarehouseAisleTagCount(t *testing.T) {
	for _, tags := range []int{1, 11, 12, 13, 50, 96} {
		w, ants, err := WarehouseAisleWorld(WarehouseAisleConfig{Tags: tags, Antennas: 3, Seed: 2})
		if err != nil {
			t.Fatalf("Tags=%d: %v", tags, err)
		}
		if got := len(w.Tags()); got != tags {
			t.Errorf("Tags=%d: world has %d tags", tags, got)
		}
		if len(ants) != 3 {
			t.Errorf("Tags=%d: want 3 antennas, got %d", tags, len(ants))
		}
		names := map[string]bool{}
		for _, tag := range w.Tags() {
			if names[tag.Name] {
				t.Errorf("Tags=%d: duplicate tag name %q", tags, tag.Name)
			}
			names[tag.Name] = true
		}
	}
}

// TestWarehouseAisleAntennaMonotone is the golden-independent sanity
// check behind the corpus pins: more antennas must never hurt the mean
// carrier tracking reliability. The generator makes this hold per trial,
// not just in expectation — antenna positions are nested (a larger set
// contains the smaller set's positions) and the pass window is one full
// multiplexer cycle, so antenna k's TDMA slot is identical no matter how
// many antennas follow it and every added antenna only appends rounds.
func TestWarehouseAisleAntennaMonotone(t *testing.T) {
	prev := -1.0
	prevAnts := 0
	for _, antennas := range []int{1, 2, 4} {
		antennas := antennas
		build := func() (*core.Portal, error) {
			return WarehouseAisle(WarehouseAisleConfig{Tags: 96, Antennas: antennas, Seed: 3})
		}
		rel, err := core.MeasureParallelOpts(build, 4, 1, core.MeasureOpts{Workers: 0})
		if err != nil {
			t.Fatalf("antennas=%d: %v", antennas, err)
		}
		mean := rel.MeanCarrierReliability(nil)
		if mean < prev {
			t.Errorf("R_C not monotone in antenna count: %d antennas %.6f < %d antennas %.6f",
				antennas, mean, prevAnts, prev)
		}
		prev, prevAnts = mean, antennas
	}
}

// TestCorpusCullOffBitIdentical re-measures every corpus case with the
// broad-phase culler disabled and demands the exact reliability object
// the default run produced: per-tag, per-carrier, and per-pass numbers
// all bit-identical. Corpus worlds sit below the cullMinTags gate, so
// both runs resolve densely today — the test pins that the -linkcull
// escape hatch cannot move a corpus number no matter where that gate
// moves (DESIGN.md §14); the culling-active half of the contract lives in
// the world package's cull tests and make scale-smoke.
func TestCorpusCullOffBitIdentical(t *testing.T) {
	for _, c := range Corpus(1) {
		culled, err := core.MeasureParallelOpts(c.Build, CorpusTrials, 1, core.MeasureOpts{Workers: 0})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.Scenario, c.Config, err)
		}
		dense, err := core.MeasureParallelOpts(c.Build, CorpusTrials, 1,
			core.MeasureOpts{Workers: 0, DisableLinkCull: true})
		if err != nil {
			t.Fatalf("%s/%s (cull off): %v", c.Scenario, c.Config, err)
		}
		if !reflect.DeepEqual(culled, dense) {
			t.Errorf("%s/%s: culled and dense runs diverged:\n culled %+v\n dense  %+v",
				c.Scenario, c.Config, culled, dense)
		}
	}
}
