package scenario

import (
	"strings"
	"testing"

	"rfidtrack/internal/world"
)

func TestReadRangeGeometry(t *testing.T) {
	p, err := ReadRange(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tags := p.World.Tags()
	if len(tags) != 20 {
		t.Fatalf("grid has %d tags, want 20", len(tags))
	}
	if len(p.World.Antennas()) != 1 || len(p.Readers) != 1 {
		t.Fatal("read range wants one antenna, one reader")
	}
	// All tags at the requested distance (y≈3), facing the antenna, and at
	// the paper's 12.5/20 cm spacings.
	xs := map[float64]bool{}
	zs := map[float64]bool{}
	for _, tag := range tags {
		pos := tag.Pos(0)
		if pos.Y < 2.9 || pos.Y > 3.1 {
			t.Errorf("%s at y=%v, want ~3", tag.Name, pos.Y)
		}
		xs[pos.X] = true
		zs[pos.Z] = true
	}
	if len(xs) != 5 || len(zs) != 4 {
		t.Errorf("grid is %d x %d, want 5 x 4", len(xs), len(zs))
	}
	// Static scene: a pass is a single read.
	res := p.RunPass(0)
	if res.Rounds != 1 {
		t.Errorf("static pass ran %d rounds", res.Rounds)
	}
}

func TestInterTagGeometry(t *testing.T) {
	for o := Orient1; o <= Orient6; o++ {
		p, err := InterTag(0.020, o, 2)
		if err != nil {
			t.Fatalf("orientation %d: %v", o, err)
		}
		tags := p.World.Tags()
		if len(tags) != 10 {
			t.Fatalf("orientation %d: %d tags", o, len(tags))
		}
		// Adjacent tags are exactly the requested spacing apart.
		for i := 1; i < len(tags); i++ {
			d := tags[i].Pos(0).Dist(tags[i-1].Pos(0))
			if d < 0.019 || d > 0.021 {
				t.Errorf("orientation %d: spacing %v, want 0.020", o, d)
			}
		}
		// Every tag shares the orientation's normal and axis.
		for _, tag := range tags {
			if tag.Mount.Normal != tags[0].Mount.Normal || tag.Mount.Axis != tags[0].Mount.Axis {
				t.Errorf("orientation %d: tags not parallel", o)
			}
		}
	}
	if _, err := InterTag(0.02, Orientation(7), 1); err == nil {
		t.Error("unknown orientation accepted")
	}
}

func TestInterTagOrientationsDistinct(t *testing.T) {
	seen := map[[2]world.Mount]bool{}
	for o := Orient1; o <= Orient6; o++ {
		n, a, _, ok := o.mount()
		if !ok {
			t.Fatalf("orientation %d invalid", o)
		}
		key := [2]world.Mount{{Normal: n}, {Axis: a}}
		if seen[key] {
			t.Errorf("orientation %d duplicates another", o)
		}
		seen[key] = true
		// The dipole axis is never parallel to the face normal (labels are
		// flat on their face).
		if n.Dot(a) != 0 {
			t.Errorf("orientation %d: axis not in the face plane", o)
		}
	}
}

func TestObjectTrackingGeometry(t *testing.T) {
	p, err := ObjectTracking(ObjectConfig{
		TagLocations: []BoxLocation{LocFront, LocTop},
		Antennas:     2,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.World.Carriers()); got != 12 {
		t.Fatalf("%d boxes, want 12", got)
	}
	if got := len(p.World.Tags()); got != 24 {
		t.Fatalf("%d tags, want 12 boxes x 2 locations", got)
	}
	if got := len(p.World.Antennas()); got != 2 {
		t.Fatalf("%d antennas", got)
	}
	// Tag names encode box and location for downstream filtering.
	var fronts, tops int
	for _, tag := range p.World.Tags() {
		switch {
		case strings.HasSuffix(tag.Name, "/front"):
			fronts++
		case strings.HasSuffix(tag.Name, "/top"):
			tops++
		}
	}
	if fronts != 12 || tops != 12 {
		t.Errorf("fronts=%d tops=%d", fronts, tops)
	}
	// Top tags sit close to the metal (small gap), sides clear of it.
	mTop, err := boxMount(LocTop)
	if err != nil {
		t.Fatal(err)
	}
	mSide, err := boxMount(LocSideIn)
	if err != nil {
		t.Fatal(err)
	}
	if mTop.Gap >= mSide.Gap {
		t.Error("top mount should be closer to the router than the sides")
	}
	if _, err := boxMount(BoxLocation("nowhere")); err == nil {
		t.Error("unknown location accepted")
	}
}

func TestObjectTrackingValidation(t *testing.T) {
	if _, err := ObjectTracking(ObjectConfig{}); err == nil {
		t.Error("no tag locations accepted")
	}
	if _, err := ObjectTracking(ObjectConfig{
		TagLocations: []BoxLocation{LocFront},
		Antennas:     1,
		Readers:      2,
	}); err == nil {
		t.Error("2 readers on 1 antenna accepted")
	}
	if _, err := ObjectTracking(ObjectConfig{
		TagLocations: []BoxLocation{BoxLocation("bogus")},
	}); err == nil {
		t.Error("bogus location accepted")
	}
}

func TestObjectTrackingTwoReaders(t *testing.T) {
	p, err := ObjectTracking(ObjectConfig{
		TagLocations: []BoxLocation{LocFront},
		Antennas:     2,
		Readers:      2,
		DenseMode:    true,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Readers) != 2 {
		t.Fatalf("%d readers", len(p.Readers))
	}
	for _, r := range p.Readers {
		if len(r.Antennas()) != 1 {
			t.Errorf("reader %s drives %d antennas, want 1", r.Name(), len(r.Antennas()))
		}
		if !r.DenseMode() {
			t.Errorf("reader %s should be dense", r.Name())
		}
	}
}

func TestObjectTrackingSpeedOverride(t *testing.T) {
	slow, err := ObjectTracking(ObjectConfig{TagLocations: []BoxLocation{LocFront}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ObjectTracking(ObjectConfig{TagLocations: []BoxLocation{LocFront}, Speed: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sd := slow.RunPass(0).Duration
	fd := fast.RunPass(0).Duration
	if fd >= sd {
		t.Errorf("4 m/s pass (%v) not shorter than 1 m/s pass (%v)", fd, sd)
	}
}

func TestHumanTrackingGeometry(t *testing.T) {
	p, err := HumanTracking(HumanConfig{
		Subjects:     2,
		TagLocations: HumanLocations(),
		Antennas:     2,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.World.Carriers()); got != 2 {
		t.Fatalf("%d subjects", got)
	}
	if got := len(p.World.Tags()); got != 8 {
		t.Fatalf("%d tags, want 2 subjects x 4 locations", got)
	}
	// Badges sit outside the torso cylinder at waist height.
	for _, c := range p.World.Carriers() {
		person := c.(*world.Person)
		for _, tag := range person.Tags() {
			r := tag.Mount.Offset
			r.Z = 0
			if r.Norm() <= person.Radius {
				t.Errorf("%s inside the torso", tag.Name)
			}
			if tag.Mount.Offset.Z < 0.8 || tag.Mount.Offset.Z > 1.2 {
				t.Errorf("%s not at waist height: z=%v", tag.Name, tag.Mount.Offset.Z)
			}
		}
	}
	// Subjects walk in parallel, the farther one farther from antenna a1.
	closer := p.World.Carriers()[0].Center(0)
	farther := p.World.Carriers()[1].Center(0)
	if farther.Y <= closer.Y {
		t.Error("second subject not farther from a1")
	}
	if closer.X != farther.X {
		t.Error("subjects should walk side by side ('in parallel to maximize blocking')")
	}
}

func TestHumanTrackingValidation(t *testing.T) {
	if _, err := HumanTracking(HumanConfig{Subjects: 0, TagLocations: HumanLocations()}); err == nil {
		t.Error("0 subjects accepted")
	}
	if _, err := HumanTracking(HumanConfig{Subjects: 3, TagLocations: HumanLocations()}); err == nil {
		t.Error("3 subjects accepted")
	}
	if _, err := HumanTracking(HumanConfig{Subjects: 1}); err == nil {
		t.Error("no tag locations accepted")
	}
	if _, err := HumanTracking(HumanConfig{
		Subjects:     1,
		TagLocations: []HumanLocation{HumanLocation("hat")},
	}); err == nil {
		t.Error("bogus location accepted")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() float64 {
		p, err := ObjectTracking(ObjectConfig{TagLocations: []BoxLocation{LocFront}, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return p.Measure(4, 0).MeanTagReliability(nil)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced %v then %v", a, b)
	}
}

func TestEPCSchemesByCarrierType(t *testing.T) {
	op, err := ObjectTracking(ObjectConfig{TagLocations: []BoxLocation{LocFront}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range op.World.Tags() {
		if !strings.HasPrefix(tag.Code.URI(), "urn:epc:id:sgtin:") {
			t.Errorf("box tag %s has URI %s, want SGTIN", tag.Name, tag.Code.URI())
		}
	}
	hp, err := HumanTracking(HumanConfig{Subjects: 1, TagLocations: []HumanLocation{HumanFront}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range hp.World.Tags() {
		if !strings.HasPrefix(tag.Code.URI(), "urn:epc:id:gid:") {
			t.Errorf("badge %s has URI %s, want GID", tag.Name, tag.Code.URI())
		}
	}
}
