package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateCorpus = flag.Bool("update", false, "regenerate testdata/corpus_golden.json from the current engine")

const corpusGoldenPath = "testdata/corpus_golden.json"

// TestCorpusGolden is the blackbox regression net: every corpus case —
// five application scenarios, each under its redundancy configurations —
// must reproduce its pinned envelope exactly. Envelopes are deterministic
// (seed-keyed random fields, worker-count-independent measurement), so
// any mismatch is a real behaviour change: either a bug, or an
// intentional engine change that must be re-pinned with
//
//	go test ./internal/scenario -run TestCorpusGolden -update
//
// and justified in the change that carries it.
func TestCorpusGolden(t *testing.T) {
	cases := Corpus(1)
	got := make([]Envelope, len(cases))
	for i, c := range cases {
		env, err := MeasureEnvelope(c, 0)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.Scenario, c.Config, err)
		}
		got[i] = env
	}

	if *updateCorpus {
		if err := os.MkdirAll(filepath.Dir(corpusGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(corpusGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d envelopes)", corpusGoldenPath, len(got))
		return
	}

	data, err := os.ReadFile(corpusGoldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want []Envelope
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", corpusGoldenPath, err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d envelopes, corpus has %d (regenerate with -update)", len(want), len(got))
	}
	for i, g := range got {
		w := want[i]
		t.Run(g.Scenario+"/"+g.Config, func(t *testing.T) {
			if g != w {
				t.Errorf("envelope diverged from golden:\n want %+v\n  got %+v", w, g)
			}
		})
	}
}

// TestCorpusEnvelopeSanity checks structural invariants no golden pin
// covers: every case builds, reads at least something somewhere, and the
// redundancy orderings the scenarios exist to demonstrate hold (more
// antennas or more tags never hurt the mean carrier reliability).
func TestCorpusEnvelopeSanity(t *testing.T) {
	byKey := map[string]Envelope{}
	for _, c := range Corpus(1) {
		env, err := MeasureEnvelope(c, 0)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.Scenario, c.Config, err)
		}
		if env.Tags == 0 || env.Carriers == 0 {
			t.Errorf("%s/%s: empty scene (%d tags, %d carriers)", c.Scenario, c.Config, env.Tags, env.Carriers)
		}
		if env.MeanTag < 0 || env.MeanTag > 1 || env.MeanCarrier < 0 || env.MeanCarrier > 1 {
			t.Errorf("%s/%s: reliability out of range: %+v", c.Scenario, c.Config, env)
		}
		if c.Sessions != nil {
			if env.Merge == "" {
				t.Errorf("%s/%s: session case has no merge policy", c.Scenario, c.Config)
			}
			// MinSessions defaults to at least 2, and the cap bounds the
			// other side even when the rule never fires.
			if env.SessionsMean < 2 || env.SessionsMean > corpusSessionCap {
				t.Errorf("%s/%s: mean sessions-to-stop %.3f outside [2, %d]",
					c.Scenario, c.Config, env.SessionsMean, corpusSessionCap)
			}
			if env.ConfirmedMean <= 0 || env.ConfirmedMean > float64(env.Tags) {
				t.Errorf("%s/%s: mean confirmed %.3f outside (0, %d]",
					c.Scenario, c.Config, env.ConfirmedMean, env.Tags)
			}
		} else if env.Merge != "" || env.SessionsMean != 0 || env.ConfirmedMean != 0 {
			t.Errorf("%s/%s: session columns on a non-session case: %+v", c.Scenario, c.Config, env)
		}
		byKey[c.Scenario+"/"+c.Config] = env
	}
	orderings := [][2]string{
		{"warehouse-dock-door/1ant-1tag", "warehouse-dock-door/2ant-1tag"},
		{"warehouse-dock-door/2ant-1tag", "warehouse-dock-door/2ant-2tag"},
		{"conveyor/fast-1tag", "conveyor/fast-2tag"},
		{"library-gate/1ant", "library-gate/2ant"},
		{"hospital-asset/passive", "hospital-asset/active-beacon"},
		{"warehouse-aisle/1ant", "warehouse-aisle/2ant"},
		{"warehouse-aisle/2ant", "warehouse-aisle/4ant"},
	}
	for _, o := range orderings {
		lo, hi := byKey[o[0]], byKey[o[1]]
		if lo.MeanCarrier > hi.MeanCarrier {
			t.Errorf("redundancy ordering violated: %s (%.3f) > %s (%.3f)",
				o[0], lo.MeanCarrier, o[1], hi.MeanCarrier)
		}
	}
	// A session case shares its build with a base case; the merge must ride
	// along without perturbing the standard measurement columns.
	for _, pair := range [][2]string{
		{"warehouse-dock-door/2ant-2tag", "warehouse-dock-door/2ant-2tag-merge-union"},
		{"conveyor/slow-1tag", "conveyor/slow-1tag-merge-union"},
		{"library-gate/2ant", "library-gate/2ant-merge-2of3"},
	} {
		base, merged := byKey[pair[0]], byKey[pair[1]]
		if base.MeanTag != merged.MeanTag || base.MeanCarrier != merged.MeanCarrier ||
			base.ReadsMean != merged.ReadsMean || base.ReadsMin != merged.ReadsMin ||
			base.ReadsMax != merged.ReadsMax {
			t.Errorf("session merge perturbed the standard measurement:\n base   %+v\n merged %+v", base, merged)
		}
	}
}
