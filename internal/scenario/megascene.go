// Mega-scenes: parameterized fleet-scale worlds for the 10⁴–10⁵-tag
// scaling work (ROADMAP item 4, DESIGN.md §14). Where the corpus cases
// model one portal event, the warehouse aisle models steady-state
// inventory over a long rack run: thousands of static pallet cartons
// along an aisle, a handful of overhead antennas each covering its own
// stretch — exactly the sparse geometry broad-phase culling exists for
// (almost every (tag, antenna) pair is tens of path-loss dB below any
// detection threshold).
package scenario

import (
	"fmt"

	"rfidtrack/internal/core"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// Aisle geometry. Pallet stacks alternate sides of the aisle; each stack
// is a 2×2 footprint of router-class cartons piled in levels, every
// carton labeled on its aisle-facing face.
const (
	// aisleStandoff is the lateral distance from the aisle centerline
	// (where the antennas hang) to a pallet stack's center.
	aisleStandoff = 1.6
	// palletBase is the deck height boxes stack from (the pallet itself).
	palletBase = 0.15
)

// aisleWindow is the simulated inventory window per pass: one full
// multiplexer cycle, so every antenna owns exactly one DefaultAntennaDwell
// slot. Keyed to the antenna count on purpose — antenna k's slot is
// [k·dwell, (k+1)·dwell) no matter how many antennas follow it, so a
// larger antenna set replays the smaller set's rounds verbatim and then
// appends its own. Per-pass read sets are therefore supersets as antennas
// are added, which makes the monotone-R_C sanity property hold per trial,
// not just in expectation.
func aisleWindow(antennas int) float64 {
	return reader.DefaultAntennaDwell * float64(antennas)
}

// WarehouseAisleConfig parameterizes the warehouse-aisle generator.
type WarehouseAisleConfig struct {
	// Tags is the total tag count (one label per carton). The last pallet
	// is partially filled so the count is hit exactly.
	Tags int
	// TagsPerPallet is the cartons per full pallet stack, filled 4 per
	// level (2×2) before starting the next level. Default 12 (2×2×3).
	TagsPerPallet int
	// PalletPitch is the down-aisle distance between neighbouring pallet
	// slots on one side. Default 1.5 m.
	PalletPitch float64
	// Antennas is the overhead antenna count (1–4, the reader's
	// multiplexer width), spread evenly along the aisle, boresights
	// alternating left/right. Default 2.
	Antennas int
	// Seed keys the world's random fields.
	Seed uint64
}

// withDefaults fills zero fields with the documented defaults.
func (c WarehouseAisleConfig) withDefaults() WarehouseAisleConfig {
	if c.TagsPerPallet == 0 {
		c.TagsPerPallet = 12
	}
	if c.PalletPitch == 0 {
		c.PalletPitch = 1.5
	}
	if c.Antennas == 0 {
		c.Antennas = 2
	}
	return c
}

// WarehouseAisle builds the aisle scene as a portal: one reader
// multiplexing the overhead antennas over the static racks, one pass =
// one full multiplexer cycle (see aisleWindow).
func WarehouseAisle(cfg WarehouseAisleConfig) (*core.Portal, error) {
	w, ants, err := WarehouseAisleWorld(cfg)
	if err != nil {
		return nil, err
	}
	r, err := reader.New("aisle-r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// WarehouseAisleWorld builds the aisle's world and antennas without a
// reader — the shape the grid-resolver benchmarks drive directly.
func WarehouseAisleWorld(cfg WarehouseAisleConfig) (*world.World, []*world.Antenna, error) {
	cfg = cfg.withDefaults()
	if cfg.Tags <= 0 {
		return nil, nil, fmt.Errorf("scenario: warehouse aisle wants Tags >= 1, got %d", cfg.Tags)
	}
	if cfg.TagsPerPallet < 1 {
		return nil, nil, fmt.Errorf("scenario: warehouse aisle wants TagsPerPallet >= 1, got %d", cfg.TagsPerPallet)
	}
	if cfg.PalletPitch <= 0 {
		return nil, nil, fmt.Errorf("scenario: warehouse aisle wants PalletPitch > 0, got %g", cfg.PalletPitch)
	}
	if cfg.Antennas < 1 || cfg.Antennas > 4 {
		return nil, nil, fmt.Errorf("scenario: warehouse aisle wants 1-4 antennas, got %d", cfg.Antennas)
	}

	w := world.New(rf.DefaultCalibration(), cfg.Seed)
	pallets := (cfg.Tags + cfg.TagsPerPallet - 1) / cfg.TagsPerPallet
	slots := (pallets + 1) / 2 // pallet slots per side
	span := float64(slots-1) * cfg.PalletPitch

	// Antennas hang over the centerline at the centers of a fixed
	// four-stretch split of the span, boresights alternating toward the
	// left (+y) and right (−y) racks. The positions are nested — antenna k
	// sits at the same place whether 1 or 4 antennas are deployed — so a
	// larger antenna set strictly adds coverage of a stretch no smaller
	// set reaches (the monotone-R_C sanity property the corpus pins).
	ants := make([]*world.Antenna, cfg.Antennas)
	for k := range ants {
		x := span * float64(2*k+1) / 8
		face := geom.UnitY
		if k%2 == 1 {
			face = geom.UnitY.Scale(-1)
		}
		ants[k] = w.AddAntenna(fmt.Sprintf("aisle-a%d", k+1),
			geom.NewPose(geom.V(x, 0, antennaHeight), face, geom.UnitZ))
	}

	window := aisleWindow(cfg.Antennas)
	half := routerBoxSize.Scale(0.5)
	serial := uint64(0)
	for p := 0; p < pallets; p++ {
		side := 1.0 // left rack, +y
		if p%2 == 1 {
			side = -1.0
		}
		slotX := float64(p/2) * cfg.PalletPitch
		boxes := cfg.TagsPerPallet
		if rem := cfg.Tags - p*cfg.TagsPerPallet; rem < boxes {
			boxes = rem
		}
		for b := 0; b < boxes; b++ {
			level, cell := b/4, b%4
			// 2×2 footprint: fx along the aisle, fy toward/away from it.
			fx, fy := float64(cell%2)-0.5, float64(cell/2)-0.5
			center := geom.V(
				slotX+fx*routerBoxSize.X,
				side*(aisleStandoff+fy*routerBoxSize.Y),
				palletBase+half.Z+float64(level)*routerBoxSize.Z)
			name := fmt.Sprintf("aisle/p%d/b%d", p, b)
			box := w.AddBox(name,
				geom.StaticPath{Pose: geom.NewPose(center, geom.UnitX, geom.UnitZ), Dur: window},
				routerBoxSize, rf.Cardboard, rf.Metal, routerContentSize)
			// Label on the aisle-facing face, dipole vertical — the natural
			// hand-applied placement, readable from the centerline.
			serial++
			w.AttachTag(box, name+"/front", sgtin(800, serial), world.Mount{
				Offset: geom.V(0, -side*(half.Y+0.002), 0),
				Normal: geom.V(0, -side, 0),
				Axis:   geom.UnitZ,
				Gap:    frontMountGap,
			})
		}
	}
	return w, ants, nil
}
