//go:build race

package scenario

// raceEnabled: see race_off_test.go.
const raceEnabled = true
