package scenario

import (
	"reflect"
	"testing"

	"rfidtrack/internal/core"
)

// TestMegaSceneScaleSmoke is the scaling smoke gate (make scale-smoke,
// part of make check): one full inventory pass over a 10⁴-tag warehouse
// aisle, run once with broad-phase culling and once densely, must produce
// byte-identical read streams — every event field including RSSI, in the
// same order. At this scale the culler skips the overwhelming majority of
// (tag, antenna) pairs, so the comparison exercises the conservative
// bound, the sentinel semantics, and the sparse compose path against the
// dense reference in one shot. Skipped under -race only because the dense
// leg's O(tags × carriers) obstruction scans take minutes there; the race
// -short suite still covers the culled path via the world package's cull
// contract tests (corpus worlds sit below the cullMinTags gate and
// resolve densely).
func TestMegaSceneScaleSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("dense 10k-tag leg is minutes under the race detector; run via make scale-smoke")
	}
	var got [2]core.PassResult
	for i, cull := range []bool{true, false} {
		p, err := WarehouseAisle(WarehouseAisleConfig{Tags: 10000, Antennas: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		p.World.SetLinkCull(cull)
		res := p.RunPass(1)
		if res.Rounds == 0 || len(res.ReadEPCs) == 0 {
			t.Fatalf("cull=%v: empty pass (%d rounds, %d EPCs)", cull, res.Rounds, len(res.ReadEPCs))
		}
		got[i] = res
	}
	if got[0].Rounds != got[1].Rounds {
		t.Errorf("round counts diverged: culled %d, dense %d", got[0].Rounds, got[1].Rounds)
	}
	if !reflect.DeepEqual(got[0].ReadEPCs, got[1].ReadEPCs) {
		t.Errorf("read EPC sets diverged: culled %d, dense %d", len(got[0].ReadEPCs), len(got[1].ReadEPCs))
	}
	if !reflect.DeepEqual(got[0].Events, got[1].Events) {
		t.Errorf("event streams diverged between culled and dense passes")
	}
}
