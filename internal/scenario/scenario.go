// Package scenario builds the paper's experiments: the static read-range
// grid (Fig. 2), the inter-tag spacing × orientation cart passes (Figs. 3
// and 4), the twelve router boxes (Tables 1 and 3), and the walking
// subjects (Tables 2, 4 and 5) — all parameterized by the redundancy
// configuration under study and a seed.
//
// Shared geometry (the paper's Section 3 setup): the portal antenna sits
// at the origin at 1 m height facing +Y; carriers pass along +X at about
// 1 m/s with 1 m of standoff. Two-antenna portals add a second antenna
// 2 m away on the far side, facing back across the portal.
package scenario

import (
	"fmt"

	"rfidtrack/internal/core"
	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/reader"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/world"
)

// Portal geometry shared by every experiment.
const (
	antennaHeight = 1.0
	portalDepth   = 2.0 // distance between the two facing antennas
	passSpeed     = 1.0 // m/s, "a speed of about 1 m/s"
	passStandoff  = 1.0 // m, "antenna-tag distance of 1 m"
	passHalfSpan  = 2.5 // m of travel on each side of the portal
)

// addPortalAntennas places n antennas (1 or 2) and returns them.
func addPortalAntennas(w *world.World, n int) []*world.Antenna {
	ants := []*world.Antenna{
		w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, antennaHeight), geom.UnitY, geom.UnitZ)),
	}
	if n >= 2 {
		ants = append(ants, w.AddAntenna("a2",
			geom.NewPose(geom.V(0, portalDepth, antennaHeight), geom.UnitY.Scale(-1), geom.UnitZ)))
	}
	return ants
}

func sgtin(item, serial uint64) epc.Code {
	c, err := epc.SGTIN96{Filter: 2, CompanyDigits: 7, Company: 614141, ItemRef: item, Serial: serial}.Encode()
	if err != nil {
		panic(fmt.Sprintf("scenario: bad SGTIN: %v", err)) // unreachable: fields are in range
	}
	return c
}

func gid(class, serial uint64) epc.Code {
	c, err := epc.GID96{Manager: 95100000, Class: class, Serial: serial}.Encode()
	if err != nil {
		panic(fmt.Sprintf("scenario: bad GID: %v", err)) // unreachable: fields are in range
	}
	return c
}

// ReadRange builds the Figure 2 experiment: 20 tags in a 5×4 plane grid
// (12.5 cm horizontal, 20 cm vertical spacing) parallel to the antenna at
// the given distance, read statically.
func ReadRange(distance float64, seed uint64) (*core.Portal, error) {
	w := world.New(rf.DefaultCalibration(), seed)
	ants := addPortalAntennas(w, 1)
	// The mounting board: a thin foam/cardboard sheet, no content.
	board := w.AddBox("board",
		geom.StaticPath{Pose: geom.NewPose(geom.V(0, distance, antennaHeight), geom.UnitX, geom.UnitZ)},
		geom.V(0.7, 0.01, 0.75), rf.Cardboard, rf.Air, geom.Vec3{})
	n := 0
	for row := 0; row < 4; row++ {
		for col := 0; col < 5; col++ {
			x := (float64(col) - 2) * 0.125
			z := (float64(row) - 1.5) * 0.20
			w.AttachTag(board, fmt.Sprintf("grid%02d", n), sgtin(100, uint64(n)), world.Mount{
				Offset: geom.V(x, -0.006, z),
				Normal: geom.V(0, -1, 0), // facing the antenna
				Axis:   geom.UnitX,       // horizontal dipole, broadside
				Gap:    0.1,              // nothing behind the board
			})
			n++
		}
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// Orientation identifies one of the six Figure-3 tag orientations on the
// cart box. Orientations 1 and 5 point the dipole at the antenna (the
// paper's "perpendicular to the antenna" cases).
type Orientation int

// The six Figure-3 orientations as (face, dipole axis) pairs.
const (
	// Orient1: on the leading face, dipole pointing at the antenna. BAD.
	Orient1 Orientation = iota + 1
	// Orient2: facing the antenna, dipole horizontal along travel.
	Orient2
	// Orient3: facing the antenna, dipole vertical.
	Orient3
	// Orient4: lying on top, dipole horizontal along travel.
	Orient4
	// Orient5: lying on top, dipole pointing at the antenna. BAD.
	Orient5
	// Orient6: on the leading face, dipole vertical.
	Orient6
)

// mount returns the face normal, dipole axis and side-by-side stacking
// direction for the orientation.
func (o Orientation) mount() (normal, axis, stack geom.Vec3, ok bool) {
	switch o {
	case Orient1:
		return geom.UnitX, geom.UnitY, geom.UnitZ, true
	case Orient2:
		return geom.V(0, -1, 0), geom.UnitX, geom.UnitZ, true
	case Orient3:
		return geom.V(0, -1, 0), geom.UnitZ, geom.UnitX, true
	case Orient4:
		return geom.UnitZ, geom.UnitX, geom.UnitY, true
	case Orient5:
		return geom.UnitZ, geom.UnitY, geom.UnitX, true
	case Orient6:
		return geom.UnitX, geom.UnitZ, geom.UnitY, true
	default:
		return geom.Vec3{}, geom.Vec3{}, geom.Vec3{}, false
	}
}

// InterTag builds the Figure 4 experiment: ten parallel tags with the
// given inter-tag spacing (meters) and orientation, on an empty cardboard
// box carted past the antenna at 1 m/s and 1 m standoff.
func InterTag(spacing float64, o Orientation, seed uint64) (*core.Portal, error) {
	normal, axis, stack, ok := o.mount()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown orientation %d", o)
	}
	w := world.New(rf.DefaultCalibration(), seed)
	ants := addPortalAntennas(w, 1)
	box := w.AddBox("cartbox", geom.CrossingPass(passSpeed, passStandoff, passHalfSpan, antennaHeight),
		geom.V(0.6, 0.4, 0.4), rf.Cardboard, rf.Air, geom.Vec3{})
	// Face offsets: center of the face the orientation mounts on.
	face := geom.V(normal.X*0.3, normal.Y*0.2, normal.Z*0.2)
	for i := 0; i < 10; i++ {
		along := (float64(i) - 4.5) * spacing
		w.AttachTag(box, fmt.Sprintf("t%02d", i), sgtin(200, uint64(i)), world.Mount{
			Offset: face.Add(stack.Scale(along)).Add(normal.Scale(0.002)),
			Normal: normal,
			Axis:   axis,
			Gap:    0.1, // empty box: nothing behind the tags
		})
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}

// BoxLocation is a tag location on a router box (Table 1).
type BoxLocation string

// Table 1 tag locations.
const (
	LocFront   BoxLocation = "front"
	LocSideIn  BoxLocation = "side-closer"  // side facing antenna a1
	LocSideOut BoxLocation = "side-farther" // side away from antenna a1
	LocTop     BoxLocation = "top"
)

// BoxLocations lists the Table 1 locations in paper order.
func BoxLocations() []BoxLocation {
	return []BoxLocation{LocFront, LocSideIn, LocSideOut, LocTop}
}

// Router box geometry: a flat metal router snug under the lid and close
// to the leading face, foam at the sides — which is why the top mount gap
// is smallest (strong ground plane), the front gap intermediate, and the
// side gaps large enough to escape detuning.
var (
	routerBoxSize     = geom.V(0.45, 0.40, 0.20)
	routerContentSize = geom.V(0.38, 0.33, 0.15)
	topMountGap       = 0.018
	frontMountGap     = 0.042
	sideMountGap      = 0.05
)

// boxMount returns the mount for a tag at the given location on a router
// box. Dipole axes are vertical on the vertical faces and along travel on
// the lid (how a label is naturally applied).
func boxMount(loc BoxLocation) (world.Mount, error) {
	half := routerBoxSize.Scale(0.5)
	switch loc {
	case LocFront:
		return world.Mount{
			Offset: geom.V(half.X+0.002, 0, 0), Normal: geom.UnitX, Axis: geom.UnitZ, Gap: frontMountGap,
		}, nil
	case LocSideIn:
		return world.Mount{
			Offset: geom.V(0, -half.Y-0.002, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: sideMountGap,
		}, nil
	case LocSideOut:
		return world.Mount{
			Offset: geom.V(0, half.Y+0.002, 0), Normal: geom.UnitY, Axis: geom.UnitZ, Gap: sideMountGap,
		}, nil
	case LocTop:
		return world.Mount{
			Offset: geom.V(0, 0, half.Z+0.002), Normal: geom.UnitZ, Axis: geom.UnitX, Gap: topMountGap,
		}, nil
	default:
		return world.Mount{}, fmt.Errorf("scenario: unknown box location %q", loc)
	}
}

// ObjectConfig parameterizes the object-tracking experiments (Tables 1
// and 3 and the reader-redundancy study).
type ObjectConfig struct {
	// TagLocations is the set of tag locations per box (one entry for
	// Table 1, two for Table 3's redundant-tag rows).
	TagLocations []BoxLocation
	// Antennas per portal (1 or 2). With two readers, each reader drives
	// one antenna.
	Antennas int
	// Readers per portal (1 or 2).
	Readers int
	// DenseMode enables dense-reader mode on all readers.
	DenseMode bool
	// Speed overrides the cart speed in m/s (0 = the paper's 1 m/s).
	Speed float64
	// Calibration overrides the radio constants (nil = defaults); used by
	// the ablation experiments.
	Calibration *rf.Calibration
	Seed        uint64
}

// ObjectTracking builds the Table 1/3 experiment: twelve identical router
// boxes stacked three rows × two columns × two layers on a cart, passing
// the portal at 1 m/s with the closer column at 1 m.
func ObjectTracking(cfg ObjectConfig) (*core.Portal, error) {
	if len(cfg.TagLocations) == 0 {
		return nil, fmt.Errorf("scenario: no tag locations")
	}
	if cfg.Antennas == 0 {
		cfg.Antennas = 1
	}
	if cfg.Readers == 0 {
		cfg.Readers = 1
	}
	if cfg.Readers > cfg.Antennas {
		return nil, fmt.Errorf("scenario: %d readers need at least as many antennas (%d)", cfg.Readers, cfg.Antennas)
	}
	if cfg.Speed <= 0 {
		cfg.Speed = passSpeed
	}
	cal := rf.DefaultCalibration()
	if cfg.Calibration != nil {
		cal = *cfg.Calibration
	}
	w := world.New(cal, cfg.Seed)
	ants := addPortalAntennas(w, cfg.Antennas)

	// The cart: columns at y = 1.0 and 1.45 (box depth 0.40 + 5 cm gap),
	// layers centered at z = 0.80 and 1.05, rows packed tightly along
	// travel (1 cm gaps), so leading boxes shadow the front tags behind
	// them — the cart is a moving stack, not a spaced parade.
	serial := uint64(0)
	for row := 0; row < 3; row++ {
		for col := 0; col < 2; col++ {
			for layer := 0; layer < 2; layer++ {
				name := fmt.Sprintf("box%d%d%d", row, col, layer)
				y := passStandoff + float64(col)*0.45
				z := 0.80 + float64(layer)*0.25
				path := geom.LinePath{
					Start: geom.NewPose(geom.V(-passHalfSpan+float64(row)*0.46, y, z), geom.UnitX, geom.UnitZ),
					Vel:   geom.UnitX.Scale(cfg.Speed),
					Dur:   2 * passHalfSpan / cfg.Speed,
				}
				box := w.AddBox(name, path, routerBoxSize, rf.Cardboard, rf.Metal, routerContentSize)
				for _, loc := range cfg.TagLocations {
					m, err := boxMount(loc)
					if err != nil {
						return nil, err
					}
					serial++
					w.AttachTag(box, name+"/"+string(loc), sgtin(300, serial), m)
				}
			}
		}
	}

	readers := make([]*reader.Reader, cfg.Readers)
	var opts []reader.Option
	if cfg.DenseMode {
		opts = append(opts, reader.WithDenseMode(true))
	}
	if cfg.Readers == 1 {
		r, err := reader.New("r1", w, ants, opts...)
		if err != nil {
			return nil, err
		}
		readers[0] = r
	} else {
		per := len(ants) / cfg.Readers
		for i := range readers {
			r, err := reader.New(fmt.Sprintf("r%d", i+1), w, ants[i*per:(i+1)*per], opts...)
			if err != nil {
				return nil, err
			}
			readers[i] = r
		}
	}
	return &core.Portal{World: w, Readers: readers}, nil
}

// HumanLocation is a badge location on a subject (Table 2).
type HumanLocation string

// Table 2 tag locations. Sides are named relative to antenna a1.
const (
	HumanFront   HumanLocation = "front"
	HumanBack    HumanLocation = "back"
	HumanSideIn  HumanLocation = "side-closer"
	HumanSideOut HumanLocation = "side-farther"
)

// HumanLocations lists the Table 2 locations.
func HumanLocations() []HumanLocation {
	return []HumanLocation{HumanFront, HumanBack, HumanSideIn, HumanSideOut}
}

// Subject body model: waist-level badges hanging from the belt, close to
// but not touching the body (the paper's best-performing placement).
const (
	subjectHeight = 1.75
	subjectRadius = 0.21 // torso plus swinging arms
	badgeHeight   = 1.00
	badgeStandoff = 0.23  // just outside the torso cylinder
	badgeGap      = 0.025 // hanging from the belt, clear of the body
)

func humanMount(loc HumanLocation) (world.Mount, error) {
	switch loc {
	case HumanFront:
		return world.Mount{
			Offset: geom.V(badgeStandoff, 0, badgeHeight), Normal: geom.UnitX, Axis: geom.UnitZ, Gap: badgeGap,
		}, nil
	case HumanBack:
		return world.Mount{
			Offset: geom.V(-badgeStandoff, 0, badgeHeight), Normal: geom.UnitX.Scale(-1), Axis: geom.UnitZ, Gap: badgeGap,
		}, nil
	case HumanSideIn:
		return world.Mount{
			Offset: geom.V(0, -badgeStandoff, badgeHeight), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: badgeGap,
		}, nil
	case HumanSideOut:
		return world.Mount{
			Offset: geom.V(0, badgeStandoff, badgeHeight), Normal: geom.UnitY, Axis: geom.UnitZ, Gap: badgeGap,
		}, nil
	default:
		return world.Mount{}, fmt.Errorf("scenario: unknown human location %q", loc)
	}
}

// HumanConfig parameterizes the human-tracking experiments (Tables 2, 4
// and 5).
type HumanConfig struct {
	// Subjects walking in parallel (1 or 2). Subject "closer" walks at 1 m
	// from antenna a1; "farther" at 1.6 m, partially shadowed.
	Subjects int
	// TagLocations per subject.
	TagLocations []HumanLocation
	// Antennas per portal (1 or 2, one reader).
	Antennas int
	Seed     uint64
}

// HumanTracking builds the Table 2/4/5 experiment.
func HumanTracking(cfg HumanConfig) (*core.Portal, error) {
	if cfg.Subjects < 1 || cfg.Subjects > 2 {
		return nil, fmt.Errorf("scenario: %d subjects unsupported", cfg.Subjects)
	}
	if len(cfg.TagLocations) == 0 {
		return nil, fmt.Errorf("scenario: no tag locations")
	}
	if cfg.Antennas == 0 {
		cfg.Antennas = 1
	}
	w := world.New(rf.DefaultCalibration(), cfg.Seed)
	ants := addPortalAntennas(w, cfg.Antennas)

	names := []string{"closer", "farther"}
	standoffs := []float64{passStandoff, passStandoff + 0.55}
	for s := 0; s < cfg.Subjects; s++ {
		path := geom.LinePath{
			Start: geom.NewPose(geom.V(-passHalfSpan, standoffs[s], 0), geom.UnitX, geom.UnitZ),
			Vel:   geom.UnitX.Scale(passSpeed),
			Dur:   2 * passHalfSpan / passSpeed,
		}
		p := w.AddPerson(names[s], path, subjectHeight, subjectRadius)
		for i, loc := range cfg.TagLocations {
			m, err := humanMount(loc)
			if err != nil {
				return nil, err
			}
			w.AttachTag(p, names[s]+"/"+string(loc), gid(uint64(s+1), uint64(i+1)), m)
		}
	}
	r, err := reader.New("r1", w, ants)
	if err != nil {
		return nil, err
	}
	return &core.Portal{World: w, Readers: []*reader.Reader{r}}, nil
}
