//go:build !race

package scenario

// raceEnabled reports whether the race detector instruments this build;
// the 10⁴-tag dense-resolution smoke leg is minutes under -race, so the
// scale smoke test skips there (make check runs it race-free instead).
const raceEnabled = false
