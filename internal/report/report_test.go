package report

import (
	"strings"
	"testing"
)

func sample() Table {
	t := Table{
		Title:   "Sample",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", "1")
	t.AddRow("a-much-longer-name", "22")
	return t
}

func TestTableString(t *testing.T) {
	s := sample().String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), s)
	}
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "value" cells start at the same offset in each row.
	off3 := strings.Index(lines[3], "1")
	off4 := strings.Index(lines[4], "22")
	if off3 != off4 {
		t.Errorf("misaligned columns:\n%s", s)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := Table{Columns: []string{"x"}}
	tab.AddRow("1")
	s := tab.String()
	if strings.HasPrefix(s, "\n") {
		t.Error("empty title produced a leading blank line")
	}
}

func TestTableMarkdown(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{
		"**Sample**",
		"| name | value |",
		"|---|---|",
		"| alpha | 1 |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableRaggedRowTolerated(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	tab.AddRow("1", "2", "extra")
	// Must not panic.
	if s := tab.String(); !strings.Contains(s, "extra") {
		t.Errorf("extra cell lost:\n%s", s)
	}
}

func TestPercent(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0%"},
		{0.29, "29%"},
		{0.87, "87%"},
		{1, "100%"},
		{0.999, "99.9%"},
		{0.9996, "100%"},
		{0.634, "63%"},
	}
	for _, tt := range tests {
		if got := Percent(tt.in); got != tt.want {
			t.Errorf("Percent(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNum(t *testing.T) {
	if got := Num(19.666); got != "19.7" {
		t.Errorf("Num = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Title: "ignored", Columns: []string{"a", "b"}}
	tab.AddRow("plain", `quo"te,comma`)
	csv := tab.CSV()
	want := "a,b\nplain,\"quo\"\"te,comma\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
