// Package report renders experiment results as aligned ASCII tables and
// simple text series, the format cmd/rfsim and cmd/experiments print and
// EXPERIMENTS.md embeds.
package report

import (
	"fmt"
	"strings"
)

// csvEscape quotes a cell when needed per RFC 4180.
func csvEscape(cell string) string {
	if strings.ContainsAny(cell, ",\"\n") {
		return "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
	}
	return cell
}

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180 CSV (header row first, no title).
func (t Table) CSV() string {
	var sb strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(c))
		}
		sb.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Percent formats a [0,1] probability the way the paper prints it.
func Percent(p float64) string {
	v := 100 * p
	if v >= 99.5 && v < 99.95 {
		// Keep the paper's "99.9%"-style precision near the top instead of
		// rounding a not-quite-perfect value up to 100%.
		return fmt.Sprintf("%.1f%%", v)
	}
	return fmt.Sprintf("%.0f%%", v)
}

// Num formats a float compactly (one decimal).
func Num(v float64) string { return fmt.Sprintf("%.1f", v) }
