package world

import (
	"fmt"
	"math"
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
)

// cullScene builds the geometry broad-phase culling exists for: one
// antenna at the origin and a long line of static tagged cartons marching
// away down the x axis, most of them tens of path-loss dB out of range.
// One active tag rides along to exercise the per-tag threshold (its −85
// dBm sensitivity keeps it uncullable at any distance this scene spans).
func cullScene(tags int) (*World, []*Antenna) {
	w := New(rf.DefaultCalibration(), 11)
	ant := w.AddAntenna("c-a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	for i := 0; i < tags; i++ {
		box := w.AddBox(fmt.Sprintf("cbox%d", i),
			geom.StaticPath{Pose: geom.NewPose(geom.V(float64(i)*0.5, 1.5, 0.3), geom.UnitX, geom.UnitZ), Dur: 4},
			geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Plastic, geom.V(0.38, 0.33, 0.15))
		w.AttachTag(box, fmt.Sprintf("ctag%d", i), testCode(uint64(i+1)), Mount{
			Offset: geom.V(0, -0.21, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
		})
	}
	person := w.AddPerson("c-walker", geom.StaticPath{Pose: geom.NewPose(geom.V(2, 3, 0), geom.UnitY, geom.UnitZ), Dur: 4}, 1.8, 0.25)
	w.AttachActiveTag(person, "c-beacon", testCode(uint64(tags+1)), Mount{
		Offset: geom.V(0, -0.26, 1.0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.02,
	})
	return w, []*Antenna{ant}
}

// TestResolveLinkGridCullPredicates is the culler's core contract
// (DESIGN.md §14): for every (tag, antenna) pair, every instant, the
// culled grid serves the same decodability predicates — TagPowered,
// ForwardDecodable, ReverseDecodable — as the dense per-link path.
// Raw powers of culled pairs are sentinels by design, so the comparison
// is at the predicate layer the round protocol actually consumes. The
// scene is sized so the culler provably fires (checked via the
// grid.culled counter), and the contexts sweep the cached layers: replay,
// new instant, new fading block, new pass.
func TestResolveLinkGridCullPredicates(t *testing.T) {
	w, ants := cullScene(300)
	ref, refAnts := cullScene(300) // pristine per-link reference world
	cal := w.Cal
	m := obs.NewMetrics()
	w.Observe(m.Shard())
	var g LinkGrid

	contexts := []LinkContext{
		{Time: 0, Pass: 0, Round: 0, Cull: true},
		{Time: 0, Pass: 0, Round: 0, Cull: true},   // replay: every layer hits
		{Time: 0.1, Pass: 0, Round: 1, Cull: true}, // same block, new instant
		{Time: 1.2, Pass: 0, Round: 3, Cull: true}, // new fading block
		{Time: 1.2, Pass: 1, Round: 3, Cull: true}, // new pass, same instant
	}
	for ci, ctx := range contexts {
		w.ResolveLinkGrid(ants, ctx, &g)
		rctx := ctx
		rctx.Cull = false
		for ti, tag := range w.Tags() {
			got := g.Link(ants[0], tag)
			want := ref.ResolveLink(ref.Tags()[ti], refAnts[0], rctx)
			if got.TagPowered(cal) != want.TagPowered(cal) ||
				got.ForwardDecodable(cal) != want.ForwardDecodable(cal) ||
				got.ReverseDecodable(cal) != want.ReverseDecodable(cal) {
				t.Fatalf("ctx %d tag %s: culled predicates diverge from dense (culled %+v, dense %+v)",
					ci, tag.Name, got, want)
			}
		}
	}

	snap := m.Snapshot()
	if snap.Counters["grid.culled"] == 0 {
		t.Fatal("scene never culled a pair — the test exercises nothing")
	}
	if snap.Counters["grid.active_links"]+snap.Counters["grid.culled"] != snap.Counters["grid.links"] {
		t.Errorf("active (%d) + culled (%d) != links (%d)",
			snap.Counters["grid.active_links"], snap.Counters["grid.culled"], snap.Counters["grid.links"])
	}
	// Interference present: culling must stand down (foreign CW can raise
	// tag interference on pairs the bound would skip), and the grid must
	// match the dense reference exactly, not just on predicates.
	a2 := w.AddAntenna("c-a2", geom.NewPose(geom.V(4, 0, 1), geom.UnitY, geom.UnitZ))
	ra2 := ref.AddAntenna("c-a2", geom.NewPose(geom.V(4, 0, 1), geom.UnitY, geom.UnitZ))
	fctx := LinkContext{Time: 2.0, Pass: 1, Round: 5, Cull: true, Foreign: []ForeignEmitter{{Antenna: a2}}}
	w.ResolveLinkGrid(ants, fctx, &g)
	rctx := fctx
	rctx.Cull = false
	rctx.Foreign = []ForeignEmitter{{Antenna: ra2}}
	for ti, tag := range w.Tags() {
		got := g.Link(ants[0], tag)
		want := ref.ResolveLink(ref.Tags()[ti], refAnts[0], rctx)
		want.Forward = nil
		if got != want {
			t.Fatalf("foreign ctx tag %s: grid %+v != per-link %+v", tag.Name, got, want)
		}
	}
}

// TestResolveLinkGridCullAfterDense pins the stale-value contract: a
// dense resolution followed by a culled one at the same instant leaves
// real (pre-cull) powers in rows the culler skips, and those must still
// read as undetectable — the sentinel is an optimization, not the safety
// argument (the bound proves any leftover power is below sensitivity).
func TestResolveLinkGridCullAfterDense(t *testing.T) {
	w, ants := cullScene(200)
	cal := w.Cal
	var g LinkGrid
	ctx := LinkContext{Time: 0.5, Pass: 0, Round: 0}
	w.ResolveLinkGrid(ants, ctx, &g) // dense: every row holds real powers

	dense := make([]bool, len(w.Tags()))
	for ti, tag := range w.Tags() {
		dense[ti] = g.Link(ants[0], tag).TagPowered(cal)
	}
	ctx.Cull = true
	w.ResolveLinkGrid(ants, ctx, &g)
	for ti, tag := range w.Tags() {
		if got := g.Link(ants[0], tag).TagPowered(cal); got != dense[ti] {
			t.Fatalf("tag %s: TagPowered flipped %v -> %v across dense -> culled resolution",
				tag.Name, dense[ti], got)
		}
	}
}

// TestResolveLinkGridGrowShrink reuses one LinkGrid across worlds three
// orders of magnitude apart — 200 tags, then 10⁵, then 200 again — and
// demands per-link-exact results after every resize. The shrink leg is
// the interesting one: column scratch and active lists sized for 10⁵
// rows must not leak stale data into the small world's links. Both world
// sizes sit above cullMinTags so every culled leg really culls.
func TestResolveLinkGridGrowShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-tag world build is seconds; covered by the full suite")
	}
	var g LinkGrid
	small, smallAnts := cullScene(200)
	big, bigAnts := cullScene(100000)
	ref, refAnts := cullScene(200)
	cal := small.Cal

	check := func(stage string, w *World, ants []*Antenna, ctx LinkContext) {
		t.Helper()
		w.ResolveLinkGrid(ants, ctx, &g)
		rctx := ctx
		rctx.Cull = false
		for ti, tag := range w.Tags() {
			got := g.Link(ants[0], tag)
			want := ref.ResolveLink(ref.Tags()[ti], refAnts[0], rctx)
			if got.TagPowered(cal) != want.TagPowered(cal) ||
				got.ForwardDecodable(cal) != want.ForwardDecodable(cal) ||
				got.ReverseDecodable(cal) != want.ReverseDecodable(cal) {
				t.Fatalf("%s tag %s: predicates diverge (grid %+v, per-link %+v)", stage, tag.Name, got, want)
			}
		}
	}

	ctx := LinkContext{Time: 0.25, Pass: 0, Round: 0, Cull: true}
	check("pre-grow", small, smallAnts, ctx)

	// Grow: 10⁵ rows, culled (dense resolution at this scale is O(n²) in
	// the obstruction scan — exactly the wall the culler removes). Sanity:
	// near tags stay detectable, far tags don't.
	big.ResolveLinkGrid(bigAnts, ctx, &g)
	near := g.Link(bigAnts[0], big.Tags()[2])
	far := g.Link(bigAnts[0], big.Tags()[90000])
	if !near.TagPowered(cal) {
		t.Error("grow: near tag not powered in 10⁵-tag world")
	}
	if far.TagPowered(cal) || !math.IsInf(float64(far.TagPower), -1) {
		t.Errorf("grow: tag 45 km out should be culled to -Inf, got %+v", far)
	}

	// Shrink back: every small-world link must be exact again, with and
	// without culling, on fresh instants (forcing every layer to refill
	// over the shrunken row set).
	check("post-shrink culled", small, smallAnts, LinkContext{Time: 0.75, Pass: 1, Round: 2, Cull: true})
	check("post-shrink dense", small, smallAnts, LinkContext{Time: 1.5, Pass: 2, Round: 4})
}

// TestResolveLinkGridScaleZeroAlloc pins the culled scale path's
// steady-state allocation contract (`make alloc-guard`): once warm, a
// full culled column resolution — cull rebuild, sparse compose, new
// instants, new fading blocks, new passes — performs no allocation.
func TestResolveLinkGridScaleZeroAlloc(t *testing.T) {
	w, ants := cullScene(2000)
	var g LinkGrid
	w.ResolveLinkGrid(ants, LinkContext{Time: 0, Pass: 0, Round: 0, Cull: true}, &g)

	round := 0
	if avg := testing.AllocsPerRun(100, func() {
		round++
		ctx := LinkContext{
			Time:  float64(round) * 0.01,
			Pass:  round % 4,
			Round: round,
			Cull:  true,
		}
		w.ResolveLinkGrid(ants, ctx, &g)
	}); avg != 0 {
		t.Errorf("warmed culled ResolveLinkGrid allocates %.2f allocs/op, want 0", avg)
	}
}
