package world

import (
	"math"

	"rfidtrack/internal/geom"
)

// segmentHitsAABB reports whether the segment from a to b intersects the
// axis-aligned box [min, max] (slab method).
func segmentHitsAABB(a, b, min, max geom.Vec3) bool {
	d := b.Sub(a)
	tEnter, tExit := 0.0, 1.0
	for axis := 0; axis < 3; axis++ {
		var origin, dir, lo, hi float64
		switch axis {
		case 0:
			origin, dir, lo, hi = a.X, d.X, min.X, max.X
		case 1:
			origin, dir, lo, hi = a.Y, d.Y, min.Y, max.Y
		default:
			origin, dir, lo, hi = a.Z, d.Z, min.Z, max.Z
		}
		if math.Abs(dir) < 1e-12 {
			if origin < lo || origin > hi {
				return false
			}
			continue
		}
		t1 := (lo - origin) / dir
		t2 := (hi - origin) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tEnter = math.Max(tEnter, t1)
		tExit = math.Min(tExit, t2)
		if tEnter > tExit {
			return false
		}
	}
	return true
}

// segmentHitsCylinder reports whether the segment from a to b intersects a
// finite vertical cylinder with the given center axis (x, y), radius, and
// z extent [z0, z1].
func segmentHitsCylinder(a, b geom.Vec3, cx, cy, radius, z0, z1 float64) bool {
	// Work in the XY plane first: find the parameter range where the
	// segment is inside the infinite cylinder.
	dx, dy := b.X-a.X, b.Y-a.Y
	fx, fy := a.X-cx, a.Y-cy
	A := dx*dx + dy*dy
	B := 2 * (fx*dx + fy*dy)
	C := fx*fx + fy*fy - radius*radius
	var tLo, tHi float64
	if A < 1e-12 {
		// Vertical segment in XY: inside or outside for all t.
		if C > 0 {
			return false
		}
		tLo, tHi = 0, 1
	} else {
		disc := B*B - 4*A*C
		if disc < 0 {
			return false
		}
		s := math.Sqrt(disc)
		tLo = (-B - s) / (2 * A)
		tHi = (-B + s) / (2 * A)
		if tHi < 0 || tLo > 1 {
			return false
		}
		tLo = math.Max(tLo, 0)
		tHi = math.Min(tHi, 1)
	}
	// Now intersect with the z slab over the same parameter range.
	za := a.Z + (b.Z-a.Z)*tLo
	zb := a.Z + (b.Z-a.Z)*tHi
	if za > zb {
		za, zb = zb, za
	}
	return zb >= z0 && za <= z1
}
