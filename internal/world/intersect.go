package world

import (
	"math"

	"rfidtrack/internal/geom"
)

// segmentHitsAABB reports whether the segment from a to b intersects the
// axis-aligned box [min, max] (slab method). The slabs are unrolled and
// min/max open-coded as branches: this test runs once per carrier face
// per link resolution, and math.Max/Min are library calls on targets
// without float intrinsics. All inputs are finite and every divisor has
// magnitude ≥ 1e-12, so the branches decide exactly as math.Max/Min
// would.
func segmentHitsAABB(a, b, min, max geom.Vec3) bool {
	tEnter, tExit := 0.0, 1.0

	dir := b.X - a.X
	if dir < 1e-12 && dir > -1e-12 {
		if a.X < min.X || a.X > max.X {
			return false
		}
	} else {
		t1 := (min.X - a.X) / dir
		t2 := (max.X - a.X) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tEnter {
			tEnter = t1
		}
		if t2 < tExit {
			tExit = t2
		}
		if tEnter > tExit {
			return false
		}
	}

	dir = b.Y - a.Y
	if dir < 1e-12 && dir > -1e-12 {
		if a.Y < min.Y || a.Y > max.Y {
			return false
		}
	} else {
		t1 := (min.Y - a.Y) / dir
		t2 := (max.Y - a.Y) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tEnter {
			tEnter = t1
		}
		if t2 < tExit {
			tExit = t2
		}
		if tEnter > tExit {
			return false
		}
	}

	dir = b.Z - a.Z
	if dir < 1e-12 && dir > -1e-12 {
		if a.Z < min.Z || a.Z > max.Z {
			return false
		}
	} else {
		t1 := (min.Z - a.Z) / dir
		t2 := (max.Z - a.Z) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tEnter {
			tEnter = t1
		}
		if t2 < tExit {
			tExit = t2
		}
		if tEnter > tExit {
			return false
		}
	}
	return true
}

// segmentHitsCylinder reports whether the segment from a to b intersects a
// finite vertical cylinder with the given center axis (x, y), radius, and
// z extent [z0, z1].
func segmentHitsCylinder(a, b geom.Vec3, cx, cy, radius, z0, z1 float64) bool {
	// Work in the XY plane first: find the parameter range where the
	// segment is inside the infinite cylinder.
	dx, dy := b.X-a.X, b.Y-a.Y
	fx, fy := a.X-cx, a.Y-cy
	A := dx*dx + dy*dy
	B := 2 * (fx*dx + fy*dy)
	C := fx*fx + fy*fy - radius*radius
	var tLo, tHi float64
	if A < 1e-12 {
		// Vertical segment in XY: inside or outside for all t.
		if C > 0 {
			return false
		}
		tLo, tHi = 0, 1
	} else {
		disc := B*B - 4*A*C
		if disc < 0 {
			return false
		}
		s := math.Sqrt(disc)
		tLo = (-B - s) / (2 * A)
		tHi = (-B + s) / (2 * A)
		if tHi < 0 || tLo > 1 {
			return false
		}
		if tLo < 0 {
			tLo = 0
		}
		if tHi > 1 {
			tHi = 1
		}
	}
	// Now intersect with the z slab over the same parameter range.
	za := a.Z + (b.Z-a.Z)*tLo
	zb := a.Z + (b.Z-a.Z)*tHi
	if za > zb {
		za, zb = zb, za
	}
	return zb >= z0 && za <= z1
}
