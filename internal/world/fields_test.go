package world

import (
	"fmt"
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
)

// TestFieldKeysMatchSprintfLabels pins the determinism contract of the
// allocation-free field keys: for every random-field label shape the link
// resolver builds, the Key chain must hash the identical byte sequence as
// the historical fmt.Sprintf label — identical bytes → identical streams →
// identical golden tables.
func TestFieldKeysMatchSprintfLabels(t *testing.T) {
	w := New(rf.DefaultCalibration(), 987654321)
	type tc struct {
		name  string
		label string
		seed  uint64
	}
	tagName, antName := "box210/side-closer", "a2"
	for _, pass := range []int{0, 1, 12, 4095} {
		for _, block := range []int{0, 7, 131} {
			cases := []tc{
				{"shadow.tag", fmt.Sprintf("shadow.tag/p%d/%s", pass, tagName),
					w.keys.shadowTag.Int(pass).Str("/").Str(tagName).Seed()},
				{"shadow.path", fmt.Sprintf("shadow.path/p%d/%s/%s", pass, tagName, antName),
					w.keys.shadowPath.Int(pass).Str("/").Str(tagName).Str("/").Str(antName).Seed()},
				{"shadow.scat", fmt.Sprintf("shadow.scat/p%d/%s", pass, tagName),
					w.keys.shadowScat.Int(pass).Str("/").Str(tagName).Seed()},
				{"fade.dir", fmt.Sprintf("fade.dir/p%d/b%d/%s/%s", pass, block, tagName, antName),
					w.keys.fadeDir.Int(pass).Str("/b").Int(block).Str("/").Str(tagName).Str("/").Str(antName).Seed()},
				{"fade.int", fmt.Sprintf("fade.int/p%d/b%d/%s/%s", pass, block, tagName, antName),
					w.keys.fadeInt.Int(pass).Str("/b").Int(block).Str("/").Str(tagName).Str("/").Str(antName).Seed()},
				{"fade.dir.scat", fmt.Sprintf("fade.dir.scat/p%d/b%d/%s/%s", pass, block, tagName, antName),
					w.keys.fadeDirS.Int(pass).Str("/b").Int(block).Str("/").Str(tagName).Str("/").Str(antName).Seed()},
				{"fade.int.scat", fmt.Sprintf("fade.int.scat/p%d/b%d/%s/%s", pass, block, tagName, antName),
					w.keys.fadeIntS.Int(pass).Str("/b").Int(block).Str("/").Str(tagName).Str("/").Str(antName).Seed()},
			}
			for _, c := range cases {
				if want := w.rng.SplitSeed(c.label); c.seed != want {
					t.Errorf("%s: key seed %#x != Split(%q) seed %#x", c.name, c.seed, c.label, want)
				}
			}
		}
	}
}

// TestFieldValuesMatchLegacySplitPath checks the drawn values, not just
// the label hashes: fieldNormal/fieldRician must be bit-identical to the
// historical Split(label).Normal / Split(label).RicianPowerDB path.
func TestFieldValuesMatchLegacySplitPath(t *testing.T) {
	w := New(rf.DefaultCalibration(), 5)
	label := "shadow.tag/p3/t00"
	key := w.keys.shadowTag.Int(3).Str("/").Str("t00")
	if got, want := w.fieldNormal(key, 4.2), w.rng.Split(label).Normal(0, 4.2); got != want {
		t.Errorf("fieldNormal = %v, legacy split path = %v", got, want)
	}
	// Cached second draw must be identical too.
	if got, want := w.fieldNormal(key, 4.2), w.rng.Split(label).Normal(0, 4.2); got != want {
		t.Errorf("cached fieldNormal = %v, legacy split path = %v", got, want)
	}
	for _, k := range []float64{0, 2.5, 8} {
		label := fmt.Sprintf("fade.dir/p9/b2/t00/a1#k%v", k)
		key := w.rng.Key().Str(label)
		if got, want := w.fieldRician(key, k), w.rng.Split(label).RicianPowerDB(k); got != want {
			t.Errorf("fieldRician(k=%v) = %v, legacy split path = %v", k, got, want)
		}
	}
}

// TestResolveLinkDeterministicAcrossReplicas: two worlds built identically
// must resolve identical links — the replica property the parallel
// measurement engine relies on — and the field cache must not leak state
// between draws.
func TestResolveLinkDeterministicAcrossReplicas(t *testing.T) {
	build := func() (*World, *Tag, *Antenna) {
		w := New(rf.DefaultCalibration(), 77)
		ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
		box := w.AddBox("box", geom.CrossingPass(1, 1, 2.5, 1),
			geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.38, 0.33, 0.15))
		tag := w.AttachTag(box, "tag", [12]byte{1}, Mount{
			Offset: geom.V(0, -0.21, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
		})
		return w, tag, ant
	}
	w1, t1, a1 := build()
	w2, t2, a2 := build()
	// Resolve in different orders so cache population order differs.
	var links1, links2 []float64
	for pass := 0; pass < 4; pass++ {
		for round := 0; round < 3; round++ {
			l := w1.ResolveLink(t1, a1, LinkContext{Time: 2.0, Pass: pass, Round: round})
			links1 = append(links1, float64(l.TagPower), float64(l.ReaderPower))
		}
	}
	for pass := 3; pass >= 0; pass-- {
		for round := 2; round >= 0; round-- {
			l := w2.ResolveLink(t2, a2, LinkContext{Time: 2.0, Pass: pass, Round: round})
			links2 = append(links2, float64(l.TagPower), float64(l.ReaderPower))
		}
	}
	// Compare pass/round-aligned values.
	idx := func(pass, round, part int) int { return (pass*3+round)*2 + part }
	ridx := func(pass, round, part int) int { return ((3-pass)*3+(2-round))*2 + part }
	for pass := 0; pass < 4; pass++ {
		for round := 0; round < 3; round++ {
			for part := 0; part < 2; part++ {
				if links1[idx(pass, round, part)] != links2[ridx(pass, round, part)] {
					t.Fatalf("replica divergence at pass %d round %d", pass, round)
				}
			}
		}
	}
}
