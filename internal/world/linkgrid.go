package world

import (
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/units"
)

// LinkGrid is the reusable scratch behind batched link resolution
// (DESIGN.md §13): every per-link quantity of one scene is laid out
// struct-of-arrays over the full (tag × antenna) grid, column-major by
// antenna, so ResolveLinkGrid walks each antenna's stripe contiguously.
//
// The arrays double as a layered cache. Each layer is stamped by exactly
// the part of the link key it depends on and survives as long as that
// part does:
//
//   - deterministic budget sums (detDirect/detScatter): (pose epoch,
//     quantized instant) per antenna column — static scenes pin them for
//     the life of the pass;
//   - slow fading (tagShadow/scatShadow per tag, pathShadow per column):
//     the pass — redrawing them per round, as the per-link path does, is
//     pure waste because their field labels carry no round or block;
//   - fast fading (fadeDir/fadeScat, and the foreign-carrier variants
//     intFadeDir/intFadeScat): (pass, fading block) per column — rounds
//     inside one coherence block share the draw.
//
// Every cached value is a pure function of its field label or of the
// scene pose, so replaying it is bit-identical to redrawing it; the
// compose step adds the layers in the identical left-to-right order
// ResolveLink sums its budget, which is what keeps the two paths
// bit-for-bit equal (TestResolveLinkGridMatchesResolveLink and
// experiments.TestLinkBatchEquivalence).
//
// A LinkGrid is owned by whatever single goroutine drives its world —
// one grid per reader, one per landmarc survey, one per rfmap render.
// Replicas of the parallel measurement engine each own their readers and
// therefore their grids; grids are never shared across goroutines.
type LinkGrid struct {
	w            *World
	nTags, nAnts int

	// Pass layer: per-tag slow fading, valid for pass only.
	pass       int
	passOK     bool
	tagShadow  []units.DB
	scatShadow []units.DB

	// Per-antenna-column state.
	cols []gridCol

	// Per-(antenna, tag) layers, column-major: index ant.idx*nTags+tag.idx.
	detDirect   []units.DBm
	detScatter  []units.DBm
	pathShadow  []units.DB
	fadeDir     []units.DB
	fadeScat    []units.DB
	intFadeDir  []units.DB
	intFadeScat []units.DB

	// Outputs of the last resolution that covered each column.
	tagPower    []units.DBm
	readerPower []units.DBm
	tagIntf     []units.DBm
	readerIntf  []units.DBm // one aggregate per column
}

// gridCol carries one antenna column's layer stamps.
type gridCol struct {
	detOK    bool
	detTq    float64
	detEpoch uint64
	pathOK   bool
	fadeOK   bool
	fadeBlk  int
	intOK    bool
	intBlk   int
}

// grow returns s resized to n, reallocating only on capacity growth.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ensure sizes the grid for w, invalidating every layer when the world,
// its tag set, or its antenna set changed. Steady state is a few integer
// compares and no allocation.
func (g *LinkGrid) ensure(w *World) {
	if g.w == w && g.nTags == len(w.tags) && g.nAnts == len(w.antennas) {
		return
	}
	g.w = w
	g.nTags = len(w.tags)
	g.nAnts = len(w.antennas)
	n := g.nTags * g.nAnts
	g.tagShadow = grow(g.tagShadow, g.nTags)
	g.scatShadow = grow(g.scatShadow, g.nTags)
	g.cols = grow(g.cols, g.nAnts)
	g.detDirect = grow(g.detDirect, n)
	g.detScatter = grow(g.detScatter, n)
	g.pathShadow = grow(g.pathShadow, n)
	g.fadeDir = grow(g.fadeDir, n)
	g.fadeScat = grow(g.fadeScat, n)
	g.intFadeDir = grow(g.intFadeDir, n)
	g.intFadeScat = grow(g.intFadeScat, n)
	g.tagPower = grow(g.tagPower, n)
	g.readerPower = grow(g.readerPower, n)
	g.tagIntf = grow(g.tagIntf, n)
	g.readerIntf = grow(g.readerIntf, g.nAnts)
	g.passOK = false
	for i := range g.cols {
		g.cols[i] = gridCol{}
	}
}

// Link returns the resolved state of (tag, ant) written by the last
// ResolveLinkGrid call that covered ant's column. The result is the
// identical rf.Link ResolveLink would return for the same context (minus
// the Explain budget, which only the per-link path carries).
func (g *LinkGrid) Link(ant *Antenna, tag *Tag) rf.Link {
	i := ant.idx*g.nTags + tag.idx
	return rf.Link{
		TagPower:           g.tagPower[i],
		ReaderPower:        g.readerPower[i],
		TagInterference:    g.tagIntf[i],
		ReaderInterference: g.readerIntf[ant.idx],
		Active:             tag.Active,
	}
}

// SetLinkBatch enables or disables batched grid resolution in the
// consumers that ask (enabled by default): Reader.RunRound, landmarc
// surveys and the rfmap renderer fall back to per-link ResolveLink calls
// when disabled. Results are bit-identical either way — the switch is the
// -linkbatch=off escape hatch, mirroring -linkcache.
func (w *World) SetLinkBatch(on bool) { w.linkBatchOff = !on }

// LinkBatchEnabled reports whether consumers should use ResolveLinkGrid.
func (w *World) LinkBatchEnabled() bool { return !w.linkBatchOff }

// ResolveLinkGrid resolves every (tag, antenna) link of the requested
// antennas at one instant in a single pass over the grid, writing the
// results into g (read them back with g.Link). The per-instant work the
// per-link path repeats for every tag — pose quantization, the fading
// block, pass/block key prefixes, foreign reader-to-reader leakage — is
// hoisted and done once, and g's layered caches skip whole columns of
// field draws and budget summation when their stamps still match (see
// the LinkGrid comment). Antennas appearing in ctx.Foreign have their
// columns resolved as interference sources exactly as ResolveLink
// resolves them, in the same ctx.Foreign order.
//
// ctx.Explain is ignored — itemized budgets stay on the per-link path.
func (w *World) ResolveLinkGrid(ants []*Antenna, ctx LinkContext, g *LinkGrid) {
	g.ensure(w)
	if g.nTags == 0 || len(ants) == 0 {
		return
	}
	cal := &w.Cal
	tq := poseTime(ctx.Time)
	block := ctx.Round
	if cal.FadingCoherenceSeconds > 0 {
		block = int(ctx.Time / cal.FadingCoherenceSeconds)
	}

	// Pass layer: the per-tag slow-fading draws, shared by every antenna
	// (their labels carry no antenna). A pass change also invalidates the
	// per-column pass-scoped layers.
	if !g.passOK || g.pass != ctx.Pass {
		kt := w.keys.shadowTag.Int(ctx.Pass)
		ks := w.keys.shadowScat.Int(ctx.Pass)
		for i, tag := range w.tags {
			g.tagShadow[i] = units.DB(w.fieldNormal(kt.Str("/").Str(tag.Name), cal.SigmaTagDB))
			g.scatShadow[i] = units.DB(w.fieldNormal(ks.Str("/").Str(tag.Name), cal.ScatterSigmaDB))
		}
		g.pass, g.passOK = ctx.Pass, true
		for i := range g.cols {
			g.cols[i].pathOK = false
			g.cols[i].fadeOK = false
			g.cols[i].intOK = false
		}
	}

	for _, ant := range ants {
		w.gridDetColumn(g, ant, tq)
		w.gridPathColumn(g, ant, ctx.Pass)
		w.gridFadeColumn(g, ant, ctx.Pass, block, false)

		// Foreign columns and the victim receiver's aggregate leakage,
		// walked in ctx.Foreign order (the per-link combine order).
		rIntf := rf.NoInterference
		for _, f := range ctx.Foreign {
			if f.Antenna == ant {
				continue
			}
			w.gridDetColumn(g, f.Antenna, tq)
			w.gridPathColumn(g, f.Antenna, ctx.Pass)
			w.gridFadeColumn(g, f.Antenna, ctx.Pass, block, true)
			rp := w.readerToReaderDBm(f.Antenna, ant)
			if f.DenseModeBoth {
				rp = rp.Plus(-cal.DenseModeReaderSuppressionDB)
			}
			rIntf = rf.CombineInterference(rIntf, rp)
		}
		g.readerIntf[ant.idx] = rIntf

		// Compose: the same left-to-right budget order as ResolveLink —
		// deterministic prefix, then tag shadow, path/scatter shadow, fast
		// fade — so splitting the sum cannot move a result by one bit.
		base := ant.idx * g.nTags
		for i, tag := range w.tags {
			direct := g.detDirect[base+i].
				Plus(g.tagShadow[i]).Plus(g.pathShadow[base+i]).Plus(g.fadeDir[base+i])
			scatter := g.detScatter[base+i].
				Plus(g.tagShadow[i]).Plus(g.scatShadow[i]).Plus(g.fadeScat[base+i])
			tp := combinePower(direct, scatter)
			g.tagPower[base+i] = tp
			if tag.Active {
				g.readerPower[base+i] = cal.ActiveTxPowerDBm.
					Plus(units.DB(tp - cal.TxPowerDBm))
			} else {
				g.readerPower[base+i] = units.DBm(2*float64(tp)) - cal.TxPowerDBm -
					units.DBm(cal.BackscatterLossDB)
			}
			tIntf := rf.NoInterference
			for _, f := range ctx.Foreign {
				if f.Antenna == ant {
					continue
				}
				fb := f.Antenna.idx * g.nTags
				fd := g.detDirect[fb+i].
					Plus(g.tagShadow[i]).Plus(g.pathShadow[fb+i]).Plus(g.intFadeDir[fb+i])
				fs := g.detScatter[fb+i].
					Plus(g.tagShadow[i]).Plus(g.scatShadow[i]).Plus(g.intFadeScat[fb+i])
				p := combinePower(fd, fs)
				if f.DenseModeBoth {
					p = p.Plus(-cal.DenseModeTagSuppressionDB)
				}
				tIntf = rf.CombineInterference(tIntf, p)
			}
			g.tagIntf[base+i] = tIntf
		}
		if w.obs != nil {
			// Count like the per-link path would: one resolution per (tag,
			// requested antenna); foreign-carrier columns excluded.
			w.obs.Add(obs.CtrLinkResolutions, uint64(g.nTags))
			w.obs.Add(obs.CtrGridLinks, uint64(g.nTags))
		}
	}
	if w.obs != nil {
		w.obs.Inc(obs.CtrGridBatches)
	}
}

// gridDetColumn fills (or reuses) one antenna column's deterministic
// budget prefix sums: the memoized budget cache is walked once per
// (antenna, instant) here, instead of once per link in the per-link path.
func (w *World) gridDetColumn(g *LinkGrid, ant *Antenna, tq float64) {
	c := &g.cols[ant.idx]
	if c.detOK && c.detTq == tq && c.detEpoch == w.poseEpoch {
		if w.obs != nil {
			w.obs.GridTermHits(uint64(g.nTags))
		}
		return
	}
	cal := &w.Cal
	base := ant.idx * g.nTags
	for i, tag := range w.tags {
		bt := w.linkTerms(tag, ant, tq)
		g.detDirect[base+i] = detDirectSum(cal, bt)
		g.detScatter[base+i] = detScatterSum(cal, bt)
	}
	c.detOK, c.detTq, c.detEpoch = true, tq, w.poseEpoch
	if w.obs != nil {
		w.obs.GridTermFills(uint64(g.nTags))
	}
}

// gridPathColumn fills one column's per-(tag, antenna) slow fading for
// the current pass.
func (w *World) gridPathColumn(g *LinkGrid, ant *Antenna, pass int) {
	c := &g.cols[ant.idx]
	if c.pathOK {
		return
	}
	kp := w.keys.shadowPath.Int(pass)
	base := ant.idx * g.nTags
	for i, tag := range w.tags {
		g.pathShadow[base+i] = units.DB(w.fieldNormal(
			kp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), w.Cal.SigmaPathDB))
	}
	c.pathOK = true
}

// gridFadeColumn fills one column's fast-fading draws for (pass, block) —
// the direct-link draws, or the foreign-carrier (interference) draws when
// asInterference is set, exactly as forwardPowerDBm keys them.
func (w *World) gridFadeColumn(g *LinkGrid, ant *Antenna, pass, block int, asInterference bool) {
	c := &g.cols[ant.idx]
	dir, scat := g.fadeDir, g.fadeScat
	ok, blk := &c.fadeOK, &c.fadeBlk
	kd, ks := w.keys.fadeDir, w.keys.fadeDirS
	if asInterference {
		dir, scat = g.intFadeDir, g.intFadeScat
		ok, blk = &c.intOK, &c.intBlk
		kd, ks = w.keys.fadeInt, w.keys.fadeIntS
	}
	if *ok && *blk == block {
		return
	}
	kdp := kd.Int(pass).Str("/b").Int(block)
	ksp := ks.Int(pass).Str("/b").Int(block)
	base := ant.idx * g.nTags
	for i, tag := range w.tags {
		dir[base+i] = units.DB(w.fieldRician(
			kdp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), w.Cal.RicianK))
		scat[base+i] = units.DB(w.fieldRician(
			ksp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), 0))
	}
	*ok, *blk = true, block
}
