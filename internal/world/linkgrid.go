package world

import (
	"math"

	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/units"
	"rfidtrack/internal/xrand"
)

// LinkGrid is the reusable scratch behind batched link resolution
// (DESIGN.md §13): every per-link quantity of one scene is laid out
// struct-of-arrays over the full (tag × antenna) grid, column-major by
// antenna, so ResolveLinkGrid walks each antenna's stripe contiguously.
//
// The arrays double as a layered cache. Each layer is stamped by exactly
// the part of the link key it depends on and survives as long as that
// part does:
//
//   - deterministic budget sums (detDirect/detScatter): (pose epoch,
//     quantized instant) per antenna column — static scenes pin them for
//     the life of the pass;
//   - slow fading (tagShadow/scatShadow per tag, pathShadow per column):
//     the pass — redrawing them per round, as the per-link path does, is
//     pure waste because their field labels carry no round or block;
//   - fast fading (fadeDir/fadeScat, and the foreign-carrier variants
//     intFadeDir/intFadeScat): (pass, fading block) per column — rounds
//     inside one coherence block share the draw.
//
// When broad-phase culling is active (DESIGN.md §14) a column's layers
// may cover only its active rows; each layer stamp then also records the
// cull generation it was filled under (gen 0 = dense fill covering every
// row, a superset that satisfies any generation), so a sparse fill is
// never mistaken for a dense one and vice versa.
//
// Every cached value is a pure function of its field label or of the
// scene pose, so replaying it is bit-identical to redrawing it; the
// compose step adds the layers in the identical left-to-right order
// ResolveLink sums its budget, which is what keeps the two paths
// bit-for-bit equal (TestResolveLinkGridMatchesResolveLink and
// experiments.TestLinkBatchEquivalence).
//
// A LinkGrid is owned by whatever single goroutine drives its world —
// one grid per reader, one per landmarc survey, one per rfmap render.
// Replicas of the parallel measurement engine each own their readers and
// therefore their grids; grids are never shared across goroutines.
type LinkGrid struct {
	w            *World
	nTags, nAnts int

	// Pass layer: per-tag slow fading, valid for pass only.
	pass       int
	passOK     bool
	tagShadow  []units.DB
	scatShadow []units.DB

	// Per-antenna-column state.
	cols []gridCol

	// allRows is the identity row list [0, 1, …, nTags−1]: the rows
	// iterated when a column resolves densely, so the dense and culled
	// paths share one tiled loop.
	allRows []int32

	// Per-(antenna, tag) layers, column-major: index ant.idx*nTags+tag.idx.
	detDirect   []units.DBm
	detScatter  []units.DBm
	pathShadow  []units.DB
	fadeDir     []units.DB
	fadeScat    []units.DB
	intFadeDir  []units.DB
	intFadeScat []units.DB

	// Outputs of the last resolution that covered each column.
	tagPower    []units.DBm
	readerPower []units.DBm
	tagIntf     []units.DBm
	readerIntf  []units.DBm // one aggregate per column
}

// gridCol carries one antenna column's layer stamps and broad-phase cull
// state. The det/path/fade gens record the cull generation each layer was
// last filled under: 0 means a dense fill (valid for any generation), a
// nonzero value matches only the identical active list.
type gridCol struct {
	detOK    bool
	detTq    float64
	detEpoch uint64
	detGen   uint64
	pathOK   bool
	pathGen  uint64
	fadeOK   bool
	fadeBlk  int
	fadeGen  uint64
	intOK    bool
	intBlk   int

	// Broad-phase cull state: the active row list is valid for exactly
	// (cullTq, cullEpoch, cullPass); cullGen counts content changes of the
	// list and starts at 0 so the first build always bumps it past the
	// dense sentinel.
	cullOK    bool
	cullTq    float64
	cullEpoch uint64
	cullPass  int
	cullGen   uint64
	active    []int32
}

// reset invalidates every stamp while keeping the active list's backing
// array, so re-sizing a reused grid stays allocation-free at steady
// state.
func (c *gridCol) reset() {
	active := c.active[:0]
	*c = gridCol{active: active}
}

// gridTile is the tag-axis block size of the fused resolve loop: the
// deterministic-sum, shadowing, fading, and compose passes each walk one
// tile before moving on, so a tile's slice of every column array (~10
// float64 arrays ≈ 80 KiB) stays L1/L2-resident instead of streaming a
// 10⁵-row column through the cache once per layer.
const gridTile = 1024

// cullMinTags is the world size below which broad-phase culling stands
// down. The bound rebuild is O(rows) per quantized instant, so in a
// moving scene it reruns every round; portal-scale worlds (the paper's
// 1–50 tags) sit entirely inside any antenna's bound radius, so that
// rebuild would cull nothing and the rounds would only get slower. The
// crossover where skipped compose work starts beating the rebuild is
// around 10³ rows (BenchmarkResolveLinkGridScale: 43% culled at 10³,
// 92% at 10⁴), so anything under a couple hundred rows resolves densely.
const cullMinTags = 128

// negInfDBm marks a culled pair's power slots: −Inf keeps every
// decodability predicate false for both passive and active tags.
var negInfDBm = units.DBm(math.Inf(-1))

// grow returns s resized to n, reallocating only on capacity growth.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ensure sizes the grid for w, invalidating every layer when the world,
// its tag set, or its antenna set changed. Steady state is a few integer
// compares and no allocation.
func (g *LinkGrid) ensure(w *World) {
	if g.w == w && g.nTags == len(w.tags) && g.nAnts == len(w.antennas) {
		return
	}
	g.w = w
	g.nTags = len(w.tags)
	g.nAnts = len(w.antennas)
	n := g.nTags * g.nAnts
	g.tagShadow = grow(g.tagShadow, g.nTags)
	g.scatShadow = grow(g.scatShadow, g.nTags)
	g.cols = grow(g.cols, g.nAnts)
	g.allRows = grow(g.allRows, g.nTags)
	for i := range g.allRows {
		g.allRows[i] = int32(i)
	}
	g.detDirect = grow(g.detDirect, n)
	g.detScatter = grow(g.detScatter, n)
	g.pathShadow = grow(g.pathShadow, n)
	g.fadeDir = grow(g.fadeDir, n)
	g.fadeScat = grow(g.fadeScat, n)
	g.intFadeDir = grow(g.intFadeDir, n)
	g.intFadeScat = grow(g.intFadeScat, n)
	g.tagPower = grow(g.tagPower, n)
	g.readerPower = grow(g.readerPower, n)
	g.tagIntf = grow(g.tagIntf, n)
	g.readerIntf = grow(g.readerIntf, g.nAnts)
	g.passOK = false
	for i := range g.cols {
		g.cols[i].reset()
	}
}

// Link returns the resolved state of (tag, ant) written by the last
// ResolveLinkGrid call that covered ant's column. The result is the
// identical rf.Link ResolveLink would return for the same context (minus
// the Explain budget, which only the per-link path carries) — except for
// a pair the broad-phase culler skipped, whose power slots hold −Inf (or
// a stale sub-threshold value from an earlier dense resolution): every
// decodability predicate is still identical, but consumers of culled
// resolutions must not interpret the raw powers of undetectable links.
func (g *LinkGrid) Link(ant *Antenna, tag *Tag) rf.Link {
	i := ant.idx*g.nTags + tag.idx
	return rf.Link{
		TagPower:           g.tagPower[i],
		ReaderPower:        g.readerPower[i],
		TagInterference:    g.tagIntf[i],
		ReaderInterference: g.readerIntf[ant.idx],
		Active:             tag.Active,
	}
}

// SetLinkBatch enables or disables batched grid resolution in the
// consumers that ask (enabled by default): Reader.RunRound, landmarc
// surveys and the rfmap renderer fall back to per-link ResolveLink calls
// when disabled. Results are bit-identical either way — the switch is the
// -linkbatch=off escape hatch, mirroring -linkcache.
func (w *World) SetLinkBatch(on bool) { w.linkBatchOff = !on }

// LinkBatchEnabled reports whether consumers should use ResolveLinkGrid.
func (w *World) LinkBatchEnabled() bool { return !w.linkBatchOff }

// ResolveLinkGrid resolves every (tag, antenna) link of the requested
// antennas at one instant in a single pass over the grid, writing the
// results into g (read them back with g.Link). The per-instant work the
// per-link path repeats for every tag — pose quantization, the fading
// block, pass/block key prefixes, foreign reader-to-reader leakage — is
// hoisted and done once, and g's layered caches skip whole columns of
// field draws and budget summation when their stamps still match (see
// the LinkGrid comment). Antennas appearing in ctx.Foreign have their
// columns resolved as interference sources exactly as ResolveLink
// resolves them, in the same ctx.Foreign order.
//
// When ctx.Cull is set (and the world's -linkcull escape hatch is on, the
// world has at least cullMinTags tags, no foreign emitters are present,
// and the calibration satisfies the conservative bound's assumptions)
// each column is first broad-phase culled: rows whose bound proves the tag cannot reach its detection
// threshold are skipped and sentinel-marked, and every layer fill and the
// compose walk only the compact active list (DESIGN.md §14). Reads and
// decodability are bit-identical to the dense resolution because the
// random fields are pass-pure — skipping a pair's draws cannot shift any
// other pair's draws.
//
// ctx.Explain is ignored — itemized budgets stay on the per-link path.
func (w *World) ResolveLinkGrid(ants []*Antenna, ctx LinkContext, g *LinkGrid) {
	g.ensure(w)
	if g.nTags == 0 || len(ants) == 0 {
		return
	}
	cal := &w.Cal
	tq := poseTime(ctx.Time)
	block := ctx.Round
	if cal.FadingCoherenceSeconds > 0 {
		block = int(ctx.Time / cal.FadingCoherenceSeconds)
	}

	// Pass layer: the per-tag slow-fading draws, shared by every antenna
	// (their labels carry no antenna). A pass change also invalidates the
	// per-column pass-scoped layers and the cull lists (the bound uses the
	// pass's shadow draws).
	if !g.passOK || g.pass != ctx.Pass {
		kt := w.keys.shadowTag.Int(ctx.Pass)
		ks := w.keys.shadowScat.Int(ctx.Pass)
		for i, tag := range w.tags {
			g.tagShadow[i] = units.DB(w.fieldNormal(kt.Str("/").Str(tag.Name), cal.SigmaTagDB))
			g.scatShadow[i] = units.DB(w.fieldNormal(ks.Str("/").Str(tag.Name), cal.ScatterSigmaDB))
		}
		g.pass, g.passOK = ctx.Pass, true
		for i := range g.cols {
			g.cols[i].pathOK = false
			g.cols[i].fadeOK = false
			g.cols[i].intOK = false
			g.cols[i].cullOK = false
		}
	}

	// Broad-phase gate: opt-in per context, world escape hatch, a world big
	// enough for the bound rebuild to pay for itself, no foreign emitters
	// (a sub-threshold foreign carrier can still move an active tag's
	// SINR), and a calibration the bound is provably sound for.
	var cb rf.CullBound
	cull := ctx.Cull && !w.linkCullOff && len(ctx.Foreign) == 0 && g.nTags >= cullMinTags
	if cull {
		cb, cull = rf.NewCullBound(cal, fieldDrawClamp)
	}

	for _, ant := range ants {
		// Foreign columns and the victim receiver's aggregate leakage,
		// walked in ctx.Foreign order (the per-link combine order). Foreign
		// columns are always dense — culling is gated off above when any
		// are present.
		rIntf := rf.NoInterference
		for _, f := range ctx.Foreign {
			if f.Antenna == ant {
				continue
			}
			w.gridDetColumn(g, f.Antenna, tq)
			w.gridPathColumn(g, f.Antenna, ctx.Pass)
			w.gridFadeColumn(g, f.Antenna, ctx.Pass, block, true)
			rp := w.readerToReaderDBm(f.Antenna, ant)
			if f.DenseModeBoth {
				rp = rp.Plus(-cal.DenseModeReaderSuppressionDB)
			}
			rIntf = rf.CombineInterference(rIntf, rp)
		}
		g.readerIntf[ant.idx] = rIntf

		rows := g.allRows
		want := uint64(0)
		if cull {
			w.gridCullColumn(g, ant, tq, ctx.Pass, &cb)
			rows = g.cols[ant.idx].active
			want = g.cols[ant.idx].cullGen
		}
		w.gridComposeColumn(g, ant, &ctx, tq, block, rows, want)

		if w.obs != nil {
			// Count like the per-link path would: one resolution per (tag,
			// requested antenna); foreign-carrier columns excluded. Culling
			// does not change grid.links — the culled/active split is
			// reported separately so the culled fraction is culled/links.
			w.obs.Add(obs.CtrLinkResolutions, uint64(g.nTags))
			w.obs.Add(obs.CtrGridLinks, uint64(g.nTags))
			w.obs.Add(obs.CtrGridActiveLinks, uint64(len(rows)))
			w.obs.Add(obs.CtrGridCulled, uint64(g.nTags-len(rows)))
		}
	}
	if w.obs != nil {
		w.obs.Inc(obs.CtrGridBatches)
	}
}

// gridCullColumn rebuilds one column's active row list when its stamps
// (quantized instant, pose epoch, pass) moved: every row gets the pass's
// actual path-shadow draw (stored densely — the path layer is filled as a
// byproduct) and the conservative bound of rf.CullBound; rows that cannot
// reach their detection threshold are sentinel-marked and excluded. The
// generation counter bumps only when the list's content actually changed,
// so layer fills keyed to it survive rebuilds that land on the same set.
func (w *World) gridCullColumn(g *LinkGrid, ant *Antenna, tq float64, pass int, cb *rf.CullBound) {
	c := &g.cols[ant.idx]
	if c.cullOK && c.cullTq == tq && c.cullEpoch == w.poseEpoch && c.cullPass == pass {
		return
	}
	cal := &w.Cal
	positions := w.tagPositions(tq)
	kp := w.keys.shadowPath.Int(pass)
	base := ant.idx * g.nTags
	antPos := ant.Pose.Pos
	// The rebuild compares the old list against the new one in place:
	// position k of the old backing is only overwritten by the append that
	// fills position k, after it was compared.
	same := c.cullOK
	prev := c.active
	act := c.active[:0]
	for i, tag := range w.tags {
		ps := units.DB(w.fieldNormal(
			kp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), cal.SigmaPathDB))
		g.pathShadow[base+i] = ps
		pos := positions[i]
		patch := float64(cal.ReaderAntenna.GainToward(ant.Pose, pos))
		fspl := float64(units.FSPL(pos.Dist(antPos), cal.FreqHz))
		shadow := float64(g.tagShadow[i])
		thr := float64(cal.CullThresholdDBm(tag.Active)) - cb.CombineBonusDB
		if cb.DirectFixedDB+patch-fspl+shadow+float64(ps)+cb.DirectOverlayDB < thr &&
			cb.ScatterFixedDB-fspl+shadow+float64(g.scatShadow[i])+cb.ScatterOverlayDB < thr {
			g.tagPower[base+i] = negInfDBm
			g.readerPower[base+i] = negInfDBm
			g.tagIntf[base+i] = rf.NoInterference
			continue
		}
		if k := len(act); same && (k >= len(prev) || prev[k] != int32(i)) {
			same = false
		}
		act = append(act, int32(i))
	}
	if same && len(act) != len(prev) {
		same = false
	}
	c.active = act
	if !same {
		c.cullGen++
	}
	c.pathOK, c.pathGen = true, 0
	c.cullOK, c.cullTq, c.cullEpoch, c.cullPass = true, tq, w.poseEpoch, pass
}

// gridComposeColumn fills one requested column's stale layers and
// composes its outputs, fused over cache-sized tiles of the row list
// (g.allRows when dense, the column's active list when culled): each
// tile's slice of every layer is written and immediately consumed while
// still cache-resident. The compose adds the layers in the same
// left-to-right budget order as ResolveLink — deterministic prefix, then
// tag shadow, path/scatter shadow, fast fade — so splitting the sum
// cannot move a result by one bit.
func (w *World) gridComposeColumn(g *LinkGrid, ant *Antenna, ctx *LinkContext, tq float64, block int, rows []int32, want uint64) {
	cal := &w.Cal
	c := &g.cols[ant.idx]
	needDet := !(c.detOK && c.detTq == tq && c.detEpoch == w.poseEpoch &&
		(c.detGen == 0 || c.detGen == want))
	needPath := !(c.pathOK && (c.pathGen == 0 || c.pathGen == want))
	needFade := !(c.fadeOK && c.fadeBlk == block && (c.fadeGen == 0 || c.fadeGen == want))
	var kp, kdp, ksp xrand.Key
	if needPath {
		kp = w.keys.shadowPath.Int(ctx.Pass)
	}
	if needFade {
		kdp = w.keys.fadeDir.Int(ctx.Pass).Str("/b").Int(block)
		ksp = w.keys.fadeDirS.Int(ctx.Pass).Str("/b").Int(block)
	}
	base := ant.idx * g.nTags
	for s := 0; s < len(rows); s += gridTile {
		tile := rows[s:min(s+gridTile, len(rows))]
		if needDet {
			for _, r := range tile {
				i := int(r)
				bt := w.linkTerms(w.tags[i], ant, tq)
				g.detDirect[base+i] = detDirectSum(cal, bt)
				g.detScatter[base+i] = detScatterSum(cal, bt)
			}
		}
		if needPath {
			for _, r := range tile {
				i := int(r)
				g.pathShadow[base+i] = units.DB(w.fieldNormal(
					kp.Str("/").Str(w.tags[i].Name).Str("/").Str(ant.Name), cal.SigmaPathDB))
			}
		}
		if needFade {
			for _, r := range tile {
				i := int(r)
				g.fadeDir[base+i] = units.DB(w.fieldRician(
					kdp.Str("/").Str(w.tags[i].Name).Str("/").Str(ant.Name), cal.RicianK))
				g.fadeScat[base+i] = units.DB(w.fieldRician(
					ksp.Str("/").Str(w.tags[i].Name).Str("/").Str(ant.Name), 0))
			}
		}
		for _, r := range tile {
			i := int(r)
			direct := g.detDirect[base+i].
				Plus(g.tagShadow[i]).Plus(g.pathShadow[base+i]).Plus(g.fadeDir[base+i])
			scatter := g.detScatter[base+i].
				Plus(g.tagShadow[i]).Plus(g.scatShadow[i]).Plus(g.fadeScat[base+i])
			tp := combinePower(direct, scatter)
			g.tagPower[base+i] = tp
			if w.tags[i].Active {
				g.readerPower[base+i] = cal.ActiveTxPowerDBm.
					Plus(units.DB(tp - cal.TxPowerDBm))
			} else {
				g.readerPower[base+i] = units.DBm(2*float64(tp)) - cal.TxPowerDBm -
					units.DBm(cal.BackscatterLossDB)
			}
			tIntf := rf.NoInterference
			for _, f := range ctx.Foreign {
				if f.Antenna == ant {
					continue
				}
				fb := f.Antenna.idx * g.nTags
				fd := g.detDirect[fb+i].
					Plus(g.tagShadow[i]).Plus(g.pathShadow[fb+i]).Plus(g.intFadeDir[fb+i])
				fs := g.detScatter[fb+i].
					Plus(g.tagShadow[i]).Plus(g.scatShadow[i]).Plus(g.intFadeScat[fb+i])
				p := combinePower(fd, fs)
				if f.DenseModeBoth {
					p = p.Plus(-cal.DenseModeTagSuppressionDB)
				}
				tIntf = rf.CombineInterference(tIntf, p)
			}
			g.tagIntf[base+i] = tIntf
		}
	}
	if w.obs != nil {
		if needDet {
			w.obs.GridTermFills(uint64(len(rows)))
		} else {
			w.obs.GridTermHits(uint64(len(rows)))
		}
	}
	if needDet {
		c.detOK, c.detTq, c.detEpoch, c.detGen = true, tq, w.poseEpoch, want
	}
	if needPath {
		c.pathOK, c.pathGen = true, want
	}
	if needFade {
		c.fadeOK, c.fadeBlk, c.fadeGen = true, block, want
	}
}

// gridDetColumn fills (or reuses) one antenna column's deterministic
// budget prefix sums densely — the fill path for foreign-carrier columns,
// which are never culled. The memoized budget cache is walked once per
// (antenna, instant) here, instead of once per link in the per-link path.
func (w *World) gridDetColumn(g *LinkGrid, ant *Antenna, tq float64) {
	c := &g.cols[ant.idx]
	if c.detOK && c.detTq == tq && c.detEpoch == w.poseEpoch && c.detGen == 0 {
		if w.obs != nil {
			w.obs.GridTermHits(uint64(g.nTags))
		}
		return
	}
	cal := &w.Cal
	base := ant.idx * g.nTags
	for i, tag := range w.tags {
		bt := w.linkTerms(tag, ant, tq)
		g.detDirect[base+i] = detDirectSum(cal, bt)
		g.detScatter[base+i] = detScatterSum(cal, bt)
	}
	c.detOK, c.detTq, c.detEpoch, c.detGen = true, tq, w.poseEpoch, 0
	if w.obs != nil {
		w.obs.GridTermFills(uint64(g.nTags))
	}
}

// gridPathColumn fills one column's per-(tag, antenna) slow fading for
// the current pass, densely (the foreign-column fill path).
func (w *World) gridPathColumn(g *LinkGrid, ant *Antenna, pass int) {
	c := &g.cols[ant.idx]
	if c.pathOK && c.pathGen == 0 {
		return
	}
	kp := w.keys.shadowPath.Int(pass)
	base := ant.idx * g.nTags
	for i, tag := range w.tags {
		g.pathShadow[base+i] = units.DB(w.fieldNormal(
			kp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), w.Cal.SigmaPathDB))
	}
	c.pathOK, c.pathGen = true, 0
}

// gridFadeColumn fills one column's fast-fading draws for (pass, block) —
// the direct-link draws, or the foreign-carrier (interference) draws when
// asInterference is set, exactly as forwardPowerDBm keys them. Fills are
// dense (the foreign-column fill path; requested columns fuse their fills
// into gridComposeColumn).
func (w *World) gridFadeColumn(g *LinkGrid, ant *Antenna, pass, block int, asInterference bool) {
	c := &g.cols[ant.idx]
	dir, scat := g.fadeDir, g.fadeScat
	kd, ks := w.keys.fadeDir, w.keys.fadeDirS
	if asInterference {
		if c.intOK && c.intBlk == block {
			return
		}
		dir, scat = g.intFadeDir, g.intFadeScat
		kd, ks = w.keys.fadeInt, w.keys.fadeIntS
	} else if c.fadeOK && c.fadeBlk == block && c.fadeGen == 0 {
		return
	}
	kdp := kd.Int(pass).Str("/b").Int(block)
	ksp := ks.Int(pass).Str("/b").Int(block)
	base := ant.idx * g.nTags
	for i, tag := range w.tags {
		dir[base+i] = units.DB(w.fieldRician(
			kdp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), w.Cal.RicianK))
		scat[base+i] = units.DB(w.fieldRician(
			ksp.Str("/").Str(tag.Name).Str("/").Str(ant.Name), 0))
	}
	if asInterference {
		c.intOK, c.intBlk = true, block
	} else {
		c.fadeOK, c.fadeBlk, c.fadeGen = true, block, 0
	}
}
