package world

import (
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
)

// obsWorld builds the BenchmarkResolveLink scene: one moving metal-content
// box with a side tag and one portal antenna.
func obsWorld() (*World, *Tag, *Antenna) {
	w := New(rf.DefaultCalibration(), 1)
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	box := w.AddBox("box", geom.CrossingPass(1, 1, 2.5, 1),
		geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.38, 0.33, 0.15))
	tag := w.AttachTag(box, "tag", testCode(1), Mount{
		Offset: geom.V(0, -0.21, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	return w, tag, ant
}

// TestResolveLinkZeroAllocWhenDisabled is the instrumentation layer's
// zero-cost-when-disabled contract, enforced on every `make check`: with
// no collector attached, a warmed-up ResolveLink performs no allocation
// at all. (Field draws reseed a world-owned scratch stream, and the
// budget-terms memo is a flat array — nothing on the path allocates.)
func TestResolveLinkZeroAllocWhenDisabled(t *testing.T) {
	w, tag, ant := obsWorld()
	ctx := LinkContext{Time: 2.5, Pass: 1, Round: 1}
	if avg := testing.AllocsPerRun(200, func() {
		_ = w.ResolveLink(tag, ant, ctx)
	}); avg != 0 {
		t.Errorf("ResolveLink with obs disabled allocates %.2f allocs/op, want 0", avg)
	}
}

// TestResolveLinkObservedCounts: with a collector attached, every call is
// counted, and detaching restores the disabled (zero-alloc) path.
func TestResolveLinkObservedCounts(t *testing.T) {
	w, tag, ant := obsWorld()
	m := obs.NewMetrics()
	w.Observe(m.Shard())
	for i := 0; i < 5; i++ {
		_ = w.ResolveLink(tag, ant, LinkContext{Time: 2.5, Pass: i, Round: 0})
	}
	if got := m.Snapshot().Counters["link.resolutions"]; got != 5 {
		t.Errorf("link.resolutions = %d, want 5", got)
	}

	w.Observe(nil)
	_ = w.ResolveLink(tag, ant, LinkContext{Time: 2.5, Pass: 0, Round: 0})
	if got := m.Snapshot().Counters["link.resolutions"]; got != 5 {
		t.Errorf("detached world still counted: %d", got)
	}
}

// TestResolveLinkResultUnchangedByObservation: attaching instrumentation
// must never perturb the physics.
func TestResolveLinkResultUnchangedByObservation(t *testing.T) {
	w1, tag1, ant1 := obsWorld()
	w2, tag2, ant2 := obsWorld()
	w2.Observe(obs.NewMetrics().Shard())
	for pass := 0; pass < 3; pass++ {
		ctx := LinkContext{Time: 2.5, Pass: pass, Round: pass}
		a := w1.ResolveLink(tag1, ant1, ctx)
		b := w2.ResolveLink(tag2, ant2, ctx)
		if a != b {
			t.Fatalf("pass %d: observed link differs: %+v vs %+v", pass, a, b)
		}
	}
}
