package world

import (
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
)

// Tests for the paper's future-work extensions: active tags and
// dual-dipole (orientation-insensitive) tag designs.

func TestActiveTagSurvivesPassiveDeadRange(t *testing.T) {
	cal := rf.DefaultCalibration()
	w := New(cal, 20)
	ant := portalAntenna(w, "a1", 1)
	// 15 m: far beyond passive range.
	box := w.AddBox("far", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 15, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	passive := w.AttachTag(box, "passive", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.1,
	})
	active := w.AttachActiveTag(box, "active", testCode(2), Mount{
		Offset: geom.V(0.05, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.1,
	})
	if !active.Active || passive.Active {
		t.Fatal("Active flags wrong")
	}

	okPassive, okActive := 0, 0
	const n = 100
	for p := 0; p < n; p++ {
		lp := w.ResolveLink(passive, ant, LinkContext{Pass: p})
		la := w.ResolveLink(active, ant, LinkContext{Pass: p})
		if lp.Readable(cal) {
			okPassive++
		}
		if la.Readable(cal) {
			okActive++
		}
		if !la.Active {
			t.Fatal("link lost the active flag")
		}
	}
	if okPassive > n/10 {
		t.Errorf("passive tag readable %d/%d at 15 m, want ~0", okPassive, n)
	}
	if okActive < n*9/10 {
		t.Errorf("active tag readable %d/%d at 15 m, want ~all", okActive, n)
	}
}

func TestActiveTagReverseLinkIsOneWay(t *testing.T) {
	cal := rf.DefaultCalibration()
	w := New(cal, 21)
	ant := portalAntenna(w, "a1", 1)
	box := w.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 2, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	tag := w.AttachActiveTag(box, "active", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.1,
	})
	l := w.ResolveLink(tag, ant, LinkContext{Pass: 0})
	// One-way: ReaderPower = ActiveTx + (TagPower − Tx); far stronger than
	// a backscatter reply at the same geometry.
	backscatter := 2*float64(l.TagPower) - float64(cal.TxPowerDBm) - float64(cal.BackscatterLossDB)
	if float64(l.ReaderPower) <= backscatter {
		t.Errorf("active reply (%v) not stronger than backscatter (%v)", l.ReaderPower, backscatter)
	}
}

func TestDualDipoleFixesOrientationNull(t *testing.T) {
	cal := rf.DefaultCalibration()
	mk := func(axis2 geom.Vec3, seed uint64) float64 {
		w := New(cal, seed)
		ant := portalAntenna(w, "a1", 1)
		box := w.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
			geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
		// Primary dipole pointing straight at the antenna: the null.
		tag := w.AttachTag(box, "t", testCode(1), Mount{
			Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0),
			Axis: geom.UnitY, Axis2: axis2, Gap: 0.1,
		})
		return meanTagPower(w, tag, ant, 200)
	}
	single := mk(geom.Vec3{}, 7)
	dual := mk(geom.UnitX, 7)
	if dual <= single+8 {
		t.Errorf("dual dipole (%v dBm) should rescue the null (%v dBm)", dual, single)
	}
	// With the primary already well oriented, the second dipole must not
	// hurt (best-of selection).
	wellSingle := mk(geom.Vec3{}, 8)
	_ = wellSingle
	w := New(cal, 9)
	ant := portalAntenna(w, "a1", 1)
	box := w.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	good := w.AttachTag(box, "good", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0),
		Axis: geom.UnitX, Axis2: geom.UnitY, Gap: 0.1,
	})
	goodDual := meanTagPower(w, good, ant, 200)
	w2 := New(cal, 9)
	ant2 := portalAntenna(w2, "a1", 1)
	box2 := w2.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	goodOnly := w2.AttachTag(box2, "good", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0), Normal: geom.V(0, -1, 0),
		Axis: geom.UnitX, Gap: 0.1,
	})
	if base := meanTagPower(w2, goodOnly, ant2, 200); goodDual < base-0.5 {
		t.Errorf("adding a second dipole hurt a well-oriented tag: %v vs %v", goodDual, base)
	}
}
