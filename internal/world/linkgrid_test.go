package world

import (
	"fmt"
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
)

// gridScene builds a deliberately heterogeneous scene for the batched-path
// equivalence tests: two facing portal antennas plus a third offset one,
// a cart of metal-content boxes, a walking person with a badge tag, and
// one active tag — every carrier kind, both link types.
func gridScene() (*World, []*Antenna) {
	w := New(rf.DefaultCalibration(), 7)
	a1 := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	a3 := w.AddAntenna("a3", geom.NewPose(geom.V(1.5, 1, 1), geom.UnitX.Scale(-1), geom.UnitZ))
	for b := 0; b < 3; b++ {
		box := w.AddBox(fmt.Sprintf("box%d", b), geom.CrossingPass(1, 1, 2.5, 1),
			geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.38, 0.33, 0.15))
		w.AttachTag(box, fmt.Sprintf("tag%d", b), testCode(uint64(b+1)), Mount{
			Offset: geom.V(0, -0.21, float64(b)*0.1),
			Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
		})
	}
	person := w.AddPerson("walker", geom.CrossingPass(1, 1.2, 2.5, 1), 1.8, 0.25)
	w.AttachTag(person, "badge", testCode(10), Mount{
		Offset: geom.V(0, -0.26, 1.0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.02,
	})
	w.AttachActiveTag(person, "beacon", testCode(11), Mount{
		Offset: geom.V(0.1, -0.26, 1.0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.02,
	})
	return w, []*Antenna{a1, a2, a3}
}

// TestResolveLinkGridMatchesResolveLink is the batched path's core
// contract: for every (tag, antenna) of the grid, every instant, any
// interference environment, g.Link returns the bit-identical rf.Link the
// per-link path computes — including repeated resolutions that exercise
// every cached layer (same instant, same pass, new block, new pass).
func TestResolveLinkGridMatchesResolveLink(t *testing.T) {
	w, ants := gridScene()
	ref, refAnts := gridScene() // separate world: per-link path, pristine caches
	var g LinkGrid

	contexts := []LinkContext{
		{Time: 0, Pass: 0, Round: 0},
		{Time: 0, Pass: 0, Round: 0},   // replay: every layer hits
		{Time: 0.1, Pass: 0, Round: 1}, // same block, new pose instant
		{Time: 1.2, Pass: 0, Round: 3}, // new fading block
		{Time: 1.2, Pass: 1, Round: 3}, // new pass, same instant
		{Time: 2.5, Pass: 2, Round: 7},
	}
	// Interference environments: none, one foreign, two foreign with dense
	// mode — resolved against each context for the victim a1.
	foreigns := [][]ForeignEmitter{
		nil,
		{{Antenna: ants[1]}},
		{{Antenna: ants[1], DenseModeBoth: true}, {Antenna: ants[2]}},
	}
	refForeigns := [][]ForeignEmitter{
		nil,
		{{Antenna: refAnts[1]}},
		{{Antenna: refAnts[1], DenseModeBoth: true}, {Antenna: refAnts[2]}},
	}

	for ci, ctx := range contexts {
		for fi := range foreigns {
			bctx := ctx
			bctx.Foreign = foreigns[fi]
			w.ResolveLinkGrid(ants[:1], bctx, &g)
			rctx := ctx
			rctx.Foreign = refForeigns[fi]
			for ti, tag := range w.Tags() {
				got := g.Link(ants[0], tag)
				want := ref.ResolveLink(ref.Tags()[ti], refAnts[0], rctx)
				want.Forward = nil
				if got != want {
					t.Fatalf("ctx %d foreign %d tag %s: grid %+v != per-link %+v",
						ci, fi, tag.Name, got, want)
				}
			}
		}
	}

	// All-antenna resolution (the landmarc/rfmap shape) against the same
	// reference worlds.
	ctx := LinkContext{Time: 1.7, Pass: 3, Round: 4}
	w.ResolveLinkGrid(ants, ctx, &g)
	for ai, ant := range ants {
		for ti, tag := range w.Tags() {
			got := g.Link(ant, tag)
			want := ref.ResolveLink(ref.Tags()[ti], refAnts[ai], ctx)
			want.Forward = nil
			if got != want {
				t.Fatalf("ant %s tag %s: grid %+v != per-link %+v", ant.Name, tag.Name, got, want)
			}
		}
	}
}

// TestResolveLinkGridSeesMutations: a scene mutation between grid calls
// must invalidate the deterministic columns (the pose epoch stamp), and
// tag/antenna growth must resize the scratch.
func TestResolveLinkGridSeesMutations(t *testing.T) {
	w, ants := gridScene()
	var g LinkGrid
	ctx := LinkContext{Time: 0.5, Pass: 0, Round: 0}
	w.ResolveLinkGrid(ants[:1], ctx, &g)
	before := g.Link(ants[0], w.Tags()[0])

	w.SetAntennaPose(ants[0], geom.NewPose(geom.V(0, -0.5, 1.4), geom.UnitY, geom.UnitZ))
	w.ResolveLinkGrid(ants[:1], ctx, &g)
	after := g.Link(ants[0], w.Tags()[0])
	if before == after {
		t.Fatal("grid served stale deterministic terms after SetAntennaPose")
	}
	want := w.ResolveLink(w.Tags()[0], ants[0], ctx)
	want.Forward = nil
	if after != want {
		t.Fatalf("post-mutation grid %+v != per-link %+v", after, want)
	}

	// Growth: a new tag re-sizes the grid and resolves alongside the rest.
	box := w.AddBox("late-box", geom.CrossingPass(1, 0.8, 2.5, 1),
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	late := w.AttachTag(box, "late", testCode(99), Mount{
		Offset: geom.V(0, -0.16, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05,
	})
	w.ResolveLinkGrid(ants[:1], ctx, &g)
	got := g.Link(ants[0], late)
	want = w.ResolveLink(late, ants[0], ctx)
	want.Forward = nil
	if got != want {
		t.Fatalf("late tag: grid %+v != per-link %+v", got, want)
	}
}

// TestResolveLinkGridZeroAlloc pins the batched path's steady-state
// allocation contract (`make alloc-guard`): once the grid scratch is
// warm, resolving a full round — new rounds, new instants, new passes,
// with and without foreign emitters — performs no allocation at all.
func TestResolveLinkGridZeroAlloc(t *testing.T) {
	w, ants := gridScene()
	var g LinkGrid
	foreign := []ForeignEmitter{{Antenna: ants[1]}}
	w.ResolveLinkGrid(ants[:1], LinkContext{Time: 0, Pass: 0, Round: 0, Foreign: foreign}, &g)

	round := 0
	if avg := testing.AllocsPerRun(200, func() {
		round++
		ctx := LinkContext{
			Time:    float64(round) * 0.01,
			Pass:    round % 4,
			Round:   round,
			Foreign: foreign,
		}
		w.ResolveLinkGrid(ants[:1], ctx, &g)
	}); avg != 0 {
		t.Errorf("warmed ResolveLinkGrid allocates %.2f allocs/op, want 0", avg)
	}
}

// TestResolveLinkGridCounters: the grid path counts one link resolution
// per (tag, requested antenna) — matching the per-link path, so merged
// snapshots stay identical whichever path ran — plus its own batch/link
// and term-cache counters in the Cache section.
func TestResolveLinkGridCounters(t *testing.T) {
	w, ants := gridScene()
	m := obs.NewMetrics()
	w.Observe(m.Shard())
	var g LinkGrid
	w.ResolveLinkGrid(ants[:1], LinkContext{Time: 0, Pass: 0, Round: 0}, &g)
	w.ResolveLinkGrid(ants[:1], LinkContext{Time: 0, Pass: 0, Round: 1}, &g)

	snap := m.Snapshot()
	nTags := uint64(len(w.Tags()))
	if got := snap.Counters["link.resolutions"]; got != 2*nTags {
		t.Errorf("link.resolutions = %d, want %d", got, 2*nTags)
	}
	if got := snap.Counters["grid.batches"]; got != 2 {
		t.Errorf("grid.batches = %d, want 2", got)
	}
	if got := snap.Counters["grid.links"]; got != 2*nTags {
		t.Errorf("grid.links = %d, want %d", got, 2*nTags)
	}
	if snap.Cache == nil {
		t.Fatal("no Cache section")
	}
	// First call fills the column, second reuses it at the same instant.
	if snap.Cache.GridTermFills != nTags || snap.Cache.GridTermHits != nTags {
		t.Errorf("grid term hits/fills = %d/%d, want %d/%d",
			snap.Cache.GridTermHits, snap.Cache.GridTermFills, nTags, nTags)
	}
}
