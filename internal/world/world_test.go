package world

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/units"
)

func testCode(serial uint64) epc.Code {
	c, err := epc.GID96{Manager: 1, Class: 1, Serial: serial}.Encode()
	if err != nil {
		panic(err)
	}
	return c
}

// portalAntenna returns an antenna at the origin at height z facing +Y.
func portalAntenna(w *World, name string, z float64) *Antenna {
	return w.AddAntenna(name, geom.NewPose(geom.V(0, 0, z), geom.UnitY, geom.UnitZ))
}

// emptyBoxWithTag builds a static empty cardboard box at distance d with a
// well-oriented tag on the antenna-facing side.
func emptyBoxWithTag(w *World, name string, d float64) *Tag {
	box := w.AddBox(name, geom.StaticPath{Pose: geom.NewPose(geom.V(0, d, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	return w.AttachTag(box, name+"/tag", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0), // face toward the antenna
		Normal: geom.V(0, -1, 0),
		Axis:   geom.UnitX,
		Gap:    0.1,
	})
}

// meanTagPower averages the forward power over many passes.
func meanTagPower(w *World, tag *Tag, ant *Antenna, passes int) float64 {
	var sum float64
	for p := 0; p < passes; p++ {
		l := w.ResolveLink(tag, ant, LinkContext{Time: 0, Pass: p, Round: 0})
		sum += float64(l.TagPower)
	}
	return sum / float64(passes)
}

func TestBoresightLinkIsHealthy(t *testing.T) {
	w := New(rf.DefaultCalibration(), 1)
	ant := portalAntenna(w, "a1", 1)
	tag := emptyBoxWithTag(w, "box", 1)
	readable := 0
	const n = 200
	for p := 0; p < n; p++ {
		l := w.ResolveLink(tag, ant, LinkContext{Pass: p})
		if l.Readable(w.Cal) {
			readable++
		}
	}
	if readable < n*97/100 {
		t.Errorf("boresight 1m link readable %d/%d, want ~all", readable, n)
	}
}

func TestPowerFallsWithDistance(t *testing.T) {
	w := New(rf.DefaultCalibration(), 2)
	ant := portalAntenna(w, "a1", 1)
	prev := 1e9
	for _, d := range []float64{1, 3, 5, 9} {
		tag := emptyBoxWithTag(w, fmt.Sprintf("box%v", d), d)
		m := meanTagPower(w, tag, ant, 300)
		if m >= prev {
			t.Errorf("mean power at %vm (%v) not below previous (%v)", d, m, prev)
		}
		prev = m
	}
}

func TestReverseLinkReciprocity(t *testing.T) {
	w := New(rf.DefaultCalibration(), 3)
	ant := portalAntenna(w, "a1", 1)
	tag := emptyBoxWithTag(w, "box", 2)
	l := w.ResolveLink(tag, ant, LinkContext{Pass: 0})
	want := units.DBm(2*float64(l.TagPower)) - w.Cal.TxPowerDBm - units.DBm(w.Cal.BackscatterLossDB)
	if l.ReaderPower != want {
		t.Errorf("reader power = %v, want %v", l.ReaderPower, want)
	}
	// At sane forward levels the reverse link is comfortably above
	// sensitivity: the system is forward-limited like real passive RFID.
	if l.TagPower > w.Cal.ChipSensitivityDBm && l.ReaderPower < w.Cal.ReaderSensitivityDBm {
		t.Error("reverse link died before the forward link")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (us *World, tag *Tag, ant *Antenna) {
		w := New(rf.DefaultCalibration(), 42)
		a := portalAntenna(w, "a1", 1)
		tg := emptyBoxWithTag(w, "box", 2)
		return w, tg, a
	}
	w1, t1, a1 := build()
	w2, t2, a2 := build()
	for p := 0; p < 20; p++ {
		l1 := w1.ResolveLink(t1, a1, LinkContext{Pass: p, Round: p % 3})
		l2 := w2.ResolveLink(t2, a2, LinkContext{Pass: p, Round: p % 3})
		if l1.TagPower != l2.TagPower || l1.ReaderPower != l2.ReaderPower {
			t.Fatalf("pass %d: links diverged: %v vs %v", p, l1.TagPower, l2.TagPower)
		}
	}
	// Repeated resolution of the same context is idempotent.
	l := w1.ResolveLink(t1, a1, LinkContext{Pass: 7})
	if l2 := w1.ResolveLink(t1, a1, LinkContext{Pass: 7}); l2.TagPower != l.TagPower {
		t.Error("same context resolved differently twice")
	}
}

func TestFadingCoherence(t *testing.T) {
	w := New(rf.DefaultCalibration(), 4)
	ant := portalAntenna(w, "a1", 1)
	tag := emptyBoxWithTag(w, "box", 2)
	coh := w.Cal.FadingCoherenceSeconds
	if coh <= 0 {
		t.Fatal("calibration must define a fading coherence time")
	}
	// Rounds inside one coherence block share the channel draw (the tag
	// is static, so only fading could differ).
	p0 := w.ResolveLink(tag, ant, LinkContext{Pass: 0, Time: 0.0, Round: 0}).TagPower
	p1 := w.ResolveLink(tag, ant, LinkContext{Pass: 0, Time: coh * 0.9, Round: 1}).TagPower
	if p0 != p1 {
		t.Error("fading varied inside one coherence block")
	}
	// A later coherence block sees a fresh draw.
	p2 := w.ResolveLink(tag, ant, LinkContext{Pass: 0, Time: coh * 1.5, Round: 2}).TagPower
	if p2 == p0 {
		t.Error("fast fading identical across coherence blocks")
	}
}

func TestOwnContentBlocksFarSideTag(t *testing.T) {
	w := New(rf.DefaultCalibration(), 5)
	ant := portalAntenna(w, "a1", 1)
	// A router box: metal content block inside.
	box := w.AddBox("router", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.4, 0.4, 0.3), rf.Cardboard, rf.Metal, geom.V(0.3, 0.3, 0.2))
	near := w.AttachTag(box, "near", testCode(1), Mount{
		Offset: geom.V(0, -0.2, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitX, Gap: 0.05,
	})
	far := w.AttachTag(box, "far", testCode(2), Mount{
		Offset: geom.V(0, 0.2, 0), Normal: geom.V(0, 1, 0), Axis: geom.UnitX, Gap: 0.05,
	})
	mNear := meanTagPower(w, near, ant, 300)
	mFar := meanTagPower(w, far, ant, 300)
	if mFar >= mNear-5 {
		t.Errorf("far-side tag (%v dBm) should be well below near-side (%v dBm)", mFar, mNear)
	}
	// The scattered path must keep the far tag alive, not -inf dead.
	if mFar < -40 {
		t.Errorf("far-side tag completely dead (%v dBm); scatter path missing", mFar)
	}
}

func TestNeighborBoxOcclusion(t *testing.T) {
	w := New(rf.DefaultCalibration(), 6)
	ant := portalAntenna(w, "a1", 1)
	tag := emptyBoxWithTag(w, "victim", 2)
	before := meanTagPower(w, tag, ant, 300)
	// Park a metal-loaded box between antenna and victim.
	w.AddBox("blocker", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.4, 0.4, 0.4), rf.Cardboard, rf.Metal, geom.V(0.35, 0.35, 0.35))
	after := meanTagPower(w, tag, ant, 300)
	if after >= before-3 {
		t.Errorf("blocker had no effect: %v -> %v dBm", before, after)
	}
}

func TestInterTagCoupling(t *testing.T) {
	w := New(rf.DefaultCalibration(), 7)
	ant := portalAntenna(w, "a1", 1)
	lone := emptyBoxWithTag(w, "lone", 1)
	base := meanTagPower(w, lone, ant, 200)

	// Second scene: the same tag with a parallel neighbour 4 mm away.
	w2 := New(rf.DefaultCalibration(), 7)
	ant2 := portalAntenna(w2, "a1", 1)
	crowded := emptyBoxWithTag(w2, "lone", 1)
	box := crowded.Carrier().(*Box)
	w2.AttachTag(box, "neighbour", testCode(9), Mount{
		Offset: crowded.Mount.Offset.Add(geom.V(0.004, 0, 0)),
		Normal: crowded.Mount.Normal,
		Axis:   crowded.Mount.Axis,
		Gap:    0.1,
	})
	coupled := meanTagPower(w2, crowded, ant2, 200)
	if coupled >= base-5 {
		t.Errorf("4mm neighbour cost only %.1f dB", base-coupled)
	}

	// Crossed dipoles at the same spacing barely couple.
	w3 := New(rf.DefaultCalibration(), 7)
	ant3 := portalAntenna(w3, "a1", 1)
	crossed := emptyBoxWithTag(w3, "lone", 1)
	box3 := crossed.Carrier().(*Box)
	w3.AttachTag(box3, "neighbour", testCode(9), Mount{
		Offset: crossed.Mount.Offset.Add(geom.V(0.004, 0, 0)),
		Normal: crossed.Mount.Normal,
		Axis:   geom.UnitZ, // perpendicular to the victim's X axis
		Gap:    0.1,
	})
	uncoupled := meanTagPower(w3, crossed, ant3, 200)
	if base-uncoupled > 2 {
		t.Errorf("crossed neighbour cost %.1f dB, want ~0", base-uncoupled)
	}
}

func TestDipoleOrientationMatters(t *testing.T) {
	w := New(rf.DefaultCalibration(), 8)
	ant := portalAntenna(w, "a1", 1)
	good := emptyBoxWithTag(w, "good", 1) // axis X, broadside to the antenna

	w2 := New(rf.DefaultCalibration(), 8)
	ant2 := portalAntenna(w2, "a1", 1)
	box := w2.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	bad := w2.AttachTag(box, "bad", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0),
		Normal: geom.V(0, -1, 0),
		Axis:   geom.UnitY, // pointing straight at the antenna: the null
		Gap:    0.1,
	})
	mGood := meanTagPower(w, good, ant, 200)
	mBad := meanTagPower(w2, bad, ant2, 200)
	if mBad >= mGood-8 {
		t.Errorf("axis-toward-antenna tag (%v) should be far below broadside (%v)", mBad, mGood)
	}
}

func TestGrazingNeedsMetalBacking(t *testing.T) {
	mkTop := func(content rf.Material, contentSize geom.Vec3, gap float64) (float64, *World) {
		w := New(rf.DefaultCalibration(), 9)
		ant := portalAntenna(w, "a1", 1)
		box := w.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 0.85), geom.UnitX, geom.UnitZ)},
			geom.V(0.4, 0.4, 0.3), rf.Cardboard, content, contentSize)
		// Tag flat on the lid: normal up, axis along travel; the antenna at
		// the same height sees it edge-on.
		tag := w.AttachTag(box, "top", testCode(1), Mount{
			Offset: geom.V(0, 0, 0.151), Normal: geom.UnitZ, Axis: geom.UnitX, Gap: gap,
		})
		return meanTagPower(w, tag, ant, 300), w
	}
	onCardboard, _ := mkTop(rf.Air, geom.Vec3{}, 0.1)
	onRouter, _ := mkTop(rf.Metal, geom.V(0.3, 0.3, 0.24), 0.012)
	if onRouter >= onCardboard-8 {
		t.Errorf("top tag on router box (%v) should be far below empty box (%v)", onRouter, onCardboard)
	}
}

func TestPersonBodyBlocking(t *testing.T) {
	w := New(rf.DefaultCalibration(), 10)
	ant := portalAntenna(w, "a1", 1)
	p := w.AddPerson("alice", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 0), geom.UnitX, geom.UnitZ)}, 1.75, 0.17)
	nearHip := w.AttachTag(p, "near", testCode(1), Mount{
		Offset: geom.V(0, -0.18, 1.0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.015,
	})
	farHip := w.AttachTag(p, "far", testCode(2), Mount{
		Offset: geom.V(0, 0.18, 1.0), Normal: geom.V(0, 1, 0), Axis: geom.UnitZ, Gap: 0.015,
	})
	mNear := meanTagPower(w, nearHip, ant, 300)
	mFar := meanTagPower(w, farHip, ant, 300)
	if mFar >= mNear-6 {
		t.Errorf("far hip (%v) should be well below near hip (%v)", mFar, mNear)
	}
}

func TestBodyReflectionBonus(t *testing.T) {
	cal := rf.DefaultCalibration()
	single := New(cal, 11)
	antS := portalAntenna(single, "a1", 1)
	pS := single.AddPerson("alice", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 0), geom.UnitX, geom.UnitZ)}, 1.75, 0.17)
	tagS := single.AttachTag(pS, "front", testCode(1), Mount{
		Offset: geom.V(0.18, 0, 1.0), Normal: geom.UnitX, Axis: geom.UnitZ, Gap: 0.015,
	})

	double := New(cal, 11)
	antD := portalAntenna(double, "a1", 1)
	pD := double.AddPerson("alice", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 0), geom.UnitX, geom.UnitZ)}, 1.75, 0.17)
	tagD := double.AttachTag(pD, "front", testCode(1), Mount{
		Offset: geom.V(0.18, 0, 1.0), Normal: geom.UnitX, Axis: geom.UnitZ, Gap: 0.015,
	})
	// A second subject walking in parallel, farther from the antenna.
	double.AddPerson("bob", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1.6, 0), geom.UnitX, geom.UnitZ)}, 1.75, 0.17)

	mS := meanTagPower(single, tagS, antS, 300)
	mD := meanTagPower(double, tagD, antD, 300)
	diff := mD - mS
	want := float64(cal.BodyReflectionGainDB)
	if diff < want-1 || diff > want+1 {
		t.Errorf("reflection bonus = %.2f dB, want ~%.1f", diff, want)
	}
}

func TestForeignEmitterInterference(t *testing.T) {
	w := New(rf.DefaultCalibration(), 12)
	a1 := portalAntenna(w, "a1", 1)
	// The paper's two-antenna portal: the second antenna 2 m away on the
	// other side, facing back — so the two boresights stare at each other.
	a2 := w.AddAntenna("a2", geom.NewPose(geom.V(0, 2, 1), geom.UnitY.Scale(-1), geom.UnitZ))
	tag := emptyBoxWithTag(w, "box", 1)

	clean := w.ResolveLink(tag, a1, LinkContext{Pass: 0})
	if clean.TagInterference != rf.NoInterference || clean.ReaderInterference != rf.NoInterference {
		t.Fatal("interference without foreign emitters")
	}
	if !clean.Readable(w.Cal) {
		t.Fatal("clean link unreadable")
	}

	jammed := w.ResolveLink(tag, a1, LinkContext{Pass: 0, Foreign: []ForeignEmitter{{Antenna: a2}}})
	if jammed.ReaderInterference < -40 {
		t.Errorf("reader-to-reader leakage = %v dBm, expected a strong carrier", jammed.ReaderInterference)
	}
	if jammed.ReverseDecodable(w.Cal) {
		t.Error("reverse link should be jammed by a non-dense foreign reader")
	}

	dense := w.ResolveLink(tag, a1, LinkContext{Pass: 0, Foreign: []ForeignEmitter{{Antenna: a2, DenseModeBoth: true}}})
	if dense.ReaderInterference >= jammed.ReaderInterference {
		t.Error("dense mode did not suppress reader interference")
	}
	if dense.TagInterference >= jammed.TagInterference {
		t.Error("dense mode did not suppress tag-side interference")
	}

	// A foreign emitter that is the same antenna is ignored.
	self := w.ResolveLink(tag, a1, LinkContext{Pass: 0, Foreign: []ForeignEmitter{{Antenna: a1}}})
	if self.TagInterference != rf.NoInterference {
		t.Error("own antenna counted as interference")
	}
}

func TestExplainBudget(t *testing.T) {
	w := New(rf.DefaultCalibration(), 13)
	ant := portalAntenna(w, "a1", 1)
	tag := emptyBoxWithTag(w, "box", 2)
	l := w.ResolveLink(tag, ant, LinkContext{Pass: 0, Explain: true})
	if l.Forward == nil {
		t.Fatal("no budget returned with Explain")
	}
	s := l.Forward.String()
	for _, term := range []string{"patch gain", "free space", "tag dipole", "scattered path"} {
		if !strings.Contains(s, term) {
			t.Errorf("budget missing term %q:\n%s", term, s)
		}
	}
	// The itemized budget total matches the returned power.
	if got := l.Forward.Total(); got != l.TagPower {
		t.Errorf("budget total %v != tag power %v", got, l.TagPower)
	}
	// Without Explain, no budget is allocated.
	if l2 := w.ResolveLink(tag, ant, LinkContext{Pass: 0}); l2.Forward != nil {
		t.Error("budget allocated without Explain")
	}
}

func TestWorldAccessors(t *testing.T) {
	w := New(rf.DefaultCalibration(), 14)
	ant := portalAntenna(w, "a1", 1)
	tag := emptyBoxWithTag(w, "box", 1)
	p := w.AddPerson("p", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 2, 0), geom.UnitX, geom.UnitZ)}, 1.7, 0.17)
	w.AttachTag(p, "badge", testCode(5), Mount{Offset: geom.V(0, -0.18, 1), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ})

	if len(w.Tags()) != 2 || len(w.Antennas()) != 1 || len(w.Carriers()) != 2 {
		t.Errorf("accessors: %d tags, %d antennas, %d carriers",
			len(w.Tags()), len(w.Antennas()), len(w.Carriers()))
	}
	if w.Antennas()[0] != ant {
		t.Error("antenna identity lost")
	}
	if tag.Carrier().Name() != "box" || tag.Carrier().ContentMaterial() != rf.Cardboard {
		t.Error("carrier wiring broken")
	}
	if p.Tags()[0].Name != "badge" || p.ContentMaterial() != rf.Body {
		t.Error("person wiring broken")
	}
	// Tag positions track the carrier.
	if got := p.Tags()[0].Pos(0); got.Dist(geom.V(0, 1.82, 1)) > 1e-9 {
		t.Errorf("badge position = %v", got)
	}
}

func TestMountVectorsNormalized(t *testing.T) {
	w := New(rf.DefaultCalibration(), 15)
	box := w.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0, 1, 1), geom.UnitX, geom.UnitZ)},
		geom.V(0.3, 0.3, 0.3), rf.Cardboard, rf.Air, geom.Vec3{})
	tag := w.AttachTag(box, "t", testCode(1), Mount{
		Offset: geom.V(0, -0.15, 0),
		Normal: geom.V(0, -9, 0),
		Axis:   geom.V(5, 0, 0),
	})
	if tag.Mount.Normal.Norm() != 1 || tag.Mount.Axis.Norm() != 1 {
		t.Error("mount vectors not normalized on attach")
	}
}

func TestLinkMonotoneInTxPowerProperty(t *testing.T) {
	// More conducted power never weakens any link (with all random draws
	// held fixed by seed/pass/round keys).
	build := func(tx float64) (*World, *Tag, *Antenna) {
		cal := rf.DefaultCalibration()
		cal.TxPowerDBm = units.DBm(tx)
		w := New(cal, 55)
		ant := portalAntenna(w, "a1", 1)
		box := w.AddBox("b", geom.StaticPath{Pose: geom.NewPose(geom.V(0.4, 1.5, 1), geom.UnitX, geom.UnitZ)},
			geom.V(0.4, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.3, 0.3, 0.15))
		tag := w.AttachTag(box, "t", testCode(1), Mount{
			Offset: geom.V(0, 0.21, 0), Normal: geom.UnitY, Axis: geom.UnitZ, Gap: 0.03,
		})
		return w, tag, ant
	}
	f := func(p1Raw, p2Raw uint8, pass uint8) bool {
		p1 := 10 + float64(p1Raw%21) // 10..30 dBm
		p2 := 10 + float64(p2Raw%21)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		w1, t1, a1 := build(p1)
		w2, t2, a2 := build(p2)
		ctx := LinkContext{Pass: int(pass), Round: 0}
		l1 := w1.ResolveLink(t1, a1, ctx)
		l2 := w2.ResolveLink(t2, a2, ctx)
		return l2.TagPower >= l1.TagPower-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResolutionOrderIndependence(t *testing.T) {
	// The random-field design promise: link values do not depend on the
	// order in which links are resolved.
	build := func() (*World, []*Tag, *Antenna) {
		w := New(rf.DefaultCalibration(), 66)
		ant := portalAntenna(w, "a1", 1)
		var tags []*Tag
		for i := 0; i < 5; i++ {
			box := w.AddBox(fmt.Sprintf("b%d", i),
				geom.StaticPath{Pose: geom.NewPose(geom.V(float64(i)*0.4-0.8, 1.2, 1), geom.UnitX, geom.UnitZ)},
				geom.V(0.2, 0.2, 0.2), rf.Cardboard, rf.Air, geom.Vec3{})
			tags = append(tags, w.AttachTag(box, fmt.Sprintf("t%d", i), testCode(uint64(i)), Mount{
				Offset: geom.V(0, -0.1, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.1,
			}))
		}
		return w, tags, ant
	}
	w1, tags1, a1 := build()
	forward := make([]float64, len(tags1))
	for i, tag := range tags1 {
		forward[i] = float64(w1.ResolveLink(tag, a1, LinkContext{Pass: 3}).TagPower)
	}
	w2, tags2, a2 := build()
	for i := len(tags2) - 1; i >= 0; i-- {
		got := float64(w2.ResolveLink(tags2[i], a2, LinkContext{Pass: 3}).TagPower)
		if got != forward[i] {
			t.Fatalf("tag %d: %v (reverse order) != %v (forward order)", i, got, forward[i])
		}
	}
}
