package world

import (
	"math"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/units"
	"rfidtrack/internal/xrand"
)

// ForeignEmitter is another reader's antenna radiating CW concurrently
// with the link being resolved.
type ForeignEmitter struct {
	Antenna *Antenna
	// DenseModeBoth is true when both the interfering reader and the
	// victim reader operate in dense-reader mode (spectral separation).
	DenseModeBoth bool
}

// LinkContext keys the random fields and carries the interference
// environment for one link resolution.
type LinkContext struct {
	// Time is the simulation instant (seconds into the pass).
	Time float64
	// Pass identifies the trial: slow fading (shadowing) is drawn once per
	// (pass, tag[, antenna]).
	Pass int
	// Round identifies the inventory round: fast fading is drawn once per
	// (pass, round, tag, antenna).
	Round int
	// Foreign lists other readers' active antennas.
	Foreign []ForeignEmitter
	// Explain requests an itemized forward budget in the result.
	Explain bool
}

// couplingSearchRadius bounds the neighbour scan for mutual coupling;
// beyond 10 cm the effect is zero for any plausible calibration.
const couplingSearchRadius = 0.10

// ResolveLink computes the complete radio state of one (tag, antenna)
// combination: forward power at the tag chip, backscatter power at the
// reader, and interference at both ends.
func (w *World) ResolveLink(tag *Tag, ant *Antenna, ctx LinkContext) rf.Link {
	if w.obs != nil {
		w.obs.Inc(obs.CtrLinkResolutions)
	}
	var l rf.Link
	var budget *rf.Budget
	if ctx.Explain {
		budget = rf.NewBudget(w.Cal.TxPowerDBm)
	}
	l.TagPower = w.forwardPowerDBm(tag, ant, ctx, budget, false)
	l.Forward = budget
	l.Active = tag.Active

	if tag.Active {
		// An active tag transmits its reply: the reverse link is one-way.
		// By reciprocity the one-way path gain is TagPower − TxPower.
		l.ReaderPower = w.Cal.ActiveTxPowerDBm.
			Plus(units.DB(l.TagPower - w.Cal.TxPowerDBm))
	} else {
		// Monostatic reciprocity: the backscatter retraces the forward
		// path, so in dB the received power is 2·P_tag − P_tx − conversion
		// loss.
		l.ReaderPower = units.DBm(2*float64(l.TagPower)) - w.Cal.TxPowerDBm -
			units.DBm(w.Cal.BackscatterLossDB)
	}

	l.TagInterference = rf.NoInterference
	l.ReaderInterference = rf.NoInterference
	for _, f := range ctx.Foreign {
		if f.Antenna == ant {
			continue
		}
		// Carrier power the tag absorbs from the foreign reader.
		p := w.forwardPowerDBm(tag, f.Antenna, ctx, nil, true)
		if f.DenseModeBoth {
			p = p.Plus(-w.Cal.DenseModeTagSuppressionDB)
		}
		l.TagInterference = rf.CombineInterference(l.TagInterference, p)

		// Carrier leakage straight into the victim reader's receiver.
		rp := w.readerToReaderDBm(f.Antenna, ant)
		if f.DenseModeBoth {
			rp = rp.Plus(-w.Cal.DenseModeReaderSuppressionDB)
		}
		l.ReaderInterference = rf.CombineInterference(l.ReaderInterference, rp)
	}
	return l
}

// forwardPowerDBm computes the power delivered to the tag chip from one
// antenna: the linear sum of a direct path and a scattered (multipath)
// path, each with its own deterministic gains and random fields.
// asInterference marks foreign-carrier resolutions, which use separate
// fading draws (a different propagation path) but share the tag-local
// terms.
func (w *World) forwardPowerDBm(tag *Tag, ant *Antenna, ctx LinkContext, budget *rf.Budget, asInterference bool) units.DBm {
	cal := w.Cal
	tagPos := tag.Pos(ctx.Time)
	antPos := ant.Pose.Pos
	dist := tagPos.Dist(antPos)
	dirToTag := tagPos.Sub(antPos).Unit()
	dirToAnt := dirToTag.Scale(-1)

	fspl := units.FSPL(dist, cal.FreqHz)
	obstruction, scatterObstruction := w.obstructionDB(antPos, tagPos, ctx.Time)

	// Tag-local terms shared by both paths.
	detune := cal.ProximityDetuneDB(tag.carrier.ContentMaterial(), tag.Mount.Gap)
	coupling := w.couplingDB(tag, ctx.Time)
	reflect := w.bodyReflectionDB(tag, antPos, ctx.Time)
	tagShadow := units.DB(w.fieldNormal(
		w.keys.shadowTag.Int(ctx.Pass).Str("/").Str(tag.Name), cal.SigmaTagDB))

	// Direct path. A dual-dipole tag uses whichever of its two dipoles
	// couples better right now (orientation-insensitive designs).
	patch := cal.ReaderAntenna.GainToward(ant.Pose, tagPos)
	pol, dipole := bestDipole(cal, tag, ant, tagPos, antPos, dirToTag)
	graze := rf.GrazingLossDB(
		tag.Mount.Normal.Dot(dirToAnt),
		cal.ProximityFraction(tag.carrier.ContentMaterial(), tag.Mount.Gap),
		cal.GrazingMaxDB)
	pathShadow := units.DB(w.fieldNormal(
		w.keys.shadowPath.Int(ctx.Pass).Str("/").Str(tag.Name).Str("/").Str(ant.Name), cal.SigmaPathDB))
	fadeKey, fadeScatKey := w.keys.fadeDir, w.keys.fadeDirS
	if asInterference {
		fadeKey, fadeScatKey = w.keys.fadeInt, w.keys.fadeIntS
	}
	// Fast fading decorrelates on the channel coherence time, not per
	// round: rounds inside one coherence block share the same draw.
	block := ctx.Round
	if cal.FadingCoherenceSeconds > 0 {
		block = int(ctx.Time / cal.FadingCoherenceSeconds)
	}
	fadeDirect := units.DB(w.fieldRician(
		fadeKey.Int(ctx.Pass).Str("/b").Int(block).Str("/").Str(tag.Name).Str("/").Str(ant.Name), cal.RicianK))

	direct := cal.TxPowerDBm.
		Plus(-cal.CableLossDB).
		Plus(patch).
		Plus(-fspl).
		Plus(-pol).
		Plus(dipole).
		Plus(-graze).
		Plus(-obstruction).
		Plus(-detune).
		Plus(-coupling).
		Plus(reflect).
		Plus(tagShadow).
		Plus(pathShadow).
		Plus(fadeDirect)

	// Scattered path: reflections off floor, walls and fixtures. Arrives
	// from everywhere: flattened antenna pattern, averaged tag pattern,
	// fixed 3 dB polarization scrambling, partial obstruction, Rayleigh
	// fading, and no grazing cancellation (arrivals are not in the tag's
	// ground plane).
	// The scattered illumination level is a property of the tag's local
	// clutter, so its slow fading is shared by every antenna observing the
	// tag (only the per-block Rayleigh draw differs). This shared
	// component is part of what correlates antenna-level read
	// opportunities in Table 3.
	scatShadow := units.DB(w.fieldNormal(
		w.keys.shadowScat.Int(ctx.Pass).Str("/").Str(tag.Name), cal.ScatterSigmaDB))
	fadeScatter := units.DB(w.fieldRician(
		fadeScatKey.Int(ctx.Pass).Str("/b").Int(block).Str("/").Str(tag.Name).Str("/").Str(ant.Name), 0))
	scatter := cal.TxPowerDBm.
		Plus(-cal.CableLossDB).
		Plus(cal.ScatterAntennaGainDB).
		Plus(-fspl).
		Plus(-cal.ScatterLossDB).
		Plus(-3).
		Plus(-scatterObstruction).
		Plus(-detune).
		Plus(-coupling).
		Plus(reflect).
		Plus(tagShadow).
		Plus(scatShadow).
		Plus(fadeScatter)

	if budget != nil {
		budget.Add("patch gain", patch).
			AddLoss("cable", cal.CableLossDB).
			AddLoss("free space", fspl).
			AddLoss("polarization", pol).
			Add("tag dipole", dipole).
			AddLoss("grazing", graze).
			AddLoss("obstruction", obstruction).
			AddLoss("proximity detune", detune).
			AddLoss("inter-tag coupling", coupling).
			Add("body reflection", reflect).
			Add("tag shadowing", tagShadow).
			Add("path shadowing", pathShadow).
			Add("fast fading", fadeDirect).
			Add("scattered path (extra)", units.DB(combinePower(direct, scatter)-direct))
	}

	return combinePower(direct, scatter)
}

// bestDipole returns the (polarization loss, dipole gain) of the tag
// dipole that couples best toward the antenna.
func bestDipole(cal rf.Calibration, tag *Tag, ant *Antenna, tagPos, antPos, dirToTag geom.Vec3) (units.DB, units.DB) {
	evalAxis := func(axis geom.Vec3) (units.DB, units.DB, units.DB) {
		p := rf.PolarizationLossDB(cal.ReaderPolarization, ant.Pose.Up, axis, dirToTag, cal.CrossPolFloorDB)
		d := cal.TagDipole.GainToward(axis, tagPos, antPos)
		return p, d, d - p
	}
	pol, dip, score := evalAxis(tag.Mount.Axis)
	if !tag.Mount.Axis2.IsZero() {
		if p2, d2, s2 := evalAxis(tag.Mount.Axis2); s2 > score {
			pol, dip = p2, d2
		}
	}
	return pol, dip
}

// readerToReaderDBm is the carrier power one antenna couples into another.
func (w *World) readerToReaderDBm(from, to *Antenna) units.DBm {
	cal := w.Cal
	d := from.Pose.Pos.Dist(to.Pose.Pos)
	return cal.TxPowerDBm.
		Plus(-cal.CableLossDB).
		Plus(cal.ReaderAntenna.GainToward(from.Pose, to.Pose.Pos)).
		Plus(-units.FSPL(d, cal.FreqHz)).
		Plus(cal.ReaderAntenna.GainToward(to.Pose, from.Pose.Pos)).
		Plus(-cal.CableLossDB)
}

// obstructionDB sums the blocking of every carrier crossing the segment,
// separately for the direct and scattered paths. The tag end is pulled
// back slightly so a tag sitting on its own carrier's surface is not
// swallowed by numeric noise.
func (w *World) obstructionDB(antPos, tagPos geom.Vec3, t float64) (direct, scatter units.DB) {
	toAnt := antPos.Sub(tagPos).Unit()
	from := tagPos.Add(toAnt.Scale(0.002))
	for _, c := range w.carriers {
		d, s := c.ObstructionDB(w.Cal, antPos, from, t)
		direct += d
		scatter += s
	}
	return direct, scatter
}

// couplingDB returns the mutual-coupling detuning from the tag's nearest
// neighbours (the worst single neighbour dominates).
func (w *World) couplingDB(tag *Tag, t float64) units.DB {
	pos := tag.Pos(t)
	var worst units.DB
	for _, o := range w.tags {
		if o == tag {
			continue
		}
		d := pos.Dist(o.Pos(t))
		if d > couplingSearchRadius {
			continue
		}
		align := rf.NeighbourAlignment(geom.AngleBetween(tag.Mount.Axis, o.Mount.Axis))
		if l := w.Cal.CouplingLossDB(d, align); l > worst {
			worst = l
		}
	}
	return worst
}

// bodyReflectionDB returns the paper's measured bonus for a tag whose
// carrier has another body close behind it (reflections off the farther
// subject illuminate the closer one).
func (w *World) bodyReflectionDB(tag *Tag, antPos geom.Vec3, t float64) units.DB {
	p, ok := tag.carrier.(*Person)
	if !ok {
		return 0
	}
	own := p.Center(t)
	ownDist := own.Dist(antPos)
	for _, c := range w.carriers {
		q, ok := c.(*Person)
		if !ok || q == p {
			continue
		}
		center := q.Center(t)
		if center.Dist(own) <= w.Cal.BodyReflectionRange && center.Dist(antPos) > ownDist {
			return w.Cal.BodyReflectionGainDB
		}
	}
	return 0
}

// fieldDraws returns the two unit-normal draws at the head of the stream
// the key identifies — the raw material of every random field. Values are
// memoized by label hash: a field is a pure function of its label, so the
// cache only removes the per-draw stream construction (the dominant
// allocation of the old fmt.Sprintf + Split path).
func (w *World) fieldDraws(k xrand.Key) [2]float64 {
	h := k.Seed()
	if v, ok := w.fieldCache[h]; ok {
		return v
	}
	if len(w.fieldCache) >= maxFieldCacheEntries {
		clear(w.fieldCache)
	}
	r := k.Stream()
	v := [2]float64{r.Normal(0, 1), r.Normal(0, 1)}
	w.fieldCache[h] = v
	return v
}

// fieldNormal draws N(0, sigma²) for the field the key labels —
// bit-identical to Split(label).Normal(0, sigma).
func (w *World) fieldNormal(k xrand.Key, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	return sigma * w.fieldDraws(k)[0]
}

// fieldRician draws the Rician power gain (dB, K-factor k) for the field
// the key labels — bit-identical to Split(label).RicianPowerDB(k).
func (w *World) fieldRician(k xrand.Key, kf float64) float64 {
	if kf < 0 {
		kf = 0
	}
	d := w.fieldDraws(k)
	sigma := math.Sqrt(1 / (2 * (kf + 1)))
	nu := math.Sqrt(kf / (kf + 1))
	x := nu + sigma*d[0]
	y := sigma * d[1]
	p := x*x + y*y
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// combinePower adds two powers linearly.
func combinePower(a, b units.DBm) units.DBm {
	return (a.Milliwatts() + b.Milliwatts()).DBm()
}
