package world

import (
	"math"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/units"
	"rfidtrack/internal/xrand"
)

// ForeignEmitter is another reader's antenna radiating CW concurrently
// with the link being resolved.
type ForeignEmitter struct {
	Antenna *Antenna
	// DenseModeBoth is true when both the interfering reader and the
	// victim reader operate in dense-reader mode (spectral separation).
	DenseModeBoth bool
}

// LinkContext keys the random fields and carries the interference
// environment for one link resolution.
type LinkContext struct {
	// Time is the simulation instant (seconds into the pass).
	Time float64
	// Pass identifies the trial: slow fading (shadowing) is drawn once per
	// (pass, tag[, antenna]).
	Pass int
	// Round identifies the inventory round: fast fading is drawn once per
	// (pass, round, tag, antenna).
	Round int
	// Foreign lists other readers' active antennas.
	Foreign []ForeignEmitter
	// Explain requests an itemized forward budget in the result.
	Explain bool
	// Cull permits broad-phase culling in ResolveLinkGrid: pairs whose
	// conservative bound (rf.CullBound, DESIGN.md §14) proves the tag
	// cannot power up are skipped, and their Link slots hold −Inf powers
	// instead of real sub-threshold values. Decodability predicates and
	// reads are bit-identical either way; callers that consume raw powers
	// of undetectable links (link tracing, RSSI maps) must leave it false.
	// ResolveLink ignores it.
	Cull bool
}

// couplingSearchRadius bounds the neighbour scan for mutual coupling;
// beyond 10 cm the effect is zero for any plausible calibration.
const couplingSearchRadius = 0.10

// ResolveLink computes the complete radio state of one (tag, antenna)
// combination: forward power at the tag chip, backscatter power at the
// reader, and interference at both ends.
func (w *World) ResolveLink(tag *Tag, ant *Antenna, ctx LinkContext) rf.Link {
	if w.obs != nil {
		w.obs.Inc(obs.CtrLinkResolutions)
	}
	var l rf.Link
	var budget *rf.Budget
	if ctx.Explain {
		budget = rf.NewBudget(w.Cal.TxPowerDBm)
	}
	l.TagPower = w.forwardPowerDBm(tag, ant, ctx, budget, false)
	l.Forward = budget
	l.Active = tag.Active

	if tag.Active {
		// An active tag transmits its reply: the reverse link is one-way.
		// By reciprocity the one-way path gain is TagPower − TxPower.
		l.ReaderPower = w.Cal.ActiveTxPowerDBm.
			Plus(units.DB(l.TagPower - w.Cal.TxPowerDBm))
	} else {
		// Monostatic reciprocity: the backscatter retraces the forward
		// path, so in dB the received power is 2·P_tag − P_tx − conversion
		// loss.
		l.ReaderPower = units.DBm(2*float64(l.TagPower)) - w.Cal.TxPowerDBm -
			units.DBm(w.Cal.BackscatterLossDB)
	}

	l.TagInterference = rf.NoInterference
	l.ReaderInterference = rf.NoInterference
	for _, f := range ctx.Foreign {
		if f.Antenna == ant {
			continue
		}
		// Carrier power the tag absorbs from the foreign reader.
		p := w.forwardPowerDBm(tag, f.Antenna, ctx, nil, true)
		if f.DenseModeBoth {
			p = p.Plus(-w.Cal.DenseModeTagSuppressionDB)
		}
		l.TagInterference = rf.CombineInterference(l.TagInterference, p)

		// Carrier leakage straight into the victim reader's receiver.
		rp := w.readerToReaderDBm(f.Antenna, ant)
		if f.DenseModeBoth {
			rp = rp.Plus(-w.Cal.DenseModeReaderSuppressionDB)
		}
		l.ReaderInterference = rf.CombineInterference(l.ReaderInterference, rp)
	}
	return l
}

// poseQuantum is the grid pose-evaluation times snap to (2^-10 s, under
// a millimeter of travel at walking speed). Quantizing keys the
// budget-terms cache so trajectory sweeps that revisit the same sample
// instant — and static scenes, which always resolve at t = 0 — hit the
// cache. A power of two keeps on-grid times exact: t/poseQuantum scales
// the exponent only, so a time already on the grid quantizes to itself.
const poseQuantum = 1.0 / 1024

// poseTime returns t snapped down to the pose grid.
func poseTime(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Floor(t/poseQuantum) * poseQuantum
}

// syncCaches discards the reader-to-reader cache when the scene has
// mutated since it was filled. (The budget-terms memo carries per-entry
// epoch stamps instead, so it needs no sweep.)
func (w *World) syncCaches() {
	if w.cacheEpoch != w.poseEpoch {
		clear(w.r2rCache)
		w.cacheEpoch = w.poseEpoch
	}
}

// linkTerms returns the deterministic budget terms of (tag, ant) at time
// t — from the memo when the pair's last resolution was at the same scene
// epoch and quantized instant, computed fresh (and memoized) otherwise.
// Both paths evaluate the scene at the same quantized instant, so cached
// and uncached resolutions are bit-identical. One slot per (tag, antenna)
// is exactly the reuse that exists: static scenes pin one instant forever,
// and moving scenes revisit an instant only within the concurrent rounds
// of one cycle.
// The caller gets a pointer into the memo slot (or a world-owned scratch
// slot when the cache is off) — valid until the next linkTerms call, never
// to be mutated. Returning a pointer keeps the 100+-byte BudgetTerms from
// being copied once per (link, instant) on the hot path.
func (w *World) linkTerms(tag *Tag, ant *Antenna, t float64) *rf.BudgetTerms {
	tq := poseTime(t)
	if w.linkCacheOff {
		w.budgetTerms(tag, ant, tq, &w.termsScratch)
		return &w.termsScratch
	}
	if need := len(w.tags) * len(w.antennas); len(w.termsMemo) != need {
		w.termsMemo = make([]termsEntry, need)
	}
	e := &w.termsMemo[tag.idx*len(w.antennas)+ant.idx]
	if e.epoch == w.poseEpoch && e.tq == tq {
		if w.obs != nil {
			w.obs.LinkCacheHit()
		}
		return &e.terms
	}
	w.budgetTerms(tag, ant, tq, &e.terms)
	e.tq, e.epoch = tq, w.poseEpoch
	if w.obs != nil {
		w.obs.LinkCacheMiss()
	}
	return &e.terms
}

// budgetTerms computes the deterministic half of the forward budget into
// bt: every term that depends only on scene pose at the quantized instant
// tq. No random field is read here — that is what makes the result
// cacheable across passes (see DESIGN.md §9). Writing into the caller's
// slot (the memo entry or the cache-off scratch) avoids copying the
// 80-byte struct twice per miss.
func (w *World) budgetTerms(tag *Tag, ant *Antenna, tq float64, bt *rf.BudgetTerms) {
	cal := &w.Cal
	tagPos := w.tagPositions(tq)[tag.idx]
	antPos := ant.Pose.Pos
	dist := tagPos.Dist(antPos)
	dirToTag := tagPos.Sub(antPos).Unit()
	dirToAnt := dirToTag.Scale(-1)
	detune, prox := w.tagLocalTerms()

	bt.FSPL = units.FSPL(dist, cal.FreqHz)
	bt.Obstruction, bt.ScatterObstruction = w.obstructionDB(antPos, tagPos, tq)

	// Tag-local terms shared by both paths.
	bt.Detune = detune[tag.idx]
	bt.Coupling = w.couplingDB(tag, tq)
	bt.Reflect = w.bodyReflectionDB(tag, antPos, tq)

	// Direct path. A dual-dipole tag uses whichever of its two dipoles
	// couples better right now (orientation-insensitive designs).
	bt.Patch = cal.ReaderAntenna.GainToward(ant.Pose, tagPos)
	bt.Pol, bt.Dipole = bestDipole(cal, tag, ant, tagPos, antPos, dirToTag)
	bt.Graze = rf.GrazingLossDB(
		tag.Mount.Normal.Dot(dirToAnt),
		prox[tag.idx],
		cal.GrazingMaxDB)
}

// tagLocalTerms returns every tag's proximity detune loss and grazing
// proximity fraction — pure functions of the mount geometry and the
// carrier's content material, so one evaluation per tag per scene epoch
// serves every (antenna, instant) resolution. The same floats the inline
// ProximityDetuneDB/ProximityFraction calls produced, just memoized.
func (w *World) tagLocalTerms() ([]units.DB, []float64) {
	if w.tlN != len(w.tags) || w.tlEpoch != w.poseEpoch {
		if cap(w.tagDetune) < len(w.tags) {
			w.tagDetune = make([]units.DB, len(w.tags))
			w.tagProx = make([]float64, len(w.tags))
		}
		w.tagDetune = w.tagDetune[:len(w.tags)]
		w.tagProx = w.tagProx[:len(w.tags)]
		for i, t := range w.tags {
			m := t.carrier.ContentMaterial()
			w.tagDetune[i] = w.Cal.ProximityDetuneDB(m, t.Mount.Gap)
			w.tagProx[i] = w.Cal.ProximityFraction(m, t.Mount.Gap)
		}
		w.tlN, w.tlEpoch = len(w.tags), w.poseEpoch
	}
	return w.tagDetune, w.tagProx
}

// tagPositions returns every tag's world position at the quantized
// instant tq, recomputed only when the instant, the scene, or the tag set
// changed — the neighbour scans (coupling, obstruction callers) would
// otherwise evaluate O(tags²) path positions per round.
func (w *World) tagPositions(tq float64) []geom.Vec3 {
	if w.posTags != len(w.tags) || w.posTime != tq || w.posEpoch != w.poseEpoch {
		if cap(w.positions) < len(w.tags) {
			w.positions = make([]geom.Vec3, len(w.tags))
		}
		w.positions = w.positions[:len(w.tags)]
		centers := w.carrierCenters(tq)
		for i, tag := range w.tags {
			if tag.cidx >= 0 {
				// Same floats as tag.Pos(tq): the carrier center comes from
				// the same Path.At evaluation, just memoized per instant.
				w.positions[i] = centers[tag.cidx].Add(tag.Mount.Offset)
			} else {
				w.positions[i] = tag.Pos(tq)
			}
		}
		w.posTags, w.posTime, w.posEpoch = len(w.tags), tq, w.poseEpoch
	}
	return w.positions
}

// carrierCenters returns every carrier's reference point at the quantized
// instant tq, recomputed only when the instant, the scene, or the carrier
// set changed — the obstruction and body-reflection scans would otherwise
// re-walk every carrier's path for every (tag, antenna) resolution of the
// same instant.
func (w *World) carrierCenters(tq float64) []geom.Vec3 {
	if w.cenN != len(w.carriers) || w.cenTime != tq || w.cenEpoch != w.poseEpoch {
		if cap(w.centers) < len(w.carriers) {
			w.centers = make([]geom.Vec3, len(w.carriers))
		}
		w.centers = w.centers[:len(w.carriers)]
		for i, c := range w.carriers {
			w.centers[i] = c.Center(tq)
		}
		w.cenN, w.cenTime, w.cenEpoch = len(w.carriers), tq, w.poseEpoch
	}
	return w.centers
}

// forwardPowerDBm computes the power delivered to the tag chip from one
// antenna: the linear sum of a direct path and a scattered (multipath)
// path, each combining cached deterministic gains (linkTerms) with fresh
// random fields. asInterference marks foreign-carrier resolutions, which
// use separate fading draws (a different propagation path) but share the
// tag-local terms.
func (w *World) forwardPowerDBm(tag *Tag, ant *Antenna, ctx LinkContext, budget *rf.Budget, asInterference bool) units.DBm {
	cal := &w.Cal
	bt := w.linkTerms(tag, ant, ctx.Time)

	// Stochastic overlay: the random fields are keyed and drawn exactly as
	// the uncached path draws them, and the dB terms are summed in the
	// same order, so enabling the cache cannot move a result by even one
	// bit.
	tagShadow := units.DB(w.fieldNormal(
		w.keys.shadowTag.Int(ctx.Pass).Str("/").Str(tag.Name), cal.SigmaTagDB))
	pathShadow := units.DB(w.fieldNormal(
		w.keys.shadowPath.Int(ctx.Pass).Str("/").Str(tag.Name).Str("/").Str(ant.Name), cal.SigmaPathDB))
	fadeKey, fadeScatKey := w.keys.fadeDir, w.keys.fadeDirS
	if asInterference {
		fadeKey, fadeScatKey = w.keys.fadeInt, w.keys.fadeIntS
	}
	// Fast fading decorrelates on the channel coherence time, not per
	// round: rounds inside one coherence block share the same draw.
	block := ctx.Round
	if cal.FadingCoherenceSeconds > 0 {
		block = int(ctx.Time / cal.FadingCoherenceSeconds)
	}
	fadeDirect := units.DB(w.fieldRician(
		fadeKey.Int(ctx.Pass).Str("/b").Int(block).Str("/").Str(tag.Name).Str("/").Str(ant.Name), cal.RicianK))

	direct := detDirectSum(cal, bt).
		Plus(tagShadow).
		Plus(pathShadow).
		Plus(fadeDirect)

	// Scattered path: reflections off floor, walls and fixtures. Arrives
	// from everywhere: flattened antenna pattern, averaged tag pattern,
	// fixed 3 dB polarization scrambling, partial obstruction, Rayleigh
	// fading, and no grazing cancellation (arrivals are not in the tag's
	// ground plane).
	// The scattered illumination level is a property of the tag's local
	// clutter, so its slow fading is shared by every antenna observing the
	// tag (only the per-block Rayleigh draw differs). This shared
	// component is part of what correlates antenna-level read
	// opportunities in Table 3.
	scatShadow := units.DB(w.fieldNormal(
		w.keys.shadowScat.Int(ctx.Pass).Str("/").Str(tag.Name), cal.ScatterSigmaDB))
	fadeScatter := units.DB(w.fieldRician(
		fadeScatKey.Int(ctx.Pass).Str("/b").Int(block).Str("/").Str(tag.Name).Str("/").Str(ant.Name), 0))
	scatter := detScatterSum(cal, bt).
		Plus(tagShadow).
		Plus(scatShadow).
		Plus(fadeScatter)

	if budget != nil {
		budget.Add("patch gain", bt.Patch).
			AddLoss("cable", cal.CableLossDB).
			AddLoss("free space", bt.FSPL).
			AddLoss("polarization", bt.Pol).
			Add("tag dipole", bt.Dipole).
			AddLoss("grazing", bt.Graze).
			AddLoss("obstruction", bt.Obstruction).
			AddLoss("proximity detune", bt.Detune).
			AddLoss("inter-tag coupling", bt.Coupling).
			Add("body reflection", bt.Reflect).
			Add("tag shadowing", tagShadow).
			Add("path shadowing", pathShadow).
			Add("fast fading", fadeDirect).
			Add("scattered path (extra)", units.DB(combinePower(direct, scatter)-direct))
	}

	return combinePower(direct, scatter)
}

// detDirectSum is the deterministic prefix of the direct-path forward
// budget: calibration constants plus the pose-only terms, summed in the
// canonical left-to-right order. forwardPowerDBm and ResolveLinkGrid both
// start from this sum, which is what keeps the per-link and batched paths
// bit-identical — any reordering here would move results by an ULP.
func detDirectSum(cal *rf.Calibration, bt *rf.BudgetTerms) units.DBm {
	return cal.TxPowerDBm.
		Plus(-cal.CableLossDB).
		Plus(bt.Patch).
		Plus(-bt.FSPL).
		Plus(-bt.Pol).
		Plus(bt.Dipole).
		Plus(-bt.Graze).
		Plus(-bt.Obstruction).
		Plus(-bt.Detune).
		Plus(-bt.Coupling).
		Plus(bt.Reflect)
}

// detScatterSum is the deterministic prefix of the scattered-path forward
// budget, under the same identical-summation-order rule as detDirectSum.
func detScatterSum(cal *rf.Calibration, bt *rf.BudgetTerms) units.DBm {
	return cal.TxPowerDBm.
		Plus(-cal.CableLossDB).
		Plus(cal.ScatterAntennaGainDB).
		Plus(-bt.FSPL).
		Plus(-cal.ScatterLossDB).
		Plus(-3).
		Plus(-bt.ScatterObstruction).
		Plus(-bt.Detune).
		Plus(-bt.Coupling).
		Plus(bt.Reflect)
}

// bestDipole returns the (polarization loss, dipole gain) of the tag
// dipole that couples best toward the antenna.
func bestDipole(cal *rf.Calibration, tag *Tag, ant *Antenna, tagPos, antPos, dirToTag geom.Vec3) (units.DB, units.DB) {
	evalAxis := func(axis geom.Vec3) (units.DB, units.DB, units.DB) {
		p := rf.PolarizationLossDB(cal.ReaderPolarization, ant.Pose.Up, axis, dirToTag, cal.CrossPolFloorDB)
		d := cal.TagDipole.GainToward(axis, tagPos, antPos)
		return p, d, d - p
	}
	pol, dip, score := evalAxis(tag.Mount.Axis)
	if !tag.Mount.Axis2.IsZero() {
		if p2, d2, s2 := evalAxis(tag.Mount.Axis2); s2 > score {
			pol, dip = p2, d2
		}
	}
	return pol, dip
}

// readerToReaderDBm is the carrier power one antenna couples into
// another — a pure function of the two poses, memoized per antenna pair
// until the scene mutates.
func (w *World) readerToReaderDBm(from, to *Antenna) units.DBm {
	if w.linkCacheOff {
		return w.readerToReaderTerms(from, to)
	}
	w.syncCaches()
	k := antPair{from: from, to: to}
	if p, ok := w.r2rCache[k]; ok {
		return p
	}
	p := w.readerToReaderTerms(from, to)
	w.r2rCache[k] = p
	return p
}

// readerToReaderTerms computes the leakage readerToReaderDBm memoizes.
func (w *World) readerToReaderTerms(from, to *Antenna) units.DBm {
	cal := w.Cal
	d := from.Pose.Pos.Dist(to.Pose.Pos)
	return cal.TxPowerDBm.
		Plus(-cal.CableLossDB).
		Plus(cal.ReaderAntenna.GainToward(from.Pose, to.Pose.Pos)).
		Plus(-units.FSPL(d, cal.FreqHz)).
		Plus(cal.ReaderAntenna.GainToward(to.Pose, from.Pose.Pos)).
		Plus(-cal.CableLossDB)
}

// obstructionDB sums the blocking of every carrier crossing the segment,
// separately for the direct and scattered paths. The tag end is pulled
// back slightly so a tag sitting on its own carrier's surface is not
// swallowed by numeric noise.
func (w *World) obstructionDB(antPos, tagPos geom.Vec3, t float64) (direct, scatter units.DB) {
	toAnt := antPos.Sub(tagPos).Unit()
	from := tagPos.Add(toAnt.Scale(0.002))
	centers := w.carrierCenters(t)
	for i, c := range w.carriers {
		var d, s units.DB
		switch cc := c.(type) {
		case *Box:
			d, s = cc.obstructionAt(&w.Cal, antPos, from, centers[i])
		case *Person:
			d, s = cc.obstructionAt(&w.Cal, antPos, from, centers[i])
		default:
			d, s = c.ObstructionDB(w.Cal, antPos, from, t)
		}
		direct += d
		scatter += s
	}
	return direct, scatter
}

// couplingDB returns the mutual-coupling detuning from the tag's nearest
// neighbours (the worst single neighbour dominates). Neighbour positions
// come from the per-instant memo, so a round's scan over every tag costs
// O(tags) path evaluations in total.
func (w *World) couplingDB(tag *Tag, t float64) units.DB {
	positions := w.tagPositions(t)
	pos := positions[tag.idx]
	var worst units.DB
	for i, o := range w.tags {
		if o == tag {
			continue
		}
		d := pos.Dist(positions[i])
		if d > couplingSearchRadius {
			continue
		}
		align := rf.NeighbourAlignment(geom.AngleBetween(tag.Mount.Axis, o.Mount.Axis))
		if l := w.Cal.CouplingLossDB(d, align); l > worst {
			worst = l
		}
	}
	return worst
}

// bodyReflectionDB returns the paper's measured bonus for a tag whose
// carrier has another body close behind it (reflections off the farther
// subject illuminate the closer one).
func (w *World) bodyReflectionDB(tag *Tag, antPos geom.Vec3, t float64) units.DB {
	p, ok := tag.carrier.(*Person)
	if !ok {
		return 0
	}
	centers := w.carrierCenters(t)
	var own geom.Vec3
	if tag.cidx >= 0 {
		own = centers[tag.cidx]
	} else {
		own = p.Center(t)
	}
	ownDist := own.Dist(antPos)
	for i, c := range w.carriers {
		q, ok := c.(*Person)
		if !ok || q == p {
			continue
		}
		center := centers[i]
		if center.Dist(own) <= w.Cal.BodyReflectionRange && center.Dist(antPos) > ownDist {
			return w.Cal.BodyReflectionGainDB
		}
	}
	return 0
}

// fieldDraws returns the two unit-normal draws at the head of the stream
// the key identifies — the raw material of every random field. Reseeding
// the world-owned scratch stream replays the exact sequence k.Stream()
// would construct, without the per-draw allocations; field labels are
// pass-keyed and so almost never recur, which is why drawing beats
// memoizing (a map insert per label costs more than the two ziggurat
// draws it would save).
func (w *World) fieldDraws(k xrand.Key) [2]float64 {
	w.draw.Reseed(k.Seed())
	return [2]float64{
		clampDraw(w.draw.Normal(0, 1)),
		clampDraw(w.draw.Normal(0, 1)),
	}
}

// fieldDrawClamp bounds every unit-normal field draw to ±9σ. The ziggurat
// tail is unbounded, and the broad-phase cull bound (rf.CullBound) needs
// the fading overlays to have a finite maximum; clamping at 9σ makes that
// maximum exact while being unobservable in practice — P(|z| > 9) ≈
// 2.26e-19 per draw, so no realizable simulation ever produces a clamped
// value, and every committed golden is unchanged.
const fieldDrawClamp = 9.0

// clampDraw clips one unit-normal draw to ±fieldDrawClamp.
func clampDraw(z float64) float64 {
	if z > fieldDrawClamp {
		return fieldDrawClamp
	}
	if z < -fieldDrawClamp {
		return -fieldDrawClamp
	}
	return z
}

// fieldNormal draws N(0, sigma²) for the field the key labels —
// bit-identical to Split(label).Normal(0, sigma).
func (w *World) fieldNormal(k xrand.Key, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	return sigma * w.fieldDraws(k)[0]
}

// fieldRician draws the Rician power gain (dB, K-factor k) for the field
// the key labels — bit-identical to Split(label).RicianPowerDB(k).
func (w *World) fieldRician(k xrand.Key, kf float64) float64 {
	if kf < 0 {
		kf = 0
	}
	d := w.fieldDraws(k)
	sigma := math.Sqrt(1 / (2 * (kf + 1)))
	nu := math.Sqrt(kf / (kf + 1))
	x := nu + sigma*d[0]
	y := sigma * d[1]
	p := x*x + y*y
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// combinePower adds two powers linearly.
func combinePower(a, b units.DBm) units.DBm {
	return (a.Milliwatts() + b.Milliwatts()).DBm()
}
