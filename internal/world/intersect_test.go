package world

import (
	"testing"

	"rfidtrack/internal/geom"
)

func TestSegmentHitsAABB(t *testing.T) {
	min := geom.V(-1, -1, -1)
	max := geom.V(1, 1, 1)
	tests := []struct {
		name string
		a, b geom.Vec3
		want bool
	}{
		{"through center", geom.V(-5, 0, 0), geom.V(5, 0, 0), true},
		{"misses above", geom.V(-5, 0, 2), geom.V(5, 0, 2), false},
		{"stops short", geom.V(-5, 0, 0), geom.V(-2, 0, 0), false},
		{"starts inside", geom.V(0, 0, 0), geom.V(5, 0, 0), true},
		{"fully inside", geom.V(-0.5, 0, 0), geom.V(0.5, 0, 0), true},
		{"diagonal corner", geom.V(-2, -2, -2), geom.V(2, 2, 2), true},
		{"grazing face", geom.V(-5, 1, 0), geom.V(5, 1, 0), true},
		{"parallel offset", geom.V(-5, 1.01, 0), geom.V(5, 1.01, 0), false},
		{"degenerate point inside", geom.V(0, 0, 0), geom.V(0, 0, 0), true},
		{"degenerate point outside", geom.V(3, 0, 0), geom.V(3, 0, 0), false},
	}
	for _, tt := range tests {
		if got := segmentHitsAABB(tt.a, tt.b, min, max); got != tt.want {
			t.Errorf("%s: segmentHitsAABB = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestSegmentHitsCylinder(t *testing.T) {
	// Cylinder at origin, radius 0.2, z in [0, 1.8] (a torso).
	tests := []struct {
		name string
		a, b geom.Vec3
		want bool
	}{
		{"through middle", geom.V(-2, 0, 1), geom.V(2, 0, 1), true},
		{"over the head", geom.V(-2, 0, 2), geom.V(2, 0, 2), false},
		{"below the feet", geom.V(-2, 0, -0.5), geom.V(2, 0, -0.5), false},
		{"beside the body", geom.V(-2, 0.5, 1), geom.V(2, 0.5, 1), false},
		{"stops short", geom.V(-2, 0, 1), geom.V(-0.5, 0, 1), false},
		{"tangent", geom.V(-2, 0.2, 1), geom.V(2, 0.2, 1), true},
		{"vertical inside", geom.V(0.1, 0, 0.5), geom.V(0.1, 0, 1.5), true},
		{"vertical outside", geom.V(0.5, 0, 0.5), geom.V(0.5, 0, 1.5), false},
		{"diagonal through top", geom.V(-1, 0, 2.2), geom.V(1, 0, 0.8), true},
		{"enters z-range beyond xy-range", geom.V(-2, 0, 3.6), geom.V(2, 0, -0.5), true},
	}
	for _, tt := range tests {
		if got := segmentHitsCylinder(tt.a, tt.b, 0, 0, 0.2, 0, 1.8); got != tt.want {
			t.Errorf("%s: segmentHitsCylinder = %v, want %v", tt.name, got, tt.want)
		}
	}
}
