package world

import (
	"testing"

	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
)

// TestResolveLinkCacheHitZeroAlloc pins the budget-terms cache-hit path at
// zero allocations (enforced on every `make check` alongside the disabled-
// instrumentation guard): once a (tag, antenna, pose instant) has been
// resolved, repeating it allocates nothing — map lookups, cached field
// draws, and the reseedable scratch stream only.
func TestResolveLinkCacheHitZeroAlloc(t *testing.T) {
	w, tag, ant := obsWorld()
	ctx := LinkContext{Time: 2.5, Pass: 1, Round: 1}
	_ = w.ResolveLink(tag, ant, ctx) // warm the caches
	if avg := testing.AllocsPerRun(200, func() {
		_ = w.ResolveLink(tag, ant, ctx)
	}); avg != 0 {
		t.Errorf("ResolveLink cache hit allocates %.2f allocs/op, want 0", avg)
	}
}

// TestWorldMutatorsBumpEpoch: every scene mutator must bump the pose
// epoch — a mutator that forgets leaves the budget-terms cache serving
// stale geometry.
func TestWorldMutatorsBumpEpoch(t *testing.T) {
	w := New(rf.DefaultCalibration(), 1)
	epoch := w.poseEpoch
	step := func(name string) {
		t.Helper()
		if w.poseEpoch <= epoch {
			t.Errorf("%s did not bump the pose epoch (still %d)", name, epoch)
		}
		epoch = w.poseEpoch
	}

	box := w.AddBox("box", geom.CrossingPass(1, 1, 2.5, 1),
		geom.V(0.45, 0.4, 0.2), rf.Cardboard, rf.Metal, geom.V(0.38, 0.33, 0.15))
	step("AddBox")
	person := w.AddPerson("p", geom.CrossingPass(1, 1.5, 2.5, 0), 1.7, 0.15)
	step("AddPerson")
	mount := Mount{Offset: geom.V(0, -0.21, 0), Normal: geom.V(0, -1, 0), Axis: geom.UnitZ, Gap: 0.05}
	tag := w.AttachTag(box, "t1", testCode(1), mount)
	step("AttachTag")
	w.AttachActiveTag(person, "t2", testCode(2), mount)
	step("AttachActiveTag")
	ant := w.AddAntenna("a1", geom.NewPose(geom.V(0, 0, 1), geom.UnitY, geom.UnitZ))
	step("AddAntenna")
	w.SetBoxPath(box, geom.CrossingPass(1, 2, 2.5, 1))
	step("SetBoxPath")
	w.SetPersonPath(person, geom.CrossingPass(1, 1.8, 2.5, 0))
	step("SetPersonPath")
	w.SetAntennaPose(ant, geom.NewPose(geom.V(0, 0, 1.5), geom.UnitY, geom.UnitZ))
	step("SetAntennaPose")
	w.SetTagMount(tag, mount)
	step("SetTagMount")
	w.Invalidate()
	step("Invalidate")
}

// TestResolveLinkCachedMatchesUncached is the tentpole's equivalence
// contract at link level: with the cache on (second world resolving each
// context twice, so hits are exercised) and off, every resolution is
// bit-identical — including off-grid times, which both paths quantize.
func TestResolveLinkCachedMatchesUncached(t *testing.T) {
	cached, tagC, antC := obsWorld()
	plain, tagP, antP := obsWorld()
	plain.SetLinkCache(false)
	for _, tt := range []float64{0, 0.5, 2.5, 2.5003, 3.14159} {
		for pass := 0; pass < 4; pass++ {
			for round := 0; round < 3; round++ {
				ctx := LinkContext{Time: tt, Pass: pass, Round: round}
				_ = cached.ResolveLink(tagC, antC, ctx) // warm, then hit
				a := cached.ResolveLink(tagC, antC, ctx)
				b := plain.ResolveLink(tagP, antP, ctx)
				if a != b {
					t.Fatalf("t=%g pass=%d round=%d: cached link differs from uncached:\n%+v\n%+v",
						tt, pass, round, a, b)
				}
			}
		}
	}
}

// TestLinkCacheInvalidation: after a geometry mutation, resolutions must
// match a fresh world built with the new geometry — no stale terms.
func TestLinkCacheInvalidation(t *testing.T) {
	w, tag, ant := obsWorld()
	ctx := LinkContext{Time: 2.5, Pass: 1, Round: 1}
	_ = w.ResolveLink(tag, ant, ctx) // fill the cache with the old pose

	moved := geom.CrossingPass(1, 1.7, 2.5, 1)
	w.SetBoxPath(tag.Carrier().(*Box), moved)
	got := w.ResolveLink(tag, ant, ctx)

	fresh, ftag, fant := obsWorld()
	fresh.SetBoxPath(ftag.Carrier().(*Box), moved)
	want := fresh.ResolveLink(ftag, fant, ctx)
	if got != want {
		t.Errorf("post-mutation resolution served stale cache:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestLinkCacheCounters: with a collector attached, repeated resolutions
// of one context record one miss and the rest as hits, and the counters
// surface in the snapshot's Canonical-stripped Cache section.
func TestLinkCacheCounters(t *testing.T) {
	w, tag, ant := obsWorld()
	m := obs.NewMetrics()
	w.Observe(m.Shard())
	ctx := LinkContext{Time: 2.5, Pass: 1, Round: 1}
	for i := 0; i < 5; i++ {
		_ = w.ResolveLink(tag, ant, ctx)
	}
	s := m.Snapshot()
	if s.Cache == nil {
		t.Fatal("snapshot has no Cache section after cached resolutions")
	}
	if s.Cache.LinkMisses != 1 || s.Cache.LinkHits != 4 {
		t.Errorf("cache counters = %d hits / %d misses, want 4 / 1",
			s.Cache.LinkHits, s.Cache.LinkMisses)
	}
	if c := s.Canonical(); c.Cache != nil {
		t.Error("Canonical did not strip the Cache section")
	}
}
