// Package world models the physical scene of an RFID installation: tagged
// objects and people moving along paths, portal antennas, and the channel
// resolution that turns a (tag, antenna, instant) triple into an itemized
// link budget.
//
// Carriers translate along their paths without rotating (every experiment
// in the paper is a straight pass), so tag mounts are expressed directly
// in world axes at construction time: an offset from the carrier reference
// point, a face normal, and a dipole axis.
//
// All randomness is resolved through deterministic random fields keyed by
// (seed, pass, round, tag, antenna) labels, so a scenario replays
// identically for a given seed regardless of evaluation order.
package world

import (
	"fmt"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/units"
	"rfidtrack/internal/xrand"
)

// Mount is a tag placement in world axes (see the package comment).
type Mount struct {
	// Offset from the carrier reference point to the tag, world axes.
	Offset geom.Vec3
	// Normal is the tag face normal (unit, world axes).
	Normal geom.Vec3
	// Axis is the dipole axis (unit, world axes).
	Axis geom.Vec3
	// Axis2, when non-zero, is the second dipole of a dual-dipole
	// (orientation-insensitive) tag design — the paper's future-work
	// "different tag designs". The link uses whichever dipole couples
	// better at each instant.
	Axis2 geom.Vec3
	// Gap is the distance in meters between the tag and the carrier's
	// content material (drives proximity detuning and grazing).
	Gap float64
}

// Tag is a physical tag placed on a carrier.
type Tag struct {
	Name  string
	Code  epc.Code
	Proto *tagsim.Tag
	Mount Mount
	// Active marks a battery-powered tag (see rf.Link.Active).
	Active bool

	carrier Carrier
}

// Carrier returns the object or person the tag is mounted on.
func (t *Tag) Carrier() Carrier { return t.carrier }

// Pos returns the tag's world position at time tt.
func (t *Tag) Pos(tt float64) geom.Vec3 {
	return t.carrier.Center(tt).Add(t.Mount.Offset)
}

// Carrier is anything tags are mounted on.
type Carrier interface {
	Name() string
	// Center returns the carrier reference point at time t.
	Center(t float64) geom.Vec3
	// Tags returns the tags mounted on the carrier.
	Tags() []*Tag
	// ObstructionDB returns the blocking loss (positive dB) this carrier's
	// body or content adds to the segment from a to b at time t, for the
	// direct path and for the scattered path (which reflective obstacles
	// barely block).
	ObstructionDB(cal rf.Calibration, a, b geom.Vec3, t float64) (direct, scatter units.DB)
	// ContentMaterial is what sits behind tags mounted on this carrier.
	ContentMaterial() rf.Material
}

// Box is a tagged carton: outer shell of Surface material, with a content
// block of Content material centered inside (the paper's network routers).
type Box struct {
	name    string
	Path    geom.Path
	Size    geom.Vec3 // outer extents (x: along travel, y: depth, z: height)
	Surface rf.Material
	Content rf.Material
	// ContentSize is the extents of the inner content block; zero means no
	// blocking content (an empty cardboard box).
	ContentSize geom.Vec3
	tags        []*Tag
}

var _ Carrier = (*Box)(nil)

// Name implements Carrier.
func (b *Box) Name() string { return b.name }

// Center implements Carrier. The reference point is the box center.
func (b *Box) Center(t float64) geom.Vec3 { return b.Path.At(t).Pos }

// Tags implements Carrier.
func (b *Box) Tags() []*Tag { return b.tags }

// ObstructionDB implements Carrier: the content block attenuates any
// segment crossing it; the cardboard shell contributes its (small) loss
// when crossed.
func (b *Box) ObstructionDB(cal rf.Calibration, a, p geom.Vec3, t float64) (direct, scatter units.DB) {
	c := b.Center(t)
	if b.ContentSize.X > 0 && b.ContentSize.Y > 0 && b.ContentSize.Z > 0 {
		half := b.ContentSize.Scale(0.5)
		if segmentHitsAABB(a, p, c.Sub(half), c.Add(half)) {
			direct += cal.TransmissionLossDB(b.Content)
			scatter += cal.ScatterTransmissionLossDB(b.Content)
		}
	}
	if b.Size.X > 0 {
		half := b.Size.Scale(0.5)
		if segmentHitsAABB(a, p, c.Sub(half), c.Add(half)) {
			direct += cal.TransmissionLossDB(b.Surface)
			scatter += cal.ScatterTransmissionLossDB(b.Surface)
		}
	}
	return direct, scatter
}

// ContentMaterial implements Carrier.
func (b *Box) ContentMaterial() rf.Material {
	if b.ContentSize.X > 0 {
		return b.Content
	}
	return b.Surface
}

// Person is a walking subject: a vertical body cylinder with badge tags at
// waist height.
type Person struct {
	name   string
	Path   geom.Path // reference point at the body axis, ground level (z=0)
	Height float64
	Radius float64
	tags   []*Tag
}

var _ Carrier = (*Person)(nil)

// Name implements Carrier.
func (p *Person) Name() string { return p.name }

// Center implements Carrier: the body axis at ground level.
func (p *Person) Center(t float64) geom.Vec3 { return p.Path.At(t).Pos }

// Tags implements Carrier.
func (p *Person) Tags() []*Tag { return p.tags }

// ObstructionDB implements Carrier: the torso cylinder blocks both paths
// (bodies absorb).
func (p *Person) ObstructionDB(cal rf.Calibration, a, b geom.Vec3, t float64) (direct, scatter units.DB) {
	c := p.Center(t)
	if segmentHitsCylinder(a, b, c.X, c.Y, p.Radius, c.Z, c.Z+p.Height) {
		return cal.TransmissionLossDB(rf.Body), cal.ScatterTransmissionLossDB(rf.Body)
	}
	return 0, 0
}

// ContentMaterial implements Carrier.
func (p *Person) ContentMaterial() rf.Material { return rf.Body }

// Antenna is a portal area antenna. Pose.Forward is the boresight.
type Antenna struct {
	Name string
	Pose geom.Pose
}

// World is the complete scene.
//
// A World is not safe for concurrent use: link resolution caches random-
// field draws. The parallel measurement engine gives every worker its own
// replica (see core.MeasureParallel) instead of sharing one scene.
type World struct {
	Cal      rf.Calibration
	carriers []Carrier
	antennas []*Antenna
	tags     []*Tag
	rng      *xrand.Rand

	// keys holds the pass-invariant random-field label prefixes, hashed
	// once at construction. The per-link hot path extends them with the
	// varying suffix (pass, block, tag, antenna) without allocating; the
	// byte sequence fed into the hash is identical to the fmt.Sprintf
	// labels the fields were historically keyed by, so streams — and every
	// golden table — are unchanged.
	keys fieldKeys
	// fieldCache memoizes the unit draws behind each random field by label
	// hash. Field values are pure functions of their label, so caching
	// cannot perturb results; it only removes the per-draw stream
	// construction. Bounded by maxFieldCacheEntries.
	fieldCache map[uint64][2]float64

	// obs, when non-nil, counts link resolutions. The nil state must stay
	// free: ResolveLink's disabled path is pinned at 0 allocs/op.
	obs *obs.Collector
}

// fieldKeys are the precomputed label-prefix hash states (see World.keys).
type fieldKeys struct {
	shadowTag, shadowPath, shadowScat    xrand.Key
	fadeDir, fadeInt, fadeDirS, fadeIntS xrand.Key
}

// maxFieldCacheEntries bounds the field cache; labels are pass-keyed so
// long measurement runs would otherwise grow it without limit.
const maxFieldCacheEntries = 1 << 16

// New returns an empty scene using the given calibration and random seed.
func New(cal rf.Calibration, seed uint64) *World {
	w := &World{Cal: cal, rng: xrand.New(seed), fieldCache: make(map[uint64][2]float64)}
	base := w.rng.Key()
	w.keys = fieldKeys{
		shadowTag:  base.Str("shadow.tag/p"),
		shadowPath: base.Str("shadow.path/p"),
		shadowScat: base.Str("shadow.scat/p"),
		fadeDir:    base.Str("fade.dir/p"),
		fadeInt:    base.Str("fade.int/p"),
		fadeDirS:   base.Str("fade.dir.scat/p"),
		fadeIntS:   base.Str("fade.int.scat/p"),
	}
	return w
}

// AddBox places a box in the scene and returns it.
func (w *World) AddBox(name string, path geom.Path, size geom.Vec3, surface, content rf.Material, contentSize geom.Vec3) *Box {
	b := &Box{
		name: name, Path: path, Size: size,
		Surface: surface, Content: content, ContentSize: contentSize,
	}
	w.carriers = append(w.carriers, b)
	return b
}

// AddPerson places a walking subject in the scene and returns it.
func (w *World) AddPerson(name string, path geom.Path, height, radius float64) *Person {
	p := &Person{name: name, Path: path, Height: height, Radius: radius}
	w.carriers = append(w.carriers, p)
	return p
}

// AttachTag mounts a new passive tag on a carrier. The tag's protocol
// state gets its own deterministic random sub-stream derived from the tag
// name.
func (w *World) AttachTag(c Carrier, name string, code epc.Code, m Mount) *Tag {
	return w.attach(c, name, code, m, false)
}

// AttachActiveTag mounts a battery-powered tag: no rectification
// constraint and a transmitted (not backscattered) reply.
func (w *World) AttachActiveTag(c Carrier, name string, code epc.Code, m Mount) *Tag {
	return w.attach(c, name, code, m, true)
}

func (w *World) attach(c Carrier, name string, code epc.Code, m Mount, active bool) *Tag {
	m.Normal = m.Normal.Unit()
	m.Axis = m.Axis.Unit()
	m.Axis2 = m.Axis2.Unit()
	t := &Tag{
		Name:   name,
		Code:   code,
		Proto:  tagsim.New(code, w.rng.Split("tagproto/"+name)),
		Mount:  m,
		Active: active,
	}
	t.carrier = c
	switch cc := c.(type) {
	case *Box:
		cc.tags = append(cc.tags, t)
	case *Person:
		cc.tags = append(cc.tags, t)
	default:
		panic(fmt.Sprintf("world: unknown carrier type %T", c))
	}
	w.tags = append(w.tags, t)
	return t
}

// AddAntenna places a portal antenna.
func (w *World) AddAntenna(name string, pose geom.Pose) *Antenna {
	a := &Antenna{Name: name, Pose: pose}
	w.antennas = append(w.antennas, a)
	return a
}

// Observe attaches (or, with nil, detaches) a metrics collector. The
// collector is written from link resolution, so it must be private to
// whatever goroutine drives this world — the measurement engine hands
// every worker replica its own shard.
func (w *World) Observe(c *obs.Collector) { w.obs = c }

// Tags returns every tag in the scene.
func (w *World) Tags() []*Tag { return w.tags }

// Antennas returns every antenna in the scene.
func (w *World) Antennas() []*Antenna { return w.antennas }

// Carriers returns every carrier in the scene.
func (w *World) Carriers() []Carrier { return w.carriers }
