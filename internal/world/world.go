// Package world models the physical scene of an RFID installation: tagged
// objects and people moving along paths, portal antennas, and the channel
// resolution that turns a (tag, antenna, instant) triple into an itemized
// link budget.
//
// Carriers translate along their paths without rotating (every experiment
// in the paper is a straight pass), so tag mounts are expressed directly
// in world axes at construction time: an offset from the carrier reference
// point, a face normal, and a dipole axis.
//
// All randomness is resolved through deterministic random fields keyed by
// (seed, pass, round, tag, antenna) labels, so a scenario replays
// identically for a given seed regardless of evaluation order.
package world

import (
	"fmt"

	"rfidtrack/internal/epc"
	"rfidtrack/internal/geom"
	"rfidtrack/internal/obs"
	"rfidtrack/internal/rf"
	"rfidtrack/internal/tagsim"
	"rfidtrack/internal/units"
	"rfidtrack/internal/xrand"
)

// Mount is a tag placement in world axes (see the package comment).
type Mount struct {
	// Offset from the carrier reference point to the tag, world axes.
	Offset geom.Vec3
	// Normal is the tag face normal (unit, world axes).
	Normal geom.Vec3
	// Axis is the dipole axis (unit, world axes).
	Axis geom.Vec3
	// Axis2, when non-zero, is the second dipole of a dual-dipole
	// (orientation-insensitive) tag design — the paper's future-work
	// "different tag designs". The link uses whichever dipole couples
	// better at each instant.
	Axis2 geom.Vec3
	// Gap is the distance in meters between the tag and the carrier's
	// content material (drives proximity detuning and grazing).
	Gap float64
}

// Tag is a physical tag placed on a carrier.
type Tag struct {
	Name  string
	Code  epc.Code
	Proto *tagsim.Tag
	Mount Mount
	// Active marks a battery-powered tag (see rf.Link.Active).
	Active bool

	carrier Carrier
	// idx is the tag's index in World.tags, the key into the world's
	// per-instant position memo. cidx is the carrier's index in
	// World.carriers (-1 for a carrier the world does not own), the key
	// into the per-instant carrier-center memo.
	idx  int
	cidx int
}

// Carrier returns the object or person the tag is mounted on.
func (t *Tag) Carrier() Carrier { return t.carrier }

// Pos returns the tag's world position at time tt.
func (t *Tag) Pos(tt float64) geom.Vec3 {
	return t.carrier.Center(tt).Add(t.Mount.Offset)
}

// Carrier is anything tags are mounted on.
type Carrier interface {
	Name() string
	// Center returns the carrier reference point at time t.
	Center(t float64) geom.Vec3
	// Tags returns the tags mounted on the carrier.
	Tags() []*Tag
	// ObstructionDB returns the blocking loss (positive dB) this carrier's
	// body or content adds to the segment from a to b at time t, for the
	// direct path and for the scattered path (which reflective obstacles
	// barely block).
	ObstructionDB(cal rf.Calibration, a, b geom.Vec3, t float64) (direct, scatter units.DB)
	// ContentMaterial is what sits behind tags mounted on this carrier.
	ContentMaterial() rf.Material
}

// Box is a tagged carton: outer shell of Surface material, with a content
// block of Content material centered inside (the paper's network routers).
type Box struct {
	name    string
	Path    geom.Path
	Size    geom.Vec3 // outer extents (x: along travel, y: depth, z: height)
	Surface rf.Material
	Content rf.Material
	// ContentSize is the extents of the inner content block; zero means no
	// blocking content (an empty cardboard box).
	ContentSize geom.Vec3
	tags        []*Tag
}

var _ Carrier = (*Box)(nil)

// Name implements Carrier.
func (b *Box) Name() string { return b.name }

// Center implements Carrier. The reference point is the box center.
func (b *Box) Center(t float64) geom.Vec3 { return b.Path.At(t).Pos }

// Tags implements Carrier.
func (b *Box) Tags() []*Tag { return b.tags }

// ObstructionDB implements Carrier: the content block attenuates any
// segment crossing it; the cardboard shell contributes its (small) loss
// when crossed.
func (b *Box) ObstructionDB(cal rf.Calibration, a, p geom.Vec3, t float64) (direct, scatter units.DB) {
	return b.obstructionAt(&cal, a, p, b.Center(t))
}

// obstructionAt is ObstructionDB with the box center already evaluated —
// the world's obstruction scan memoizes centers per instant instead of
// re-walking the path for every (tag, antenna) resolution. The
// calibration comes by pointer: it is a 200+-byte struct and this runs
// per carrier per resolution. One property lookup per face replaces the
// TransmissionLossDB/ScatterTransmissionLossDB pair, with the identical
// arithmetic.
func (b *Box) obstructionAt(cal *rf.Calibration, a, p, c geom.Vec3) (direct, scatter units.DB) {
	hasContent := b.ContentSize.X > 0 && b.ContentSize.Y > 0 && b.ContentSize.Z > 0
	// Both blocks are centered on c, so when the content fits inside the
	// shell a segment missing the shell AABB cannot hit the content AABB:
	// test the (cheaper to reject) shell first and skip the content slab
	// test entirely on a miss. The loss additions keep the original
	// content-then-shell order, so hits sum bit-identically.
	if b.Size.X > 0 && (!hasContent ||
		(b.ContentSize.X <= b.Size.X && b.ContentSize.Y <= b.Size.Y && b.ContentSize.Z <= b.Size.Z)) {
		half := b.Size.Scale(0.5)
		if !segmentHitsAABB(a, p, c.Sub(half), c.Add(half)) {
			return 0, 0
		}
		if hasContent {
			chalf := b.ContentSize.Scale(0.5)
			if segmentHitsAABB(a, p, c.Sub(chalf), c.Add(chalf)) {
				mp := cal.Materials[b.Content]
				direct += mp.TransmissionLossDB
				scatter += units.DB(float64(mp.TransmissionLossDB) * mp.ScatterLeakFactor)
			}
		}
		mp := cal.Materials[b.Surface]
		direct += mp.TransmissionLossDB
		scatter += units.DB(float64(mp.TransmissionLossDB) * mp.ScatterLeakFactor)
		return direct, scatter
	}
	if hasContent {
		half := b.ContentSize.Scale(0.5)
		if segmentHitsAABB(a, p, c.Sub(half), c.Add(half)) {
			mp := cal.Materials[b.Content]
			direct += mp.TransmissionLossDB
			scatter += units.DB(float64(mp.TransmissionLossDB) * mp.ScatterLeakFactor)
		}
	}
	if b.Size.X > 0 {
		half := b.Size.Scale(0.5)
		if segmentHitsAABB(a, p, c.Sub(half), c.Add(half)) {
			mp := cal.Materials[b.Surface]
			direct += mp.TransmissionLossDB
			scatter += units.DB(float64(mp.TransmissionLossDB) * mp.ScatterLeakFactor)
		}
	}
	return direct, scatter
}

// ContentMaterial implements Carrier.
func (b *Box) ContentMaterial() rf.Material {
	if b.ContentSize.X > 0 {
		return b.Content
	}
	return b.Surface
}

// Person is a walking subject: a vertical body cylinder with badge tags at
// waist height.
type Person struct {
	name   string
	Path   geom.Path // reference point at the body axis, ground level (z=0)
	Height float64
	Radius float64
	tags   []*Tag
}

var _ Carrier = (*Person)(nil)

// Name implements Carrier.
func (p *Person) Name() string { return p.name }

// Center implements Carrier: the body axis at ground level.
func (p *Person) Center(t float64) geom.Vec3 { return p.Path.At(t).Pos }

// Tags implements Carrier.
func (p *Person) Tags() []*Tag { return p.tags }

// ObstructionDB implements Carrier: the torso cylinder blocks both paths
// (bodies absorb).
func (p *Person) ObstructionDB(cal rf.Calibration, a, b geom.Vec3, t float64) (direct, scatter units.DB) {
	return p.obstructionAt(&cal, a, b, p.Center(t))
}

// obstructionAt is ObstructionDB with the body axis already evaluated
// (see Box.obstructionAt).
func (p *Person) obstructionAt(cal *rf.Calibration, a, b, c geom.Vec3) (direct, scatter units.DB) {
	if segmentHitsCylinder(a, b, c.X, c.Y, p.Radius, c.Z, c.Z+p.Height) {
		mp := cal.Materials[rf.Body]
		return mp.TransmissionLossDB, units.DB(float64(mp.TransmissionLossDB) * mp.ScatterLeakFactor)
	}
	return 0, 0
}

// ContentMaterial implements Carrier.
func (p *Person) ContentMaterial() rf.Material { return rf.Body }

// Antenna is a portal area antenna. Pose.Forward is the boresight.
type Antenna struct {
	Name string
	Pose geom.Pose
	// idx is the antenna's index in World.antennas, the column key into
	// the world's budget-terms memo.
	idx int
}

// World is the complete scene.
//
// A World is not safe for concurrent use, not even for read-only link
// resolution: ResolveLink writes the world-owned budget-terms memo, the
// tag-position memo, and the reseedable draw scratch on every call. That single-goroutine ownership is load-bearing —
// none of the caches carry locks. The parallel measurement engine gives
// every worker its own replica (see core.MeasureParallel) instead of
// sharing one scene.
//
// Scene geometry must change through the mutator methods (SetBoxPath,
// SetPersonPath, SetAntennaPose, SetTagMount, the Add/Attach
// constructors) or be followed by Invalidate: each bumps the pose epoch
// that invalidates the budget-terms cache. Writing a carrier's Path or an
// antenna's Pose field directly leaves the cache serving stale geometry.
type World struct {
	Cal      rf.Calibration
	carriers []Carrier
	antennas []*Antenna
	tags     []*Tag
	rng      *xrand.Rand

	// keys holds the pass-invariant random-field label prefixes, hashed
	// once at construction. The per-link hot path extends them with the
	// varying suffix (pass, block, tag, antenna) without allocating; the
	// byte sequence fed into the hash is identical to the fmt.Sprintf
	// labels the fields were historically keyed by, so streams — and every
	// golden table — are unchanged.
	keys fieldKeys
	// draw is the reseedable scratch stream behind every field draw: one
	// stream reseeded per label instead of one allocation per draw. (A
	// field is a pure function of its label hash, so reseeding by hash
	// replays it exactly.)
	draw *xrand.Rand

	// poseEpoch counts scene mutations. Every mutator bumps it; the
	// deterministic caches below stamp their contents with it and discard
	// them when it moves (DESIGN.md §9).
	poseEpoch uint64
	// termsMemo memoizes the deterministic budget terms: one slot per
	// (tag, antenna) pair holding the terms of the last pose instant that
	// pair resolved at, stamped with (tq, epoch) — dense array indexing
	// instead of map hashing, sized tags × antennas. r2rCache memoizes
	// reader-to-reader carrier leakage per antenna pair, valid for
	// cacheEpoch only.
	termsMemo  []termsEntry
	r2rCache   map[antPair]units.DBm
	cacheEpoch uint64
	// termsScratch backs linkTerms' pointer return when the cache is off:
	// one world-owned slot instead of a per-call copy.
	termsScratch rf.BudgetTerms
	// linkCacheOff disables the budget-terms caches (the -linkcache=off
	// escape hatch); terms are recomputed on every resolution, with
	// bit-identical results.
	linkCacheOff bool
	// linkBatchOff steers grid-capable consumers back to per-link
	// ResolveLink calls (the -linkbatch=off escape hatch); results are
	// bit-identical either way (see linkgrid.go).
	linkBatchOff bool
	// linkCullOff disables broad-phase culling in ResolveLinkGrid even for
	// contexts that permit it (the -linkcull=off escape hatch); every pair
	// is then resolved densely, with bit-identical reads (DESIGN.md §14).
	linkCullOff bool

	// posTags/posTime/posEpoch stamp the positions memo: world positions of
	// every tag at one quantized instant, shared by the O(tags) neighbour
	// scans so one round costs O(tags) position evaluations, not O(tags²).
	positions []geom.Vec3
	posTime   float64
	posEpoch  uint64
	posTags   int

	// tagDetune/tagProx memoize the tag-local proximity terms (detune loss
	// and grazing proximity fraction): pure functions of the mount and the
	// carrier's content material, re-evaluated only when the scene mutates
	// or the tag set grows — not per (antenna, instant).
	tagDetune []units.DB
	tagProx   []float64
	tlEpoch   uint64
	tlN       int

	// centers/cenTime/cenEpoch/cenN is the same memo for carrier reference
	// points: every obstruction scan needs every carrier's center at the
	// same quantized instant, so one path evaluation per carrier per
	// instant serves all O(tags × antennas) resolutions of that instant.
	centers  []geom.Vec3
	cenTime  float64
	cenEpoch uint64
	cenN     int

	// obs, when non-nil, counts link resolutions and cache hits/misses. The
	// nil state must stay free: ResolveLink's disabled path is pinned at
	// 0 allocs/op.
	obs *obs.Collector
}

// termsEntry is one slot of the budget-terms memo: the terms of (tag,
// antenna) at quantized instant tq, valid while the scene stays at epoch.
// The zero value never matches a live lookup (every scene that can resolve
// a link has had at least one mutator bump poseEpoch past zero).
type termsEntry struct {
	tq    float64
	epoch uint64
	terms rf.BudgetTerms
}

// antPair identifies one reader-to-reader leakage cache entry.
type antPair struct {
	from, to *Antenna
}

// fieldKeys are the precomputed label-prefix hash states (see World.keys).
type fieldKeys struct {
	shadowTag, shadowPath, shadowScat    xrand.Key
	fadeDir, fadeInt, fadeDirS, fadeIntS xrand.Key
}

// New returns an empty scene using the given calibration and random seed.
func New(cal rf.Calibration, seed uint64) *World {
	w := &World{
		Cal:      cal,
		rng:      xrand.New(seed),
		draw:     xrand.New(0),
		r2rCache: make(map[antPair]units.DBm),
	}
	base := w.rng.Key()
	w.keys = fieldKeys{
		shadowTag:  base.Str("shadow.tag/p"),
		shadowPath: base.Str("shadow.path/p"),
		shadowScat: base.Str("shadow.scat/p"),
		fadeDir:    base.Str("fade.dir/p"),
		fadeInt:    base.Str("fade.int/p"),
		fadeDirS:   base.Str("fade.dir.scat/p"),
		fadeIntS:   base.Str("fade.int.scat/p"),
	}
	return w
}

// AddBox places a box in the scene and returns it.
func (w *World) AddBox(name string, path geom.Path, size geom.Vec3, surface, content rf.Material, contentSize geom.Vec3) *Box {
	b := &Box{
		name: name, Path: path, Size: size,
		Surface: surface, Content: content, ContentSize: contentSize,
	}
	w.carriers = append(w.carriers, b)
	w.Invalidate()
	return b
}

// AddPerson places a walking subject in the scene and returns it.
func (w *World) AddPerson(name string, path geom.Path, height, radius float64) *Person {
	p := &Person{name: name, Path: path, Height: height, Radius: radius}
	w.carriers = append(w.carriers, p)
	w.Invalidate()
	return p
}

// SetBoxPath moves a box onto a new path.
func (w *World) SetBoxPath(b *Box, path geom.Path) {
	b.Path = path
	w.Invalidate()
}

// SetPersonPath moves a person onto a new path.
func (w *World) SetPersonPath(p *Person, path geom.Path) {
	p.Path = path
	w.Invalidate()
}

// SetAntennaPose repositions or reorients a portal antenna.
func (w *World) SetAntennaPose(a *Antenna, pose geom.Pose) {
	a.Pose = pose
	w.Invalidate()
}

// SetTagMount replaces a tag's mount. The mount is used exactly as given
// (Normal, Axis and a non-zero Axis2 should be unit vectors, as after
// AttachTag's normalization).
func (w *World) SetTagMount(t *Tag, m Mount) {
	t.Mount = m
	w.Invalidate()
}

// Invalidate bumps the pose epoch, discarding every cached deterministic
// budget term. The mutator methods call it; code that mutates scene
// geometry through struct fields directly must call it afterwards.
func (w *World) Invalidate() { w.poseEpoch++ }

// SetLinkCache enables or disables the deterministic budget-terms cache
// (enabled by default). Disabling recomputes the terms on every
// resolution; results are bit-identical either way — the switch exists for
// A/B benchmarking (the CLIs' -linkcache=off).
func (w *World) SetLinkCache(on bool) { w.linkCacheOff = !on }

// SetLinkCull enables or disables broad-phase link culling (enabled by
// default, effective only for LinkContexts that set Cull). Reads and
// decodability are bit-identical either way; the switch is the
// -linkcull=off escape hatch and A/B benchmark lever (DESIGN.md §14).
func (w *World) SetLinkCull(on bool) { w.linkCullOff = !on }

// LinkCullEnabled reports whether broad-phase culling is permitted (it
// additionally requires a context with Cull set and a calibration the
// conservative bound accepts).
func (w *World) LinkCullEnabled() bool { return !w.linkCullOff }

// AttachTag mounts a new passive tag on a carrier. The tag's protocol
// state gets its own deterministic random sub-stream derived from the tag
// name.
func (w *World) AttachTag(c Carrier, name string, code epc.Code, m Mount) *Tag {
	return w.attach(c, name, code, m, false)
}

// AttachActiveTag mounts a battery-powered tag: no rectification
// constraint and a transmitted (not backscattered) reply.
func (w *World) AttachActiveTag(c Carrier, name string, code epc.Code, m Mount) *Tag {
	return w.attach(c, name, code, m, true)
}

func (w *World) attach(c Carrier, name string, code epc.Code, m Mount, active bool) *Tag {
	m.Normal = m.Normal.Unit()
	m.Axis = m.Axis.Unit()
	m.Axis2 = m.Axis2.Unit()
	t := &Tag{
		Name:   name,
		Code:   code,
		Proto:  tagsim.New(code, w.rng.Split("tagproto/"+name)),
		Mount:  m,
		Active: active,
	}
	t.carrier = c
	t.cidx = -1
	for i, owned := range w.carriers {
		if owned == c {
			t.cidx = i
			break
		}
	}
	switch cc := c.(type) {
	case *Box:
		cc.tags = append(cc.tags, t)
	case *Person:
		cc.tags = append(cc.tags, t)
	default:
		panic(fmt.Sprintf("world: unknown carrier type %T", c))
	}
	t.idx = len(w.tags)
	w.tags = append(w.tags, t)
	w.Invalidate()
	return t
}

// AddAntenna places a portal antenna.
func (w *World) AddAntenna(name string, pose geom.Pose) *Antenna {
	a := &Antenna{Name: name, Pose: pose, idx: len(w.antennas)}
	w.antennas = append(w.antennas, a)
	w.Invalidate()
	return a
}

// Observe attaches (or, with nil, detaches) a metrics collector. The
// collector is written from link resolution, so it must be private to
// whatever goroutine drives this world — the measurement engine hands
// every worker replica its own shard.
func (w *World) Observe(c *obs.Collector) { w.obs = c }

// Tags returns every tag in the scene.
func (w *World) Tags() []*Tag { return w.tags }

// Antennas returns every antenna in the scene.
func (w *World) Antennas() []*Antenna { return w.antennas }

// Carriers returns every carrier in the scene.
func (w *World) Carriers() []Carrier { return w.carriers }
