// Package geom provides the small 3-D vector and motion toolkit used by the
// physical-scene simulator: vectors, poses (position plus orientation), and
// constant-velocity straight-line paths such as the paper's cart passes and
// walking subjects.
//
// The coordinate convention throughout the repository is:
//
//   - +X: the direction of travel past the portal (the conveyor/cart axis)
//   - +Y: from the portal toward the scene (an antenna at y=0 faces +Y)
//   - +Z: up
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a three-dimensional vector in meters (for positions) or
// dimensionless (for directions).
type Vec3 struct {
	X, Y, Z float64
}

// V constructs a Vec3; the idiomatic spelling for cross-package literals.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Convenience unit vectors.
var (
	UnitX = Vec3{1, 0, 0}
	UnitY = Vec3{0, 1, 0}
	UnitZ = Vec3{0, 0, 1}
)

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged so callers can treat "no preferred direction" uniformly.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between two points.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// IsZero reports whether v is exactly the zero vector.
func (v Vec3) IsZero() bool { return v == Vec3{} }

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// AngleBetween returns the angle in radians between v and w, in [0, π].
// If either vector is zero the angle is reported as π/2 (no alignment
// information, neither parallel nor antiparallel).
func AngleBetween(v, w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return math.Pi / 2
	}
	c := v.Dot(w) / (nv * nw)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// Pose is a rigid placement: a position plus an orthonormal orientation
// frame. Forward is the facing direction (an antenna's boresight, a human's
// chest normal), Up completes the frame.
type Pose struct {
	Pos     Vec3
	Forward Vec3
	Up      Vec3
}

// NewPose builds a pose at pos facing forward with the given up vector,
// normalizing and re-orthogonalizing the frame. Degenerate inputs (zero or
// parallel vectors) fall back to the canonical +Y forward / +Z up frame.
func NewPose(pos, forward, up Vec3) Pose {
	f := forward.Unit()
	if f.IsZero() {
		f = UnitY
	}
	u := up.Unit()
	if u.IsZero() || math.Abs(f.Dot(u)) > 0.999999 {
		// Pick any vector not parallel to f.
		u = UnitZ
		if math.Abs(f.Dot(u)) > 0.999999 {
			u = UnitX
		}
	}
	// Re-orthogonalize up against forward.
	u = u.Sub(f.Scale(f.Dot(u))).Unit()
	return Pose{Pos: pos, Forward: f, Up: u}
}

// Right returns the third axis of the pose frame (Forward × Up).
func (p Pose) Right() Vec3 { return p.Forward.Cross(p.Up) }

// Translated returns the pose moved by delta without rotating it.
func (p Pose) Translated(delta Vec3) Pose {
	p.Pos = p.Pos.Add(delta)
	return p
}

// ToWorld maps a point expressed in the pose's local frame (right, forward,
// up) into world coordinates.
func (p Pose) ToWorld(local Vec3) Vec3 {
	return p.Pos.
		Add(p.Right().Scale(local.X)).
		Add(p.Forward.Scale(local.Y)).
		Add(p.Up.Scale(local.Z))
}

// DirToWorld maps a direction in the pose's local frame to world
// coordinates (no translation).
func (p Pose) DirToWorld(local Vec3) Vec3 {
	return p.Right().Scale(local.X).
		Add(p.Forward.Scale(local.Y)).
		Add(p.Up.Scale(local.Z))
}

// Path is a time-parameterized rigid motion.
type Path interface {
	// At returns the pose at time t (seconds from the start of the pass).
	At(t float64) Pose
	// Duration returns the total time the path covers.
	Duration() float64
}

// LinePath moves a pose at constant velocity along a straight segment, the
// shape of every pass in the paper (cart at ~1 m/s, walking volunteers).
type LinePath struct {
	Start Pose    // pose at t=0
	Vel   Vec3    // velocity in m/s
	Dur   float64 // seconds
}

var _ Path = LinePath{}

// At implements Path. Times are clamped to [0, Dur].
func (l LinePath) At(t float64) Pose {
	t = math.Max(0, math.Min(t, l.Dur))
	return l.Start.Translated(l.Vel.Scale(t))
}

// Duration implements Path.
func (l LinePath) Duration() float64 { return l.Dur }

// StaticPath holds a pose fixed for Dur seconds (the static read-range
// grid of Figure 2).
type StaticPath struct {
	Pose Pose
	Dur  float64
}

var _ Path = StaticPath{}

// At implements Path.
func (s StaticPath) At(float64) Pose { return s.Pose }

// Duration implements Path.
func (s StaticPath) Duration() float64 { return s.Dur }

// CrossingPass builds the canonical pass used throughout the paper's mobile
// experiments: motion along +X at speed m/s, passing the point closest to
// the portal (x=0) at distance standoff in front of it, covering
// [-halfSpan, +halfSpan] in x at height z. The subject faces its direction
// of travel by default.
func CrossingPass(speed, standoff, halfSpan, z float64) LinePath {
	if speed <= 0 {
		speed = 1
	}
	start := NewPose(Vec3{-halfSpan, standoff, z}, UnitX, UnitZ)
	return LinePath{
		Start: start,
		Vel:   UnitX.Scale(speed),
		Dur:   2 * halfSpan / speed,
	}
}
