package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func vecAlmost(a, b Vec3) bool {
	return almost(a.X, b.X) && almost(a.Y, b.Y) && almost(a.Z, b.Z)
}

func TestVecBasics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); !vecAlmost(got, Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vecAlmost(got, Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); !almost(got, 4-10+18) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); !vecAlmost(got, Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	got := UnitX.Cross(UnitY)
	if !vecAlmost(got, UnitZ) {
		t.Errorf("X cross Y = %v, want Z", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); !almost(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{0, 3, 4}).Dist(Vec3{0, 0, 0}); !almost(got, 5) {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnitZeroSafe(t *testing.T) {
	if got := (Vec3{}).Unit(); !got.IsZero() {
		t.Errorf("zero.Unit() = %v, want zero", got)
	}
	if got := (Vec3{0, 0, 9}).Unit(); !vecAlmost(got, UnitZ) {
		t.Errorf("Unit = %v", got)
	}
}

func TestAngleBetween(t *testing.T) {
	tests := []struct {
		v, w Vec3
		want float64
	}{
		{UnitX, UnitX, 0},
		{UnitX, UnitY, math.Pi / 2},
		{UnitX, UnitX.Scale(-1), math.Pi},
		{UnitX, Vec3{1, 1, 0}, math.Pi / 4},
		{Vec3{}, UnitX, math.Pi / 2}, // degenerate: no information
	}
	for _, tt := range tests {
		if got := AngleBetween(tt.v, tt.w); !almost(got, tt.want) {
			t.Errorf("AngleBetween(%v, %v) = %v, want %v", tt.v, tt.w, got, tt.want)
		}
	}
}

func TestNewPoseOrthonormal(t *testing.T) {
	p := NewPose(Vec3{1, 2, 3}, Vec3{1, 1, 0}, Vec3{0, 0.2, 5})
	if !almost(p.Forward.Norm(), 1) || !almost(p.Up.Norm(), 1) {
		t.Fatalf("frame not normalized: %+v", p)
	}
	if !almost(p.Forward.Dot(p.Up), 0) {
		t.Fatalf("frame not orthogonal: %+v", p)
	}
	r := p.Right()
	if !almost(r.Norm(), 1) || !almost(r.Dot(p.Forward), 0) || !almost(r.Dot(p.Up), 0) {
		t.Fatalf("right axis broken: %v", r)
	}
}

func TestNewPoseDegenerateInputs(t *testing.T) {
	// Zero forward falls back to +Y; up parallel to forward is re-picked.
	p := NewPose(Vec3{}, Vec3{}, Vec3{})
	if !vecAlmost(p.Forward, UnitY) || !almost(p.Up.Norm(), 1) {
		t.Errorf("degenerate pose = %+v", p)
	}
	q := NewPose(Vec3{}, UnitZ, UnitZ)
	if !almost(q.Forward.Dot(q.Up), 0) {
		t.Errorf("parallel up not fixed: %+v", q)
	}
}

func TestPoseToWorld(t *testing.T) {
	// A pose facing +X with up +Z has right = forward×up = X×Z = -Y... check
	// concrete mapping instead: local forward offset lands along +X.
	p := NewPose(Vec3{10, 0, 0}, UnitX, UnitZ)
	if got := p.ToWorld(Vec3{0, 2, 0}); !vecAlmost(got, Vec3{12, 0, 0}) {
		t.Errorf("ToWorld forward = %v", got)
	}
	if got := p.ToWorld(Vec3{0, 0, 3}); !vecAlmost(got, Vec3{10, 0, 3}) {
		t.Errorf("ToWorld up = %v", got)
	}
	if got := p.DirToWorld(Vec3{0, 1, 0}); !vecAlmost(got, UnitX) {
		t.Errorf("DirToWorld = %v", got)
	}
}

func TestLinePath(t *testing.T) {
	l := LinePath{
		Start: NewPose(Vec3{-2, 1, 0}, UnitX, UnitZ),
		Vel:   Vec3{1, 0, 0},
		Dur:   4,
	}
	if got := l.At(0).Pos; !vecAlmost(got, Vec3{-2, 1, 0}) {
		t.Errorf("At(0) = %v", got)
	}
	if got := l.At(2).Pos; !vecAlmost(got, Vec3{0, 1, 0}) {
		t.Errorf("At(2) = %v", got)
	}
	// Clamped beyond the ends.
	if got := l.At(99).Pos; !vecAlmost(got, Vec3{2, 1, 0}) {
		t.Errorf("At(99) = %v", got)
	}
	if got := l.At(-1).Pos; !vecAlmost(got, Vec3{-2, 1, 0}) {
		t.Errorf("At(-1) = %v", got)
	}
}

func TestStaticPath(t *testing.T) {
	p := NewPose(Vec3{1, 1, 1}, UnitY, UnitZ)
	s := StaticPath{Pose: p, Dur: 10}
	if s.At(0) != s.At(5) || s.At(5) != s.At(100) {
		t.Error("static path moved")
	}
	if s.Duration() != 10 {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestCrossingPass(t *testing.T) {
	l := CrossingPass(1, 1, 3, 0.5)
	if !almost(l.Duration(), 6) {
		t.Errorf("Duration = %v, want 6", l.Duration())
	}
	mid := l.At(3).Pos
	if !vecAlmost(mid, Vec3{0, 1, 0.5}) {
		t.Errorf("midpoint = %v, want closest approach at x=0", mid)
	}
	// Zero/negative speed defaults to 1 m/s rather than dividing by zero.
	l2 := CrossingPass(0, 1, 3, 0)
	if math.IsInf(l2.Duration(), 0) || math.IsNaN(l2.Duration()) {
		t.Errorf("degenerate speed produced duration %v", l2.Duration())
	}
}

func TestCrossProductProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 1e3), math.Mod(ay, 1e3), math.Mod(az, 1e3)}
		b := Vec3{math.Mod(bx, 1e3), math.Mod(by, 1e3), math.Mod(bz, 1e3)}
		c := a.Cross(b)
		// c is orthogonal to both inputs (within fp tolerance scaled to magnitude).
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return math.Abs(c.Dot(a)) < tol*(1+c.Norm()) && math.Abs(c.Dot(b)) < tol*(1+c.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 1e3), math.Mod(ay, 1e3), math.Mod(az, 1e3)}
		b := Vec3{math.Mod(bx, 1e3), math.Mod(by, 1e3), math.Mod(bz, 1e3)}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
